// Quickstart: the paper's Listing 1 end to end.
//
//   1. Load idiomatic imperative PyMini code.
//   2. Inspect the converted (overloadable functional) form.
//   3. Run it three ways: Python semantics, eager tensors, staged graph.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>
#include <iostream>

#include "core/api.h"

int main() {
  using namespace ag;         // NOLINT
  using namespace ag::core;   // NOLINT

  AutoGraph agc;
  agc.LoadSource(R"(
def f(x):
  if x > 0:
    x = x * x
  return x
)");

  // --- Conversion (the compiler half of AutoGraph) ---
  std::cout << "=== converted source (ag.convert output) ===\n"
            << agc.ConvertedSource("f") << "\n";

  // --- Dynamic dispatch (the runtime half) ---
  // 1. Plain Python values: ordinary imperative semantics.
  Value a = agc.CallEager("f", {Value(int64_t{3})});
  std::printf("f(3)            [python int]    = %lld\n",
              static_cast<long long>(a.AsInt()));

  // 2. Eager tensors: ops execute immediately.
  Value b = agc.CallEager("f", {Value(Tensor::Scalar(-4.0f))});
  std::printf("f(-4.0)         [eager tensor]  = %g\n",
              b.AsTensor().scalar());

  // 3. Staged: the same code becomes a graph with a functional Cond;
  //    the Session executes it for any input without reconversion.
  StagedFunction staged = agc.Stage("f", {StageArg::Placeholder("x")});
  std::printf("f(3.0) staged   [graph, %2zu nodes] = %g\n",
              staged.graph->num_nodes(),
              staged.Run1({Tensor::Scalar(3.0f)}).scalar());
  std::printf("f(-4.0) staged  [same graph]    = %g\n",
              staged.Run1({Tensor::Scalar(-4.0f)}).scalar());

  std::cout << "\n=== staged graph ===\n" << staged.graph->DebugString();
  return 0;
}
