// The paper's §8/§9.1 Lantern showcase: a *recursive* model (tree_prod,
// then a full TreeLSTM) staged through AutoGraph onto the Lantern
// backend — something the TF-style graph IR cannot express. Emits the
// S-expression IR and the CPS-style generated C++ (like the paper's
// Snippet) to ./treelstm_generated.{sexpr,cpp}, then trains the TreeLSTM
// for a few epochs.
//
// Build & run:  ./build/examples/treelstm_lantern
#include <cstdio>
#include <fstream>

#include "tensor/tensor_ops.h"
#include "workloads/treelstm.h"

int main() {
  using namespace ag;             // NOLINT
  using namespace ag::workloads;  // NOLINT
  using lantern::LTree;

  // --- Part 1: the paper's tree_prod example ---
  {
    core::AutoGraph agc;
    agc.LoadSource(R"(
def tree_prod(base, tree):
  if not tree.is_empty:
    l = tree_prod(base, tree.left)
    r = tree_prod(base, tree.right)
    return l * r * tree.value
  else:
    return base
)");
    core::LanternStagedFunction lf = core::StageLantern(
        agc, "tree_prod",
        {core::LanternArg::TensorParam(), core::LanternArg::TreeParam()});
    std::printf("=== tree_prod staged to Lantern (S-expressions) ===\n%s\n",
                lf.SExpr().c_str());

    auto tree = LTree::Node(LTree::Leaf(Tensor::Scalar(3.0f)),
                            LTree::Leaf(Tensor::Scalar(5.0f)),
                            Tensor::Scalar(2.0f));
    auto [value, grads] =
        lf.RunWithGradients({Tensor::Scalar(1.0f), tree});
    std::printf("tree_prod(1.0, {3,5;2}) = %g, d/dbase = %g\n\n",
                value.scalar(), grads[0].scalar());
  }

  // --- Part 2: TreeLSTM sentiment classification ---
  TreeLstmConfig config;
  config.hidden = 64;
  config.embed = 64;
  config.mlp = 64;
  config.vocab = 1000;
  config.avg_leaves = 12;
  core::AutoGraph agc;
  core::LanternStagedFunction staged = StageTreeLstm(agc, config);

  {
    std::ofstream sexpr("treelstm_generated.sexpr");
    sexpr << staged.SExpr();
    std::ofstream cpp("treelstm_generated.cpp");
    cpp << staged.EmitCpp();
  }
  std::printf("wrote treelstm_generated.sexpr / treelstm_generated.cpp\n");

  TreeLstmWeights weights = InitTreeLstmWeights(config, 1);
  std::vector<lantern::LTreePtr> trees = MakeTrees(16, config);
  std::vector<Tensor> w = weights.AsVector();

  for (int epoch = 0; epoch < 5; ++epoch) {
    float total = 0;
    for (const lantern::LTreePtr& tree : trees) {
      std::vector<lantern::LValue> args{tree};
      for (const Tensor& t : w) args.emplace_back(t);
      auto [loss, grads] = staged.RunWithGradients(args);
      total += loss.scalar();
      for (size_t i = 0; i < w.size(); ++i) {
        w[i] = Sub(w[i], Mul(Tensor::Scalar(config.lr), grads[i + 1]));
      }
    }
    std::printf("epoch %d: mean loss = %.4f\n", epoch,
                total / static_cast<float>(trees.size()));
  }
  return 0;
}
