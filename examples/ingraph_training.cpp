// The paper's §9 "In-Graph Training" example: an entire SGD training loop
// — model, loss, gradients, parameter updates, and the while loop itself
// — staged into one graph and executed with a single Session::Run call.
//
// Build & run:  ./build/examples/ingraph_training
#include <cstdio>

#include "tensor/tensor_ops.h"
#include "workloads/training.h"

int main() {
  using namespace ag;             // NOLINT
  using namespace ag::workloads;  // NOLINT

  MnistConfig config;
  config.batch = 200;
  config.features = 784;
  config.classes = 10;
  config.steps = 400;
  MnistData data = MakeMnistData(config);

  core::AutoGraph agc;
  agc.LoadSource(TrainLoopSource());
  std::printf("source:\n%s\n", TrainLoopSource().c_str());

  core::StagedFunction loop = agc.Stage(
      "train_loop",
      {core::StageArg::Placeholder("x"),
       core::StageArg::Placeholder("y", DType::kInt32),
       core::StageArg::Placeholder("w"), core::StageArg::Placeholder("b"),
       core::StageArg::Constant(
           core::Value(static_cast<double>(config.lr))),
       core::StageArg::Constant(core::Value(int64_t{100}))});

  std::printf("staged training-loop graph: %zu nodes "
              "(folded=%d merged=%d pruned=%d)\n\n",
              loop.graph->num_nodes(), loop.optimize_stats.folded,
              loop.optimize_stats.merged, loop.optimize_stats.pruned);

  Tensor w = data.w0;
  Tensor b = data.b0;
  auto loss_now = [&] {
    return SoftmaxCrossEntropy(Add(MatMul(data.images, w), b), data.labels)
        .scalar();
  };
  std::printf("step    0: loss = %.4f\n", loss_now());
  for (int chunk = 1; chunk <= 4; ++chunk) {
    // 100 SGD steps per Session::Run call — the loop runs in-graph.
    std::vector<exec::RuntimeValue> out =
        loop.Run({data.images, data.labels, w, b});
    w = exec::AsTensor(out[0]);
    b = exec::AsTensor(out[1]);
    std::printf("step %4d: loss = %.4f   (one Run = 100 in-graph steps)\n",
                chunk * 100, loss_now());
  }
  return 0;
}
