// The paper's Appendix D.1 beam-search example: a while loop with a
// data-dependent `break` (all beams emitted EOS) that AutoGraph lowers
// into the staged loop condition, so the staged search also terminates
// early.
//
// Build & run:  ./build/examples/beam_search
#include <chrono>
#include <cstdio>
#include <functional>

#include "workloads/beam_search.h"

namespace {

double MeasureMs(const std::function<void()>& fn, int iters) {
  fn();
  auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) fn();
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
             .count() /
         iters;
}

}  // namespace

int main() {
  using namespace ag;             // NOLINT
  using namespace ag::workloads;  // NOLINT

  BeamConfig config;
  config.beam = 8;
  config.vocab = 256;
  config.hidden = 64;
  config.max_len = 128;
  config.eos_bias = 3.0f;
  BeamInputs inputs = MakeBeamInputs(config);

  core::AutoGraph agc;
  InstallBeamSearch(agc, config, inputs);
  std::printf("source:\n%s\n", BeamSearchSource().c_str());

  // Eager run.
  const std::vector<core::Value> args{core::Value(inputs.init_state),
                                      core::Value(inputs.init_scores),
                                      core::Value(inputs.init_tokens)};
  core::Value eager = agc.CallEager("beam_search", args);
  const int64_t eager_steps = eager.AsTuple()->elts[2].AsInt();

  // Staged run.
  core::StagedFunction staged = agc.Stage(
      "beam_search",
      {core::StageArg::Placeholder("state"),
       core::StageArg::Placeholder("scores"),
       core::StageArg::Placeholder("tokens", DType::kInt32)});
  const std::vector<exec::RuntimeValue> feeds{
      inputs.init_state, inputs.init_scores, inputs.init_tokens};
  std::vector<exec::RuntimeValue> out = staged.Run(feeds);
  const int64_t staged_steps = exec::AsTensor(out[2]).scalar_int();

  std::printf("max_len=%lld; search terminated after %lld steps "
              "(eager) / %lld steps (staged) — early exit preserved\n",
              static_cast<long long>(config.max_len),
              static_cast<long long>(eager_steps),
              static_cast<long long>(staged_steps));
  std::printf("best beam score: %.4f\n",
              exec::AsTensor(out[0]).at(0));

  double eager_ms =
      MeasureMs([&] { (void)agc.CallEager("beam_search", args); }, 10);
  double staged_ms = MeasureMs([&] { (void)staged.Run(feeds); }, 10);
  std::printf("eager  %.3f ms/search\nstaged %.3f ms/search  (%.2fx)\n",
              eager_ms, staged_ms, eager_ms / staged_ms);
  return 0;
}
