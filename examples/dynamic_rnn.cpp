// The paper's §9 "RNN cells" example: the terse, idiomatic dynamic_rnn
// (a data-dependent for-loop with a staged tensor list) runs eagerly,
// via AutoGraph staging, and as the handwritten Appendix-A graph — all
// three produce identical outputs, and the two graphs run at the same
// speed.
//
// Build & run:  ./build/examples/dynamic_rnn
#include <chrono>
#include <cstdio>
#include <functional>

#include "tensor/tensor_ops.h"
#include "workloads/rnn.h"

namespace {

double MeasureMs(const std::function<void()>& fn, int iters) {
  fn();  // warm-up
  auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) fn();
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
             .count() /
         iters;
}

}  // namespace

int main() {
  using namespace ag;             // NOLINT
  using namespace ag::workloads;  // NOLINT

  RnnConfig config;
  config.batch = 32;
  config.seq_len = 64;
  config.input_size = 64;
  config.hidden = 128;
  RnnInputs inputs = MakeRnnInputs(config);

  core::AutoGraph agc;
  InstallRnn(agc, inputs);
  std::printf("source:\n%s\n", DynamicRnnSource().c_str());

  // Eager.
  std::vector<core::Value> args{core::Value(inputs.input_data),
                                core::Value(inputs.initial_state),
                                core::Value(inputs.sequence_len)};
  core::Value eager_out = agc.CallEager("dynamic_rnn", args);
  Tensor eager_outputs = eager_out.AsTuple()->elts[0].AsTensor();
  double eager_ms = MeasureMs(
      [&] { (void)agc.CallEager("dynamic_rnn", args); }, 10);

  // AutoGraph staged.
  core::StagedFunction staged = agc.Stage(
      "dynamic_rnn",
      {core::StageArg::Placeholder("input_data"),
       core::StageArg::Placeholder("initial_state"),
       core::StageArg::Placeholder("sequence_len", DType::kInt32)});
  const std::vector<exec::RuntimeValue> feeds{
      inputs.input_data, inputs.initial_state, inputs.sequence_len};
  Tensor staged_outputs = exec::AsTensor(staged.Run(feeds)[0]);
  double staged_ms = MeasureMs([&] { (void)staged.Run(feeds); }, 10);

  // Handwritten graph (paper Appendix A).
  core::StagedFunction hand = BuildHandwrittenRnnGraph(inputs);
  Tensor hand_outputs = exec::AsTensor(hand.Run(feeds)[0]);
  double hand_ms = MeasureMs([&] { (void)hand.Run(feeds); }, 10);

  std::printf("outputs shape: %s\n", eager_outputs.shape().str().c_str());
  std::printf("eager == autograph : %s\n",
              AllClose(eager_outputs, staged_outputs, 1e-4f) ? "yes" : "NO");
  std::printf("eager == handwritten: %s\n",
              AllClose(eager_outputs, hand_outputs, 1e-4f) ? "yes" : "NO");
  std::printf("\n             time/run   examples/s\n");
  std::printf("eager       %7.2f ms   %8.0f\n", eager_ms,
              1000.0 * config.batch / eager_ms);
  std::printf("autograph   %7.2f ms   %8.0f\n", staged_ms,
              1000.0 * config.batch / staged_ms);
  std::printf("handwritten %7.2f ms   %8.0f\n", hand_ms,
              1000.0 * config.batch / hand_ms);
  std::printf("\nautograph graph: %zu nodes (vs %zu handwritten)\n",
              staged.graph->num_nodes(), hand.graph->num_nodes());
  return 0;
}
