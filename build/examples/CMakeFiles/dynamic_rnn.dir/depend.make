# Empty dependencies file for dynamic_rnn.
# This may be replaced when dependencies are built.
