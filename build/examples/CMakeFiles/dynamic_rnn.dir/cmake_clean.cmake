file(REMOVE_RECURSE
  "CMakeFiles/dynamic_rnn.dir/dynamic_rnn.cpp.o"
  "CMakeFiles/dynamic_rnn.dir/dynamic_rnn.cpp.o.d"
  "dynamic_rnn"
  "dynamic_rnn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_rnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
