# Empty compiler generated dependencies file for beam_search.
# This may be replaced when dependencies are built.
