# Empty dependencies file for treelstm_lantern.
# This may be replaced when dependencies are built.
