file(REMOVE_RECURSE
  "CMakeFiles/treelstm_lantern.dir/treelstm_lantern.cpp.o"
  "CMakeFiles/treelstm_lantern.dir/treelstm_lantern.cpp.o.d"
  "treelstm_lantern"
  "treelstm_lantern.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/treelstm_lantern.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
