# Empty compiler generated dependencies file for ingraph_training.
# This may be replaced when dependencies are built.
