file(REMOVE_RECURSE
  "CMakeFiles/ingraph_training.dir/ingraph_training.cpp.o"
  "CMakeFiles/ingraph_training.dir/ingraph_training.cpp.o.d"
  "ingraph_training"
  "ingraph_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ingraph_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
