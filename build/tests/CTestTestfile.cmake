# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/smoke_test[1]_include.cmake")
include("/root/repo/build/tests/lantern_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/appendix_workloads_test[1]_include.cmake")
include("/root/repo/build/tests/tensor_test[1]_include.cmake")
include("/root/repo/build/tests/lang_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/transforms_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/exec_test[1]_include.cmake")
include("/root/repo/build/tests/autodiff_test[1]_include.cmake")
include("/root/repo/build/tests/interpreter_test[1]_include.cmake")
include("/root/repo/build/tests/errors_test[1]_include.cmake")
include("/root/repo/build/tests/api_test[1]_include.cmake")
include("/root/repo/build/tests/reference_test[1]_include.cmake")
include("/root/repo/build/tests/supported_features_test[1]_include.cmake")
