
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/lantern_test.cc" "tests/CMakeFiles/lantern_test.dir/lantern_test.cc.o" "gcc" "tests/CMakeFiles/lantern_test.dir/lantern_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/ag_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ag_core.dir/DependInfo.cmake"
  "/root/repo/build/src/transforms/CMakeFiles/ag_transforms.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/ag_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/ag_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/ag_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/ag_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/lantern/CMakeFiles/ag_lantern.dir/DependInfo.cmake"
  "/root/repo/build/src/autodiff/CMakeFiles/ag_autodiff.dir/DependInfo.cmake"
  "/root/repo/build/src/eager/CMakeFiles/ag_eager.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/ag_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ag_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
