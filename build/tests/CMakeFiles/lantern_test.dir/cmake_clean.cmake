file(REMOVE_RECURSE
  "CMakeFiles/lantern_test.dir/lantern_test.cc.o"
  "CMakeFiles/lantern_test.dir/lantern_test.cc.o.d"
  "lantern_test"
  "lantern_test.pdb"
  "lantern_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lantern_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
