# Empty compiler generated dependencies file for lantern_test.
# This may be replaced when dependencies are built.
