# Empty dependencies file for supported_features_test.
# This may be replaced when dependencies are built.
