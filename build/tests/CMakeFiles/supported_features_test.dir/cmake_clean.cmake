file(REMOVE_RECURSE
  "CMakeFiles/supported_features_test.dir/supported_features_test.cc.o"
  "CMakeFiles/supported_features_test.dir/supported_features_test.cc.o.d"
  "supported_features_test"
  "supported_features_test.pdb"
  "supported_features_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/supported_features_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
