# Empty compiler generated dependencies file for appendix_workloads_test.
# This may be replaced when dependencies are built.
