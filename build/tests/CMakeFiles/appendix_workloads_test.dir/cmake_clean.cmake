file(REMOVE_RECURSE
  "CMakeFiles/appendix_workloads_test.dir/appendix_workloads_test.cc.o"
  "CMakeFiles/appendix_workloads_test.dir/appendix_workloads_test.cc.o.d"
  "appendix_workloads_test"
  "appendix_workloads_test.pdb"
  "appendix_workloads_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/appendix_workloads_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
