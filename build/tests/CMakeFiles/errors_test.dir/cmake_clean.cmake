file(REMOVE_RECURSE
  "CMakeFiles/errors_test.dir/errors_test.cc.o"
  "CMakeFiles/errors_test.dir/errors_test.cc.o.d"
  "errors_test"
  "errors_test.pdb"
  "errors_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/errors_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
