file(REMOVE_RECURSE
  "CMakeFiles/ag_core.dir/api.cc.o"
  "CMakeFiles/ag_core.dir/api.cc.o.d"
  "CMakeFiles/ag_core.dir/interpreter.cc.o"
  "CMakeFiles/ag_core.dir/interpreter.cc.o.d"
  "CMakeFiles/ag_core.dir/lantern_api.cc.o"
  "CMakeFiles/ag_core.dir/lantern_api.cc.o.d"
  "CMakeFiles/ag_core.dir/modules.cc.o"
  "CMakeFiles/ag_core.dir/modules.cc.o.d"
  "CMakeFiles/ag_core.dir/operators.cc.o"
  "CMakeFiles/ag_core.dir/operators.cc.o.d"
  "CMakeFiles/ag_core.dir/value.cc.o"
  "CMakeFiles/ag_core.dir/value.cc.o.d"
  "libag_core.a"
  "libag_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ag_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
