# Empty compiler generated dependencies file for ag_core.
# This may be replaced when dependencies are built.
