# CMake generated Testfile for 
# Source directory: /root/repo/src/lantern
# Build directory: /root/repo/build/src/lantern
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
