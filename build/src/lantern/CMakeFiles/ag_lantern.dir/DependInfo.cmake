
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lantern/builder.cc" "src/lantern/CMakeFiles/ag_lantern.dir/builder.cc.o" "gcc" "src/lantern/CMakeFiles/ag_lantern.dir/builder.cc.o.d"
  "/root/repo/src/lantern/codegen.cc" "src/lantern/CMakeFiles/ag_lantern.dir/codegen.cc.o" "gcc" "src/lantern/CMakeFiles/ag_lantern.dir/codegen.cc.o.d"
  "/root/repo/src/lantern/executor.cc" "src/lantern/CMakeFiles/ag_lantern.dir/executor.cc.o" "gcc" "src/lantern/CMakeFiles/ag_lantern.dir/executor.cc.o.d"
  "/root/repo/src/lantern/ir.cc" "src/lantern/CMakeFiles/ag_lantern.dir/ir.cc.o" "gcc" "src/lantern/CMakeFiles/ag_lantern.dir/ir.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/ag_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ag_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
