file(REMOVE_RECURSE
  "CMakeFiles/ag_lantern.dir/builder.cc.o"
  "CMakeFiles/ag_lantern.dir/builder.cc.o.d"
  "CMakeFiles/ag_lantern.dir/codegen.cc.o"
  "CMakeFiles/ag_lantern.dir/codegen.cc.o.d"
  "CMakeFiles/ag_lantern.dir/executor.cc.o"
  "CMakeFiles/ag_lantern.dir/executor.cc.o.d"
  "CMakeFiles/ag_lantern.dir/ir.cc.o"
  "CMakeFiles/ag_lantern.dir/ir.cc.o.d"
  "libag_lantern.a"
  "libag_lantern.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ag_lantern.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
