# Empty dependencies file for ag_lantern.
# This may be replaced when dependencies are built.
