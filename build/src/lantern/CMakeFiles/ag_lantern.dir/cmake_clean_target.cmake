file(REMOVE_RECURSE
  "libag_lantern.a"
)
