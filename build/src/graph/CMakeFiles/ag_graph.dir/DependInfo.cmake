
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/graph.cc" "src/graph/CMakeFiles/ag_graph.dir/graph.cc.o" "gcc" "src/graph/CMakeFiles/ag_graph.dir/graph.cc.o.d"
  "/root/repo/src/graph/ops.cc" "src/graph/CMakeFiles/ag_graph.dir/ops.cc.o" "gcc" "src/graph/CMakeFiles/ag_graph.dir/ops.cc.o.d"
  "/root/repo/src/graph/optimize.cc" "src/graph/CMakeFiles/ag_graph.dir/optimize.cc.o" "gcc" "src/graph/CMakeFiles/ag_graph.dir/optimize.cc.o.d"
  "/root/repo/src/graph/serialize.cc" "src/graph/CMakeFiles/ag_graph.dir/serialize.cc.o" "gcc" "src/graph/CMakeFiles/ag_graph.dir/serialize.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/ag_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ag_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
