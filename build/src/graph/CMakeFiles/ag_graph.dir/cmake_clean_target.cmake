file(REMOVE_RECURSE
  "libag_graph.a"
)
