file(REMOVE_RECURSE
  "CMakeFiles/ag_graph.dir/graph.cc.o"
  "CMakeFiles/ag_graph.dir/graph.cc.o.d"
  "CMakeFiles/ag_graph.dir/ops.cc.o"
  "CMakeFiles/ag_graph.dir/ops.cc.o.d"
  "CMakeFiles/ag_graph.dir/optimize.cc.o"
  "CMakeFiles/ag_graph.dir/optimize.cc.o.d"
  "CMakeFiles/ag_graph.dir/serialize.cc.o"
  "CMakeFiles/ag_graph.dir/serialize.cc.o.d"
  "libag_graph.a"
  "libag_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ag_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
