# Empty compiler generated dependencies file for ag_graph.
# This may be replaced when dependencies are built.
