file(REMOVE_RECURSE
  "CMakeFiles/ag_support.dir/error.cc.o"
  "CMakeFiles/ag_support.dir/error.cc.o.d"
  "CMakeFiles/ag_support.dir/strings.cc.o"
  "CMakeFiles/ag_support.dir/strings.cc.o.d"
  "libag_support.a"
  "libag_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ag_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
