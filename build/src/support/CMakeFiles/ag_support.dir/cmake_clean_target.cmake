file(REMOVE_RECURSE
  "libag_support.a"
)
