# Empty compiler generated dependencies file for ag_support.
# This may be replaced when dependencies are built.
