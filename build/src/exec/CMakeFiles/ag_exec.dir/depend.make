# Empty dependencies file for ag_exec.
# This may be replaced when dependencies are built.
