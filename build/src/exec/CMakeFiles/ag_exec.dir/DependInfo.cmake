
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exec/kernels.cc" "src/exec/CMakeFiles/ag_exec.dir/kernels.cc.o" "gcc" "src/exec/CMakeFiles/ag_exec.dir/kernels.cc.o.d"
  "/root/repo/src/exec/session.cc" "src/exec/CMakeFiles/ag_exec.dir/session.cc.o" "gcc" "src/exec/CMakeFiles/ag_exec.dir/session.cc.o.d"
  "/root/repo/src/exec/value.cc" "src/exec/CMakeFiles/ag_exec.dir/value.cc.o" "gcc" "src/exec/CMakeFiles/ag_exec.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/ag_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/ag_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ag_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
