file(REMOVE_RECURSE
  "libag_exec.a"
)
