file(REMOVE_RECURSE
  "CMakeFiles/ag_exec.dir/kernels.cc.o"
  "CMakeFiles/ag_exec.dir/kernels.cc.o.d"
  "CMakeFiles/ag_exec.dir/session.cc.o"
  "CMakeFiles/ag_exec.dir/session.cc.o.d"
  "CMakeFiles/ag_exec.dir/value.cc.o"
  "CMakeFiles/ag_exec.dir/value.cc.o.d"
  "libag_exec.a"
  "libag_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ag_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
