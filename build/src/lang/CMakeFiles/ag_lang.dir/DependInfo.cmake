
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lang/ast.cc" "src/lang/CMakeFiles/ag_lang.dir/ast.cc.o" "gcc" "src/lang/CMakeFiles/ag_lang.dir/ast.cc.o.d"
  "/root/repo/src/lang/lexer.cc" "src/lang/CMakeFiles/ag_lang.dir/lexer.cc.o" "gcc" "src/lang/CMakeFiles/ag_lang.dir/lexer.cc.o.d"
  "/root/repo/src/lang/parser.cc" "src/lang/CMakeFiles/ag_lang.dir/parser.cc.o" "gcc" "src/lang/CMakeFiles/ag_lang.dir/parser.cc.o.d"
  "/root/repo/src/lang/pretty_printer.cc" "src/lang/CMakeFiles/ag_lang.dir/pretty_printer.cc.o" "gcc" "src/lang/CMakeFiles/ag_lang.dir/pretty_printer.cc.o.d"
  "/root/repo/src/lang/templates.cc" "src/lang/CMakeFiles/ag_lang.dir/templates.cc.o" "gcc" "src/lang/CMakeFiles/ag_lang.dir/templates.cc.o.d"
  "/root/repo/src/lang/unparser.cc" "src/lang/CMakeFiles/ag_lang.dir/unparser.cc.o" "gcc" "src/lang/CMakeFiles/ag_lang.dir/unparser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/ag_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
