file(REMOVE_RECURSE
  "CMakeFiles/ag_lang.dir/ast.cc.o"
  "CMakeFiles/ag_lang.dir/ast.cc.o.d"
  "CMakeFiles/ag_lang.dir/lexer.cc.o"
  "CMakeFiles/ag_lang.dir/lexer.cc.o.d"
  "CMakeFiles/ag_lang.dir/parser.cc.o"
  "CMakeFiles/ag_lang.dir/parser.cc.o.d"
  "CMakeFiles/ag_lang.dir/pretty_printer.cc.o"
  "CMakeFiles/ag_lang.dir/pretty_printer.cc.o.d"
  "CMakeFiles/ag_lang.dir/templates.cc.o"
  "CMakeFiles/ag_lang.dir/templates.cc.o.d"
  "CMakeFiles/ag_lang.dir/unparser.cc.o"
  "CMakeFiles/ag_lang.dir/unparser.cc.o.d"
  "libag_lang.a"
  "libag_lang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ag_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
