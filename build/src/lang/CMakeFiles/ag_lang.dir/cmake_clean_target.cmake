file(REMOVE_RECURSE
  "libag_lang.a"
)
