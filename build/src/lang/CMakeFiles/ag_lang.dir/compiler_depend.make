# Empty compiler generated dependencies file for ag_lang.
# This may be replaced when dependencies are built.
