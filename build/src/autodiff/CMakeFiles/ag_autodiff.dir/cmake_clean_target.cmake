file(REMOVE_RECURSE
  "libag_autodiff.a"
)
