
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/autodiff/graph_grad.cc" "src/autodiff/CMakeFiles/ag_autodiff.dir/graph_grad.cc.o" "gcc" "src/autodiff/CMakeFiles/ag_autodiff.dir/graph_grad.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/ag_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/ag_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ag_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
