# Empty dependencies file for ag_autodiff.
# This may be replaced when dependencies are built.
