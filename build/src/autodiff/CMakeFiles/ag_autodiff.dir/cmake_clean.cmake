file(REMOVE_RECURSE
  "CMakeFiles/ag_autodiff.dir/graph_grad.cc.o"
  "CMakeFiles/ag_autodiff.dir/graph_grad.cc.o.d"
  "libag_autodiff.a"
  "libag_autodiff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ag_autodiff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
