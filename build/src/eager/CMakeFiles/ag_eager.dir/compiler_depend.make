# Empty compiler generated dependencies file for ag_eager.
# This may be replaced when dependencies are built.
