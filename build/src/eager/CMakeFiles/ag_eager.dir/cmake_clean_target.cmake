file(REMOVE_RECURSE
  "libag_eager.a"
)
