file(REMOVE_RECURSE
  "CMakeFiles/ag_eager.dir/eager.cc.o"
  "CMakeFiles/ag_eager.dir/eager.cc.o.d"
  "libag_eager.a"
  "libag_eager.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ag_eager.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
