file(REMOVE_RECURSE
  "libag_analysis.a"
)
