file(REMOVE_RECURSE
  "CMakeFiles/ag_analysis.dir/activity.cc.o"
  "CMakeFiles/ag_analysis.dir/activity.cc.o.d"
  "CMakeFiles/ag_analysis.dir/cfg.cc.o"
  "CMakeFiles/ag_analysis.dir/cfg.cc.o.d"
  "CMakeFiles/ag_analysis.dir/liveness.cc.o"
  "CMakeFiles/ag_analysis.dir/liveness.cc.o.d"
  "CMakeFiles/ag_analysis.dir/reaching_definitions.cc.o"
  "CMakeFiles/ag_analysis.dir/reaching_definitions.cc.o.d"
  "libag_analysis.a"
  "libag_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ag_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
