# Empty dependencies file for ag_analysis.
# This may be replaced when dependencies are built.
