# Empty compiler generated dependencies file for ag_tensor.
# This may be replaced when dependencies are built.
