file(REMOVE_RECURSE
  "libag_tensor.a"
)
