file(REMOVE_RECURSE
  "CMakeFiles/ag_tensor.dir/rng.cc.o"
  "CMakeFiles/ag_tensor.dir/rng.cc.o.d"
  "CMakeFiles/ag_tensor.dir/shape.cc.o"
  "CMakeFiles/ag_tensor.dir/shape.cc.o.d"
  "CMakeFiles/ag_tensor.dir/tensor.cc.o"
  "CMakeFiles/ag_tensor.dir/tensor.cc.o.d"
  "CMakeFiles/ag_tensor.dir/tensor_ops.cc.o"
  "CMakeFiles/ag_tensor.dir/tensor_ops.cc.o.d"
  "libag_tensor.a"
  "libag_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ag_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
