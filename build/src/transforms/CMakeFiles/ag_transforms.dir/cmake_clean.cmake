file(REMOVE_RECURSE
  "CMakeFiles/ag_transforms.dir/control_flow.cc.o"
  "CMakeFiles/ag_transforms.dir/control_flow.cc.o.d"
  "CMakeFiles/ag_transforms.dir/jump_passes.cc.o"
  "CMakeFiles/ag_transforms.dir/jump_passes.cc.o.d"
  "CMakeFiles/ag_transforms.dir/pass_manager.cc.o"
  "CMakeFiles/ag_transforms.dir/pass_manager.cc.o.d"
  "CMakeFiles/ag_transforms.dir/simple_passes.cc.o"
  "CMakeFiles/ag_transforms.dir/simple_passes.cc.o.d"
  "CMakeFiles/ag_transforms.dir/transformer.cc.o"
  "CMakeFiles/ag_transforms.dir/transformer.cc.o.d"
  "libag_transforms.a"
  "libag_transforms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ag_transforms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
