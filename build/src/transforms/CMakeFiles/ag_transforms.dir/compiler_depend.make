# Empty compiler generated dependencies file for ag_transforms.
# This may be replaced when dependencies are built.
