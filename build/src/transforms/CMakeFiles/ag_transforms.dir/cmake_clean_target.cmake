file(REMOVE_RECURSE
  "libag_transforms.a"
)
