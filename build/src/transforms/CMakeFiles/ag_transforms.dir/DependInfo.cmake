
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transforms/control_flow.cc" "src/transforms/CMakeFiles/ag_transforms.dir/control_flow.cc.o" "gcc" "src/transforms/CMakeFiles/ag_transforms.dir/control_flow.cc.o.d"
  "/root/repo/src/transforms/jump_passes.cc" "src/transforms/CMakeFiles/ag_transforms.dir/jump_passes.cc.o" "gcc" "src/transforms/CMakeFiles/ag_transforms.dir/jump_passes.cc.o.d"
  "/root/repo/src/transforms/pass_manager.cc" "src/transforms/CMakeFiles/ag_transforms.dir/pass_manager.cc.o" "gcc" "src/transforms/CMakeFiles/ag_transforms.dir/pass_manager.cc.o.d"
  "/root/repo/src/transforms/simple_passes.cc" "src/transforms/CMakeFiles/ag_transforms.dir/simple_passes.cc.o" "gcc" "src/transforms/CMakeFiles/ag_transforms.dir/simple_passes.cc.o.d"
  "/root/repo/src/transforms/transformer.cc" "src/transforms/CMakeFiles/ag_transforms.dir/transformer.cc.o" "gcc" "src/transforms/CMakeFiles/ag_transforms.dir/transformer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/ag_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/ag_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ag_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
