
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/beam_search.cc" "src/workloads/CMakeFiles/ag_workloads.dir/beam_search.cc.o" "gcc" "src/workloads/CMakeFiles/ag_workloads.dir/beam_search.cc.o.d"
  "/root/repo/src/workloads/lbfgs.cc" "src/workloads/CMakeFiles/ag_workloads.dir/lbfgs.cc.o" "gcc" "src/workloads/CMakeFiles/ag_workloads.dir/lbfgs.cc.o.d"
  "/root/repo/src/workloads/maml.cc" "src/workloads/CMakeFiles/ag_workloads.dir/maml.cc.o" "gcc" "src/workloads/CMakeFiles/ag_workloads.dir/maml.cc.o.d"
  "/root/repo/src/workloads/rnn.cc" "src/workloads/CMakeFiles/ag_workloads.dir/rnn.cc.o" "gcc" "src/workloads/CMakeFiles/ag_workloads.dir/rnn.cc.o.d"
  "/root/repo/src/workloads/seq2seq.cc" "src/workloads/CMakeFiles/ag_workloads.dir/seq2seq.cc.o" "gcc" "src/workloads/CMakeFiles/ag_workloads.dir/seq2seq.cc.o.d"
  "/root/repo/src/workloads/training.cc" "src/workloads/CMakeFiles/ag_workloads.dir/training.cc.o" "gcc" "src/workloads/CMakeFiles/ag_workloads.dir/training.cc.o.d"
  "/root/repo/src/workloads/treelstm.cc" "src/workloads/CMakeFiles/ag_workloads.dir/treelstm.cc.o" "gcc" "src/workloads/CMakeFiles/ag_workloads.dir/treelstm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ag_core.dir/DependInfo.cmake"
  "/root/repo/build/src/eager/CMakeFiles/ag_eager.dir/DependInfo.cmake"
  "/root/repo/build/src/autodiff/CMakeFiles/ag_autodiff.dir/DependInfo.cmake"
  "/root/repo/build/src/transforms/CMakeFiles/ag_transforms.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/ag_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/ag_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/ag_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/ag_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/lantern/CMakeFiles/ag_lantern.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/ag_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ag_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
