# Empty compiler generated dependencies file for ag_workloads.
# This may be replaced when dependencies are built.
