file(REMOVE_RECURSE
  "libag_workloads.a"
)
