file(REMOVE_RECURSE
  "CMakeFiles/ag_workloads.dir/beam_search.cc.o"
  "CMakeFiles/ag_workloads.dir/beam_search.cc.o.d"
  "CMakeFiles/ag_workloads.dir/lbfgs.cc.o"
  "CMakeFiles/ag_workloads.dir/lbfgs.cc.o.d"
  "CMakeFiles/ag_workloads.dir/maml.cc.o"
  "CMakeFiles/ag_workloads.dir/maml.cc.o.d"
  "CMakeFiles/ag_workloads.dir/rnn.cc.o"
  "CMakeFiles/ag_workloads.dir/rnn.cc.o.d"
  "CMakeFiles/ag_workloads.dir/seq2seq.cc.o"
  "CMakeFiles/ag_workloads.dir/seq2seq.cc.o.d"
  "CMakeFiles/ag_workloads.dir/training.cc.o"
  "CMakeFiles/ag_workloads.dir/training.cc.o.d"
  "CMakeFiles/ag_workloads.dir/treelstm.cc.o"
  "CMakeFiles/ag_workloads.dir/treelstm.cc.o.d"
  "libag_workloads.a"
  "libag_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ag_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
