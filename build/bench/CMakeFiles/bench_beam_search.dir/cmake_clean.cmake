file(REMOVE_RECURSE
  "CMakeFiles/bench_beam_search.dir/bench_beam_search.cc.o"
  "CMakeFiles/bench_beam_search.dir/bench_beam_search.cc.o.d"
  "bench_beam_search"
  "bench_beam_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_beam_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
