# Empty dependencies file for bench_beam_search.
# This may be replaced when dependencies are built.
