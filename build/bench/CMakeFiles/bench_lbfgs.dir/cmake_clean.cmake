file(REMOVE_RECURSE
  "CMakeFiles/bench_lbfgs.dir/bench_lbfgs.cc.o"
  "CMakeFiles/bench_lbfgs.dir/bench_lbfgs.cc.o.d"
  "bench_lbfgs"
  "bench_lbfgs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lbfgs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
