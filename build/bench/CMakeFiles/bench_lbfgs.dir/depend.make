# Empty dependencies file for bench_lbfgs.
# This may be replaced when dependencies are built.
