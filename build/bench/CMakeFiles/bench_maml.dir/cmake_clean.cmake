file(REMOVE_RECURSE
  "CMakeFiles/bench_maml.dir/bench_maml.cc.o"
  "CMakeFiles/bench_maml.dir/bench_maml.cc.o.d"
  "bench_maml"
  "bench_maml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_maml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
