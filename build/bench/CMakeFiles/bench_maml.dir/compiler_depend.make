# Empty compiler generated dependencies file for bench_maml.
# This may be replaced when dependencies are built.
