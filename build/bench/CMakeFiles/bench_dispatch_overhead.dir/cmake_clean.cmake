file(REMOVE_RECURSE
  "CMakeFiles/bench_dispatch_overhead.dir/bench_dispatch_overhead.cc.o"
  "CMakeFiles/bench_dispatch_overhead.dir/bench_dispatch_overhead.cc.o.d"
  "bench_dispatch_overhead"
  "bench_dispatch_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dispatch_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
