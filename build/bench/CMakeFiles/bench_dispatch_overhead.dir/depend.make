# Empty dependencies file for bench_dispatch_overhead.
# This may be replaced when dependencies are built.
