# Empty compiler generated dependencies file for bench_seq2seq.
# This may be replaced when dependencies are built.
