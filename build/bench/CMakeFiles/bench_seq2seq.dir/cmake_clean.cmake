file(REMOVE_RECURSE
  "CMakeFiles/bench_seq2seq.dir/bench_seq2seq.cc.o"
  "CMakeFiles/bench_seq2seq.dir/bench_seq2seq.cc.o.d"
  "bench_seq2seq"
  "bench_seq2seq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_seq2seq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
