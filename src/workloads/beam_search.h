// Beam search (paper Appendix D.1): candidate sequences expanded by
// top-k at each step; the loop *breaks* when every beam has emitted EOS —
// the early exit whose staging the paper highlights ("breaking out of the
// loop is essential to the performance of beam search").
#pragma once

#include <cstdint>
#include <string>

#include "core/api.h"
#include "tensor/rng.h"

namespace ag::workloads {

struct BeamConfig {
  int64_t beam = 8;
  int64_t vocab = 512;
  int64_t hidden = 128;
  int64_t max_len = 64;
  // Additive logit bias on EOS; larger -> earlier termination.
  float eos_bias = 2.0f;
  uint64_t seed = 31;
};

struct BeamInputs {
  Tensor init_state;   // [beam, hidden]
  Tensor init_scores;  // [beam]
  Tensor init_tokens;  // [beam] int
  Tensor w_tok;        // [vocab, hidden] token embedding
  Tensor w_ss;         // [hidden, hidden]
  Tensor w_so;         // [hidden, vocab]
  Tensor b_o;          // [vocab] (with EOS bias folded in)
};

[[nodiscard]] BeamInputs MakeBeamInputs(const BeamConfig& config);

// PyMini source of `beam_search(state, scores, tokens)`; returns
// (scores, tokens, steps_taken).
[[nodiscard]] const std::string& BeamSearchSource();

// Loads the source and installs weights/config globals.
void InstallBeamSearch(core::AutoGraph& agc, const BeamConfig& config,
                       const BeamInputs& inputs);

}  // namespace ag::workloads
