#include "workloads/lbfgs.h"

#include "tensor/tensor_ops.h"

namespace ag::workloads {

LbfgsInputs MakeLbfgsInputs(const LbfgsConfig& config) {
  Rng rng(config.seed);
  LbfgsInputs inputs;
  inputs.x = rng.Normal(Shape({config.samples, config.dim}));
  // Labels from a ground-truth separator plus noise.
  Tensor w_true = rng.Normal(Shape({config.dim, 1}));
  Tensor margin = MatMul(inputs.x, w_true);
  std::vector<float> labels(static_cast<size_t>(config.samples));
  for (int64_t i = 0; i < config.samples; ++i) {
    labels[static_cast<size_t>(i)] = margin.at(i) >= 0 ? 1.0f : -1.0f;
  }
  inputs.y = Tensor::FromVector(std::move(labels),
                                Shape({config.samples, 1}));
  inputs.w0 = Tensor::Zeros(Shape({config.dim, 1}));
  return inputs;
}

const std::string& LbfgsSource() {
  static const std::string* kSource = new std::string(R"(
def loss_fn(x, y, w):
  margin = y * tf.matmul(x, w)
  return tf.reduce_mean(tf.log(1.0 + tf.exp(-margin)))

def grad_fn(x, y, w):
  margin = y * tf.matmul(x, w)
  coef = -y * tf.sigmoid(-margin) / n_samples
  return tf.matmul(tf.transpose(x, (1, 0)), coef)

def lbfgs(x, y, w):
  s_hist = tf.zeros((history, dim))
  y_hist = tf.zeros((history, dim))
  rho = tf.zeros((history,))
  g = grad_fn(x, y, w)
  k = 0
  while k < iters:
    # Two-loop recursion over the curvature history.
    q = tf.reshape(g, (dim,))
    alpha = tf.zeros((history,))
    m = tf.minimum(k, history)
    off = 0
    while off < m:
      i = (k - 1 - off) % history
      a = rho[i] * tf.reduce_sum(s_hist[i] * q)
      alpha[i] = a
      q = q - a * y_hist[i]
      off = off + 1
    if k > 0:
      j = (k - 1) % history
      denom = tf.reduce_sum(y_hist[j] * y_hist[j]) + 1e-10
      gamma = tf.reduce_sum(s_hist[j] * y_hist[j]) / denom
      r = gamma * q
    else:
      r = q
    off = m - 1
    while off >= 0:
      i = (k - 1 - off) % history
      beta = rho[i] * tf.reduce_sum(y_hist[i] * r)
      r = r + s_hist[i] * (alpha[i] - beta)
      off = off - 1
    # Parameter and curvature updates.
    d = tf.reshape(r, (dim, 1))
    w_new = w - step * d
    g_new = grad_fn(x, y, w_new)
    s_vec = tf.reshape(w_new - w, (dim,))
    y_vec = tf.reshape(g_new - g, (dim,))
    idx = k % history
    s_hist[idx] = s_vec
    y_hist[idx] = y_vec
    rho[idx] = 1.0 / (tf.reduce_sum(s_vec * y_vec) + 1e-10)
    w = w_new
    g = g_new
    k = k + 1
  return w, loss_fn(x, y, w)
)");
  return *kSource;
}

void InstallLbfgs(core::AutoGraph& agc, const LbfgsConfig& config) {
  agc.LoadSource(LbfgsSource(), "lbfgs.py");
  agc.SetGlobal("dim", core::Value(config.dim));
  agc.SetGlobal("history", core::Value(config.history));
  agc.SetGlobal("iters", core::Value(config.iters));
  agc.SetGlobal("n_samples",
                core::Value(static_cast<double>(config.samples)));
  agc.SetGlobal("step", core::Value(static_cast<double>(config.step)));
}

}  // namespace ag::workloads
