#include "workloads/treelstm.h"

#include <functional>

#include "tensor/tensor_ops.h"

namespace ag::workloads {

std::vector<Tensor> TreeLstmWeights::AsVector() const {
  return {w_emb, wx, ul, ur, b, w_h, b_h, w_o, b_o};
}

TreeLstmWeights TreeLstmWeights::FromVector(const std::vector<Tensor>& v) {
  TreeLstmWeights w;
  w.w_emb = v[0];
  w.wx = v[1];
  w.ul = v[2];
  w.ur = v[3];
  w.b = v[4];
  w.w_h = v[5];
  w.b_h = v[6];
  w.w_o = v[7];
  w.b_o = v[8];
  return w;
}

TreeLstmWeights InitTreeLstmWeights(const TreeLstmConfig& config,
                                    uint64_t seed) {
  Rng rng(seed);
  const float s = 0.08f;
  TreeLstmWeights w;
  w.w_emb = rng.Normal(Shape({config.vocab, config.embed}), 0.0f, s);
  w.wx = rng.Normal(Shape({config.embed, 5 * config.hidden}), 0.0f, s);
  w.ul = rng.Normal(Shape({config.hidden, 5 * config.hidden}), 0.0f, s);
  w.ur = rng.Normal(Shape({config.hidden, 5 * config.hidden}), 0.0f, s);
  w.b = Tensor::Zeros(Shape({1, 5 * config.hidden}));
  w.w_h = rng.Normal(Shape({config.hidden, config.mlp}), 0.0f, s);
  w.b_h = Tensor::Zeros(Shape({1, config.mlp}));
  w.w_o = rng.Normal(Shape({config.mlp, config.classes}), 0.0f, s);
  w.b_o = Tensor::Zeros(Shape({1, config.classes}));
  return w;
}

namespace {

lantern::LTreePtr RandomTree(int leaves, const TreeLstmConfig& config,
                             Rng& rng) {
  auto word = [&rng, &config] {
    return Tensor::FromVector(
        {static_cast<float>(rng.NextInt(config.vocab))}, Shape({1}),
        DType::kInt32);
  };
  if (leaves <= 1) {
    auto leaf = lantern::LTree::Leaf(word());
    return leaf;
  }
  const int left = 1 + static_cast<int>(rng.NextInt(leaves - 1));
  lantern::LTreePtr l = RandomTree(left, config, rng);
  lantern::LTreePtr r = RandomTree(leaves - left, config, rng);
  return lantern::LTree::Node(std::move(l), std::move(r), word());
}

}  // namespace

std::vector<lantern::LTreePtr> MakeTrees(int count,
                                         const TreeLstmConfig& config) {
  Rng rng(config.seed);
  std::vector<lantern::LTreePtr> trees;
  trees.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    // Leaves ~ U[avg/2, 3*avg/2].
    const int leaves = static_cast<int>(
        config.avg_leaves / 2 + rng.NextInt(config.avg_leaves + 1));
    lantern::LTreePtr tree = RandomTree(std::max(leaves, 2), config, rng);
    tree->label = OneHot(
        Tensor::FromVector({static_cast<float>(rng.NextInt(config.classes))},
                           Shape({1}), DType::kInt32),
        config.classes);
    trees.push_back(std::move(tree));
  }
  return trees;
}

const std::string& TreeLstmSource() {
  static const std::string* kSource = new std::string(R"(
def tree_state(tree, w_emb, wx, ul, ur, b):
  if tree.is_empty:
    return zero_state
  else:
    sl = tree_state(tree.left, w_emb, wx, ul, ur, b)
    sr = tree_state(tree.right, w_emb, wx, ul, ur, b)
    hl = tf.slice_rows(sl, 0, 1)
    cl = tf.slice_rows(sl, 1, 1)
    hr = tf.slice_rows(sr, 0, 1)
    cr = tf.slice_rows(sr, 1, 1)
    x = tf.gather(w_emb, tree.value)
    g = tf.matmul(x, wx) + tf.matmul(hl, ul) + tf.matmul(hr, ur) + b
    g5 = tf.reshape(g, (5, hidden))
    i = tf.sigmoid(tf.slice_rows(g5, 0, 1))
    fl = tf.sigmoid(tf.slice_rows(g5, 1, 1))
    fr = tf.sigmoid(tf.slice_rows(g5, 2, 1))
    o = tf.sigmoid(tf.slice_rows(g5, 3, 1))
    u = tf.tanh(tf.slice_rows(g5, 4, 1))
    c = i * u + fl * cl + fr * cr
    h = o * tf.tanh(c)
    return tf.concat([h, c], 0)

def sentiment_loss(tree, w_emb, wx, ul, ur, b, w_h, b_h, w_o, b_o):
  s = tree_state(tree, w_emb, wx, ul, ur, b)
  h = tf.slice_rows(s, 0, 1)
  m = tf.nn.relu(tf.matmul(h, w_h) + b_h)
  logits = tf.matmul(m, w_o) + b_o
  z = tf.log(tf.reduce_sum(tf.exp(logits)))
  loss = z - tf.reduce_sum(logits * tree.label)
  return loss
)");
  return *kSource;
}

core::LanternStagedFunction StageTreeLstm(core::AutoGraph& agc,
                                          const TreeLstmConfig& config) {
  agc.LoadSource(TreeLstmSource(), "treelstm.py");
  agc.SetGlobal("hidden", core::Value(config.hidden));
  agc.SetGlobal("zero_state",
                core::Value(Tensor::Zeros(Shape({2, config.hidden}))));
  std::vector<core::LanternArg> args;
  args.push_back(core::LanternArg::TreeParam());
  for (int i = 0; i < 9; ++i) {
    args.push_back(core::LanternArg::TensorParam());
  }
  return StageLantern(agc, "sentiment_loss", args);
}

// ---------------------------------------------------------------------
// Define-by-run baseline
// ---------------------------------------------------------------------

EagerTreeLstm::State EagerTreeLstm::Recurse(
    const lantern::LTreePtr& tree, const std::vector<eager::ETensor>& w) {
  using namespace eager;  // NOLINT: local op vocabulary
  const auto h = config_.hidden;
  if (tree->is_empty) {
    return State{ETensor(Tensor::Zeros(Shape({1, h}))),
                 ETensor(Tensor::Zeros(Shape({1, h})))};
  }
  State l = Recurse(tree->left, w);
  State r = Recurse(tree->right, w);
  ETensor x = Gather(w[0], tree->value);
  ETensor g = Add(Add(Add(MatMul(x, w[1]), MatMul(l.h, w[2])),
                      MatMul(r.h, w[3])),
                  w[4]);
  ETensor g5 = Reshape(g, Shape({5, h}));
  ETensor i = Sigmoid(SliceRows(g5, 0, 1));
  ETensor fl = Sigmoid(SliceRows(g5, 1, 1));
  ETensor fr = Sigmoid(SliceRows(g5, 2, 1));
  ETensor o = Sigmoid(SliceRows(g5, 3, 1));
  ETensor u = Tanh(SliceRows(g5, 4, 1));
  ETensor c = Add(Add(Mul(i, u), Mul(fl, l.c)), Mul(fr, r.c));
  ETensor hh = Mul(o, Tanh(c));
  return State{hh, c};
}

eager::ETensor EagerTreeLstm::Forward(const lantern::LTreePtr& tree,
                                      const std::vector<eager::ETensor>& w) {
  using namespace eager;  // NOLINT
  State s = Recurse(tree, w);
  ETensor m = Relu(Add(MatMul(s.h, w[5]), w[6]));
  ETensor logits = Add(MatMul(m, w[7]), w[8]);
  ETensor z = Log(ReduceSum(Exp(logits)));
  ETensor fit = ReduceSum(Mul(logits, ETensor(tree->label)));
  return Sub(z, fit);
}

float EagerTreeLstm::TrainStep(const lantern::LTreePtr& tree) {
  eager::GradientTape tape;
  std::vector<Tensor> raw = weights_.AsVector();
  std::vector<eager::ETensor> w;
  w.reserve(raw.size());
  for (const Tensor& t : raw) w.push_back(tape.Watch(t));
  eager::ETensor loss = Forward(tree, w);
  std::vector<Tensor> grads = tape.Gradient(loss, w);
  std::vector<Tensor> updated;
  updated.reserve(raw.size());
  for (size_t i = 0; i < raw.size(); ++i) {
    updated.push_back(
        Sub(raw[i], Mul(Tensor::Scalar(config_.lr), grads[i])));
  }
  weights_ = TreeLstmWeights::FromVector(updated);
  return loss.value.scalar();
}

float EagerTreeLstm::Loss(const lantern::LTreePtr& tree) {
  std::vector<Tensor> raw = weights_.AsVector();
  std::vector<eager::ETensor> w(raw.begin(), raw.end());
  return Forward(tree, w).value.scalar();
}

}  // namespace ag::workloads
