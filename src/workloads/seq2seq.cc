#include "workloads/seq2seq.h"

namespace ag::workloads {

Seq2SeqInputs MakeSeq2SeqInputs(const Seq2SeqConfig& config) {
  Rng rng(config.seed);
  Seq2SeqInputs inputs;
  inputs.src = rng.UniformInt(Shape({config.src_len, config.batch}),
                              config.vocab);
  inputs.tgt = rng.UniformInt(Shape({config.tgt_len, config.batch}),
                              config.vocab);
  inputs.init_state = Tensor::Zeros(Shape({config.batch, config.hidden}));
  const float s = 0.2f;
  inputs.emb_src = rng.Normal(Shape({config.vocab, config.hidden}), 0.0f, s);
  inputs.emb_tgt = rng.Normal(Shape({config.vocab, config.hidden}), 0.0f, s);
  inputs.w_eh = rng.Normal(Shape({config.hidden, config.hidden}), 0.0f, s);
  inputs.w_dx = rng.Normal(Shape({config.hidden, config.hidden}), 0.0f, s);
  inputs.w_dh = rng.Normal(Shape({config.hidden, config.hidden}), 0.0f, s);
  inputs.w_out = rng.Normal(Shape({config.hidden, config.vocab}), 0.0f, s);
  return inputs;
}

const std::string& Seq2SeqSource() {
  static const std::string* kSource = new std::string(R"(
def encode(src, state):
  for t in tf.range(src_steps):
    x = tf.gather(emb_src, src[t])
    state = tf.tanh(x + tf.matmul(state, w_eh))
  return state

def seq2seq(src, tgt, state):
  state = encode(src, state)
  outputs = []
  ag.set_element_type(outputs, tf.float32)
  tok = tgt[0]
  for t in tf.range(tgt_steps):
    x = tf.gather(emb_tgt, tok)
    state = tf.tanh(tf.matmul(x, w_dx) + tf.matmul(state, w_dh))
    logits = tf.matmul(state, w_out)
    outputs.append(logits)
    if teacher_forcing:
      tok = tgt[t]
    else:
      tok = tf.argmax(logits, 1)
  return ag.stack(outputs)
)");
  return *kSource;
}

void InstallSeq2Seq(core::AutoGraph& agc, const Seq2SeqConfig& config,
                    const Seq2SeqInputs& inputs) {
  agc.LoadSource(Seq2SeqSource(), "seq2seq.py");
  agc.SetGlobal("emb_src", core::Value(inputs.emb_src));
  agc.SetGlobal("emb_tgt", core::Value(inputs.emb_tgt));
  agc.SetGlobal("w_eh", core::Value(inputs.w_eh));
  agc.SetGlobal("w_dx", core::Value(inputs.w_dx));
  agc.SetGlobal("w_dh", core::Value(inputs.w_dh));
  agc.SetGlobal("w_out", core::Value(inputs.w_out));
  agc.SetGlobal("src_steps", core::Value(config.src_len));
  agc.SetGlobal("tgt_steps", core::Value(config.tgt_len));
  agc.SetGlobal("teacher_forcing", core::Value(config.teacher_forcing));
}

}  // namespace ag::workloads
