#include "workloads/rnn.h"

#include "exec/kernels.h"

namespace ag::workloads {

const std::string& DynamicRnnSource() {
  static const std::string* kSource = new std::string(R"(
def rnn_cell(x, h):
  h = tf.tanh(tf.matmul(x, w_xh) + tf.matmul(h, w_hh) + b_h)
  return h, h

def dynamic_rnn(input_data, initial_state, sequence_len):
  input_data = tf.transpose(input_data, (1, 0, 2))
  outputs = []
  ag.set_element_type(outputs, tf.float32)
  state = initial_state
  max_len = tf.reduce_max(sequence_len)
  for i in tf.range(max_len):
    prev_state = state
    output, state = rnn_cell(input_data[i], state)
    state = tf.where(i < sequence_len, state, prev_state)
    outputs.append(output)
  outputs = ag.stack(outputs)
  outputs = tf.transpose(outputs, (1, 0, 2))
  return outputs, state
)");
  return *kSource;
}

RnnInputs MakeRnnInputs(const RnnConfig& config) {
  Rng rng(config.seed);
  RnnInputs inputs;
  inputs.input_data = rng.Normal(
      Shape({config.batch, config.seq_len, config.input_size}), 0.0f, 1.0f);
  inputs.initial_state = Tensor::Zeros(Shape({config.batch, config.hidden}));
  // Sequence lengths in [seq_len/2, seq_len], as variable-length batches.
  std::vector<float> lens(static_cast<size_t>(config.batch));
  for (float& l : lens) {
    l = static_cast<float>(config.seq_len / 2 +
                           rng.NextInt(config.seq_len / 2 + 1));
  }
  inputs.sequence_len = Tensor::FromVector(
      std::move(lens), Shape({config.batch}), DType::kInt32);
  const float scale = 0.08f;
  inputs.w_xh = rng.Normal(Shape({config.input_size, config.hidden}), 0.0f,
                           scale);
  inputs.w_hh = rng.Normal(Shape({config.hidden, config.hidden}), 0.0f,
                           scale);
  inputs.b_h = Tensor::Zeros(Shape({config.hidden}));
  return inputs;
}

void InstallRnn(core::AutoGraph& agc, const RnnInputs& inputs) {
  agc.LoadSource(DynamicRnnSource(), "dynamic_rnn.py");
  agc.SetGlobal("w_xh", core::Value(inputs.w_xh));
  agc.SetGlobal("w_hh", core::Value(inputs.w_hh));
  agc.SetGlobal("b_h", core::Value(inputs.b_h));
}

core::StagedFunction BuildHandwrittenRnnGraph(const RnnInputs& inputs) {
  using graph::Op;
  using graph::OpN;
  using graph::Output;

  core::StagedFunction out;
  out.graph = std::make_shared<graph::Graph>();
  graph::GraphContext ctx(out.graph.get());

  Output input_data =
      graph::Placeholder(ctx, "input_data", DType::kFloat32);
  Output initial_state =
      graph::Placeholder(ctx, "initial_state", DType::kFloat32);
  Output sequence_len =
      graph::Placeholder(ctx, "sequence_len", DType::kInt32);
  out.feed_names = {"input_data", "initial_state", "sequence_len"};

  Output w_xh = graph::Const(ctx, inputs.w_xh);
  Output w_hh = graph::Const(ctx, inputs.w_hh);
  Output b_h = graph::Const(ctx, inputs.b_h);

  // input_data: [batch, time, feat] -> [time, batch, feat].
  std::vector<int> perm{1, 0, 2};
  Output x = Op(ctx, "Transpose", {input_data}, {{"perm", perm}});
  Output outputs0 = Op(ctx, "TensorListNew", {});
  Output max_len = Op(ctx, "ReduceMax", {sequence_len});
  Output i0 = graph::Const(ctx, Tensor::ScalarInt(0));
  Output one = graph::Const(ctx, Tensor::ScalarInt(1));

  std::vector<Output> results = graph::While(
      ctx, {i0, initial_state, outputs0},
      [&](const std::vector<Output>& args) {
        return Op(ctx, "Less", {args[0], max_len});
      },
      [&](const std::vector<Output>& args) {
        Output i = args[0];
        Output state = args[1];
        Output outputs = args[2];
        Output xi = Op(ctx, "IndexAxis0", {x, i});
        Output pre = Op(ctx, "Add",
                        {Op(ctx, "Add",
                            {Op(ctx, "MatMul", {xi, w_xh}),
                             Op(ctx, "MatMul", {state, w_hh})}),
                         b_h});
        Output h = Op(ctx, "Tanh", {pre});
        Output masked =
            Op(ctx, "Where", {Op(ctx, "Less", {i, sequence_len}), h, state});
        Output pushed = Op(ctx, "TensorListPushBack", {outputs, h});
        return std::vector<Output>{Op(ctx, "Add", {i, one}), masked, pushed};
      });

  Output stacked = Op(ctx, "TensorListStack", {results[2]});
  Output outputs_t = Op(ctx, "Transpose", {stacked}, {{"perm", perm}});

  out.fetches = {outputs_t, results[1]};
  out.fetch_was_tuple = true;
  out.optimize_stats = graph::Optimize(out.graph.get(), &out.fetches,
                                       &exec::EvaluatePureNode);
  out.session = std::make_unique<exec::Session>(out.graph.get());
  return out;
}

}  // namespace ag::workloads
