// L-BFGS (paper Appendix D.2): limited-memory quasi-Newton optimization
// of a logistic-regression objective, after the TF-Eager implementation
// the paper benchmarks. The two-loop recursion runs over a fixed-window
// history held in tensors (curvature pairs s_i, y_i), exercising staged
// while-loops, slice reads/writes, and in-graph gradients.
#pragma once

#include <cstdint>
#include <string>

#include "core/api.h"
#include "tensor/rng.h"

namespace ag::workloads {

struct LbfgsConfig {
  int64_t dim = 50;       // parameters
  int64_t samples = 10;   // the paper's "batch size of 10"
  int64_t history = 5;    // L-BFGS memory window
  int64_t iters = 30;     // optimization iterations per run
  float step = 0.5f;
  uint64_t seed = 41;
};

struct LbfgsInputs {
  Tensor x;   // [samples, dim] design matrix
  Tensor y;   // [samples, 1] +/-1 labels
  Tensor w0;  // [dim, 1] initial parameters
};

[[nodiscard]] LbfgsInputs MakeLbfgsInputs(const LbfgsConfig& config);

// PyMini source of `lbfgs(x, y, w)`; returns (w, final_loss). Includes a
// manual-gradient eager-compatible loss so the same code runs both
// eagerly and staged.
[[nodiscard]] const std::string& LbfgsSource();

void InstallLbfgs(core::AutoGraph& agc, const LbfgsConfig& config);

}  // namespace ag::workloads
