// seq2seq (paper Appendix D.4): an encoder/decoder over random token
// sequences, with optional teacher forcing. Teacher forcing is a *Python
// bool* hyperparameter — inside the staged decoder loop it is a
// macro-conditional that selects which branch gets staged, exactly the
// dual-use of `if` the paper motivates.
#pragma once

#include <cstdint>
#include <string>

#include "core/api.h"
#include "tensor/rng.h"

namespace ag::workloads {

struct Seq2SeqConfig {
  int64_t batch = 16;
  int64_t src_len = 64;
  int64_t tgt_len = 64;
  int64_t vocab = 1024;
  int64_t hidden = 128;
  bool teacher_forcing = false;
  uint64_t seed = 53;
};

struct Seq2SeqInputs {
  Tensor src;         // [src_len, batch] int tokens
  Tensor tgt;         // [tgt_len, batch] int tokens
  Tensor init_state;  // [batch, hidden]
  Tensor emb_src;     // [vocab, hidden]
  Tensor emb_tgt;     // [vocab, hidden]
  Tensor w_eh;        // [hidden, hidden] encoder recurrence
  Tensor w_dx;        // [hidden, hidden] decoder input projection
  Tensor w_dh;        // [hidden, hidden] decoder recurrence
  Tensor w_out;       // [hidden, vocab]
};

[[nodiscard]] Seq2SeqInputs MakeSeq2SeqInputs(const Seq2SeqConfig& config);

// PyMini source of `seq2seq(src, tgt, state)` -> stacked decoder logits.
[[nodiscard]] const std::string& Seq2SeqSource();

void InstallSeq2Seq(core::AutoGraph& agc, const Seq2SeqConfig& config,
                    const Seq2SeqInputs& inputs);

}  // namespace ag::workloads
