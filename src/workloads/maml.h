// Model-Agnostic Meta-Learning (paper Appendix D.3): the sinusoid
// regression benchmark from Finn et al. 2017. The inner adaptation step
// uses in-graph gradients, and the meta-gradient differentiates *through*
// the inner step (second-order), exercising gradients-of-gradients on the
// graph backend. The multi-task variant loops over tasks with a staged
// for-loop, accumulating meta-gradients as loop state.
#pragma once

#include <cstdint>
#include <string>

#include "core/api.h"
#include "tensor/rng.h"

namespace ag::workloads {

struct MamlConfig {
  int64_t tasks = 1;       // meta-batch size (paper: 1 and 10)
  int64_t shots = 10;      // support/query points per task
  int64_t hidden = 40;     // Finn et al. use 40-unit MLPs
  float inner_lr = 0.01f;
  float meta_lr = 0.001f;
  uint64_t seed = 47;
};

struct MamlBatch {
  // Support and query sets: [tasks, shots, 1].
  Tensor xs;
  Tensor ys;
  Tensor xq;
  Tensor yq;
};

struct MamlWeights {
  Tensor w1;  // [1, hidden]
  Tensor b1;  // [hidden]
  Tensor w2;  // [hidden, 1]
  Tensor b2;  // [1]
};

// Sinusoid tasks: y = A sin(x + phi) with random amplitude/phase.
[[nodiscard]] MamlBatch MakeMamlBatch(const MamlConfig& config,
                                      uint64_t seed);
[[nodiscard]] MamlWeights InitMamlWeights(const MamlConfig& config);

// PyMini source of `maml_step(xs, ys, xq, yq, w1, b1, w2, b2)`: for-loop
// over tasks, inner SGD adaptation, second-order meta-gradient; returns
// the updated meta-parameters and the query loss.
[[nodiscard]] const std::string& MamlSource();

void InstallMaml(core::AutoGraph& agc, const MamlConfig& config);

}  // namespace ag::workloads
