// The TreeLSTM sentiment-classification workload of Table 3 (§9.1):
// a recursive binary TreeLSTM (Tai et al. 2015) over parse trees, staged
// to the Lantern backend via AutoGraph, versus a define-by-run
// ("PyTorch"-style) C++ baseline using the eager tape.
//
// Dataset substitution: the Stanford Sentiment Treebank is replaced with
// synthetic random binary parse trees (matching SST's ~20 leaves/sentence
// shape); TreeLSTM throughput depends only on tree size/shape.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/lantern_api.h"
#include "eager/eager.h"
#include "tensor/rng.h"

namespace ag::workloads {

struct TreeLstmConfig {
  int64_t hidden = 64;
  int64_t embed = 64;
  int64_t vocab = 1000;
  int64_t mlp = 64;
  int64_t classes = 5;  // SST sentiment classes
  int64_t avg_leaves = 20;
  float lr = 0.05f;
  uint64_t seed = 23;
};

struct TreeLstmWeights {
  Tensor w_emb;  // [vocab, embed]
  Tensor wx;     // [embed, 5*hidden] gate input projection
  Tensor ul;     // [hidden, 5*hidden] left-child projection
  Tensor ur;     // [hidden, 5*hidden] right-child projection
  Tensor b;      // [1, 5*hidden]
  Tensor w_h;    // [hidden, mlp]
  Tensor b_h;    // [1, mlp]
  Tensor w_o;    // [mlp, classes]
  Tensor b_o;    // [1, classes]

  [[nodiscard]] std::vector<Tensor> AsVector() const;
  static TreeLstmWeights FromVector(const std::vector<Tensor>& v);
};

[[nodiscard]] TreeLstmWeights InitTreeLstmWeights(
    const TreeLstmConfig& config, uint64_t seed);

// Random binary parse trees; every node carries a word id, the root a
// one-hot sentiment label.
[[nodiscard]] std::vector<lantern::LTreePtr> MakeTrees(
    int count, const TreeLstmConfig& config);

// PyMini source: recursive tree_state + sentiment_loss entry.
[[nodiscard]] const std::string& TreeLstmSource();

// Loads the source, installs config globals, stages sentiment_loss to
// Lantern. Entry args: (tree, w_emb, wx, ul, ur, b, w_h, b_h, w_o, b_o).
[[nodiscard]] core::LanternStagedFunction StageTreeLstm(
    core::AutoGraph& agc, const TreeLstmConfig& config);

// Define-by-run baseline ("Loop and Model in PyTorch"): the same model
// written directly against the eager tape, re-traced on every step.
class EagerTreeLstm {
 public:
  EagerTreeLstm(const TreeLstmConfig& config, TreeLstmWeights weights)
      : config_(config), weights_(std::move(weights)) {}

  // One SGD step on one tree; returns the loss.
  float TrainStep(const lantern::LTreePtr& tree);
  [[nodiscard]] float Loss(const lantern::LTreePtr& tree);

  [[nodiscard]] const TreeLstmWeights& weights() const { return weights_; }

 private:
  struct State {
    eager::ETensor h;
    eager::ETensor c;
  };
  State Recurse(const lantern::LTreePtr& tree,
                const std::vector<eager::ETensor>& w);
  eager::ETensor Forward(const lantern::LTreePtr& tree,
                         const std::vector<eager::ETensor>& w);

  TreeLstmConfig config_;
  TreeLstmWeights weights_;
};

}  // namespace ag::workloads
