#include "workloads/beam_search.h"

#include "tensor/tensor_ops.h"

namespace ag::workloads {

BeamInputs MakeBeamInputs(const BeamConfig& config) {
  Rng rng(config.seed);
  BeamInputs inputs;
  inputs.init_state = rng.Normal(Shape({config.beam, config.hidden}));
  inputs.init_scores = Tensor::Zeros(Shape({config.beam}));
  inputs.init_tokens =
      rng.UniformInt(Shape({config.beam}), config.vocab);
  const float s = 0.3f;
  inputs.w_tok = rng.Normal(Shape({config.vocab, config.hidden}), 0.0f, s);
  inputs.w_ss = rng.Normal(Shape({config.hidden, config.hidden}), 0.0f, s);
  inputs.w_so = rng.Normal(Shape({config.hidden, config.vocab}), 0.0f, s);
  // EOS is token 0; bias it upward so sequences terminate early.
  std::vector<float> bias(static_cast<size_t>(config.vocab), 0.0f);
  bias[0] = config.eos_bias;
  inputs.b_o = Tensor::FromVector(std::move(bias), Shape({config.vocab}));
  return inputs;
}

const std::string& BeamSearchSource() {
  static const std::string* kSource = new std::string(R"(
def beam_search(state, scores, tokens):
  t = 0
  while t < max_len:
    emb = tf.gather(w_tok, tokens)
    state = tf.tanh(tf.matmul(state, w_ss) + emb)
    logp = tf.nn.log_softmax(tf.matmul(state, w_so) + b_o)
    total = tf.reshape(scores, (beam, 1)) + logp
    flat = tf.reshape(total, (1, beam * vocab))
    best, idx = tf.math.top_k(flat, beam)
    scores = tf.reshape(best, (beam,))
    beam_ids = tf.reshape(idx // vocab, (beam,))
    tokens = tf.reshape(idx % vocab, (beam,))
    state = tf.gather(state, beam_ids)
    t = t + 1
    finished = tf.reduce_sum(tf.cast(tf.equal(tokens, 0), tf.float32))
    if finished >= num_beams:
      break
  return scores, tokens, t
)");
  return *kSource;
}

void InstallBeamSearch(core::AutoGraph& agc, const BeamConfig& config,
                       const BeamInputs& inputs) {
  agc.LoadSource(BeamSearchSource(), "beam_search.py");
  agc.SetGlobal("w_tok", core::Value(inputs.w_tok));
  agc.SetGlobal("w_ss", core::Value(inputs.w_ss));
  agc.SetGlobal("w_so", core::Value(inputs.w_so));
  agc.SetGlobal("b_o", core::Value(inputs.b_o));
  agc.SetGlobal("beam", core::Value(config.beam));
  agc.SetGlobal("vocab", core::Value(config.vocab));
  agc.SetGlobal("max_len", core::Value(config.max_len));
  agc.SetGlobal("num_beams",
                core::Value(static_cast<double>(config.beam)));
}

}  // namespace ag::workloads
