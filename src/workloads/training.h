// The MNIST linear-model SGD workload of Table 2 ("Model and Training
// Loop"), in its four variants:
//   - Eager: an imperative PyMini training step interpreted per step;
//   - Model in graph / loop outside: a staged step graph run once per
//     step, threading weights through feeds;
//   - Model AND loop in graph: a handwritten While graph running all
//     steps in one Session::Run;
//   - Model AND loop via AutoGraph: the idiomatic PyMini while-loop
//     converted and staged, also one Run.
#pragma once

#include <cstdint>
#include <string>

#include "core/api.h"
#include "tensor/rng.h"

namespace ag::workloads {

struct MnistConfig {
  int64_t batch = 200;
  int64_t features = 784;
  int64_t classes = 10;
  int64_t steps = 1000;
  float lr = 0.1f;
  uint64_t seed = 11;
};

struct MnistData {
  Tensor images;  // [batch, features] (synthetic)
  Tensor labels;  // [batch] int class ids
  Tensor w0;      // [features, classes]
  Tensor b0;      // [classes]
};

[[nodiscard]] MnistData MakeMnistData(const MnistConfig& config);

// PyMini sources.
// Eager step with explicit (manual) gradient formulas — the imperative
// baseline (tf.gradients requires a graph, as in TF 1.x).
[[nodiscard]] const std::string& EagerTrainStepSource();
// Staged single step using tf.gradients (model in graph).
[[nodiscard]] const std::string& GraphTrainStepSource();
// Whole training loop (while + tf.gradients) for AutoGraph staging.
[[nodiscard]] const std::string& TrainLoopSource();

// Handwritten in-graph training loop (While + symbolic gradients built
// directly on the graph API). Placeholders: x, y, w, b; fetches (w, b).
// The second overload controls the optimization pipeline (fusion A/B
// in tests/fusion_test.cc and bench/bench_fusion.cc).
[[nodiscard]] core::StagedFunction BuildHandwrittenTrainingGraph(
    const MnistConfig& config);
[[nodiscard]] core::StagedFunction BuildHandwrittenTrainingGraph(
    const MnistConfig& config, const graph::OptimizeOptions& options);

}  // namespace ag::workloads
