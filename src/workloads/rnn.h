// The dynamic RNN workload of Table 1: the paper's AutoGraph dynamic_rnn
// (§9, "RNN cells"), the handwritten graph version (Appendix A), and the
// shared input generator.
#pragma once

#include <cstdint>
#include <string>

#include "core/api.h"
#include "graph/ops.h"
#include "tensor/rng.h"

namespace ag::workloads {

// PyMini source of the paper's §9 dynamic_rnn plus a basic tanh RNN cell.
// (The `sequence_len is None` branch is specialized away: the benchmark
// always supplies sequence lengths, as the paper's runs do.)
[[nodiscard]] const std::string& DynamicRnnSource();

struct RnnConfig {
  int64_t batch = 32;
  int64_t seq_len = 64;
  int64_t input_size = 64;
  int64_t hidden = 256;
  uint64_t seed = 7;
};

struct RnnInputs {
  Tensor input_data;     // [batch, seq_len, input_size]
  Tensor initial_state;  // [batch, hidden]
  Tensor sequence_len;   // [batch] (int)
  Tensor w_xh;           // [input_size, hidden]
  Tensor w_hh;           // [hidden, hidden]
  Tensor b_h;            // [hidden]
};

[[nodiscard]] RnnInputs MakeRnnInputs(const RnnConfig& config);

// Loads DynamicRnnSource into `agc` and installs the cell weights as
// globals (they become graph constants when staged).
void InstallRnn(core::AutoGraph& agc, const RnnInputs& inputs);

// Handwritten graph dynamic_rnn (paper Appendix A): TensorList +
// tf.while_loop built directly against the graph API. Returns the staged
// function with placeholders (input_data, initial_state, sequence_len).
[[nodiscard]] core::StagedFunction BuildHandwrittenRnnGraph(
    const RnnInputs& inputs);

}  // namespace ag::workloads
