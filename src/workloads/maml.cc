#include "workloads/maml.h"

#include <cmath>

#include "tensor/tensor_ops.h"

namespace ag::workloads {

MamlBatch MakeMamlBatch(const MamlConfig& config, uint64_t seed) {
  Rng rng(seed);
  auto sample_task = [&rng, &config](std::vector<float>* x,
                                     std::vector<float>* y) {
    const float amp = 0.1f + 4.9f * rng.NextUniform();
    const float phase = 3.14159f * rng.NextUniform();
    for (int64_t i = 0; i < config.shots; ++i) {
      const float xi = -5.0f + 10.0f * rng.NextUniform();
      x->push_back(xi);
      y->push_back(amp * std::sin(xi + phase));
    }
  };
  std::vector<float> xs;
  std::vector<float> ys;
  std::vector<float> xq;
  std::vector<float> yq;
  for (int64_t t = 0; t < config.tasks; ++t) {
    sample_task(&xs, &ys);
    sample_task(&xq, &yq);
  }
  const Shape shape({config.tasks, config.shots, 1});
  MamlBatch batch;
  batch.xs = Tensor::FromVector(std::move(xs), shape);
  batch.ys = Tensor::FromVector(std::move(ys), shape);
  batch.xq = Tensor::FromVector(std::move(xq), shape);
  batch.yq = Tensor::FromVector(std::move(yq), shape);
  return batch;
}

MamlWeights InitMamlWeights(const MamlConfig& config) {
  Rng rng(config.seed);
  MamlWeights w;
  w.w1 = rng.Normal(Shape({1, config.hidden}), 0.0f, 0.5f);
  w.b1 = Tensor::Zeros(Shape({config.hidden}));
  w.w2 = rng.Normal(Shape({config.hidden, 1}), 0.0f, 0.5f);
  w.b2 = Tensor::Zeros(Shape({1}));
  return w;
}

const std::string& MamlSource() {
  static const std::string* kSource = new std::string(R"(
def mlp_grads(x, y, w1, b1, w2, b2):
  # Forward + manual backprop for the 2-layer tanh MLP under MSE; written
  # imperatively so the identical code runs eagerly and staged.
  h = tf.tanh(tf.matmul(x, w1) + b1)
  pred = tf.matmul(h, w2) + b2
  err = pred - y
  loss = tf.reduce_mean(tf.square(err))
  dpred = 2.0 * err / shots
  g_w2 = tf.matmul(tf.transpose(h, (1, 0)), dpred)
  g_b2 = tf.reduce_sum(dpred, 0)
  dh = tf.matmul(dpred, tf.transpose(w2, (1, 0))) * (1.0 - h * h)
  g_w1 = tf.matmul(tf.transpose(x, (1, 0)), dh)
  g_b1 = tf.reduce_sum(dh, 0)
  return loss, g_w1, g_b1, g_w2, g_b2

def maml_step(xs, ys, xq, yq, w1, b1, w2, b2):
  # First-order MAML: adapt on the support set, apply the query-set
  # gradient at the adapted parameters to the meta-parameters.
  mg1 = tf.zeros((1, hidden))
  mg2 = tf.zeros((hidden,))
  mg3 = tf.zeros((hidden, 1))
  mg4 = tf.zeros((1,))
  qloss_total = 0.0
  for t in tf.range(tasks):
    loss, g1, g2, g3, g4 = mlp_grads(xs[t], ys[t], w1, b1, w2, b2)
    w1a = w1 - inner_lr * g1
    b1a = b1 - inner_lr * g2
    w2a = w2 - inner_lr * g3
    b2a = b2 - inner_lr * g4
    qloss, q1, q2, q3, q4 = mlp_grads(xq[t], yq[t], w1a, b1a, w2a, b2a)
    mg1 = mg1 + q1
    mg2 = mg2 + q2
    mg3 = mg3 + q3
    mg4 = mg4 + q4
    qloss_total = qloss_total + qloss
  w1 = w1 - meta_lr * mg1
  b1 = b1 - meta_lr * mg2
  w2 = w2 - meta_lr * mg3
  b2 = b2 - meta_lr * mg4
  return w1, b1, w2, b2, qloss_total

def maml_step_second_order(xs, ys, xq, yq, w1, b1, w2, b2):
  # Full MAML via symbolic gradients, differentiating THROUGH the inner
  # adaptation step (graph backend only).
  mg1 = tf.zeros((1, hidden))
  mg2 = tf.zeros((hidden,))
  mg3 = tf.zeros((hidden, 1))
  mg4 = tf.zeros((1,))
  qloss_total = 0.0
  for t in tf.range(tasks):
    x_s = xs[t]
    y_s = ys[t]
    h = tf.tanh(tf.matmul(x_s, w1) + b1)
    pred = tf.matmul(h, w2) + b2
    loss = tf.reduce_mean(tf.square(pred - y_s))
    g = tf.gradients(loss, [w1, b1, w2, b2])
    w1a = w1 - inner_lr * g[0]
    b1a = b1 - inner_lr * g[1]
    w2a = w2 - inner_lr * g[2]
    b2a = b2 - inner_lr * g[3]
    hq = tf.tanh(tf.matmul(xq[t], w1a) + b1a)
    predq = tf.matmul(hq, w2a) + b2a
    qloss = tf.reduce_mean(tf.square(predq - yq[t]))
    mg = tf.gradients(qloss, [w1, b1, w2, b2])
    mg1 = mg1 + mg[0]
    mg2 = mg2 + mg[1]
    mg3 = mg3 + mg[2]
    mg4 = mg4 + mg[3]
    qloss_total = qloss_total + qloss
  w1 = w1 - meta_lr * mg1
  b1 = b1 - meta_lr * mg2
  w2 = w2 - meta_lr * mg3
  b2 = b2 - meta_lr * mg4
  return w1, b1, w2, b2, qloss_total
)");
  return *kSource;
}

void InstallMaml(core::AutoGraph& agc, const MamlConfig& config) {
  agc.LoadSource(MamlSource(), "maml.py");
  agc.SetGlobal("hidden", core::Value(config.hidden));
  agc.SetGlobal("tasks", core::Value(config.tasks));
  agc.SetGlobal("shots",
                core::Value(static_cast<double>(config.shots)));
  agc.SetGlobal("inner_lr",
                core::Value(static_cast<double>(config.inner_lr)));
  agc.SetGlobal("meta_lr",
                core::Value(static_cast<double>(config.meta_lr)));
}

}  // namespace ag::workloads
