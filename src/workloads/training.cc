#include "workloads/training.h"

#include "autodiff/graph_grad.h"
#include "exec/kernels.h"

namespace ag::workloads {

MnistData MakeMnistData(const MnistConfig& config) {
  Rng rng(config.seed);
  MnistData data;
  data.images = rng.Uniform(Shape({config.batch, config.features}));
  data.labels = rng.UniformInt(Shape({config.batch}), config.classes);
  data.w0 = rng.Normal(Shape({config.features, config.classes}), 0.0f,
                       0.05f);
  data.b0 = Tensor::Zeros(Shape({config.classes}));
  return data;
}

const std::string& EagerTrainStepSource() {
  static const std::string* kSource = new std::string(R"(
def train_step_eager(x, y, w, b, lr, batch, classes):
  logits = tf.matmul(x, w) + b
  p = tf.nn.softmax(logits)
  g = (p - tf.one_hot(y, classes)) / batch
  gw = tf.matmul(tf.transpose(x, (1, 0)), g)
  gb = tf.reduce_sum(g, 0)
  w = w - lr * gw
  b = b - lr * gb
  return w, b
)");
  return *kSource;
}

const std::string& GraphTrainStepSource() {
  static const std::string* kSource = new std::string(R"(
def train_step(x, y, w, b, lr):
  logits = tf.matmul(x, w) + b
  loss = tf.nn.softmax_cross_entropy(logits, y)
  grads = tf.gradients(loss, [w, b])
  return w - lr * grads[0], b - lr * grads[1]
)");
  return *kSource;
}

const std::string& TrainLoopSource() {
  static const std::string* kSource = new std::string(R"(
def train_loop(x, y, w, b, lr, steps):
  i = 0
  while i < steps:
    logits = tf.matmul(x, w) + b
    loss = tf.nn.softmax_cross_entropy(logits, y)
    grads = tf.gradients(loss, [w, b])
    w = w - lr * grads[0]
    b = b - lr * grads[1]
    i = i + 1
  return w, b
)");
  return *kSource;
}

core::StagedFunction BuildHandwrittenTrainingGraph(
    const MnistConfig& config) {
  return BuildHandwrittenTrainingGraph(config, graph::OptimizeOptions{});
}

core::StagedFunction BuildHandwrittenTrainingGraph(
    const MnistConfig& config, const graph::OptimizeOptions& options) {
  using graph::Op;
  using graph::Output;

  core::StagedFunction out;
  out.graph = std::make_shared<graph::Graph>();
  graph::GraphContext ctx(out.graph.get());

  Output x = graph::Placeholder(ctx, "x", DType::kFloat32);
  Output y = graph::Placeholder(ctx, "y", DType::kInt32);
  Output w = graph::Placeholder(ctx, "w", DType::kFloat32);
  Output b = graph::Placeholder(ctx, "b", DType::kFloat32);
  out.feed_names = {"x", "y", "w", "b"};

  Output lr = graph::Const(ctx, Tensor::Scalar(config.lr));
  Output steps =
      graph::Const(ctx, Tensor::ScalarInt(config.steps));
  Output i0 = graph::Const(ctx, Tensor::ScalarInt(0));
  Output one = graph::Const(ctx, Tensor::ScalarInt(1));

  std::vector<Output> results = graph::While(
      ctx, {i0, w, b},
      [&](const std::vector<Output>& args) {
        return Op(ctx, "Less", {args[0], steps});
      },
      [&](const std::vector<Output>& args) {
        Output wi = args[1];
        Output bi = args[2];
        Output logits =
            Op(ctx, "Add", {Op(ctx, "MatMul", {x, wi}), bi});
        Output loss = Op(ctx, "SoftmaxCrossEntropy", {logits, y});
        std::vector<Output> grads =
            autodiff::Gradients(ctx, loss, {wi, bi});
        Output w_next =
            Op(ctx, "Sub", {wi, Op(ctx, "Mul", {lr, grads[0]})});
        Output b_next =
            Op(ctx, "Sub", {bi, Op(ctx, "Mul", {lr, grads[1]})});
        return std::vector<Output>{Op(ctx, "Add", {args[0], one}), w_next,
                                   b_next};
      });

  out.fetches = {results[1], results[2]};
  out.fetch_was_tuple = true;
  out.optimize_stats = graph::Optimize(out.graph.get(), &out.fetches,
                                       &exec::EvaluatePureNode, options);
  out.session = std::make_unique<exec::Session>(out.graph.get());
  return out;
}

}  // namespace ag::workloads
