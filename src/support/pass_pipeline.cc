#include "support/pass_pipeline.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <utility>

#include "support/error.h"
#include "support/strings.h"

namespace ag {
namespace {

bool ValidName(const std::string& name) {
  if (name.empty()) return false;
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    if (!ok) return false;
  }
  return true;
}

}  // namespace

PipelineSpec PipelineSpec::Parse(const std::string& text) {
  PipelineSpec spec;
  bool saw_default = false;
  bool saw_positive = false;
  for (const std::string& raw : Split(text, ',')) {
    std::string token = Strip(raw);
    if (token.empty()) continue;
    bool negate = false;
    if (token[0] == '-' || token[0] == '+') {
      negate = token[0] == '-';
      token = Strip(token.substr(1));
    }
    if (!ValidName(token)) {
      throw ValueError("pass pipeline: malformed token '" + Strip(raw) +
                       "' (expected [+|-]name or 'default')");
    }
    spec.specified = true;
    if (!negate && token == "default") {
      saw_default = true;
    } else if (negate) {
      spec.exclude.push_back(token);
    } else {
      saw_positive = true;
      spec.include.push_back(token);
    }
  }
  spec.from_default = saw_default || !saw_positive;
  return spec;
}

std::string PipelineSpec::str() const {
  std::vector<std::string> tokens;
  if (from_default) tokens.emplace_back("default");
  for (const std::string& name : include) tokens.push_back(name);
  for (const std::string& name : exclude) tokens.push_back("-" + name);
  return Join(tokens, ",");
}

bool PipelineSpec::Selects(const std::string& name,
                           bool default_enabled) const {
  if (std::find(exclude.begin(), exclude.end(), name) != exclude.end()) {
    return false;
  }
  if (std::find(include.begin(), include.end(), name) != include.end()) {
    return true;
  }
  return from_default && default_enabled;
}

std::vector<size_t> OrderPasses(const std::vector<PassOrderNode>& nodes) {
  const size_t n = nodes.size();
  std::map<std::string, size_t> pos;
  for (size_t i = 0; i < n; ++i) pos.emplace(nodes[i].name, i);

  // Constraint edges (edge a -> b: a runs first); names not present in
  // `nodes` are vacuous (deselected passes constrain nothing).
  std::vector<std::vector<size_t>> succ(n);
  std::vector<int> indegree(n, 0);
  auto add_edge = [&succ, &indegree](size_t from, size_t to) {
    if (std::find(succ[from].begin(), succ[from].end(), to) ==
        succ[from].end()) {
      succ[from].push_back(to);
      ++indegree[to];
    }
  };
  for (size_t i = 0; i < n; ++i) {
    for (const std::string& dep : nodes[i].after) {
      auto it = pos.find(dep);
      if (it != pos.end()) add_edge(it->second, i);
    }
    for (const std::string& next : nodes[i].before) {
      auto it = pos.find(next);
      if (it != pos.end()) add_edge(i, it->second);
    }
  }

  // Kahn's algorithm; among ready passes, pick the smallest
  // (rank, index) so rank is a soft preference and the order is
  // deterministic.
  std::set<std::pair<std::pair<int, size_t>, size_t>> ready;
  for (size_t i = 0; i < n; ++i) {
    if (indegree[i] == 0) ready.insert({{nodes[i].rank, i}, i});
  }
  std::vector<size_t> order;
  order.reserve(n);
  std::vector<char> placed(n, 0);
  while (!ready.empty()) {
    const size_t i = ready.begin()->second;
    ready.erase(ready.begin());
    placed[i] = 1;
    order.push_back(i);
    for (size_t next : succ[i]) {
      if (--indegree[next] == 0) {
        ready.insert({{nodes[next].rank, next}, next});
      }
    }
  }

  if (order.size() != n) {
    // Constraint cycle. Walk the remaining subgraph to recover one
    // concrete cycle so the error names the passes involved.
    std::vector<int> state(n, 0);  // 0 unvisited, 1 on stack, 2 done
    std::vector<size_t> stack;
    std::vector<std::string> cycle;
    std::function<bool(size_t)> dfs = [&](size_t i) -> bool {
      state[i] = 1;
      stack.push_back(i);
      for (size_t next : succ[i]) {
        if (placed[next] != 0) continue;  // resolved by Kahn
        if (state[next] == 1) {
          auto start = std::find(stack.begin(), stack.end(), next);
          for (auto it = start; it != stack.end(); ++it) {
            cycle.push_back(nodes[*it].name);
          }
          return true;
        }
        if (state[next] == 0 && dfs(next)) return true;
      }
      stack.pop_back();
      state[i] = 2;
      return false;
    };
    for (size_t i = 0; i < n && cycle.empty(); ++i) {
      if (placed[i] == 0 && state[i] == 0) dfs(i);
    }
    throw ValueError(
        "pass pipeline: ordering constraint cycle among passes: " +
        Join(cycle, " -> ") + (cycle.empty() ? "" : " -> " + cycle.front()));
  }
  return order;
}

}  // namespace ag
