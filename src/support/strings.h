// Small string utilities shared across the library.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace ag {

// Joins `parts` with `sep`.
[[nodiscard]] std::string Join(const std::vector<std::string>& parts,
                               std::string_view sep);

// Splits `s` on `sep` (single char). Keeps empty fields.
[[nodiscard]] std::vector<std::string> Split(std::string_view s, char sep);

// Strips leading/trailing whitespace.
[[nodiscard]] std::string Strip(std::string_view s);

// True if `s` starts with / ends with the given prefix/suffix.
[[nodiscard]] bool StartsWith(std::string_view s, std::string_view prefix);
[[nodiscard]] bool EndsWith(std::string_view s, std::string_view suffix);

// Removes the longest common leading whitespace from every non-blank line
// (Python textwrap.dedent).
[[nodiscard]] std::string Dedent(std::string_view text);

// Replaces all occurrences of `from` with `to`.
[[nodiscard]] std::string ReplaceAll(std::string s, std::string_view from,
                                     std::string_view to);

// True if `s` is a valid PyMini identifier.
[[nodiscard]] bool IsIdentifier(std::string_view s);

}  // namespace ag
