#include "support/error.h"

#include <sstream>

namespace ag {

std::string SourceLocation::str() const {
  std::ostringstream os;
  os << (filename.empty() ? "<unknown>" : filename);
  if (valid()) {
    os << ":" << line;
    if (column > 0) os << ":" << column;
  }
  return os.str();
}

std::string SourceFrame::str() const {
  std::ostringstream os;
  os << "  at " << (function_name.empty() ? "<module>" : function_name)
     << " (" << location.str() << ")";
  if (generated) os << " [generated]";
  return os.str();
}

const char* ErrorKindName(ErrorKind kind) {
  switch (kind) {
    case ErrorKind::kInternal:
      return "InternalError";
    case ErrorKind::kSyntax:
      return "SyntaxError";
    case ErrorKind::kConversion:
      return "ConversionError";
    case ErrorKind::kStaging:
      return "StagingError";
    case ErrorKind::kRuntime:
      return "RuntimeError";
    case ErrorKind::kValue:
      return "ValueError";
    case ErrorKind::kUnsupported:
      return "UnsupportedError";
    case ErrorKind::kCancelled:
      return "CancelledError";
    case ErrorKind::kDeadlineExceeded:
      return "DeadlineExceededError";
  }
  return "Error";
}

std::string Error::Format(ErrorKind kind, const std::string& message,
                          const std::vector<SourceFrame>& frames) {
  std::ostringstream os;
  os << ErrorKindName(kind) << ": " << message;
  for (const SourceFrame& frame : frames) {
    os << "\n" << frame.str();
  }
  return os.str();
}

Error Error::WithFrame(SourceFrame frame) const {
  std::vector<SourceFrame> frames = frames_;
  frames.push_back(std::move(frame));
  return Error(kind_, message_, std::move(frames));
}

Error InternalError(const std::string& message) {
  return Error(ErrorKind::kInternal, message);
}

Error SyntaxError(const std::string& message, const SourceLocation& loc) {
  return Error(ErrorKind::kSyntax, message + " (" + loc.str() + ")");
}

Error ConversionError(const std::string& message, const SourceLocation& loc) {
  return Error(ErrorKind::kConversion, message + " (" + loc.str() + ")");
}

Error StagingError(const std::string& message) {
  return Error(ErrorKind::kStaging, message);
}

Error RuntimeError(const std::string& message) {
  return Error(ErrorKind::kRuntime, message);
}

Error ValueError(const std::string& message) {
  return Error(ErrorKind::kValue, message);
}

Error UnsupportedError(const std::string& message) {
  return Error(ErrorKind::kUnsupported, message);
}

Error CancelledError(const std::string& message) {
  return Error(ErrorKind::kCancelled, message);
}

Error DeadlineExceededError(const std::string& message) {
  return Error(ErrorKind::kDeadlineExceeded, message);
}

}  // namespace ag
