// Error types for the AutoGraph C++ system.
//
// The paper (Appendix B) distinguishes three classes of errors beyond
// ordinary syntax errors:
//   - Conversion errors: legal PyMini code that AutoGraph cannot convert.
//   - Staging errors: raised while building the target IR (graph
//     construction time), e.g. inconsistent branch outputs.
//   - Runtime errors: raised by the staged IR's runtime (graph execution).
//
// Every error carries a stack of SourceFrames. Frames produced from
// generated code are re-associated with the user's original source via
// the SourceMap maintained by the transformer (see lang/source_map.h),
// mirroring the paper's "error rewriting" mechanism.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace ag {

// A location in some source buffer. Line/col are 1-based; line 0 means
// "unknown".
struct SourceLocation {
  std::string filename;
  int line = 0;
  int column = 0;

  [[nodiscard]] bool valid() const { return line > 0; }
  [[nodiscard]] std::string str() const;
};

// One frame of an AutoGraph-level stack trace: where (in user code or in
// generated code) an error passed through.
struct SourceFrame {
  SourceLocation location;
  std::string function_name;
  // True when the frame points at AutoGraph-generated code that could not
  // be mapped back to user code.
  bool generated = false;

  [[nodiscard]] std::string str() const;
};

enum class ErrorKind : std::uint8_t {
  kInternal,     // bug in this library
  kSyntax,       // PyMini lexer/parser error
  kConversion,   // unsupported idiom during SCT
  kStaging,      // error while building graph / lantern IR
  kRuntime,      // error raised by the staged runtime (Session etc.)
  kValue,        // bad value passed by user code (TypeError/ValueError)
  kUnsupported,  // feature intentionally not implemented
  kCancelled,    // run interrupted via a CancellationToken / fault hook
  kDeadlineExceeded,  // run exceeded RunOptions::deadline_ms
};

[[nodiscard]] const char* ErrorKindName(ErrorKind kind);

// The single exception type thrown throughout the library.
class Error : public std::runtime_error {
 public:
  Error(ErrorKind kind, std::string message)
      : std::runtime_error(Format(kind, message, {})),
        kind_(kind),
        message_(std::move(message)) {}

  Error(ErrorKind kind, std::string message, std::vector<SourceFrame> frames)
      : std::runtime_error(Format(kind, message, frames)),
        kind_(kind),
        message_(std::move(message)),
        frames_(std::move(frames)) {}

  [[nodiscard]] ErrorKind kind() const { return kind_; }
  [[nodiscard]] const std::string& message() const { return message_; }
  [[nodiscard]] const std::vector<SourceFrame>& frames() const {
    return frames_;
  }

  // Returns a copy of this error with one more frame pushed on the trace.
  [[nodiscard]] Error WithFrame(SourceFrame frame) const;

 private:
  static std::string Format(ErrorKind kind, const std::string& message,
                            const std::vector<SourceFrame>& frames);

  ErrorKind kind_;
  std::string message_;
  std::vector<SourceFrame> frames_;
};

// Convenience constructors.
[[nodiscard]] Error InternalError(const std::string& message);
[[nodiscard]] Error SyntaxError(const std::string& message,
                                const SourceLocation& loc);
[[nodiscard]] Error ConversionError(const std::string& message,
                                    const SourceLocation& loc);
[[nodiscard]] Error StagingError(const std::string& message);
[[nodiscard]] Error RuntimeError(const std::string& message);
[[nodiscard]] Error ValueError(const std::string& message);
[[nodiscard]] Error UnsupportedError(const std::string& message);
[[nodiscard]] Error CancelledError(const std::string& message);
[[nodiscard]] Error DeadlineExceededError(const std::string& message);

// CHECK-style macro for internal invariants. Throws Error(kInternal).
#define AG_CHECK(cond)                                                  \
  do {                                                                  \
    if (!(cond)) {                                                      \
      throw ::ag::InternalError(std::string("check failed: " #cond " at ") + \
                                __FILE__ + ":" + std::to_string(__LINE__)); \
    }                                                                   \
  } while (false)

}  // namespace ag
