// Pass-pipeline selection spec, shared by every pass-manager surface
// (graph::PassRegistry, transforms::, and the aglint check filter).
//
// Grammar (comma-separated tokens, whitespace ignored):
//
//   default        start from the registry's default-enabled set
//   name | +name   include pass `name`
//   -name          exclude pass `name` (applied after all inclusions)
//
// A spec with no positive tokens (only exclusions, or nothing at all)
// implicitly starts from the default set, so "-dce" means "the default
// pipeline without dce" while "licm,cse" means "exactly licm and cse".
// The spec selects *which* passes run; the registry orders them (phase,
// then topological over after/before constraints).
#pragma once

#include <string>
#include <vector>

namespace ag {

struct PipelineSpec {
  // Start the selection from the default-enabled passes. True when the
  // spec had a "default" token or no positive token at all.
  bool from_default = true;
  std::vector<std::string> include;  // positive tokens, in spec order
  std::vector<std::string> exclude;  // "-name" tokens
  // True when this spec came from a non-empty Parse input; lets callers
  // distinguish "user asked for the default pipeline" from "user said
  // nothing" (e.g. to fall back to the AG_PASSES environment variable).
  bool specified = false;

  // Parses the grammar above. Throws ValueError on a malformed token.
  // Parse("") returns a default, unspecified spec.
  [[nodiscard]] static PipelineSpec Parse(const std::string& text);

  // Canonical round-trippable rendering, e.g. "default,-dce".
  [[nodiscard]] std::string str() const;

  // True when pass `name` (whose registry default is `default_enabled`)
  // is selected by this spec.
  [[nodiscard]] bool Selects(const std::string& name,
                             bool default_enabled) const;
};

// One selected pass's ordering declaration — the layer-neutral shape
// both registries (transforms::PassRegistry over AST passes,
// graph::PassRegistry over graph passes) hand to OrderPasses so pass
// scheduling behaves identically at every level of the pipeline.
struct PassOrderNode {
  std::string name;
  std::vector<std::string> after;   // these run first (hard constraint)
  std::vector<std::string> before;  // these run later (hard constraint)
  int rank = 0;  // soft preference (e.g. phase); ties break by index
};

// Returns indices into `nodes` in execution order. Constraints are hard
// (Kahn's algorithm); among ready passes the smallest (rank, index)
// pair runs first, so `rank` acts as a soft phase preference and the
// result is deterministic. Constraints naming passes absent from
// `nodes` are vacuous here — registries validate names against their
// full registration set before selecting. A constraint cycle throws
// ValueError spelling out one concrete cycle ("a -> b -> a").
[[nodiscard]] std::vector<size_t> OrderPasses(
    const std::vector<PassOrderNode>& nodes);

}  // namespace ag
