#include "support/strings.h"

#include <algorithm>
#include <cctype>
#include <limits>
#include <sstream>

namespace ag {

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string Strip(std::string_view s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return std::string(s.substr(begin, end - begin));
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string Dedent(std::string_view text) {
  std::vector<std::string> lines = Split(text, '\n');
  size_t margin = std::numeric_limits<size_t>::max();
  for (const std::string& line : lines) {
    size_t indent = 0;
    while (indent < line.size() &&
           (line[indent] == ' ' || line[indent] == '\t')) {
      ++indent;
    }
    if (indent == line.size()) continue;  // blank line
    margin = std::min(margin, indent);
  }
  if (margin == std::numeric_limits<size_t>::max()) margin = 0;
  std::vector<std::string> out;
  out.reserve(lines.size());
  for (const std::string& line : lines) {
    if (line.size() <= margin) {
      out.emplace_back();
    } else {
      out.emplace_back(line.substr(margin));
    }
  }
  return Join(out, "\n");
}

std::string ReplaceAll(std::string s, std::string_view from,
                       std::string_view to) {
  if (from.empty()) return s;
  size_t pos = 0;
  while ((pos = s.find(from, pos)) != std::string::npos) {
    s.replace(pos, from.size(), to);
    pos += to.size();
  }
  return s;
}

bool IsIdentifier(std::string_view s) {
  if (s.empty()) return false;
  if (!(std::isalpha(static_cast<unsigned char>(s[0])) || s[0] == '_')) {
    return false;
  }
  return std::all_of(s.begin() + 1, s.end(), [](char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
  });
}

}  // namespace ag
