#include "graph/fusion.h"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "graph/pass_manager.h"
#include "support/error.h"

namespace ag::graph {
namespace {

// Uses of each endpoint within one graph: input edges, captures of
// directly attached subgraphs, and the graph's own roots/returns. An
// interior chain value must have exactly one use; anything referenced
// by a fetch, a capture, or a second consumer stays materialized.
using UseMap = std::map<std::pair<const Node*, int>, int>;

UseMap CountUses(const Graph& graph, const std::vector<Output>& roots) {
  UseMap uses;
  for (const auto& n : graph.nodes()) {
    for (const Output& in : n->inputs()) {
      ++uses[{in.node, in.index}];
    }
    for (const auto& [key, attr] : n->attrs()) {
      if (const auto* sub = std::get_if<std::shared_ptr<Graph>>(&attr)) {
        const auto* fg = dynamic_cast<const FuncGraph*>(sub->get());
        if (fg != nullptr) {
          for (const Output& c : fg->captures) ++uses[{c.node, c.index}];
        }
      }
    }
  }
  for (const Output& r : roots) ++uses[{r.node, r.index}];
  return uses;
}

// Collapses one chain (in execution order, head first) into a
// FusedElementwise node, remapping the tail's consumers onto it.
Node* BuildFusedNode(Graph* graph, const std::vector<Node*>& chain,
                     std::vector<Output>* roots) {
  std::unordered_set<const Node*> in_chain(chain.begin(), chain.end());

  // External operands, deduplicated in first-use order: each becomes
  // one explicit Arg (no captures — the body is a pure function).
  std::vector<Output> externals;
  auto external_index = [&externals](const Output& ext) {
    for (size_t i = 0; i < externals.size(); ++i) {
      if (externals[i] == ext) return static_cast<int64_t>(i);
    }
    externals.push_back(ext);
    return static_cast<int64_t>(externals.size() - 1);
  };
  for (const Node* link : chain) {
    for (const Output& in : link->inputs()) {
      if (in_chain.count(in.node) == 0) external_index(in);
    }
  }

  auto body = std::make_shared<FuncGraph>();
  std::unordered_map<const Node*, Node*> clone_of;
  std::vector<Node*> args(externals.size(), nullptr);
  for (size_t i = 0; i < externals.size(); ++i) {
    args[i] = body->AddNode("Arg", {},
                            {{"index", static_cast<int64_t>(i)}});
    args[i]->set_output_dtype(
        0, externals[i].node->output_dtype(externals[i].index));
  }
  body->set_num_explicit_args(static_cast<int>(externals.size()));
  for (const Node* link : chain) {
    std::vector<Output> body_inputs;
    body_inputs.reserve(link->inputs().size());
    for (const Output& in : link->inputs()) {
      if (in_chain.count(in.node) > 0) {
        body_inputs.push_back(Output{clone_of.at(in.node), in.index});
      } else {
        body_inputs.push_back(
            Output{args[static_cast<size_t>(external_index(in))], 0});
      }
    }
    // Clones keep their original names so name-scope paths stay legible
    // in the rendered body.
    Node* clone = body->AddNamedNode(link->name(), link->op(),
                                     std::move(body_inputs), link->attrs(), 1);
    clone->set_output_dtype(0, link->output_dtype(0));
    clone_of[link] = clone;
  }
  Node* tail_clone = clone_of.at(chain.back());
  body->returns = {Output{tail_clone, 0}};

  Node* fused =
      graph->AddNamedNode(chain.back()->name() + "/fused", "FusedElementwise",
                          externals, {{"body", body}}, 1);
  fused->set_output_dtype(0, chain.back()->output_dtype(0));

  // Redirect every consumer of the old tail (edges, captures, roots).
  // Interior chain nodes had no other uses; they are dead now — pruned
  // by dce at the top level, never scheduled inside subgraphs (the same
  // convention LICM leaves behind).
  std::unordered_map<const Node*, Node*> remap{{chain.back(), fused}};
  RemapNodeRefs(graph, remap);
  for (Output& r : *roots) {
    if (r.node == chain.back()) r.node = fused;
  }
  return fused;
}

// Fuses chains in `graph` and (first) in any attached Cond/While
// subgraph. Returns the number of chains collapsed.
int FuseGraph(Graph* graph, std::vector<Output>* roots) {
  int fused = 0;
  for (const auto& n : graph->nodes()) {
    if (n->op() == "FusedElementwise") continue;  // never re-enter bodies
    for (const auto& [key, attr] : n->attrs()) {
      if (const auto* sub = std::get_if<std::shared_ptr<Graph>>(&attr)) {
        auto* fg = dynamic_cast<FuncGraph*>(sub->get());
        if (fg != nullptr) fused += FuseGraph(fg, &fg->returns);
      }
    }
  }

  const UseMap uses = CountUses(*graph, *roots);
  auto sole_use = [&uses](const Node* node) {
    auto it = uses.find({node, 0});
    return it != uses.end() && it->second == 1;
  };

  std::unordered_set<const Node*> taken;
  // Reverse scan over the original extent (fusing appends nodes): each
  // tail greedily absorbs the longest chain behind it, and absorbed
  // nodes are `taken` so inner scans skip them.
  const size_t original = graph->num_nodes();
  for (size_t i = original; i > 0; --i) {
    Node* tail = graph->nodes()[i - 1].get();
    if (taken.count(tail) > 0 || !IsFusableElementwise(*tail)) continue;

    std::vector<Node*> chain{tail};
    for (Node* cur = tail; chain.size() < 1000;) {
      Node* extend = nullptr;
      for (const Output& in : cur->inputs()) {
        if (in.index != 0) continue;
        Node* p = in.node;
        if (taken.count(p) > 0) continue;
        if (!IsFusableElementwise(*p) || !sole_use(p)) continue;
        extend = p;
        break;
      }
      if (extend == nullptr) break;
      chain.push_back(extend);
      cur = extend;
    }
    if (chain.size() < 2) continue;

    std::reverse(chain.begin(), chain.end());  // head first
    for (const Node* link : chain) taken.insert(link);
    BuildFusedNode(graph, chain, roots);
    ++fused;
  }
  return fused;
}

}  // namespace

bool IsFusableElementwise(const Node& node) {
  if (node.num_outputs() != 1) return false;
  if (node.op() == "Cast") return true;
  FusedOp op;
  bool is_binary = false;
  return FusedOpForName(node.op(), &op, &is_binary);
}

int FuseElementwiseChains(PassContext& ctx) {
  const int fused = FuseGraph(ctx.graph, ctx.roots);
  ctx.stats->fused += fused;
  return fused;
}

FusedProgram CompileFusedBody(const FuncGraph& body) {
  if (!body.captures.empty()) {
    throw ValueError("FusedElementwise body must not capture (" +
                     std::to_string(body.captures.size()) + " captures)");
  }
  if (body.returns.size() != 1) {
    throw ValueError("FusedElementwise body must return exactly one value");
  }
  FusedProgram program;
  program.num_inputs = body.num_explicit_args();

  // Registers: Arg index i -> i, then one per non-Arg node in insertion
  // order (which is topological — AddNode appends after inputs exist).
  std::unordered_map<const Node*, int> reg_of;
  std::vector<bool> arg_seen(static_cast<size_t>(program.num_inputs), false);
  const Node* last = nullptr;
  for (const auto& n : body.nodes()) {
    if (n->op() == "Arg") {
      const auto index = n->attr<int64_t>("index");
      if (index < 0 || index >= program.num_inputs ||
          arg_seen[static_cast<size_t>(index)]) {
        throw ValueError("FusedElementwise body: bad Arg index " +
                         std::to_string(index));
      }
      arg_seen[static_cast<size_t>(index)] = true;
      reg_of[n.get()] = static_cast<int>(index);
      continue;
    }
    FusedStep step;
    bool is_binary = false;
    if (n->op() == "Cast") {
      step.op = FusedOp::kCast;
      step.cast_to = n->attr<DType>("dtype");
    } else if (!FusedOpForName(n->op(), &step.op, &is_binary)) {
      throw ValueError("FusedElementwise body: op '" + n->op() +
                       "' has no fused form");
    }
    const size_t arity = is_binary ? 2 : 1;
    if (n->inputs().size() != arity || n->num_outputs() != 1) {
      throw ValueError("FusedElementwise body: op '" + n->op() +
                       "' has wrong arity");
    }
    auto operand = [&reg_of, &n](const Output& in) {
      auto it = reg_of.find(in.node);
      if (it == reg_of.end() || in.index != 0) {
        throw ValueError("FusedElementwise body: node '" + n->name() +
                         "' input does not precede it in the body");
      }
      return it->second;
    };
    step.a = operand(n->inputs()[0]);
    if (is_binary) step.b = operand(n->inputs()[1]);
    reg_of[n.get()] =
        program.num_inputs + static_cast<int>(program.steps.size());
    program.steps.push_back(step);
    last = n.get();
  }
  if (program.steps.empty()) {
    throw ValueError("FusedElementwise body has no ops");
  }
  const Output& ret = body.returns[0];
  if (ret.node != last || ret.index != 0) {
    throw ValueError(
        "FusedElementwise body must return its last op's output");
  }
  program.out_dtype = ret.node->output_dtype(0);
  return program;
}

}  // namespace ag::graph
