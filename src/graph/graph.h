// Dataflow graph IR — this repo's stand-in for the TensorFlow graph.
//
// A Graph is a DAG of Nodes. Each node has an op type (string, like TF),
// positional inputs referencing other nodes' outputs, and typed
// attributes. Functional control flow (Cond/While) stores its branches
// and bodies as *subgraphs* held in attributes; subgraph parameters are
// `Arg` nodes and results are recorded in `FuncGraph::returns`.
//
// Graphs are built once and executed many times by exec::Session — the
// build/run split whose amortization the paper's evaluation measures.
#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "support/error.h"
#include "tensor/tensor.h"

namespace ag::graph {

class Graph;
class Node;

// A reference to one output of a node ("tensor endpoint").
struct Output {
  Node* node = nullptr;
  int index = 0;

  [[nodiscard]] bool valid() const { return node != nullptr; }
  friend bool operator==(const Output& a, const Output& b) {
    return a.node == b.node && a.index == b.index;
  }
};

using AttrValue = std::variant<int64_t, double, std::string, Tensor, DType,
                               std::shared_ptr<Graph>, std::vector<int>>;
using AttrMap = std::map<std::string, AttrValue>;

class Node {
 public:
  Node(int id, std::string name, std::string op, std::vector<Output> inputs,
       AttrMap attrs, int num_outputs)
      : id_(id),
        name_(std::move(name)),
        op_(std::move(op)),
        inputs_(std::move(inputs)),
        attrs_(std::move(attrs)),
        output_dtypes_(static_cast<size_t>(num_outputs), DType::kFloat32),
        output_is_list_(static_cast<size_t>(num_outputs), false) {}

  [[nodiscard]] int id() const { return id_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::string& op() const { return op_; }
  [[nodiscard]] const std::vector<Output>& inputs() const { return inputs_; }
  [[nodiscard]] std::vector<Output>* mutable_inputs() { return &inputs_; }
  [[nodiscard]] int num_outputs() const {
    return static_cast<int>(output_dtypes_.size());
  }

  [[nodiscard]] const AttrMap& attrs() const { return attrs_; }
  [[nodiscard]] bool HasAttr(const std::string& key) const {
    return attrs_.count(key) > 0;
  }
  template <typename T>
  [[nodiscard]] const T& attr(const std::string& key) const {
    auto it = attrs_.find(key);
    if (it == attrs_.end()) {
      throw InternalError("node '" + name_ + "' (" + op_ +
                          ") missing attr '" + key + "'");
    }
    const T* v = std::get_if<T>(&it->second);
    if (v == nullptr) {
      throw InternalError("node '" + name_ + "' attr '" + key +
                          "' has unexpected type");
    }
    return *v;
  }
  void SetAttr(const std::string& key, AttrValue value) {
    attrs_[key] = std::move(value);
  }

  [[nodiscard]] DType output_dtype(int i) const {
    return output_dtypes_.at(static_cast<size_t>(i));
  }
  void set_output_dtype(int i, DType dtype) {
    output_dtypes_.at(static_cast<size_t>(i)) = dtype;
  }

  // True when output `i` carries a TensorList handle rather than a dense
  // tensor (static tracking used by the dynamic-dispatch layer).
  [[nodiscard]] bool output_is_list(int i) const {
    return output_is_list_.at(static_cast<size_t>(i));
  }
  void set_output_is_list(int i, bool is_list) {
    output_is_list_.at(static_cast<size_t>(i)) = is_list;
  }

  [[nodiscard]] Output out(int i = 0) { return Output{this, i}; }

  // The graph that owns this node (set by Graph::AddNode).
  [[nodiscard]] Graph* owner() const { return owner_; }
  void set_owner(Graph* g) { owner_ = g; }

 private:
  Graph* owner_ = nullptr;
  int id_;
  std::string name_;
  std::string op_;
  std::vector<Output> inputs_;
  AttrMap attrs_;
  std::vector<DType> output_dtypes_;
  std::vector<bool> output_is_list_;
};

// The dataflow graph. Owns its nodes; node pointers remain stable for the
// graph's lifetime (unique_ptr storage).
class Graph {
 public:
  Graph() = default;
  virtual ~Graph() = default;
  Graph(const Graph&) = delete;
  Graph& operator=(const Graph&) = delete;

  Node* AddNode(const std::string& op, std::vector<Output> inputs,
                AttrMap attrs = {}, int num_outputs = 1);

  // Like AddNode but requests a specific name (uniquified if taken).
  // Used by passes that clone nodes across graphs so the rendered graph
  // keeps the original name-scope paths.
  Node* AddNamedNode(const std::string& name, const std::string& op,
                     std::vector<Output> inputs, AttrMap attrs = {},
                     int num_outputs = 1);

  [[nodiscard]] const std::vector<std::unique_ptr<Node>>& nodes() const {
    return nodes_;
  }
  [[nodiscard]] size_t num_nodes() const { return nodes_.size(); }

  [[nodiscard]] Node* FindNode(const std::string& name) const;

  // Name scopes (paper §7.2, Function Wrappers: "create a TensorFlow name
  // scope, which improves the readability of the rendered graph").
  void PushNameScope(const std::string& scope);
  void PopNameScope();

  // Removes nodes not reachable from `roots` (dead code elimination
  // support). Invalidated Outputs must not be used afterwards.
  void Prune(const std::vector<Output>& roots);

  [[nodiscard]] std::string DebugString() const;

 private:
  [[nodiscard]] std::string UniqueName(const std::string& base);

  std::vector<std::unique_ptr<Node>> nodes_;
  std::unordered_map<std::string, int> name_counts_;
  std::vector<std::string> name_scopes_;
  int next_id_ = 0;
};

// A subgraph used as a Cond branch / While body. Parameters are `Arg`
// nodes (attr "index"); `returns` lists result endpoints. `captures`
// records external tensors referenced from an enclosing graph: the i-th
// capture corresponds to the Arg node `capture_args[i]`, and callers must
// append the captured values to the call-site inputs.
class FuncGraph final : public Graph {
 public:
  std::vector<Output> returns;
  std::vector<Output> captures;       // endpoints in the OUTER graph
  std::vector<Node*> capture_args;    // Arg nodes in THIS graph

  // Returns the Arg node for captured outer endpoint `ext`, creating it
  // (and recording the capture) on first use.
  Output CaptureExternal(const Output& ext);

  [[nodiscard]] int num_explicit_args() const { return num_explicit_args_; }
  void set_num_explicit_args(int n) { num_explicit_args_ = n; }

 private:
  int num_explicit_args_ = 0;
};

}  // namespace ag::graph
