#include "graph/ops.h"

#include <algorithm>
#include <string_view>
#include <unordered_map>

namespace ag::graph {

Output GraphContext::Resolve(Output o) {
  if (!o.valid()) throw InternalError("Resolve: invalid output");
  Graph* owner = o.node->owner();
  if (owner == current()) return o;

  // Find the stack level that owns `o`.
  int level = -1;
  for (size_t i = 0; i < stack_.size(); ++i) {
    if (stack_[i] == owner) {
      level = static_cast<int>(i);
      break;
    }
  }
  if (level < 0) {
    throw StagingError(
        "tensor '" + o.node->name() +
        "' belongs to a different graph and cannot be captured here");
  }
  // Capture through each FuncGraph between `level` and the top.
  Output cur = o;
  for (size_t i = static_cast<size_t>(level) + 1; i < stack_.size(); ++i) {
    auto* fg = dynamic_cast<FuncGraph*>(stack_[i]);
    if (fg == nullptr) {
      throw InternalError("Resolve: non-root graph is not a FuncGraph");
    }
    cur = fg->CaptureExternal(cur);
  }
  return cur;
}

namespace {

// Ops whose output dtype is fixed by the op's semantics, bucketed by
// rule so InferDtype / InferredDtypeIsAuthoritative resolve with one
// hash lookup instead of a chain of ~40 string compares — both sit on
// hot paths (every OpN during tracing, every node during AGV104
// verification, including at artifact load).
enum class DtypeRule : uint8_t {
  kPropagate,  // not authoritative: dtype follows the inputs
  kBool,
  kInt,
  kFloat,  // float regardless of input dtype
  kInt8,
  kCast,
  kFused,
};

DtypeRule RuleFor(const std::string& op) {
  static const std::unordered_map<std::string_view, DtypeRule> kRules = {
      {"Less", DtypeRule::kBool},
      {"LessEqual", DtypeRule::kBool},
      {"Greater", DtypeRule::kBool},
      {"GreaterEqual", DtypeRule::kBool},
      {"Equal", DtypeRule::kBool},
      {"NotEqual", DtypeRule::kBool},
      {"LogicalAnd", DtypeRule::kBool},
      {"LogicalOr", DtypeRule::kBool},
      {"LogicalNot", DtypeRule::kBool},
      {"ArgMax", DtypeRule::kInt},
      {"Range", DtypeRule::kInt},
      {"Shape", DtypeRule::kInt},
      {"Size", DtypeRule::kInt},
      {"TensorListLen", DtypeRule::kInt},
      {"Dim0", DtypeRule::kInt},
      {"Div", DtypeRule::kFloat},
      {"Exp", DtypeRule::kFloat},
      {"Log", DtypeRule::kFloat},
      {"Tanh", DtypeRule::kFloat},
      {"Sigmoid", DtypeRule::kFloat},
      {"Relu", DtypeRule::kFloat},
      {"Sqrt", DtypeRule::kFloat},
      {"Softmax", DtypeRule::kFloat},
      {"LogSoftmax", DtypeRule::kFloat},
      {"SoftmaxCrossEntropy", DtypeRule::kFloat},
      {"SoftmaxCrossEntropyGrad", DtypeRule::kFloat},
      {"OneHot", DtypeRule::kFloat},
      {"Sin", DtypeRule::kFloat},
      {"Cos", DtypeRule::kFloat},
      {"Pow", DtypeRule::kFloat},
      {"RandomNormal", DtypeRule::kFloat},
      {"RandomUniform", DtypeRule::kFloat},
      // Quantization boundary ops (inserted by the quantize_weights
      // pass); Dequantize/QuantizedMatMul produce float.
      {"Quantize", DtypeRule::kInt8},
      {"Dequantize", DtypeRule::kFloat},
      {"QuantizedMatMul", DtypeRule::kFloat},
      {"Cast", DtypeRule::kCast},
      {"FusedElementwise", DtypeRule::kFused},
  };
  auto it = kRules.find(op);
  return it == kRules.end() ? DtypeRule::kPropagate : it->second;
}

}  // namespace

DType InferDtype(const std::string& op, const std::vector<Output>& inputs,
                 const AttrMap& attrs) {
  switch (RuleFor(op)) {
    case DtypeRule::kBool:
      return DType::kBool;
    case DtypeRule::kInt:
      return DType::kInt32;
    case DtypeRule::kInt8:
      return DType::kInt8;
    case DtypeRule::kFloat:
      return DType::kFloat32;
    case DtypeRule::kCast: {
      auto it = attrs.find("dtype");
      if (it != attrs.end()) return std::get<DType>(it->second);
      return DType::kFloat32;
    }
    case DtypeRule::kFused: {
      // A fused chain's dtype is whatever its body returns.
      auto it = attrs.find("body");
      if (it != attrs.end()) {
        const auto* fg = dynamic_cast<const FuncGraph*>(
            std::get<std::shared_ptr<Graph>>(it->second).get());
        if (fg != nullptr && fg->returns.size() == 1 &&
            fg->returns[0].valid()) {
          return fg->returns[0].node->output_dtype(fg->returns[0].index);
        }
      }
      return DType::kFloat32;
    }
    case DtypeRule::kPropagate:
      break;
  }
  // Where(cond, x, y) selects between x and y: its output carries the
  // value dtype, not the bool condition in input 0. (Latent bug found
  // by the AGV105 loop-var invariance check: tf.where on loop state
  // recorded dtype bool, making every such While loop-carried slot
  // inconsistent.)
  if (op == "Where" && inputs.size() >= 2 && inputs[1].valid()) {
    return inputs[1].node->output_dtype(inputs[1].index);
  }
  // Dtype-propagating ops: use the first tensor input if present.
  if (!inputs.empty() && inputs[0].valid()) {
    return inputs[0].node->output_dtype(inputs[0].index);
  }
  return DType::kFloat32;
}

bool InferredDtypeIsAuthoritative(const std::string& op) {
  return RuleFor(op) != DtypeRule::kPropagate;
}

std::vector<Output> OpN(GraphContext& ctx, const std::string& op,
                        std::vector<Output> inputs, AttrMap attrs,
                        int num_outputs) {
  for (Output& in : inputs) in = ctx.Resolve(in);
  const DType dtype = InferDtype(op, inputs, attrs);
  Node* node = ctx.current()->AddNode(op, std::move(inputs), std::move(attrs),
                                      num_outputs);
  for (int i = 0; i < num_outputs; ++i) node->set_output_dtype(i, dtype);
  // Multi-output special cases.
  if (op == "TopK" && num_outputs == 2) {
    node->set_output_dtype(1, DType::kInt32);
  }
  // TensorList-producing ops.
  if (op == "TensorListNew" || op == "TensorListPushBack" ||
      op == "TensorListSet") {
    node->set_output_is_list(0, true);
  }
  if (op == "TensorListPopBack") {
    node->set_output_is_list(0, true);  // output 1 is the popped tensor
  }
  std::vector<Output> outs;
  outs.reserve(static_cast<size_t>(num_outputs));
  for (int i = 0; i < num_outputs; ++i) outs.push_back(node->out(i));
  return outs;
}

Output Op(GraphContext& ctx, const std::string& op, std::vector<Output> inputs,
          AttrMap attrs) {
  return OpN(ctx, op, std::move(inputs), std::move(attrs), 1)[0];
}

Output Const(GraphContext& ctx, Tensor value) {
  const DType dtype = value.dtype();
  Node* node = ctx.current()->AddNode("Const", {},
                                      {{"value", std::move(value)}}, 1);
  node->set_output_dtype(0, dtype);
  return node->out(0);
}

Output Placeholder(GraphContext& ctx, const std::string& name, DType dtype) {
  Node* node =
      ctx.current()->AddNode("Placeholder", {}, {{"name", name}}, 1);
  node->set_output_dtype(0, dtype);
  return node->out(0);
}

Output Variable(GraphContext& ctx, const std::string& var_name, DType dtype) {
  Node* node =
      ctx.current()->AddNode("Variable", {}, {{"var_name", var_name}}, 1);
  node->set_output_dtype(0, dtype);
  return node->out(0);
}

Output Assign(GraphContext& ctx, const std::string& var_name, Output value) {
  value = ctx.Resolve(value);
  const DType dtype = value.node->output_dtype(value.index);
  Node* node = ctx.current()->AddNode("Assign", {value},
                                      {{"var_name", var_name}}, 1);
  node->set_output_dtype(0, dtype);
  return node->out(0);
}

std::vector<Output> Cond(GraphContext& ctx, Output pred,
                         const std::function<std::vector<Output>()>& then_fn,
                         const std::function<std::vector<Output>()>& else_fn) {
  pred = ctx.Resolve(pred);

  auto then_graph = std::make_shared<FuncGraph>();
  ctx.Push(then_graph.get());
  std::vector<Output> then_outs;
  try {
    then_outs = then_fn();
  } catch (...) {
    ctx.Pop();
    throw;
  }
  for (Output& o : then_outs) o = ctx.Resolve(o);
  then_graph->returns = then_outs;
  ctx.Pop();

  auto else_graph = std::make_shared<FuncGraph>();
  ctx.Push(else_graph.get());
  std::vector<Output> else_outs;
  try {
    else_outs = else_fn();
  } catch (...) {
    ctx.Pop();
    throw;
  }
  for (Output& o : else_outs) o = ctx.Resolve(o);
  else_graph->returns = else_outs;
  ctx.Pop();

  if (then_outs.size() != else_outs.size()) {
    throw StagingError(
        "cond: branches produce a different number of values (" +
        std::to_string(then_outs.size()) + " vs " +
        std::to_string(else_outs.size()) +
        "); all code paths must produce consistent values");
  }

  // Call-site inputs: pred, then-captures, else-captures. The captures
  // live in the *current* graph (or are themselves resolvable there).
  std::vector<Output> inputs{pred};
  for (const Output& c : then_graph->captures) {
    inputs.push_back(ctx.Resolve(c));
  }
  for (const Output& c : else_graph->captures) {
    inputs.push_back(ctx.Resolve(c));
  }

  const int n = static_cast<int>(then_outs.size());
  Node* node = ctx.current()->AddNode(
      "Cond", std::move(inputs),
      {{"then_branch", std::static_pointer_cast<Graph>(then_graph)},
       {"else_branch", std::static_pointer_cast<Graph>(else_graph)},
       {"then_ncaps", static_cast<int64_t>(then_graph->captures.size())}},
      std::max(n, 1));
  for (int i = 0; i < n; ++i) {
    const Output& o = then_outs[static_cast<size_t>(i)];
    node->set_output_dtype(i, o.node->output_dtype(o.index));
    node->set_output_is_list(i, o.node->output_is_list(o.index));
  }
  std::vector<Output> outs;
  outs.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) outs.push_back(node->out(i));
  return outs;
}

std::vector<Output> While(
    GraphContext& ctx, std::vector<Output> init,
    const std::function<Output(const std::vector<Output>&)>& cond_fn,
    const std::function<std::vector<Output>(const std::vector<Output>&)>&
        body_fn) {
  const int n = static_cast<int>(init.size());
  for (Output& o : init) o = ctx.Resolve(o);

  auto make_args = [n](FuncGraph* g, const std::vector<Output>& init_vals) {
    g->set_num_explicit_args(n);
    std::vector<Output> args;
    args.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      Node* arg = g->AddNode("Arg", {}, {{"index", static_cast<int64_t>(i)}});
      const Output& o = init_vals[static_cast<size_t>(i)];
      arg->set_output_dtype(0, o.node->output_dtype(o.index));
      arg->set_output_is_list(0, o.node->output_is_list(o.index));
      args.push_back(arg->out(0));
    }
    return args;
  };

  auto cond_graph = std::make_shared<FuncGraph>();
  ctx.Push(cond_graph.get());
  try {
    std::vector<Output> args = make_args(cond_graph.get(), init);
    Output test = ctx.Resolve(cond_fn(args));
    cond_graph->returns = {test};
  } catch (...) {
    ctx.Pop();
    throw;
  }
  ctx.Pop();

  auto body_graph = std::make_shared<FuncGraph>();
  ctx.Push(body_graph.get());
  try {
    std::vector<Output> args = make_args(body_graph.get(), init);
    std::vector<Output> next = body_fn(args);
    if (static_cast<int>(next.size()) != n) {
      throw StagingError(
          "while: body must return as many values as there are loop "
          "variables (" +
          std::to_string(n) + "), got " + std::to_string(next.size()));
    }
    for (Output& o : next) o = ctx.Resolve(o);
    body_graph->returns = next;
  } catch (...) {
    ctx.Pop();
    throw;
  }
  ctx.Pop();

  std::vector<Output> inputs = init;
  for (const Output& c : cond_graph->captures) {
    inputs.push_back(ctx.Resolve(c));
  }
  for (const Output& c : body_graph->captures) {
    inputs.push_back(ctx.Resolve(c));
  }

  Node* node = ctx.current()->AddNode(
      "While", std::move(inputs),
      {{"cond", std::static_pointer_cast<Graph>(cond_graph)},
       {"body", std::static_pointer_cast<Graph>(body_graph)},
       {"num_loop_vars", static_cast<int64_t>(n)},
       {"cond_ncaps", static_cast<int64_t>(cond_graph->captures.size())}},
      std::max(n, 1));
  for (int i = 0; i < n; ++i) {
    const Output& o = init[static_cast<size_t>(i)];
    node->set_output_dtype(i, o.node->output_dtype(o.index));
    node->set_output_is_list(i, o.node->output_is_list(o.index));
  }
  std::vector<Output> outs;
  outs.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) outs.push_back(node->out(i));
  return outs;
}

}  // namespace ag::graph
