#include "graph/serialize.h"

#include <map>
#include <sstream>

#include "support/strings.h"

namespace ag::graph {
namespace {

// ---- writer ----

void WriteTensor(const Tensor& t, std::ostringstream& os) {
  os << DTypeName(t.dtype()) << " [";
  const auto& dims = t.shape().dims();
  for (size_t i = 0; i < dims.size(); ++i) {
    if (i > 0) os << " ";
    os << dims[i];
  }
  os << " ] :";
  for (int64_t i = 0; i < t.num_elements(); ++i) {
    os << " " << t.at(i);
  }
}

void WriteGraph(const Graph& graph, int indent, std::ostringstream& os);

void WriteNode(const Node& node, int indent, std::ostringstream& os) {
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  os << pad << "node \"" << node.name() << "\" " << node.op() << " "
     << node.num_outputs() << "\n";
  for (const Output& in : node.inputs()) {
    os << pad << "  input \"" << in.node->name() << "\" " << in.index
       << "\n";
  }
  for (int i = 0; i < node.num_outputs(); ++i) {
    os << pad << "  dtype " << i << " " << DTypeName(node.output_dtype(i))
       << (node.output_is_list(i) ? " list" : "") << "\n";
  }
  for (const auto& [key, attr] : node.attrs()) {
    if (const auto* v = std::get_if<int64_t>(&attr)) {
      os << pad << "  attr_int " << key << " " << *v << "\n";
    } else if (const auto* d = std::get_if<double>(&attr)) {
      os << pad << "  attr_float " << key << " " << *d << "\n";
    } else if (const auto* s = std::get_if<std::string>(&attr)) {
      os << pad << "  attr_str " << key << " \"" << *s << "\"\n";
    } else if (const auto* dt = std::get_if<DType>(&attr)) {
      os << pad << "  attr_dtype " << key << " " << DTypeName(*dt) << "\n";
    } else if (const auto* ints = std::get_if<std::vector<int>>(&attr)) {
      os << pad << "  attr_ints " << key;
      for (int v : *ints) os << " " << v;
      os << "\n";
    } else if (const auto* t = std::get_if<Tensor>(&attr)) {
      os << pad << "  attr_tensor " << key << " ";
      WriteTensor(*t, os);
      os << "\n";
    } else if (const auto* sub =
                   std::get_if<std::shared_ptr<Graph>>(&attr)) {
      os << pad << "  attr_graph " << key << "\n";
      WriteGraph(**sub, indent + 2, os);
      os << pad << "  end_attr_graph\n";
    }
  }
  os << pad << "end_node\n";
}

void WriteGraph(const Graph& graph, int indent, std::ostringstream& os) {
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  const auto* fg = dynamic_cast<const FuncGraph*>(&graph);
  if (fg != nullptr) {
    os << pad << "num_explicit_args " << fg->num_explicit_args() << "\n";
  }
  for (const auto& node : graph.nodes()) {
    WriteNode(*node, indent, os);
  }
  if (fg != nullptr) {
    for (const Output& c : fg->captures) {
      os << pad << "capture \"" << c.node->name() << "\" " << c.index
         << "\n";
    }
    for (const Output& r : fg->returns) {
      os << pad << "return \"" << r.node->name() << "\" " << r.index
         << "\n";
    }
  }
}

// ---- reader ----

struct LineStream {
  std::vector<std::string> lines;
  size_t pos = 0;

  // Returns the next non-blank line, stripped; empty string at EOF.
  std::string Peek() {
    while (pos < lines.size()) {
      std::string s = Strip(lines[pos]);
      if (!s.empty()) return s;
      ++pos;
    }
    return "";
  }
  void Advance() { ++pos; }
};

std::vector<std::string> Fields(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream is(line);
  std::string tok;
  while (is >> tok) out.push_back(tok);
  return out;
}

// Extracts a quoted name ("foo bar" not supported; names have no spaces).
std::string Unquote(const std::string& s) {
  if (s.size() < 2 || s.front() != '"' || s.back() != '"') {
    throw ValueError("serialize: expected quoted name, got '" + s + "'");
  }
  return s.substr(1, s.size() - 2);
}

DType ParseDType(const std::string& s) {
  if (s == "float32") return DType::kFloat32;
  if (s == "int32") return DType::kInt32;
  if (s == "bool") return DType::kBool;
  if (s == "int8") return DType::kInt8;
  throw ValueError("serialize: unknown dtype '" + s + "'");
}

// Reads nodes until `stop` (or EOF); `outer` resolves capture names.
void ReadGraphBody(LineStream& ls, Graph* graph,
                   const std::map<std::string, Node*>* outer,
                   const std::string& stop);

Node* ReadNode(LineStream& ls, Graph* graph,
               std::map<std::string, Node*>* names,
               const std::map<std::string, Node*>* /*outer*/) {
  std::vector<std::string> head = Fields(ls.Peek());
  ls.Advance();
  // head: node "<name>" <op> <num_outputs>
  const std::string name = Unquote(head[1]);
  const std::string op = head[2];
  const int num_outputs = std::stoi(head[3]);

  std::vector<Output> inputs;
  AttrMap attrs;
  std::vector<std::pair<int, std::pair<DType, bool>>> dtypes;

  while (true) {
    std::string line = ls.Peek();
    if (line == "end_node") {
      ls.Advance();
      break;
    }
    std::vector<std::string> f = Fields(line);
    if (f.empty()) throw ValueError("serialize: unexpected EOF in node");
    const std::string& kind = f[0];
    if (kind == "input") {
      auto it = names->find(Unquote(f[1]));
      if (it == names->end()) {
        throw ValueError("serialize: input references unknown node " +
                         f[1]);
      }
      inputs.push_back(Output{it->second, std::stoi(f[2])});
      ls.Advance();
    } else if (kind == "dtype") {
      dtypes.emplace_back(
          std::stoi(f[1]),
          std::make_pair(ParseDType(f[2]), f.size() > 3 && f[3] == "list"));
      ls.Advance();
    } else if (kind == "attr_int") {
      attrs[f[1]] = static_cast<int64_t>(std::stoll(f[2]));
      ls.Advance();
    } else if (kind == "attr_float") {
      attrs[f[1]] = std::stod(f[2]);
      ls.Advance();
    } else if (kind == "attr_str") {
      // Re-join in case the value had spaces (names do not, but messages
      // may).
      const size_t q1 = line.find('"');
      const size_t q2 = line.rfind('"');
      attrs[f[1]] = line.substr(q1 + 1, q2 - q1 - 1);
      ls.Advance();
    } else if (kind == "attr_dtype") {
      attrs[f[1]] = ParseDType(f[2]);
      ls.Advance();
    } else if (kind == "attr_ints") {
      std::vector<int> values;
      for (size_t i = 2; i < f.size(); ++i) values.push_back(std::stoi(f[i]));
      attrs[f[1]] = std::move(values);
      ls.Advance();
    } else if (kind == "attr_tensor") {
      // attr_tensor <key> <dtype> [ dims ] : v v v
      const DType dtype = ParseDType(f[2]);
      std::vector<int64_t> dims;
      size_t i = 4;  // after '['
      for (; i < f.size() && f[i] != "]"; ++i) {
        dims.push_back(std::stoll(f[i]));
      }
      i += 2;  // skip "]" and ":"
      std::vector<float> values;
      for (; i < f.size(); ++i) values.push_back(std::stof(f[i]));
      attrs[f[1]] =
          Tensor::FromVector(std::move(values), Shape(std::move(dims)),
                             dtype);
      ls.Advance();
    } else if (kind == "attr_graph") {
      ls.Advance();
      auto sub = std::make_shared<FuncGraph>();
      ReadGraphBody(ls, sub.get(), names, "end_attr_graph");
      ls.Advance();  // consume end_attr_graph
      attrs[f[1]] = std::static_pointer_cast<Graph>(sub);
    } else {
      throw ValueError("serialize: unexpected line in node: " + line);
    }
  }

  // Rebuild through AddNode to keep ownership bookkeeping; then restore
  // the recorded dtypes. Names regenerate deterministically because nodes
  // are written in creation order with the same base names.
  Node* node =
      graph->AddNode(op, std::move(inputs), std::move(attrs), num_outputs);
  for (const auto& [index, info] : dtypes) {
    node->set_output_dtype(index, info.first);
    node->set_output_is_list(index, info.second);
  }
  names->emplace(name, node);
  return node;
}

void ReadGraphBody(LineStream& ls, Graph* graph,
                   const std::map<std::string, Node*>* outer,
                   const std::string& stop) {
  std::map<std::string, Node*> names;
  auto* fg = dynamic_cast<FuncGraph*>(graph);
  while (true) {
    std::string line = ls.Peek();
    if (line.empty() || line == stop) return;
    std::vector<std::string> f = Fields(line);
    if (f[0] == "node") {
      ReadNode(ls, graph, &names, outer);
    } else if (f[0] == "num_explicit_args") {
      if (fg != nullptr) fg->set_num_explicit_args(std::stoi(f[1]));
      ls.Advance();
    } else if (f[0] == "capture") {
      if (fg == nullptr || outer == nullptr) {
        throw ValueError("serialize: capture outside a subgraph");
      }
      auto it = outer->find(Unquote(f[1]));
      if (it == outer->end()) {
        throw ValueError("serialize: capture references unknown node " +
                         f[1]);
      }
      fg->captures.push_back(Output{it->second, std::stoi(f[2])});
      // The matching Arg node was already deserialized; recover it by
      // position: capture i corresponds to the i-th Arg with index >=
      // num_explicit_args.
      ls.Advance();
    } else if (f[0] == "return") {
      if (fg == nullptr) {
        throw ValueError("serialize: return outside a subgraph");
      }
      auto it = names.find(Unquote(f[1]));
      if (it == names.end()) {
        throw ValueError("serialize: return references unknown node " +
                         f[1]);
      }
      fg->returns.push_back(Output{it->second, std::stoi(f[2])});
      ls.Advance();
    } else if (f[0] == "output") {
      return;  // top-level output section; handled by caller
    } else {
      throw ValueError("serialize: unexpected line: " + line);
    }
  }
}

}  // namespace

std::string SerializeGraph(const Graph& graph,
                           const std::vector<Output>& outputs) {
  std::ostringstream os;
  os << "# AutoGraph-C++ graph, version 1\n";
  WriteGraph(graph, 0, os);
  for (const Output& o : outputs) {
    os << "output \"" << o.node->name() << "\" " << o.index << "\n";
  }
  return os.str();
}

DeserializedGraph DeserializeGraph(const std::string& text) {
  LineStream ls;
  for (std::string& line : Split(text, '\n')) {
    if (!line.empty() && line[0] == '#') continue;
    ls.lines.push_back(std::move(line));
  }

  DeserializedGraph out;
  out.graph = std::make_shared<Graph>();
  // Top-level read: collect the name map to resolve outputs.
  std::map<std::string, Node*> names;
  while (true) {
    std::string line = ls.Peek();
    if (line.empty()) break;
    std::vector<std::string> f = Fields(line);
    if (f[0] == "node") {
      ReadNode(ls, out.graph.get(), &names, nullptr);
    } else if (f[0] == "output") {
      auto it = names.find(Unquote(f[1]));
      if (it == names.end()) {
        throw ValueError("serialize: output references unknown node " +
                         f[1]);
      }
      out.outputs.push_back(Output{it->second, std::stoi(f[2])});
      ls.Advance();
    } else {
      throw ValueError("serialize: unexpected top-level line: " + line);
    }
  }
  return out;
}

}  // namespace ag::graph
