#include "graph/graph.h"

#include <algorithm>
#include <set>
#include <sstream>

namespace ag::graph {

Node* Graph::AddNode(const std::string& op, std::vector<Output> inputs,
                     AttrMap attrs, int num_outputs) {
  auto node = std::make_unique<Node>(next_id_++, UniqueName(op), op,
                                     std::move(inputs), std::move(attrs),
                                     num_outputs);
  Node* raw = node.get();
  raw->set_owner(this);
  nodes_.push_back(std::move(node));
  return raw;
}

Node* Graph::AddNamedNode(const std::string& name, const std::string& op,
                          std::vector<Output> inputs, AttrMap attrs,
                          int num_outputs) {
  auto node = std::make_unique<Node>(next_id_++, UniqueName(name), op,
                                     std::move(inputs), std::move(attrs),
                                     num_outputs);
  Node* raw = node.get();
  raw->set_owner(this);
  nodes_.push_back(std::move(node));
  return raw;
}

Node* Graph::FindNode(const std::string& name) const {
  for (const auto& n : nodes_) {
    if (n->name() == name) return n.get();
  }
  return nullptr;
}

void Graph::PushNameScope(const std::string& scope) {
  name_scopes_.push_back(scope);
}

void Graph::PopNameScope() {
  if (!name_scopes_.empty()) name_scopes_.pop_back();
}

std::string Graph::UniqueName(const std::string& base) {
  std::string prefix;
  for (const std::string& s : name_scopes_) prefix += s + "/";
  std::string full = prefix + base;
  int count = name_counts_[full]++;
  if (count == 0) return full;
  return full + "_" + std::to_string(count);
}

void Graph::Prune(const std::vector<Output>& roots) {
  std::set<const Node*> live;
  std::vector<const Node*> stack;
  for (const Output& r : roots) {
    if (r.valid() && live.insert(r.node).second) stack.push_back(r.node);
  }
  while (!stack.empty()) {
    const Node* n = stack.back();
    stack.pop_back();
    for (const Output& in : n->inputs()) {
      if (in.valid() && live.insert(in.node).second) stack.push_back(in.node);
    }
    // Subgraph captures keep their outer-graph sources alive.
    for (const auto& [key, attr] : n->attrs()) {
      if (const auto* sub = std::get_if<std::shared_ptr<Graph>>(&attr)) {
        auto* fg = dynamic_cast<FuncGraph*>(sub->get());
        if (fg != nullptr) {
          for (const Output& c : fg->captures) {
            if (c.valid() && live.insert(c.node).second) {
              stack.push_back(c.node);
            }
          }
        }
      }
    }
  }
  nodes_.erase(std::remove_if(nodes_.begin(), nodes_.end(),
                              [&live](const std::unique_ptr<Node>& n) {
                                return live.count(n.get()) == 0;
                              }),
               nodes_.end());
}

std::string Graph::DebugString() const {
  std::ostringstream os;
  for (const auto& n : nodes_) {
    os << n->name() << " = " << n->op() << "(";
    for (size_t i = 0; i < n->inputs().size(); ++i) {
      if (i > 0) os << ", ";
      const Output& in = n->inputs()[i];
      os << in.node->name();
      if (in.index != 0) os << ":" << in.index;
    }
    os << ")";
    for (const auto& [key, attr] : n->attrs()) {
      if (std::holds_alternative<std::shared_ptr<Graph>>(attr)) {
        os << " {" << key << "=<subgraph "
           << std::get<std::shared_ptr<Graph>>(attr)->num_nodes()
           << " nodes>}";
      }
    }
    os << "\n";
  }
  return os.str();
}

Output FuncGraph::CaptureExternal(const Output& ext) {
  for (size_t i = 0; i < captures.size(); ++i) {
    if (captures[i] == ext) return Output{capture_args[i], 0};
  }
  Node* arg = AddNode("Arg", {},
                      {{"index", static_cast<int64_t>(num_explicit_args() +
                                                      captures.size())}});
  arg->set_output_dtype(0, ext.node->output_dtype(ext.index));
  arg->set_output_is_list(0, ext.node->output_is_list(ext.index));
  captures.push_back(ext);
  capture_args.push_back(arg);
  return Output{arg, 0};
}

}  // namespace ag::graph
