#include "graph/optimize.h"

#include <cstdlib>
#include <map>
#include <set>
#include <sstream>
#include <unordered_map>

#include "graph/fusion.h"
#include "graph/pass_manager.h"
#include "graph/quantize.h"
#include "support/error.h"

namespace ag::graph {
namespace {

// Ops excluded from folding/CSE: stateful, control-flow, or I/O.
const std::set<std::string>& ImpureOps() {
  static const auto* kSet = new std::set<std::string>{
      "Placeholder", "Variable",      "Assign",       "Print",
      "Cond",        "While",         "Arg",          "NoOp",
      "RandomNormal", "RandomUniform", "TensorListNew",
      "TensorListPushBack", "TensorListPopBack", "TensorListStack",
      "TensorListGet", "TensorListSet", "TensorListLen",
  };
  return *kSet;
}

// A structural signature for CSE. Includes op, input endpoints, and
// scalar attrs; nodes with subgraph or tensor attrs are handled
// separately (Const participates via value signature).
std::string NodeSignature(const Node& node) {
  std::ostringstream os;
  os << node.op();
  for (const Output& in : node.inputs()) {
    os << "|" << in.node->id() << ":" << in.index;
  }
  for (const auto& [key, attr] : node.attrs()) {
    os << "|" << key << "=";
    if (const auto* i = std::get_if<int64_t>(&attr)) {
      os << *i;
    } else if (const auto* d = std::get_if<double>(&attr)) {
      os << *d;
    } else if (const auto* s = std::get_if<std::string>(&attr)) {
      os << *s;
    } else if (const auto* dt = std::get_if<DType>(&attr)) {
      os << DTypeName(*dt);
    } else if (const auto* p = std::get_if<std::vector<int>>(&attr)) {
      for (int v : *p) os << v << ",";
    } else if (const auto* t = std::get_if<Tensor>(&attr)) {
      // Constants: fold small ones into the signature by value.
      if (t->num_elements() <= 64) {
        os << DTypeName(t->dtype()) << t->shape().str();
        for (int64_t i = 0; i < t->num_elements(); ++i) os << "," << t->at(i);
      } else {
        os << "<big tensor " << node.id() << ">";
      }
    } else {
      os << "<subgraph " << node.id() << ">";  // never merged
    }
  }
  return os.str();
}

// Hoists loop-invariant pure ops out of one While node's body. Returns
// the number of hoisted nodes. A body node is invariant when it is pure,
// single-output, subgraph-free, and every input is a capture Arg, a
// Const, or an already-hoisted node. Hoisted values are recomputed in
// the outer graph and re-captured, and all body uses (including returns)
// are redirected to the new capture; the originals become dead and the
// executor's plan never schedules them.
int HoistWhileInvariants(Graph* outer, Node* while_node) {
  auto body = std::static_pointer_cast<FuncGraph>(
      while_node->attr<std::shared_ptr<Graph>>("body"));
  const auto num_loop_vars =
      static_cast<int64_t>(while_node->attr<int64_t>("num_loop_vars"));

  // Outer endpoint of each capture Arg (Arg index -> outer Output).
  std::unordered_map<const Node*, Output> capture_source;
  for (size_t j = 0; j < body->captures.size(); ++j) {
    capture_source[body->capture_args[j]] = body->captures[j];
  }

  // Maps hoisted/cloned body nodes to their outer-graph clones.
  std::unordered_map<const Node*, Node*> hoisted;
  // Body-side replacement edges: old body endpoint -> new capture arg.
  std::unordered_map<const Node*, Output> replace;

  auto outer_input_for = [&](const Output& in,
                             bool* ok) -> Output {
    if (in.node->op() == "Arg") {
      auto it = capture_source.find(in.node);
      if (it == capture_source.end()) {  // a loop variable
        *ok = false;
        return {};
      }
      return it->second;
    }
    auto hit = hoisted.find(in.node);
    if (hit != hoisted.end()) return Output{hit->second, in.index};
    if (in.node->op() == "Const") {
      Node* clone = outer->AddNode(
          "Const", {}, {{"value", in.node->attr<Tensor>("value")}});
      clone->set_output_dtype(0, in.node->output_dtype(0));
      hoisted[in.node] = clone;
      return Output{clone, 0};
    }
    *ok = false;
    return {};
  };

  int count = 0;
  // Index iteration over the original extent: re-capturing adds Arg
  // nodes to the body while we scan.
  const size_t original_body_nodes = body->num_nodes();
  for (size_t bi = 0; bi < original_body_nodes; ++bi) {
    const auto& n = body->nodes()[bi];
    const std::string& op = n->op();
    if (!IsPureOp(op) || op == "Const" || op == "Arg" ||
        n->num_outputs() != 1 || n->inputs().empty()) {
      continue;
    }
    bool has_subgraph = false;
    for (const auto& [key, attr] : n->attrs()) {
      if (std::holds_alternative<std::shared_ptr<Graph>>(attr)) {
        has_subgraph = true;
      }
    }
    if (has_subgraph) continue;

    bool ok = true;
    std::vector<Output> outer_inputs;
    outer_inputs.reserve(n->inputs().size());
    for (const Output& in : n->inputs()) {
      outer_inputs.push_back(outer_input_for(in, &ok));
      if (!ok) break;
    }
    if (!ok) continue;

    Node* clone =
        outer->AddNode(op, std::move(outer_inputs), n->attrs(), 1);
    clone->set_output_dtype(0, n->output_dtype(0));
    clone->set_output_is_list(0, n->output_is_list(0));
    hoisted[n.get()] = clone;

    // Re-capture the hoisted value into the body and extend the While
    // node's input list (body captures form its trailing segment).
    Output arg = body->CaptureExternal(Output{clone, 0});
    while_node->mutable_inputs()->push_back(Output{clone, 0});
    capture_source[arg.node] = Output{clone, 0};
    replace[n.get()] = arg;
    ++count;
  }

  if (!replace.empty()) {
    auto fix = [&replace](Output& o) {
      auto it = replace.find(o.node);
      if (it != replace.end()) o = it->second;
    };
    for (const auto& n : body->nodes()) {
      if (replace.count(n.get()) > 0) continue;  // the dead original
      for (Output& in : *n->mutable_inputs()) fix(in);
      for (const auto& [key, attr] : n->attrs()) {
        if (const auto* sub = std::get_if<std::shared_ptr<Graph>>(&attr)) {
          auto* fg = dynamic_cast<FuncGraph*>(sub->get());
          if (fg != nullptr) {
            for (Output& c : fg->captures) fix(c);
          }
        }
      }
    }
    for (Output& r : body->returns) fix(r);
  }
  (void)num_loop_vars;
  return count;
}

// ---- Pass bodies (registered by RegisterBuiltinGraphPasses) ----------

// Loop-invariant code motion: pure ops inside a While body that depend
// only on loop-invariant captures/constants are hoisted into the outer
// graph and re-captured, so they execute once per Run instead of once
// per iteration (the Grappler optimization TF applies to staged loops).
int RunLicm(PassContext& ctx) {
  Graph* graph = ctx.graph;
  int hoisted = 0;
  // Hoist over the node list snapshot: hoisting appends clones.
  const size_t original = graph->num_nodes();
  for (size_t i = 0; i < original; ++i) {
    Node* n = graph->nodes()[i].get();
    if (n->op() == "While") {
      hoisted += HoistWhileInvariants(graph, n);
    }
  }
  ctx.stats->hoisted += hoisted;
  return hoisted;
}

int RunConstantFolding(PassContext& ctx) {
  Graph* graph = ctx.graph;
  const NodeEvaluator& evaluator = *ctx.evaluator;
  int folded_count = 0;
  // One forward sweep folds chains: nodes are appended after their
  // inputs, so insertion order is topological. Index-based iteration
  // over the original extent — folding appends new Const nodes, which
  // both invalidates iterators and needs no scanning.
  std::unordered_map<const Node*, Node*> remap;
  const size_t original_count = graph->num_nodes();
  for (size_t node_index = 0; node_index < original_count; ++node_index) {
    const auto& n = graph->nodes()[node_index];
    if (!IsPureOp(n->op()) || n->op() == "Const" || n->num_outputs() != 1) {
      continue;
    }
    bool all_const = !n->inputs().empty();
    std::vector<Tensor> in_values;
    for (Output in : n->inputs()) {
      auto it = remap.find(in.node);
      const Node* src = it != remap.end() ? it->second : in.node;
      if (src->op() != "Const" || in.index != 0) {
        all_const = false;
        break;
      }
      in_values.push_back(src->attr<Tensor>("value"));
    }
    if (!all_const) continue;
    std::vector<Tensor> result;
    try {
      result = evaluator(*n, in_values);
    } catch (const Error&) {
      continue;  // shape errors etc. surface at run time, as in TF
    }
    if (result.size() != 1) continue;
    Node* folded =
        graph->AddNode("Const", {}, {{"value", std::move(result[0])}});
    folded->set_output_dtype(0, n->output_dtype(0));
    remap[n.get()] = folded;
    ++folded_count;
  }
  if (!remap.empty()) {
    RemapNodeRefs(graph, remap);
    for (Output& r : *ctx.roots) {
      auto it = remap.find(r.node);
      if (it != remap.end()) r.node = it->second;
    }
  }
  ctx.stats->folded += folded_count;
  return folded_count;
}

int RunCse(PassContext& ctx) {
  Graph* graph = ctx.graph;
  int merged = 0;
  std::map<std::string, Node*> seen;
  std::unordered_map<const Node*, Node*> remap;
  for (const auto& n : graph->nodes()) {
    if (!IsPureOp(n->op())) continue;
    bool has_subgraph = false;
    for (const auto& [key, attr] : n->attrs()) {
      if (std::holds_alternative<std::shared_ptr<Graph>>(attr)) {
        has_subgraph = true;
      }
    }
    if (has_subgraph) continue;
    // Resolve inputs through prior merges so chains collapse.
    for (Output& in : *n->mutable_inputs()) {
      auto it = remap.find(in.node);
      if (it != remap.end()) in.node = it->second;
    }
    const std::string sig = NodeSignature(*n);
    auto [it, inserted] = seen.emplace(sig, n.get());
    if (!inserted) {
      remap[n.get()] = it->second;
      ++merged;
    }
  }
  if (!remap.empty()) {
    RemapNodeRefs(graph, remap);
    for (Output& r : *ctx.roots) {
      auto it = remap.find(r.node);
      if (it != remap.end()) r.node = it->second;
    }
  }
  ctx.stats->merged += merged;
  return merged;
}

int RunDce(PassContext& ctx) {
  Graph* graph = ctx.graph;
  const size_t before = graph->num_nodes();
  // Side-effecting ops stay alive even when no fetch depends on them
  // (they still only *execute* when on a fetched path, like TF ops
  // without control dependencies).
  std::vector<Output> keep = *ctx.roots;
  for (const auto& n : graph->nodes()) {
    if (n->op() == "Print" || n->op() == "Assert" || n->op() == "Assign") {
      keep.push_back(Output{n.get(), 0});
    }
  }
  graph->Prune(keep);
  const int pruned = static_cast<int>(before - graph->num_nodes());
  ctx.stats->pruned += pruned;
  return pruned;
}

}  // namespace

bool IsPureOp(const std::string& op) { return ImpureOps().count(op) == 0; }

bool DefaultVerifyEachPass() {
  static const bool value = [] {
    const char* env = std::getenv("AG_VERIFY_EACH_PASS");
    return env != nullptr && env[0] != '\0' && std::string(env) != "0";
  }();
  return value;
}

void RegisterBuiltinGraphPasses(PassRegistry& registry) {
  PassInfo licm;
  licm.name = "licm";
  licm.phase = PassPhase::kHoist;
  licm.run = RunLicm;
  registry.Register(licm);

  PassInfo folding;
  folding.name = "constant_folding";
  folding.phase = PassPhase::kSimplify;
  folding.needs_evaluator = true;
  folding.run = RunConstantFolding;
  registry.Register(folding);

  PassInfo cse;
  cse.name = "cse";
  cse.phase = PassPhase::kSimplify;
  cse.after = {"constant_folding"};
  cse.run = RunCse;
  registry.Register(cse);

  PassInfo fusion;
  fusion.name = "fusion";
  fusion.phase = PassPhase::kFuse;
  fusion.after = {"cse"};
  fusion.run = FuseElementwiseChains;
  registry.Register(fusion);

  // Default-off: int8 trades accuracy for throughput, so it must be an
  // explicit caller choice ("default,+quantize_weights"). After
  // constant_folding so folded weight expressions quantize as Consts.
  PassInfo quantize;
  quantize.name = "quantize_weights";
  quantize.phase = PassPhase::kFuse;
  quantize.after = {"constant_folding"};
  quantize.default_enabled = false;
  quantize.run = QuantizeWeights;
  registry.Register(quantize);

  PassInfo dce;
  dce.name = "dce";
  dce.phase = PassPhase::kCleanup;
  dce.after = {"fusion"};
  dce.run = RunDce;
  registry.Register(dce);
}

PipelineSpec EffectivePipeline(const OptimizeOptions& options) {
  PipelineSpec spec = options.pipeline;
  if (!spec.specified) {
    // Read per call, not cached: AG_PASSES is a debugging knob and
    // tests flip it between Stage calls.
    const char* env = std::getenv("AG_PASSES");
    if (env != nullptr && env[0] != '\0') {
      spec = PipelineSpec::Parse(env);
    }
  }
  // Deprecated boolean toggles forward into the spec as exclusions.
  auto exclude_if_off = [&spec](bool enabled, const char* name) {
    if (!enabled) spec.exclude.emplace_back(name);
  };
  exclude_if_off(options.licm, "licm");
  exclude_if_off(options.constant_folding, "constant_folding");
  exclude_if_off(options.cse, "cse");
  exclude_if_off(options.dce, "dce");
  return spec;
}

std::string OptimizeStats::DebugString() const {
  std::ostringstream os;
  os << "OptimizeStats: folded=" << folded << " merged=" << merged
     << " pruned=" << pruned << " hoisted=" << hoisted
     << " fused=" << fused;
  for (const OptimizePassStat& p : passes) {
    os << "\n  " << p.pass << ": changed=" << p.changed << " nodes "
       << p.nodes_before << " -> " << p.nodes_after << " ("
       << p.wall_ns / 1000 << " us)";
    if (p.verify_findings > 0) {
      os << " verify_findings=" << p.verify_findings;
    }
  }
  if (!broken_pass.empty()) {
    os << "\n  first broken invariant after pass '" << broken_pass
       << "': " << broken_finding;
  }
  return os.str();
}

OptimizeStats Optimize(Graph* graph, std::vector<Output>* roots,
                       const NodeEvaluator& evaluator,
                       const OptimizeOptions& options) {
  return PassManager().Run(EffectivePipeline(options), graph, roots,
                           evaluator, options.verify_each_pass,
                           options.variable_snapshot);
}

}  // namespace ag::graph
