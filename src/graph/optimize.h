// Whole-graph optimization passes — the "whole-program optimization"
// benefit graph-based systems get over imperative ones (paper §1).
//
// The built-in pipeline (see pass_manager.h for the registry that
// orders it):
//   - licm: loop-invariant pure ops inside While bodies are hoisted
//     into the outer graph and re-captured.
//   - constant_folding: pure ops whose inputs are all Const are
//     evaluated at optimization time (via an evaluator callback
//     supplied by the runtime, so the graph library stays kernel-free).
//   - cse: structurally identical pure nodes are merged.
//   - fusion: single-consumer chains of elementwise/cast ops collapse
//     into one FusedElementwise node with a composed kernel (fusion.h).
//   - dce: nodes not reachable from the fetch roots are pruned.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "support/pass_pipeline.h"

namespace ag::graph {

// Evaluates a single node given concrete input tensors. Supplied by the
// executor (exec::EvaluatePureNode).
using NodeEvaluator = std::function<std::vector<Tensor>(
    const Node&, const std::vector<Tensor>&)>;

// True when the AG_VERIFY_EACH_PASS environment variable is set to a
// non-empty value other than "0" (read once, cached).
[[nodiscard]] bool DefaultVerifyEachPass();

struct OptimizeOptions {
  // Which passes run, as a pipeline spec ("licm,cse,-dce" — see
  // support/pass_pipeline.h for the grammar). When unspecified, the
  // effective pipeline is the AG_PASSES environment variable if set,
  // else the registry's default set. The spec selects; the registry
  // orders.
  PipelineSpec pipeline;
  // Deprecated pass toggles, kept so every pre-pipeline call shape
  // still compiles. A false value excludes that pass from whatever
  // pipeline the spec selected; true is the default and adds nothing.
  // New code should use `pipeline` (or --passes= at the CLIs).
  bool constant_folding = true;
  bool cse = true;
  bool dce = true;
  bool licm = true;
  // Newer passes (fusion, ...) have no legacy bool: select them via
  // `pipeline` or AG_PASSES.
  // Per-pass validation: run the graph well-formedness checker
  // (verify::VerifyGraphAndRoots, AGV1xx) after every executed pass.
  // The first pass to break an invariant is recorded in
  // OptimizeStats::broken_pass and the remaining passes are skipped, so
  // the attribution names the culprit rather than a downstream victim.
  // Defaults to the AG_VERIFY_EACH_PASS environment variable (unset/0 =
  // off: the checker walks every subgraph, which is measurable on the
  // staging path).
  bool verify_each_pass = DefaultVerifyEachPass();
  // Calibration data for the quantize_weights pass: variable name ->
  // value at staging time. The Session that will run the graph is
  // created after Optimize, so the caller supplies the snapshot (must
  // outlive the Optimize call). Null disables Variable quantization;
  // Const weights quantize regardless.
  const std::map<std::string, Tensor>* variable_snapshot = nullptr;
};

// Resolves `options` into the pipeline spec Optimize() will run: the
// explicit `options.pipeline` if specified, else AG_PASSES (parsed per
// call — it is a debugging knob), else the default spec; then the
// deprecated false bools are appended as excludes.
[[nodiscard]] PipelineSpec EffectivePipeline(const OptimizeOptions& options);

// Per-pass record: what one optimization pass did to the graph.
struct OptimizePassStat {
  std::string pass;     // registry name: "licm", "cse", "fusion", ...
  int changed = 0;      // nodes hoisted/folded/merged/pruned by the pass
  int nodes_before = 0; // top-level node count entering the pass
  int nodes_after = 0;  // top-level node count leaving the pass
  int64_t wall_ns = 0;
  // AGV findings the verifier reported right after this pass ran (0 when
  // clean or when verify_each_pass was off).
  int verify_findings = 0;
};

struct OptimizeStats {
  int folded = 0;
  int merged = 0;
  int pruned = 0;
  int hoisted = 0;
  // Elementwise chains collapsed into FusedElementwise nodes (fusion.h).
  int fused = 0;
  // One entry per executed pass, in execution order.
  std::vector<OptimizePassStat> passes;
  // verify_each_pass attribution: the first pass after which the graph
  // checker reported findings ("" = clean or not verified), and the
  // first finding's rendered diagnostic. Callers that must not execute
  // a broken graph (core::AutoGraph::Stage) throw on non-empty.
  std::string broken_pass;
  std::string broken_finding;

  [[nodiscard]] std::string DebugString() const;
};

// Optimizes `graph` in place, preserving the meaning of `roots` (which are
// remapped if their producers are merged/folded). Returns statistics.
// A thin shim over PassManager::Run with the global registry and
// EffectivePipeline(options) — see pass_manager.h.
OptimizeStats Optimize(Graph* graph, std::vector<Output>* roots,
                       const NodeEvaluator& evaluator,
                       const OptimizeOptions& options = {});

// True if `op` has no side effects and may be folded/merged.
[[nodiscard]] bool IsPureOp(const std::string& op);

}  // namespace ag::graph
