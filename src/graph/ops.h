// Graph construction API: a GraphContext tracking the current (sub)graph,
// generic op emission with dtype inference, and functional control-flow
// builders (Cond / While) with automatic closure capture — the same
// mechanism TF's FuncGraph uses.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace ag::graph {

// Tracks the stack of graphs under construction. Ops are added to the
// innermost graph; tensors from enclosing graphs are captured through
// each FuncGraph level automatically.
class GraphContext {
 public:
  explicit GraphContext(Graph* root) { stack_.push_back(root); }

  [[nodiscard]] Graph* current() const { return stack_.back(); }
  [[nodiscard]] Graph* root() const { return stack_.front(); }
  [[nodiscard]] size_t depth() const { return stack_.size(); }

  void Push(FuncGraph* g) { stack_.push_back(g); }
  void Pop() { stack_.pop_back(); }

  // Makes `o` usable in the current graph, inserting capture Args through
  // intermediate FuncGraphs as needed.
  [[nodiscard]] Output Resolve(Output o);

 private:
  std::vector<Graph*> stack_;
};

// Emits a node of type `op` into the current graph, resolving inputs
// through captures, and returns its first output. Output dtypes are
// inferred from the op type and inputs.
Output Op(GraphContext& ctx, const std::string& op, std::vector<Output> inputs,
          AttrMap attrs = {});

// Multi-output variant; returns all outputs.
std::vector<Output> OpN(GraphContext& ctx, const std::string& op,
                        std::vector<Output> inputs, AttrMap attrs,
                        int num_outputs);

// ---- leaf constructors ----
Output Const(GraphContext& ctx, Tensor value);
Output Placeholder(GraphContext& ctx, const std::string& name, DType dtype);
// Persistent variable (state survives across Session::Run calls).
Output Variable(GraphContext& ctx, const std::string& var_name, DType dtype);
Output Assign(GraphContext& ctx, const std::string& var_name, Output value);

// ---- functional control flow ----

// tf.cond equivalent. `then_fn` / `else_fn` build their branch bodies into
// fresh FuncGraphs (pushed on `ctx`) and return the branch outputs; both
// must return the same number of outputs.
std::vector<Output> Cond(GraphContext& ctx, Output pred,
                         const std::function<std::vector<Output>()>& then_fn,
                         const std::function<std::vector<Output>()>& else_fn);

// tf.while_loop equivalent over explicit loop variables. `cond_fn` maps
// the loop vars (as subgraph Args) to a scalar-bool Output; `body_fn`
// maps them to their next values.
std::vector<Output> While(
    GraphContext& ctx, std::vector<Output> init,
    const std::function<Output(const std::vector<Output>&)>& cond_fn,
    const std::function<std::vector<Output>(const std::vector<Output>&)>&
        body_fn);

// Infers the output dtype of `op` given input dtypes (index 0 output).
[[nodiscard]] DType InferDtype(const std::string& op,
                               const std::vector<Output>& inputs,
                               const AttrMap& attrs);

// True when InferDtype's answer for `op` is fixed by the op's semantics
// (comparisons are bool, Range is int, Cast is its attr, ...) rather
// than propagated from inputs. The graph verifier only enforces AGV104
// dtype consistency where this holds.
[[nodiscard]] bool InferredDtypeIsAuthoritative(const std::string& op);

}  // namespace ag::graph
