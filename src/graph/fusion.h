// Elementwise-chain fusion (the marian-style operator-fusion win for
// this IR): single-consumer chains of elementwise/cast ops collapse
// into one FusedElementwise node whose "body" attr is a FuncGraph of
// the original ops. The executor compiles that body into a
// tensor-layer FusedProgram (tensor_ops.h) evaluated block-wise in one
// pass, eliminating every intermediate tensor in the chain.
//
// Legality rules (each checked by the pass):
//   - every chain op is a single-output elementwise/cast op with a
//     FusedOp scalar form (FusedOpForName, plus Cast);
//   - every interior value has exactly one use — the next chain op —
//     counting fetch roots, subgraph captures, and returns as uses;
//   - the body captures nothing: all external operands become explicit
//     Args, so the fused node is a pure function of its inputs.
// Under those rules the fused replay is bit-identical to the unfused
// chain (see the FusedProgram contract in tensor_ops.h); the A/B suite
// in tests/fusion_test.cc holds both engines to that.
#pragma once

#include "graph/graph.h"
#include "tensor/tensor_ops.h"

namespace ag::graph {

struct PassContext;

// True when `node` may participate in a fused chain.
[[nodiscard]] bool IsFusableElementwise(const Node& node);

// The "fusion" pass body: fuses chains in the top-level graph and in
// Cond/While subgraphs (never inside FusedElementwise bodies). Returns
// the number of chains collapsed.
int FuseElementwiseChains(PassContext& ctx);

// Compiles a FusedElementwise body into the scalar recipe the kernel
// replays. Validates the legality rules above (no captures, one return
// naming the last op, Args dense in [0, num_explicit_args)) and throws
// Error on any violation — the executor and AGV106 both call this, so
// a malformed body fails verification instead of miscomputing.
[[nodiscard]] FusedProgram CompileFusedBody(const FuncGraph& body);

}  // namespace ag::graph
