// Graph serialization — the portability/deployment half of the
// graph-based story (§1: graphs "can be deployed to mobile devices or web
// servers"). A staged graph, including its functional control flow
// subgraphs and fetch endpoints, round-trips through a line-oriented text
// format (a GraphDef-pbtxt stand-in) and can be executed by a Session in
// a process that never saw the original source.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace ag::graph {

// Serializes `graph` with the given fetch endpoints.
[[nodiscard]] std::string SerializeGraph(const Graph& graph,
                                         const std::vector<Output>& outputs);

struct DeserializedGraph {
  std::shared_ptr<Graph> graph;
  std::vector<Output> outputs;
};

// Parses text produced by SerializeGraph. Throws Error(kValue) on
// malformed input.
[[nodiscard]] DeserializedGraph DeserializeGraph(const std::string& text);

}  // namespace ag::graph
