// quantize_weights: rewrites float MatMuls against static weights into
// the int8 inference form (DESIGN.md §4j). For each MatMul whose
// right-hand operand is a rank-2 float32 Const, the weights are
// quantized at pass time into an int8 Const; for a Variable operand
// with an entry in PassContext::variable_snapshot, the scale is
// calibrated from the snapshot and a static-attr Quantize node is
// inserted over the Variable (re-quantized per run, O(k*n) — cheap
// next to the MatMul it feeds, and robust to later Assigns as long as
// the value range stays near the calibration snapshot). Either way the
// MatMul becomes QuantizedMatMul(x, wq) carrying the weight scale and
// zero point as attrs.
//
// Registered default-off (select with "default,+quantize_weights"):
// int8 trades accuracy for throughput, which must be an explicit
// caller choice.
#pragma once

namespace ag::graph {

struct PassContext;

// Pass body; returns the number of MatMuls rewritten.
int QuantizeWeights(PassContext& ctx);

}  // namespace ag::graph
