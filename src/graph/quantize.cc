#include "graph/quantize.h"

#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "graph/pass_manager.h"
#include "tensor/quant.h"

namespace ag::graph {
namespace {

// Rewrites one graph (and, first, its attached Cond/While subgraphs —
// an RNN's serving MatMuls live inside the While body). Old MatMul
// nodes are left dead for dce.
int QuantizeGraph(Graph* graph, std::vector<Output>* roots,
                  const std::map<std::string, Tensor>* snapshot) {
  int rewritten = 0;
  for (const auto& n : graph->nodes()) {
    for (const auto& [key, attr] : n->attrs()) {
      if (const auto* sub = std::get_if<std::shared_ptr<Graph>>(&attr)) {
        auto* fg = dynamic_cast<FuncGraph*>(sub->get());
        if (fg != nullptr) {
          rewritten += QuantizeGraph(fg, &fg->returns, snapshot);
        }
      }
    }
  }

  std::unordered_map<const Node*, Node*> remap;
  const size_t original = graph->num_nodes();
  for (size_t i = 0; i < original; ++i) {
    Node* n = graph->nodes()[i].get();
    if (n->op() != "MatMul" || n->inputs().size() != 2) continue;
    const Output& w = n->inputs()[1];
    if (!w.valid() || w.index != 0) continue;
    Node* wn = w.node;

    QuantParams qp;
    Node* qweights = nullptr;
    if (wn->op() == "Const") {
      const Tensor& wv = wn->attr<Tensor>("value");
      if (wv.dtype() != DType::kFloat32 || wv.rank() != 2) continue;
      // Static weights quantize at pass time into an int8 Const.
      qp = ChooseQuantParams(wv);
      Tensor wq = Quantize(wv, qp.scale, qp.zero_point);
      qweights = graph->AddNamedNode(wn->name() + "/quantized", "Const", {},
                                     {{"value", std::move(wq)}}, 1);
      qweights->set_output_dtype(0, DType::kInt8);
    } else if (wn->op() == "Variable" && snapshot != nullptr) {
      const auto it = snapshot->find(wn->attr<std::string>("var_name"));
      if (it == snapshot->end()) continue;
      const Tensor& wv = it->second;
      if (wv.dtype() != DType::kFloat32 || wv.rank() != 2) continue;
      // Scale is calibrated from the snapshot and frozen into attrs;
      // the Quantize node re-quantizes the live variable value per run.
      qp = ChooseQuantParams(wv);
      qweights = graph->AddNamedNode(
          wn->name() + "/quantize", "Quantize", {Output{wn, 0}},
          {{"scale", static_cast<double>(qp.scale)},
           {"zero_point", static_cast<int64_t>(qp.zero_point)}},
          1);
      qweights->set_output_dtype(0, DType::kInt8);
    } else {
      continue;
    }

    Node* qmm = graph->AddNamedNode(
        n->name() + "/quantized", "QuantizedMatMul",
        {n->inputs()[0], Output{qweights, 0}},
        {{"w_scale", static_cast<double>(qp.scale)},
         {"w_zero_point", static_cast<int64_t>(qp.zero_point)}},
        1);
    qmm->set_output_dtype(0, DType::kFloat32);
    remap[n] = qmm;
    ++rewritten;
  }
  if (!remap.empty()) {
    RemapNodeRefs(graph, remap);
    for (Output& r : *roots) {
      auto it = remap.find(r.node);
      if (it != remap.end()) r.node = it->second;
    }
  }
  return rewritten;
}

}  // namespace

int QuantizeWeights(PassContext& ctx) {
  return QuantizeGraph(ctx.graph, ctx.roots, ctx.variable_snapshot);
}

}  // namespace ag::graph
