// Declarative graph-pass pipeline (the graph-level sibling of the AST
// pass chain in transforms/passes.h — see DESIGN.md's layer-mapping
// table). Passes self-register with a name, a phase, and ordering
// constraints; pipelines are built per call from a PipelineSpec
// ("licm,cse,-dce,fusion"), and every pass runs behind the AGV per-pass
// verifier with OptimizePassStat accounting. graph::Optimize() is a
// thin shim over PassManager::Run with the default registry.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/optimize.h"
#include "support/pass_pipeline.h"

namespace ag::graph {

// Coarse pipeline stages. The phase is a *preference* used to order
// passes that have no explicit constraint between them; after/before
// constraints are hard requirements and win when the two disagree.
enum class PassPhase : std::uint8_t {
  kHoist = 0,     // move work out of loops (licm)
  kSimplify = 1,  // shrink the graph (constant_folding, cse)
  kFuse = 2,      // combine nodes into larger kernels (fusion)
  kCleanup = 3,   // remove what the others left behind (dce)
};

[[nodiscard]] const char* PassPhaseName(PassPhase phase);

// Everything a pass body may touch. `evaluator` is null when the caller
// supplied none (passes with needs_evaluator are then skipped).
struct PassContext {
  Graph* graph = nullptr;
  std::vector<Output>* roots = nullptr;
  const NodeEvaluator* evaluator = nullptr;
  OptimizeStats* stats = nullptr;
  // Calibration data for quantize_weights: variable name -> value at
  // staging time (OptimizeOptions::variable_snapshot). Null when the
  // caller supplied none; Variables without an entry are left in float.
  const std::map<std::string, Tensor>* variable_snapshot = nullptr;
};

struct PassInfo {
  std::string name;
  PassPhase phase = PassPhase::kSimplify;
  // Ordering constraints by pass name; only applied when both sides are
  // selected by the spec. A constraint cycle is a structured error at
  // pipeline-build time (naming the passes on the cycle).
  std::vector<std::string> after;
  std::vector<std::string> before;
  // Whether the pass is part of the "default" spec selection.
  bool default_enabled = true;
  // Skipped (not failed) when the caller provides no NodeEvaluator.
  bool needs_evaluator = false;
  // The pass body. Returns its work metric (nodes hoisted/folded/
  // merged/pruned/fused) for OptimizePassStat::changed.
  std::function<int(PassContext&)> run;
};

// A named collection of passes. Global() holds the built-in pipeline;
// tests may build private registries to exercise ordering/cycle logic.
class PassRegistry {
 public:
  // The process-wide registry, populated with the built-in passes
  // (RegisterBuiltinGraphPasses) on first use.
  static PassRegistry& Global();

  // Throws ValueError on an empty/duplicate name or missing body.
  void Register(PassInfo info);

  [[nodiscard]] const PassInfo* Find(const std::string& name) const;
  // All registered pass names, in registration order.
  [[nodiscard]] std::vector<std::string> Names() const;

  // Resolves `spec` into an ordered pipeline: selection per
  // PipelineSpec::Selects, then phase-preferring topological order over
  // the after/before constraints (stable by registration order).
  // Throws ValueError on an unknown pass name or a constraint cycle.
  [[nodiscard]] std::vector<const PassInfo*> BuildPipeline(
      const PipelineSpec& spec) const;

 private:
  std::vector<std::unique_ptr<PassInfo>> passes_;  // stable addresses
  std::unordered_map<std::string, size_t> index_;
};

// Registers licm, constant_folding, cse, fusion, and dce into
// `registry`. Called once by PassRegistry::Global(); exposed so tests
// can build private registries with the real passes. (An explicit call,
// not static registrar objects: static-library TUs without referenced
// symbols are dropped by the linker, taking their registrars with
// them.)
void RegisterBuiltinGraphPasses(PassRegistry& registry);

// Runs a pipeline against a registry. Per-pass accounting and
// verify-each-pass attribution pull names from the registry, so new
// passes are attributable with no extra wiring.
class PassManager {
 public:
  explicit PassManager(const PassRegistry* registry = &PassRegistry::Global())
      : registry_(registry) {}

  // Builds the pipeline for `spec` and runs it over `graph`/`roots`.
  // With verify_each_pass, the graph checker runs after every pass and
  // the first broken invariant stops the pipeline with
  // OptimizeStats::broken_pass naming the culprit.
  OptimizeStats Run(const PipelineSpec& spec, Graph* graph,
                    std::vector<Output>* roots, const NodeEvaluator& evaluator,
                    bool verify_each_pass,
                    const std::map<std::string, Tensor>* variable_snapshot =
                        nullptr) const;

  [[nodiscard]] const PassRegistry& registry() const { return *registry_; }

 private:
  const PassRegistry* registry_;
};

// Rewrites every input edge (and direct subgraph capture) of `graph`
// according to `remap`. Shared by passes that replace nodes (constant
// folding, cse, fusion); callers must remap roots/returns themselves.
void RemapNodeRefs(Graph* graph,
                   const std::unordered_map<const Node*, Node*>& remap);

}  // namespace ag::graph
