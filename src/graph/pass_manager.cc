#include "graph/pass_manager.h"

#include <algorithm>
#include <chrono>
#include <set>
#include <unordered_set>

#include "support/error.h"
#include "support/strings.h"
#include "verify/verify.h"

namespace ag::graph {
namespace {

int64_t MonotonicNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Records one pass's node-count delta and wall time into the stats.
class PassScope {
 public:
  PassScope(OptimizeStats* stats, const Graph* graph, const std::string& name)
      : stats_(stats), graph_(graph) {
    stat_.pass = name;
    stat_.nodes_before = static_cast<int>(graph->num_nodes());
    start_ns_ = MonotonicNs();
  }
  // `changed` is the pass's own work metric (hoisted/folded/merged/...).
  void Finish(int changed) {
    stat_.changed = changed;
    stat_.nodes_after = static_cast<int>(graph_->num_nodes());
    stat_.wall_ns = MonotonicNs() - start_ns_;
    stats_->passes.push_back(std::move(stat_));
  }

 private:
  OptimizeStats* stats_;
  const Graph* graph_;
  OptimizePassStat stat_;
  int64_t start_ns_ = 0;
};

}  // namespace

const char* PassPhaseName(PassPhase phase) {
  switch (phase) {
    case PassPhase::kHoist:
      return "hoist";
    case PassPhase::kSimplify:
      return "simplify";
    case PassPhase::kFuse:
      return "fuse";
    case PassPhase::kCleanup:
      return "cleanup";
  }
  return "?";
}

PassRegistry& PassRegistry::Global() {
  static PassRegistry* registry = [] {
    auto* r = new PassRegistry();
    RegisterBuiltinGraphPasses(*r);
    return r;
  }();
  return *registry;
}

void PassRegistry::Register(PassInfo info) {
  if (info.name.empty()) {
    throw ValueError("pass registry: pass name must be non-empty");
  }
  if (!info.run) {
    throw ValueError("pass registry: pass '" + info.name + "' has no body");
  }
  if (index_.count(info.name) > 0) {
    throw ValueError("pass registry: duplicate pass '" + info.name + "'");
  }
  index_[info.name] = passes_.size();
  passes_.push_back(std::make_unique<PassInfo>(std::move(info)));
}

const PassInfo* PassRegistry::Find(const std::string& name) const {
  auto it = index_.find(name);
  return it == index_.end() ? nullptr : passes_[it->second].get();
}

std::vector<std::string> PassRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(passes_.size());
  for (const auto& p : passes_) names.push_back(p->name);
  return names;
}

std::vector<const PassInfo*> PassRegistry::BuildPipeline(
    const PipelineSpec& spec) const {
  // Every name the spec mentions must exist — a typo in --passes= is a
  // structured error, not a silently empty pipeline.
  auto check_known = [this](const std::vector<std::string>& names,
                            const char* where) {
    for (const std::string& name : names) {
      if (name == "default") continue;
      if (Find(name) == nullptr) {
        throw ValueError("pass pipeline: unknown pass '" + name + "' in " +
                         where + " list (registered: " +
                         Join(Names(), ", ") + ")");
      }
    }
  };
  check_known(spec.include, "include");
  check_known(spec.exclude, "exclude");

  // Selection, in registration order. Constraints naming unregistered
  // passes are registration bugs and rejected here; constraints naming
  // unselected passes are vacuous (OrderPasses ignores them).
  std::vector<size_t> selected;
  std::vector<PassOrderNode> order_nodes;
  for (size_t i = 0; i < passes_.size(); ++i) {
    const PassInfo& p = *passes_[i];
    for (const std::string& dep : p.after) {
      if (Find(dep) == nullptr) {
        throw ValueError("pass registry: pass '" + p.name +
                         "' has after-constraint on unregistered pass '" +
                         dep + "'");
      }
    }
    for (const std::string& next : p.before) {
      if (Find(next) == nullptr) {
        throw ValueError("pass registry: pass '" + p.name +
                         "' has before-constraint on unregistered pass '" +
                         next + "'");
      }
    }
    if (spec.Selects(p.name, p.default_enabled)) {
      selected.push_back(i);
      order_nodes.push_back(PassOrderNode{p.name, p.after, p.before,
                                          static_cast<int>(p.phase)});
    }
  }

  // Shared ordering (support/pass_pipeline): hard after/before
  // constraints, phase as a soft rank, deterministic ties — the same
  // scheduler transforms::PassRegistry uses for the AST pipeline.
  std::vector<const PassInfo*> pipeline;
  pipeline.reserve(selected.size());
  for (size_t si : OrderPasses(order_nodes)) {
    pipeline.push_back(passes_[selected[si]].get());
  }
  return pipeline;
}

OptimizeStats PassManager::Run(
    const PipelineSpec& spec, Graph* graph, std::vector<Output>* roots,
    const NodeEvaluator& evaluator, bool verify_each_pass,
    const std::map<std::string, Tensor>* variable_snapshot) const {
  const std::vector<const PassInfo*> pipeline =
      registry_->BuildPipeline(spec);
  OptimizeStats stats;
  PassContext ctx;
  ctx.graph = graph;
  ctx.roots = roots;
  ctx.evaluator = evaluator ? &evaluator : nullptr;
  ctx.stats = &stats;
  ctx.variable_snapshot = variable_snapshot;

  for (const PassInfo* pass : pipeline) {
    if (pass->needs_evaluator && ctx.evaluator == nullptr) continue;
    PassScope scope(&stats, graph, pass->name);
    const int changed = pass->run(ctx);
    scope.Finish(changed);
    if (!verify_each_pass) continue;
    // Per-pass validation: the first broken invariant stops the
    // pipeline so the attribution names the pass that introduced the
    // damage rather than one that merely ran over it later. The name
    // comes from the registry entry, so new passes are attributable
    // with no extra wiring.
    const std::vector<verify::VerifyDiagnostic> findings =
        verify::VerifyGraphAndRoots(*graph, *roots);
    stats.passes.back().verify_findings = static_cast<int>(findings.size());
    if (!findings.empty()) {
      stats.broken_pass = pass->name;
      stats.broken_finding = findings.front().str();
      break;
    }
  }
  return stats;
}

void RemapNodeRefs(Graph* graph,
                   const std::unordered_map<const Node*, Node*>& remap) {
  auto fix = [&remap](Output& o) {
    auto it = remap.find(o.node);
    if (it != remap.end()) o.node = it->second;
  };
  for (const auto& n : graph->nodes()) {
    for (Output& in : *n->mutable_inputs()) fix(in);
    for (const auto& [key, attr] : n->attrs()) {
      if (const auto* sub = std::get_if<std::shared_ptr<Graph>>(&attr)) {
        auto* fg = dynamic_cast<FuncGraph*>(sub->get());
        if (fg != nullptr) {
          for (Output& c : fg->captures) fix(c);
        }
      }
    }
  }
}

}  // namespace ag::graph
