// The smaller conversion passes: Desugar, Directives, Assert, Lists,
// Slices, Ternary, Logical, Function Calls.
#include <optional>

#include "lang/unparser.h"
#include "support/strings.h"
#include "transforms/passes.h"
#include "transforms/transformer.h"

namespace ag::transforms {

using lang::Cast;
using lang::CloneExpr;
using lang::ExprKind;
using lang::ExprPtr;
using lang::Keyword;
using lang::MakeCall;
using lang::MakeDottedName;
using lang::MakeName;
using lang::QualifiedName;
using lang::StmtKind;
using lang::StmtList;
using lang::StmtPtr;

namespace {

// Stamps loc/origin of `src` onto a freshly built node.
template <typename T>
std::shared_ptr<T> At(std::shared_ptr<T> node, const lang::Node& src) {
  node->loc = src.loc;
  node->origin = src.origin;
  return node;
}

ExprPtr Intrinsic(const std::string& name, std::vector<ExprPtr> args,
                  const lang::Node& src) {
  auto call = MakeCall(MakeDottedName("ag__." + name), std::move(args));
  return At(std::move(call), src);
}

ExprPtr Thunk(ExprPtr body) {
  auto l = std::make_shared<lang::LambdaExpr>(std::vector<std::string>{},
                                              std::move(body));
  l->loc = l->body->loc;
  l->origin = l->body->origin;
  return l;
}

// ---- Desugar: x (op)= v  ->  x = x (op) v ----
class Desugar final : public Transformer {
 protected:
  StmtList TransformStmt(const StmtPtr& stmt) override {
    if (stmt->kind != StmtKind::kAugAssign) {
      return Transformer::TransformStmt(stmt);
    }
    auto a = Cast<lang::AugAssignStmt>(stmt);
    // Note: for subscript/attribute targets, the index/object expression
    // is evaluated twice; PyMini expressions are side-effect-free in the
    // supported subset, so this preserves semantics.
    auto read = CloneExpr(a->target);
    auto value = std::make_shared<lang::BinaryExpr>(a->op, std::move(read),
                                                    a->value);
    value->loc = a->loc;
    value->origin = a->origin;
    auto assign =
        std::make_shared<lang::AssignStmt>(a->target, std::move(value));
    return {At(std::move(assign), *stmt)};
  }
};

// ---- Directives: ag.set_element_type / ag.set_loop_options ----
class Directives final : public Transformer {
 protected:
  StmtList TransformStmt(const StmtPtr& stmt) override {
    if (stmt->kind == StmtKind::kExprStmt) {
      const ExprPtr& v = Cast<lang::ExprStmt>(stmt)->value;
      if (v->kind == ExprKind::kCall) {
        auto call = Cast<lang::CallExpr>(v);
        auto qn = QualifiedName(call->func);
        if (qn == "ag.set_element_type") {
          // `ag.set_element_type(l, dt)` -> `l = ag__.set_element_type(l, dt)`
          if (call->args.size() != 2 ||
              call->args[0]->kind != ExprKind::kName) {
            throw ConversionError(
                "ag.set_element_type expects (list_variable, dtype)",
                stmt->loc);
          }
          const std::string& list_name =
              Cast<lang::NameExpr>(call->args[0])->id;
          auto assign = std::make_shared<lang::AssignStmt>(
              MakeName(list_name, stmt.get()),
              Intrinsic("set_element_type",
                        {CloneExpr(call->args[0]), CloneExpr(call->args[1])},
                        *stmt));
          return {At(std::move(assign), *stmt)};
        }
        if (qn == "ag.set_loop_options") {
          // Recognized and consumed; loop options are advisory in this
          // implementation.
          return {};
        }
      }
    }
    return Transformer::TransformStmt(stmt);
  }
};

// ---- Assert: assert t, m -> ag__.assert_stmt(lambda: t, lambda: m) ----
class Asserts final : public Transformer {
 protected:
  StmtList TransformStmt(const StmtPtr& stmt) override {
    if (stmt->kind != StmtKind::kAssert) {
      return Transformer::TransformStmt(stmt);
    }
    auto a = Cast<lang::AssertStmt>(stmt);
    ExprPtr msg = a->msg
                      ? a->msg
                      : std::static_pointer_cast<lang::Expr>(
                            std::make_shared<lang::NoneExpr>());
    auto call = Intrinsic("assert_stmt", {Thunk(a->test), Thunk(msg)}, *stmt);
    return {At(std::make_shared<lang::ExprStmt>(std::move(call)), *stmt)};
  }
};

// ---- Lists: l.append(v) / l.pop() overloads ----
class Lists final : public Transformer {
 protected:
  StmtList TransformStmt(const StmtPtr& stmt) override {
    // `l.append(v)` as a bare statement.
    if (stmt->kind == StmtKind::kExprStmt) {
      const ExprPtr& v = Cast<lang::ExprStmt>(stmt)->value;
      if (auto repl = MatchAppend(v, stmt)) return {*repl};
      if (auto repl = MatchBarePop(v, stmt)) return *repl;
    }
    // `x = l.pop()`.
    if (stmt->kind == StmtKind::kAssign) {
      auto a = Cast<lang::AssignStmt>(stmt);
      if (a->value->kind == ExprKind::kCall) {
        auto call = Cast<lang::CallExpr>(a->value);
        if (call->func->kind == ExprKind::kAttribute &&
            Cast<lang::AttributeExpr>(call->func)->attr == "pop" &&
            call->args.empty() &&
            Cast<lang::AttributeExpr>(call->func)->value->kind ==
                ExprKind::kName) {
          ExprPtr list_e = Cast<lang::AttributeExpr>(call->func)->value;
          // (l, x) = ag__.list_pop(l)
          std::vector<ExprPtr> targets{CloneExpr(list_e), a->target};
          auto tuple = std::make_shared<lang::TupleExpr>(std::move(targets));
          auto assign = std::make_shared<lang::AssignStmt>(
              At(std::move(tuple), *stmt),
              Intrinsic("list_pop", {CloneExpr(list_e)}, *stmt));
          return {At(std::move(assign), *stmt)};
        }
      }
    }
    return Transformer::TransformStmt(stmt);
  }

 private:
  std::optional<StmtPtr> MatchAppend(const ExprPtr& v, const StmtPtr& stmt) {
    if (v->kind != ExprKind::kCall) return std::nullopt;
    auto call = Cast<lang::CallExpr>(v);
    if (call->func->kind != ExprKind::kAttribute) return std::nullopt;
    auto attr = Cast<lang::AttributeExpr>(call->func);
    if (attr->attr != "append" || call->args.size() != 1) return std::nullopt;
    if (attr->value->kind != ExprKind::kName) return std::nullopt;
    // l = ag__.list_append(l, v)
    auto assign = std::make_shared<lang::AssignStmt>(
        CloneExpr(attr->value),
        Intrinsic("list_append",
                  {CloneExpr(attr->value), TransformExpr(call->args[0])},
                  *stmt));
    return At(std::move(assign), *stmt);
  }

  std::optional<StmtList> MatchBarePop(const ExprPtr& v,
                                       const StmtPtr& stmt) {
    if (v->kind != ExprKind::kCall) return std::nullopt;
    auto call = Cast<lang::CallExpr>(v);
    if (call->func->kind != ExprKind::kAttribute) return std::nullopt;
    auto attr = Cast<lang::AttributeExpr>(call->func);
    if (attr->attr != "pop" || !call->args.empty()) return std::nullopt;
    if (attr->value->kind != ExprKind::kName) return std::nullopt;
    const std::string tmp = NewSymbol("popped");
    std::vector<ExprPtr> targets{CloneExpr(attr->value),
                                 MakeName(tmp, stmt.get())};
    auto tuple = std::make_shared<lang::TupleExpr>(std::move(targets));
    auto assign = std::make_shared<lang::AssignStmt>(
        At(std::move(tuple), *stmt),
        Intrinsic("list_pop", {CloneExpr(attr->value)}, *stmt));
    return StmtList{At(std::move(assign), *stmt)};
  }
};

// ---- Slices: x[i] = v -> x = ag__.set_item(x, i, v) ----
class Slices final : public Transformer {
 protected:
  StmtList TransformStmt(const StmtPtr& stmt) override {
    if (stmt->kind == StmtKind::kAssign) {
      auto a = Cast<lang::AssignStmt>(stmt);
      if (a->target->kind == ExprKind::kSubscript) {
        auto sub = Cast<lang::SubscriptExpr>(a->target);
        if (!QualifiedName(sub->value)) {
          throw ConversionError(
              "slice assignment requires a simple variable target",
              stmt->loc);
        }
        auto assign = std::make_shared<lang::AssignStmt>(
            CloneExpr(sub->value),
            Intrinsic("set_item",
                      {CloneExpr(sub->value), TransformExpr(sub->index),
                       TransformExpr(a->value)},
                      *stmt));
        return {At(std::move(assign), *stmt)};
      }
    }
    return Transformer::TransformStmt(stmt);
  }
};

// ---- Ternary: x if c else y -> ag__.if_exp(c, lambda: x, lambda: y) ----
class Ternary final : public Transformer {
 protected:
  ExprPtr TransformExpr(const ExprPtr& expr) override {
    ExprPtr e = TransformExprChildren(expr);
    if (e->kind == ExprKind::kIfExp) {
      auto i = Cast<lang::IfExpExpr>(e);
      return Intrinsic("if_exp",
                       {i->test, Thunk(i->body), Thunk(i->orelse)}, *e);
    }
    return e;
  }
};

// ---- Logical: and/or/not/==/!= -> overloadable functional forms ----
class Logical final : public Transformer {
 protected:
  ExprPtr TransformExpr(const ExprPtr& expr) override {
    ExprPtr e = TransformExprChildren(expr);
    switch (e->kind) {
      case ExprKind::kBoolOp: {
        auto b = Cast<lang::BoolOpExpr>(e);
        // Lazy right operand, preserving Python short-circuit semantics
        // (Appendix E: "lazy boolean using tf.cond").
        const char* name = b->op == lang::BoolOp::kAnd ? "and_" : "or_";
        return Intrinsic(name, {b->left, Thunk(b->right)}, *e);
      }
      case ExprKind::kUnary: {
        auto u = Cast<lang::UnaryExpr>(e);
        if (u->op == lang::UnaryOp::kNot) {
          return Intrinsic("not_", {u->operand}, *e);
        }
        return e;
      }
      case ExprKind::kCompare: {
        auto c = Cast<lang::CompareExpr>(e);
        // Tensor does not overload __eq__/__ne__ (paper §7.2), so these
        // two are replaced with functional forms; the ordered comparisons
        // go through ordinary operator dispatch.
        if (c->op == lang::CompareOp::kEq) {
          return Intrinsic("eq", {c->left, c->right}, *e);
        }
        if (c->op == lang::CompareOp::kNe) {
          return Intrinsic("not_eq", {c->left, c->right}, *e);
        }
        return e;
      }
      default:
        return e;
    }
  }
};

// ---- Function Calls: f(x) -> ag__.converted_call(f, x) ----
class CallTrees final : public Transformer {
 public:
  explicit CallTrees(const ConversionOptions& options) : options_(options) {}

 protected:
  ExprPtr TransformExpr(const ExprPtr& expr) override {
    ExprPtr e = TransformExprChildren(expr);
    if (e->kind != ExprKind::kCall) return e;
    auto call = Cast<lang::CallExpr>(e);
    if (IsWhitelisted(call->func)) return e;
    std::vector<ExprPtr> args{call->func};
    args.insert(args.end(), call->args.begin(), call->args.end());
    auto wrapped = MakeCall(MakeDottedName("ag__.converted_call"),
                            std::move(args), call->keywords);
    return At(std::move(wrapped), *e);
  }

 private:
  bool IsWhitelisted(const ExprPtr& func) const {
    auto qn = QualifiedName(func);
    if (!qn) return false;  // lambdas / computed callees are wrapped
    const std::string root = qn->substr(0, qn->find('.'));
    if (options_.whitelist.count(root) > 0) return true;
    if (StartsWith(*qn, "ag__")) return true;
    return false;
  }

  const ConversionOptions& options_;
};

}  // namespace

StmtList DesugarPass(const StmtList& body) { return Desugar().Run(body); }
StmtList DirectivesPass(const StmtList& body) {
  return Directives().Run(body);
}
StmtList AssertPass(const StmtList& body) { return Asserts().Run(body); }
StmtList ListsPass(const StmtList& body) { return Lists().Run(body); }
StmtList SlicesPass(const StmtList& body) { return Slices().Run(body); }
StmtList TernaryPass(const StmtList& body) { return Ternary().Run(body); }
StmtList LogicalPass(const StmtList& body) { return Logical().Run(body); }
StmtList CallTreesPass(const StmtList& body,
                       const ConversionOptions& options) {
  return CallTrees(options).Run(body);
}

}  // namespace ag::transforms
