#include "transforms/transformer.h"

namespace ag::transforms {

using lang::Cast;
using lang::ExprKind;
using lang::ExprPtr;
using lang::StmtKind;
using lang::StmtList;
using lang::StmtPtr;

StmtList Transformer::TransformBody(const StmtList& body) {
  StmtList out;
  out.reserve(body.size());
  for (const StmtPtr& s : body) {
    StmtList repl = TransformStmt(s);
    out.insert(out.end(), repl.begin(), repl.end());
  }
  return out;
}

StmtList Transformer::TransformStmt(const StmtPtr& stmt) {
  switch (stmt->kind) {
    case StmtKind::kFunctionDef: {
      auto f = Cast<lang::FunctionDefStmt>(stmt);
      for (ExprPtr& d : f->defaults) d = TransformExpr(d);
      f->body = TransformBody(f->body);
      return {f};
    }
    case StmtKind::kReturn: {
      auto r = Cast<lang::ReturnStmt>(stmt);
      if (r->value) r->value = TransformExpr(r->value);
      return {r};
    }
    case StmtKind::kAssign: {
      auto a = Cast<lang::AssignStmt>(stmt);
      a->target = TransformExpr(a->target);
      a->value = TransformExpr(a->value);
      return {a};
    }
    case StmtKind::kAugAssign: {
      auto a = Cast<lang::AugAssignStmt>(stmt);
      a->target = TransformExpr(a->target);
      a->value = TransformExpr(a->value);
      return {a};
    }
    case StmtKind::kExprStmt: {
      auto e = Cast<lang::ExprStmt>(stmt);
      e->value = TransformExpr(e->value);
      return {e};
    }
    case StmtKind::kIf: {
      auto i = Cast<lang::IfStmt>(stmt);
      i->test = TransformExpr(i->test);
      i->body = TransformBody(i->body);
      i->orelse = TransformBody(i->orelse);
      return {i};
    }
    case StmtKind::kWhile: {
      auto w = Cast<lang::WhileStmt>(stmt);
      w->test = TransformExpr(w->test);
      w->body = TransformBody(w->body);
      return {w};
    }
    case StmtKind::kFor: {
      auto f = Cast<lang::ForStmt>(stmt);
      f->target = TransformExpr(f->target);
      f->iter = TransformExpr(f->iter);
      f->body = TransformBody(f->body);
      return {f};
    }
    case StmtKind::kAssert: {
      auto a = Cast<lang::AssertStmt>(stmt);
      a->test = TransformExpr(a->test);
      if (a->msg) a->msg = TransformExpr(a->msg);
      return {a};
    }
    case StmtKind::kBreak:
    case StmtKind::kContinue:
    case StmtKind::kPass:
      return {stmt};
  }
  throw InternalError("Transformer: unknown stmt kind");
}

ExprPtr Transformer::TransformExprChildren(const ExprPtr& expr) {
  if (!expr) return expr;
  switch (expr->kind) {
    case ExprKind::kTuple: {
      auto t = Cast<lang::TupleExpr>(expr);
      for (ExprPtr& e : t->elts) e = TransformExpr(e);
      return t;
    }
    case ExprKind::kList: {
      auto l = Cast<lang::ListExpr>(expr);
      for (ExprPtr& e : l->elts) e = TransformExpr(e);
      return l;
    }
    case ExprKind::kAttribute: {
      auto a = Cast<lang::AttributeExpr>(expr);
      a->value = TransformExpr(a->value);
      return a;
    }
    case ExprKind::kSubscript: {
      auto s = Cast<lang::SubscriptExpr>(expr);
      s->value = TransformExpr(s->value);
      s->index = TransformExpr(s->index);
      return s;
    }
    case ExprKind::kCall: {
      auto c = Cast<lang::CallExpr>(expr);
      c->func = TransformExpr(c->func);
      for (ExprPtr& a : c->args) a = TransformExpr(a);
      for (lang::Keyword& kw : c->keywords) kw.value = TransformExpr(kw.value);
      return c;
    }
    case ExprKind::kUnary: {
      auto u = Cast<lang::UnaryExpr>(expr);
      u->operand = TransformExpr(u->operand);
      return u;
    }
    case ExprKind::kBinary: {
      auto b = Cast<lang::BinaryExpr>(expr);
      b->left = TransformExpr(b->left);
      b->right = TransformExpr(b->right);
      return b;
    }
    case ExprKind::kCompare: {
      auto c = Cast<lang::CompareExpr>(expr);
      c->left = TransformExpr(c->left);
      c->right = TransformExpr(c->right);
      return c;
    }
    case ExprKind::kBoolOp: {
      auto b = Cast<lang::BoolOpExpr>(expr);
      b->left = TransformExpr(b->left);
      b->right = TransformExpr(b->right);
      return b;
    }
    case ExprKind::kIfExp: {
      auto i = Cast<lang::IfExpExpr>(expr);
      i->test = TransformExpr(i->test);
      i->body = TransformExpr(i->body);
      i->orelse = TransformExpr(i->orelse);
      return i;
    }
    case ExprKind::kLambda: {
      auto l = Cast<lang::LambdaExpr>(expr);
      l->body = TransformExpr(l->body);
      return l;
    }
    default:
      return expr;
  }
}

ExprPtr Transformer::TransformExpr(const ExprPtr& expr) {
  return TransformExprChildren(expr);
}

std::string Transformer::NewSymbol(const std::string& base) {
  const int n = counters_[base]++;
  return "ag__" + base + "_" + std::to_string(n);
}

}  // namespace ag::transforms
