// Lowering of nonlocal control flow: break, continue, and return
// statements (paper §7.2: "the corresponding statement is lowered into
// conditionals or expanded loop conditions").
//
// The common scheme introduces a fresh guard variable:
//
//   while test:                 ag__did_break_0 = False
//     ...                 ->    while not ag__did_break_0 and test:
//     if c: break                 ...
//     f()                         if c:
//                                   ag__did_break_0 = True
//                                 if not ag__did_break_0:
//                                   f()
//
// Guards start as plain Python booleans; if a jump is conditioned on a
// tensor, the guard becomes a tensor through the staged conditional and
// the downstream `if not guard` / loop tests stage too — dynamic dispatch
// does the right thing in both worlds.
#include <functional>

#include "lang/unparser.h"
#include "transforms/passes.h"
#include "transforms/transformer.h"

namespace ag::transforms {

using lang::Cast;
using lang::CloneExpr;
using lang::ExprPtr;
using lang::MakeName;
using lang::StmtKind;
using lang::StmtList;
using lang::StmtPtr;

namespace {

template <typename T>
std::shared_ptr<T> At(std::shared_ptr<T> node, const lang::Node& src) {
  node->loc = src.loc;
  node->origin = src.origin;
  return node;
}

// True if `body` contains a statement of `kind` at this control level.
// Never descends into nested function definitions; descends into nested
// loops only when `descend_loops` (returns belong to the function; breaks
// and continues belong to the innermost loop).
bool ContainsJump(const StmtList& body, StmtKind kind, bool descend_loops) {
  for (const StmtPtr& s : body) {
    if (s->kind == kind) return true;
    switch (s->kind) {
      case StmtKind::kIf: {
        auto i = Cast<lang::IfStmt>(s);
        if (ContainsJump(i->body, kind, descend_loops) ||
            ContainsJump(i->orelse, kind, descend_loops)) {
          return true;
        }
        break;
      }
      case StmtKind::kWhile:
        if (descend_loops &&
            ContainsJump(Cast<lang::WhileStmt>(s)->body, kind,
                         descend_loops)) {
          return true;
        }
        break;
      case StmtKind::kFor:
        if (descend_loops &&
            ContainsJump(Cast<lang::ForStmt>(s)->body, kind, descend_loops)) {
          return true;
        }
        break;
      default:
        break;
    }
  }
  return false;
}

// True if every path through `body` executes a `kind` jump (at this
// level; loops and nested functions are opaque). Used to merge the
// post-if continuation into the else branch instead of guarding it —
// which keeps variables like the return value defined on *both* branches
// of the resulting conditional (required for staging).
bool AlwaysJumps(const StmtList& body, StmtKind kind) {
  for (const StmtPtr& s : body) {
    if (s->kind == kind) return true;  // rest of the block is unreachable
    if (s->kind == StmtKind::kIf) {
      auto i = Cast<lang::IfStmt>(s);
      if (!i->orelse.empty() && AlwaysJumps(i->body, kind) &&
          AlwaysJumps(i->orelse, kind)) {
        return true;
      }
    }
  }
  return false;
}

StmtPtr SetGuard(const std::string& guard, bool value,
                 const lang::Node& src) {
  auto assign = std::make_shared<lang::AssignStmt>(
      MakeName(guard), std::make_shared<lang::BoolExpr>(value));
  assign->loc = src.loc;
  assign->origin = src.origin;
  return assign;
}

ExprPtr NotGuard(const std::string& guard) {
  return std::make_shared<lang::UnaryExpr>(lang::UnaryOp::kNot,
                                           MakeName(guard));
}

// Wraps `rest` in `if not guard: rest` (no-op for empty rest).
StmtList GuardRest(const std::string& guard, StmtList rest,
                   const lang::Node& src) {
  if (rest.empty()) return rest;
  auto guarded = std::make_shared<lang::IfStmt>(NotGuard(guard),
                                                std::move(rest), StmtList{});
  guarded->loc = src.loc;
  guarded->origin = src.origin;
  return {std::static_pointer_cast<lang::Stmt>(guarded)};
}

// The shared block-lowering routine. `on_jump` produces the replacement
// statements for the jump itself (e.g. `guard = True` plus, for return,
// the retval assignment). `handles_loops` — when true (return pass),
// while/for containing the jump are rewritten in place too.
class JumpLowerer {
 public:
  JumpLowerer(StmtKind kind, std::string guard, bool descend_loops)
      : kind_(kind), guard_(std::move(guard)),
        descend_loops_(descend_loops) {}

  // Hook: statements that replace the jump statement itself.
  std::function<StmtList(const StmtPtr&)> on_jump;

  StmtList Lower(const StmtList& body) {
    StmtList out;
    for (size_t idx = 0; idx < body.size(); ++idx) {
      const StmtPtr& s = body[idx];
      if (s->kind == kind_) {
        StmtList repl = on_jump(s);
        out.insert(out.end(), repl.begin(), repl.end());
        // Anything after an unconditional jump is unreachable.
        return out;
      }
      const bool may_set_guard = MaySetGuard(s);
      // `if c: <always jumps>` followed by more code: the continuation
      // runs exactly when the condition was false, so it belongs in the
      // else branch (keeping all state definitions branch-symmetric).
      if (may_set_guard && s->kind == StmtKind::kIf) {
        auto i = Cast<lang::IfStmt>(s);
        if (i->orelse.empty() && AlwaysJumps(i->body, kind_) &&
            idx + 1 < body.size()) {
          StmtList rest;
          for (size_t j = idx + 1; j < body.size(); ++j) {
            rest.push_back(body[j]);
          }
          i->body = Lower(i->body);
          i->orelse = Lower(rest);
          if (i->orelse.empty()) {
            i->orelse.push_back(At(std::make_shared<lang::PassStmt>(), *s));
          }
          out.push_back(i);
          return out;
        }
      }
      StmtPtr lowered = LowerCompound(s);
      out.push_back(lowered);
      if (may_set_guard) {
        // The rest of the block only runs if the guard stayed false.
        StmtList rest;
        for (size_t j = idx + 1; j < body.size(); ++j) {
          rest.push_back(body[j]);
        }
        StmtList guarded = GuardRest(guard_, Lower(rest), *s);
        out.insert(out.end(), guarded.begin(), guarded.end());
        return out;
      }
    }
    return out;
  }

 private:
  bool MaySetGuard(const StmtPtr& s) {
    switch (s->kind) {
      case StmtKind::kIf: {
        auto i = Cast<lang::IfStmt>(s);
        return ContainsJump(i->body, kind_, descend_loops_) ||
               ContainsJump(i->orelse, kind_, descend_loops_);
      }
      case StmtKind::kWhile:
        return descend_loops_ &&
               ContainsJump(Cast<lang::WhileStmt>(s)->body, kind_,
                            descend_loops_);
      case StmtKind::kFor:
        return descend_loops_ &&
               ContainsJump(Cast<lang::ForStmt>(s)->body, kind_,
                            descend_loops_);
      default:
        return false;
    }
  }

  StmtPtr LowerCompound(const StmtPtr& s) {
    switch (s->kind) {
      case StmtKind::kIf: {
        auto i = Cast<lang::IfStmt>(s);
        i->body = Lower(i->body);
        i->orelse = Lower(i->orelse);
        if (i->body.empty()) {
          i->body.push_back(At(std::make_shared<lang::PassStmt>(), *s));
        }
        return i;
      }
      case StmtKind::kWhile: {
        if (!descend_loops_) return s;
        auto w = Cast<lang::WhileStmt>(s);
        if (!ContainsJump(w->body, kind_, descend_loops_)) return s;
        w->body = Lower(w->body);
        // `while test` -> `while not guard and test`.
        w->test = std::make_shared<lang::BoolOpExpr>(
            lang::BoolOp::kAnd, NotGuard(guard_), w->test);
        return w;
      }
      case StmtKind::kFor: {
        if (!descend_loops_) return s;
        auto f = Cast<lang::ForStmt>(s);
        if (!ContainsJump(f->body, kind_, descend_loops_)) return s;
        f->body = GuardRest(guard_, Lower(f->body), *s);
        return f;
      }
      default:
        return s;
    }
  }

  StmtKind kind_;
  std::string guard_;
  bool descend_loops_;
};

// ---- Break ----
class BreakTransformer final : public Transformer {
 protected:
  StmtList TransformStmt(const StmtPtr& stmt) override {
    if (stmt->kind == StmtKind::kWhile) {
      auto w = Cast<lang::WhileStmt>(stmt);
      w->body = TransformBody(w->body);  // inner loops first
      if (!ContainsJump(w->body, StmtKind::kBreak, /*descend_loops=*/false)) {
        return {w};
      }
      const std::string guard = NewSymbol("did_break");
      JumpLowerer lower(StmtKind::kBreak, guard, /*descend_loops=*/false);
      lower.on_jump = [&guard](const StmtPtr& s) {
        return StmtList{SetGuard(guard, true, *s)};
      };
      w->body = lower.Lower(w->body);
      w->test = std::make_shared<lang::BoolOpExpr>(lang::BoolOp::kAnd,
                                                   NotGuard(guard), w->test);
      return {SetGuard(guard, false, *stmt), w};
    }
    if (stmt->kind == StmtKind::kFor) {
      auto f = Cast<lang::ForStmt>(stmt);
      f->body = TransformBody(f->body);
      if (!ContainsJump(f->body, StmtKind::kBreak, /*descend_loops=*/false)) {
        return {f};
      }
      const std::string guard = NewSymbol("did_break");
      JumpLowerer lower(StmtKind::kBreak, guard, /*descend_loops=*/false);
      lower.on_jump = [&guard](const StmtPtr& s) {
        return StmtList{SetGuard(guard, true, *s)};
      };
      // Remaining iterations become no-ops once the guard is set.
      f->body = GuardRest(guard, lower.Lower(f->body), *stmt);
      return {SetGuard(guard, false, *stmt), f};
    }
    return Transformer::TransformStmt(stmt);
  }
};

// ---- Continue ----
class ContinueTransformer final : public Transformer {
 protected:
  StmtList TransformStmt(const StmtPtr& stmt) override {
    if (stmt->kind == StmtKind::kWhile || stmt->kind == StmtKind::kFor) {
      StmtList* body = stmt->kind == StmtKind::kWhile
                           ? &Cast<lang::WhileStmt>(stmt)->body
                           : &Cast<lang::ForStmt>(stmt)->body;
      *body = TransformBody(*body);
      if (ContainsJump(*body, StmtKind::kContinue,
                       /*descend_loops=*/false)) {
        const std::string guard = NewSymbol("did_continue");
        JumpLowerer lower(StmtKind::kContinue, guard,
                          /*descend_loops=*/false);
        lower.on_jump = [&guard](const StmtPtr& s) {
          return StmtList{SetGuard(guard, true, *s)};
        };
        StmtList lowered = lower.Lower(*body);
        StmtList new_body{SetGuard(guard, false, *stmt)};
        new_body.insert(new_body.end(), lowered.begin(), lowered.end());
        *body = std::move(new_body);
      }
      return {stmt};
    }
    return Transformer::TransformStmt(stmt);
  }
};

// ---- Return ----
class ReturnTransformer final : public Transformer {
 public:
  StmtList RunOnFunctionBody(const StmtList& body) {
    // First, nested functions get their own independent transform.
    StmtList processed;
    for (const StmtPtr& s : body) {
      StmtList repl = TransformStmt(s);
      processed.insert(processed.end(), repl.begin(), repl.end());
    }

    // Trivial single-exit shape: no return anywhere except possibly a
    // trailing one at the top level — nothing to do.
    const bool has_nested_return =
        [&processed] {
          for (size_t i = 0; i < processed.size(); ++i) {
            const StmtPtr& s = processed[i];
            if (s->kind == StmtKind::kReturn &&
                i + 1 == processed.size()) {
              continue;  // trailing top-level return is fine
            }
            StmtList single{s};
            if (s->kind == StmtKind::kReturn ||
                ContainsJump(single, StmtKind::kReturn,
                             /*descend_loops=*/true)) {
              return true;
            }
          }
          return false;
        }();
    if (!has_nested_return) return processed;

    const std::string guard = NewSymbol("do_return");
    const std::string retval = NewSymbol("retval");
    JumpLowerer lower(StmtKind::kReturn, guard, /*descend_loops=*/true);
    lower.on_jump = [&guard, &retval](const StmtPtr& s) {
      auto r = Cast<lang::ReturnStmt>(s);
      ExprPtr value = r->value
                          ? r->value
                          : std::static_pointer_cast<lang::Expr>(
                                std::make_shared<lang::NoneExpr>());
      auto set_ret = std::make_shared<lang::AssignStmt>(MakeName(retval),
                                                        std::move(value));
      set_ret->loc = s->loc;
      set_ret->origin = s->origin;
      return StmtList{SetGuard(guard, true, *s),
                      std::static_pointer_cast<lang::Stmt>(set_ret)};
    };

    StmtList lowered = lower.Lower(processed);

    StmtList out;
    out.push_back(SetGuard(guard, false, *processed.front()));
    auto init_ret = std::make_shared<lang::AssignStmt>(
        MakeName(retval), std::make_shared<lang::NoneExpr>());
    init_ret->loc = processed.front()->loc;
    init_ret->origin = processed.front()->origin;
    out.push_back(std::move(init_ret));
    out.insert(out.end(), lowered.begin(), lowered.end());
    auto final_ret = std::make_shared<lang::ReturnStmt>(MakeName(retval));
    final_ret->loc = processed.back()->loc;
    final_ret->origin = processed.back()->origin;
    out.push_back(std::move(final_ret));
    return out;
  }

 protected:
  StmtList TransformStmt(const StmtPtr& stmt) override {
    if (stmt->kind == StmtKind::kFunctionDef) {
      auto f = Cast<lang::FunctionDefStmt>(stmt);
      ReturnTransformer nested;
      f->body = nested.RunOnFunctionBody(f->body);
      return {f};
    }
    return Transformer::TransformStmt(stmt);
  }
};

}  // namespace

StmtList BreakPass(const StmtList& body) {
  return BreakTransformer().Run(body);
}

StmtList ContinuePass(const StmtList& body) {
  return ContinueTransformer().Run(body);
}

StmtList ReturnPass(const StmtList& body) {
  ReturnTransformer t;
  return t.RunOnFunctionBody(body);
}

}  // namespace ag::transforms
