// Control Flow conversion (paper §7.2): rewrites if/while/for statements
// into the overloadable functional forms ag__.if_stmt / ag__.while_stmt /
// ag__.for_stmt, using the dataflow analyses to determine:
//
//   - which symbols each branch/loop must return (modified AND live),
//   - which symbols may be undefined on entry and must be reified with
//     the special Undefined value.
//
// The analyses are computed once per function body, before any rewriting;
// compound statement nodes are mutated in place (bodies first, bottom-up),
// so the per-node annotations stay valid for the statements still being
// processed — the same snapshot discipline AutoGraph's pass manager uses.
#include <algorithm>

#include "analysis/activity.h"
#include "analysis/cfg.h"
#include "analysis/liveness.h"
#include "analysis/reaching_definitions.h"
#include "transforms/passes.h"
#include "transforms/transformer.h"

namespace ag::transforms {

using lang::Cast;
using lang::CloneExpr;
using lang::ExprPtr;
using lang::MakeCall;
using lang::MakeDottedName;
using lang::MakeName;
using lang::StmtKind;
using lang::StmtList;
using lang::StmtPtr;

namespace {

template <typename T>
std::shared_ptr<T> At(std::shared_ptr<T> node, const lang::Node& src) {
  node->loc = src.loc;
  node->origin = src.origin;
  return node;
}

// Builds `return v` / `return (v1, v2, ...)` / `return None`.
StmtPtr MakeReturn(const std::vector<std::string>& names,
                   const lang::Node& src) {
  ExprPtr value;
  if (names.empty()) {
    value = std::make_shared<lang::NoneExpr>();
  } else if (names.size() == 1) {
    value = MakeName(names[0]);
  } else {
    std::vector<ExprPtr> elts;
    elts.reserve(names.size());
    for (const std::string& n : names) elts.push_back(MakeName(n));
    value = std::make_shared<lang::TupleExpr>(std::move(elts));
  }
  auto ret = std::make_shared<lang::ReturnStmt>(std::move(value));
  return At(std::move(ret), src);
}

// Builds the assignment `(v1, v2) = <call>` (or ExprStmt when no names).
StmtPtr MakeStateAssign(const std::vector<std::string>& names, ExprPtr call,
                        const lang::Node& src) {
  if (names.empty()) {
    return At(std::make_shared<lang::ExprStmt>(std::move(call)), src);
  }
  ExprPtr target;
  if (names.size() == 1) {
    target = MakeName(names[0]);
  } else {
    std::vector<ExprPtr> elts;
    elts.reserve(names.size());
    for (const std::string& n : names) elts.push_back(MakeName(n));
    target = std::make_shared<lang::TupleExpr>(std::move(elts));
  }
  auto assign = std::make_shared<lang::AssignStmt>(std::move(target),
                                                   std::move(call));
  return At(std::move(assign), src);
}

// `(v1, v2,)` tuple expression of current variable values.
ExprPtr MakeStateTuple(const std::vector<std::string>& names) {
  std::vector<ExprPtr> elts;
  elts.reserve(names.size());
  for (const std::string& n : names) elts.push_back(MakeName(n));
  return std::make_shared<lang::TupleExpr>(std::move(elts));
}

// `v = ag__.Undefined('v')` statements for symbols that may be undefined.
void EmitUndefinedReification(const std::vector<std::string>& names,
                              const std::set<std::string>& defined,
                              const lang::Node& src, StmtList* out) {
  for (const std::string& n : names) {
    if (defined.count(n) > 0) continue;
    auto call = MakeCall(
        MakeDottedName("ag__.Undefined"),
        {std::make_shared<lang::StringExpr>(n)});
    auto assign =
        std::make_shared<lang::AssignStmt>(MakeName(n), std::move(call));
    out->push_back(At(std::move(assign), src));
  }
}

class ControlFlow final : public Transformer {
 public:
  ControlFlow(const StmtList& body, const std::vector<std::string>& params)
      : activity_(body),
        cfg_(analysis::ControlFlowGraph::Build(body, params)),
        liveness_(cfg_),
        reaching_(cfg_) {}

 protected:
  StmtList TransformStmt(const StmtPtr& stmt) override {
    switch (stmt->kind) {
      case StmtKind::kFunctionDef: {
        // Nested functions get a fresh analysis universe.
        auto f = Cast<lang::FunctionDefStmt>(stmt);
        f->body = ControlFlowPass(f->body, f->params);
        return {f};
      }
      case StmtKind::kIf:
        return TransformIf(Cast<lang::IfStmt>(stmt));
      case StmtKind::kWhile:
        return TransformWhile(Cast<lang::WhileStmt>(stmt));
      case StmtKind::kFor:
        return TransformFor(Cast<lang::ForStmt>(stmt));
      default:
        return Transformer::TransformStmt(stmt);
    }
  }

 private:
  StmtList TransformIf(const std::shared_ptr<lang::IfStmt>& stmt) {
    // Analysis snapshot for this node (taken before rewriting children).
    const std::set<std::string> modified =
        activity_.ScopeFor(stmt.get()).ModifiedNames();
    const std::set<std::string>& live_out = liveness_.LiveOut(stmt.get());
    const std::set<std::string>& defined =
        reaching_.DefinitelyDefinedIn(stmt.get());

    std::vector<std::string> returned;
    for (const std::string& m : modified) {
      if (live_out.count(m) > 0) returned.push_back(m);
    }

    // Children after the snapshot.
    stmt->body = TransformBody(stmt->body);
    stmt->orelse = TransformBody(stmt->orelse);

    StmtList out;
    EmitUndefinedReification(returned, defined, *stmt, &out);

    const std::string true_name = NewSymbol("if_true");
    const std::string false_name = NewSymbol("if_false");

    StmtList true_body = stmt->body;
    true_body.push_back(MakeReturn(returned, *stmt));
    auto true_fn = std::make_shared<lang::FunctionDefStmt>(
        true_name, std::vector<std::string>{}, std::move(true_body));
    out.push_back(At(std::move(true_fn), *stmt));

    StmtList false_body = stmt->orelse;
    false_body.push_back(MakeReturn(returned, *stmt));
    auto false_fn = std::make_shared<lang::FunctionDefStmt>(
        false_name, std::vector<std::string>{}, std::move(false_body));
    out.push_back(At(std::move(false_fn), *stmt));

    auto call = MakeCall(
        MakeDottedName("ag__.if_stmt"),
        {stmt->test, MakeName(true_name), MakeName(false_name)});
    out.push_back(MakeStateAssign(returned, At(std::move(call), *stmt),
                                  *stmt));
    return out;
  }

  StmtList TransformWhile(const std::shared_ptr<lang::WhileStmt>& stmt) {
    const std::set<std::string> modified =
        activity_.ScopeFor(stmt.get()).ModifiedNames();
    const std::set<std::string>& live_out = liveness_.LiveOut(stmt.get());
    const std::set<std::string>& live_in = liveness_.LiveIn(stmt.get());
    const std::set<std::string>& defined =
        reaching_.DefinitelyDefinedIn(stmt.get());

    std::vector<std::string> state;
    for (const std::string& m : modified) {
      if (live_out.count(m) > 0 || live_in.count(m) > 0) {
        state.push_back(m);
      }
    }

    stmt->body = TransformBody(stmt->body);

    StmtList out;
    EmitUndefinedReification(state, defined, *stmt, &out);

    const std::string test_name = NewSymbol("loop_test");
    const std::string body_name = NewSymbol("loop_body");

    StmtList test_body{
        At(std::make_shared<lang::ReturnStmt>(stmt->test), *stmt)};
    auto test_fn = std::make_shared<lang::FunctionDefStmt>(
        test_name, state, std::move(test_body));
    out.push_back(At(std::move(test_fn), *stmt));

    StmtList body_stmts = stmt->body;
    body_stmts.push_back(MakeReturn(state, *stmt));
    auto body_fn = std::make_shared<lang::FunctionDefStmt>(
        body_name, state, std::move(body_stmts));
    out.push_back(At(std::move(body_fn), *stmt));

    auto call = MakeCall(MakeDottedName("ag__.while_stmt"),
                         {MakeName(test_name), MakeName(body_name),
                          MakeStateTuple(state)});
    out.push_back(MakeStateAssign(state, At(std::move(call), *stmt), *stmt));
    return out;
  }

  StmtList TransformFor(const std::shared_ptr<lang::ForStmt>& stmt) {
    const std::set<std::string> modified =
        activity_.ScopeFor(stmt.get()).ModifiedNames();
    const std::set<std::string>& live_out = liveness_.LiveOut(stmt.get());
    const std::set<std::string>& live_in = liveness_.LiveIn(stmt.get());
    const std::set<std::string>& defined =
        reaching_.DefinitelyDefinedIn(stmt.get());

    // Loop target names are rebound each iteration and are not state.
    std::set<std::string> target_names;
    std::set<std::string> target_reads;
    analysis::CollectWrites(stmt->target, &target_names, &target_reads);

    std::vector<std::string> state;
    for (const std::string& m : modified) {
      if (target_names.count(m) > 0) continue;
      if (live_out.count(m) > 0 || live_in.count(m) > 0) {
        state.push_back(m);
      }
    }

    stmt->body = TransformBody(stmt->body);

    StmtList out;
    EmitUndefinedReification(state, defined, *stmt, &out);

    const std::string body_name = NewSymbol("loop_body");
    const std::string iter_var = NewSymbol("itr");

    // def body(itr, *state):  [unpack itr if tuple target]  <body>  return
    std::vector<std::string> params{iter_var};
    params.insert(params.end(), state.begin(), state.end());

    StmtList body_stmts;
    {
      auto unpack = std::make_shared<lang::AssignStmt>(stmt->target,
                                                       MakeName(iter_var));
      body_stmts.push_back(At(std::move(unpack), *stmt));
    }
    body_stmts.insert(body_stmts.end(), stmt->body.begin(),
                      stmt->body.end());
    body_stmts.push_back(MakeReturn(state, *stmt));
    auto body_fn = std::make_shared<lang::FunctionDefStmt>(
        body_name, std::move(params), std::move(body_stmts));
    out.push_back(At(std::move(body_fn), *stmt));

    auto call = MakeCall(MakeDottedName("ag__.for_stmt"),
                         {stmt->iter, MakeName(body_name),
                          MakeStateTuple(state)});
    out.push_back(MakeStateAssign(state, At(std::move(call), *stmt), *stmt));
    return out;
  }

  analysis::ActivityAnalysis activity_;
  analysis::ControlFlowGraph cfg_;
  analysis::Liveness liveness_;
  analysis::ReachingDefinitions reaching_;
};

}  // namespace

StmtList ControlFlowPass(const StmtList& body,
                         const std::vector<std::string>& params) {
  ControlFlow pass(body, params);
  return pass.Run(body);
}

}  // namespace ag::transforms
