// The conversion passes, in the paper's order of application (§7.2):
//
//   Directives -> Break -> Continue -> Return -> Assert -> Lists ->
//   Slices -> Function Calls -> Control Flow -> Ternary -> Logical ->
//   Function Wrappers
//
// plus an initial Desugar pass (augmented assignment lowering) that
// normalizes the tree so later passes handle fewer shapes.
//
// Every pass takes and returns a statement list; ConvertFunctionAst runs
// the whole pipeline on one function definition (re-running the static
// analyses between passes, since transforms invalidate node-keyed
// annotations).
#pragma once

#include <memory>
#include <set>
#include <string>

#include "analysis/lint.h"
#include "lang/ast.h"
#include "support/pass_pipeline.h"

namespace ag::transforms {

// What ConvertFunctionAst does with aglint diagnostics (see
// analysis/lint.h for the diagnostic codes).
enum class LintMode : std::uint8_t {
  kOff,   // no linting (default)
  kWarn,  // print diagnostics to stderr, convert anyway
  kError, // raise ConversionError for any AG001-AG005 diagnostic
};

struct ConversionOptions {
  // Call targets whose qualified-name prefix matches are NOT rewritten to
  // converted_call (the paper's whitelisted modules: TF itself, and the
  // AutoGraph operators).
  std::set<std::string> whitelist{"tf", "ag", "ag__"};
  // Which conversion passes run (see transforms::PassRegistry for the
  // registered names and support/pass_pipeline.h for the grammar). An
  // unspecified spec runs the default pipeline.
  PipelineSpec pipeline;
  // Deprecated shim: when false, excludes the "call_trees" pass
  // (non-recursive conversion) — equivalent to a "-call_trees" token in
  // `pipeline`, which new code should use instead.
  bool recursive = true;
  // Staging-safety diagnostics run over the *original* function before
  // any pass, so locations always point at user source.
  LintMode lint_mode = LintMode::kOff;
  analysis::LintBackend lint_backend = analysis::LintBackend::kTF;
};

[[nodiscard]] lang::StmtList DesugarPass(const lang::StmtList& body);
[[nodiscard]] lang::StmtList DirectivesPass(const lang::StmtList& body);
[[nodiscard]] lang::StmtList BreakPass(const lang::StmtList& body);
[[nodiscard]] lang::StmtList ContinuePass(const lang::StmtList& body);
// Applied per function (uses its own return-value symbol); `body` is the
// body of the function being converted.
[[nodiscard]] lang::StmtList ReturnPass(const lang::StmtList& body);
[[nodiscard]] lang::StmtList AssertPass(const lang::StmtList& body);
[[nodiscard]] lang::StmtList ListsPass(const lang::StmtList& body);
[[nodiscard]] lang::StmtList SlicesPass(const lang::StmtList& body);
[[nodiscard]] lang::StmtList CallTreesPass(const lang::StmtList& body,
                                           const ConversionOptions& options);
[[nodiscard]] lang::StmtList ControlFlowPass(
    const lang::StmtList& body, const std::vector<std::string>& params);
[[nodiscard]] lang::StmtList TernaryPass(const lang::StmtList& body);
[[nodiscard]] lang::StmtList LogicalPass(const lang::StmtList& body);

// Runs the full pipeline on a (cloned) function definition. The result is
// a new FunctionDef whose body is in overloadable functional form; the
// original is left untouched.
[[nodiscard]] std::shared_ptr<lang::FunctionDefStmt> ConvertFunctionAst(
    const std::shared_ptr<lang::FunctionDefStmt>& fn,
    const ConversionOptions& options = {});

}  // namespace ag::transforms
