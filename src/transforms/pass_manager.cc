// The conversion pipeline (paper §6, "General Approach" steps 3-4): runs
// every pass in order on a cloned AST. Also implements the Function
// Wrappers pass: the converted function is tagged with the
// "ag__converted" decorator, which the runtime uses to (a) skip
// re-conversion in converted_call and (b) open a graph name scope around
// the function's ops while staging.
#include "transforms/passes.h"

#include <iostream>

#include "analysis/lint.h"
#include "lang/unparser.h"

namespace ag::transforms {

namespace {

// Runs aglint over the unconverted function, so every diagnostic carries
// the user's original source location. In kError mode the first
// staging-safety diagnostic (AG001-AG005) aborts conversion; AG006
// (unreachable code) and AG007 (dead store) are code-quality hints and
// never fatal.
void RunLint(const std::shared_ptr<lang::FunctionDefStmt>& fn,
             const ConversionOptions& options) {
  analysis::LintOptions lint_options;
  lint_options.backend = options.lint_backend;
  const std::vector<analysis::Diagnostic> diagnostics =
      analysis::LintFunction(fn, lint_options);
  for (const analysis::Diagnostic& d : diagnostics) {
    if (options.lint_mode == LintMode::kError && d.code != "AG006" &&
        d.code != "AG007" && d.severity != analysis::Severity::kInfo) {
      throw analysis::ToConversionError(d, fn->name);
    }
    std::cerr << "aglint: " << d.str() << "\n";
  }
}

}  // namespace

std::shared_ptr<lang::FunctionDefStmt> ConvertFunctionAst(
    const std::shared_ptr<lang::FunctionDefStmt>& fn,
    const ConversionOptions& options) {
  if (options.lint_mode != LintMode::kOff) {
    RunLint(fn, options);
  }
  auto out = lang::Cast<lang::FunctionDefStmt>(
      lang::CloneStmt(std::static_pointer_cast<lang::Stmt>(fn)));

  lang::StmtList body = std::move(out->body);
  body = DesugarPass(body);
  body = DirectivesPass(body);
  body = BreakPass(body);
  body = ContinuePass(body);
  body = ReturnPass(body);
  body = AssertPass(body);
  body = ListsPass(body);
  body = SlicesPass(body);
  if (options.recursive) {
    body = CallTreesPass(body, options);
  }
  body = ControlFlowPass(body, out->params);
  body = TernaryPass(body);
  body = LogicalPass(body);
  out->body = std::move(body);

  // Function Wrappers: tag as converted (runtime opens a name scope and
  // installs the error-rewriting handler around calls to it).
  out->decorators.clear();
  out->decorators.push_back("ag__converted");
  return out;
}

}  // namespace ag::transforms
