// The conversion pipeline (paper §6, "General Approach" steps 3-4),
// driven by the AST-level PassRegistry: every built-in pass registers
// with a name and ordering constraints, ConvertFunctionAst builds the
// pipeline from ConversionOptions::pipeline and runs it over a cloned
// AST. Also implements the Function Wrappers pass: the converted
// function is tagged with the "ag__converted" decorator, which the
// runtime uses to (a) skip re-conversion in converted_call and (b) open
// a graph name scope around the function's ops while staging.
#include "transforms/pass_manager.h"

#include <iostream>
#include <utility>

#include "analysis/lint.h"
#include "lang/unparser.h"
#include "support/error.h"
#include "support/strings.h"
#include "transforms/passes.h"

namespace ag::transforms {

namespace {

// Runs aglint over the unconverted function, so every diagnostic carries
// the user's original source location. In kError mode the first
// staging-safety diagnostic (AG001-AG005) aborts conversion; AG006
// (unreachable code) and AG007 (dead store) are code-quality hints and
// never fatal.
void RunLint(const std::shared_ptr<lang::FunctionDefStmt>& fn,
             const ConversionOptions& options) {
  analysis::LintOptions lint_options;
  lint_options.backend = options.lint_backend;
  const std::vector<analysis::Diagnostic> diagnostics =
      analysis::LintFunction(fn, lint_options);
  for (const analysis::Diagnostic& d : diagnostics) {
    if (options.lint_mode == LintMode::kError && d.code != "AG006" &&
        d.code != "AG007" && d.severity != analysis::Severity::kInfo) {
      throw analysis::ToConversionError(d, fn->name);
    }
    std::cerr << "aglint: " << d.str() << "\n";
  }
}

}  // namespace

PassRegistry& PassRegistry::Global() {
  static PassRegistry* registry = [] {
    auto* r = new PassRegistry();
    RegisterBuiltinAstPasses(*r);
    return r;
  }();
  return *registry;
}

void PassRegistry::Register(PassInfo info) {
  if (info.name.empty()) {
    throw ValueError("pass registry: pass name must be non-empty");
  }
  if (!info.run) {
    throw ValueError("pass registry: pass '" + info.name + "' has no body");
  }
  if (index_.count(info.name) > 0) {
    throw ValueError("pass registry: duplicate pass '" + info.name + "'");
  }
  index_[info.name] = passes_.size();
  passes_.push_back(std::make_unique<PassInfo>(std::move(info)));
}

const PassInfo* PassRegistry::Find(const std::string& name) const {
  auto it = index_.find(name);
  return it == index_.end() ? nullptr : passes_[it->second].get();
}

std::vector<std::string> PassRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(passes_.size());
  for (const auto& p : passes_) names.push_back(p->name);
  return names;
}

std::vector<const PassInfo*> PassRegistry::BuildPipeline(
    const PipelineSpec& spec) const {
  // Every name the spec mentions must exist — a typo is a structured
  // error, not a silently empty pipeline.
  auto check_known = [this](const std::vector<std::string>& names,
                            const char* where) {
    for (const std::string& name : names) {
      if (name == "default") continue;
      if (Find(name) == nullptr) {
        throw ValueError("pass pipeline: unknown pass '" + name + "' in " +
                         where + " list (registered: " +
                         Join(Names(), ", ") + ")");
      }
    }
  };
  check_known(spec.include, "include");
  check_known(spec.exclude, "exclude");

  std::vector<size_t> selected;
  std::vector<PassOrderNode> order_nodes;
  for (size_t i = 0; i < passes_.size(); ++i) {
    const PassInfo& p = *passes_[i];
    for (const std::string& dep : p.after) {
      if (Find(dep) == nullptr) {
        throw ValueError("pass registry: pass '" + p.name +
                         "' has after-constraint on unregistered pass '" +
                         dep + "'");
      }
    }
    for (const std::string& next : p.before) {
      if (Find(next) == nullptr) {
        throw ValueError("pass registry: pass '" + p.name +
                         "' has before-constraint on unregistered pass '" +
                         next + "'");
      }
    }
    if (spec.Selects(p.name, p.default_enabled)) {
      selected.push_back(i);
      // Rank 0 everywhere: AST passes have no phases; registration
      // order is the tiebreak, after/before the hard constraints.
      order_nodes.push_back(PassOrderNode{p.name, p.after, p.before, 0});
    }
  }

  std::vector<const PassInfo*> pipeline;
  pipeline.reserve(selected.size());
  for (size_t si : OrderPasses(order_nodes)) {
    pipeline.push_back(passes_[selected[si]].get());
  }
  return pipeline;
}

void RegisterBuiltinAstPasses(PassRegistry& registry) {
  // Each pass constrains itself after its predecessor, making the
  // paper's fixed order explicit and machine-checked — a spec that
  // drops passes keeps the survivors in this relative order.
  const char* prev = nullptr;
  auto add = [&registry, &prev](
                 const char* name,
                 std::function<lang::StmtList(const lang::StmtList&,
                                              PassContext&)> run) {
    PassInfo info;
    info.name = name;
    if (prev != nullptr) info.after = {prev};
    info.run = std::move(run);
    registry.Register(info);
    prev = name;
  };
  auto body_pass = [](lang::StmtList (*fn)(const lang::StmtList&)) {
    return [fn](const lang::StmtList& body, PassContext&) {
      return fn(body);
    };
  };
  add("desugar", body_pass(&DesugarPass));
  add("directives", body_pass(&DirectivesPass));
  add("break", body_pass(&BreakPass));
  add("continue", body_pass(&ContinuePass));
  add("return", body_pass(&ReturnPass));
  add("assert", body_pass(&AssertPass));
  add("lists", body_pass(&ListsPass));
  add("slices", body_pass(&SlicesPass));
  add("call_trees", [](const lang::StmtList& body, PassContext& ctx) {
    return CallTreesPass(body, *ctx.options);
  });
  add("control_flow", [](const lang::StmtList& body, PassContext& ctx) {
    return ControlFlowPass(body, *ctx.params);
  });
  add("ternary", body_pass(&TernaryPass));
  add("logical", body_pass(&LogicalPass));
}

std::shared_ptr<lang::FunctionDefStmt> ConvertFunctionAst(
    const std::shared_ptr<lang::FunctionDefStmt>& fn,
    const ConversionOptions& options) {
  if (options.lint_mode != LintMode::kOff) {
    RunLint(fn, options);
  }
  auto out = lang::Cast<lang::FunctionDefStmt>(
      lang::CloneStmt(std::static_pointer_cast<lang::Stmt>(fn)));

  // The deprecated `recursive` bool forwards into the spec (same shim
  // pattern as graph::EffectivePipeline's legacy booleans).
  PipelineSpec spec = options.pipeline;
  if (!options.recursive) spec.exclude.push_back("call_trees");

  PassContext ctx;
  ctx.options = &options;
  ctx.params = &out->params;
  lang::StmtList body = std::move(out->body);
  for (const PassInfo* pass : PassRegistry::Global().BuildPipeline(spec)) {
    body = pass->run(body, ctx);
  }
  out->body = std::move(body);

  // Function Wrappers: tag as converted (runtime opens a name scope and
  // installs the error-rewriting handler around calls to it).
  out->decorators.clear();
  out->decorators.push_back("ag__converted");
  return out;
}

}  // namespace ag::transforms
