// AST-level pass manager — the transforms:: counterpart of
// graph::PassRegistry (src/graph/pass_manager.h). Both layers share one
// registration idiom: passes self-describe with a name, hard
// after/before ordering constraints, and a default-enabled flag; a
// PipelineSpec (support/pass_pipeline.h) selects which passes run and
// the shared OrderPasses scheduler places them. The difference is the
// artifact: an AST pass rewrites a statement list, a graph pass
// rewrites a dataflow graph.
//
// DESIGN.md §4i carries the table mapping the two layers.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "lang/ast.h"
#include "support/pass_pipeline.h"

namespace ag::transforms {

struct ConversionOptions;  // passes.h

// Read-only conversion state handed to every AST pass.
struct PassContext {
  const ConversionOptions* options = nullptr;
  // Parameters of the function being converted (control_flow uses them
  // to seed its symbol analysis).
  const std::vector<std::string>* params = nullptr;
};

// One registered AST pass. `run` takes the current function body and
// returns the rewritten one.
struct PassInfo {
  std::string name;  // e.g. "control_flow" — PipelineSpec token
  // Ordering constraints, by pass name (hard; cycles are a ValueError
  // at pipeline-build time). Constraints may name deselected passes
  // (vacuous) but never unregistered ones.
  std::vector<std::string> after;
  std::vector<std::string> before;
  // Whether an unqualified "default" pipeline includes this pass.
  bool default_enabled = true;
  std::function<lang::StmtList(const lang::StmtList&, PassContext&)> run;
};

// Name-indexed pass registry; same surface as graph::PassRegistry.
class PassRegistry {
 public:
  // Process-wide registry preloaded with the built-in conversion passes
  // (explicit registration — no static-initializer registrars, which
  // static libraries drop).
  static PassRegistry& Global();

  // Throws ValueError on an empty name, a missing body, or a duplicate.
  void Register(PassInfo info);

  [[nodiscard]] const PassInfo* Find(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> Names() const;

  // Selects passes per `spec` and orders them (registration order as
  // the soft rank, after/before as hard constraints). Throws ValueError
  // for unknown spec names and constraint cycles.
  [[nodiscard]] std::vector<const PassInfo*> BuildPipeline(
      const PipelineSpec& spec) const;

 private:
  std::vector<std::unique_ptr<PassInfo>> passes_;
  std::map<std::string, size_t> index_;
};

// Registers the built-in conversion pipeline (paper §7.2 order):
// desugar -> directives -> break -> continue -> return -> assert ->
// lists -> slices -> call_trees -> control_flow -> ternary -> logical.
void RegisterBuiltinAstPasses(PassRegistry& registry);

}  // namespace ag::transforms
