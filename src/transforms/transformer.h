// Base machinery for AST conversion passes (paper §7.2).
//
// Each pass is a Transformer subclass. The default implementation walks
// the tree; subclasses override TransformStmt (which may expand one
// statement into several — the shape of most lowering passes) and/or
// TransformExpr (which may replace an expression node).
//
// Generated symbols use the reserved "ag__" prefix so they can never
// collide with user code (the parser accepts them, and the interpreter
// treats names starting with "ag__" as internal).
#pragma once

#include <map>
#include <string>

#include "lang/ast.h"

namespace ag::transforms {

class Transformer {
 public:
  virtual ~Transformer() = default;

  // Applies the pass to a whole function body.
  [[nodiscard]] lang::StmtList Run(const lang::StmtList& body) {
    return TransformBody(body);
  }

 protected:
  // Transforms one statement into zero or more statements. The default
  // recurses into nested bodies and contained expressions.
  virtual lang::StmtList TransformStmt(const lang::StmtPtr& stmt);

  // Transforms one expression (bottom-up: children first). The default
  // recurses and returns the (possibly rebuilt) node.
  virtual lang::ExprPtr TransformExpr(const lang::ExprPtr& expr);

  [[nodiscard]] lang::StmtList TransformBody(const lang::StmtList& body);

  // Recurses into an expression's children only (no self-replacement);
  // used by TransformExpr overrides that want default child handling.
  [[nodiscard]] lang::ExprPtr TransformExprChildren(const lang::ExprPtr& expr);

  // Fresh internal symbol: "ag__<base>_<n>".
  [[nodiscard]] std::string NewSymbol(const std::string& base);

 private:
  std::map<std::string, int> counters_;
};

}  // namespace ag::transforms
