// Intra-op sharding helper: splits an index range across the shared
// thread pool, with determinism and deadlock-freedom guarantees.
//
//   runtime::ParallelFor(n, grain, [&](int64_t begin, int64_t end) {
//     for (int64_t i = begin; i < end; ++i) out[i] = f(in[i]);
//   });
//
// Contract:
//   - The body is invoked over disjoint [begin, end) shards covering
//     [0, n) exactly once. Shard *boundaries* depend only on (n, grain,
//     budget), never on scheduling, so any per-shard sequential
//     computation with disjoint writes is bit-identical across thread
//     counts — the determinism contract the sharded kernels rely on.
//   - Runs entirely inline (one body(0, n) call, zero synchronization)
//     when the calling thread's intra-op budget is <= 1 thread or the
//     range is under 2 grains. The budget is scoped, not global: a
//     Session::Run with RunOptions::intra_op_threads installs an
//     IntraOpScope for its duration; the default everywhere is
//     sequential.
//   - Self-progressing: the calling thread claims shards from the same
//     atomic cursor as pool helpers, so it completes the loop alone if
//     the pool is saturated. Waiting is bounded by shards actively
//     running on helpers; no cycle through the pool exists, hence no
//     deadlock under nesting.
//   - Exceptions thrown by the body are captured (first wins) and
//     rethrown on the calling thread after all in-flight shards finish.
//   - Pool helpers run shards with an intra-op budget of 1, so a body
//     that itself calls ParallelFor degrades to inline execution rather
//     than exploding the shard tree.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>

namespace ag::runtime {

// The calling thread's effective intra-op thread budget (>= 1). 1 means
// sequential kernels; set via IntraOpScope.
[[nodiscard]] int IntraOpThreads();

// Installs an intra-op budget for the scope's lifetime on this thread,
// restoring the previous budget on exit. Values <= 1 (including the
// RunOptions default 0) mean sequential.
class IntraOpScope {
 public:
  explicit IntraOpScope(int threads);
  ~IntraOpScope();
  IntraOpScope(const IntraOpScope&) = delete;
  IntraOpScope& operator=(const IntraOpScope&) = delete;

 private:
  int previous_;
};

namespace detail {
// Out-of-line sharded path; `threads` > 1 and n > grain guaranteed.
void ParallelForImpl(int64_t n, int64_t grain, int threads,
                     const std::function<void(int64_t, int64_t)>& body);
}  // namespace detail

// Runs body over [0, n) in shards of at least `grain` iterations (the
// minimum work worth shipping to another thread).
template <typename Body>
void ParallelFor(int64_t n, int64_t grain, Body&& body) {
  if (n <= 0) return;
  if (grain < 1) grain = 1;
  const int threads = IntraOpThreads();
  if (threads <= 1 || n < grain * 2) {
    body(int64_t{0}, n);
    return;
  }
  detail::ParallelForImpl(n, grain, threads,
                          std::function<void(int64_t, int64_t)>(
                              std::forward<Body>(body)));
}

}  // namespace ag::runtime
