#include "runtime/cancellation.h"

#include <utility>

#include "obs/trace.h"
#include "support/error.h"

namespace ag::runtime {

namespace {
thread_local CancelCheck* g_current_cancel_check = nullptr;
}  // namespace

std::string CancellationToken::reason() const {
  // Nearest cancelled state on the parent chain wins: a child cancelled
  // for its own reason reports that reason even when an ancestor also
  // cancelled later.
  for (const detail::CancelState* s = state_.get(); s != nullptr;
       s = s->parent.get()) {
    if (s->cancelled.load(std::memory_order_acquire)) {
      std::lock_guard<std::mutex> lock(s->mu);
      return s->reason;
    }
  }
  return {};
}

void CancellationSource::Cancel(std::string reason) {
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    // First Cancel's reason wins; the store below publishes it.
    if (state_->reason.empty()) state_->reason = std::move(reason);
  }
  state_->cancelled.store(true, std::memory_order_release);
}

CancelCheck::CancelCheck(const CancellationToken* token, int64_t deadline_ms,
                         int64_t inject_after_kernels,
                         int64_t max_while_iterations,
                         int64_t absolute_deadline_ns)
    : inject_after_(inject_after_kernels),
      max_while_iterations_(max_while_iterations) {
  if (token != nullptr) token_ = *token;
  if (deadline_ms > 0) {
    // The one relative→absolute conversion: from here on every poll —
    // across retries sharing this check, plan compiles, and queue waits
    // under an enclosing check — compares against the same instant.
    deadline_ms_ = deadline_ms;
    deadline_ns_ = obs::NowNs() + deadline_ms * 1000000;
  }
  if (absolute_deadline_ns > 0 &&
      (deadline_ns_ == 0 || absolute_deadline_ns < deadline_ns_)) {
    deadline_ns_ = absolute_deadline_ns;
    deadline_ms_ = 0;  // message reports the absolute form (see below)
  }
}

void CancelCheck::Poll(const char* site, const std::string& name,
                       int64_t iteration) {
  if (injected_.load(std::memory_order_relaxed) || token_.IsCancelled()) {
    ThrowTripped(/*deadline=*/false, site, name, iteration);
  }
  if (deadline_ns_ != 0 && obs::NowNs() >= deadline_ns_) {
    ThrowTripped(/*deadline=*/true, site, name, iteration);
  }
}

void CancelCheck::Poll(const char* site, int64_t iteration) {
  static const std::string kNoName;
  Poll(site, kNoName, iteration);
}

void CancelCheck::PollKernel(const std::string& name) {
  if (inject_after_ >= 0 &&
      kernels_started_.fetch_add(1, std::memory_order_relaxed) ==
          inject_after_) {
    injected_.store(true, std::memory_order_relaxed);
  }
  Poll("kernel", name);
}

void CancelCheck::CheckLoopBound(const char* site, int64_t iteration) const {
  if (max_while_iterations_ > 0 && iteration >= max_while_iterations_) {
    throw RuntimeError(std::string(site) +
                       " exceeded max_while_iterations (" +
                       std::to_string(max_while_iterations_) +
                       "); runaway loop?");
  }
}

void CancelCheck::ThrowTripped(bool deadline, const char* site,
                               const std::string& name, int64_t iteration) {
  int64_t expected = 0;
  tripped_at_.compare_exchange_strong(expected, obs::NowNs(),
                                      std::memory_order_acq_rel);
  std::string msg;
  if (deadline) {
    msg = deadline_ms_ > 0
              ? "deadline of " + std::to_string(deadline_ms_) + " ms exceeded"
              : "absolute deadline exceeded (" +
                    std::to_string((obs::NowNs() - deadline_ns_) / 1000000) +
                    " ms past it)";
  } else if (injected_.load(std::memory_order_relaxed)) {
    msg = "run cancelled: fault injection after " +
          std::to_string(inject_after_) + " kernel(s)";
  } else {
    const std::string reason = token_.reason();
    msg = "run cancelled: " + (reason.empty() ? "cancelled" : reason);
  }
  msg += std::string(" at ") + site;
  if (!name.empty()) msg += " '" + name + "'";
  if (iteration >= 0) msg += ", iteration " + std::to_string(iteration);
  throw Error(deadline ? ErrorKind::kDeadlineExceeded : ErrorKind::kCancelled,
              std::move(msg));
}

CancelCheck* CurrentCancelCheck() { return g_current_cancel_check; }

CancelCheckScope::CancelCheckScope(CancelCheck* check)
    : previous_(g_current_cancel_check) {
  g_current_cancel_check = check;
}

CancelCheckScope::~CancelCheckScope() { g_current_cancel_check = previous_; }

}  // namespace ag::runtime
