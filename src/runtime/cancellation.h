// Cooperative cancellation and deadlines for every execution engine.
//
// The runtime never preempts a running kernel; instead every engine
// (the sequential Session evaluator, the parallel plan executor, the
// intra-op ParallelFor shard loop, lantern::Executor and the eager
// interpreter) polls a CancelCheck at cheap, well-defined boundaries —
// kernel launches, While/loop iterations, shard claims — and unwinds
// through the normal error machinery when the check has tripped. This
// is TF's CancellationManager / RunOptions-timeout knob surface, scaled
// to this runtime: tokens are *polled*, not signalled, because a poll
// is one relaxed atomic load on the hot path and needs no registration
// or callback lifetime protocol across pool threads.
//
//   runtime::CancellationSource source;
//   runtime::CancellationToken token = source.token();
//   obs::RunOptions opts;
//   opts.cancel_token = &token;       // external cancel
//   opts.deadline_ms = 50;            // and/or a wall-clock deadline
//   std::thread killer([&] { source.Cancel("user abort"); });
//   session.Run(feeds, fetches, &opts);  // throws kCancelled/kDeadlineExceeded
//
// The graceful-degradation contract: a cancelled or timed-out run
// leaves its Session/Executor fully usable — variables intact, plan
// caches intact — because cancellation reuses the exception failure
// path, which never mutates cross-run state.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

namespace ag::runtime {

namespace detail {
// Shared flag+reason cell between one CancellationSource and all of its
// tokens. The flag is the hot path (polled per kernel); the reason is
// cold (read once, when building the error message). `parent` links a
// child source to the state of the source it was minted from: a token
// is cancelled when any state on its parent chain is, so cancelling a
// parent fans out to every descendant with no registration or callback
// lifetime protocol — descendants simply observe it at their next poll.
struct CancelState {
  std::atomic<bool> cancelled{false};
  mutable std::mutex mu;
  std::string reason;
  std::shared_ptr<const CancelState> parent;  // null for a root source
};
}  // namespace detail

// A cheap, copyable, thread-safe view of a CancellationSource. The
// default-constructed token is never cancelled.
class CancellationToken {
 public:
  CancellationToken() = default;

  // True when this token's source — or any ancestor it was created
  // under — has been cancelled. The walk is one relaxed-length chain of
  // acquire loads; hierarchies are shallow (server → connection →
  // request), so the poll stays cheap.
  [[nodiscard]] bool IsCancelled() const {
    for (const detail::CancelState* s = state_.get(); s != nullptr;
         s = s->parent.get()) {
      if (s->cancelled.load(std::memory_order_acquire)) return true;
    }
    return false;
  }
  // The reason of the nearest cancelled state on the chain (own source
  // first, then ancestors); empty while not cancelled.
  [[nodiscard]] std::string reason() const;

 private:
  friend class CancellationSource;
  explicit CancellationToken(std::shared_ptr<const detail::CancelState> s)
      : state_(std::move(s)) {}

  std::shared_ptr<const detail::CancelState> state_;
};

// The owning side: Cancel() flips every token minted from this source —
// and, through the parent chain, every token of every child source
// created from one of this source's tokens. Thread-safe; the first
// Cancel's reason wins, later calls are no-ops.
class CancellationSource {
 public:
  CancellationSource()
      : state_(std::make_shared<detail::CancelState>()) {}

  // Hierarchical child: cancelled when either its own Cancel() fires or
  // the parent token's source (or any of *its* ancestors) cancels.
  // Built from a token rather than a source so the fan-out crosses
  // component boundaries — a server hands each connection a token, the
  // connection mints one child source per request from it, and dropping
  // the connection cancels every nested staged/eager call each request
  // spawned. Cancelling a child never affects its parent or siblings.
  explicit CancellationSource(const CancellationToken& parent)
      : state_(std::make_shared<detail::CancelState>()) {
    state_->parent = parent.state_;
  }

  void Cancel(std::string reason = "cancelled");
  // True when this source (or an ancestor) is cancelled.
  [[nodiscard]] bool IsCancelled() const { return token().IsCancelled(); }
  [[nodiscard]] CancellationToken token() const {
    return CancellationToken(state_);
  }

 private:
  std::shared_ptr<detail::CancelState> state_;
};

// Per-run poll point combining every way a run can be interrupted: an
// external CancellationToken, a wall-clock deadline, and the test-only
// fault-injection counter (RunOptions::inject_cancel_after_kernels).
// One CancelCheck is created per Run() and shared by every thread that
// participates in that run; all members are safe to poll concurrently.
//
// Poll() throws Error(kCancelled) or Error(kDeadlineExceeded) with a
// structured message naming the poll site (node, loop iteration) where
// the run stopped. The first poll that trips records its timestamp so
// RunMetadata can report time-to-unwind.
class CancelCheck {
 public:
  // deadline_ms <= 0 means no relative deadline; inject_after_kernels
  // < 0 means no fault injection; max_while_iterations <= 0 means no
  // loop bound. absolute_deadline_ns is an already-absolute instant on
  // the obs::NowNs() clock (RunOptions::deadline_ns), stamped by the
  // caller *before* queueing/retries so the whole span counts; <= 0
  // means none. deadline_ms converts to an absolute instant exactly
  // once, here; when both are given the earlier instant wins. `token`
  // may be null and is copied (tokens are a shared_ptr), so the
  // caller's RunOptions may die before the check.
  CancelCheck(const CancellationToken* token, int64_t deadline_ms,
              int64_t inject_after_kernels = -1,
              int64_t max_while_iterations = 0,
              int64_t absolute_deadline_ns = 0);

  // Polls every source. `site` describes the boundary ("While node",
  // "kernel", ...), `name` the node/function involved, `iteration` the
  // loop iteration (-1: not in a loop). No allocation unless tripping.
  void Poll(const char* site, const std::string& name,
            int64_t iteration = -1);
  void Poll(const char* site, int64_t iteration = -1);

  // Kernel-boundary poll: additionally advances the fault-injection
  // counter — with inject_after_kernels == k the run is cancelled once
  // exactly k kernels have started, at any thread, deterministically.
  void PollKernel(const std::string& name);

  // Runaway-loop guard for engines whose only transport is this check
  // (the eager interpreter): throws RuntimeError once `iteration` body
  // executions have already run and the loop condition came up true
  // again — a loop that terminates cleanly in exactly N iterations
  // never trips a bound of N. The Session engines enforce the same
  // bound themselves (with the While node's name) and never call this.
  void CheckLoopBound(const char* site, int64_t iteration) const;

  // Monotonic ns timestamp of the poll that tripped (0: not tripped).
  [[nodiscard]] int64_t tripped_at_ns() const {
    return tripped_at_.load(std::memory_order_acquire);
  }

 private:
  [[noreturn]] void ThrowTripped(bool deadline, const char* site,
                                 const std::string& name, int64_t iteration);

  CancellationToken token_;
  int64_t deadline_ms_ = 0;
  int64_t deadline_ns_ = 0;  // absolute obs::NowNs() deadline; 0 = none
  int64_t inject_after_ = -1;
  int64_t max_while_iterations_ = 0;  // <= 0 = no loop bound
  std::atomic<int64_t> kernels_started_{0};
  std::atomic<bool> injected_{false};
  std::atomic<int64_t> tripped_at_{0};
};

// The calling thread's current CancelCheck (null: not cancellable).
// Installed per run so layers without an explicit context pointer —
// the intra-op ParallelFor shard loop and the eager interpreter's
// while loops — can poll the same check as the engines above them.
[[nodiscard]] CancelCheck* CurrentCancelCheck();

// Installs `check` as the thread's current CancelCheck for the scope's
// lifetime, restoring the previous one on exit (scopes nest).
class CancelCheckScope {
 public:
  explicit CancelCheckScope(CancelCheck* check);
  ~CancelCheckScope();
  CancelCheckScope(const CancelCheckScope&) = delete;
  CancelCheckScope& operator=(const CancelCheckScope&) = delete;

 private:
  CancelCheck* previous_;
};

}  // namespace ag::runtime
