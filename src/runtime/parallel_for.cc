#include "runtime/parallel_for.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <exception>
#include <memory>
#include <mutex>

#include "runtime/thread_pool.h"

namespace ag::runtime {

namespace {
thread_local int g_intra_op_threads = 1;
}  // namespace

int IntraOpThreads() { return g_intra_op_threads; }

IntraOpScope::IntraOpScope(int threads) : previous_(g_intra_op_threads) {
  g_intra_op_threads = threads <= 1 ? 1 : threads;
}

IntraOpScope::~IntraOpScope() { g_intra_op_threads = previous_; }

namespace detail {

namespace {

// State shared between the calling thread and pool helpers. Owned by a
// shared_ptr so a helper scheduled late (after the caller already
// finished the loop and returned) finds only a harmless empty cursor.
struct ShardedLoop {
  int64_t n = 0;
  int64_t shard_size = 0;
  int64_t num_shards = 0;
  const std::function<void(int64_t, int64_t)>* body = nullptr;

  std::atomic<int64_t> next_shard{0};
  std::atomic<int64_t> done_shards{0};
  std::atomic<bool> failed{false};

  std::mutex mu;
  std::condition_variable cv;
  std::exception_ptr error;

  // Claims and runs shards until the cursor is exhausted. Safe to call
  // from any thread, any number of threads at once.
  void Drain() {
    while (true) {
      const int64_t shard = next_shard.fetch_add(1, std::memory_order_relaxed);
      if (shard >= num_shards) return;
      if (!failed.load(std::memory_order_acquire)) {
        const int64_t begin = shard * shard_size;
        const int64_t end = std::min(n, begin + shard_size);
        try {
          (*body)(begin, end);
        } catch (...) {
          {
            std::lock_guard<std::mutex> lock(mu);
            if (error == nullptr) error = std::current_exception();
          }
          failed.store(true, std::memory_order_release);
        }
      }
      if (done_shards.fetch_add(1, std::memory_order_acq_rel) + 1 ==
          num_shards) {
        std::lock_guard<std::mutex> lock(mu);
        cv.notify_all();
      }
    }
  }
};

}  // namespace

void ParallelForImpl(int64_t n, int64_t grain, int threads,
                     const std::function<void(int64_t, int64_t)>& body) {
  const int64_t max_shards =
      std::min<int64_t>(threads, (n + grain - 1) / grain);
  auto loop = std::make_shared<ShardedLoop>();
  loop->n = n;
  // Even split into max_shards pieces, rounded up; boundaries are a pure
  // function of (n, grain, threads).
  loop->shard_size = (n + max_shards - 1) / max_shards;
  loop->num_shards = (n + loop->shard_size - 1) / loop->shard_size;
  loop->body = &body;

  ThreadPool* pool = ThreadPool::Shared();
  pool->EnsureWorkers(threads - 1);
  const int helpers = static_cast<int>(
      std::min<int64_t>(threads - 1, loop->num_shards - 1));
  for (int h = 0; h < helpers; ++h) {
    pool->Schedule([loop] {
      // Helpers shard with a budget of 1: nested ParallelFor runs inline.
      IntraOpScope sequential(1);
      loop->Drain();
    });
  }

  loop->Drain();  // self-progress: the caller claims shards too

  {
    std::unique_lock<std::mutex> lock(loop->mu);
    loop->cv.wait(lock, [&] {
      return loop->done_shards.load(std::memory_order_acquire) ==
             loop->num_shards;
    });
    if (loop->error != nullptr) std::rethrow_exception(loop->error);
  }
  // `body` lives on this frame; helpers only touch it while done_shards
  // < num_shards, which the wait above has excluded.
}

}  // namespace detail

}  // namespace ag::runtime
