#include "runtime/parallel_for.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <exception>
#include <memory>
#include <mutex>
#include <optional>

#include "runtime/cancellation.h"
#include "runtime/thread_pool.h"
#include "support/error.h"

namespace ag::runtime {

namespace {
thread_local int g_intra_op_threads = 1;
}  // namespace

int IntraOpThreads() { return g_intra_op_threads; }

IntraOpScope::IntraOpScope(int threads) : previous_(g_intra_op_threads) {
  g_intra_op_threads = threads <= 1 ? 1 : threads;
}

IntraOpScope::~IntraOpScope() { g_intra_op_threads = previous_; }

namespace detail {

namespace {

// State shared between the calling thread and pool helpers. Owned by a
// shared_ptr so a helper scheduled late (after the caller already
// finished the loop and returned) finds only a harmless empty cursor.
struct ShardedLoop {
  int64_t n = 0;
  int64_t shard_size = 0;
  int64_t num_shards = 0;
  const std::function<void(int64_t, int64_t)>* body = nullptr;
  // The calling thread's CancelCheck (null: not cancellable), polled
  // before each shard claim so a cancelled run stops launching shards.
  // Outlives the loop: ParallelForImpl waits for all shards before
  // returning, and the check lives on a Run() frame above that.
  CancelCheck* cancel = nullptr;

  std::atomic<int64_t> next_shard{0};
  std::atomic<int64_t> done_shards{0};
  std::atomic<bool> failed{false};

  std::mutex mu;
  std::condition_variable cv;
  // First failing shard's error. ag::Error is stored by value and the
  // caller throws a fresh copy: sharing one exception object across
  // threads via exception_ptr would let a late pool helper destroy it
  // through libstdc++ refcounts ThreadSanitizer cannot see. Foreign
  // (non-Error) exceptions keep the exception_ptr path.
  std::optional<Error> error;
  std::exception_ptr foreign_error;

  [[nodiscard]] bool HasError() const {
    return error.has_value() || foreign_error != nullptr;
  }

  // Claims and runs shards until the cursor is exhausted. Safe to call
  // from any thread, any number of threads at once.
  void Drain() {
    while (true) {
      const int64_t shard = next_shard.fetch_add(1, std::memory_order_relaxed);
      if (shard >= num_shards) return;
      if (!failed.load(std::memory_order_acquire)) {
        const int64_t begin = shard * shard_size;
        const int64_t end = std::min(n, begin + shard_size);
        try {
          if (cancel != nullptr) cancel->Poll("intra-op shard", shard);
          (*body)(begin, end);
        } catch (const Error& e) {
          {
            std::lock_guard<std::mutex> lock(mu);
            if (!HasError()) error = e;
          }
          failed.store(true, std::memory_order_release);
        } catch (...) {
          {
            std::lock_guard<std::mutex> lock(mu);
            if (!HasError()) foreign_error = std::current_exception();
          }
          failed.store(true, std::memory_order_release);
        }
      }
      if (done_shards.fetch_add(1, std::memory_order_acq_rel) + 1 ==
          num_shards) {
        std::lock_guard<std::mutex> lock(mu);
        cv.notify_all();
      }
    }
  }
};

}  // namespace

void ParallelForImpl(int64_t n, int64_t grain, int threads,
                     const std::function<void(int64_t, int64_t)>& body) {
  const int64_t max_shards =
      std::min<int64_t>(threads, (n + grain - 1) / grain);
  auto loop = std::make_shared<ShardedLoop>();
  loop->n = n;
  // Even split into max_shards pieces, rounded up; boundaries are a pure
  // function of (n, grain, threads).
  loop->shard_size = (n + max_shards - 1) / max_shards;
  loop->num_shards = (n + loop->shard_size - 1) / loop->shard_size;
  loop->body = &body;
  loop->cancel = CurrentCancelCheck();

  ThreadPool* pool = ThreadPool::Shared();
  // Lease helpers from the shared pool rather than demanding the full
  // thread budget: the process-wide lease cap keeps many concurrent
  // sharded kernels (one per serving request) from oversubscribing the
  // machine. A grant of 0 leaves the caller draining every shard alone
  // — slower, never wrong.
  const int helpers = pool->TryLendHelpers(static_cast<int>(
      std::min<int64_t>(threads - 1, loop->num_shards - 1)));
  for (int h = 0; h < helpers; ++h) {
    pool->Schedule([loop, pool] {
      // Helpers shard with a budget of 1: nested ParallelFor runs inline.
      IntraOpScope sequential(1);
      loop->Drain();
      pool->ReturnHelpers(1);
    });
  }

  loop->Drain();  // self-progress: the caller claims shards too

  {
    std::unique_lock<std::mutex> lock(loop->mu);
    loop->cv.wait(lock, [&] {
      return loop->done_shards.load(std::memory_order_acquire) ==
             loop->num_shards;
    });
    if (loop->error.has_value()) throw Error(*loop->error);
    if (loop->foreign_error != nullptr) {
      std::rethrow_exception(loop->foreign_error);
    }
  }
  // `body` lives on this frame; helpers only touch it while done_shards
  // < num_shards, which the wait above has excluded.
}

}  // namespace detail

}  // namespace ag::runtime
