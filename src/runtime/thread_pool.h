// Work-queue thread pool — the shared execution substrate for both the
// inter-op scheduler (exec::Session's ready-queue plan executor) and the
// intra-op kernel sharding helper (runtime::ParallelFor).
//
// Design notes, mirroring TF's unified threadpool:
//   - One process-wide pool (Shared()) grown on demand up to a hard cap;
//     inter- and intra-op work share it rather than fighting over cores
//     from two separate pools.
//   - Scheduling is strictly non-blocking for workers: a worker either
//     runs a task to completion or sleeps on the queue. All *waiting*
//     composites (ParallelFor, the Session's parallel plan run) are
//     self-progressing — the thread that waits also claims pending
//     shards/steps itself — so pool exhaustion can never deadlock them;
//     helpers only ever add speed, never correctness.
//   - Workers register a stable name ("agrt-worker-N") with the obs
//     thread-name registry, so Chrome traces render named thread rows.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ag::runtime {

class ThreadPool {
 public:
  // Starts `initial_workers` threads (may be 0; EnsureWorkers grows it).
  explicit ThreadPool(int initial_workers = 0);
  // Drains nothing: pending tasks that never ran are dropped at
  // destruction. Callers that must observe completion synchronize
  // themselves (ParallelFor and the plan executor both do).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues one task for any worker to pick up. Tasks should report
  // failures through their own channel (as the Session's plan executor
  // does); an exception escaping a task is logged to stderr and
  // swallowed rather than terminating the worker.
  void Schedule(std::function<void()> fn);

  // Grows the pool so at least `n` workers exist (clamped to kMaxWorkers;
  // never shrinks). Thread-safe.
  void EnsureWorkers(int n);

  [[nodiscard]] int num_workers() const;

  // The process-wide shared pool. Created empty on first use; sized by
  // the threading knobs that reach it (EnsureWorkers).
  [[nodiscard]] static ThreadPool* Shared();

  // Upper bound on pool size; requests beyond it are clamped.
  static constexpr int kMaxWorkers = 64;

 private:
  void WorkerLoop(int worker_index);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool shutdown_ = false;
};

}  // namespace ag::runtime
