// Work-queue thread pool — the shared execution substrate for both the
// inter-op scheduler (exec::Session's ready-queue plan executor) and the
// intra-op kernel sharding helper (runtime::ParallelFor).
//
// Design notes, mirroring TF's unified threadpool:
//   - One process-wide pool (Shared()) grown on demand up to a hard cap;
//     inter- and intra-op work share it rather than fighting over cores
//     from two separate pools.
//   - Scheduling is strictly non-blocking for workers: a worker either
//     runs a task to completion or sleeps on the queue. All *waiting*
//     composites (ParallelFor, the Session's parallel plan run) are
//     self-progressing — the thread that waits also claims pending
//     shards/steps itself — so pool exhaustion can never deadlock them;
//     helpers only ever add speed, never correctness.
//   - Workers register a stable name ("agrt-worker-N") with the obs
//     thread-name registry, so Chrome traces render named thread rows.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ag::runtime {

class ThreadPool {
 public:
  // Starts `initial_workers` threads (may be 0; EnsureWorkers grows it).
  explicit ThreadPool(int initial_workers = 0);
  // Drains nothing: pending tasks that never ran are dropped at
  // destruction. Callers that must observe completion synchronize
  // themselves (ParallelFor and the plan executor both do).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues one task for any worker to pick up. Tasks should report
  // failures through their own channel (as the Session's plan executor
  // does); an exception escaping a task is logged to stderr and
  // swallowed rather than terminating the worker.
  void Schedule(std::function<void()> fn);

  // Grows the pool so at least `n` workers exist (clamped to kMaxWorkers;
  // never shrinks). Thread-safe.
  void EnsureWorkers(int n);

  [[nodiscard]] int num_workers() const;

  // Helper leases — the process-wide brake on oversubscription.
  //
  // Every waiting composite (the Session's parallel drain, ParallelFor)
  // is self-progressing: the thread that waits claims work itself, and
  // pool helpers only add speed. Before this accounting, each composite
  // sized its helper request from its *own* thread budget, so N
  // concurrent server requests each asking for k helpers grew the
  // shared pool monotonically toward kMaxWorkers and oversubscribed the
  // machine. Composites now *lease* helpers: TryLendHelpers grants at
  // most (cap − outstanding) and grows the pool only to the outstanding
  // lease count, so total lent helpers — across every concurrent run,
  // connection, and nested loop — never exceeds the cap. A grant of 0
  // is always safe (the caller drains alone).
  //
  // Returns the number granted (0..want); the caller must return
  // exactly that many via ReturnHelpers when its helper tasks finish.
  int TryLendHelpers(int want);
  void ReturnHelpers(int n);

  // Cap on simultaneously lent helpers: hardware_concurrency − 1
  // (callers drain too), clamped to [1, kMaxWorkers].
  [[nodiscard]] int lent_helper_cap() const;
  // Currently outstanding leases and their high-water mark — the
  // oversubscription regression tests read these.
  [[nodiscard]] int lent_helpers() const {
    return lent_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] int lent_helpers_peak() const {
    return lent_peak_.load(std::memory_order_relaxed);
  }
  void ResetLentHelpersPeak() {
    lent_peak_.store(lent_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
  }
  // Test-only: override the cap (0 restores the hardware default).
  void SetLentHelperCapForTesting(int cap) {
    cap_override_.store(cap, std::memory_order_relaxed);
  }

  // The process-wide shared pool. Created empty on first use; sized by
  // the threading knobs that reach it (EnsureWorkers).
  [[nodiscard]] static ThreadPool* Shared();

  // Upper bound on pool size; requests beyond it are clamped.
  static constexpr int kMaxWorkers = 64;

 private:
  void WorkerLoop(int worker_index);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool shutdown_ = false;

  // Helper-lease accounting (see TryLendHelpers). Atomics, not mu_:
  // leases are taken/returned on hot scheduling paths and by pool
  // workers finishing drain tasks.
  std::atomic<int> lent_{0};
  std::atomic<int> lent_peak_{0};
  std::atomic<int> cap_override_{0};
};

}  // namespace ag::runtime
