#include "runtime/thread_pool.h"

#include <algorithm>
#include <exception>
#include <iostream>
#include <string>
#include <utility>

#include "obs/trace.h"

namespace ag::runtime {

ThreadPool::ThreadPool(int initial_workers) { EnsureWorkers(initial_workers); }

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
}

void ThreadPool::Schedule(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return;
    queue_.push_back(std::move(fn));
  }
  cv_.notify_one();
}

void ThreadPool::EnsureWorkers(int n) {
  if (n > kMaxWorkers) n = kMaxWorkers;
  std::lock_guard<std::mutex> lock(mu_);
  while (static_cast<int>(workers_.size()) < n && !shutdown_) {
    const int index = static_cast<int>(workers_.size());
    workers_.emplace_back([this, index] { WorkerLoop(index); });
  }
}

int ThreadPool::num_workers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(workers_.size());
}

int ThreadPool::lent_helper_cap() const {
  const int override_cap = cap_override_.load(std::memory_order_relaxed);
  if (override_cap > 0) return std::min(override_cap, kMaxWorkers);
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  // Callers self-progress alongside their helpers, so lending hw − 1
  // saturates the machine without oversubscribing it.
  return std::max(1, std::min(hw - 1, kMaxWorkers));
}

int ThreadPool::TryLendHelpers(int want) {
  if (want <= 0) return 0;
  const int cap = lent_helper_cap();
  int lent = lent_.load(std::memory_order_relaxed);
  int granted = 0;
  for (;;) {
    granted = std::min(want, cap - lent);
    if (granted <= 0) return 0;
    if (lent_.compare_exchange_weak(lent, lent + granted,
                                    std::memory_order_relaxed)) {
      break;
    }
  }
  const int outstanding = lent + granted;
  int peak = lent_peak_.load(std::memory_order_relaxed);
  while (peak < outstanding &&
         !lent_peak_.compare_exchange_weak(peak, outstanding,
                                           std::memory_order_relaxed)) {
  }
  // Demand-driven growth: workers exist for the leases outstanding
  // right now, not for the largest budget any run ever requested.
  EnsureWorkers(outstanding);
  return granted;
}

void ThreadPool::ReturnHelpers(int n) {
  if (n > 0) lent_.fetch_sub(n, std::memory_order_relaxed);
}

void ThreadPool::WorkerLoop(int worker_index) {
  obs::SetCurrentThreadName("agrt-worker-" + std::to_string(worker_index));
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
    if (shutdown_) return;
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    lock.unlock();
    // Tasks are expected to capture their own failures (the Session's
    // drain does); an escaped exception must not take down the worker —
    // and with it the process — so it is logged and swallowed here. The
    // diagnostic is built into one string and emitted with a single
    // stream insertion: concurrent failures on several workers must not
    // interleave their fragments into garbage.
    try {
      task();
    } catch (const std::exception& e) {
      std::cerr << ("agrt-worker-" + std::to_string(worker_index) +
                    ": scheduled task threw: " + e.what() + "\n");
    } catch (...) {
      std::cerr << ("agrt-worker-" + std::to_string(worker_index) +
                    ": scheduled task threw a non-std exception\n");
    }
    lock.lock();
  }
}

ThreadPool* ThreadPool::Shared() {
  // Meyer's singleton: workers are joined during static destruction, so
  // no task may be scheduled from another static destructor.
  static ThreadPool pool(0);
  return &pool;
}

}  // namespace ag::runtime
