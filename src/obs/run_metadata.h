// RunOptions / RunMetadata — the observability contract of every Run()
// surface in the system (exec::Session, core::StagedFunction /
// PolymorphicFunction / AutoGraph::CallEager, lantern::Executor).
//
// Modeled on TensorFlow's RunOptions/RunMetadata: the caller passes an
// optional `const RunOptions*` to request instrumentation and an
// optional `RunMetadata*` to receive it. Passing nullptr (the default
// everywhere) runs the uninstrumented fast path.
//
//   obs::RunOptions opts;
//   opts.trace = true;
//   obs::RunMetadata meta;
//   staged.Run(feeds, &opts, &meta);
//   std::cout << meta.DebugString();                 // per-op table
//   std::ofstream("t.json") << obs::ToChromeTraceJson(meta);  // Perfetto
//
// RunMetadata aggregates across calls via Merge(), which is how
// StagedFunction accumulates its cumulative per-op profile.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace ag::runtime {
class CancellationToken;  // runtime/cancellation.h
}  // namespace ag::runtime

namespace ag::obs {

struct RunOptions {
  // Record per-invocation TraceEvents (Chrome-trace exportable).
  bool trace = false;
  // Aggregate per-node step stats (op, count, wall time, output bytes).
  bool step_stats = true;

  // Threading knobs (the analog of TF's inter/intra-op pools, but over
  // one shared runtime::ThreadPool). These select the execution engine;
  // they do NOT turn on instrumentation (see enabled() below), so a
  // caller wanting a parallel-but-unprofiled run sets step_stats=false.
  //
  // inter_op_threads: how many graph steps may execute concurrently in
  // exec::Session. 0 (default) = the sequential recursive evaluator,
  // byte-identical behaviour to a build without this knob; >= 1 = the
  // ready-queue parallel plan executor (1 = drained by the calling
  // thread alone, useful for deterministic testing of that engine).
  int inter_op_threads = 0;
  // intra_op_threads: per-kernel sharding budget for the heavy tensor
  // kernels (MatMul row bands, large elementwise/reduction loops).
  // 0 or 1 = unsharded. Honoured by both Session and lantern::Executor.
  int intra_op_threads = 0;

  // Memory knob: route tensor buffers through the process-wide
  // tensor::BufferPool (recycled power-of-two blocks + in-place kernel
  // reuse). false restores the seed allocation path byte-for-byte —
  // every buffer is a fresh heap allocation freed on last release —
  // which is the A/B lever bench_memory and the aliasing tests use.
  // The AG_BUFFER_POOL=0 env var disables pooling process-wide
  // regardless of this flag.
  bool buffer_pool = true;

  // Kernel-backend knob: which tensor::simd backend the kernels of this
  // run dispatch to. "" (default) = process default (the
  // AG_KERNEL_BACKEND env var if set, else "auto"); "auto" = best
  // available; "scalar" = the seed scalar loops, byte-for-byte — the
  // A/B lever the tolerance tests and bench_kernels use; "avx2" = the
  // vectorized paths (degrades to scalar when the CPU or build lacks
  // AVX2/FMA). Any other value raises ValueError at Run() entry.
  std::string kernel_backend;

  // Interruption knobs (the analog of TF's RunOptions timeout +
  // CancellationManager). Every engine polls these cooperatively at
  // kernel/iteration/shard boundaries — see runtime/cancellation.h.
  //
  // deadline_ms: wall-clock budget for one Run(); when exceeded, the
  // run unwinds with Error(kDeadlineExceeded) naming the node and loop
  // iteration where it stopped. <= 0 (default) = no deadline. This is a
  // *relative* convenience: it converts to an absolute instant once, at
  // Run() entry. A caller that retries, queues, or otherwise spans
  // several Run() calls must use deadline_ns instead — re-passing a
  // relative budget grants every attempt a fresh full budget.
  int64_t deadline_ms = 0;
  // deadline_ns: absolute deadline on the monotonic obs::NowNs() clock.
  // Stamp it once — before admission queues, retry loops, and plan
  // compilation — and every attempt and phase is charged against the
  // same instant; a Run() entered after the instant fails immediately
  // with kDeadlineExceeded, before any kernel executes. Honored by both
  // Session engines, the eager interpreter, and lantern. When both
  // deadline fields are set the earlier effective instant wins.
  // <= 0 (default) = none.
  int64_t deadline_ns = 0;
  // cancel_token: external cancellation. The token is copied at Run()
  // entry (tokens are shared_ptr views), so the pointed-to token only
  // needs to outlive the Run() call itself. Null = not cancellable.
  const runtime::CancellationToken* cancel_token = nullptr;
  // max_while_iterations: finite guard against runaway loops. A loop
  // whose condition is still true after this many body executions
  // raises Error(kRuntime) naming the node and count instead of
  // spinning forever; a loop that terminates cleanly in exactly N
  // iterations never trips a bound of N. Enforced in both Session
  // engines and the eager interpreter's while statements;
  // lantern::Executor enforces it as its recursive call-depth bound
  // (staged loops are CPS recursion there).
  static constexpr int64_t kDefaultMaxWhileIterations = int64_t{1} << 31;
  int64_t max_while_iterations = kDefaultMaxWhileIterations;
  // Test-only fault injection: cancel the run once exactly N kernels
  // have started (any engine, any thread), making cancellation at
  // arbitrary kernel boundaries deterministically testable. -1 = off.
  int64_t inject_cancel_after_kernels = -1;
  // Test-only fault injection: sleep this long on every cold plan-cache
  // compile, making "the deadline fires during a slow first compile"
  // deterministically testable. 0 = off.
  int64_t inject_compile_delay_ms = 0;

  // Whether *instrumentation* is requested; threading knobs are
  // deliberately excluded so parallelism never forces profiling.
  [[nodiscard]] bool enabled() const { return trace || step_stats; }
  // Whether this run needs a CancelCheck poll object at all; false for
  // every pre-existing call shape, keeping those runs zero-overhead.
  [[nodiscard]] bool cancellable() const {
    return deadline_ms > 0 || deadline_ns > 0 || cancel_token != nullptr ||
           inject_cancel_after_kernels >= 0;
  }
  // Whether any interruption knob is set, including a custom loop
  // bound. Engines whose only transport for the bound is the
  // CancelCheck (the eager interpreter) install one when this is true,
  // so a caller setting only max_while_iterations is still guarded.
  [[nodiscard]] bool interruptible() const {
    return cancellable() ||
           max_while_iterations != kDefaultMaxWhileIterations;
  }
};

// Aggregated execution record for one graph node (or eager/lantern op).
struct NodeStats {
  std::string name;    // node name, or op name for anonymous dispatch
  std::string op;      // op / kernel type
  int64_t count = 0;   // number of executions merged into this record
  int64_t total_ns = 0;
  int64_t output_bytes = 0;  // cumulative bytes produced
  // Fresh buffer-pool allocations (pool misses) attributed to this
  // node's kernel executions; 0 for steady-state in-place/pooled ops.
  int64_t alloc_count = 0;
  // Roofline inputs: cumulative floating-point work (estimated from op
  // type and shapes — 2·m·k·n for matmuls, ~1 flop/element for
  // elementwise; 0 for ops with no meaningful count) and cumulative
  // bytes read. GFLOP/s = flops/total_ns; GB/s =
  // (input_bytes+output_bytes)/total_ns.
  int64_t flops = 0;
  int64_t input_bytes = 0;
  // Kernel backend that executed this node ("scalar"/"avx2"); "" for
  // layers that don't record one. Last writer wins on merge.
  std::string backend;

  [[nodiscard]] std::string DebugString() const;
};

// Per-node execution statistics for the Run(s) described by a
// RunMetadata — the analog of TF's StepStats/NodeExecStats.
struct StepStats {
  std::vector<NodeStats> nodes;

  [[nodiscard]] int64_t TotalNodeExecutions() const;
  [[nodiscard]] int64_t TotalNodeNs() const;
};

struct RunMetadata {
  StepStats step_stats;
  // Raw trace events (RunOptions::trace only).
  std::vector<TraceEvent> trace_events;
  // Phase wall times: "convert", "trace", "optimize", "plan_compile",
  // "run", "forward", "backward", ... (cumulative).
  std::map<std::string, int64_t> phase_ns;
  // Control-flow counters.
  int64_t while_iterations = 0;
  int64_t cond_true_taken = 0;
  int64_t cond_false_taken = 0;
  // Number of Run() calls merged into this metadata.
  int64_t runs = 0;
  // Total Run() wall time (cumulative).
  int64_t run_wall_ns = 0;
  // Cancellation outcome: how many merged runs were interrupted, the
  // kind of the most recent interruption ("cancelled" /
  // "deadline_exceeded"), and the cumulative time from the poll that
  // tripped to Run() unwinding into the caller — so an agprof trace
  // shows both where a run died and how fast it let go.
  int64_t interrupted_runs = 0;
  std::string interrupt_kind;
  int64_t unwind_ns = 0;
  // Per-interruption unwind latencies (one sample per interrupted run
  // merged in); agprof reports p50/p90/p99/max over these.
  std::vector<int64_t> unwind_samples_ns;

  // Serving columns (filled by serve::ServerCore; zero elsewhere).
  // Time the merged requests spent in the admission queue before
  // dispatch — wall time that is invisible to per-op step stats but
  // charged against each request's absolute deadline.
  int64_t queue_wait_ns = 0;
  // Dynamic batching outcome: how many merged requests executed as part
  // of a coalesced cross-request batch, the cumulative stacked batch
  // size over those executions, and the largest batch observed.
  // avg batch = batch_requests / batched_runs.
  int64_t batched_runs = 0;
  int64_t batch_requests = 0;
  int64_t batch_size_max = 0;

  // Allocator counters for the merged runs, snapshotted from
  // tensor::BufferPool around each Run(): fresh heap allocations, bytes
  // they requested, pool hits (recycled blocks), and the high-water mark
  // of live tensor bytes observed during the runs.
  int64_t alloc_count = 0;
  int64_t alloc_bytes = 0;
  int64_t pool_hit_count = 0;
  int64_t peak_live_bytes = 0;

  // Folds `other` into this metadata (NodeStats merged by (name, op)).
  void Merge(const RunMetadata& other);

  // Human-readable per-op time table plus phase/counter summary.
  [[nodiscard]] std::string DebugString() const;
};

// Folds complete events into per-(name, category) NodeStats — used by
// layers that record through a raw Tracer (eager dispatch) rather than
// a RunRecorder.
void AggregateEvents(const std::vector<TraceEvent>& events, StepStats* stats);

// Internal instrumentation sink live during one instrumented Run().
// Execution layers call Record*/Count* unconditionally guarded by a
// null check on their recorder pointer; Finish() flushes everything
// into the caller's RunMetadata.
class RunRecorder {
 public:
  explicit RunRecorder(const RunOptions& options) : options_(options) {}

  [[nodiscard]] bool tracing() const { return options_.trace; }
  [[nodiscard]] Tracer* tracer() {
    return options_.trace ? &tracer_ : nullptr;
  }

  // Records one node/op execution over [start_ns, end_ns].
  // `alloc_count` is the number of fresh pool allocations the executing
  // thread performed inside the kernel (tensor::ThreadAllocCount delta).
  void RecordNode(const std::string& name, const std::string& op,
                  int64_t start_ns, int64_t end_ns, int64_t output_bytes,
                  int64_t alloc_count = 0, int64_t flops = 0,
                  int64_t input_bytes = 0, const std::string& backend = "");
  void RecordPhase(const std::string& phase, int64_t dur_ns);
  void CountWhileIteration();
  void CountCondBranch(bool taken);

  // Flushes aggregates (and trace events) into `meta`; no-op when null.
  void Finish(RunMetadata* meta);

 private:
  RunOptions options_;
  Tracer tracer_;
  std::mutex mu_;
  std::map<std::pair<std::string, std::string>, size_t> index_;
  StepStats stats_;
  std::map<std::string, int64_t> phase_ns_;
  int64_t while_iterations_ = 0;
  int64_t cond_true_ = 0;
  int64_t cond_false_ = 0;
};

}  // namespace ag::obs
