#include "obs/chrome_trace.h"

#include <algorithm>
#include <cctype>
#include <iomanip>
#include <sstream>

namespace ag::obs {

namespace {

void AppendJsonString(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << "\\u" << std::hex << std::setw(4) << std::setfill('0')
             << static_cast<int>(c) << std::dec << std::setfill(' ');
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

// Microseconds with sub-microsecond precision, as Chrome expects.
std::string Us(int64_t ns) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(3) << static_cast<double>(ns) / 1e3;
  return os.str();
}

}  // namespace

std::string ToChromeTraceJson(const std::vector<TraceEvent>& events) {
  int64_t t0 = 0;
  bool first = true;
  for (const TraceEvent& e : events) {
    if (first || e.start_ns < t0) t0 = e.start_ns;
    first = false;
  }

  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool need_comma = false;
  // thread_name metadata rows for every *named* thread that appears in
  // the trace (runtime pool workers register names; the main thread does
  // not, keeping sequential-run traces unchanged).
  {
    std::vector<uint64_t> tids;
    for (const TraceEvent& e : events) tids.push_back(e.thread_id);
    std::sort(tids.begin(), tids.end());
    tids.erase(std::unique(tids.begin(), tids.end()), tids.end());
    for (uint64_t tid : tids) {
      const std::string name = ThreadName(tid);
      if (name.empty()) continue;
      if (need_comma) os << ",";
      need_comma = true;
      os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
         << ",\"args\":{\"name\":";
      AppendJsonString(os, name);
      os << "}}";
    }
  }
  for (const TraceEvent& e : events) {
    if (need_comma) os << ",";
    need_comma = true;
    os << "{\"name\":";
    AppendJsonString(os, e.name);
    os << ",\"cat\":";
    AppendJsonString(os, e.category);
    os << ",\"pid\":1,\"tid\":" << e.thread_id << ",\"ts\":"
       << Us(e.start_ns - t0);
    switch (e.kind) {
      case EventKind::kComplete:
        os << ",\"ph\":\"X\",\"dur\":" << Us(e.dur_ns);
        break;
      case EventKind::kCounter:
        os << ",\"ph\":\"C\",\"args\":{\"value\":" << e.value << "}";
        break;
      case EventKind::kInstant:
        os << ",\"ph\":\"i\",\"s\":\"t\"";
        break;
    }
    os << "}";
  }
  os << "],\"displayTimeUnit\":\"ms\"}";
  return os.str();
}

std::string ToChromeTraceJson(const RunMetadata& meta) {
  std::vector<TraceEvent> events = meta.trace_events;
  for (const auto& [phase, ns] : meta.phase_ns) {
    TraceEvent e;
    e.name = "phase:" + phase;
    e.category = "phase";
    e.kind = EventKind::kCounter;
    e.start_ns = events.empty() ? 0 : events.front().start_ns;
    e.value = ns;
    e.thread_id = 0;
    events.push_back(std::move(e));
  }
  return ToChromeTraceJson(events);
}

namespace {

// Minimal recursive-descent JSON parser. Tracks only what the validator
// needs: structural well-formedness and the traceEvents array length.
class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool Parse(std::string* error, int* num_events) {
    num_events_ = -1;
    SkipWs();
    if (Peek() != '{') {
      if (error != nullptr) *error = Err("expected a top-level object");
      return false;
    }
    if (!ParseValue(/*depth=*/0)) {
      if (error != nullptr) *error = error_;
      return false;
    }
    SkipWs();
    if (pos_ != text_.size()) {
      if (error != nullptr) *error = Err("trailing characters");
      return false;
    }
    if (num_events_ < 0) {
      if (error != nullptr) *error = "missing \"traceEvents\" array";
      return false;
    }
    if (num_events != nullptr) *num_events = num_events_;
    return true;
  }

 private:
  std::string Err(const std::string& what) {
    return what + " at offset " + std::to_string(pos_);
  }
  bool Fail(const std::string& what) {
    if (error_.empty()) error_ = Err(what);
    return false;
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }
  [[nodiscard]] char Peek() const {
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }
  bool Consume(char c) {
    if (Peek() != c) return false;
    ++pos_;
    return true;
  }

  bool ParseValue(int depth) {
    if (depth > 64) return Fail("nesting too deep");
    SkipWs();
    switch (Peek()) {
      case '{': return ParseObject(depth);
      case '[': return ParseArray(depth, nullptr);
      case '"': return ParseString(nullptr);
      case 't': return ParseLiteral("true");
      case 'f': return ParseLiteral("false");
      case 'n': return ParseLiteral("null");
      default: return ParseNumber();
    }
  }

  bool ParseLiteral(const char* lit) {
    for (const char* p = lit; *p != '\0'; ++p) {
      if (!Consume(*p)) return Fail("bad literal");
    }
    return true;
  }

  bool ParseNumber() {
    const size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (std::isdigit(static_cast<unsigned char>(Peek())) != 0) ++pos_;
    if (Consume('.')) {
      while (std::isdigit(static_cast<unsigned char>(Peek())) != 0) ++pos_;
    }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '+' || Peek() == '-') ++pos_;
      while (std::isdigit(static_cast<unsigned char>(Peek())) != 0) ++pos_;
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) {
      return Fail("expected a value");
    }
    return true;
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return Fail("expected '\"'");
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_++];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            if (pos_ >= text_.size() ||
                std::isxdigit(static_cast<unsigned char>(text_[pos_])) == 0) {
              return Fail("bad \\u escape");
            }
            ++pos_;
          }
        } else if (std::string("\"\\/bfnrt").find(esc) == std::string::npos) {
          return Fail("bad escape");
        }
        if (out != nullptr) *out += '?';  // unescaped value not needed
        continue;
      }
      if (out != nullptr) *out += c;
    }
    return Fail("unterminated string");
  }

  bool ParseArray(int depth, int* count) {
    if (!Consume('[')) return Fail("expected '['");
    SkipWs();
    int n = 0;
    if (!Consume(']')) {
      while (true) {
        if (!ParseValue(depth + 1)) return false;
        ++n;
        SkipWs();
        if (Consume(']')) break;
        if (!Consume(',')) return Fail("expected ',' or ']'");
      }
    }
    if (count != nullptr) *count = n;
    return true;
  }

  bool ParseObject(int depth) {
    if (!Consume('{')) return Fail("expected '{'");
    SkipWs();
    if (Consume('}')) return true;
    while (true) {
      SkipWs();
      std::string key;
      if (!ParseString(&key)) return false;
      SkipWs();
      if (!Consume(':')) return Fail("expected ':'");
      SkipWs();
      if (depth == 0 && key == "traceEvents" && Peek() == '[') {
        int n = 0;
        if (!ParseArray(depth + 1, &n)) return false;
        num_events_ = n;
      } else {
        if (!ParseValue(depth + 1)) return false;
      }
      SkipWs();
      if (Consume('}')) return true;
      if (!Consume(',')) return Fail("expected ',' or '}'");
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
  std::string error_;
  int num_events_ = -1;
};

}  // namespace

bool ValidateChromeTraceJson(const std::string& json, std::string* error,
                             int* num_events) {
  JsonParser parser(json);
  return parser.Parse(error, num_events);
}

}  // namespace ag::obs
