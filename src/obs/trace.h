// Low-overhead tracing core for the runtime observability layer.
//
// A Tracer is a thread-safe append-only buffer of TraceEvents recorded
// against a process-wide monotonic clock. Instrumentation sites pay a
// single null-pointer (or thread_local) check when tracing is disabled:
// every hook takes the form
//
//   if (tracer != nullptr) { ...record... }
//
// so an untraced Run() executes the exact pre-instrumentation code path.
// The RAII TraceScope times a region and appends one complete ("X")
// event on destruction; nested scopes on the same thread produce
// properly nested intervals, which the Chrome trace exporter (see
// chrome_trace.h) renders as a flame graph.
//
// The eager interpreter has no Run()-shaped entry point to thread a
// tracer through, so it consults a per-thread current tracer installed
// by TracerInstallScope (AutoGraph::CallEager does this when given
// RunOptions with tracing enabled).
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace ag::obs {

// Nanoseconds on the process-wide monotonic clock (steady_clock, offset
// so that early events don't start at huge absolute values).
[[nodiscard]] int64_t NowNs();

// Stable small integer id for the calling thread (first-come order).
[[nodiscard]] uint64_t CurrentThreadId();

// Registers a display name for the calling thread (e.g. the runtime's
// pool workers register "agrt-worker-N"). Named threads render as named
// rows in the Chrome trace; unnamed threads keep their numeric tid row,
// so traces from purely sequential runs are unchanged.
void SetCurrentThreadName(std::string name);

// The registered name for `thread_id`, or "" if none. Thread-safe.
[[nodiscard]] std::string ThreadName(uint64_t thread_id);

enum class EventKind : uint8_t {
  kComplete,  // a timed interval [start_ns, start_ns + dur_ns]
  kCounter,   // a sampled counter value at start_ns
  kInstant,   // a zero-duration marker at start_ns
};

struct TraceEvent {
  std::string name;      // op / node / phase name
  std::string category;  // "op", "eager", "lantern", "phase", ...
  EventKind kind = EventKind::kComplete;
  int64_t start_ns = 0;  // NowNs() timebase
  int64_t dur_ns = 0;    // kComplete only
  int64_t value = 0;     // kCounter only
  uint64_t thread_id = 0;
};

// Thread-safe trace buffer.
class Tracer {
 public:
  void AddComplete(std::string name, std::string category, int64_t start_ns,
                   int64_t end_ns);
  void AddCounter(std::string name, std::string category, int64_t value);
  void AddInstant(std::string name, std::string category);

  [[nodiscard]] size_t size() const;
  // Snapshot of all events recorded so far.
  [[nodiscard]] std::vector<TraceEvent> Snapshot() const;
  // Moves the events out, leaving the buffer empty.
  [[nodiscard]] std::vector<TraceEvent> Take();

 private:
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
};

// Times a region; appends one kComplete event when `tracer` is non-null,
// does nothing at all when it is null.
class TraceScope {
 public:
  TraceScope(Tracer* tracer, const char* name, const char* category)
      : tracer_(tracer), name_(name), category_(category) {
    if (tracer_ != nullptr) start_ns_ = NowNs();
  }
  TraceScope(Tracer* tracer, std::string name, const char* category)
      : tracer_(tracer), owned_name_(std::move(name)), category_(category) {
    if (tracer_ != nullptr) start_ns_ = NowNs();
  }
  ~TraceScope() {
    if (tracer_ != nullptr) {
      tracer_->AddComplete(name_ != nullptr ? name_ : owned_name_, category_,
                           start_ns_, NowNs());
    }
  }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  Tracer* tracer_;
  const char* name_ = nullptr;
  std::string owned_name_;
  const char* category_;
  int64_t start_ns_ = 0;
};

// ---- per-thread current tracer (eager instrumentation hook) ----

// The tracer eager dispatch sites should record into, or nullptr when
// eager tracing is off (the common case: one thread_local load).
[[nodiscard]] Tracer* CurrentTracer();

// Installs `tracer` as the calling thread's current tracer for the
// scope's lifetime, restoring the previous one on exit.
class TracerInstallScope {
 public:
  explicit TracerInstallScope(Tracer* tracer);
  ~TracerInstallScope();
  TracerInstallScope(const TracerInstallScope&) = delete;
  TracerInstallScope& operator=(const TracerInstallScope&) = delete;

 private:
  Tracer* previous_;
};

}  // namespace ag::obs
