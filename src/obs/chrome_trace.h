// Chrome trace-event JSON export (chrome://tracing / Perfetto).
//
// Events are emitted in the "JSON object format": {"traceEvents": [...]}
// with complete ("X"), counter ("C") and instant ("i") phases.
// Timestamps are microseconds, rebased so the earliest event starts at 0.
//
// ValidateChromeTraceJson is a deliberately strict structural parser
// used by tests and the agprof CLI to round-trip check exported traces
// without a JSON library dependency.
#pragma once

#include <string>
#include <vector>

#include "obs/run_metadata.h"
#include "obs/trace.h"

namespace ag::obs {

[[nodiscard]] std::string ToChromeTraceJson(
    const std::vector<TraceEvent>& events);

// Exports `meta.trace_events`; phase timings are appended as instant
// metadata events so they show up on the timeline.
[[nodiscard]] std::string ToChromeTraceJson(const RunMetadata& meta);

// Parses `json` as a Chrome trace-event object. Returns true and the
// number of events in `traceEvents` on success; on failure returns
// false with a diagnostic in `error` (both out-params may be null).
[[nodiscard]] bool ValidateChromeTraceJson(const std::string& json,
                                           std::string* error,
                                           int* num_events);

}  // namespace ag::obs
