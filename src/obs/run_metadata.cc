#include "obs/run_metadata.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace ag::obs {

namespace {

std::string FormatNs(int64_t ns) {
  std::ostringstream os;
  os << std::fixed;
  if (ns >= 1000000000) {
    os << std::setprecision(3) << static_cast<double>(ns) / 1e9 << " s";
  } else if (ns >= 1000000) {
    os << std::setprecision(3) << static_cast<double>(ns) / 1e6 << " ms";
  } else {
    os << std::setprecision(3) << static_cast<double>(ns) / 1e3 << " us";
  }
  return os.str();
}

// Roofline rates from cumulative counters: bytes/ns is exactly GB/s and
// flops/ns exactly GFLOP/s, so no unit constant is needed. Returns "-"
// when the numerator is unknown (0) so absent estimates don't print as
// an impossibly slow kernel.
std::string FormatRate(int64_t amount, int64_t total_ns) {
  if (amount <= 0 || total_ns <= 0) return "-";
  std::ostringstream os;
  os << std::fixed << std::setprecision(2)
     << static_cast<double>(amount) / static_cast<double>(total_ns);
  return os.str();
}

}  // namespace

std::string NodeStats::DebugString() const {
  std::ostringstream os;
  os << name << " (" << op << "): count=" << count
     << " total=" << FormatNs(total_ns) << " bytes=" << output_bytes
     << " allocs=" << alloc_count
     << " gflops=" << FormatRate(flops, total_ns)
     << " gbs=" << FormatRate(input_bytes + output_bytes, total_ns);
  if (!backend.empty()) os << " backend=" << backend;
  return os.str();
}

int64_t StepStats::TotalNodeExecutions() const {
  int64_t total = 0;
  for (const NodeStats& n : nodes) total += n.count;
  return total;
}

int64_t StepStats::TotalNodeNs() const {
  int64_t total = 0;
  for (const NodeStats& n : nodes) total += n.total_ns;
  return total;
}

void RunMetadata::Merge(const RunMetadata& other) {
  std::map<std::pair<std::string, std::string>, size_t> index;
  for (size_t i = 0; i < step_stats.nodes.size(); ++i) {
    const NodeStats& n = step_stats.nodes[i];
    index[{n.name, n.op}] = i;
  }
  for (const NodeStats& n : other.step_stats.nodes) {
    auto it = index.find({n.name, n.op});
    if (it == index.end()) {
      index[{n.name, n.op}] = step_stats.nodes.size();
      step_stats.nodes.push_back(n);
    } else {
      NodeStats& mine = step_stats.nodes[it->second];
      mine.count += n.count;
      mine.total_ns += n.total_ns;
      mine.output_bytes += n.output_bytes;
      mine.alloc_count += n.alloc_count;
      mine.flops += n.flops;
      mine.input_bytes += n.input_bytes;
      if (!n.backend.empty()) mine.backend = n.backend;
    }
  }
  trace_events.insert(trace_events.end(), other.trace_events.begin(),
                      other.trace_events.end());
  for (const auto& [phase, ns] : other.phase_ns) phase_ns[phase] += ns;
  while_iterations += other.while_iterations;
  cond_true_taken += other.cond_true_taken;
  cond_false_taken += other.cond_false_taken;
  runs += other.runs;
  run_wall_ns += other.run_wall_ns;
  interrupted_runs += other.interrupted_runs;
  if (!other.interrupt_kind.empty()) interrupt_kind = other.interrupt_kind;
  unwind_ns += other.unwind_ns;
  unwind_samples_ns.insert(unwind_samples_ns.end(),
                           other.unwind_samples_ns.begin(),
                           other.unwind_samples_ns.end());
  queue_wait_ns += other.queue_wait_ns;
  batched_runs += other.batched_runs;
  batch_requests += other.batch_requests;
  batch_size_max = std::max(batch_size_max, other.batch_size_max);
  alloc_count += other.alloc_count;
  alloc_bytes += other.alloc_bytes;
  pool_hit_count += other.pool_hit_count;
  peak_live_bytes = std::max(peak_live_bytes, other.peak_live_bytes);
}

std::string RunMetadata::DebugString() const {
  std::ostringstream os;
  os << "RunMetadata: runs=" << runs << " wall=" << FormatNs(run_wall_ns)
     << " node_execs=" << step_stats.TotalNodeExecutions()
     << " while_iters=" << while_iterations << " cond_taken=["
     << cond_true_taken << " true, " << cond_false_taken << " false]\n";
  if (interrupted_runs > 0) {
    os << "interrupted: " << interrupted_runs << " run(s), last="
       << interrupt_kind << " unwind=" << FormatNs(unwind_ns) << "\n";
  }
  if (queue_wait_ns > 0 || batched_runs > 0) {
    os << "serving: queue_wait=" << FormatNs(queue_wait_ns);
    if (batched_runs > 0) {
      os << " batched_runs=" << batched_runs
         << " batch_requests=" << batch_requests << " avg_batch="
         << (batch_requests + batched_runs / 2) / batched_runs
         << " max_batch=" << batch_size_max;
    }
    os << "\n";
  }
  if (alloc_count > 0 || pool_hit_count > 0) {
    const int64_t requests = alloc_count + pool_hit_count;
    os << "alloc: fresh=" << alloc_count << " (" << alloc_bytes
       << " bytes) pool_hits=" << pool_hit_count << " hit_rate="
       << (requests > 0 ? (100 * pool_hit_count + requests / 2) / requests : 0)
       << "% peak_live=" << peak_live_bytes << " bytes\n";
  }
  if (!phase_ns.empty()) {
    os << "phases:";
    for (const auto& [phase, ns] : phase_ns) {
      os << " " << phase << "=" << FormatNs(ns);
    }
    os << "\n";
  }
  if (!step_stats.nodes.empty()) {
    std::vector<const NodeStats*> sorted;
    sorted.reserve(step_stats.nodes.size());
    for (const NodeStats& n : step_stats.nodes) sorted.push_back(&n);
    std::sort(sorted.begin(), sorted.end(),
              [](const NodeStats* a, const NodeStats* b) {
                return a->total_ns > b->total_ns;
              });
    const int64_t total = std::max<int64_t>(1, step_stats.TotalNodeNs());
    os << std::left << std::setw(28) << "node" << std::setw(20) << "op"
       << std::right << std::setw(10) << "count" << std::setw(14) << "total"
       << std::setw(12) << "avg" << std::setw(8) << "%" << std::setw(14)
       << "bytes" << std::setw(10) << "allocs" << std::setw(10) << "gflops"
       << std::setw(9) << "gbs" << "  " << std::left << "backend" << "\n";
    for (const NodeStats* n : sorted) {
      std::string name = n->name.size() > 26 ? n->name.substr(0, 26) : n->name;
      os << std::left << std::setw(28) << name << std::setw(20) << n->op
         << std::right << std::setw(10) << n->count << std::setw(14)
         << FormatNs(n->total_ns) << std::setw(12)
         << FormatNs(n->count > 0 ? n->total_ns / n->count : 0)
         << std::setw(7)
         << (100 * n->total_ns + total / 2) / total << "%" << std::setw(14)
         << n->output_bytes << std::setw(10) << n->alloc_count
         << std::setw(10) << FormatRate(n->flops, n->total_ns) << std::setw(9)
         << FormatRate(n->input_bytes + n->output_bytes, n->total_ns) << "  "
         << std::left << (n->backend.empty() ? "-" : n->backend) << "\n";
    }
  }
  return os.str();
}

void AggregateEvents(const std::vector<TraceEvent>& events,
                     StepStats* stats) {
  std::map<std::pair<std::string, std::string>, size_t> index;
  for (size_t i = 0; i < stats->nodes.size(); ++i) {
    index[{stats->nodes[i].name, stats->nodes[i].op}] = i;
  }
  for (const TraceEvent& e : events) {
    if (e.kind != EventKind::kComplete) continue;
    auto [it, inserted] =
        index.emplace(std::make_pair(e.name, e.category), stats->nodes.size());
    if (inserted) {
      NodeStats n;
      n.name = e.name;
      n.op = e.category;
      stats->nodes.push_back(std::move(n));
    }
    NodeStats& n = stats->nodes[it->second];
    ++n.count;
    n.total_ns += e.dur_ns;
  }
}

void RunRecorder::RecordNode(const std::string& name, const std::string& op,
                             int64_t start_ns, int64_t end_ns,
                             int64_t output_bytes, int64_t alloc_count,
                             int64_t flops, int64_t input_bytes,
                             const std::string& backend) {
  if (options_.trace) {
    tracer_.AddComplete(name + " (" + op + ")", "op", start_ns, end_ns);
  }
  if (!options_.step_stats) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = index_.emplace(std::make_pair(name, op),
                                       stats_.nodes.size());
  if (inserted) {
    NodeStats n;
    n.name = name;
    n.op = op;
    stats_.nodes.push_back(std::move(n));
  }
  NodeStats& n = stats_.nodes[it->second];
  ++n.count;
  n.total_ns += end_ns - start_ns;
  n.output_bytes += output_bytes;
  n.alloc_count += alloc_count;
  n.flops += flops;
  n.input_bytes += input_bytes;
  if (!backend.empty()) n.backend = backend;
}

void RunRecorder::RecordPhase(const std::string& phase, int64_t dur_ns) {
  std::lock_guard<std::mutex> lock(mu_);
  phase_ns_[phase] += dur_ns;
}

void RunRecorder::CountWhileIteration() {
  std::lock_guard<std::mutex> lock(mu_);
  ++while_iterations_;
}

void RunRecorder::CountCondBranch(bool taken) {
  std::lock_guard<std::mutex> lock(mu_);
  if (taken) {
    ++cond_true_;
  } else {
    ++cond_false_;
  }
}

void RunRecorder::Finish(RunMetadata* meta) {
  if (meta == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  RunMetadata delta;
  delta.step_stats = std::move(stats_);
  stats_.nodes.clear();
  if (options_.trace) delta.trace_events = tracer_.Take();
  delta.phase_ns = std::move(phase_ns_);
  phase_ns_.clear();
  delta.while_iterations = while_iterations_;
  delta.cond_true_taken = cond_true_;
  delta.cond_false_taken = cond_false_;
  meta->Merge(delta);
}

}  // namespace ag::obs
