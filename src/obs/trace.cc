#include "obs/trace.h"

#include <atomic>
#include <chrono>
#include <map>
#include <utility>

namespace ag::obs {

namespace {

int64_t SteadyNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

thread_local Tracer* t_current_tracer = nullptr;

}  // namespace

int64_t NowNs() {
  // Anchor the timebase at first use so exported timestamps stay small.
  static const int64_t kEpoch = SteadyNs();
  return SteadyNs() - kEpoch;
}

uint64_t CurrentThreadId() {
  static std::atomic<uint64_t> next{1};
  thread_local const uint64_t id = next.fetch_add(1);
  return id;
}

namespace {

// tid -> display name. Never destroyed: pool workers may register during
// static destruction ordering we don't control.
std::mutex& ThreadNameMu() {
  static auto* mu = new std::mutex();
  return *mu;
}
std::map<uint64_t, std::string>& ThreadNames() {
  static auto* names = new std::map<uint64_t, std::string>();
  return *names;
}

}  // namespace

void SetCurrentThreadName(std::string name) {
  const uint64_t id = CurrentThreadId();
  std::lock_guard<std::mutex> lock(ThreadNameMu());
  ThreadNames()[id] = std::move(name);
}

std::string ThreadName(uint64_t thread_id) {
  std::lock_guard<std::mutex> lock(ThreadNameMu());
  auto it = ThreadNames().find(thread_id);
  return it == ThreadNames().end() ? std::string() : it->second;
}

void Tracer::AddComplete(std::string name, std::string category,
                         int64_t start_ns, int64_t end_ns) {
  TraceEvent e;
  e.name = std::move(name);
  e.category = std::move(category);
  e.kind = EventKind::kComplete;
  e.start_ns = start_ns;
  e.dur_ns = end_ns - start_ns;
  e.thread_id = CurrentThreadId();
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(e));
}

void Tracer::AddCounter(std::string name, std::string category,
                        int64_t value) {
  TraceEvent e;
  e.name = std::move(name);
  e.category = std::move(category);
  e.kind = EventKind::kCounter;
  e.start_ns = NowNs();
  e.value = value;
  e.thread_id = CurrentThreadId();
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(e));
}

void Tracer::AddInstant(std::string name, std::string category) {
  TraceEvent e;
  e.name = std::move(name);
  e.category = std::move(category);
  e.kind = EventKind::kInstant;
  e.start_ns = NowNs();
  e.thread_id = CurrentThreadId();
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(e));
}

size_t Tracer::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::vector<TraceEvent> Tracer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::vector<TraceEvent> Tracer::Take() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> out = std::move(events_);
  events_.clear();
  return out;
}

Tracer* CurrentTracer() { return t_current_tracer; }

TracerInstallScope::TracerInstallScope(Tracer* tracer)
    : previous_(t_current_tracer) {
  t_current_tracer = tracer;
}

TracerInstallScope::~TracerInstallScope() { t_current_tracer = previous_; }

}  // namespace ag::obs
