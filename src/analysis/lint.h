// aglint: staging-safety diagnostics over PyMini source (ahead of
// conversion).
//
// AutoGraph's worst failure modes surface as opaque staging-time
// exceptions deep inside ag::If / ag::While (paper Appendix B classifies
// them). Every one of them is statically detectable in the imperative
// source, with a user-source location, before conversion begins:
//
//   AG001  maybe-undefined: a variable read that is defined on only some
//          control-flow paths (the classic "undefined symbol in
//          functional form" error at staging time).
//   AG002  branch mismatch: an `if` whose branches bind a threaded
//          variable to conflicting dtypes/kinds or shapes (tf.cond
//          requires branch outputs to agree).
//   AG003  loop-variant: a `while`/`for` body that changes a loop
//          variable's dtype or shape between iterations (tf.while_loop
//          requires loop-variable invariance).
//   AG004  hidden side effect: a compound-target (`a.b`) or subscript
//          write inside potentially-staged control flow — functional
//          form cannot thread it, so the write is silently lost when the
//          construct stages.
//   AG005  recursion: a function (transitively) calling itself — the TF
//          graph IR cannot express re-entrant staged functions; the
//          Lantern backend can.
//   AG006  unreachable code after return/break/continue.
//   AG007  dead store: a value assigned to a plain local that no path
//          reads before it is rewritten or the function exits — at
//          staging time the discarded expression still traces graph
//          ops, and it usually marks a logic slip (e.g. computing a
//          new loop state and forgetting to thread it).
//
// Severities: AG001-AG003 and AG005-on-TF are errors; AG004, AG006 and
// AG007 are warnings; AG005 on a re-entrant backend is an informational
// note.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "lang/ast.h"
#include "support/error.h"
#include "support/pass_pipeline.h"

namespace ag::analysis {

enum class Severity : std::uint8_t { kInfo, kWarning, kError };

[[nodiscard]] const char* SeverityName(Severity severity);

// One structured, source-located finding.
struct Diagnostic {
  Severity severity = Severity::kWarning;
  std::string code;     // "AG001" ... "AG006"
  std::string message;  // one line, names the offending symbol
  SourceLocation location;  // 1-based user-source line/column
  std::string note;     // optional remediation hint ("" when absent)

  // "file:line:col: error: [AG001] message" (+ "\n  note: ..." if set).
  [[nodiscard]] std::string str() const;
};

// Which staging backend the lint is targeting; AG005's severity depends
// on whether the backend can express recursion.
enum class LintBackend : std::uint8_t { kTF, kLantern };

struct LintOptions {
  LintBackend backend = LintBackend::kTF;
  // Which AG checks run, as a pipeline spec over the diagnostic codes —
  // the same grammar as --passes= at the other tools ("-AG007" drops
  // dead-store hints, "AG001,AG004" runs exactly those two). All codes
  // are default-enabled; unknown codes are a ValueError.
  PipelineSpec checks;
};

// Throws ValueError when `checks` names a code outside AG001..AG007
// (the "default" token is always accepted).
void ValidateChecksSpec(const PipelineSpec& checks);

// Lints a single function definition: AG001-AG004, AG006, and
// self-recursion for AG005. Results are ordered by source line.
[[nodiscard]] std::vector<Diagnostic> LintFunction(
    const std::shared_ptr<lang::FunctionDefStmt>& fn,
    const LintOptions& options = {});

// Lints every function in a module plus cross-function (mutual)
// recursion over the module's call graph.
[[nodiscard]] std::vector<Diagnostic> LintModule(
    const lang::ModulePtr& module, const LintOptions& options = {});

// True if any diagnostic has severity kError.
[[nodiscard]] bool HasErrors(const std::vector<Diagnostic>& diagnostics);

// Converts a diagnostic into the ConversionError raised when
// ConversionOptions::lint_mode == kError, carrying the user-source frame.
[[nodiscard]] Error ToConversionError(const Diagnostic& diagnostic,
                                      const std::string& function_name);

}  // namespace ag::analysis
