// Abstract value facts for staging-safety diagnostics (aglint).
//
// A TypeFact describes what is statically known about the value a symbol
// holds at a program point: its kind (python int/float/bool/..., or
// tensor), and — for tensors — its dtype and shape. Facts form a flat
// lattice per component:
//
//   kBottom (no path reached / nothing known yet)
//     < concrete value
//       < kTop (conflicting or unknowable)
//
// Join (least upper bound) is taken at CFG merge points. Two facts
// *conflict* when both are concrete and disagree — that is exactly the
// situation in which staging `tf.cond` / `tf.while_loop` raises an
// opaque error, and what the lint passes report ahead of time.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace ag::analysis {

// The kind of value a symbol holds. kTensor facts are refined further by
// a dtype and shape component.
enum class TypeKind : std::uint8_t {
  kBottom,  // unreached / unknown-yet
  kInt,
  kFloat,
  kBool,
  kStr,
  kNone,
  kList,
  kTuple,
  kFunc,
  kTensor,
  kTop,  // any value / conflicting kinds
};

[[nodiscard]] const char* TypeKindName(TypeKind kind);

// Flat lattice over tensor dtypes.
enum class DTypeFact : std::uint8_t {
  kBottom,
  kFloat32,
  kInt32,
  kBoolDType,
  kTop,
};

[[nodiscard]] DTypeFact DTypeFactOf(DType dtype);
[[nodiscard]] const char* DTypeFactName(DTypeFact dtype);

// Flat lattice over tensor shapes: unknown-yet, a known rank with
// possibly-unknown dims (-1), or "varies" (top).
struct ShapeFact {
  enum class State : std::uint8_t { kBottom, kKnown, kTop };

  State state = State::kBottom;
  std::vector<int64_t> dims;  // valid iff state == kKnown; -1 = unknown dim

  [[nodiscard]] static ShapeFact Known(std::vector<int64_t> dims);
  [[nodiscard]] static ShapeFact Scalar() { return Known({}); }
  [[nodiscard]] static ShapeFact Top();

  // Least upper bound: equal ranks join dim-wise (mismatched dims -> -1);
  // different ranks (or any top) -> top.
  [[nodiscard]] static ShapeFact Join(const ShapeFact& a, const ShapeFact& b);

  // True when both shapes are known and cannot describe the same tensor:
  // different ranks, or a dim concretely disagreeing.
  [[nodiscard]] bool ConflictsWith(const ShapeFact& other) const;

  [[nodiscard]] std::string str() const;

  friend bool operator==(const ShapeFact& a, const ShapeFact& b) {
    return a.state == b.state && a.dims == b.dims;
  }
  friend bool operator!=(const ShapeFact& a, const ShapeFact& b) {
    return !(a == b);
  }
};

// What is known about one symbol's value.
struct TypeFact {
  TypeKind kind = TypeKind::kBottom;
  // Tensor refinements; meaningful only when kind == kTensor.
  DTypeFact dtype = DTypeFact::kBottom;
  ShapeFact shape;

  [[nodiscard]] static TypeFact Bottom() { return {}; }
  [[nodiscard]] static TypeFact Top();
  [[nodiscard]] static TypeFact Of(TypeKind kind);
  [[nodiscard]] static TypeFact Tensor(DTypeFact dtype, ShapeFact shape);

  [[nodiscard]] bool IsConcrete() const {
    return kind != TypeKind::kBottom && kind != TypeKind::kTop;
  }

  [[nodiscard]] static TypeFact Join(const TypeFact& a, const TypeFact& b);

  // Dtype-level disagreement: both facts concrete and either of different
  // kinds (int vs tensor, ...) or tensors of concretely different dtypes.
  [[nodiscard]] bool DTypeConflictsWith(const TypeFact& other) const;
  // Shape-level disagreement between two tensor facts.
  [[nodiscard]] bool ShapeConflictsWith(const TypeFact& other) const;

  // Rendered for diagnostics: "int", "float32[2,3]", "float32[?]", ...
  [[nodiscard]] std::string str() const;

  friend bool operator==(const TypeFact& a, const TypeFact& b) {
    return a.kind == b.kind && a.dtype == b.dtype && a.shape == b.shape;
  }
  friend bool operator!=(const TypeFact& a, const TypeFact& b) {
    return !(a == b);
  }
};

// Symbol -> fact environment flowed through the abstract interpreter.
using TypeEnv = std::map<std::string, TypeFact>;

// Pointwise join; a symbol missing from one side keeps the other side's
// fact (missing == bottom).
[[nodiscard]] TypeEnv JoinEnvs(const TypeEnv& a, const TypeEnv& b);

}  // namespace ag::analysis
