// Reaching definitions (paper §7.1): forward dataflow identifying, at the
// entry of every statement, which symbols are *definitely* defined
// (intersection over all paths) and which *may* be defined (union).
//
// The control-flow conversion pass uses the gap between the two to decide
// which symbols must be reified with the special "Undefined" value before
// a functionalized if/while (paper §7.2, Control Flow).
#pragma once

#include <set>
#include <string>
#include <vector>

#include "analysis/cfg.h"

namespace ag::analysis {

class ReachingDefinitions {
 public:
  explicit ReachingDefinitions(const ControlFlowGraph& cfg);

  // Symbols defined on every path reaching the entry of `stmt`.
  [[nodiscard]] const std::set<std::string>& DefinitelyDefinedIn(
      const lang::Stmt* stmt) const;
  // Symbols defined on at least one path reaching the entry of `stmt`.
  [[nodiscard]] const std::set<std::string>& MaybeDefinedIn(
      const lang::Stmt* stmt) const;
  // Same, at the point just after the whole statement.
  [[nodiscard]] const std::set<std::string>& DefinitelyDefinedOut(
      const lang::Stmt* stmt) const;

 private:
  const ControlFlowGraph& cfg_;
  std::vector<std::set<std::string>> must_in_;  // intersection analysis
  std::vector<std::set<std::string>> may_in_;   // union analysis
};

}  // namespace ag::analysis
