#include "analysis/type_lattice.h"

#include <sstream>

namespace ag::analysis {

const char* TypeKindName(TypeKind kind) {
  switch (kind) {
    case TypeKind::kBottom: return "<unreached>";
    case TypeKind::kInt: return "int";
    case TypeKind::kFloat: return "float";
    case TypeKind::kBool: return "bool";
    case TypeKind::kStr: return "str";
    case TypeKind::kNone: return "None";
    case TypeKind::kList: return "list";
    case TypeKind::kTuple: return "tuple";
    case TypeKind::kFunc: return "function";
    case TypeKind::kTensor: return "tensor";
    case TypeKind::kTop: return "<any>";
  }
  return "<?>";
}

DTypeFact DTypeFactOf(DType dtype) {
  switch (dtype) {
    case DType::kFloat32: return DTypeFact::kFloat32;
    case DType::kInt32: return DTypeFact::kInt32;
    case DType::kBool: return DTypeFact::kBoolDType;
    // int8 only exists post-staging (the quantize_weights pass); PyMini
    // programs never see it, so the abstract interpreter has no fact.
    case DType::kInt8: return DTypeFact::kTop;
  }
  return DTypeFact::kTop;
}

const char* DTypeFactName(DTypeFact dtype) {
  switch (dtype) {
    case DTypeFact::kBottom: return "<unreached>";
    case DTypeFact::kFloat32: return "float32";
    case DTypeFact::kInt32: return "int32";
    case DTypeFact::kBoolDType: return "bool";
    case DTypeFact::kTop: return "<any>";
  }
  return "<?>";
}

ShapeFact ShapeFact::Known(std::vector<int64_t> dims) {
  ShapeFact f;
  f.state = State::kKnown;
  f.dims = std::move(dims);
  return f;
}

ShapeFact ShapeFact::Top() {
  ShapeFact f;
  f.state = State::kTop;
  return f;
}

ShapeFact ShapeFact::Join(const ShapeFact& a, const ShapeFact& b) {
  if (a.state == State::kBottom) return b;
  if (b.state == State::kBottom) return a;
  if (a.state == State::kTop || b.state == State::kTop) return Top();
  if (a.dims.size() != b.dims.size()) return Top();
  ShapeFact out;
  out.state = State::kKnown;
  out.dims.reserve(a.dims.size());
  for (size_t i = 0; i < a.dims.size(); ++i) {
    out.dims.push_back(a.dims[i] == b.dims[i] ? a.dims[i] : -1);
  }
  return out;
}

bool ShapeFact::ConflictsWith(const ShapeFact& other) const {
  if (state != State::kKnown || other.state != State::kKnown) return false;
  if (dims.size() != other.dims.size()) return true;
  for (size_t i = 0; i < dims.size(); ++i) {
    if (dims[i] >= 0 && other.dims[i] >= 0 && dims[i] != other.dims[i]) {
      return true;
    }
  }
  return false;
}

std::string ShapeFact::str() const {
  switch (state) {
    case State::kBottom: return "<unreached>";
    case State::kTop: return "[?]";
    case State::kKnown: break;
  }
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < dims.size(); ++i) {
    if (i > 0) os << ",";
    if (dims[i] < 0) {
      os << "?";
    } else {
      os << dims[i];
    }
  }
  os << "]";
  return os.str();
}

TypeFact TypeFact::Top() {
  TypeFact f;
  f.kind = TypeKind::kTop;
  f.dtype = DTypeFact::kTop;
  f.shape = ShapeFact::Top();
  return f;
}

TypeFact TypeFact::Of(TypeKind kind) {
  TypeFact f;
  f.kind = kind;
  return f;
}

TypeFact TypeFact::Tensor(DTypeFact dtype, ShapeFact shape) {
  TypeFact f;
  f.kind = TypeKind::kTensor;
  f.dtype = dtype;
  f.shape = std::move(shape);
  return f;
}

TypeFact TypeFact::Join(const TypeFact& a, const TypeFact& b) {
  if (a.kind == TypeKind::kBottom) return b;
  if (b.kind == TypeKind::kBottom) return a;
  if (a.kind != b.kind) return Top();
  TypeFact out;
  out.kind = a.kind;
  if (a.kind == TypeKind::kTensor) {
    if (a.dtype == DTypeFact::kBottom) {
      out.dtype = b.dtype;
    } else if (b.dtype == DTypeFact::kBottom || a.dtype == b.dtype) {
      out.dtype = a.dtype;
    } else {
      out.dtype = DTypeFact::kTop;
    }
    out.shape = ShapeFact::Join(a.shape, b.shape);
  }
  return out;
}

bool TypeFact::DTypeConflictsWith(const TypeFact& other) const {
  if (!IsConcrete() || !other.IsConcrete()) return false;
  if (kind != other.kind) return true;
  if (kind != TypeKind::kTensor) return false;
  const bool both_concrete = dtype != DTypeFact::kBottom &&
                             dtype != DTypeFact::kTop &&
                             other.dtype != DTypeFact::kBottom &&
                             other.dtype != DTypeFact::kTop;
  return both_concrete && dtype != other.dtype;
}

bool TypeFact::ShapeConflictsWith(const TypeFact& other) const {
  if (kind != TypeKind::kTensor || other.kind != TypeKind::kTensor) {
    return false;
  }
  return shape.ConflictsWith(other.shape);
}

std::string TypeFact::str() const {
  if (kind != TypeKind::kTensor) return TypeKindName(kind);
  std::string out = DTypeFactName(dtype);
  if (shape.state != ShapeFact::State::kBottom) out += shape.str();
  return out;
}

TypeEnv JoinEnvs(const TypeEnv& a, const TypeEnv& b) {
  TypeEnv out = a;
  for (const auto& [name, fact] : b) {
    auto it = out.find(name);
    if (it == out.end()) {
      out[name] = fact;
    } else {
      it->second = TypeFact::Join(it->second, fact);
    }
  }
  return out;
}

}  // namespace ag::analysis
