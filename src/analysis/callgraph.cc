#include "analysis/callgraph.h"

#include <algorithm>
#include <functional>

#include "support/strings.h"

namespace ag::analysis {

using lang::Cast;
using lang::ExprKind;
using lang::ExprPtr;
using lang::StmtKind;
using lang::StmtList;
using lang::StmtPtr;

namespace {

// Collects every FunctionDefStmt in `body`, recursing into nested defs
// and compound statements.
void CollectDefs(const StmtList& body,
                 std::vector<const lang::FunctionDefStmt*>* out) {
  for (const StmtPtr& s : body) {
    switch (s->kind) {
      case StmtKind::kFunctionDef: {
        auto f = Cast<lang::FunctionDefStmt>(s);
        out->push_back(f.get());
        CollectDefs(f->body, out);
        break;
      }
      case StmtKind::kIf: {
        auto i = Cast<lang::IfStmt>(s);
        CollectDefs(i->body, out);
        CollectDefs(i->orelse, out);
        break;
      }
      case StmtKind::kWhile:
        CollectDefs(Cast<lang::WhileStmt>(s)->body, out);
        break;
      case StmtKind::kFor:
        CollectDefs(Cast<lang::ForStmt>(s)->body, out);
        break;
      default:
        break;
    }
  }
}

class EdgeCollector {
 public:
  EdgeCollector(const std::set<std::string>& functions,
                std::vector<CallGraph::Edge>* edges)
      : functions_(functions), edges_(edges) {}

  void WalkBody(const std::string& caller, const StmtList& body) {
    for (const StmtPtr& s : body) WalkStmt(caller, s);
  }

 private:
  void WalkStmt(const std::string& caller, const StmtPtr& s) {
    switch (s->kind) {
      case StmtKind::kFunctionDef:
        // Nested defs are their own caller; CallGraph::Build walks them.
        return;
      case StmtKind::kReturn:
        WalkExpr(caller, Cast<lang::ReturnStmt>(s)->value);
        return;
      case StmtKind::kAssign: {
        auto a = Cast<lang::AssignStmt>(s);
        WalkExpr(caller, a->target);
        WalkExpr(caller, a->value);
        return;
      }
      case StmtKind::kAugAssign: {
        auto a = Cast<lang::AugAssignStmt>(s);
        WalkExpr(caller, a->target);
        WalkExpr(caller, a->value);
        return;
      }
      case StmtKind::kExprStmt:
        WalkExpr(caller, Cast<lang::ExprStmt>(s)->value);
        return;
      case StmtKind::kIf: {
        auto i = Cast<lang::IfStmt>(s);
        WalkExpr(caller, i->test);
        WalkBody(caller, i->body);
        WalkBody(caller, i->orelse);
        return;
      }
      case StmtKind::kWhile: {
        auto w = Cast<lang::WhileStmt>(s);
        WalkExpr(caller, w->test);
        WalkBody(caller, w->body);
        return;
      }
      case StmtKind::kFor: {
        auto f = Cast<lang::ForStmt>(s);
        WalkExpr(caller, f->iter);
        WalkBody(caller, f->body);
        return;
      }
      case StmtKind::kAssert: {
        auto a = Cast<lang::AssertStmt>(s);
        WalkExpr(caller, a->test);
        WalkExpr(caller, a->msg);
        return;
      }
      case StmtKind::kBreak:
      case StmtKind::kContinue:
      case StmtKind::kPass:
        return;
    }
  }

  void WalkExpr(const std::string& caller, const ExprPtr& e) {
    if (!e) return;
    switch (e->kind) {
      case ExprKind::kCall: {
        auto c = Cast<lang::CallExpr>(e);
        if (auto qn = lang::QualifiedName(c->func);
            qn && functions_.count(*qn) > 0) {
          const SourceLocation& loc =
              e->origin.valid() ? e->origin : e->loc;
          edges_->push_back({caller, *qn, loc});
        }
        WalkExpr(caller, c->func);
        for (const ExprPtr& a : c->args) WalkExpr(caller, a);
        for (const lang::Keyword& kw : c->keywords) {
          WalkExpr(caller, kw.value);
        }
        return;
      }
      case ExprKind::kTuple:
        for (const ExprPtr& x : Cast<lang::TupleExpr>(e)->elts) {
          WalkExpr(caller, x);
        }
        return;
      case ExprKind::kList:
        for (const ExprPtr& x : Cast<lang::ListExpr>(e)->elts) {
          WalkExpr(caller, x);
        }
        return;
      case ExprKind::kAttribute:
        WalkExpr(caller, Cast<lang::AttributeExpr>(e)->value);
        return;
      case ExprKind::kSubscript: {
        auto s = Cast<lang::SubscriptExpr>(e);
        WalkExpr(caller, s->value);
        WalkExpr(caller, s->index);
        return;
      }
      case ExprKind::kUnary:
        WalkExpr(caller, Cast<lang::UnaryExpr>(e)->operand);
        return;
      case ExprKind::kBinary: {
        auto b = Cast<lang::BinaryExpr>(e);
        WalkExpr(caller, b->left);
        WalkExpr(caller, b->right);
        return;
      }
      case ExprKind::kCompare: {
        auto c = Cast<lang::CompareExpr>(e);
        WalkExpr(caller, c->left);
        WalkExpr(caller, c->right);
        return;
      }
      case ExprKind::kBoolOp: {
        auto b = Cast<lang::BoolOpExpr>(e);
        WalkExpr(caller, b->left);
        WalkExpr(caller, b->right);
        return;
      }
      case ExprKind::kIfExp: {
        auto i = Cast<lang::IfExpExpr>(e);
        WalkExpr(caller, i->test);
        WalkExpr(caller, i->body);
        WalkExpr(caller, i->orelse);
        return;
      }
      case ExprKind::kLambda:
        WalkExpr(caller, Cast<lang::LambdaExpr>(e)->body);
        return;
      case ExprKind::kName:
      case ExprKind::kNumber:
      case ExprKind::kString:
      case ExprKind::kBool:
      case ExprKind::kNone:
        return;
    }
  }

  const std::set<std::string>& functions_;
  std::vector<CallGraph::Edge>* edges_;
};

}  // namespace

std::string CallGraph::Cycle::str() const {
  std::vector<std::string> parts = path;
  parts.push_back(path.front());
  return Join(parts, " -> ");
}

CallGraph CallGraph::Build(const StmtList& body) {
  CallGraph cg;
  std::vector<const lang::FunctionDefStmt*> defs;
  CollectDefs(body, &defs);
  for (const lang::FunctionDefStmt* def : defs) {
    cg.functions_.insert(def->name);
  }
  EdgeCollector collector(cg.functions_, &cg.edges_);
  for (const lang::FunctionDefStmt* def : defs) {
    collector.WalkBody(def->name, def->body);
  }
  for (const Edge& e : cg.edges_) {
    cg.out_edges_[e.caller].push_back(&e);
  }
  return cg;
}

std::vector<CallGraph::Cycle> CallGraph::FindRecursion() const {
  std::vector<Cycle> cycles;
  std::set<std::string> reported;  // canonical "a,b,c" member keys
  std::map<std::string, int> color;  // 0 white, 1 gray, 2 black
  std::vector<std::string> stack;

  // Iterative-by-recursion DFS; the graph is tiny (one node per def).
  std::function<void(const std::string&)> dfs =
      [&](const std::string& fn) {
        color[fn] = 1;
        stack.push_back(fn);
        auto it = out_edges_.find(fn);
        if (it != out_edges_.end()) {
          for (const Edge* e : it->second) {
            const int c = color[e->callee];
            if (c == 1) {
              // Back edge: the cycle is the stack suffix from the callee.
              auto pos = std::find(stack.begin(), stack.end(), e->callee);
              Cycle cycle;
              cycle.path.assign(pos, stack.end());
              cycle.loc = e->loc;
              std::vector<std::string> key = cycle.path;
              std::sort(key.begin(), key.end());
              if (reported.insert(Join(key, ",")).second) {
                cycles.push_back(std::move(cycle));
              }
            } else if (c == 0) {
              dfs(e->callee);
            }
          }
        }
        stack.pop_back();
        color[fn] = 2;
      };

  for (const std::string& fn : functions_) {
    if (color[fn] == 0) dfs(fn);
  }
  return cycles;
}

}  // namespace ag::analysis
