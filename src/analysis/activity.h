// Activity analysis (paper §7.1): for every statement, the set of symbols
// read and the set of symbols modified, using qualified names ("a.b").
//
// Matches the paper's semantics: "Only direct modifications are considered
// writes. For example, in the statement a.b = c, a.b is considered to be
// modified, but a is not." (The *root* `a` is still counted as read, since
// mutating a field requires the object.)
#pragma once

#include <set>
#include <string>
#include <unordered_map>

#include "lang/ast.h"

namespace ag::analysis {

// Read/modified sets for one statement (including its nested bodies).
struct Scope {
  std::set<std::string> read;
  std::set<std::string> modified;

  // Plain-name subset of `modified` (compound targets like "a.b" or
  // subscript writes excluded) — these are the symbols control-flow
  // functionalization can thread through functional form.
  [[nodiscard]] std::set<std::string> ModifiedNames() const;
};

// Computes scopes for every statement in `body`, recursively. Results are
// keyed by statement node identity, so they are invalidated by transforms
// that replace nodes (the pass manager re-runs analyses between passes).
class ActivityAnalysis {
 public:
  explicit ActivityAnalysis(const lang::StmtList& body);

  // Scope of one statement (must be a node within the analyzed body).
  [[nodiscard]] const Scope& ScopeFor(const lang::Stmt* stmt) const;

  // Aggregated scope over a statement list.
  [[nodiscard]] static Scope Aggregate(const ActivityAnalysis& analysis,
                                       const lang::StmtList& body);

 private:
  Scope Analyze(const lang::StmtPtr& stmt);
  Scope AnalyzeBody(const lang::StmtList& body);

  std::unordered_map<const lang::Stmt*, Scope> scopes_;
};

// ---- shared read/write extraction helpers (used by activity and CFG) ----

// Adds every symbol read by `expr` to `out` (qualified names for attribute
// chains; the root name of a qualified read is also added).
void CollectReads(const lang::ExprPtr& expr, std::set<std::string>* out);

// Adds symbols modified by assigning to `target`; reads performed while
// evaluating the target (e.g. the index in a[i] = ...) go to `reads`.
void CollectWrites(const lang::ExprPtr& target, std::set<std::string>* out,
                   std::set<std::string>* reads);

}  // namespace ag::analysis
