// Liveness analysis (paper §7.1): classic backward may-analysis over the
// CFG. A symbol is live at a point if some path from that point reads it
// before writing it.
//
// Clients use:
//   LiveIn(stmt)  — symbols live on entry to `stmt`;
//   LiveOut(stmt) — symbols live after the *entire* statement (for
//                   compounds this uses the synthetic exit node).
#pragma once

#include <set>
#include <string>
#include <vector>

#include "analysis/cfg.h"

namespace ag::analysis {

class Liveness {
 public:
  explicit Liveness(const ControlFlowGraph& cfg);

  [[nodiscard]] const std::set<std::string>& LiveIn(
      const lang::Stmt* stmt) const;
  [[nodiscard]] const std::set<std::string>& LiveOut(
      const lang::Stmt* stmt) const;

 private:
  const ControlFlowGraph& cfg_;
  std::vector<std::set<std::string>> live_in_;
  std::vector<std::set<std::string>> live_out_;
};

}  // namespace ag::analysis
