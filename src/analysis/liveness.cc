#include "analysis/liveness.h"

#include <deque>

namespace ag::analysis {

Liveness::Liveness(const ControlFlowGraph& cfg) : cfg_(cfg) {
  const auto& nodes = cfg.nodes();
  live_in_.resize(nodes.size());
  live_out_.resize(nodes.size());

  // Worklist fixpoint, seeded with all nodes (processed in reverse id
  // order, which approximates reverse program order for faster
  // convergence).
  std::deque<NodeId> worklist;
  for (int i = static_cast<int>(nodes.size()) - 1; i >= 0; --i) {
    worklist.push_back(i);
  }
  std::vector<bool> queued(nodes.size(), true);

  while (!worklist.empty()) {
    NodeId id = worklist.front();
    worklist.pop_front();
    queued[static_cast<size_t>(id)] = false;
    const CfgNode& node = nodes[static_cast<size_t>(id)];

    std::set<std::string> out;
    for (NodeId succ : node.successors) {
      const auto& in = live_in_[static_cast<size_t>(succ)];
      out.insert(in.begin(), in.end());
    }

    std::set<std::string> in = out;
    for (const std::string& w : node.writes) in.erase(w);
    in.insert(node.reads.begin(), node.reads.end());

    const bool changed = in != live_in_[static_cast<size_t>(id)] ||
                         out != live_out_[static_cast<size_t>(id)];
    live_out_[static_cast<size_t>(id)] = std::move(out);
    if (changed) {
      live_in_[static_cast<size_t>(id)] = std::move(in);
      for (NodeId pred : node.predecessors) {
        if (!queued[static_cast<size_t>(pred)]) {
          queued[static_cast<size_t>(pred)] = true;
          worklist.push_back(pred);
        }
      }
    }
  }
}

const std::set<std::string>& Liveness::LiveIn(const lang::Stmt* stmt) const {
  return live_in_[static_cast<size_t>(cfg_.NodeFor(stmt))];
}

const std::set<std::string>& Liveness::LiveOut(const lang::Stmt* stmt) const {
  // Live-out of a whole compound = live-out of its synthetic exit node
  // (everything flowing out of the statement passes through it, and the
  // synthetic node reads/writes nothing). For simple statements the exit
  // node is the statement itself, so this is its ordinary live-out.
  return live_out_[static_cast<size_t>(cfg_.ExitNodeFor(stmt))];
}

}  // namespace ag::analysis
