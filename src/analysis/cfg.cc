#include "analysis/cfg.h"

#include <sstream>

#include "analysis/activity.h"

namespace ag::analysis {

using lang::Cast;
using lang::StmtKind;
using lang::StmtList;
using lang::StmtPtr;

namespace {

struct LoopContext {
  NodeId header;     // continue target
  NodeId after;      // break target (loop's synthetic exit)
};

}  // namespace

class CfgBuilder {
 public:
  explicit CfgBuilder(ControlFlowGraph* cfg) : cfg_(cfg) {}

  void Run(const StmtList& body, const std::vector<std::string>& params) {
    cfg_->params_ = params;
    NodeId entry = AddNode(nullptr, "entry");
    for (const std::string& p : params) {
      cfg_->nodes_[static_cast<size_t>(entry)].writes.insert(p);
    }
    cfg_->entry_ = entry;
    cfg_->exit_ = AddNode(nullptr, "exit");

    std::vector<NodeId> frontier{entry};
    frontier = EmitBody(body, std::move(frontier));
    Connect(frontier, cfg_->exit_);
  }

 private:
  NodeId AddNode(const lang::Stmt* stmt, std::string role) {
    CfgNode node;
    node.stmt = stmt;
    node.role = std::move(role);
    cfg_->nodes_.push_back(std::move(node));
    return static_cast<NodeId>(cfg_->nodes_.size() - 1);
  }

  void AddEdge(NodeId from, NodeId to) {
    cfg_->nodes_[static_cast<size_t>(from)].successors.push_back(to);
    cfg_->nodes_[static_cast<size_t>(to)].predecessors.push_back(from);
  }

  void Connect(const std::vector<NodeId>& frontier, NodeId to) {
    for (NodeId from : frontier) AddEdge(from, to);
  }

  // Emits CFG nodes for `body`, entered from `frontier`; returns the new
  // frontier (nodes whose fall-through leaves the body).
  std::vector<NodeId> EmitBody(const StmtList& body,
                               std::vector<NodeId> frontier) {
    for (const StmtPtr& s : body) {
      frontier = EmitStmt(s, std::move(frontier));
    }
    return frontier;
  }

  std::vector<NodeId> EmitStmt(const StmtPtr& s, std::vector<NodeId> frontier) {
    switch (s->kind) {
      case StmtKind::kIf: {
        auto i = Cast<lang::IfStmt>(s);
        NodeId test = AddNode(s.get(), "test");
        CollectReads(i->test, &cfg_->nodes_[static_cast<size_t>(test)].reads);
        cfg_->stmt_nodes_[s.get()] = test;
        Connect(frontier, test);
        NodeId after = AddNode(s.get(), "exit");
        cfg_->exit_nodes_[s.get()] = after;

        std::vector<NodeId> body_out = EmitBody(i->body, {test});
        Connect(body_out, after);
        if (i->orelse.empty()) {
          AddEdge(test, after);
        } else {
          std::vector<NodeId> else_out = EmitBody(i->orelse, {test});
          Connect(else_out, after);
        }
        return {after};
      }
      case StmtKind::kWhile: {
        auto w = Cast<lang::WhileStmt>(s);
        NodeId test = AddNode(s.get(), "test");
        CollectReads(w->test, &cfg_->nodes_[static_cast<size_t>(test)].reads);
        cfg_->stmt_nodes_[s.get()] = test;
        Connect(frontier, test);
        NodeId after = AddNode(s.get(), "exit");
        cfg_->exit_nodes_[s.get()] = after;
        AddEdge(test, after);  // loop may not execute

        loops_.push_back(LoopContext{test, after});
        std::vector<NodeId> body_out = EmitBody(w->body, {test});
        loops_.pop_back();
        Connect(body_out, test);  // back edge
        return {after};
      }
      case StmtKind::kFor: {
        auto f = Cast<lang::ForStmt>(s);
        NodeId head = AddNode(s.get(), "iter");
        CfgNode& head_node = cfg_->nodes_[static_cast<size_t>(head)];
        CollectReads(f->iter, &head_node.reads);
        CollectWrites(f->target, &head_node.writes, &head_node.reads);
        cfg_->stmt_nodes_[s.get()] = head;
        Connect(frontier, head);
        NodeId after = AddNode(s.get(), "exit");
        cfg_->exit_nodes_[s.get()] = after;
        AddEdge(head, after);  // empty iterable

        loops_.push_back(LoopContext{head, after});
        std::vector<NodeId> body_out = EmitBody(f->body, {head});
        loops_.pop_back();
        Connect(body_out, head);
        return {after};
      }
      case StmtKind::kBreak: {
        NodeId n = AddNode(s.get(), "break");
        cfg_->stmt_nodes_[s.get()] = n;
        cfg_->exit_nodes_[s.get()] = n;
        Connect(frontier, n);
        if (loops_.empty()) {
          throw ConversionError("'break' outside loop", s->loc);
        }
        AddEdge(n, loops_.back().after);
        return {};  // no fall-through
      }
      case StmtKind::kContinue: {
        NodeId n = AddNode(s.get(), "continue");
        cfg_->stmt_nodes_[s.get()] = n;
        cfg_->exit_nodes_[s.get()] = n;
        Connect(frontier, n);
        if (loops_.empty()) {
          throw ConversionError("'continue' outside loop", s->loc);
        }
        AddEdge(n, loops_.back().header);
        return {};
      }
      case StmtKind::kReturn: {
        auto r = Cast<lang::ReturnStmt>(s);
        NodeId n = AddNode(s.get(), "return");
        CollectReads(r->value, &cfg_->nodes_[static_cast<size_t>(n)].reads);
        cfg_->stmt_nodes_[s.get()] = n;
        cfg_->exit_nodes_[s.get()] = n;
        Connect(frontier, n);
        AddEdge(n, cfg_->exit_);
        return {};
      }
      default: {
        NodeId n = AddNode(s.get(), "stmt");
        CfgNode& node = cfg_->nodes_[static_cast<size_t>(n)];
        switch (s->kind) {
          case StmtKind::kAssign: {
            auto a = Cast<lang::AssignStmt>(s);
            CollectReads(a->value, &node.reads);
            CollectWrites(a->target, &node.writes, &node.reads);
            break;
          }
          case StmtKind::kAugAssign: {
            auto a = Cast<lang::AugAssignStmt>(s);
            CollectReads(a->value, &node.reads);
            CollectReads(a->target, &node.reads);
            CollectWrites(a->target, &node.writes, &node.reads);
            break;
          }
          case StmtKind::kExprStmt:
            CollectReads(Cast<lang::ExprStmt>(s)->value, &node.reads);
            break;
          case StmtKind::kAssert: {
            auto a = Cast<lang::AssertStmt>(s);
            CollectReads(a->test, &node.reads);
            if (a->msg) CollectReads(a->msg, &node.reads);
            break;
          }
          case StmtKind::kFunctionDef: {
            // Nested function definition: binds its name; free variables
            // are reads (approximated by activity analysis rules).
            auto f = Cast<lang::FunctionDefStmt>(s);
            ActivityAnalysis nested(StmtList{s});
            const Scope& sc = nested.ScopeFor(s.get());
            node.reads = sc.read;
            node.writes.insert(f->name);
            break;
          }
          case StmtKind::kPass:
            break;
          default:
            throw InternalError("CFG: unexpected statement kind");
        }
        cfg_->stmt_nodes_[s.get()] = n;
        cfg_->exit_nodes_[s.get()] = n;
        Connect(frontier, n);
        return {n};
      }
    }
  }

  ControlFlowGraph* cfg_;
  std::vector<LoopContext> loops_;
};

ControlFlowGraph ControlFlowGraph::Build(
    const StmtList& body, const std::vector<std::string>& params) {
  ControlFlowGraph cfg;
  CfgBuilder builder(&cfg);
  builder.Run(body, params);
  return cfg;
}

NodeId ControlFlowGraph::NodeFor(const lang::Stmt* stmt) const {
  auto it = stmt_nodes_.find(stmt);
  if (it == stmt_nodes_.end()) {
    throw InternalError("CFG: statement has no node");
  }
  return it->second;
}

NodeId ControlFlowGraph::ExitNodeFor(const lang::Stmt* stmt) const {
  auto it = exit_nodes_.find(stmt);
  if (it == exit_nodes_.end()) {
    throw InternalError("CFG: statement has no exit node");
  }
  return it->second;
}

std::string ControlFlowGraph::DebugString() const {
  std::ostringstream os;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    const CfgNode& n = nodes_[i];
    os << i << " [" << n.role << "] ->";
    for (NodeId s : n.successors) os << " " << s;
    os << "\n";
  }
  return os.str();
}

}  // namespace ag::analysis
