#include "analysis/shape_infer.h"

#include <set>

#include "analysis/activity.h"
#include "tensor/shape.h"

namespace ag::analysis {

using lang::Cast;
using lang::ExprKind;
using lang::ExprPtr;
using lang::StmtKind;
using lang::StmtList;
using lang::StmtPtr;

namespace {

// Iteration cap for the loop-body fixpoint. The per-symbol lattice has
// height 3, so joins stabilize almost immediately; the cap is a backstop.
constexpr int kMaxLoopIterations = 8;

TypeFact Lookup(const TypeEnv& env, const std::string& name) {
  auto it = env.find(name);
  return it == env.end() ? TypeFact::Bottom() : it->second;
}

// Abstract result of a binary arithmetic operator.
TypeFact EvalBinaryOp(lang::BinaryOp op, const TypeFact& l,
                      const TypeFact& r) {
  if (l.kind == TypeKind::kTensor || r.kind == TypeKind::kTensor) {
    // Tensor math broadcasts; a python-number operand adopts the tensor's
    // dtype, two tensors must agree (join handles the refinements).
    const TypeFact* t = l.kind == TypeKind::kTensor ? &l : &r;
    TypeFact out = TypeFact::Tensor(t->dtype, t->shape);
    if (l.kind == TypeKind::kTensor && r.kind == TypeKind::kTensor) {
      out.dtype = TypeFact::Join(l, r).dtype;
      if (l.shape.state == ShapeFact::State::kKnown &&
          r.shape.state == ShapeFact::State::kKnown) {
        const Shape a{std::vector<int64_t>(l.shape.dims)};
        const Shape b{std::vector<int64_t>(r.shape.dims)};
        // Unknown dims (-1) defeat the static broadcast computation.
        bool has_unknown = false;
        for (int64_t d : l.shape.dims) has_unknown |= d < 0;
        for (int64_t d : r.shape.dims) has_unknown |= d < 0;
        if (!has_unknown && Shape::BroadcastCompatible(a, b)) {
          out.shape = ShapeFact::Known(Shape::Broadcast(a, b).dims());
        } else {
          out.shape = ShapeFact::Top();
        }
      } else {
        out.shape = ShapeFact::Top();
      }
    }
    return out;
  }
  const bool numeric_l =
      l.kind == TypeKind::kInt || l.kind == TypeKind::kFloat ||
      l.kind == TypeKind::kBool;
  const bool numeric_r =
      r.kind == TypeKind::kInt || r.kind == TypeKind::kFloat ||
      r.kind == TypeKind::kBool;
  if (numeric_l && numeric_r) {
    if (op == lang::BinaryOp::kDiv) return TypeFact::Of(TypeKind::kFloat);
    if (l.kind == TypeKind::kFloat || r.kind == TypeKind::kFloat) {
      return TypeFact::Of(TypeKind::kFloat);
    }
    return TypeFact::Of(TypeKind::kInt);
  }
  if (op == lang::BinaryOp::kAdd) {
    if (l.kind == TypeKind::kStr && r.kind == TypeKind::kStr) {
      return TypeFact::Of(TypeKind::kStr);
    }
    if (l.kind == TypeKind::kList && r.kind == TypeKind::kList) {
      return TypeFact::Of(TypeKind::kList);
    }
  }
  return TypeFact::Top();
}

// Shape of x[i] when x's shape is known: the leading axis is consumed.
ShapeFact IndexShape(const ShapeFact& shape) {
  if (shape.state != ShapeFact::State::kKnown || shape.dims.empty()) {
    return ShapeFact::Top();
  }
  return ShapeFact::Known(
      std::vector<int64_t>(shape.dims.begin() + 1, shape.dims.end()));
}

// Extracts a compile-time shape from a literal list/tuple of int literals.
bool LiteralShape(const ExprPtr& expr, std::vector<int64_t>* out) {
  const std::vector<ExprPtr>* elts = nullptr;
  if (expr->kind == ExprKind::kList) {
    elts = &Cast<lang::ListExpr>(expr)->elts;
  } else if (expr->kind == ExprKind::kTuple) {
    elts = &Cast<lang::TupleExpr>(expr)->elts;
  } else {
    return false;
  }
  for (const ExprPtr& e : *elts) {
    if (e->kind != ExprKind::kNumber) return false;
    auto n = Cast<lang::NumberExpr>(e);
    if (!n->is_int || n->value < 0) return false;
    out->push_back(static_cast<int64_t>(n->value));
  }
  return true;
}

// Plain names modified anywhere inside `stmts` (threaded variables).
std::set<std::string> ModifiedNamesOf(const StmtList& stmts) {
  if (stmts.empty()) return {};
  ActivityAnalysis activity(stmts);
  return ActivityAnalysis::Aggregate(activity, stmts).ModifiedNames();
}

}  // namespace

ShapeInference::ShapeInference(const lang::FunctionDefStmt& fn) {
  Run(fn.body, fn.params);
}

ShapeInference::ShapeInference(const StmtList& body,
                               const std::vector<std::string>& params) {
  Run(body, params);
}

void ShapeInference::Run(const StmtList& body,
                         const std::vector<std::string>& params) {
  TypeEnv env;
  for (const std::string& p : params) env[p] = TypeFact::Top();
  exit_env_ = ExecBody(body, std::move(env));
}

TypeEnv ShapeInference::ExecBody(const StmtList& body, TypeEnv env) {
  for (const StmtPtr& s : body) env = ExecStmt(s, std::move(env));
  return env;
}

TypeEnv ShapeInference::ExecStmt(const StmtPtr& stmt, TypeEnv env) {
  switch (stmt->kind) {
    case StmtKind::kAssign: {
      auto a = Cast<lang::AssignStmt>(stmt);
      AssignTarget(a->target, EvalExpr(a->value, env), &env);
      return env;
    }
    case StmtKind::kAugAssign: {
      auto a = Cast<lang::AugAssignStmt>(stmt);
      TypeFact fact = EvalBinaryOp(a->op, EvalExpr(a->target, env),
                                   EvalExpr(a->value, env));
      AssignTarget(a->target, fact, &env);
      return env;
    }
    case StmtKind::kIf: {
      auto i = Cast<lang::IfStmt>(stmt);
      TypeEnv then_env = ExecBody(i->body, env);
      TypeEnv else_env = ExecBody(i->orelse, env);
      StmtList both = i->body;
      both.insert(both.end(), i->orelse.begin(), i->orelse.end());
      for (const std::string& v : ModifiedNamesOf(both)) {
        const TypeFact t = Lookup(then_env, v);
        const TypeFact e = Lookup(else_env, v);
        if (t.DTypeConflictsWith(e)) {
          issues_.push_back({TypeIssue::Kind::kBranchDType, v, e, t,
                             stmt.get()});
        } else if (t.ShapeConflictsWith(e)) {
          issues_.push_back({TypeIssue::Kind::kBranchShape, v, e, t,
                             stmt.get()});
        }
      }
      return JoinEnvs(then_env, else_env);
    }
    case StmtKind::kWhile: {
      auto w = Cast<lang::WhileStmt>(stmt);
      return ExecLoop(stmt, w->body, std::move(env));
    }
    case StmtKind::kFor: {
      auto f = Cast<lang::ForStmt>(stmt);
      // Bind the target from the iterable: element facts are tracked only
      // for literal iterables; everything else yields Top.
      TypeFact elem = TypeFact::Top();
      if (f->iter->kind == ExprKind::kList ||
          f->iter->kind == ExprKind::kTuple) {
        const auto& elts = f->iter->kind == ExprKind::kList
                               ? Cast<lang::ListExpr>(f->iter)->elts
                               : Cast<lang::TupleExpr>(f->iter)->elts;
        elem = TypeFact::Bottom();
        for (const ExprPtr& e : elts) {
          elem = TypeFact::Join(elem, EvalExpr(e, env));
        }
        if (elem.kind == TypeKind::kBottom) elem = TypeFact::Top();
      }
      AssignTarget(f->target, elem, &env);
      return ExecLoop(stmt, f->body, std::move(env));
    }
    case StmtKind::kFunctionDef: {
      auto fd = Cast<lang::FunctionDefStmt>(stmt);
      env[fd->name] = TypeFact::Of(TypeKind::kFunc);
      return env;
    }
    case StmtKind::kReturn:
    case StmtKind::kExprStmt:
    case StmtKind::kAssert:
    case StmtKind::kBreak:
    case StmtKind::kContinue:
    case StmtKind::kPass:
      return env;
  }
  return env;
}

TypeEnv ShapeInference::ExecLoop(const StmtPtr& stmt, const StmtList& body,
                                 TypeEnv env) {
  // One recorded abstract iteration from the loop-entry env: this is
  // where loop-variant dtype/shape issues (and issues inside the body)
  // are reported, exactly once.
  const TypeEnv entry = env;
  TypeEnv once = ExecBody(body, entry);

  std::set<std::string> loop_vars = ModifiedNamesOf(body);
  if (stmt->kind == StmtKind::kFor) {
    // The for-target is re-bound from the iterator every iteration, so
    // body rebindings of it do not thread to the next iteration.
    std::set<std::string> targets;
    std::set<std::string> ignored_reads;
    CollectWrites(Cast<lang::ForStmt>(stmt)->target, &targets,
                  &ignored_reads);
    for (const std::string& t : targets) loop_vars.erase(t);
  }
  for (const std::string& v : loop_vars) {
    const TypeFact before = Lookup(entry, v);
    const TypeFact after = Lookup(once, v);
    if (before.DTypeConflictsWith(after)) {
      issues_.push_back({TypeIssue::Kind::kLoopDType, v, before, after,
                         stmt.get()});
    } else if (before.ShapeConflictsWith(after)) {
      issues_.push_back({TypeIssue::Kind::kLoopShape, v, before, after,
                         stmt.get()});
    }
  }

  // Fixpoint join for the facts that flow past the loop; issue recording
  // is suppressed so the extra passes cannot duplicate reports.
  TypeEnv joined = JoinEnvs(entry, once);
  const size_t recorded = issues_.size();
  for (int i = 0; i < kMaxLoopIterations; ++i) {
    TypeEnv next = JoinEnvs(joined, ExecBody(body, joined));
    issues_.resize(recorded);
    if (next == joined) break;
    joined = std::move(next);
  }
  return joined;
}

void ShapeInference::AssignTarget(const ExprPtr& target, const TypeFact& fact,
                                  TypeEnv* env) {
  switch (target->kind) {
    case ExprKind::kName:
      (*env)[Cast<lang::NameExpr>(target)->id] = fact;
      return;
    case ExprKind::kTuple:
    case ExprKind::kList: {
      const auto& elts = target->kind == ExprKind::kTuple
                             ? Cast<lang::TupleExpr>(target)->elts
                             : Cast<lang::ListExpr>(target)->elts;
      // Element facts are not tracked through destructuring.
      for (const ExprPtr& e : elts) AssignTarget(e, TypeFact::Top(), env);
      return;
    }
    default:
      // Attribute/subscript writes do not rebind a symbol (AG004 reports
      // them separately).
      return;
  }
}

TypeFact ShapeInference::EvalExpr(const ExprPtr& expr, const TypeEnv& env) {
  if (!expr) return TypeFact::Of(TypeKind::kNone);
  switch (expr->kind) {
    case ExprKind::kName:
      return Lookup(env, Cast<lang::NameExpr>(expr)->id).kind ==
                     TypeKind::kBottom
                 ? TypeFact::Top()  // globals/builtins are unknown
                 : Lookup(env, Cast<lang::NameExpr>(expr)->id);
    case ExprKind::kNumber:
      return TypeFact::Of(Cast<lang::NumberExpr>(expr)->is_int
                              ? TypeKind::kInt
                              : TypeKind::kFloat);
    case ExprKind::kString:
      return TypeFact::Of(TypeKind::kStr);
    case ExprKind::kBool:
      return TypeFact::Of(TypeKind::kBool);
    case ExprKind::kNone:
      return TypeFact::Of(TypeKind::kNone);
    case ExprKind::kTuple:
      return TypeFact::Of(TypeKind::kTuple);
    case ExprKind::kList:
      return TypeFact::Of(TypeKind::kList);
    case ExprKind::kLambda:
      return TypeFact::Of(TypeKind::kFunc);
    case ExprKind::kAttribute:
      return TypeFact::Top();
    case ExprKind::kSubscript: {
      auto s = Cast<lang::SubscriptExpr>(expr);
      TypeFact value = EvalExpr(s->value, env);
      if (value.kind == TypeKind::kTensor) {
        return TypeFact::Tensor(value.dtype, IndexShape(value.shape));
      }
      return TypeFact::Top();
    }
    case ExprKind::kCall:
      return EvalCall(expr, env);
    case ExprKind::kUnary: {
      auto u = Cast<lang::UnaryExpr>(expr);
      TypeFact operand = EvalExpr(u->operand, env);
      if (u->op == lang::UnaryOp::kNot) {
        if (operand.kind == TypeKind::kTensor) {
          return TypeFact::Tensor(DTypeFact::kBoolDType, operand.shape);
        }
        return TypeFact::Of(TypeKind::kBool);
      }
      return operand;
    }
    case ExprKind::kBinary: {
      auto b = Cast<lang::BinaryExpr>(expr);
      return EvalBinaryOp(b->op, EvalExpr(b->left, env),
                          EvalExpr(b->right, env));
    }
    case ExprKind::kCompare: {
      auto c = Cast<lang::CompareExpr>(expr);
      TypeFact l = EvalExpr(c->left, env);
      TypeFact r = EvalExpr(c->right, env);
      if (l.kind == TypeKind::kTensor || r.kind == TypeKind::kTensor) {
        const TypeFact& t = l.kind == TypeKind::kTensor ? l : r;
        return TypeFact::Tensor(DTypeFact::kBoolDType, t.shape);
      }
      return TypeFact::Of(TypeKind::kBool);
    }
    case ExprKind::kBoolOp: {
      // Python and/or return one of their operands.
      auto b = Cast<lang::BoolOpExpr>(expr);
      return TypeFact::Join(EvalExpr(b->left, env), EvalExpr(b->right, env));
    }
    case ExprKind::kIfExp: {
      auto i = Cast<lang::IfExpExpr>(expr);
      return TypeFact::Join(EvalExpr(i->body, env),
                            EvalExpr(i->orelse, env));
    }
  }
  return TypeFact::Top();
}

TypeFact ShapeInference::EvalCall(const ExprPtr& expr, const TypeEnv& env) {
  auto call = Cast<lang::CallExpr>(expr);
  auto qn = lang::QualifiedName(call->func);
  if (!qn) return TypeFact::Top();
  const std::string& name = *qn;

  auto arg = [&](size_t i) {
    return i < call->args.size() ? EvalExpr(call->args[i], env)
                                 : TypeFact::Top();
  };

  if (name == "tf.zeros" || name == "tf.ones") {
    ShapeFact shape = ShapeFact::Top();
    std::vector<int64_t> dims;
    if (!call->args.empty() && LiteralShape(call->args[0], &dims)) {
      shape = ShapeFact::Known(std::move(dims));
    }
    return TypeFact::Tensor(DTypeFact::kFloat32, shape);
  }
  if (name == "tf.constant") {
    // Mirrors the runtime's dtype defaulting: bare python ints become
    // int32, bare bools become bool, everything else float32, and an
    // explicit dtype argument wins.
    DTypeFact dtype = DTypeFact::kFloat32;
    const TypeFact value = arg(0);
    if (call->args.size() == 1 && call->keywords.empty()) {
      if (value.kind == TypeKind::kInt) dtype = DTypeFact::kInt32;
      if (value.kind == TypeKind::kBool) dtype = DTypeFact::kBoolDType;
    }
    for (size_t i = 1; i < call->args.size(); ++i) {
      if (auto dt = lang::QualifiedName(call->args[i])) {
        if (*dt == "tf.float32") dtype = DTypeFact::kFloat32;
        if (*dt == "tf.int32") dtype = DTypeFact::kInt32;
        if (*dt == "tf.bool") dtype = DTypeFact::kBoolDType;
      }
    }
    for (const lang::Keyword& kw : call->keywords) {
      if (kw.name != "dtype") continue;
      if (auto dt = lang::QualifiedName(kw.value)) {
        if (*dt == "tf.float32") dtype = DTypeFact::kFloat32;
        if (*dt == "tf.int32") dtype = DTypeFact::kInt32;
        if (*dt == "tf.bool") dtype = DTypeFact::kBoolDType;
      }
    }
    ShapeFact shape = ShapeFact::Top();
    if (value.kind == TypeKind::kInt || value.kind == TypeKind::kFloat ||
        value.kind == TypeKind::kBool) {
      shape = ShapeFact::Scalar();
    } else if (!call->args.empty()) {
      // A literal element list is a rank-1 constant of that length.
      std::vector<int64_t> elems;
      if (LiteralShape(call->args[0], &elems)) {
        shape = ShapeFact::Known({static_cast<int64_t>(elems.size())});
      }
    }
    return TypeFact::Tensor(dtype, shape);
  }
  if (name == "tf.matmul") {
    TypeFact a = arg(0);
    TypeFact b = arg(1);
    ShapeFact shape = ShapeFact::Top();
    if (a.shape.state == ShapeFact::State::kKnown &&
        b.shape.state == ShapeFact::State::kKnown &&
        a.shape.dims.size() == 2 && b.shape.dims.size() == 2) {
      shape = ShapeFact::Known({a.shape.dims[0], b.shape.dims[1]});
    }
    DTypeFact dtype = a.kind == TypeKind::kTensor ? a.dtype
                      : b.kind == TypeKind::kTensor ? b.dtype
                                                    : DTypeFact::kFloat32;
    return TypeFact::Tensor(dtype, shape);
  }
  static const std::set<std::string> kElementwiseUnary = {
      "tf.tanh", "tf.sigmoid", "tf.exp",    "tf.log", "tf.sqrt",
      "tf.square", "tf.abs",   "tf.sin",    "tf.cos", "tf.relu",
      "tf.neg",  "tf.identity"};
  if (kElementwiseUnary.count(name) > 0) {
    TypeFact a = arg(0);
    if (a.kind == TypeKind::kTensor) return a;
    return TypeFact::Tensor(DTypeFact::kTop, ShapeFact::Top());
  }
  static const std::set<std::string> kElementwiseBinary = {
      "tf.add",     "tf.subtract", "tf.multiply", "tf.divide",
      "tf.maximum", "tf.minimum",  "tf.pow"};
  if (kElementwiseBinary.count(name) > 0) {
    return EvalBinaryOp(lang::BinaryOp::kAdd, arg(0), arg(1));
  }
  static const std::set<std::string> kReductions = {
      "tf.reduce_sum", "tf.reduce_mean", "tf.reduce_max", "tf.reduce_min"};
  if (kReductions.count(name) > 0) {
    TypeFact a = arg(0);
    DTypeFact dtype =
        a.kind == TypeKind::kTensor ? a.dtype : DTypeFact::kTop;
    // Axis-less reduction collapses to a scalar; with an axis the result
    // shape is not tracked.
    ShapeFact shape = call->args.size() <= 1 && call->keywords.empty()
                          ? ShapeFact::Scalar()
                          : ShapeFact::Top();
    return TypeFact::Tensor(dtype, shape);
  }
  if (name == "len") return TypeFact::Of(TypeKind::kInt);
  if (name == "range") return TypeFact::Of(TypeKind::kList);
  if (name == "float") return TypeFact::Of(TypeKind::kFloat);
  if (name == "int") return TypeFact::Of(TypeKind::kInt);
  if (name == "bool") return TypeFact::Of(TypeKind::kBool);
  return TypeFact::Top();
}

}  // namespace ag::analysis
