#include "analysis/reaching_definitions.h"

#include <deque>

namespace ag::analysis {

ReachingDefinitions::ReachingDefinitions(const ControlFlowGraph& cfg)
    : cfg_(cfg) {
  const auto& nodes = cfg.nodes();
  const size_t n = nodes.size();
  must_in_.resize(n);
  may_in_.resize(n);
  std::vector<std::set<std::string>> must_out(n);
  std::vector<std::set<std::string>> may_out(n);

  // The must-analysis is an intersection meet, so non-entry nodes start
  // at TOP (the universe of all symbols ever written) and only ever
  // shrink — this is what guarantees termination. The may-analysis is a
  // union meet and starts at bottom (empty), only ever growing.
  std::set<std::string> universe;
  for (const CfgNode& node : nodes) {
    universe.insert(node.writes.begin(), node.writes.end());
  }
  const auto entry = static_cast<size_t>(cfg.entry());
  for (size_t i = 0; i < n; ++i) {
    if (i != entry) {
      must_in_[i] = universe;
      must_out[i] = universe;
    }
  }
  must_out[entry] = nodes[entry].writes;  // the function parameters

  std::deque<NodeId> worklist;
  std::vector<bool> queued(n, true);
  for (size_t i = 0; i < n; ++i) worklist.push_back(static_cast<NodeId>(i));

  while (!worklist.empty()) {
    const NodeId id = worklist.front();
    worklist.pop_front();
    const auto iu = static_cast<size_t>(id);
    queued[iu] = false;
    const CfgNode& node = nodes[iu];

    std::set<std::string> must;
    std::set<std::string> may;
    if (iu == entry) {
      // Nothing is defined before entry.
    } else if (node.predecessors.empty()) {
      must = universe;  // unreachable; keep TOP (vacuously defined)
    } else {
      bool first = true;
      for (NodeId pred : node.predecessors) {
        const auto& pm = must_out[static_cast<size_t>(pred)];
        if (first) {
          must = pm;
          first = false;
        } else {
          std::set<std::string> inter;
          for (const std::string& s : must) {
            if (pm.count(s) > 0) inter.insert(s);
          }
          must = std::move(inter);
        }
        const auto& py = may_out[static_cast<size_t>(pred)];
        may.insert(py.begin(), py.end());
      }
    }

    std::set<std::string> new_must_out = must;
    new_must_out.insert(node.writes.begin(), node.writes.end());
    std::set<std::string> new_may_out = may;
    new_may_out.insert(node.writes.begin(), node.writes.end());

    const bool changed = must != must_in_[iu] || may != may_in_[iu] ||
                         new_must_out != must_out[iu] ||
                         new_may_out != may_out[iu];
    must_in_[iu] = std::move(must);
    may_in_[iu] = std::move(may);
    must_out[iu] = std::move(new_must_out);
    may_out[iu] = std::move(new_may_out);

    if (changed) {
      for (NodeId succ : node.successors) {
        if (!queued[static_cast<size_t>(succ)]) {
          queued[static_cast<size_t>(succ)] = true;
          worklist.push_back(succ);
        }
      }
    }
  }
}

const std::set<std::string>& ReachingDefinitions::DefinitelyDefinedIn(
    const lang::Stmt* stmt) const {
  return must_in_[static_cast<size_t>(cfg_.NodeFor(stmt))];
}

const std::set<std::string>& ReachingDefinitions::MaybeDefinedIn(
    const lang::Stmt* stmt) const {
  return may_in_[static_cast<size_t>(cfg_.NodeFor(stmt))];
}

const std::set<std::string>& ReachingDefinitions::DefinitelyDefinedOut(
    const lang::Stmt* stmt) const {
  return must_in_[static_cast<size_t>(cfg_.ExitNodeFor(stmt))];
}

}  // namespace ag::analysis
