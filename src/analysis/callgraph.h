// Call graph over PyMini function definitions, for recursion detection.
//
// The TF graph IR cannot express re-entrant (recursive) staged functions;
// the Lantern backend can (paper §8). aglint uses the cycles of this
// graph to error on recursion for the TF backend and to suggest the
// Lantern backend otherwise (lint code AG005).
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "lang/ast.h"

namespace ag::analysis {

class CallGraph {
 public:
  // One `f -> g` call site.
  struct Edge {
    std::string caller;
    std::string callee;
    SourceLocation loc;  // of the call expression (user source)
  };

  // A recursion cycle: the functions on it, in call order starting from
  // the lexically first one, plus the location of the call that closes
  // the cycle.
  struct Cycle {
    std::vector<std::string> path;
    SourceLocation loc;

    // "f -> g -> f" rendering for messages.
    [[nodiscard]] std::string str() const;
  };

  // Builds the graph over every function defined in `body` (top-level
  // defs plus defs nested inside them, keyed by bare name). Only calls
  // whose qualified name resolves to one of those functions become
  // edges.
  [[nodiscard]] static CallGraph Build(const lang::StmtList& body);

  [[nodiscard]] const std::vector<Edge>& edges() const { return edges_; }
  [[nodiscard]] const std::set<std::string>& functions() const {
    return functions_;
  }

  // Every distinct cycle (self-recursion included), each reported once.
  [[nodiscard]] std::vector<Cycle> FindRecursion() const;

 private:
  std::set<std::string> functions_;
  std::vector<Edge> edges_;
  std::map<std::string, std::vector<const Edge*>> out_edges_;
};

}  // namespace ag::analysis
