#include "analysis/activity.h"

#include "support/strings.h"

namespace ag::analysis {

using lang::Cast;
using lang::ExprKind;
using lang::ExprPtr;
using lang::StmtKind;
using lang::StmtList;
using lang::StmtPtr;

std::set<std::string> Scope::ModifiedNames() const {
  std::set<std::string> out;
  for (const std::string& m : modified) {
    if (m.find('.') == std::string::npos &&
        m.find('[') == std::string::npos) {
      out.insert(m);
    }
  }
  return out;
}

void CollectReads(const ExprPtr& expr, std::set<std::string>* out) {
  if (!expr) return;
  switch (expr->kind) {
    case ExprKind::kName:
      out->insert(Cast<lang::NameExpr>(expr)->id);
      return;
    case ExprKind::kAttribute: {
      // A qualified read "a.b" reads both "a.b" and its root "a".
      auto qn = lang::QualifiedName(expr);
      if (qn) {
        out->insert(*qn);
        // Insert every prefix, including the root name.
        std::string prefix;
        for (char c : *qn) {
          if (c == '.') out->insert(prefix);
          prefix += c;
        }
        return;
      }
      CollectReads(Cast<lang::AttributeExpr>(expr)->value, out);
      return;
    }
    case ExprKind::kSubscript: {
      auto s = Cast<lang::SubscriptExpr>(expr);
      CollectReads(s->value, out);
      CollectReads(s->index, out);
      return;
    }
    case ExprKind::kTuple:
      for (const ExprPtr& e : Cast<lang::TupleExpr>(expr)->elts) {
        CollectReads(e, out);
      }
      return;
    case ExprKind::kList:
      for (const ExprPtr& e : Cast<lang::ListExpr>(expr)->elts) {
        CollectReads(e, out);
      }
      return;
    case ExprKind::kCall: {
      auto c = Cast<lang::CallExpr>(expr);
      CollectReads(c->func, out);
      for (const ExprPtr& a : c->args) CollectReads(a, out);
      for (const lang::Keyword& kw : c->keywords) CollectReads(kw.value, out);
      return;
    }
    case ExprKind::kUnary:
      CollectReads(Cast<lang::UnaryExpr>(expr)->operand, out);
      return;
    case ExprKind::kBinary: {
      auto b = Cast<lang::BinaryExpr>(expr);
      CollectReads(b->left, out);
      CollectReads(b->right, out);
      return;
    }
    case ExprKind::kCompare: {
      auto c = Cast<lang::CompareExpr>(expr);
      CollectReads(c->left, out);
      CollectReads(c->right, out);
      return;
    }
    case ExprKind::kBoolOp: {
      auto b = Cast<lang::BoolOpExpr>(expr);
      CollectReads(b->left, out);
      CollectReads(b->right, out);
      return;
    }
    case ExprKind::kIfExp: {
      auto i = Cast<lang::IfExpExpr>(expr);
      CollectReads(i->test, out);
      CollectReads(i->body, out);
      CollectReads(i->orelse, out);
      return;
    }
    case ExprKind::kLambda: {
      // Free variables of the lambda body, minus its parameters.
      auto l = Cast<lang::LambdaExpr>(expr);
      std::set<std::string> inner;
      CollectReads(l->body, &inner);
      for (const std::string& p : l->params) inner.erase(p);
      out->insert(inner.begin(), inner.end());
      return;
    }
    case ExprKind::kNumber:
    case ExprKind::kString:
    case ExprKind::kBool:
    case ExprKind::kNone:
      return;
  }
}

void CollectWrites(const ExprPtr& target, std::set<std::string>* out,
                   std::set<std::string>* reads) {
  switch (target->kind) {
    case ExprKind::kName:
      out->insert(Cast<lang::NameExpr>(target)->id);
      return;
    case ExprKind::kAttribute: {
      auto qn = lang::QualifiedName(target);
      if (qn) {
        out->insert(*qn);
        // The root object is read when mutating a field.
        std::string root = qn->substr(0, qn->find('.'));
        reads->insert(root);
        return;
      }
      CollectReads(Cast<lang::AttributeExpr>(target)->value, reads);
      return;
    }
    case ExprKind::kSubscript: {
      auto s = Cast<lang::SubscriptExpr>(target);
      // x[i] = v modifies the composite, reads x and i.
      auto qn = lang::QualifiedName(s->value);
      if (qn) out->insert(*qn + "[]");
      CollectReads(s->value, reads);
      CollectReads(s->index, reads);
      return;
    }
    case ExprKind::kTuple:
      for (const ExprPtr& e : Cast<lang::TupleExpr>(target)->elts) {
        CollectWrites(e, out, reads);
      }
      return;
    case ExprKind::kList:
      for (const ExprPtr& e : Cast<lang::ListExpr>(target)->elts) {
        CollectWrites(e, out, reads);
      }
      return;
    default:
      throw ConversionError("invalid assignment target in activity analysis",
                            target->loc);
  }
}

ActivityAnalysis::ActivityAnalysis(const lang::StmtList& body) {
  AnalyzeBody(body);
}

const Scope& ActivityAnalysis::ScopeFor(const lang::Stmt* stmt) const {
  auto it = scopes_.find(stmt);
  if (it == scopes_.end()) {
    throw InternalError("activity: statement was not analyzed");
  }
  return it->second;
}

Scope ActivityAnalysis::AnalyzeBody(const StmtList& body) {
  Scope agg;
  for (const StmtPtr& s : body) {
    Scope sc = Analyze(s);
    agg.read.insert(sc.read.begin(), sc.read.end());
    agg.modified.insert(sc.modified.begin(), sc.modified.end());
  }
  return agg;
}

Scope ActivityAnalysis::Analyze(const StmtPtr& stmt) {
  Scope sc;
  switch (stmt->kind) {
    case StmtKind::kFunctionDef: {
      auto f = Cast<lang::FunctionDefStmt>(stmt);
      // The def binds its name; free symbols of the body (minus params and
      // locals) are reads from the enclosing scope.
      Scope inner = AnalyzeBody(f->body);
      for (const std::string& p : f->params) {
        inner.read.erase(p);
        inner.modified.erase(p);
      }
      for (const std::string& m : inner.ModifiedNames()) {
        inner.read.erase(m);  // locals shadow
      }
      sc.read = inner.read;
      sc.modified.insert(f->name);
      for (const ExprPtr& d : f->defaults) CollectReads(d, &sc.read);
      break;
    }
    case StmtKind::kReturn:
      CollectReads(Cast<lang::ReturnStmt>(stmt)->value, &sc.read);
      break;
    case StmtKind::kAssign: {
      auto a = Cast<lang::AssignStmt>(stmt);
      CollectReads(a->value, &sc.read);
      CollectWrites(a->target, &sc.modified, &sc.read);
      break;
    }
    case StmtKind::kAugAssign: {
      auto a = Cast<lang::AugAssignStmt>(stmt);
      CollectReads(a->value, &sc.read);
      CollectReads(a->target, &sc.read);  // x += 1 also reads x
      CollectWrites(a->target, &sc.modified, &sc.read);
      break;
    }
    case StmtKind::kExprStmt:
      CollectReads(Cast<lang::ExprStmt>(stmt)->value, &sc.read);
      break;
    case StmtKind::kIf: {
      auto i = Cast<lang::IfStmt>(stmt);
      CollectReads(i->test, &sc.read);
      Scope body = AnalyzeBody(i->body);
      Scope orelse = AnalyzeBody(i->orelse);
      sc.read.insert(body.read.begin(), body.read.end());
      sc.read.insert(orelse.read.begin(), orelse.read.end());
      sc.modified.insert(body.modified.begin(), body.modified.end());
      sc.modified.insert(orelse.modified.begin(), orelse.modified.end());
      break;
    }
    case StmtKind::kWhile: {
      auto w = Cast<lang::WhileStmt>(stmt);
      CollectReads(w->test, &sc.read);
      Scope body = AnalyzeBody(w->body);
      sc.read.insert(body.read.begin(), body.read.end());
      sc.modified.insert(body.modified.begin(), body.modified.end());
      break;
    }
    case StmtKind::kFor: {
      auto f = Cast<lang::ForStmt>(stmt);
      CollectReads(f->iter, &sc.read);
      CollectWrites(f->target, &sc.modified, &sc.read);
      Scope body = AnalyzeBody(f->body);
      sc.read.insert(body.read.begin(), body.read.end());
      sc.modified.insert(body.modified.begin(), body.modified.end());
      break;
    }
    case StmtKind::kAssert: {
      auto a = Cast<lang::AssertStmt>(stmt);
      CollectReads(a->test, &sc.read);
      if (a->msg) CollectReads(a->msg, &sc.read);
      break;
    }
    case StmtKind::kBreak:
    case StmtKind::kContinue:
    case StmtKind::kPass:
      break;
  }
  scopes_[stmt.get()] = sc;
  return sc;
}

Scope ActivityAnalysis::Aggregate(const ActivityAnalysis& analysis,
                                  const StmtList& body) {
  Scope agg;
  for (const StmtPtr& s : body) {
    const Scope& sc = analysis.ScopeFor(s.get());
    agg.read.insert(sc.read.begin(), sc.read.end());
    agg.modified.insert(sc.modified.begin(), sc.modified.end());
  }
  return agg;
}

}  // namespace ag::analysis
