// Intraprocedural control flow graph over PyMini statements (paper §7.1,
// "Control Flow Graph Construction").
//
// Atomic program points become CFG nodes:
//   - every simple statement;
//   - the test of each if/while, and the iterator of each for;
//   - a synthetic EXIT node per compound statement, through which every
//     path leaving the statement flows — this is what lets clients ask
//     "what is live *after* this whole if/while?" with a single lookup;
//   - a synthetic function EXIT node (target of returns and fall-through).
//
// break/continue/return edges are wired to the appropriate loop-exit /
// loop-header / function-exit nodes.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "lang/ast.h"

namespace ag::analysis {

using NodeId = int;
inline constexpr NodeId kNoNode = -1;

struct CfgNode {
  // The statement this node represents; null for synthetic nodes.
  const lang::Stmt* stmt = nullptr;
  // Human-readable role, for dumps: "stmt", "test", "iter", "exit", ...
  std::string role;
  // Dataflow facts, precomputed at construction:
  std::set<std::string> reads;   // gen set for liveness
  std::set<std::string> writes;  // kill set for liveness / defs
  std::vector<NodeId> successors;
  std::vector<NodeId> predecessors;
};

class ControlFlowGraph {
 public:
  // Builds the CFG of a function body. `params` seed the entry definitions.
  static ControlFlowGraph Build(const lang::StmtList& body,
                                const std::vector<std::string>& params);

  [[nodiscard]] const std::vector<CfgNode>& nodes() const { return nodes_; }
  [[nodiscard]] NodeId entry() const { return entry_; }
  [[nodiscard]] NodeId exit() const { return exit_; }
  [[nodiscard]] const std::vector<std::string>& params() const {
    return params_;
  }

  // The node representing a statement (its test node for compounds).
  [[nodiscard]] NodeId NodeFor(const lang::Stmt* stmt) const;
  // The synthetic exit node of a compound statement (if/while/for); for
  // simple statements this is the statement node itself.
  [[nodiscard]] NodeId ExitNodeFor(const lang::Stmt* stmt) const;

  [[nodiscard]] std::string DebugString() const;

 private:
  std::vector<CfgNode> nodes_;
  NodeId entry_ = kNoNode;
  NodeId exit_ = kNoNode;
  std::vector<std::string> params_;
  std::unordered_map<const lang::Stmt*, NodeId> stmt_nodes_;
  std::unordered_map<const lang::Stmt*, NodeId> exit_nodes_;

  friend class CfgBuilder;
};

}  // namespace ag::analysis
