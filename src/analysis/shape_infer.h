// Dtype/shape abstract interpretation for staging-safety diagnostics.
//
// A forward structured walk over a function body, flowing TypeEnv facts
// (see type_lattice.h) and recording the two hazards the TF backend turns
// into opaque staging errors:
//
//   - kBranchMismatch: an `if` whose branches bind the same threaded
//     variable to conflicting dtypes/kinds or conflicting shapes —
//     `tf.cond` requires both branch outputs to agree (lint code AG002);
//   - kLoopVariant: a `while`/`for` body that rebinds a loop variable to
//     a dtype/shape different from its value on loop entry —
//     `tf.while_loop` requires loop variables to be invariant in both
//     (lint code AG003).
//
// The interpreter is deliberately conservative: anything it cannot prove
// concretely becomes Top, and only concrete-vs-concrete disagreements are
// reported, so every issue is a real inconsistency in the source.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/type_lattice.h"
#include "lang/ast.h"

namespace ag::analysis {

// One dtype/shape inconsistency found while interpreting.
struct TypeIssue {
  enum class Kind : std::uint8_t {
    kBranchDType,  // if-branches disagree on kind/dtype
    kBranchShape,  // if-branches disagree on shape/rank
    kLoopDType,    // loop body changes a loop variable's kind/dtype
    kLoopShape,    // loop body changes a loop variable's shape/rank
  };

  Kind kind;
  std::string var;
  TypeFact before;              // else-branch / loop-entry fact
  TypeFact after;               // then-branch / after-one-iteration fact
  const lang::Stmt* stmt;       // the offending if/while/for
};

class ShapeInference {
 public:
  // Runs inference over a function definition. Parameters start at Top
  // (their staged dtype is unknown to the linter).
  explicit ShapeInference(const lang::FunctionDefStmt& fn);
  // Same, over a bare statement list with the given initially-bound names.
  ShapeInference(const lang::StmtList& body,
                 const std::vector<std::string>& params);

  [[nodiscard]] const std::vector<TypeIssue>& issues() const {
    return issues_;
  }
  // Facts at the end of the body (exposed for tests).
  [[nodiscard]] const TypeEnv& exit_env() const { return exit_env_; }

 private:
  void Run(const lang::StmtList& body,
           const std::vector<std::string>& params);
  TypeEnv ExecBody(const lang::StmtList& body, TypeEnv env);
  TypeEnv ExecStmt(const lang::StmtPtr& stmt, TypeEnv env);
  TypeEnv ExecLoop(const lang::StmtPtr& stmt, const lang::StmtList& body,
                   TypeEnv env);
  void AssignTarget(const lang::ExprPtr& target, const TypeFact& fact,
                    TypeEnv* env);
  TypeFact EvalExpr(const lang::ExprPtr& expr, const TypeEnv& env);
  TypeFact EvalCall(const lang::ExprPtr& expr, const TypeEnv& env);

  std::vector<TypeIssue> issues_;
  TypeEnv exit_env_;
};

}  // namespace ag::analysis
