#include "analysis/lint.h"

#include <algorithm>
#include <sstream>

#include "analysis/activity.h"
#include "analysis/callgraph.h"
#include "analysis/cfg.h"
#include "analysis/liveness.h"
#include "analysis/reaching_definitions.h"
#include "analysis/shape_infer.h"
#include "support/strings.h"

namespace ag::analysis {

using lang::Cast;
using lang::StmtKind;
using lang::StmtList;
using lang::StmtPtr;

const char* SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kInfo: return "info";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "<?>";
}

std::string Diagnostic::str() const {
  std::ostringstream os;
  os << location.str() << ": " << SeverityName(severity) << ": [" << code
     << "] " << message;
  if (!note.empty()) os << "\n  note: " << note;
  return os.str();
}

bool HasErrors(const std::vector<Diagnostic>& diagnostics) {
  return std::any_of(diagnostics.begin(), diagnostics.end(),
                     [](const Diagnostic& d) {
                       return d.severity == Severity::kError;
                     });
}

Error ToConversionError(const Diagnostic& diagnostic,
                        const std::string& function_name) {
  std::string message = "[" + diagnostic.code + "] " + diagnostic.message;
  if (!diagnostic.note.empty()) message += " (" + diagnostic.note + ")";
  SourceFrame frame;
  frame.location = diagnostic.location;
  frame.function_name = function_name;
  return Error(ErrorKind::kConversion, std::move(message), {frame});
}

namespace {

// The user-source location of a node (origin when the node descends from
// transformed code; for freshly parsed source origin == loc).
const SourceLocation& Loc(const lang::Node* node) {
  return node->origin.valid() ? node->origin : node->loc;
}

// True for symbols the lint should reason about: plain variable names,
// excluding AutoGraph-internal ag__ temporaries.
bool IsPlainUserName(const std::string& name) {
  return name.find('.') == std::string::npos &&
         name.find('[') == std::string::npos &&
         !StartsWith(name, "ag__");
}

void CollectStmts(const StmtList& body, std::vector<const lang::Stmt*>* out) {
  for (const StmtPtr& s : body) {
    out->push_back(s.get());
    switch (s->kind) {
      case StmtKind::kIf: {
        auto i = Cast<lang::IfStmt>(s);
        CollectStmts(i->body, out);
        CollectStmts(i->orelse, out);
        break;
      }
      case StmtKind::kWhile:
        CollectStmts(Cast<lang::WhileStmt>(s)->body, out);
        break;
      case StmtKind::kFor:
        CollectStmts(Cast<lang::ForStmt>(s)->body, out);
        break;
      default:
        break;
    }
  }
}

// ---- AG001: definite assignment --------------------------------------

void CheckMaybeUndefined(const lang::FunctionDefStmt& fn,
                         std::vector<Diagnostic>* out) {
  ControlFlowGraph cfg = ControlFlowGraph::Build(fn.body, fn.params);
  ReachingDefinitions defs(cfg);

  // Locals: symbols some CFG node writes. Reads of names never written
  // in the function resolve to globals/builtins and are not flagged.
  std::set<std::string> locals;
  for (const CfgNode& node : cfg.nodes()) {
    if (node.stmt != nullptr) {
      locals.insert(node.writes.begin(), node.writes.end());
    }
  }

  std::vector<const lang::Stmt*> stmts;
  CollectStmts(fn.body, &stmts);
  for (const lang::Stmt* stmt : stmts) {
    const CfgNode& node =
        cfg.nodes()[static_cast<size_t>(cfg.NodeFor(stmt))];
    const std::set<std::string>& must = defs.DefinitelyDefinedIn(stmt);
    const std::set<std::string>& may = defs.MaybeDefinedIn(stmt);
    for (const std::string& r : node.reads) {
      if (!IsPlainUserName(r) || locals.count(r) == 0) continue;
      if (must.count(r) > 0 || may.count(r) == 0) continue;
      Diagnostic d;
      d.severity = Severity::kError;
      d.code = "AG001";
      d.message = "'" + r +
                  "' may be undefined here: it is assigned on only some "
                  "control-flow paths (e.g. a single branch of an `if`)";
      d.location = Loc(stmt);
      d.note = "initialize '" + r +
               "' before the conditional so every path defines it; staging "
               "would otherwise fail with an undefined-symbol error in "
               "functional form";
      out->push_back(std::move(d));
    }
  }
}

// ---- AG002 / AG003: branch and loop dtype/shape consistency ----------

void CheckTypeConsistency(const lang::FunctionDefStmt& fn,
                          std::vector<Diagnostic>* out) {
  ShapeInference inference(fn);
  for (const TypeIssue& issue : inference.issues()) {
    if (!IsPlainUserName(issue.var)) continue;
    Diagnostic d;
    d.location = Loc(issue.stmt);
    d.severity = Severity::kError;
    switch (issue.kind) {
      case TypeIssue::Kind::kBranchDType:
        d.code = "AG002";
        d.message = "'" + issue.var +
                    "' is bound to incompatible types across the branches "
                    "of this `if`: " + issue.after.str() + " vs " +
                    issue.before.str();
        d.note = "tf.cond requires both branches to produce the same dtype "
                 "for every threaded variable";
        break;
      case TypeIssue::Kind::kBranchShape:
        d.code = "AG002";
        d.message = "'" + issue.var +
                    "' is bound to incompatible shapes across the branches "
                    "of this `if`: " + issue.after.str() + " vs " +
                    issue.before.str();
        d.note = "tf.cond requires both branches to produce the same shape "
                 "for every threaded variable";
        break;
      case TypeIssue::Kind::kLoopDType:
        d.code = "AG003";
        d.message = "loop variable '" + issue.var +
                    "' changes dtype across iterations: " +
                    issue.before.str() + " on entry vs " +
                    issue.after.str() + " after one iteration";
        d.note = "tf.while_loop requires loop variables to keep a fixed "
                 "dtype; cast before the loop";
        break;
      case TypeIssue::Kind::kLoopShape:
        d.code = "AG003";
        d.message = "loop variable '" + issue.var +
                    "' changes shape across iterations: " +
                    issue.before.str() + " on entry vs " +
                    issue.after.str() + " after one iteration";
        d.note = "tf.while_loop requires shape-invariant loop variables; "
                 "pad or reshape to a fixed shape";
        break;
    }
    out->push_back(std::move(d));
  }
}

// ---- AG004: hidden side effects inside staged control flow -----------

void CheckHiddenSideEffects(const StmtList& body, int control_depth,
                            std::vector<Diagnostic>* out) {
  for (const StmtPtr& s : body) {
    switch (s->kind) {
      case StmtKind::kAssign:
      case StmtKind::kAugAssign: {
        if (control_depth == 0) break;
        const lang::ExprPtr& target =
            s->kind == StmtKind::kAssign
                ? Cast<lang::AssignStmt>(s)->target
                : Cast<lang::AugAssignStmt>(s)->target;
        std::set<std::string> writes;
        std::set<std::string> reads;
        CollectWrites(target, &writes, &reads);
        for (const std::string& w : writes) {
          const bool compound = w.find('.') != std::string::npos ||
                                EndsWith(w, "[]");
          if (!compound) continue;
          Diagnostic d;
          d.severity = Severity::kWarning;
          d.code = "AG004";
          d.message = "write to '" + w +
                      "' inside control flow is a hidden side effect: "
                      "functional form cannot thread compound targets, so "
                      "the write is lost if this construct stages";
          d.location = Loc(s.get());
          d.note = "assign to a local variable inside the control flow and "
                   "write '" + w + "' back once, after it";
          out->push_back(std::move(d));
        }
        break;
      }
      case StmtKind::kIf: {
        auto i = Cast<lang::IfStmt>(s);
        CheckHiddenSideEffects(i->body, control_depth + 1, out);
        CheckHiddenSideEffects(i->orelse, control_depth + 1, out);
        break;
      }
      case StmtKind::kWhile:
        CheckHiddenSideEffects(Cast<lang::WhileStmt>(s)->body,
                               control_depth + 1, out);
        break;
      case StmtKind::kFor:
        CheckHiddenSideEffects(Cast<lang::ForStmt>(s)->body,
                               control_depth + 1, out);
        break;
      default:
        break;
    }
  }
}

// ---- AG005: recursion ------------------------------------------------

void CheckRecursion(const StmtList& defs, const LintOptions& options,
                    std::vector<Diagnostic>* out) {
  CallGraph cg = CallGraph::Build(defs);
  for (const CallGraph::Cycle& cycle : cg.FindRecursion()) {
    Diagnostic d;
    d.code = "AG005";
    d.location = cycle.loc;
    const std::string shape = cycle.path.size() == 1
                                  ? "is recursive"
                                  : "is mutually recursive";
    d.message = "function '" + cycle.path.front() + "' " + shape + " (" +
                cycle.str() + ")";
    if (options.backend == LintBackend::kTF) {
      d.severity = Severity::kError;
      d.note = "the TF graph backend cannot stage recursive functions; "
               "rewrite as a loop or use the Lantern backend, whose IR is "
               "re-entrant";
      d.message += ": the TF graph IR cannot express recursion";
    } else {
      d.severity = Severity::kInfo;
      d.note = "recursion stages on the Lantern backend (re-entrant IR); "
               "ensure the base case does not depend on staged values";
    }
    out->push_back(std::move(d));
  }
}

// ---- AG006: unreachable code -----------------------------------------

bool IsTerminator(const StmtPtr& s) {
  return s->kind == StmtKind::kReturn || s->kind == StmtKind::kBreak ||
         s->kind == StmtKind::kContinue;
}

const char* TerminatorName(const StmtPtr& s) {
  switch (s->kind) {
    case StmtKind::kReturn: return "return";
    case StmtKind::kBreak: return "break";
    default: return "continue";
  }
}

void CheckUnreachable(const StmtList& body, std::vector<Diagnostic>* out) {
  for (size_t i = 0; i < body.size(); ++i) {
    const StmtPtr& s = body[i];
    if (IsTerminator(s) && i + 1 < body.size()) {
      Diagnostic d;
      d.severity = Severity::kWarning;
      d.code = "AG006";
      d.message = std::string("unreachable code: this statement follows a "
                              "'") +
                  TerminatorName(s) + "' and can never execute";
      d.location = Loc(body[i + 1].get());
      d.note = "remove it, or restructure the control flow";
      out->push_back(std::move(d));
      // One report per statement list; later statements in this list are
      // unreachable for the same reason.
    }
    switch (s->kind) {
      case StmtKind::kIf: {
        auto stmt = Cast<lang::IfStmt>(s);
        CheckUnreachable(stmt->body, out);
        CheckUnreachable(stmt->orelse, out);
        break;
      }
      case StmtKind::kWhile:
        CheckUnreachable(Cast<lang::WhileStmt>(s)->body, out);
        break;
      case StmtKind::kFor:
        CheckUnreachable(Cast<lang::ForStmt>(s)->body, out);
        break;
      case StmtKind::kFunctionDef:
        CheckUnreachable(Cast<lang::FunctionDefStmt>(s)->body, out);
        break;
      default:
        break;
    }
    if (IsTerminator(s)) break;
  }
}

// ---- AG007: dead stores ----------------------------------------------

void CheckDeadStores(const lang::FunctionDefStmt& fn,
                     std::vector<Diagnostic>* out) {
  ControlFlowGraph cfg = ControlFlowGraph::Build(fn.body, fn.params);
  Liveness liveness(cfg);

  std::vector<const lang::Stmt*> stmts;
  CollectStmts(fn.body, &stmts);
  for (const lang::Stmt* stmt : stmts) {
    if (stmt->kind != StmtKind::kAssign &&
        stmt->kind != StmtKind::kAugAssign) {
      continue;
    }
    const CfgNode& node =
        cfg.nodes()[static_cast<size_t>(cfg.NodeFor(stmt))];
    const std::set<std::string>& live_out = liveness.LiveOut(stmt);
    for (const std::string& w : node.writes) {
      // Compound targets (`a.b`, `a[i]`) are side effects, not stores to
      // a local; `_`-prefixed names are the discard convention.
      if (!IsPlainUserName(w) || StartsWith(w, "_")) continue;
      if (live_out.count(w) > 0) continue;
      Diagnostic d;
      d.severity = Severity::kWarning;
      d.code = "AG007";
      d.message = "dead store: the value assigned to '" + w +
                  "' is never used — every path rewrites or discards it "
                  "before any read";
      d.location = Loc(stmt);
      d.note = "remove the assignment (the discarded expression still "
               "traces graph ops at staging time), or rename to '_" + w +
               "' if the discard is intentional";
      out->push_back(std::move(d));
    }
  }
}

void SortDiagnostics(std::vector<Diagnostic>* out) {
  std::stable_sort(out->begin(), out->end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     if (a.location.line != b.location.line) {
                       return a.location.line < b.location.line;
                     }
                     if (a.location.column != b.location.column) {
                       return a.location.column < b.location.column;
                     }
                     return a.code < b.code;
                   });
}

void LintFunctionInto(const std::shared_ptr<lang::FunctionDefStmt>& fn,
                      const LintOptions& options, bool with_recursion,
                      std::vector<Diagnostic>* out) {
  CheckMaybeUndefined(*fn, out);
  CheckTypeConsistency(*fn, out);
  CheckHiddenSideEffects(fn->body, 0, out);
  if (with_recursion) {
    CheckRecursion(StmtList{fn}, options, out);
  }
  CheckUnreachable(fn->body, out);
  CheckDeadStores(*fn, out);
}

// Drops diagnostics whose code the spec deselects. Checks still *run*
// (several share one AST walk); the spec filters what is reported.
void ApplyChecksSpec(const LintOptions& options,
                     std::vector<Diagnostic>* out) {
  ValidateChecksSpec(options.checks);
  out->erase(std::remove_if(out->begin(), out->end(),
                            [&options](const Diagnostic& d) {
                              return !options.checks.Selects(d.code, true);
                            }),
             out->end());
}

}  // namespace

void ValidateChecksSpec(const PipelineSpec& checks) {
  auto known = [](const std::string& name) {
    if (name == "default") return true;
    if (name.size() != 5 || name.compare(0, 2, "AG") != 0) return false;
    return name >= "AG001" && name <= "AG007";
  };
  for (const std::string& name : checks.include) {
    if (!known(name)) {
      throw ValueError("aglint: unknown check '" + name +
                       "' in spec (known: AG001..AG007)");
    }
  }
  for (const std::string& name : checks.exclude) {
    if (!known(name)) {
      throw ValueError("aglint: unknown check '" + name +
                       "' in spec (known: AG001..AG007)");
    }
  }
}

std::vector<Diagnostic> LintFunction(
    const std::shared_ptr<lang::FunctionDefStmt>& fn,
    const LintOptions& options) {
  std::vector<Diagnostic> out;
  LintFunctionInto(fn, options, /*with_recursion=*/true, &out);
  SortDiagnostics(&out);
  ApplyChecksSpec(options, &out);
  return out;
}

std::vector<Diagnostic> LintModule(const lang::ModulePtr& module,
                                   const LintOptions& options) {
  std::vector<Diagnostic> out;
  for (const StmtPtr& s : module->body) {
    if (s->kind != StmtKind::kFunctionDef) continue;
    LintFunctionInto(Cast<lang::FunctionDefStmt>(s), options,
                     /*with_recursion=*/false, &out);
  }
  // Recursion over the whole module at once, so mutual recursion across
  // functions is caught and each cycle is reported exactly once.
  CheckRecursion(module->body, options, &out);
  SortDiagnostics(&out);
  ApplyChecksSpec(options, &out);
  return out;
}

}  // namespace ag::analysis
