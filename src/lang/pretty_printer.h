// Tree-shaped AST dump (the paper's pretty_printer.fmt, Appendix C).
//
//   Module:
//   | body=[
//   | | Assign:
//   | | | targets=[ ... ]
//   ...
#pragma once

#include <string>

#include "lang/ast.h"

namespace ag::lang {

[[nodiscard]] std::string Fmt(const ExprPtr& expr);
[[nodiscard]] std::string Fmt(const StmtPtr& stmt);
[[nodiscard]] std::string Fmt(const StmtList& body);
[[nodiscard]] std::string Fmt(const ModulePtr& module);

}  // namespace ag::lang
