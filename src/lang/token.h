// Token definitions for PyMini, the Python-like mini-language AutoGraph-C++
// converts. The lexer is indentation-sensitive (INDENT/DEDENT tokens), like
// CPython's tokenizer.
#pragma once

#include <cstdint>
#include <string>

#include "support/error.h"

namespace ag::lang {

enum class TokenKind : std::uint8_t {
  // Structure
  kNewline,
  kIndent,
  kDedent,
  kEndOfFile,
  // Literals / names
  kName,
  kNumber,
  kString,
  // Keywords
  kDef,
  kReturn,
  kIf,
  kElif,
  kElse,
  kWhile,
  kFor,
  kIn,
  kBreak,
  kContinue,
  kPass,
  kAssert,
  kLambda,
  kAnd,
  kOr,
  kNot,
  kTrue,
  kFalse,
  kNone,
  kGlobal,
  kNonlocal,
  kDel,
  // Operators & punctuation
  kPlus,
  kMinus,
  kStar,
  kDoubleStar,
  kSlash,
  kDoubleSlash,
  kPercent,
  kLess,
  kLessEqual,
  kGreater,
  kGreaterEqual,
  kEqualEqual,
  kNotEqual,
  kAssign,
  kPlusAssign,
  kMinusAssign,
  kStarAssign,
  kSlashAssign,
  kLParen,
  kRParen,
  kLBracket,
  kRBracket,
  kComma,
  kColon,
  kDot,
  kAt,  // decorator
};

[[nodiscard]] const char* TokenKindName(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::kEndOfFile;
  std::string text;      // raw text (identifier name, number literal, ...)
  std::string str_value; // decoded value for string literals
  SourceLocation location;

  [[nodiscard]] bool is(TokenKind k) const { return kind == k; }
};

}  // namespace ag::lang
