#include "lang/unparser.h"

#include <cmath>
#include <sstream>

namespace ag::lang {
namespace {

// Operator precedence for minimal parenthesization.
// Higher binds tighter.
int ExprPrecedence(const ExprPtr& e) {
  switch (e->kind) {
    case ExprKind::kLambda:
      return 0;
    case ExprKind::kIfExp:
      return 1;
    case ExprKind::kBoolOp:
      return Cast<BoolOpExpr>(e)->op == BoolOp::kOr ? 2 : 3;
    case ExprKind::kCompare:
      return 5;
    case ExprKind::kBinary:
      switch (Cast<BinaryExpr>(e)->op) {
        case BinaryOp::kAdd:
        case BinaryOp::kSub:
          return 6;
        case BinaryOp::kMul:
        case BinaryOp::kDiv:
        case BinaryOp::kFloorDiv:
        case BinaryOp::kMod:
          return 7;
        case BinaryOp::kPow:
          return 9;
      }
      return 6;
    case ExprKind::kUnary:
      return Cast<UnaryExpr>(e)->op == UnaryOp::kNot ? 4 : 8;
    case ExprKind::kTuple:
      return 1;  // always parenthesize nested tuples
    default:
      return 100;
  }
}

class Unparser {
 public:
  explicit Unparser(SourceMap* source_map) : source_map_(source_map) {}

  std::string Run(const StmtList& body) {
    for (const StmtPtr& s : body) EmitStmt(s);
    return os_.str();
  }

  void EmitStmt(const StmtPtr& s) {
    switch (s->kind) {
      case StmtKind::kFunctionDef: {
        auto f = Cast<FunctionDefStmt>(s);
        for (const std::string& dec : f->decorators) {
          Line(s, "@" + dec);
        }
        std::string header = "def " + f->name + "(";
        const size_t first_default =
            f->params.size() - f->defaults.size();
        for (size_t i = 0; i < f->params.size(); ++i) {
          if (i > 0) header += ", ";
          header += f->params[i];
          if (i >= first_default) {
            header += "=";
            header += Expr_(f->defaults[i - first_default]);
          }
        }
        header += "):";
        Line(s, header);
        Indented(f->body);
        break;
      }
      case StmtKind::kReturn: {
        auto r = Cast<ReturnStmt>(s);
        Line(s, r->value ? "return " + Expr_(r->value) : "return");
        break;
      }
      case StmtKind::kAssign: {
        auto a = Cast<AssignStmt>(s);
        Line(s, TargetToSource(a->target) + " = " + Expr_(a->value));
        break;
      }
      case StmtKind::kAugAssign: {
        auto a = Cast<AugAssignStmt>(s);
        Line(s, TargetToSource(a->target) + " " + BinaryOpSymbol(a->op) +
                    "= " + Expr_(a->value));
        break;
      }
      case StmtKind::kExprStmt:
        Line(s, Expr_(Cast<ExprStmt>(s)->value));
        break;
      case StmtKind::kIf: {
        auto i = Cast<IfStmt>(s);
        Line(s, "if " + Expr_(i->test) + ":");
        Indented(i->body);
        if (!i->orelse.empty()) {
          Line(s, "else:");
          Indented(i->orelse);
        }
        break;
      }
      case StmtKind::kWhile: {
        auto w = Cast<WhileStmt>(s);
        Line(s, "while " + Expr_(w->test) + ":");
        Indented(w->body);
        break;
      }
      case StmtKind::kFor: {
        auto f = Cast<ForStmt>(s);
        Line(s, "for " + TargetToSource(f->target) + " in " + Expr_(f->iter) +
                    ":");
        Indented(f->body);
        break;
      }
      case StmtKind::kBreak:
        Line(s, "break");
        break;
      case StmtKind::kContinue:
        Line(s, "continue");
        break;
      case StmtKind::kPass:
        Line(s, "pass");
        break;
      case StmtKind::kAssert: {
        auto a = Cast<AssertStmt>(s);
        std::string text = "assert " + Expr_(a->test);
        if (a->msg) text += ", " + Expr_(a->msg);
        Line(s, text);
        break;
      }
    }
  }

 private:
  void Line(const StmtPtr& stmt, const std::string& text) {
    for (int i = 0; i < indent_; ++i) os_ << "  ";
    os_ << text << "\n";
    if (source_map_ != nullptr && stmt->origin.valid()) {
      (*source_map_)[line_] = stmt->origin;
    }
    ++line_;
  }

  void Indented(const StmtList& body) {
    ++indent_;
    for (const StmtPtr& s : body) EmitStmt(s);
    --indent_;
  }

  // Tuple targets are rendered without parens: `a, b = ...`.
  std::string TargetToSource(const ExprPtr& target) {
    if (target->kind == ExprKind::kTuple) {
      const auto& elts = Cast<TupleExpr>(target)->elts;
      std::string out;
      for (size_t i = 0; i < elts.size(); ++i) {
        if (i > 0) out += ", ";
        out += Expr_(elts[i]);
      }
      return out;
    }
    return Expr_(target);
  }

  std::string Expr_(const ExprPtr& e) { return ExprToSource(e); }

  std::ostringstream os_;
  int indent_ = 0;
  int line_ = 1;
  SourceMap* source_map_;
};

std::string Escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\\': out += "\\\\"; break;
      case '\'': out += "\\'"; break;
      default: out += c;
    }
  }
  return out;
}

std::string ChildToSource(const ExprPtr& child, int parent_prec) {
  std::string s = ExprToSource(child);
  if (ExprPrecedence(child) < parent_prec) return "(" + s + ")";
  return s;
}

}  // namespace

std::string ExprToSource(const ExprPtr& e) {
  if (!e) return "";
  switch (e->kind) {
    case ExprKind::kName:
      return Cast<NameExpr>(e)->id;
    case ExprKind::kNumber: {
      auto n = Cast<NumberExpr>(e);
      if (n->is_int) {
        std::ostringstream os;
        os << static_cast<long long>(n->value);
        return os.str();
      }
      std::ostringstream os;
      os << n->value;
      std::string s = os.str();
      if (s.find('.') == std::string::npos &&
          s.find('e') == std::string::npos &&
          s.find("inf") == std::string::npos &&
          s.find("nan") == std::string::npos) {
        s += ".0";
      }
      return s;
    }
    case ExprKind::kString: {
      std::string quoted = "'";
      quoted += Escape(Cast<StringExpr>(e)->value);
      quoted += "'";
      return quoted;
    }
    case ExprKind::kBool:
      return Cast<BoolExpr>(e)->value ? "True" : "False";
    case ExprKind::kNone:
      return "None";
    case ExprKind::kTuple: {
      const auto& elts = Cast<TupleExpr>(e)->elts;
      std::string out = "(";
      for (size_t i = 0; i < elts.size(); ++i) {
        if (i > 0) out += ", ";
        out += ExprToSource(elts[i]);
      }
      if (elts.size() == 1) out += ",";
      return out + ")";
    }
    case ExprKind::kList: {
      const auto& elts = Cast<ListExpr>(e)->elts;
      std::string out = "[";
      for (size_t i = 0; i < elts.size(); ++i) {
        if (i > 0) out += ", ";
        out += ExprToSource(elts[i]);
      }
      return out + "]";
    }
    case ExprKind::kAttribute: {
      auto a = Cast<AttributeExpr>(e);
      return ChildToSource(a->value, 100) + "." + a->attr;
    }
    case ExprKind::kSubscript: {
      auto s = Cast<SubscriptExpr>(e);
      return ChildToSource(s->value, 100) + "[" + ExprToSource(s->index) + "]";
    }
    case ExprKind::kCall: {
      auto c = Cast<CallExpr>(e);
      std::string out = ChildToSource(c->func, 100) + "(";
      bool first = true;
      for (const ExprPtr& a : c->args) {
        if (!first) out += ", ";
        first = false;
        out += ExprToSource(a);
      }
      for (const Keyword& kw : c->keywords) {
        if (!first) out += ", ";
        first = false;
        out += kw.name + "=" + ExprToSource(kw.value);
      }
      return out + ")";
    }
    case ExprKind::kUnary: {
      auto u = Cast<UnaryExpr>(e);
      const int prec = ExprPrecedence(e);
      return std::string(UnaryOpSymbol(u->op)) +
             ChildToSource(u->operand, prec);
    }
    case ExprKind::kBinary: {
      auto b = Cast<BinaryExpr>(e);
      const int prec = ExprPrecedence(e);
      // Left-assoc: right child needs parens at equal precedence.
      return ChildToSource(b->left, prec) + " " + BinaryOpSymbol(b->op) + " " +
             ChildToSource(b->right, prec + 1);
    }
    case ExprKind::kCompare: {
      auto c = Cast<CompareExpr>(e);
      const int prec = ExprPrecedence(e);
      return ChildToSource(c->left, prec + 1) + " " + CompareOpSymbol(c->op) +
             " " + ChildToSource(c->right, prec + 1);
    }
    case ExprKind::kBoolOp: {
      auto b = Cast<BoolOpExpr>(e);
      const int prec = ExprPrecedence(e);
      const char* sym = b->op == BoolOp::kAnd ? " and " : " or ";
      return ChildToSource(b->left, prec) + sym +
             ChildToSource(b->right, prec + 1);
    }
    case ExprKind::kIfExp: {
      auto i = Cast<IfExpExpr>(e);
      const int prec = ExprPrecedence(e);
      return ChildToSource(i->body, prec + 1) + " if " +
             ChildToSource(i->test, prec + 1) + " else " +
             ChildToSource(i->orelse, prec);
    }
    case ExprKind::kLambda: {
      auto l = Cast<LambdaExpr>(e);
      std::string out = "lambda";
      for (size_t i = 0; i < l->params.size(); ++i) {
        out += i == 0 ? " " : ", ";
        out += l->params[i];
      }
      return out + ": " + ExprToSource(l->body);
    }
  }
  throw InternalError("ExprToSource: unknown kind");
}

std::string AstToSource(const StmtList& body, SourceMap* source_map) {
  return Unparser(source_map).Run(body);
}

std::string AstToSource(const ModulePtr& module, SourceMap* source_map) {
  return AstToSource(module->body, source_map);
}

std::string AstToSource(const StmtPtr& stmt, SourceMap* source_map) {
  return AstToSource(StmtList{stmt}, source_map);
}

}  // namespace ag::lang
