#include "lang/pretty_printer.h"

#include <sstream>

namespace ag::lang {
namespace {

class Printer {
 public:
  std::string Result() { return os_.str(); }

  void Line(const std::string& text) {
    for (int i = 0; i < depth_; ++i) os_ << "| ";
    os_ << text << "\n";
  }

  template <typename F>
  void Nested(F&& f) {
    ++depth_;
    f();
    --depth_;
  }

  void PrintExpr(const ExprPtr& e) {
    if (!e) {
      Line("None");
      return;
    }
    switch (e->kind) {
      case ExprKind::kName:
        Line("Name:");
        Nested([&] { Line("id=\"" + Cast<NameExpr>(e)->id + "\""); });
        break;
      case ExprKind::kNumber: {
        auto n = Cast<NumberExpr>(e);
        std::ostringstream v;
        if (n->is_int) {
          v << static_cast<long long>(n->value);
        } else {
          v << n->value;
        }
        Line("Num:");
        Nested([&] { Line("n=" + v.str()); });
        break;
      }
      case ExprKind::kString:
        Line("Str:");
        Nested([&] { Line("s=\"" + Cast<StringExpr>(e)->value + "\""); });
        break;
      case ExprKind::kBool:
        Line(std::string("NameConstant: ") +
             (Cast<BoolExpr>(e)->value ? "True" : "False"));
        break;
      case ExprKind::kNone:
        Line("NameConstant: None");
        break;
      case ExprKind::kTuple:
        Line("Tuple:");
        Nested([&] { PrintExprList("elts", Cast<TupleExpr>(e)->elts); });
        break;
      case ExprKind::kList:
        Line("List:");
        Nested([&] { PrintExprList("elts", Cast<ListExpr>(e)->elts); });
        break;
      case ExprKind::kAttribute: {
        auto a = Cast<AttributeExpr>(e);
        Line("Attribute:");
        Nested([&] {
          Line("value=");
          Nested([&] { PrintExpr(a->value); });
          Line("attr=\"" + a->attr + "\"");
        });
        break;
      }
      case ExprKind::kSubscript: {
        auto s = Cast<SubscriptExpr>(e);
        Line("Subscript:");
        Nested([&] {
          Line("value=");
          Nested([&] { PrintExpr(s->value); });
          Line("index=");
          Nested([&] { PrintExpr(s->index); });
        });
        break;
      }
      case ExprKind::kCall: {
        auto c = Cast<CallExpr>(e);
        Line("Call:");
        Nested([&] {
          Line("func=");
          Nested([&] { PrintExpr(c->func); });
          PrintExprList("args", c->args);
          if (!c->keywords.empty()) {
            Line("keywords=[");
            Nested([&] {
              for (const Keyword& kw : c->keywords) {
                Line(kw.name + "=");
                Nested([&] { PrintExpr(kw.value); });
              }
            });
            Line("]");
          }
        });
        break;
      }
      case ExprKind::kUnary: {
        auto u = Cast<UnaryExpr>(e);
        Line(std::string("UnaryOp: ") + UnaryOpSymbol(u->op));
        Nested([&] { PrintExpr(u->operand); });
        break;
      }
      case ExprKind::kBinary: {
        auto b = Cast<BinaryExpr>(e);
        Line(std::string("BinOp: ") + BinaryOpSymbol(b->op));
        Nested([&] {
          PrintExpr(b->left);
          PrintExpr(b->right);
        });
        break;
      }
      case ExprKind::kCompare: {
        auto c = Cast<CompareExpr>(e);
        Line(std::string("Compare: ") + CompareOpSymbol(c->op));
        Nested([&] {
          PrintExpr(c->left);
          PrintExpr(c->right);
        });
        break;
      }
      case ExprKind::kBoolOp: {
        auto b = Cast<BoolOpExpr>(e);
        Line(std::string("BoolOp: ") +
             (b->op == BoolOp::kAnd ? "and" : "or"));
        Nested([&] {
          PrintExpr(b->left);
          PrintExpr(b->right);
        });
        break;
      }
      case ExprKind::kIfExp: {
        auto i = Cast<IfExpExpr>(e);
        Line("IfExp:");
        Nested([&] {
          Line("test=");
          Nested([&] { PrintExpr(i->test); });
          Line("body=");
          Nested([&] { PrintExpr(i->body); });
          Line("orelse=");
          Nested([&] { PrintExpr(i->orelse); });
        });
        break;
      }
      case ExprKind::kLambda: {
        auto l = Cast<LambdaExpr>(e);
        std::string params;
        for (size_t i = 0; i < l->params.size(); ++i) {
          if (i > 0) params += ", ";
          params += l->params[i];
        }
        Line("Lambda: (" + params + ")");
        Nested([&] { PrintExpr(l->body); });
        break;
      }
    }
  }

  void PrintStmt(const StmtPtr& s) {
    switch (s->kind) {
      case StmtKind::kFunctionDef: {
        auto f = Cast<FunctionDefStmt>(s);
        std::string params;
        for (size_t i = 0; i < f->params.size(); ++i) {
          if (i > 0) params += ", ";
          params += f->params[i];
        }
        Line("FunctionDef: " + f->name + "(" + params + ")");
        Nested([&] { PrintBody("body", f->body); });
        break;
      }
      case StmtKind::kReturn:
        Line("Return:");
        Nested([&] { PrintExpr(Cast<ReturnStmt>(s)->value); });
        break;
      case StmtKind::kAssign: {
        auto a = Cast<AssignStmt>(s);
        Line("Assign:");
        Nested([&] {
          Line("targets=[");
          Nested([&] { PrintExpr(a->target); });
          Line("]");
          Line("value=");
          Nested([&] { PrintExpr(a->value); });
        });
        break;
      }
      case StmtKind::kAugAssign: {
        auto a = Cast<AugAssignStmt>(s);
        Line(std::string("AugAssign: ") + BinaryOpSymbol(a->op) + "=");
        Nested([&] {
          PrintExpr(a->target);
          PrintExpr(a->value);
        });
        break;
      }
      case StmtKind::kExprStmt:
        Line("Expr:");
        Nested([&] { PrintExpr(Cast<ExprStmt>(s)->value); });
        break;
      case StmtKind::kIf: {
        auto i = Cast<IfStmt>(s);
        Line("If:");
        Nested([&] {
          Line("test=");
          Nested([&] { PrintExpr(i->test); });
          PrintBody("body", i->body);
          if (!i->orelse.empty()) PrintBody("orelse", i->orelse);
        });
        break;
      }
      case StmtKind::kWhile: {
        auto w = Cast<WhileStmt>(s);
        Line("While:");
        Nested([&] {
          Line("test=");
          Nested([&] { PrintExpr(w->test); });
          PrintBody("body", w->body);
        });
        break;
      }
      case StmtKind::kFor: {
        auto f = Cast<ForStmt>(s);
        Line("For:");
        Nested([&] {
          Line("target=");
          Nested([&] { PrintExpr(f->target); });
          Line("iter=");
          Nested([&] { PrintExpr(f->iter); });
          PrintBody("body", f->body);
        });
        break;
      }
      case StmtKind::kBreak:
        Line("Break");
        break;
      case StmtKind::kContinue:
        Line("Continue");
        break;
      case StmtKind::kPass:
        Line("Pass");
        break;
      case StmtKind::kAssert: {
        auto a = Cast<AssertStmt>(s);
        Line("Assert:");
        Nested([&] {
          PrintExpr(a->test);
          if (a->msg) PrintExpr(a->msg);
        });
        break;
      }
    }
  }

  void PrintBody(const std::string& label, const StmtList& body) {
    Line(label + "=[");
    Nested([&] {
      for (const StmtPtr& s : body) PrintStmt(s);
    });
    Line("]");
  }

 private:
  void PrintExprList(const std::string& label,
                     const std::vector<ExprPtr>& exprs) {
    Line(label + "=[");
    Nested([&] {
      for (const ExprPtr& e : exprs) PrintExpr(e);
    });
    Line("]");
  }

  std::ostringstream os_;
  int depth_ = 0;
};

}  // namespace

std::string Fmt(const ExprPtr& expr) {
  Printer p;
  p.PrintExpr(expr);
  return p.Result();
}

std::string Fmt(const StmtPtr& stmt) {
  Printer p;
  p.PrintStmt(stmt);
  return p.Result();
}

std::string Fmt(const StmtList& body) {
  Printer p;
  for (const StmtPtr& s : body) p.PrintStmt(s);
  return p.Result();
}

std::string Fmt(const ModulePtr& module) {
  Printer p;
  p.Line("Module:");
  p.Nested([&] { p.PrintBody("body", module->body); });
  return p.Result();
}

}  // namespace ag::lang
