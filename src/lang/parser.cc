#include "lang/parser.h"

#include <cstdlib>

#include "lang/lexer.h"
#include "lang/token.h"

namespace ag::lang {
namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  ModulePtr ParseModule(const std::string& filename) {
    auto module = std::make_shared<Module>();
    module->filename = filename;
    SkipNewlines();
    while (!Check(TokenKind::kEndOfFile)) {
      module->body.push_back(ParseStatement());
      SkipNewlines();
    }
    return module;
  }

 private:
  // ---- token stream helpers ----
  [[nodiscard]] const Token& Peek(size_t offset = 0) const {
    size_t i = pos_ + offset;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  [[nodiscard]] bool Check(TokenKind k) const { return Peek().is(k); }
  const Token& Advance() { return tokens_[pos_++]; }
  bool Match(TokenKind k) {
    if (Check(k)) {
      Advance();
      return true;
    }
    return false;
  }
  const Token& Expect(TokenKind k, const char* context) {
    if (!Check(k)) {
      throw SyntaxError(std::string("expected '") + TokenKindName(k) +
                            "' in " + context + ", got '" +
                            TokenKindName(Peek().kind) + "'",
                        Peek().location);
    }
    return Advance();
  }
  void SkipNewlines() {
    while (Check(TokenKind::kNewline)) Advance();
  }

  template <typename T, typename... Args>
  std::shared_ptr<T> New(const SourceLocation& loc, Args&&... args) {
    auto node = std::make_shared<T>(std::forward<Args>(args)...);
    node->loc = loc;
    node->origin = loc;
    return node;
  }

  // ---- statements ----
  StmtPtr ParseStatement() {
    const Token& t = Peek();
    switch (t.kind) {
      case TokenKind::kAt:
      case TokenKind::kDef:
        return ParseFunctionDef();
      case TokenKind::kIf:
        return ParseIf();
      case TokenKind::kWhile:
        return ParseWhile();
      case TokenKind::kFor:
        return ParseFor();
      case TokenKind::kGlobal:
      case TokenKind::kNonlocal:
        // Paper Appendix E: global/nonlocal are "not allowed".
        throw SyntaxError(std::string(TokenKindName(t.kind)) +
                              " statements are not supported by PyMini",
                          t.location);
      default:
        return ParseSimpleStatement();
    }
  }

  StmtPtr ParseFunctionDef() {
    std::vector<std::string> decorators;
    while (Match(TokenKind::kAt)) {
      // Decorator: dotted name with optional call parens, e.g. @ag.convert()
      std::string dec = Expect(TokenKind::kName, "decorator").text;
      while (Match(TokenKind::kDot)) {
        dec += "." + Expect(TokenKind::kName, "decorator").text;
      }
      if (Match(TokenKind::kLParen)) {
        // Ignore decorator arguments.
        int depth = 1;
        while (depth > 0) {
          const Token& tok = Advance();
          if (tok.is(TokenKind::kLParen)) ++depth;
          if (tok.is(TokenKind::kRParen)) --depth;
          if (tok.is(TokenKind::kEndOfFile)) {
            throw SyntaxError("unterminated decorator", tok.location);
          }
        }
      }
      decorators.push_back(dec);
      Expect(TokenKind::kNewline, "decorator");
      SkipNewlines();
    }

    const Token& def_tok = Expect(TokenKind::kDef, "function definition");
    std::string name = Expect(TokenKind::kName, "function name").text;
    Expect(TokenKind::kLParen, "parameter list");
    std::vector<std::string> params;
    std::vector<ExprPtr> defaults;
    if (!Check(TokenKind::kRParen)) {
      do {
        params.push_back(Expect(TokenKind::kName, "parameter").text);
        if (Match(TokenKind::kAssign)) {
          defaults.push_back(ParseTest());
        } else if (!defaults.empty()) {
          throw SyntaxError("non-default parameter after default parameter",
                            Peek().location);
        }
      } while (Match(TokenKind::kComma));
    }
    Expect(TokenKind::kRParen, "parameter list");
    Expect(TokenKind::kColon, "function definition");
    StmtList body = ParseBlock();
    auto fn = New<FunctionDefStmt>(def_tok.location, std::move(name),
                                   std::move(params), std::move(body));
    fn->defaults = std::move(defaults);
    fn->decorators = std::move(decorators);
    return fn;
  }

  StmtList ParseBlock() {
    Expect(TokenKind::kNewline, "block");
    SkipNewlines();
    Expect(TokenKind::kIndent, "block");
    StmtList body;
    SkipNewlines();
    while (!Check(TokenKind::kDedent) && !Check(TokenKind::kEndOfFile)) {
      body.push_back(ParseStatement());
      SkipNewlines();
    }
    Expect(TokenKind::kDedent, "block");
    if (body.empty()) {
      throw SyntaxError("empty block", Peek().location);
    }
    return body;
  }

  StmtPtr ParseIf() {
    const Token& tok = Expect(TokenKind::kIf, "if statement");
    ExprPtr test = ParseTest();
    Expect(TokenKind::kColon, "if statement");
    StmtList body = ParseBlock();
    StmtList orelse;
    SkipNewlines();
    if (Check(TokenKind::kElif)) {
      // Desugar `elif` into `else: if ...`, like CPython's AST.
      const Token& elif_tok = Advance();
      ExprPtr elif_test = ParseTest();
      Expect(TokenKind::kColon, "elif");
      StmtList elif_body = ParseBlock();
      StmtList elif_orelse = ParseOptionalElse();
      orelse.push_back(New<IfStmt>(elif_tok.location, std::move(elif_test),
                                   std::move(elif_body),
                                   std::move(elif_orelse)));
    } else {
      orelse = ParseOptionalElse();
    }
    return New<IfStmt>(tok.location, std::move(test), std::move(body),
                       std::move(orelse));
  }

  StmtList ParseOptionalElse() {
    SkipNewlines();
    if (Check(TokenKind::kElse)) {
      Advance();
      if (Check(TokenKind::kIf)) {
        // `else if` is not Python; require elif.
        throw SyntaxError("use 'elif', not 'else if'", Peek().location);
      }
      Expect(TokenKind::kColon, "else");
      return ParseBlock();
    }
    if (Check(TokenKind::kElif)) {
      const Token& elif_tok = Advance();
      ExprPtr test = ParseTest();
      Expect(TokenKind::kColon, "elif");
      StmtList body = ParseBlock();
      StmtList orelse = ParseOptionalElse();
      StmtList out;
      out.push_back(New<IfStmt>(elif_tok.location, std::move(test),
                                std::move(body), std::move(orelse)));
      return out;
    }
    return {};
  }

  StmtPtr ParseWhile() {
    const Token& tok = Expect(TokenKind::kWhile, "while statement");
    ExprPtr test = ParseTest();
    Expect(TokenKind::kColon, "while statement");
    StmtList body = ParseBlock();
    return New<WhileStmt>(tok.location, std::move(test), std::move(body));
  }

  StmtPtr ParseFor() {
    const Token& tok = Expect(TokenKind::kFor, "for statement");
    ExprPtr target = ParseTargetList();
    Expect(TokenKind::kIn, "for statement");
    ExprPtr iter = ParseTestList();
    Expect(TokenKind::kColon, "for statement");
    StmtList body = ParseBlock();
    return New<ForStmt>(tok.location, std::move(target), std::move(iter),
                        std::move(body));
  }

  ExprPtr ParseTargetList() {
    SourceLocation loc = Peek().location;
    std::vector<ExprPtr> targets;
    targets.push_back(ParseAtomTrailer());
    while (Match(TokenKind::kComma)) {
      targets.push_back(ParseAtomTrailer());
    }
    if (targets.size() == 1) return targets[0];
    return New<TupleExpr>(loc, std::move(targets));
  }

  StmtPtr ParseSimpleStatement() {
    const Token& t = Peek();
    switch (t.kind) {
      case TokenKind::kReturn: {
        Advance();
        ExprPtr value;
        if (!Check(TokenKind::kNewline) && !Check(TokenKind::kEndOfFile)) {
          value = ParseTestList();
        }
        EndSimpleStatement();
        return New<ReturnStmt>(t.location, std::move(value));
      }
      case TokenKind::kBreak:
        Advance();
        EndSimpleStatement();
        return New<BreakStmt>(t.location);
      case TokenKind::kContinue:
        Advance();
        EndSimpleStatement();
        return New<ContinueStmt>(t.location);
      case TokenKind::kPass:
        Advance();
        EndSimpleStatement();
        return New<PassStmt>(t.location);
      case TokenKind::kAssert: {
        Advance();
        ExprPtr test = ParseTest();
        ExprPtr msg;
        if (Match(TokenKind::kComma)) msg = ParseTest();
        EndSimpleStatement();
        return New<AssertStmt>(t.location, std::move(test), std::move(msg));
      }
      default:
        break;
    }

    // Expression statement / assignment / augmented assignment.
    ExprPtr first = ParseTestList();
    if (Check(TokenKind::kAssign)) {
      Advance();
      ExprPtr value = ParseTestList();
      // Chained assignment a = b = expr.
      std::vector<ExprPtr> targets{first};
      while (Check(TokenKind::kAssign)) {
        Advance();
        targets.push_back(value);
        value = ParseTestList();
      }
      EndSimpleStatement();
      if (targets.size() > 1) {
        throw SyntaxError("chained assignment is not supported", t.location);
      }
      ValidateTarget(targets[0]);
      return New<AssignStmt>(t.location, targets[0], std::move(value));
    }
    BinaryOp aug_op{};
    bool is_aug = true;
    if (Check(TokenKind::kPlusAssign)) {
      aug_op = BinaryOp::kAdd;
    } else if (Check(TokenKind::kMinusAssign)) {
      aug_op = BinaryOp::kSub;
    } else if (Check(TokenKind::kStarAssign)) {
      aug_op = BinaryOp::kMul;
    } else if (Check(TokenKind::kSlashAssign)) {
      aug_op = BinaryOp::kDiv;
    } else {
      is_aug = false;
    }
    if (is_aug) {
      Advance();
      ExprPtr value = ParseTestList();
      EndSimpleStatement();
      ValidateTarget(first);
      return New<AugAssignStmt>(t.location, aug_op, first, std::move(value));
    }
    EndSimpleStatement();
    return New<ExprStmt>(t.location, std::move(first));
  }

  void EndSimpleStatement() {
    if (Check(TokenKind::kNewline)) {
      Advance();
    } else if (!Check(TokenKind::kEndOfFile) && !Check(TokenKind::kDedent)) {
      throw SyntaxError(std::string("unexpected '") +
                            TokenKindName(Peek().kind) +
                            "' after statement",
                        Peek().location);
    }
  }

  void ValidateTarget(const ExprPtr& target) {
    switch (target->kind) {
      case ExprKind::kName:
      case ExprKind::kAttribute:
      case ExprKind::kSubscript:
        return;
      case ExprKind::kTuple:
      case ExprKind::kList: {
        const auto& elts = target->kind == ExprKind::kTuple
                               ? Cast<TupleExpr>(target)->elts
                               : Cast<ListExpr>(target)->elts;
        for (const ExprPtr& e : elts) ValidateTarget(e);
        return;
      }
      default:
        throw SyntaxError("invalid assignment target", target->loc);
    }
  }

  // ---- expressions ----
  // testlist: test (',' test)* — builds a tuple when more than one.
  ExprPtr ParseTestList() {
    SourceLocation loc = Peek().location;
    std::vector<ExprPtr> elts;
    elts.push_back(ParseTest());
    bool is_tuple = false;
    while (Check(TokenKind::kComma)) {
      // A trailing comma before a closer still makes a tuple.
      Advance();
      is_tuple = true;
      if (Check(TokenKind::kNewline) || Check(TokenKind::kEndOfFile) ||
          Check(TokenKind::kRParen) || Check(TokenKind::kRBracket) ||
          Check(TokenKind::kAssign) || Check(TokenKind::kColon)) {
        break;
      }
      elts.push_back(ParseTest());
    }
    if (!is_tuple) return elts[0];
    return New<TupleExpr>(loc, std::move(elts));
  }

  // test: or_test ('if' or_test 'else' test)? | lambda
  ExprPtr ParseTest() {
    if (Check(TokenKind::kLambda)) return ParseLambda();
    ExprPtr body = ParseOrTest();
    if (Check(TokenKind::kIf)) {
      const Token& tok = Advance();
      ExprPtr test = ParseOrTest();
      Expect(TokenKind::kElse, "conditional expression");
      ExprPtr orelse = ParseTest();
      return New<IfExpExpr>(tok.location, std::move(test), std::move(body),
                            std::move(orelse));
    }
    return body;
  }

  ExprPtr ParseLambda() {
    const Token& tok = Expect(TokenKind::kLambda, "lambda");
    std::vector<std::string> params;
    if (!Check(TokenKind::kColon)) {
      do {
        params.push_back(Expect(TokenKind::kName, "lambda parameter").text);
      } while (Match(TokenKind::kComma));
    }
    Expect(TokenKind::kColon, "lambda");
    ExprPtr body = ParseTest();
    return New<LambdaExpr>(tok.location, std::move(params), std::move(body));
  }

  ExprPtr ParseOrTest() {
    ExprPtr left = ParseAndTest();
    while (Check(TokenKind::kOr)) {
      const Token& tok = Advance();
      ExprPtr right = ParseAndTest();
      left = New<BoolOpExpr>(tok.location, BoolOp::kOr, std::move(left),
                             std::move(right));
    }
    return left;
  }

  ExprPtr ParseAndTest() {
    ExprPtr left = ParseNotTest();
    while (Check(TokenKind::kAnd)) {
      const Token& tok = Advance();
      ExprPtr right = ParseNotTest();
      left = New<BoolOpExpr>(tok.location, BoolOp::kAnd, std::move(left),
                             std::move(right));
    }
    return left;
  }

  ExprPtr ParseNotTest() {
    if (Check(TokenKind::kNot)) {
      const Token& tok = Advance();
      // `not in` handled in comparison; a leading `not` binds the test.
      ExprPtr operand = ParseNotTest();
      return New<UnaryExpr>(tok.location, UnaryOp::kNot, std::move(operand));
    }
    return ParseComparison();
  }

  ExprPtr ParseComparison() {
    // Python chained-comparison semantics: `a < b < c` means
    // `a < b and b < c` (the middle operand is syntactically duplicated;
    // PyMini expressions in the supported subset are side-effect-free).
    ExprPtr left = ParseArith();
    ExprPtr chain;  // accumulated conjunction for chains
    while (true) {
      CompareOp op;
      const Token& t = Peek();
      if (t.is(TokenKind::kLess)) {
        op = CompareOp::kLt;
      } else if (t.is(TokenKind::kLessEqual)) {
        op = CompareOp::kLe;
      } else if (t.is(TokenKind::kGreater)) {
        op = CompareOp::kGt;
      } else if (t.is(TokenKind::kGreaterEqual)) {
        op = CompareOp::kGe;
      } else if (t.is(TokenKind::kEqualEqual)) {
        op = CompareOp::kEq;
      } else if (t.is(TokenKind::kNotEqual)) {
        op = CompareOp::kNe;
      } else if (t.is(TokenKind::kIn)) {
        op = CompareOp::kIn;
      } else if (t.is(TokenKind::kNot) && Peek(1).is(TokenKind::kIn)) {
        op = CompareOp::kNotIn;
        Advance();  // the `not`
      } else {
        break;
      }
      const Token& tok = Advance();
      ExprPtr right = ParseArith();
      ExprPtr compare = New<CompareExpr>(tok.location, op, std::move(left),
                                         CloneExpr(right));
      chain = chain ? New<BoolOpExpr>(tok.location, BoolOp::kAnd,
                                      std::move(chain), std::move(compare))
                    : std::move(compare);
      left = std::move(right);  // next link compares against this operand
    }
    return chain ? chain : left;
  }

  ExprPtr ParseArith() {
    ExprPtr left = ParseTerm();
    while (Check(TokenKind::kPlus) || Check(TokenKind::kMinus)) {
      const Token& tok = Advance();
      BinaryOp op = tok.is(TokenKind::kPlus) ? BinaryOp::kAdd : BinaryOp::kSub;
      ExprPtr right = ParseTerm();
      left = New<BinaryExpr>(tok.location, op, std::move(left),
                             std::move(right));
    }
    return left;
  }

  ExprPtr ParseTerm() {
    ExprPtr left = ParseFactor();
    while (Check(TokenKind::kStar) || Check(TokenKind::kSlash) ||
           Check(TokenKind::kDoubleSlash) || Check(TokenKind::kPercent)) {
      const Token& tok = Advance();
      BinaryOp op = BinaryOp::kMul;
      if (tok.is(TokenKind::kSlash)) op = BinaryOp::kDiv;
      if (tok.is(TokenKind::kDoubleSlash)) op = BinaryOp::kFloorDiv;
      if (tok.is(TokenKind::kPercent)) op = BinaryOp::kMod;
      ExprPtr right = ParseFactor();
      left = New<BinaryExpr>(tok.location, op, std::move(left),
                             std::move(right));
    }
    return left;
  }

  ExprPtr ParseFactor() {
    if (Check(TokenKind::kMinus) || Check(TokenKind::kPlus)) {
      const Token& tok = Advance();
      UnaryOp op = tok.is(TokenKind::kMinus) ? UnaryOp::kNeg : UnaryOp::kPos;
      ExprPtr operand = ParseFactor();
      return New<UnaryExpr>(tok.location, op, std::move(operand));
    }
    return ParsePower();
  }

  ExprPtr ParsePower() {
    ExprPtr base = ParseAtomTrailer();
    if (Check(TokenKind::kDoubleStar)) {
      const Token& tok = Advance();
      ExprPtr exp = ParseFactor();  // right-associative
      return New<BinaryExpr>(tok.location, BinaryOp::kPow, std::move(base),
                             std::move(exp));
    }
    return base;
  }

  ExprPtr ParseAtomTrailer() {
    ExprPtr e = ParseAtom();
    while (true) {
      if (Check(TokenKind::kLParen)) {
        const Token& tok = Advance();
        std::vector<ExprPtr> args;
        std::vector<Keyword> keywords;
        if (!Check(TokenKind::kRParen)) {
          do {
            if (Check(TokenKind::kRParen)) break;  // trailing comma
            if (Check(TokenKind::kName) && Peek(1).is(TokenKind::kAssign)) {
              std::string kw = Advance().text;
              Advance();  // '='
              keywords.push_back(Keyword{std::move(kw), ParseTest()});
            } else {
              if (!keywords.empty()) {
                throw SyntaxError("positional argument after keyword argument",
                                  Peek().location);
              }
              args.push_back(ParseTest());
            }
          } while (Match(TokenKind::kComma));
        }
        Expect(TokenKind::kRParen, "call");
        e = New<CallExpr>(tok.location, std::move(e), std::move(args),
                          std::move(keywords));
      } else if (Check(TokenKind::kLBracket)) {
        const Token& tok = Advance();
        ExprPtr index = ParseTestList();
        Expect(TokenKind::kRBracket, "subscript");
        e = New<SubscriptExpr>(tok.location, std::move(e), std::move(index));
      } else if (Check(TokenKind::kDot)) {
        const Token& tok = Advance();
        std::string attr = Expect(TokenKind::kName, "attribute access").text;
        e = New<AttributeExpr>(tok.location, std::move(e), std::move(attr));
      } else {
        break;
      }
    }
    return e;
  }

  ExprPtr ParseAtom() {
    const Token& t = Peek();
    switch (t.kind) {
      case TokenKind::kName:
        Advance();
        return New<NameExpr>(t.location, t.text);
      case TokenKind::kNumber: {
        Advance();
        const bool is_int = t.text.find('.') == std::string::npos &&
                            t.text.find('e') == std::string::npos &&
                            t.text.find('E') == std::string::npos;
        return New<NumberExpr>(t.location, std::strtod(t.text.c_str(), nullptr),
                               is_int);
      }
      case TokenKind::kString:
        Advance();
        return New<StringExpr>(t.location, t.str_value);
      case TokenKind::kTrue:
        Advance();
        return New<BoolExpr>(t.location, true);
      case TokenKind::kFalse:
        Advance();
        return New<BoolExpr>(t.location, false);
      case TokenKind::kNone:
        Advance();
        return New<NoneExpr>(t.location);
      case TokenKind::kLParen: {
        Advance();
        if (Check(TokenKind::kRParen)) {
          Advance();
          return New<TupleExpr>(t.location, std::vector<ExprPtr>{});
        }
        ExprPtr inner = ParseTestList();
        Expect(TokenKind::kRParen, "parenthesized expression");
        return inner;
      }
      case TokenKind::kLBracket: {
        Advance();
        std::vector<ExprPtr> elts;
        if (!Check(TokenKind::kRBracket)) {
          do {
            if (Check(TokenKind::kRBracket)) break;  // trailing comma
            elts.push_back(ParseTest());
          } while (Match(TokenKind::kComma));
        }
        Expect(TokenKind::kRBracket, "list literal");
        return New<ListExpr>(t.location, std::move(elts));
      }
      case TokenKind::kLambda:
        return ParseLambda();
      default:
        throw SyntaxError(std::string("unexpected token '") +
                              TokenKindName(t.kind) + "'",
                          t.location);
    }
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

ModulePtr ParseStr(const std::string& code, const std::string& filename) {
  Parser parser(Tokenize(code, filename));
  return parser.ParseModule(filename);
}

std::shared_ptr<FunctionDefStmt> ParseEntity(const std::string& code,
                                             const std::string& filename) {
  ModulePtr module = ParseStr(code, filename);
  std::shared_ptr<FunctionDefStmt> found;
  for (const StmtPtr& s : module->body) {
    if (s->kind == StmtKind::kFunctionDef) {
      if (found) {
        throw ValueError("ParseEntity: multiple top-level functions");
      }
      found = Cast<FunctionDefStmt>(s);
    }
  }
  if (!found) {
    throw ValueError("ParseEntity: no top-level function found");
  }
  return found;
}

}  // namespace ag::lang
