// Recursive-descent parser for PyMini.
//
// Mirrors the paper's Appendix C utilities:
//   parse_str(code)      -> Module (any sequence of statements)
//   parse_entity(code)   -> the single FunctionDef in `code`
#pragma once

#include <string>

#include "lang/ast.h"

namespace ag::lang {

// Parses arbitrary PyMini code into a Module. Throws Error(kSyntax).
[[nodiscard]] ModulePtr ParseStr(const std::string& code,
                                 const std::string& filename = "<string>");

// Parses code expected to contain exactly one top-level function
// definition and returns it. Throws Error(kSyntax) / Error(kValue).
[[nodiscard]] std::shared_ptr<FunctionDefStmt> ParseEntity(
    const std::string& code, const std::string& filename = "<string>");

}  // namespace ag::lang
