// Templated code rewriting (paper Appendix C, templates.replace).
//
// A template is PyMini source containing placeholder Names. `Replace`
// parses the template and substitutes each placeholder with:
//   - a symbol name (string),
//   - an expression node, or
//   - a list of statements (when the placeholder occupies a whole
//     expression-statement line, e.g. a bare `body`).
//
// Example:
//   auto stmts = templates::Replace(R"(
//     def fn(args):
//       body
//   )", {{"fn", Replacement("my_function")},
//        {"args", Replacement(std::vector<std::string>{"x", "y"})},
//        {"body", Replacement(parsed_body)}});
#pragma once

#include <map>
#include <string>
#include <variant>
#include <vector>

#include "lang/ast.h"

namespace ag::lang::templates {

struct Replacement {
  // A bare symbol name.
  explicit Replacement(std::string symbol) : value(std::move(symbol)) {}
  explicit Replacement(const char* symbol) : value(std::string(symbol)) {}
  // Multiple symbols — valid where a parameter list placeholder appears.
  explicit Replacement(std::vector<std::string> symbols)
      : value(std::move(symbols)) {}
  // An expression subtree (cloned on each substitution).
  explicit Replacement(ExprPtr expr) : value(std::move(expr)) {}
  // A statement list — valid where the placeholder is a whole statement.
  explicit Replacement(StmtList stmts) : value(std::move(stmts)) {}

  std::variant<std::string, std::vector<std::string>, ExprPtr, StmtList> value;
};

using ReplacementMap = std::map<std::string, Replacement>;

// Parses `template_code` (dedented automatically) and applies the
// replacements. Throws Error(kValue) if a statement-list replacement is
// used in expression position, or if a placeholder collides with the
// template structure.
[[nodiscard]] StmtList Replace(const std::string& template_code,
                               const ReplacementMap& replacements);

// Single-expression variant: template must be one expression statement.
[[nodiscard]] ExprPtr ReplaceAsExpr(const std::string& template_code,
                                    const ReplacementMap& replacements);

}  // namespace ag::lang::templates
