// AST -> source text (the paper's compiler.ast_to_source), plus source-map
// extraction: for each emitted line, the original user-source location of
// the statement that produced it (paper Appendix B, "source map
// construction").
#pragma once

#include <map>
#include <string>

#include "lang/ast.h"

namespace ag::lang {

// Maps 1-based line numbers of generated code to original user locations.
using SourceMap = std::map<int, SourceLocation>;

// Unparses a statement list / module / expression to PyMini source.
[[nodiscard]] std::string AstToSource(const StmtList& body,
                                      SourceMap* source_map = nullptr);
[[nodiscard]] std::string AstToSource(const ModulePtr& module,
                                      SourceMap* source_map = nullptr);
[[nodiscard]] std::string AstToSource(const StmtPtr& stmt,
                                      SourceMap* source_map = nullptr);
[[nodiscard]] std::string ExprToSource(const ExprPtr& expr);

}  // namespace ag::lang
