// Abstract syntax tree for PyMini.
//
// Nodes are held by shared_ptr. Analyses attach annotations keyed by node
// pointer identity, so transforms that *replace* nodes must re-run the
// analyses (the pass manager does this, mirroring AutoGraph, where "each
// pass [consists] of static analysis [then] AST transformations").
//
// Every node carries two locations:
//   - `loc`: where the node sits in the text it was parsed from;
//   - `origin`: the location in the user's ORIGINAL source that this node
//     descends from. Transforms propagate `origin`, giving the source map
//     used for error rewriting (paper Appendix B).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "support/error.h"

namespace ag::lang {

struct Expr;
struct Stmt;
using ExprPtr = std::shared_ptr<Expr>;
using StmtPtr = std::shared_ptr<Stmt>;
using StmtList = std::vector<StmtPtr>;

enum class ExprKind : std::uint8_t {
  kName,
  kNumber,
  kString,
  kBool,
  kNone,
  kTuple,
  kList,
  kAttribute,
  kSubscript,
  kCall,
  kUnary,
  kBinary,
  kCompare,
  kBoolOp,
  kIfExp,
  kLambda,
};

enum class StmtKind : std::uint8_t {
  kFunctionDef,
  kReturn,
  kAssign,
  kAugAssign,
  kExprStmt,
  kIf,
  kWhile,
  kFor,
  kBreak,
  kContinue,
  kPass,
  kAssert,
};

enum class UnaryOp : std::uint8_t { kNot, kNeg, kPos };
enum class BinaryOp : std::uint8_t {
  kAdd, kSub, kMul, kDiv, kFloorDiv, kMod, kPow,
};
enum class CompareOp : std::uint8_t { kLt, kLe, kGt, kGe, kEq, kNe, kIn, kNotIn };
enum class BoolOp : std::uint8_t { kAnd, kOr };

[[nodiscard]] const char* BinaryOpSymbol(BinaryOp op);
[[nodiscard]] const char* CompareOpSymbol(CompareOp op);
[[nodiscard]] const char* UnaryOpSymbol(UnaryOp op);

struct Node {
  SourceLocation loc;
  SourceLocation origin;

  virtual ~Node() = default;

 protected:
  Node() = default;
};

// ----------------------------------------------------------------------
// Expressions
// ----------------------------------------------------------------------

struct Expr : Node {
  explicit Expr(ExprKind k) : kind(k) {}
  ExprKind kind;
};

struct NameExpr final : Expr {
  explicit NameExpr(std::string id_in)
      : Expr(ExprKind::kName), id(std::move(id_in)) {}
  std::string id;
};

struct NumberExpr final : Expr {
  NumberExpr(double v, bool is_int_in)
      : Expr(ExprKind::kNumber), value(v), is_int(is_int_in) {}
  double value;
  bool is_int;
};

struct StringExpr final : Expr {
  explicit StringExpr(std::string v)
      : Expr(ExprKind::kString), value(std::move(v)) {}
  std::string value;
};

struct BoolExpr final : Expr {
  explicit BoolExpr(bool v) : Expr(ExprKind::kBool), value(v) {}
  bool value;
};

struct NoneExpr final : Expr {
  NoneExpr() : Expr(ExprKind::kNone) {}
};

struct TupleExpr final : Expr {
  explicit TupleExpr(std::vector<ExprPtr> elts_in)
      : Expr(ExprKind::kTuple), elts(std::move(elts_in)) {}
  std::vector<ExprPtr> elts;
};

struct ListExpr final : Expr {
  explicit ListExpr(std::vector<ExprPtr> elts_in)
      : Expr(ExprKind::kList), elts(std::move(elts_in)) {}
  std::vector<ExprPtr> elts;
};

struct AttributeExpr final : Expr {
  AttributeExpr(ExprPtr value_in, std::string attr_in)
      : Expr(ExprKind::kAttribute),
        value(std::move(value_in)),
        attr(std::move(attr_in)) {}
  ExprPtr value;
  std::string attr;
};

struct SubscriptExpr final : Expr {
  SubscriptExpr(ExprPtr value_in, ExprPtr index_in)
      : Expr(ExprKind::kSubscript),
        value(std::move(value_in)),
        index(std::move(index_in)) {}
  ExprPtr value;
  ExprPtr index;
};

struct Keyword {
  std::string name;
  ExprPtr value;
};

struct CallExpr final : Expr {
  CallExpr(ExprPtr func_in, std::vector<ExprPtr> args_in,
           std::vector<Keyword> keywords_in = {})
      : Expr(ExprKind::kCall),
        func(std::move(func_in)),
        args(std::move(args_in)),
        keywords(std::move(keywords_in)) {}
  ExprPtr func;
  std::vector<ExprPtr> args;
  std::vector<Keyword> keywords;
};

struct UnaryExpr final : Expr {
  UnaryExpr(UnaryOp op_in, ExprPtr operand_in)
      : Expr(ExprKind::kUnary), op(op_in), operand(std::move(operand_in)) {}
  UnaryOp op;
  ExprPtr operand;
};

struct BinaryExpr final : Expr {
  BinaryExpr(BinaryOp op_in, ExprPtr left_in, ExprPtr right_in)
      : Expr(ExprKind::kBinary),
        op(op_in),
        left(std::move(left_in)),
        right(std::move(right_in)) {}
  BinaryOp op;
  ExprPtr left;
  ExprPtr right;
};

struct CompareExpr final : Expr {
  CompareExpr(CompareOp op_in, ExprPtr left_in, ExprPtr right_in)
      : Expr(ExprKind::kCompare),
        op(op_in),
        left(std::move(left_in)),
        right(std::move(right_in)) {}
  CompareOp op;
  ExprPtr left;
  ExprPtr right;
};

struct BoolOpExpr final : Expr {
  BoolOpExpr(BoolOp op_in, ExprPtr left_in, ExprPtr right_in)
      : Expr(ExprKind::kBoolOp),
        op(op_in),
        left(std::move(left_in)),
        right(std::move(right_in)) {}
  BoolOp op;
  ExprPtr left;
  ExprPtr right;
};

// `body if test else orelse`
struct IfExpExpr final : Expr {
  IfExpExpr(ExprPtr test_in, ExprPtr body_in, ExprPtr orelse_in)
      : Expr(ExprKind::kIfExp),
        test(std::move(test_in)),
        body(std::move(body_in)),
        orelse(std::move(orelse_in)) {}
  ExprPtr test;
  ExprPtr body;
  ExprPtr orelse;
};

struct LambdaExpr final : Expr {
  LambdaExpr(std::vector<std::string> params_in, ExprPtr body_in)
      : Expr(ExprKind::kLambda),
        params(std::move(params_in)),
        body(std::move(body_in)) {}
  std::vector<std::string> params;
  ExprPtr body;
};

// ----------------------------------------------------------------------
// Statements
// ----------------------------------------------------------------------

struct Stmt : Node {
  explicit Stmt(StmtKind k) : kind(k) {}
  StmtKind kind;
};

struct FunctionDefStmt final : Stmt {
  FunctionDefStmt(std::string name_in, std::vector<std::string> params_in,
                  StmtList body_in)
      : Stmt(StmtKind::kFunctionDef),
        name(std::move(name_in)),
        params(std::move(params_in)),
        body(std::move(body_in)) {}
  std::string name;
  std::vector<std::string> params;
  // Default values, right-aligned against params (Python semantics);
  // empty when the function has no defaults.
  std::vector<ExprPtr> defaults;
  StmtList body;
  // Decorator names, e.g. {"ag.convert"}; recorded but not executed.
  std::vector<std::string> decorators;
};

struct ReturnStmt final : Stmt {
  explicit ReturnStmt(ExprPtr value_in)
      : Stmt(StmtKind::kReturn), value(std::move(value_in)) {}
  ExprPtr value;  // may be null (bare `return`)
};

struct AssignStmt final : Stmt {
  AssignStmt(ExprPtr target_in, ExprPtr value_in)
      : Stmt(StmtKind::kAssign),
        target(std::move(target_in)),
        value(std::move(value_in)) {}
  ExprPtr target;  // Name, Tuple of targets, Attribute, or Subscript
  ExprPtr value;
};

struct AugAssignStmt final : Stmt {
  AugAssignStmt(BinaryOp op_in, ExprPtr target_in, ExprPtr value_in)
      : Stmt(StmtKind::kAugAssign),
        op(op_in),
        target(std::move(target_in)),
        value(std::move(value_in)) {}
  BinaryOp op;
  ExprPtr target;
  ExprPtr value;
};

struct ExprStmt final : Stmt {
  explicit ExprStmt(ExprPtr value_in)
      : Stmt(StmtKind::kExprStmt), value(std::move(value_in)) {}
  ExprPtr value;
};

struct IfStmt final : Stmt {
  IfStmt(ExprPtr test_in, StmtList body_in, StmtList orelse_in)
      : Stmt(StmtKind::kIf),
        test(std::move(test_in)),
        body(std::move(body_in)),
        orelse(std::move(orelse_in)) {}
  ExprPtr test;
  StmtList body;
  StmtList orelse;  // empty, or a single IfStmt for elif chains
};

struct WhileStmt final : Stmt {
  WhileStmt(ExprPtr test_in, StmtList body_in)
      : Stmt(StmtKind::kWhile), test(std::move(test_in)),
        body(std::move(body_in)) {}
  ExprPtr test;
  StmtList body;
};

struct ForStmt final : Stmt {
  ForStmt(ExprPtr target_in, ExprPtr iter_in, StmtList body_in)
      : Stmt(StmtKind::kFor),
        target(std::move(target_in)),
        iter(std::move(iter_in)),
        body(std::move(body_in)) {}
  ExprPtr target;  // Name or Tuple of names
  ExprPtr iter;
  StmtList body;
};

struct BreakStmt final : Stmt {
  BreakStmt() : Stmt(StmtKind::kBreak) {}
};

struct ContinueStmt final : Stmt {
  ContinueStmt() : Stmt(StmtKind::kContinue) {}
};

struct PassStmt final : Stmt {
  PassStmt() : Stmt(StmtKind::kPass) {}
};

struct AssertStmt final : Stmt {
  AssertStmt(ExprPtr test_in, ExprPtr msg_in)
      : Stmt(StmtKind::kAssert),
        test(std::move(test_in)),
        msg(std::move(msg_in)) {}
  ExprPtr test;
  ExprPtr msg;  // may be null
};

// A parsed source buffer (sequence of top-level statements).
struct Module {
  StmtList body;
  std::string filename;
};
using ModulePtr = std::shared_ptr<Module>;

// ----------------------------------------------------------------------
// Helpers
// ----------------------------------------------------------------------

// Typed downcasts (no RTTI cost beyond the kind check in debug intent).
template <typename T>
[[nodiscard]] std::shared_ptr<T> Cast(const ExprPtr& e) {
  return std::static_pointer_cast<T>(e);
}
template <typename T>
[[nodiscard]] std::shared_ptr<T> Cast(const StmtPtr& s) {
  return std::static_pointer_cast<T>(s);
}

// Deep copies (annotations are not copied; locations are).
[[nodiscard]] ExprPtr CloneExpr(const ExprPtr& e);
[[nodiscard]] StmtPtr CloneStmt(const StmtPtr& s);
[[nodiscard]] StmtList CloneBody(const StmtList& body);

// Node factories that stamp `origin` from a template node.
[[nodiscard]] ExprPtr MakeName(const std::string& id,
                               const Node* origin_of = nullptr);
[[nodiscard]] ExprPtr MakeAttr(ExprPtr value, const std::string& attr);
[[nodiscard]] ExprPtr MakeCall(ExprPtr func, std::vector<ExprPtr> args,
                               std::vector<Keyword> keywords = {});
// Builds a (possibly dotted) name like "ag.if_stmt".
[[nodiscard]] ExprPtr MakeDottedName(const std::string& dotted);

// Renders the "qualified name" of an expression if it is a Name or a chain
// of Attribute accesses over a Name (paper's Qualified Name Resolution);
// returns nullopt otherwise.
[[nodiscard]] std::optional<std::string> QualifiedName(const ExprPtr& e);

}  // namespace ag::lang
