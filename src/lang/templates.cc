#include "lang/templates.h"

#include "lang/parser.h"
#include "support/strings.h"

namespace ag::lang::templates {
namespace {

class Substituter {
 public:
  explicit Substituter(const ReplacementMap& replacements)
      : replacements_(replacements) {}

  StmtList ProcessBody(const StmtList& body) {
    StmtList out;
    for (const StmtPtr& s : body) {
      // A whole-line placeholder: `body` as a bare expression statement.
      if (s->kind == StmtKind::kExprStmt) {
        const ExprPtr& v = Cast<ExprStmt>(s)->value;
        if (v->kind == ExprKind::kName) {
          const Replacement* r = Find(Cast<NameExpr>(v)->id);
          if (r != nullptr && std::holds_alternative<StmtList>(r->value)) {
            for (const StmtPtr& repl : std::get<StmtList>(r->value)) {
              out.push_back(CloneStmt(repl));
            }
            continue;
          }
        }
      }
      out.push_back(ProcessStmt(s));
    }
    return out;
  }

  StmtPtr ProcessStmt(const StmtPtr& s) {
    switch (s->kind) {
      case StmtKind::kFunctionDef: {
        auto f = Cast<FunctionDefStmt>(s);
        f->name = SubstSymbol(f->name);
        std::vector<std::string> params;
        for (const std::string& p : f->params) {
          const Replacement* r = Find(p);
          if (r != nullptr &&
              std::holds_alternative<std::vector<std::string>>(r->value)) {
            for (const std::string& sym :
                 std::get<std::vector<std::string>>(r->value)) {
              params.push_back(sym);
            }
          } else {
            params.push_back(SubstSymbol(p));
          }
        }
        f->params = std::move(params);
        for (ExprPtr& d : f->defaults) d = ProcessExpr(d);
        f->body = ProcessBody(f->body);
        return f;
      }
      case StmtKind::kReturn: {
        auto r = Cast<ReturnStmt>(s);
        if (r->value) r->value = ProcessExpr(r->value);
        return r;
      }
      case StmtKind::kAssign: {
        auto a = Cast<AssignStmt>(s);
        a->target = ProcessExpr(a->target);
        a->value = ProcessExpr(a->value);
        return a;
      }
      case StmtKind::kAugAssign: {
        auto a = Cast<AugAssignStmt>(s);
        a->target = ProcessExpr(a->target);
        a->value = ProcessExpr(a->value);
        return a;
      }
      case StmtKind::kExprStmt: {
        auto e = Cast<ExprStmt>(s);
        e->value = ProcessExpr(e->value);
        return e;
      }
      case StmtKind::kIf: {
        auto i = Cast<IfStmt>(s);
        i->test = ProcessExpr(i->test);
        i->body = ProcessBody(i->body);
        i->orelse = ProcessBody(i->orelse);
        return i;
      }
      case StmtKind::kWhile: {
        auto w = Cast<WhileStmt>(s);
        w->test = ProcessExpr(w->test);
        w->body = ProcessBody(w->body);
        return w;
      }
      case StmtKind::kFor: {
        auto f = Cast<ForStmt>(s);
        f->target = ProcessExpr(f->target);
        f->iter = ProcessExpr(f->iter);
        f->body = ProcessBody(f->body);
        return f;
      }
      case StmtKind::kAssert: {
        auto a = Cast<AssertStmt>(s);
        a->test = ProcessExpr(a->test);
        if (a->msg) a->msg = ProcessExpr(a->msg);
        return a;
      }
      case StmtKind::kBreak:
      case StmtKind::kContinue:
      case StmtKind::kPass:
        return s;
    }
    throw InternalError("templates: unknown stmt kind");
  }

  ExprPtr ProcessExpr(const ExprPtr& e) {
    if (!e) return e;
    if (e->kind == ExprKind::kName) {
      const std::string& id = Cast<NameExpr>(e)->id;
      const Replacement* r = Find(id);
      if (r == nullptr) return e;
      if (std::holds_alternative<std::string>(r->value)) {
        const std::string& sym = std::get<std::string>(r->value);
        // Dotted replacement symbols expand to attribute chains.
        ExprPtr out = MakeDottedName(sym);
        out->loc = e->loc;
        out->origin = e->origin;
        return out;
      }
      if (std::holds_alternative<ExprPtr>(r->value)) {
        return CloneExpr(std::get<ExprPtr>(r->value));
      }
      throw ValueError("template placeholder '" + id +
                       "' used in expression position but bound to a "
                       "statement list or symbol list");
    }
    switch (e->kind) {
      case ExprKind::kTuple: {
        auto t = Cast<TupleExpr>(e);
        for (ExprPtr& elt : t->elts) elt = ProcessExpr(elt);
        return t;
      }
      case ExprKind::kList: {
        auto l = Cast<ListExpr>(e);
        for (ExprPtr& elt : l->elts) elt = ProcessExpr(elt);
        return l;
      }
      case ExprKind::kAttribute: {
        auto a = Cast<AttributeExpr>(e);
        a->value = ProcessExpr(a->value);
        return a;
      }
      case ExprKind::kSubscript: {
        auto s = Cast<SubscriptExpr>(e);
        s->value = ProcessExpr(s->value);
        s->index = ProcessExpr(s->index);
        return s;
      }
      case ExprKind::kCall: {
        auto c = Cast<CallExpr>(e);
        c->func = ProcessExpr(c->func);
        // A placeholder bound to a symbol *list* in argument position
        // expands to multiple arguments.
        std::vector<ExprPtr> args;
        for (const ExprPtr& a : c->args) {
          if (a->kind == ExprKind::kName) {
            const Replacement* r = Find(Cast<NameExpr>(a)->id);
            if (r != nullptr &&
                std::holds_alternative<std::vector<std::string>>(r->value)) {
              for (const std::string& sym :
                   std::get<std::vector<std::string>>(r->value)) {
                args.push_back(MakeName(sym, a.get()));
              }
              continue;
            }
          }
          args.push_back(ProcessExpr(a));
        }
        c->args = std::move(args);
        for (Keyword& kw : c->keywords) kw.value = ProcessExpr(kw.value);
        return c;
      }
      case ExprKind::kUnary: {
        auto u = Cast<UnaryExpr>(e);
        u->operand = ProcessExpr(u->operand);
        return u;
      }
      case ExprKind::kBinary: {
        auto b = Cast<BinaryExpr>(e);
        b->left = ProcessExpr(b->left);
        b->right = ProcessExpr(b->right);
        return b;
      }
      case ExprKind::kCompare: {
        auto c = Cast<CompareExpr>(e);
        c->left = ProcessExpr(c->left);
        c->right = ProcessExpr(c->right);
        return c;
      }
      case ExprKind::kBoolOp: {
        auto b = Cast<BoolOpExpr>(e);
        b->left = ProcessExpr(b->left);
        b->right = ProcessExpr(b->right);
        return b;
      }
      case ExprKind::kIfExp: {
        auto i = Cast<IfExpExpr>(e);
        i->test = ProcessExpr(i->test);
        i->body = ProcessExpr(i->body);
        i->orelse = ProcessExpr(i->orelse);
        return i;
      }
      case ExprKind::kLambda: {
        auto l = Cast<LambdaExpr>(e);
        for (std::string& p : l->params) p = SubstSymbol(p);
        l->body = ProcessExpr(l->body);
        return l;
      }
      default:
        return e;
    }
  }

 private:
  const Replacement* Find(const std::string& id) const {
    auto it = replacements_.find(id);
    return it == replacements_.end() ? nullptr : &it->second;
  }

  std::string SubstSymbol(const std::string& id) const {
    const Replacement* r = Find(id);
    if (r == nullptr) return id;
    if (std::holds_alternative<std::string>(r->value)) {
      const std::string& sym = std::get<std::string>(r->value);
      if (!IsIdentifier(sym)) {
        throw ValueError("template symbol replacement '" + sym +
                         "' is not a valid identifier");
      }
      return sym;
    }
    throw ValueError("template placeholder '" + id +
                     "' in symbol position must be bound to a symbol name");
  }

  const ReplacementMap& replacements_;
};

}  // namespace

StmtList Replace(const std::string& template_code,
                 const ReplacementMap& replacements) {
  ModulePtr module = ParseStr(Dedent(template_code), "<template>");
  Substituter sub(replacements);
  return sub.ProcessBody(module->body);
}

ExprPtr ReplaceAsExpr(const std::string& template_code,
                      const ReplacementMap& replacements) {
  StmtList stmts = Replace(template_code, replacements);
  if (stmts.size() != 1 || stmts[0]->kind != StmtKind::kExprStmt) {
    throw ValueError("ReplaceAsExpr: template must be a single expression");
  }
  return Cast<ExprStmt>(stmts[0])->value;
}

}  // namespace ag::lang::templates
