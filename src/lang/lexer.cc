#include "lang/lexer.h"

#include <cctype>
#include <unordered_map>

namespace ag::lang {
namespace {

const std::unordered_map<std::string, TokenKind>& Keywords() {
  static const auto* kMap = new std::unordered_map<std::string, TokenKind>{
      {"def", TokenKind::kDef},         {"return", TokenKind::kReturn},
      {"if", TokenKind::kIf},           {"elif", TokenKind::kElif},
      {"else", TokenKind::kElse},       {"while", TokenKind::kWhile},
      {"for", TokenKind::kFor},         {"in", TokenKind::kIn},
      {"break", TokenKind::kBreak},     {"continue", TokenKind::kContinue},
      {"pass", TokenKind::kPass},       {"assert", TokenKind::kAssert},
      {"lambda", TokenKind::kLambda},   {"and", TokenKind::kAnd},
      {"or", TokenKind::kOr},           {"not", TokenKind::kNot},
      {"True", TokenKind::kTrue},       {"False", TokenKind::kFalse},
      {"None", TokenKind::kNone},       {"global", TokenKind::kGlobal},
      {"nonlocal", TokenKind::kNonlocal}, {"del", TokenKind::kDel},
  };
  return *kMap;
}

class Lexer {
 public:
  Lexer(const std::string& source, std::string filename)
      : src_(source), filename_(std::move(filename)) {}

  std::vector<Token> Run() {
    indents_.push_back(0);
    while (!AtEnd()) {
      if (at_line_start_ && paren_depth_ == 0) {
        LexIndentation();
        if (AtEnd()) break;
      }
      LexToken();
    }
    // Terminate any open logical line.
    if (!tokens_.empty() && !tokens_.back().is(TokenKind::kNewline)) {
      Emit(TokenKind::kNewline, "");
    }
    while (indents_.back() > 0) {
      indents_.pop_back();
      Emit(TokenKind::kDedent, "");
    }
    Emit(TokenKind::kEndOfFile, "");
    return std::move(tokens_);
  }

 private:
  [[nodiscard]] bool AtEnd() const { return pos_ >= src_.size(); }
  [[nodiscard]] char Peek(size_t offset = 0) const {
    return pos_ + offset < src_.size() ? src_[pos_ + offset] : '\0';
  }
  char Advance() {
    char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    return c;
  }

  [[nodiscard]] SourceLocation Here() const {
    return SourceLocation{filename_, line_, col_};
  }

  void Emit(TokenKind kind, std::string text, std::string str_value = "") {
    Token t;
    t.kind = kind;
    t.text = std::move(text);
    t.str_value = std::move(str_value);
    t.location = token_start_;
    tokens_.push_back(std::move(t));
  }

  void LexIndentation() {
    // Measure leading spaces; skip blank/comment-only lines entirely.
    while (true) {
      size_t scan = pos_;
      int indent = 0;
      while (scan < src_.size() && (src_[scan] == ' ' || src_[scan] == '\t')) {
        indent += src_[scan] == '\t' ? 8 - indent % 8 : 1;
        ++scan;
      }
      if (scan >= src_.size()) {
        // Trailing whitespace at EOF.
        while (pos_ < scan) Advance();
        return;
      }
      if (src_[scan] == '\n' || src_[scan] == '#') {
        // Blank or comment line: consume through newline.
        while (pos_ < src_.size() && src_[pos_] != '\n') Advance();
        if (!AtEnd()) Advance();  // the newline
        continue;
      }
      // Real content: consume the measured whitespace and emit tokens.
      while (pos_ < scan) Advance();
      token_start_ = Here();
      if (indent > indents_.back()) {
        indents_.push_back(indent);
        Emit(TokenKind::kIndent, "");
      } else {
        while (indent < indents_.back()) {
          indents_.pop_back();
          Emit(TokenKind::kDedent, "");
        }
        if (indent != indents_.back()) {
          throw SyntaxError("inconsistent dedent", Here());
        }
      }
      at_line_start_ = false;
      return;
    }
  }

  void LexToken() {
    // Skip intra-line whitespace and comments.
    while (!AtEnd()) {
      char c = Peek();
      if (c == ' ' || c == '\t' || c == '\r') {
        Advance();
      } else if (c == '#') {
        while (!AtEnd() && Peek() != '\n') Advance();
      } else if (c == '\\' && Peek(1) == '\n') {
        Advance();
        Advance();  // explicit line continuation
      } else {
        break;
      }
    }
    if (AtEnd()) return;

    token_start_ = Here();
    char c = Peek();

    if (c == '\n') {
      Advance();
      if (paren_depth_ == 0) {
        if (!tokens_.empty() && !tokens_.back().is(TokenKind::kNewline) &&
            !tokens_.back().is(TokenKind::kIndent) &&
            !tokens_.back().is(TokenKind::kDedent)) {
          Emit(TokenKind::kNewline, "");
        }
        at_line_start_ = true;
      }
      return;
    }

    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string name;
      while (!AtEnd() && (std::isalnum(static_cast<unsigned char>(Peek())) ||
                          Peek() == '_')) {
        name += Advance();
      }
      auto it = Keywords().find(name);
      if (it != Keywords().end()) {
        Emit(it->second, name);
      } else {
        Emit(TokenKind::kName, name);
      }
      return;
    }

    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(Peek(1))))) {
      std::string num;
      bool seen_dot = false;
      bool seen_exp = false;
      while (!AtEnd()) {
        char d = Peek();
        if (std::isdigit(static_cast<unsigned char>(d))) {
          num += Advance();
        } else if (d == '.' && !seen_dot && !seen_exp) {
          seen_dot = true;
          num += Advance();
        } else if ((d == 'e' || d == 'E') && !seen_exp) {
          seen_exp = true;
          num += Advance();
          if (Peek() == '+' || Peek() == '-') num += Advance();
        } else {
          break;
        }
      }
      Emit(TokenKind::kNumber, num);
      return;
    }

    if (c == '"' || c == '\'') {
      const char quote = Advance();
      std::string value;
      std::string raw(1, quote);
      while (true) {
        if (AtEnd() || Peek() == '\n') {
          throw SyntaxError("unterminated string literal", token_start_);
        }
        char d = Advance();
        raw += d;
        if (d == quote) break;
        if (d == '\\') {
          if (AtEnd()) throw SyntaxError("bad escape", token_start_);
          char e = Advance();
          raw += e;
          switch (e) {
            case 'n': value += '\n'; break;
            case 't': value += '\t'; break;
            case '\\': value += '\\'; break;
            case '\'': value += '\''; break;
            case '"': value += '"'; break;
            default: value += e;
          }
        } else {
          value += d;
        }
      }
      Emit(TokenKind::kString, raw, value);
      return;
    }

    // Operators / punctuation.
    auto two = [&](char a, char b) { return c == a && Peek(1) == b; };
    if (two('*', '*')) { Advance(); Advance(); Emit(TokenKind::kDoubleStar, "**"); return; }
    if (two('/', '/')) { Advance(); Advance(); Emit(TokenKind::kDoubleSlash, "//"); return; }
    if (two('<', '=')) { Advance(); Advance(); Emit(TokenKind::kLessEqual, "<="); return; }
    if (two('>', '=')) { Advance(); Advance(); Emit(TokenKind::kGreaterEqual, ">="); return; }
    if (two('=', '=')) { Advance(); Advance(); Emit(TokenKind::kEqualEqual, "=="); return; }
    if (two('!', '=')) { Advance(); Advance(); Emit(TokenKind::kNotEqual, "!="); return; }
    if (two('+', '=')) { Advance(); Advance(); Emit(TokenKind::kPlusAssign, "+="); return; }
    if (two('-', '=')) { Advance(); Advance(); Emit(TokenKind::kMinusAssign, "-="); return; }
    if (two('*', '=')) { Advance(); Advance(); Emit(TokenKind::kStarAssign, "*="); return; }
    if (two('/', '=')) { Advance(); Advance(); Emit(TokenKind::kSlashAssign, "/="); return; }

    Advance();
    switch (c) {
      case '+': Emit(TokenKind::kPlus, "+"); return;
      case '-': Emit(TokenKind::kMinus, "-"); return;
      case '*': Emit(TokenKind::kStar, "*"); return;
      case '/': Emit(TokenKind::kSlash, "/"); return;
      case '%': Emit(TokenKind::kPercent, "%"); return;
      case '<': Emit(TokenKind::kLess, "<"); return;
      case '>': Emit(TokenKind::kGreater, ">"); return;
      case '=': Emit(TokenKind::kAssign, "="); return;
      case '(': ++paren_depth_; Emit(TokenKind::kLParen, "("); return;
      case ')': --paren_depth_; Emit(TokenKind::kRParen, ")"); return;
      case '[': ++paren_depth_; Emit(TokenKind::kLBracket, "["); return;
      case ']': --paren_depth_; Emit(TokenKind::kRBracket, "]"); return;
      case ',': Emit(TokenKind::kComma, ","); return;
      case ':': Emit(TokenKind::kColon, ":"); return;
      case '.': Emit(TokenKind::kDot, "."); return;
      case '@': Emit(TokenKind::kAt, "@"); return;
      default:
        throw SyntaxError(std::string("unexpected character '") + c + "'",
                          token_start_);
    }
  }

  const std::string& src_;
  std::string filename_;
  size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
  bool at_line_start_ = true;
  int paren_depth_ = 0;
  std::vector<int> indents_;
  std::vector<Token> tokens_;
  SourceLocation token_start_;
};

}  // namespace

std::vector<Token> Tokenize(const std::string& source,
                            const std::string& filename) {
  return Lexer(source, filename).Run();
}

const char* TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kNewline: return "NEWLINE";
    case TokenKind::kIndent: return "INDENT";
    case TokenKind::kDedent: return "DEDENT";
    case TokenKind::kEndOfFile: return "EOF";
    case TokenKind::kName: return "NAME";
    case TokenKind::kNumber: return "NUMBER";
    case TokenKind::kString: return "STRING";
    case TokenKind::kDef: return "def";
    case TokenKind::kReturn: return "return";
    case TokenKind::kIf: return "if";
    case TokenKind::kElif: return "elif";
    case TokenKind::kElse: return "else";
    case TokenKind::kWhile: return "while";
    case TokenKind::kFor: return "for";
    case TokenKind::kIn: return "in";
    case TokenKind::kBreak: return "break";
    case TokenKind::kContinue: return "continue";
    case TokenKind::kPass: return "pass";
    case TokenKind::kAssert: return "assert";
    case TokenKind::kLambda: return "lambda";
    case TokenKind::kAnd: return "and";
    case TokenKind::kOr: return "or";
    case TokenKind::kNot: return "not";
    case TokenKind::kTrue: return "True";
    case TokenKind::kFalse: return "False";
    case TokenKind::kNone: return "None";
    case TokenKind::kGlobal: return "global";
    case TokenKind::kNonlocal: return "nonlocal";
    case TokenKind::kDel: return "del";
    case TokenKind::kPlus: return "+";
    case TokenKind::kMinus: return "-";
    case TokenKind::kStar: return "*";
    case TokenKind::kDoubleStar: return "**";
    case TokenKind::kSlash: return "/";
    case TokenKind::kDoubleSlash: return "//";
    case TokenKind::kPercent: return "%";
    case TokenKind::kLess: return "<";
    case TokenKind::kLessEqual: return "<=";
    case TokenKind::kGreater: return ">";
    case TokenKind::kGreaterEqual: return ">=";
    case TokenKind::kEqualEqual: return "==";
    case TokenKind::kNotEqual: return "!=";
    case TokenKind::kAssign: return "=";
    case TokenKind::kPlusAssign: return "+=";
    case TokenKind::kMinusAssign: return "-=";
    case TokenKind::kStarAssign: return "*=";
    case TokenKind::kSlashAssign: return "/=";
    case TokenKind::kLParen: return "(";
    case TokenKind::kRParen: return ")";
    case TokenKind::kLBracket: return "[";
    case TokenKind::kRBracket: return "]";
    case TokenKind::kComma: return ",";
    case TokenKind::kColon: return ":";
    case TokenKind::kDot: return ".";
    case TokenKind::kAt: return "@";
  }
  return "?";
}

}  // namespace ag::lang
