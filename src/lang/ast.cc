#include "lang/ast.h"

#include "support/strings.h"

namespace ag::lang {

const char* BinaryOpSymbol(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
    case BinaryOp::kFloorDiv: return "//";
    case BinaryOp::kMod: return "%";
    case BinaryOp::kPow: return "**";
  }
  return "?";
}

const char* CompareOpSymbol(CompareOp op) {
  switch (op) {
    case CompareOp::kLt: return "<";
    case CompareOp::kLe: return "<=";
    case CompareOp::kGt: return ">";
    case CompareOp::kGe: return ">=";
    case CompareOp::kEq: return "==";
    case CompareOp::kNe: return "!=";
    case CompareOp::kIn: return "in";
    case CompareOp::kNotIn: return "not in";
  }
  return "?";
}

const char* UnaryOpSymbol(UnaryOp op) {
  switch (op) {
    case UnaryOp::kNot: return "not ";
    case UnaryOp::kNeg: return "-";
    case UnaryOp::kPos: return "+";
  }
  return "?";
}

namespace {

template <typename T>
std::shared_ptr<T> WithLocs(std::shared_ptr<T> node, const Node& src) {
  node->loc = src.loc;
  node->origin = src.origin;
  return node;
}

std::vector<ExprPtr> CloneExprs(const std::vector<ExprPtr>& es) {
  std::vector<ExprPtr> out;
  out.reserve(es.size());
  for (const ExprPtr& e : es) out.push_back(CloneExpr(e));
  return out;
}

}  // namespace

ExprPtr CloneExpr(const ExprPtr& e) {
  if (!e) return nullptr;
  switch (e->kind) {
    case ExprKind::kName:
      return WithLocs(std::make_shared<NameExpr>(Cast<NameExpr>(e)->id), *e);
    case ExprKind::kNumber: {
      auto n = Cast<NumberExpr>(e);
      return WithLocs(std::make_shared<NumberExpr>(n->value, n->is_int), *e);
    }
    case ExprKind::kString:
      return WithLocs(std::make_shared<StringExpr>(Cast<StringExpr>(e)->value),
                      *e);
    case ExprKind::kBool:
      return WithLocs(std::make_shared<BoolExpr>(Cast<BoolExpr>(e)->value),
                      *e);
    case ExprKind::kNone:
      return WithLocs(std::make_shared<NoneExpr>(), *e);
    case ExprKind::kTuple:
      return WithLocs(
          std::make_shared<TupleExpr>(CloneExprs(Cast<TupleExpr>(e)->elts)),
          *e);
    case ExprKind::kList:
      return WithLocs(
          std::make_shared<ListExpr>(CloneExprs(Cast<ListExpr>(e)->elts)),
          *e);
    case ExprKind::kAttribute: {
      auto a = Cast<AttributeExpr>(e);
      return WithLocs(
          std::make_shared<AttributeExpr>(CloneExpr(a->value), a->attr), *e);
    }
    case ExprKind::kSubscript: {
      auto s = Cast<SubscriptExpr>(e);
      return WithLocs(std::make_shared<SubscriptExpr>(CloneExpr(s->value),
                                                      CloneExpr(s->index)),
                      *e);
    }
    case ExprKind::kCall: {
      auto c = Cast<CallExpr>(e);
      std::vector<Keyword> kws;
      kws.reserve(c->keywords.size());
      for (const Keyword& kw : c->keywords) {
        kws.push_back(Keyword{kw.name, CloneExpr(kw.value)});
      }
      return WithLocs(std::make_shared<CallExpr>(
                          CloneExpr(c->func), CloneExprs(c->args),
                          std::move(kws)),
                      *e);
    }
    case ExprKind::kUnary: {
      auto u = Cast<UnaryExpr>(e);
      return WithLocs(std::make_shared<UnaryExpr>(u->op,
                                                  CloneExpr(u->operand)),
                      *e);
    }
    case ExprKind::kBinary: {
      auto b = Cast<BinaryExpr>(e);
      return WithLocs(std::make_shared<BinaryExpr>(b->op, CloneExpr(b->left),
                                                   CloneExpr(b->right)),
                      *e);
    }
    case ExprKind::kCompare: {
      auto c = Cast<CompareExpr>(e);
      return WithLocs(std::make_shared<CompareExpr>(c->op, CloneExpr(c->left),
                                                    CloneExpr(c->right)),
                      *e);
    }
    case ExprKind::kBoolOp: {
      auto b = Cast<BoolOpExpr>(e);
      return WithLocs(std::make_shared<BoolOpExpr>(b->op, CloneExpr(b->left),
                                                   CloneExpr(b->right)),
                      *e);
    }
    case ExprKind::kIfExp: {
      auto i = Cast<IfExpExpr>(e);
      return WithLocs(
          std::make_shared<IfExpExpr>(CloneExpr(i->test), CloneExpr(i->body),
                                      CloneExpr(i->orelse)),
          *e);
    }
    case ExprKind::kLambda: {
      auto l = Cast<LambdaExpr>(e);
      return WithLocs(std::make_shared<LambdaExpr>(l->params,
                                                   CloneExpr(l->body)),
                      *e);
    }
  }
  throw InternalError("CloneExpr: unknown kind");
}

StmtPtr CloneStmt(const StmtPtr& s) {
  if (!s) return nullptr;
  switch (s->kind) {
    case StmtKind::kFunctionDef: {
      auto f = Cast<FunctionDefStmt>(s);
      auto out = std::make_shared<FunctionDefStmt>(f->name, f->params,
                                                   CloneBody(f->body));
      out->decorators = f->decorators;
      for (const ExprPtr& d : f->defaults) out->defaults.push_back(CloneExpr(d));
      return WithLocs(std::move(out), *s);
    }
    case StmtKind::kReturn:
      return WithLocs(
          std::make_shared<ReturnStmt>(CloneExpr(Cast<ReturnStmt>(s)->value)),
          *s);
    case StmtKind::kAssign: {
      auto a = Cast<AssignStmt>(s);
      return WithLocs(std::make_shared<AssignStmt>(CloneExpr(a->target),
                                                   CloneExpr(a->value)),
                      *s);
    }
    case StmtKind::kAugAssign: {
      auto a = Cast<AugAssignStmt>(s);
      return WithLocs(std::make_shared<AugAssignStmt>(
                          a->op, CloneExpr(a->target), CloneExpr(a->value)),
                      *s);
    }
    case StmtKind::kExprStmt:
      return WithLocs(
          std::make_shared<ExprStmt>(CloneExpr(Cast<ExprStmt>(s)->value)),
          *s);
    case StmtKind::kIf: {
      auto i = Cast<IfStmt>(s);
      return WithLocs(std::make_shared<IfStmt>(CloneExpr(i->test),
                                               CloneBody(i->body),
                                               CloneBody(i->orelse)),
                      *s);
    }
    case StmtKind::kWhile: {
      auto w = Cast<WhileStmt>(s);
      return WithLocs(
          std::make_shared<WhileStmt>(CloneExpr(w->test), CloneBody(w->body)),
          *s);
    }
    case StmtKind::kFor: {
      auto f = Cast<ForStmt>(s);
      return WithLocs(std::make_shared<ForStmt>(CloneExpr(f->target),
                                                CloneExpr(f->iter),
                                                CloneBody(f->body)),
                      *s);
    }
    case StmtKind::kBreak:
      return WithLocs(std::make_shared<BreakStmt>(), *s);
    case StmtKind::kContinue:
      return WithLocs(std::make_shared<ContinueStmt>(), *s);
    case StmtKind::kPass:
      return WithLocs(std::make_shared<PassStmt>(), *s);
    case StmtKind::kAssert: {
      auto a = Cast<AssertStmt>(s);
      return WithLocs(
          std::make_shared<AssertStmt>(CloneExpr(a->test), CloneExpr(a->msg)),
          *s);
    }
  }
  throw InternalError("CloneStmt: unknown kind");
}

StmtList CloneBody(const StmtList& body) {
  StmtList out;
  out.reserve(body.size());
  for (const StmtPtr& s : body) out.push_back(CloneStmt(s));
  return out;
}

ExprPtr MakeName(const std::string& id, const Node* origin_of) {
  auto n = std::make_shared<NameExpr>(id);
  if (origin_of != nullptr) {
    n->loc = origin_of->loc;
    n->origin = origin_of->origin;
  }
  return n;
}

ExprPtr MakeAttr(ExprPtr value, const std::string& attr) {
  auto a = std::make_shared<AttributeExpr>(std::move(value), attr);
  if (a->value) {
    a->loc = a->value->loc;
    a->origin = a->value->origin;
  }
  return a;
}

ExprPtr MakeCall(ExprPtr func, std::vector<ExprPtr> args,
                 std::vector<Keyword> keywords) {
  auto c = std::make_shared<CallExpr>(std::move(func), std::move(args),
                                      std::move(keywords));
  if (c->func) {
    c->loc = c->func->loc;
    c->origin = c->func->origin;
  }
  return c;
}

ExprPtr MakeDottedName(const std::string& dotted) {
  std::vector<std::string> parts = Split(dotted, '.');
  ExprPtr e = std::make_shared<NameExpr>(parts[0]);
  for (size_t i = 1; i < parts.size(); ++i) {
    e = std::make_shared<AttributeExpr>(std::move(e), parts[i]);
  }
  return e;
}

std::optional<std::string> QualifiedName(const ExprPtr& e) {
  if (!e) return std::nullopt;
  if (e->kind == ExprKind::kName) return Cast<NameExpr>(e)->id;
  if (e->kind == ExprKind::kAttribute) {
    auto a = Cast<AttributeExpr>(e);
    auto base = QualifiedName(a->value);
    if (!base) return std::nullopt;
    return *base + "." + a->attr;
  }
  return std::nullopt;
}

}  // namespace ag::lang
