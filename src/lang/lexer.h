// Indentation-sensitive lexer for PyMini.
//
// Produces a flat token stream with kNewline / kIndent / kDedent tokens.
// Inside parentheses/brackets, newlines and indentation are ignored
// (implicit line joining), matching Python.
#pragma once

#include <string>
#include <vector>

#include "lang/token.h"

namespace ag::lang {

// Tokenizes `source`. Throws Error(kSyntax) on malformed input.
[[nodiscard]] std::vector<Token> Tokenize(const std::string& source,
                                          const std::string& filename = "<string>");

}  // namespace ag::lang
