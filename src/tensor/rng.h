// Deterministic random tensor generation for workloads and initializers.
#pragma once

#include <cstdint>
#include <random>

#include "tensor/tensor.h"

namespace ag {

// A seedable RNG producing tensors. Used by benchmark workload generators
// so every run sees identical data.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) : engine_(seed) {}

  // U[low, high).
  [[nodiscard]] Tensor Uniform(Shape shape, float low = 0.0f,
                               float high = 1.0f);
  // N(mean, stddev).
  [[nodiscard]] Tensor Normal(Shape shape, float mean = 0.0f,
                              float stddev = 1.0f);
  // Integers in [0, bound) with kInt32 dtype.
  [[nodiscard]] Tensor UniformInt(Shape shape, int64_t bound);

  [[nodiscard]] int64_t NextInt(int64_t bound);
  [[nodiscard]] float NextUniform();

 private:
  std::mt19937_64 engine_;
};

}  // namespace ag
