#include "tensor/tensor_ops.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "runtime/cancellation.h"
#include "runtime/parallel_for.h"
#include "support/error.h"
#include "tensor/simd/dispatch.h"

namespace ag {
namespace {

using detail::TensorAccess;

// Minimum elements per intra-op shard: below this, shipping work to
// another thread costs more than the loop. Each output element is
// written by exactly one shard and accumulation order within an output
// element never depends on the shard layout, so sharded results are
// bit-identical to sequential ones (the kernel determinism contract —
// see DESIGN.md §4e).
constexpr int64_t kElementGrain = 16384;

// Fixed block length for whole-tensor reductions: partial sums are
// taken over kReduceBlock-element blocks and then combined in block
// order. The block structure depends only on the input length — never
// on the thread budget — so results are identical whether the blocks
// run sequentially or sharded.
constexpr int64_t kReduceBlock = 65536;

// Result dtype for an arithmetic binary op (float wins over int).
DType PromoteDType(DType a, DType b) {
  if (a == DType::kFloat32 || b == DType::kFloat32) return DType::kFloat32;
  if (a == DType::kInt32 || b == DType::kInt32) return DType::kInt32;
  return DType::kBool;
}

// Output tensor over a pool-acquired (contents-unspecified) buffer.
Tensor NewOut(Shape shape, DType dtype) {
  return TensorAccess::Uninitialized(std::move(shape), dtype);
}

// Broadcast-aware elementwise binary kernel. `ra`/`rb` are non-null when
// the caller owns that operand as an rvalue: if its buffer is sole-owned
// (and pooling is on) the op writes the result into it instead of
// allocating. Only the exact-index fast paths reuse — element i is read
// before it is written, never across indices — so in-place results are
// identical to the copying path. The strided broadcast path never
// reuses (output index != input index).
template <typename F>
Tensor BinaryOp(const Tensor& a, const Tensor& b, DType out_dtype, F&& f,
                Tensor* ra = nullptr, Tensor* rb = nullptr) {
  const Shape out_shape = Shape::Broadcast(a.shape(), b.shape());
  const int64_t n = out_shape.num_elements();

  // Fast paths: same shape, or one side scalar. Sharded above the flop
  // threshold: every out[i] is written by exactly one shard.
  if (a.shape() == b.shape()) {
    Tensor* reuse = (ra != nullptr && TensorAccess::CanReuse(*ra)) ? ra
                    : (rb != nullptr && TensorAccess::CanReuse(*rb)) ? rb
                                                                     : nullptr;
    // Capture sources before the move below: `a`/`b` alias `*ra`/`*rb`,
    // and moving one into `out` nulls its handle (the storage itself
    // stays alive inside `out`, so the pointers remain valid).
    const float* pa = a.data();
    const float* pb = b.data();
    Tensor out = reuse != nullptr ? std::move(*reuse)
                                  : NewOut(out_shape, out_dtype);
    float* po = TensorAccess::data(out);
    runtime::ParallelFor(n, kElementGrain, [&](int64_t begin, int64_t end) {
      for (int64_t i = begin; i < end; ++i) po[i] = f(pa[i], pb[i]);
    });
    return reuse != nullptr ? TensorAccess::Retag(std::move(out), out_dtype)
                            : out;
  }
  if (a.num_elements() == 1) {
    const bool reuse = rb != nullptr && TensorAccess::CanReuse(*rb);
    // Read the scalar and capture pb before the move: with reuse, `b`
    // aliases `*rb` and po aliases pb.
    const float va = a.data()[0];
    const float* pb = b.data();
    Tensor out = reuse ? std::move(*rb) : NewOut(out_shape, out_dtype);
    float* po = TensorAccess::data(out);
    runtime::ParallelFor(n, kElementGrain, [&](int64_t begin, int64_t end) {
      for (int64_t i = begin; i < end; ++i) po[i] = f(va, pb[i]);
    });
    return reuse ? TensorAccess::Retag(std::move(out), out_dtype) : out;
  }
  if (b.num_elements() == 1) {
    const bool reuse = ra != nullptr && TensorAccess::CanReuse(*ra);
    const float vb = b.data()[0];
    const float* pa = a.data();
    Tensor out = reuse ? std::move(*ra) : NewOut(out_shape, out_dtype);
    float* po = TensorAccess::data(out);
    runtime::ParallelFor(n, kElementGrain, [&](int64_t begin, int64_t end) {
      for (int64_t i = begin; i < end; ++i) po[i] = f(pa[i], vb);
    });
    return reuse ? TensorAccess::Retag(std::move(out), out_dtype) : out;
  }

  // General broadcast: per-dimension strides, 0 where broadcasting.
  const int r = out_shape.rank();
  auto padded_strides = [r](const Tensor& t) {
    std::vector<int64_t> s(static_cast<size_t>(r), 0);
    const auto& dims = t.shape().dims();
    const auto strides = t.shape().strides();
    const int rt = t.rank();
    for (int i = 0; i < rt; ++i) {
      const int out_axis = r - rt + i;
      s[static_cast<size_t>(out_axis)] =
          dims[static_cast<size_t>(i)] == 1 ? 0 : strides[static_cast<size_t>(i)];
    }
    return s;
  };
  const std::vector<int64_t> sa = padded_strides(a);
  const std::vector<int64_t> sb = padded_strides(b);
  const std::vector<int64_t>& out_dims = out_shape.dims();

  Tensor out_t = NewOut(out_shape, out_dtype);
  float* out = TensorAccess::data(out_t);
  std::vector<int64_t> idx(static_cast<size_t>(r), 0);
  const float* pa = a.data();
  const float* pb = b.data();
  int64_t oa = 0;
  int64_t ob = 0;
  for (int64_t i = 0; i < n; ++i) {
    out[static_cast<size_t>(i)] = f(pa[oa], pb[ob]);
    // Odometer increment.
    for (int d = r - 1; d >= 0; --d) {
      const auto du = static_cast<size_t>(d);
      idx[du] += 1;
      oa += sa[du];
      ob += sb[du];
      if (idx[du] < out_dims[du]) break;
      oa -= sa[du] * idx[du];
      ob -= sb[du] * idx[du];
      idx[du] = 0;
    }
  }
  return out_t;
}

template <typename F>
Tensor UnaryOp(const Tensor& a, DType out_dtype, F&& f, Tensor* ra = nullptr) {
  const int64_t n = a.num_elements();
  const bool reuse = ra != nullptr && TensorAccess::CanReuse(*ra);
  // Capture before the move: `a` aliases `*ra` (see BinaryOp).
  const float* pa = a.data();
  Tensor out = reuse ? std::move(*ra) : NewOut(a.shape(), out_dtype);
  float* po = TensorAccess::data(out);
  runtime::ParallelFor(n, kElementGrain, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) po[i] = f(pa[i]);
  });
  return reuse ? TensorAccess::Retag(std::move(out), out_dtype) : out;
}

// UnaryOp variant over a vectorized array kernel (a simd::KernelTable
// entry): same reuse/Retag structure. The array kernel computes each
// element position-independently (scalar tails mirror the vector lanes
// exactly), so shard boundaries cannot change any value, and it
// tolerates the exact aliasing (dst == src) the reuse path produces.
Tensor UnaryArrayOp(const Tensor& a, DType out_dtype,
                    void (*fn)(const float*, float*, int64_t),
                    Tensor* ra = nullptr) {
  const int64_t n = a.num_elements();
  const bool reuse = ra != nullptr && TensorAccess::CanReuse(*ra);
  const float* pa = a.data();
  Tensor out = reuse ? std::move(*ra) : NewOut(a.shape(), out_dtype);
  float* po = TensorAccess::data(out);
  runtime::ParallelFor(n, kElementGrain, [&](int64_t begin, int64_t end) {
    fn(pa + begin, po + begin, end - begin);
  });
  return reuse ? TensorAccess::Retag(std::move(out), out_dtype) : out;
}

// Shared reduction machinery: reduces `axis` of `a` with accumulator F,
// starting from `init`.
template <typename F>
Tensor Reduce(const Tensor& a, int axis, bool keepdims, float init, F&& f) {
  if (axis == kAllAxes) {
    const float* p = a.data();
    const int64_t n = a.num_elements();
    float acc = init;
    if (n >= 2 * kReduceBlock) {
      // Fixed-block tree: per-block partials in block order, combined in
      // block order. Shape of the tree depends only on n, so the result
      // is bit-identical at every thread budget.
      const int64_t blocks = (n + kReduceBlock - 1) / kReduceBlock;
      std::vector<float> partial(static_cast<size_t>(blocks), init);
      float* pp = partial.data();
      runtime::ParallelFor(blocks, 1, [&](int64_t b0, int64_t b1) {
        for (int64_t b = b0; b < b1; ++b) {
          const int64_t lo = b * kReduceBlock;
          const int64_t hi = std::min(n, lo + kReduceBlock);
          float block_acc = init;
          for (int64_t i = lo; i < hi; ++i) block_acc = f(block_acc, p[i]);
          pp[b] = block_acc;
        }
      });
      for (int64_t b = 0; b < blocks; ++b) acc = f(acc, pp[b]);
    } else {
      for (int64_t i = 0; i < n; ++i) acc = f(acc, p[i]);
    }
    if (keepdims) {
      std::vector<int64_t> dims(static_cast<size_t>(a.rank()), 1);
      Tensor out = NewOut(Shape(std::move(dims)), a.dtype());
      TensorAccess::data(out)[0] = acc;
      return out;
    }
    return Tensor::Scalar(acc, a.dtype());
  }
  const int ax = a.shape().ResolveAxis(axis);
  const auto& dims = a.shape().dims();
  int64_t outer = 1;
  int64_t inner = 1;
  for (int i = 0; i < ax; ++i) outer *= dims[static_cast<size_t>(i)];
  for (int i = ax + 1; i < a.rank(); ++i) inner *= dims[static_cast<size_t>(i)];
  const int64_t mid = dims[static_cast<size_t>(ax)];

  std::vector<int64_t> out_dims;
  for (int i = 0; i < a.rank(); ++i) {
    if (i == ax) {
      if (keepdims) out_dims.push_back(1);
    } else {
      out_dims.push_back(dims[static_cast<size_t>(i)]);
    }
  }
  Tensor out_t = NewOut(Shape(std::move(out_dims)), a.dtype());
  const float* p = a.data();
  float* po = TensorAccess::data(out_t);
  std::fill(po, po + outer * inner, init);
  // Shard over the non-reduced outer axis: each output row accumulates
  // over `mid` in the same order regardless of sharding.
  const int64_t outer_grain =
      std::max<int64_t>(1, kElementGrain / std::max<int64_t>(1, mid * inner));
  runtime::ParallelFor(outer, outer_grain, [&](int64_t o0, int64_t o1) {
    for (int64_t o = o0; o < o1; ++o) {
      for (int64_t m = 0; m < mid; ++m) {
        const float* row = p + (o * mid + m) * inner;
        float* orow = po + o * inner;
        for (int64_t i = 0; i < inner; ++i) orow[i] = f(orow[i], row[i]);
      }
    }
  });
  return out_t;
}

}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  return BinaryOp(a, b, PromoteDType(a.dtype(), b.dtype()),
                  [](float x, float y) { return x + y; });
}

Tensor Add(Tensor&& a, Tensor&& b) {
  return BinaryOp(a, b, PromoteDType(a.dtype(), b.dtype()),
                  [](float x, float y) { return x + y; }, &a, &b);
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  return BinaryOp(a, b, PromoteDType(a.dtype(), b.dtype()),
                  [](float x, float y) { return x - y; });
}

Tensor Sub(Tensor&& a, Tensor&& b) {
  return BinaryOp(a, b, PromoteDType(a.dtype(), b.dtype()),
                  [](float x, float y) { return x - y; }, &a, &b);
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  return BinaryOp(a, b, PromoteDType(a.dtype(), b.dtype()),
                  [](float x, float y) { return x * y; });
}

Tensor Mul(Tensor&& a, Tensor&& b) {
  return BinaryOp(a, b, PromoteDType(a.dtype(), b.dtype()),
                  [](float x, float y) { return x * y; }, &a, &b);
}

Tensor Div(const Tensor& a, const Tensor& b) {
  return BinaryOp(a, b, DType::kFloat32,
                  [](float x, float y) { return x / y; });
}

Tensor Div(Tensor&& a, Tensor&& b) {
  return BinaryOp(a, b, DType::kFloat32,
                  [](float x, float y) { return x / y; }, &a, &b);
}

Tensor FloorDiv(const Tensor& a, const Tensor& b) {
  return BinaryOp(a, b, PromoteDType(a.dtype(), b.dtype()),
                  [](float x, float y) { return std::floor(x / y); });
}

Tensor FloorDiv(Tensor&& a, Tensor&& b) {
  return BinaryOp(a, b, PromoteDType(a.dtype(), b.dtype()),
                  [](float x, float y) { return std::floor(x / y); }, &a, &b);
}

namespace {
// Python modulo semantics.
inline float PyMod(float x, float y) { return x - std::floor(x / y) * y; }
}  // namespace

Tensor Mod(const Tensor& a, const Tensor& b) {
  return BinaryOp(a, b, PromoteDType(a.dtype(), b.dtype()), &PyMod);
}

Tensor Mod(Tensor&& a, Tensor&& b) {
  return BinaryOp(a, b, PromoteDType(a.dtype(), b.dtype()), &PyMod, &a, &b);
}

Tensor Pow(const Tensor& a, const Tensor& b) {
  return BinaryOp(a, b, DType::kFloat32,
                  [](float x, float y) { return std::pow(x, y); });
}

Tensor Pow(Tensor&& a, Tensor&& b) {
  return BinaryOp(a, b, DType::kFloat32,
                  [](float x, float y) { return std::pow(x, y); }, &a, &b);
}

Tensor Maximum(const Tensor& a, const Tensor& b) {
  return BinaryOp(a, b, PromoteDType(a.dtype(), b.dtype()),
                  [](float x, float y) { return std::max(x, y); });
}

Tensor Maximum(Tensor&& a, Tensor&& b) {
  return BinaryOp(a, b, PromoteDType(a.dtype(), b.dtype()),
                  [](float x, float y) { return std::max(x, y); }, &a, &b);
}

Tensor Minimum(const Tensor& a, const Tensor& b) {
  return BinaryOp(a, b, PromoteDType(a.dtype(), b.dtype()),
                  [](float x, float y) { return std::min(x, y); });
}

Tensor Minimum(Tensor&& a, Tensor&& b) {
  return BinaryOp(a, b, PromoteDType(a.dtype(), b.dtype()),
                  [](float x, float y) { return std::min(x, y); }, &a, &b);
}

Tensor Less(const Tensor& a, const Tensor& b) {
  return BinaryOp(a, b, DType::kBool,
                  [](float x, float y) { return x < y ? 1.0f : 0.0f; });
}

Tensor Less(Tensor&& a, Tensor&& b) {
  return BinaryOp(a, b, DType::kBool,
                  [](float x, float y) { return x < y ? 1.0f : 0.0f; }, &a, &b);
}

Tensor LessEqual(const Tensor& a, const Tensor& b) {
  return BinaryOp(a, b, DType::kBool,
                  [](float x, float y) { return x <= y ? 1.0f : 0.0f; });
}

Tensor LessEqual(Tensor&& a, Tensor&& b) {
  return BinaryOp(a, b, DType::kBool,
                  [](float x, float y) { return x <= y ? 1.0f : 0.0f; }, &a,
                  &b);
}

Tensor Greater(const Tensor& a, const Tensor& b) {
  return BinaryOp(a, b, DType::kBool,
                  [](float x, float y) { return x > y ? 1.0f : 0.0f; });
}

Tensor Greater(Tensor&& a, Tensor&& b) {
  return BinaryOp(a, b, DType::kBool,
                  [](float x, float y) { return x > y ? 1.0f : 0.0f; }, &a, &b);
}

Tensor GreaterEqual(const Tensor& a, const Tensor& b) {
  return BinaryOp(a, b, DType::kBool,
                  [](float x, float y) { return x >= y ? 1.0f : 0.0f; });
}

Tensor GreaterEqual(Tensor&& a, Tensor&& b) {
  return BinaryOp(a, b, DType::kBool,
                  [](float x, float y) { return x >= y ? 1.0f : 0.0f; }, &a,
                  &b);
}

Tensor Equal(const Tensor& a, const Tensor& b) {
  return BinaryOp(a, b, DType::kBool,
                  [](float x, float y) { return x == y ? 1.0f : 0.0f; });
}

Tensor Equal(Tensor&& a, Tensor&& b) {
  return BinaryOp(a, b, DType::kBool,
                  [](float x, float y) { return x == y ? 1.0f : 0.0f; }, &a,
                  &b);
}

Tensor NotEqual(const Tensor& a, const Tensor& b) {
  return BinaryOp(a, b, DType::kBool,
                  [](float x, float y) { return x != y ? 1.0f : 0.0f; });
}

Tensor NotEqual(Tensor&& a, Tensor&& b) {
  return BinaryOp(a, b, DType::kBool,
                  [](float x, float y) { return x != y ? 1.0f : 0.0f; }, &a,
                  &b);
}

Tensor LogicalAnd(const Tensor& a, const Tensor& b) {
  return BinaryOp(a, b, DType::kBool, [](float x, float y) {
    return (x != 0.0f && y != 0.0f) ? 1.0f : 0.0f;
  });
}

Tensor LogicalAnd(Tensor&& a, Tensor&& b) {
  return BinaryOp(
      a, b, DType::kBool,
      [](float x, float y) { return (x != 0.0f && y != 0.0f) ? 1.0f : 0.0f; },
      &a, &b);
}

Tensor LogicalOr(const Tensor& a, const Tensor& b) {
  return BinaryOp(a, b, DType::kBool, [](float x, float y) {
    return (x != 0.0f || y != 0.0f) ? 1.0f : 0.0f;
  });
}

Tensor LogicalOr(Tensor&& a, Tensor&& b) {
  return BinaryOp(
      a, b, DType::kBool,
      [](float x, float y) { return (x != 0.0f || y != 0.0f) ? 1.0f : 0.0f; },
      &a, &b);
}

Tensor LogicalNot(const Tensor& a) {
  return UnaryOp(a, DType::kBool,
                 [](float x) { return x == 0.0f ? 1.0f : 0.0f; });
}

Tensor LogicalNot(Tensor&& a) {
  return UnaryOp(a, DType::kBool,
                 [](float x) { return x == 0.0f ? 1.0f : 0.0f; }, &a);
}

Tensor Neg(const Tensor& a) {
  return UnaryOp(a, a.dtype(), [](float x) { return -x; });
}

Tensor Neg(Tensor&& a) {
  return UnaryOp(a, a.dtype(), [](float x) { return -x; }, &a);
}

// Exp/Tanh/Sigmoid consult the active kernel backend (resolved here, on
// the calling thread) and route through the vectorized array kernels
// when present; the scalar backend's table has null entries, keeping
// the libm path byte-identical to the seed.
Tensor Exp(const Tensor& a) {
  if (auto* fn = tensor::simd::ActiveKernels().vexp) {
    return UnaryArrayOp(a, DType::kFloat32, fn);
  }
  return UnaryOp(a, DType::kFloat32, [](float x) { return std::exp(x); });
}

Tensor Exp(Tensor&& a) {
  if (auto* fn = tensor::simd::ActiveKernels().vexp) {
    return UnaryArrayOp(a, DType::kFloat32, fn, &a);
  }
  return UnaryOp(a, DType::kFloat32, [](float x) { return std::exp(x); }, &a);
}

Tensor Log(const Tensor& a) {
  return UnaryOp(a, DType::kFloat32, [](float x) { return std::log(x); });
}

Tensor Log(Tensor&& a) {
  return UnaryOp(a, DType::kFloat32, [](float x) { return std::log(x); }, &a);
}

Tensor Tanh(const Tensor& a) {
  if (auto* fn = tensor::simd::ActiveKernels().vtanh) {
    return UnaryArrayOp(a, DType::kFloat32, fn);
  }
  return UnaryOp(a, DType::kFloat32, [](float x) { return std::tanh(x); });
}

Tensor Tanh(Tensor&& a) {
  if (auto* fn = tensor::simd::ActiveKernels().vtanh) {
    return UnaryArrayOp(a, DType::kFloat32, fn, &a);
  }
  return UnaryOp(a, DType::kFloat32, [](float x) { return std::tanh(x); }, &a);
}

Tensor Sigmoid(const Tensor& a) {
  if (auto* fn = tensor::simd::ActiveKernels().vsigmoid) {
    return UnaryArrayOp(a, DType::kFloat32, fn);
  }
  return UnaryOp(a, DType::kFloat32,
                 [](float x) { return 1.0f / (1.0f + std::exp(-x)); });
}

Tensor Sigmoid(Tensor&& a) {
  if (auto* fn = tensor::simd::ActiveKernels().vsigmoid) {
    return UnaryArrayOp(a, DType::kFloat32, fn, &a);
  }
  return UnaryOp(a, DType::kFloat32,
                 [](float x) { return 1.0f / (1.0f + std::exp(-x)); }, &a);
}

Tensor Relu(const Tensor& a) {
  return UnaryOp(a, DType::kFloat32,
                 [](float x) { return x > 0.0f ? x : 0.0f; });
}

Tensor Relu(Tensor&& a) {
  return UnaryOp(a, DType::kFloat32,
                 [](float x) { return x > 0.0f ? x : 0.0f; }, &a);
}

Tensor Sqrt(const Tensor& a) {
  return UnaryOp(a, DType::kFloat32, [](float x) { return std::sqrt(x); });
}

Tensor Sqrt(Tensor&& a) {
  return UnaryOp(a, DType::kFloat32, [](float x) { return std::sqrt(x); }, &a);
}

Tensor Abs(const Tensor& a) {
  return UnaryOp(a, a.dtype(), [](float x) { return std::fabs(x); });
}

Tensor Abs(Tensor&& a) {
  return UnaryOp(a, a.dtype(), [](float x) { return std::fabs(x); }, &a);
}

Tensor Sign(const Tensor& a) {
  return UnaryOp(a, a.dtype(), [](float x) {
    return x > 0.0f ? 1.0f : (x < 0.0f ? -1.0f : 0.0f);
  });
}

Tensor Sign(Tensor&& a) {
  return UnaryOp(
      a, a.dtype(),
      [](float x) { return x > 0.0f ? 1.0f : (x < 0.0f ? -1.0f : 0.0f); }, &a);
}

Tensor Square(const Tensor& a) {
  return UnaryOp(a, a.dtype(), [](float x) { return x * x; });
}

Tensor Square(Tensor&& a) {
  return UnaryOp(a, a.dtype(), [](float x) { return x * x; }, &a);
}

Tensor Sin(const Tensor& a) {
  return UnaryOp(a, DType::kFloat32, [](float x) { return std::sin(x); });
}

Tensor Sin(Tensor&& a) {
  return UnaryOp(a, DType::kFloat32, [](float x) { return std::sin(x); }, &a);
}

Tensor Cos(const Tensor& a) {
  return UnaryOp(a, DType::kFloat32, [](float x) { return std::cos(x); });
}

Tensor Cos(Tensor&& a) {
  return UnaryOp(a, DType::kFloat32, [](float x) { return std::cos(x); }, &a);
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  if (a.rank() != 2 || b.rank() != 2) {
    throw ValueError("MatMul requires rank-2 tensors, got " +
                     a.shape().str() + " x " + b.shape().str());
  }
  const int64_t m = a.shape().dim(0);
  const int64_t k = a.shape().dim(1);
  const int64_t k2 = b.shape().dim(0);
  const int64_t n = b.shape().dim(1);
  if (k != k2) {
    throw ValueError("MatMul inner dims mismatch: " + a.shape().str() +
                     " x " + b.shape().str());
  }
  Tensor out_t = NewOut(Shape({m, n}), DType::kFloat32);
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = TensorAccess::data(out_t);
  // Vector backend: the table's matmul is a complete driver (packing,
  // sharding, cancellation) writing every element of po. The scalar
  // path below stays byte-identical to the seed.
  if (auto* fn = tensor::simd::ActiveKernels().matmul) {
    fn(pa, pb, po, m, k, n);
    return out_t;
  }
  std::fill(po, po + m * n, 0.0f);
  // Cancellation is polled once per k-panel per shard so a cancel or
  // deadline unwinds within a panel's worth of work, not a whole
  // kernel. The pointer is captured on the calling thread because the
  // shard bodies may run on pool threads that have no scope installed;
  // CancelCheck itself is thread-safe. ParallelFor rethrows the
  // CancelledError on the calling thread (DESIGN.md §4f).
  runtime::CancelCheck* cancel = runtime::CurrentCancelCheck();
  // Row-band parallel, cache-blocked over k so a panel of B rows stays
  // resident while a band of A rows streams over it. Each output row is
  // produced by one shard with k accumulated in ascending order, so the
  // result is bit-identical across thread budgets. Inner loops keep the
  // ikj row-major order (and the zero-skip for sparse-ish A).
  constexpr int64_t kPanel = 256;  // B rows per k-panel (~n KiB of B)
  const int64_t rows_grain =
      std::max<int64_t>(1, kElementGrain / std::max<int64_t>(1, k * n));
  runtime::ParallelFor(m, rows_grain, [&](int64_t i0, int64_t i1) {
    for (int64_t k0 = 0; k0 < k; k0 += kPanel) {
      if (cancel != nullptr) cancel->Poll("MatMul panel");
      const int64_t k1 = std::min(k, k0 + kPanel);
      for (int64_t i = i0; i < i1; ++i) {
        float* orow = po + i * n;
        const float* arow = pa + i * k;
        for (int64_t kk = k0; kk < k1; ++kk) {
          const float av = arow[kk];
          if (av == 0.0f) continue;
          const float* brow = pb + kk * n;
          for (int64_t j = 0; j < n; ++j) orow[j] += av * brow[j];
        }
      }
    }
  });
  return out_t;
}

Tensor ReduceSum(const Tensor& a, int axis, bool keepdims) {
  return Reduce(a, axis, keepdims, 0.0f,
                [](float acc, float x) { return acc + x; });
}

Tensor ReduceMean(const Tensor& a, int axis, bool keepdims) {
  Tensor sum = ReduceSum(a, axis, keepdims);
  const int64_t count = axis == kAllAxes
                            ? a.num_elements()
                            : a.shape().dim(a.shape().ResolveAxis(axis));
  return Div(std::move(sum), Tensor::Scalar(static_cast<float>(count)));
}

Tensor ReduceMax(const Tensor& a, int axis, bool keepdims) {
  return Reduce(a, axis, keepdims, -std::numeric_limits<float>::infinity(),
                [](float acc, float x) { return std::max(acc, x); });
}

Tensor ReduceMin(const Tensor& a, int axis, bool keepdims) {
  return Reduce(a, axis, keepdims, std::numeric_limits<float>::infinity(),
                [](float acc, float x) { return std::min(acc, x); });
}

Tensor ArgMax(const Tensor& a, int axis) {
  const int ax = a.shape().ResolveAxis(axis);
  const auto& dims = a.shape().dims();
  int64_t outer = 1;
  int64_t inner = 1;
  for (int i = 0; i < ax; ++i) outer *= dims[static_cast<size_t>(i)];
  for (int i = ax + 1; i < a.rank(); ++i) inner *= dims[static_cast<size_t>(i)];
  const int64_t mid = dims[static_cast<size_t>(ax)];

  std::vector<int64_t> out_dims;
  for (int i = 0; i < a.rank(); ++i) {
    if (i != ax) out_dims.push_back(dims[static_cast<size_t>(i)]);
  }
  Tensor out_t = NewOut(Shape(std::move(out_dims)), DType::kInt32);
  // Running-max scratch, pool-recycled like any output buffer.
  tensor::PooledBuffer best =
      tensor::BufferPool::Global().Acquire(outer * inner);
  const float* p = a.data();
  float* pout = TensorAccess::data(out_t);
  float* pbest = best.mutable_data();
  std::fill(pout, pout + outer * inner, 0.0f);
  std::fill(pbest, pbest + outer * inner,
            -std::numeric_limits<float>::infinity());
  const int64_t outer_grain =
      std::max<int64_t>(1, kElementGrain / std::max<int64_t>(1, mid * inner));
  runtime::ParallelFor(outer, outer_grain, [&](int64_t o0, int64_t o1) {
    for (int64_t o = o0; o < o1; ++o) {
      for (int64_t m = 0; m < mid; ++m) {
        const float* row = p + (o * mid + m) * inner;
        for (int64_t i = 0; i < inner; ++i) {
          const size_t oi = static_cast<size_t>(o * inner + i);
          if (row[i] > pbest[oi]) {
            pbest[oi] = row[i];
            pout[oi] = static_cast<float>(m);
          }
        }
      }
    }
  });
  return out_t;
}

Tensor Reshape(const Tensor& a, Shape shape) {
  // Support a single -1 wildcard dim, NumPy style.
  int wildcard = -1;
  int64_t known = 1;
  auto dims = shape.dims();
  for (size_t i = 0; i < dims.size(); ++i) {
    if (dims[i] == -1) {
      if (wildcard >= 0) throw ValueError("Reshape: multiple -1 dims");
      wildcard = static_cast<int>(i);
    } else {
      known *= dims[i];
    }
  }
  if (wildcard >= 0) {
    if (known == 0 || a.num_elements() % known != 0) {
      throw ValueError("Reshape: cannot infer -1 dim for " +
                       a.shape().str() + " -> " + shape.str());
    }
    dims[static_cast<size_t>(wildcard)] = a.num_elements() / known;
  }
  return a.Reshaped(Shape(std::move(dims)));
}

Tensor Transpose(const Tensor& a, std::vector<int> perm) {
  if (static_cast<int>(perm.size()) != a.rank()) {
    throw ValueError("Transpose: perm size != rank");
  }
  const auto& dims = a.shape().dims();
  const auto strides = a.shape().strides();
  std::vector<int64_t> out_dims(perm.size());
  std::vector<int64_t> src_strides(perm.size());
  for (size_t i = 0; i < perm.size(); ++i) {
    out_dims[i] = dims[static_cast<size_t>(perm[i])];
    src_strides[i] = strides[static_cast<size_t>(perm[i])];
  }
  const int64_t n = a.num_elements();
  const int r = a.rank();
  Tensor out_t = NewOut(Shape(std::vector<int64_t>(out_dims)), a.dtype());
  float* out = TensorAccess::data(out_t);
  const float* p = a.data();
  std::vector<int64_t> idx(static_cast<size_t>(r), 0);
  int64_t src = 0;
  for (int64_t i = 0; i < n; ++i) {
    out[static_cast<size_t>(i)] = p[src];
    for (int d = r - 1; d >= 0; --d) {
      const auto du = static_cast<size_t>(d);
      idx[du] += 1;
      src += src_strides[du];
      if (idx[du] < out_dims[du]) break;
      src -= src_strides[du] * idx[du];
      idx[du] = 0;
    }
  }
  return out_t;
}

Tensor Concat(const std::vector<Tensor>& parts, int axis) {
  if (parts.empty()) throw ValueError("Concat: empty input");
  const int ax = parts[0].shape().ResolveAxis(axis);
  const auto& base_dims = parts[0].shape().dims();
  int64_t outer = 1;
  int64_t inner = 1;
  for (int i = 0; i < ax; ++i) outer *= base_dims[static_cast<size_t>(i)];
  for (int i = ax + 1; i < parts[0].rank(); ++i) {
    inner *= base_dims[static_cast<size_t>(i)];
  }
  int64_t total_mid = 0;
  for (const Tensor& t : parts) {
    if (t.rank() != parts[0].rank()) {
      throw ValueError("Concat: rank mismatch");
    }
    total_mid += t.shape().dim(ax);
  }
  std::vector<int64_t> out_dims = base_dims;
  out_dims[static_cast<size_t>(ax)] = total_mid;
  Tensor out_t = NewOut(Shape(std::move(out_dims)), parts[0].dtype());
  float* out = TensorAccess::data(out_t);
  for (int64_t o = 0; o < outer; ++o) {
    int64_t written = 0;
    for (const Tensor& t : parts) {
      const int64_t mid = t.shape().dim(ax);
      const float* src = t.data() + o * mid * inner;
      std::copy(src, src + mid * inner,
                out + (o * total_mid + written) * inner);
      written += mid;
    }
  }
  return out_t;
}

Tensor Stack(const std::vector<Tensor>& parts) {
  if (parts.empty()) throw ValueError("Stack: empty input");
  const int64_t per = parts[0].num_elements();
  std::vector<int64_t> dims = parts[0].shape().dims();
  dims.insert(dims.begin(), static_cast<int64_t>(parts.size()));
  Tensor out_t = NewOut(Shape(std::move(dims)), parts[0].dtype());
  float* out = TensorAccess::data(out_t);
  for (size_t i = 0; i < parts.size(); ++i) {
    const Tensor& t = parts[i];
    if (t.shape() != parts[0].shape()) {
      throw ValueError("Stack: shape mismatch " + t.shape().str() + " vs " +
                       parts[0].shape().str());
    }
    std::copy(t.data(), t.data() + per, out + static_cast<int64_t>(i) * per);
  }
  return out_t;
}

std::vector<Tensor> Unstack(const Tensor& a) {
  if (a.rank() < 1) throw ValueError("Unstack: scalar input");
  const int64_t n = a.shape().dim(0);
  std::vector<Tensor> out;
  out.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) out.push_back(IndexAxis0(a, i));
  return out;
}

Tensor IndexAxis0(const Tensor& a, int64_t index) {
  if (a.rank() < 1) throw ValueError("IndexAxis0: scalar input");
  const int64_t n0 = a.shape().dim(0);
  int64_t i = index < 0 ? index + n0 : index;
  if (i < 0 || i >= n0) {
    throw ValueError("index " + std::to_string(index) +
                     " out of range for shape " + a.shape().str());
  }
  const int64_t inner = a.num_elements() / n0;
  std::vector<int64_t> dims(a.shape().dims().begin() + 1,
                            a.shape().dims().end());
  Tensor out_t = NewOut(Shape(std::move(dims)), a.dtype());
  std::copy(a.data() + i * inner, a.data() + (i + 1) * inner,
            TensorAccess::data(out_t));
  return out_t;
}

Tensor SetItemAxis0(const Tensor& a, int64_t index, const Tensor& value) {
  if (a.rank() < 1) throw ValueError("SetItemAxis0: scalar target");
  const int64_t n0 = a.shape().dim(0);
  int64_t i = index < 0 ? index + n0 : index;
  if (i < 0 || i >= n0) {
    throw ValueError("index " + std::to_string(index) +
                     " out of range for shape " + a.shape().str());
  }
  const int64_t inner = a.num_elements() / n0;
  if (value.num_elements() != inner) {
    throw ValueError("SetItemAxis0: value shape " + value.shape().str() +
                     " does not fit row of " + a.shape().str());
  }
  Tensor out_t = NewOut(a.shape(), a.dtype());
  float* out = TensorAccess::data(out_t);
  std::copy(a.data(), a.data() + a.num_elements(), out);
  std::copy(value.data(), value.data() + inner, out + i * inner);
  return out_t;
}

Tensor SetItemAxis0(Tensor&& a, int64_t index, const Tensor& value) {
  // In-place row write: only the updated row is touched, so `a` must be
  // sole-owned (a `value` aliasing a's buffer pins the refcount and
  // routes to the copying overload automatically).
  if (!TensorAccess::CanReuse(a)) {
    return SetItemAxis0(static_cast<const Tensor&>(a), index, value);
  }
  if (a.rank() < 1) throw ValueError("SetItemAxis0: scalar target");
  const int64_t n0 = a.shape().dim(0);
  int64_t i = index < 0 ? index + n0 : index;
  if (i < 0 || i >= n0) {
    throw ValueError("index " + std::to_string(index) +
                     " out of range for shape " + a.shape().str());
  }
  const int64_t inner = a.num_elements() / n0;
  if (value.num_elements() != inner) {
    throw ValueError("SetItemAxis0: value shape " + value.shape().str() +
                     " does not fit row of " + a.shape().str());
  }
  std::copy(value.data(), value.data() + inner,
            TensorAccess::data(a) + i * inner);
  return std::move(a);
}

Tensor Gather(const Tensor& params, const Tensor& indices) {
  if (params.rank() < 1) throw ValueError("Gather: scalar params");
  const int64_t n0 = params.shape().dim(0);
  const int64_t inner = params.num_elements() / n0;
  const int64_t ni = indices.num_elements();
  std::vector<int64_t> dims = indices.shape().dims();
  for (int i = 1; i < params.rank(); ++i) {
    dims.push_back(params.shape().dim(i));
  }
  Tensor out_t = NewOut(Shape(std::move(dims)), params.dtype());
  float* out = TensorAccess::data(out_t);
  for (int64_t i = 0; i < ni; ++i) {
    const int64_t idx = static_cast<int64_t>(std::llround(indices.at(i)));
    if (idx < 0 || idx >= n0) {
      throw ValueError("Gather: index " + std::to_string(idx) +
                       " out of range [0, " + std::to_string(n0) + ")");
    }
    std::copy(params.data() + idx * inner, params.data() + (idx + 1) * inner,
              out + i * inner);
  }
  return out_t;
}

Tensor Where(const Tensor& cond, const Tensor& x, const Tensor& y) {
  if (x.shape() != y.shape()) {
    throw ValueError("Where: branch shapes differ: " + x.shape().str() +
                     " vs " + y.shape().str());
  }
  const int64_t n = x.num_elements();
  Tensor out_t = NewOut(x.shape(), x.dtype());
  float* out = TensorAccess::data(out_t);
  const float* px = x.data();
  const float* py = y.data();
  if (cond.num_elements() == 1) {
    const bool c = cond.data()[0] != 0.0f;
    const float* src = c ? px : py;
    std::copy(src, src + n, out);
  } else if (cond.num_elements() == n) {
    const float* pc = cond.data();
    for (int64_t i = 0; i < n; ++i) {
      out[static_cast<size_t>(i)] = pc[i] != 0.0f ? px[i] : py[i];
    }
  } else {
    // cond indexes the leading axis (tf.where batch semantics).
    const int64_t rows = cond.num_elements();
    if (x.rank() < 1 || x.shape().dim(0) != rows) {
      throw ValueError("Where: cond shape " + cond.shape().str() +
                       " incompatible with " + x.shape().str());
    }
    const int64_t inner = n / rows;
    const float* pc = cond.data();
    for (int64_t r = 0; r < rows; ++r) {
      const float* src = (pc[r] != 0.0f ? px : py) + r * inner;
      std::copy(src, src + inner, out + r * inner);
    }
  }
  return out_t;
}

Tensor Softmax(const Tensor& logits) {
  Tensor m = ReduceMax(logits, -1, /*keepdims=*/true);
  Tensor e = Exp(Sub(logits, m));
  Tensor s = ReduceSum(e, -1, /*keepdims=*/true);
  return Div(std::move(e), std::move(s));
}

Tensor LogSoftmax(const Tensor& logits) {
  Tensor m = ReduceMax(logits, -1, /*keepdims=*/true);
  Tensor shifted = Sub(logits, m);
  // `shifted` is read again below, so Exp sees an lvalue and copies.
  Tensor lse = Log(ReduceSum(Exp(shifted), -1, /*keepdims=*/true));
  return Sub(std::move(shifted), std::move(lse));
}

Tensor SoftmaxCrossEntropy(const Tensor& logits, const Tensor& labels) {
  if (logits.rank() != 2) {
    throw ValueError("SoftmaxCrossEntropy: logits must be rank 2");
  }
  const int64_t batch = logits.shape().dim(0);
  const int64_t classes = logits.shape().dim(1);
  if (labels.num_elements() != batch) {
    throw ValueError("SoftmaxCrossEntropy: labels size mismatch");
  }
  Tensor lsm = LogSoftmax(logits);
  float total = 0.0f;
  for (int64_t i = 0; i < batch; ++i) {
    const int64_t c = static_cast<int64_t>(std::llround(labels.at(i)));
    if (c < 0 || c >= classes) {
      throw ValueError("SoftmaxCrossEntropy: label out of range");
    }
    total -= lsm.at(i * classes + c);
  }
  return Tensor::Scalar(total / static_cast<float>(batch));
}

Tensor SoftmaxCrossEntropyGrad(const Tensor& logits, const Tensor& labels) {
  const int64_t batch = logits.shape().dim(0);
  const int64_t classes = logits.shape().dim(1);
  Tensor sm = Softmax(logits);
  // `sm` is a freshly produced local, so when pooling is on it is
  // sole-owned and the gradient rewrites its buffer directly.
  const bool reuse = TensorAccess::CanReuse(sm);
  Tensor out_t = reuse ? TensorAccess::Retag(std::move(sm), DType::kFloat32)
                       : NewOut(logits.shape(), DType::kFloat32);
  float* out = TensorAccess::data(out_t);
  if (!reuse) std::copy(sm.data(), sm.data() + sm.num_elements(), out);
  for (int64_t i = 0; i < batch; ++i) {
    const int64_t c = static_cast<int64_t>(std::llround(labels.at(i)));
    out[static_cast<size_t>(i * classes + c)] -= 1.0f;
  }
  const float inv_batch = 1.0f / static_cast<float>(batch);
  const int64_t n = batch * classes;
  for (int64_t i = 0; i < n; ++i) out[i] *= inv_batch;
  return out_t;
}

Tensor Range(int64_t n) {
  const int64_t len = std::max<int64_t>(n, 0);
  Tensor out_t = NewOut(Shape({len}), DType::kInt32);
  float* out = TensorAccess::data(out_t);
  for (int64_t i = 0; i < len; ++i) out[i] = static_cast<float>(i);
  return out_t;
}

Tensor OneHot(const Tensor& indices, int64_t depth) {
  const int64_t n = indices.num_elements();
  std::vector<int64_t> dims = indices.shape().dims();
  dims.push_back(depth);
  Tensor out_t = NewOut(Shape(std::move(dims)), DType::kFloat32);
  float* out = TensorAccess::data(out_t);
  std::fill(out, out + n * depth, 0.0f);
  for (int64_t i = 0; i < n; ++i) {
    const int64_t c = static_cast<int64_t>(std::llround(indices.at(i)));
    if (c >= 0 && c < depth) out[static_cast<size_t>(i * depth + c)] = 1.0f;
  }
  return out_t;
}

std::pair<Tensor, Tensor> TopK(const Tensor& a, int64_t k) {
  if (a.rank() < 1) throw ValueError("TopK: scalar input");
  const int64_t last = a.shape().dim(a.rank() - 1);
  if (k < 1 || k > last) {
    throw ValueError("TopK: k=" + std::to_string(k) +
                     " out of range for last dim " + std::to_string(last));
  }
  const int64_t rows = a.num_elements() / last;
  std::vector<int64_t> dims = a.shape().dims();
  dims.back() = k;
  Shape out_shape(std::move(dims));
  Tensor values_t = NewOut(out_shape, a.dtype());
  Tensor indices_t = NewOut(out_shape, DType::kInt32);
  float* values = TensorAccess::data(values_t);
  float* indices = TensorAccess::data(indices_t);
  std::vector<int64_t> order(static_cast<size_t>(last));
  for (int64_t r = 0; r < rows; ++r) {
    const float* row = a.data() + r * last;
    std::iota(order.begin(), order.end(), 0);
    std::partial_sort(order.begin(), order.begin() + k, order.end(),
                      [row](int64_t x, int64_t y) { return row[x] > row[y]; });
    for (int64_t j = 0; j < k; ++j) {
      values[static_cast<size_t>(r * k + j)] = row[order[static_cast<size_t>(j)]];
      indices[static_cast<size_t>(r * k + j)] =
          static_cast<float>(order[static_cast<size_t>(j)]);
    }
  }
  return {std::move(values_t), std::move(indices_t)};
}

Tensor SumToShape(const Tensor& grad, const Shape& target) {
  if (grad.shape() == target) return grad;
  Tensor g = grad;
  // Sum away leading broadcast axes.
  while (g.rank() > target.rank()) g = ReduceSum(g, 0);
  // Sum (keepdims) axes where target dim is 1.
  for (int i = 0; i < target.rank(); ++i) {
    if (target.dim(i) == 1 && g.shape().dim(i) != 1) {
      g = ReduceSum(g, i, /*keepdims=*/true);
    }
  }
  if (g.shape() != target) {
    g = Reshape(g, target);
  }
  return g;
}

bool AllClose(const Tensor& a, const Tensor& b, float atol) {
  if (a.shape() != b.shape()) return false;
  const int64_t n = a.num_elements();
  for (int64_t i = 0; i < n; ++i) {
    if (std::fabs(a.at(i) - b.at(i)) > atol) return false;
  }
  return true;
}

// ---- Fused elementwise programs ----

bool FusedOpForName(const std::string& name, FusedOp* op, bool* is_binary) {
  struct Entry {
    const char* name;
    FusedOp op;
    bool binary;
  };
  static constexpr Entry kTable[] = {
      {"Add", FusedOp::kAdd, true},
      {"Sub", FusedOp::kSub, true},
      {"Mul", FusedOp::kMul, true},
      {"Div", FusedOp::kDiv, true},
      {"FloorDiv", FusedOp::kFloorDiv, true},
      {"Mod", FusedOp::kMod, true},
      {"Pow", FusedOp::kPow, true},
      {"Maximum", FusedOp::kMaximum, true},
      {"Minimum", FusedOp::kMinimum, true},
      {"Less", FusedOp::kLess, true},
      {"LessEqual", FusedOp::kLessEqual, true},
      {"Greater", FusedOp::kGreater, true},
      {"GreaterEqual", FusedOp::kGreaterEqual, true},
      {"Equal", FusedOp::kEqual, true},
      {"NotEqual", FusedOp::kNotEqual, true},
      {"LogicalAnd", FusedOp::kLogicalAnd, true},
      {"LogicalOr", FusedOp::kLogicalOr, true},
      {"LogicalNot", FusedOp::kLogicalNot, false},
      {"Neg", FusedOp::kNeg, false},
      {"Exp", FusedOp::kExp, false},
      {"Log", FusedOp::kLog, false},
      {"Tanh", FusedOp::kTanh, false},
      {"Sigmoid", FusedOp::kSigmoid, false},
      {"Relu", FusedOp::kRelu, false},
      {"Sqrt", FusedOp::kSqrt, false},
      {"Abs", FusedOp::kAbs, false},
      {"Sign", FusedOp::kSign, false},
      {"Square", FusedOp::kSquare, false},
      {"Sin", FusedOp::kSin, false},
      {"Cos", FusedOp::kCos, false},
  };
  for (const Entry& e : kTable) {
    if (name == e.name) {
      *op = e.op;
      *is_binary = e.binary;
      return true;
    }
  }
  return false;
}

namespace {

// One fused step over a block of m elements: op-at-a-time rather than
// element-at-a-time, so the FusedOp dispatch costs one switch per block
// per step and each case body is a tight loop the compiler can
// vectorize. Every case computes the same per-element expression as the
// corresponding unfused functor above (and kCast mirrors CastInPlace in
// tensor.cc); elements are independent, so the loop-nesting change
// cannot alter any value — that is what makes fused output bit-identical
// to the unfused chain.
inline void FusedApplyBlock(const FusedStep& s, const float* a,
                            const float* b, float* dst, int64_t m,
                            const tensor::simd::KernelTable* kt) {
  // Vector backend first: fused_step handles only ops whose vector
  // semantics match the scalar cases below exactly (see simd_avx2.cc),
  // so fused == unfused bit-identity holds within every backend.
  if (kt != nullptr && kt->fused_step != nullptr &&
      kt->fused_step(s, a, b, dst, m)) {
    return;
  }
#define AG_FUSED_LOOP(expr)                     \
  for (int64_t j = 0; j < m; ++j) {             \
    const float x = a[j];                       \
    dst[j] = (expr);                            \
  }                                             \
  break
#define AG_FUSED_LOOP2(expr)                    \
  for (int64_t j = 0; j < m; ++j) {             \
    const float x = a[j];                       \
    const float y = b[j];                       \
    dst[j] = (expr);                            \
  }                                             \
  break
  switch (s.op) {
    case FusedOp::kAdd: AG_FUSED_LOOP2(x + y);
    case FusedOp::kSub: AG_FUSED_LOOP2(x - y);
    case FusedOp::kMul: AG_FUSED_LOOP2(x * y);
    case FusedOp::kDiv: AG_FUSED_LOOP2(x / y);
    case FusedOp::kFloorDiv: AG_FUSED_LOOP2(std::floor(x / y));
    case FusedOp::kMod: AG_FUSED_LOOP2(PyMod(x, y));
    case FusedOp::kPow: AG_FUSED_LOOP2(std::pow(x, y));
    case FusedOp::kMaximum: AG_FUSED_LOOP2(std::max(x, y));
    case FusedOp::kMinimum: AG_FUSED_LOOP2(std::min(x, y));
    case FusedOp::kLess: AG_FUSED_LOOP2(x < y ? 1.0f : 0.0f);
    case FusedOp::kLessEqual: AG_FUSED_LOOP2(x <= y ? 1.0f : 0.0f);
    case FusedOp::kGreater: AG_FUSED_LOOP2(x > y ? 1.0f : 0.0f);
    case FusedOp::kGreaterEqual: AG_FUSED_LOOP2(x >= y ? 1.0f : 0.0f);
    case FusedOp::kEqual: AG_FUSED_LOOP2(x == y ? 1.0f : 0.0f);
    case FusedOp::kNotEqual: AG_FUSED_LOOP2(x != y ? 1.0f : 0.0f);
    case FusedOp::kLogicalAnd:
      AG_FUSED_LOOP2((x != 0.0f && y != 0.0f) ? 1.0f : 0.0f);
    case FusedOp::kLogicalOr:
      AG_FUSED_LOOP2((x != 0.0f || y != 0.0f) ? 1.0f : 0.0f);
    case FusedOp::kLogicalNot: AG_FUSED_LOOP(x == 0.0f ? 1.0f : 0.0f);
    case FusedOp::kNeg: AG_FUSED_LOOP(-x);
    case FusedOp::kExp: AG_FUSED_LOOP(std::exp(x));
    case FusedOp::kLog: AG_FUSED_LOOP(std::log(x));
    case FusedOp::kTanh: AG_FUSED_LOOP(std::tanh(x));
    case FusedOp::kSigmoid: AG_FUSED_LOOP(1.0f / (1.0f + std::exp(-x)));
    case FusedOp::kRelu: AG_FUSED_LOOP(x > 0.0f ? x : 0.0f);
    case FusedOp::kSqrt: AG_FUSED_LOOP(std::sqrt(x));
    case FusedOp::kAbs: AG_FUSED_LOOP(std::fabs(x));
    case FusedOp::kSign:
      AG_FUSED_LOOP(x > 0.0f ? 1.0f : (x < 0.0f ? -1.0f : 0.0f));
    case FusedOp::kSquare: AG_FUSED_LOOP(x * x);
    case FusedOp::kSin: AG_FUSED_LOOP(std::sin(x));
    case FusedOp::kCos: AG_FUSED_LOOP(std::cos(x));
    case FusedOp::kCast:
      switch (s.cast_to) {
        case DType::kBool: AG_FUSED_LOOP((x != 0.0f) ? 1.0f : 0.0f);
        case DType::kInt32: AG_FUSED_LOOP(std::trunc(x));
        default: AG_FUSED_LOOP(x);
      }
      break;
  }
#undef AG_FUSED_LOOP
#undef AG_FUSED_LOOP2
}

}  // namespace

Tensor FusedEval(const FusedProgram& program, std::vector<Tensor> inputs) {
  if (static_cast<int>(inputs.size()) != program.num_inputs ||
      program.steps.empty()) {
    throw InternalError("FusedEval: program/input arity mismatch");
  }
  Shape out_shape = inputs[0].shape();
  for (size_t i = 1; i < inputs.size(); ++i) {
    out_shape = Shape::Broadcast(out_shape, inputs[i].shape());
  }
  const int64_t n = out_shape.num_elements();
  const int r = out_shape.rank();
  const std::vector<int64_t>& out_dims = out_shape.dims();

  // Per-input addressing: full-shape operands read at the output index,
  // scalars at 0, everything else through broadcast strides (0 where the
  // input dim is 1 — the same padded-strides scheme as BinaryOp).
  enum class Mode : uint8_t { kDirect, kScalar, kStrided };
  struct In {
    const float* p;
    Mode mode;
    std::vector<int64_t> strides;  // kStrided only, length r
  };
  std::vector<In> ins;
  ins.reserve(inputs.size());
  bool any_strided = false;
  for (const Tensor& t : inputs) {
    In in;
    in.p = t.data();
    if (t.shape() == out_shape) {
      in.mode = Mode::kDirect;
    } else if (t.num_elements() == 1) {
      in.mode = Mode::kScalar;
    } else {
      in.mode = Mode::kStrided;
      any_strided = true;
      in.strides.assign(static_cast<size_t>(r), 0);
      const auto& dims = t.shape().dims();
      const auto strides = t.shape().strides();
      const int rt = t.rank();
      for (int i = 0; i < rt; ++i) {
        const int out_axis = r - rt + i;
        in.strides[static_cast<size_t>(out_axis)] =
            dims[static_cast<size_t>(i)] == 1
                ? 0
                : strides[static_cast<size_t>(i)];
      }
    }
    ins.push_back(std::move(in));
  }
  std::vector<size_t> strided;
  for (size_t k = 0; k < ins.size(); ++k) {
    if (ins[k].mode == Mode::kStrided) strided.push_back(k);
  }

  // Output buffer: steal the first sole-owned full-shape operand (its
  // element i is consumed before element i is written — the exact-index
  // reuse rule from BinaryOp; a shared buffer fails CanReuse, including
  // the same tensor passed twice).
  Tensor* reuse = nullptr;
  for (size_t i = 0; i < inputs.size(); ++i) {
    if (ins[i].mode == Mode::kDirect && TensorAccess::CanReuse(inputs[i])) {
      reuse = &inputs[i];
      break;
    }
  }
  Tensor out = reuse != nullptr ? std::move(*reuse)
                                : NewOut(out_shape, program.out_dtype);
  float* po = TensorAccess::data(out);

  const FusedStep* steps = program.steps.data();
  const size_t num_steps = program.steps.size();
  const int num_inputs = program.num_inputs;
  // Block evaluation: registers are rows of kFusedBlock elements (one
  // per input and per step) in a single scratch vector — a 2-input,
  // 3-step chain costs ~10 KB, still zero tensor intermediates — and
  // FusedApplyBlock runs each step op-at-a-time over the row, so the
  // per-element FusedOp dispatch of the naive interpreter becomes one
  // switch per block per step with vectorizable loop bodies. Elements
  // stay independent, so sharding and blocking cannot change any value
  // (the kernel determinism contract).
  constexpr int64_t kFusedBlock = 512;
  // Resolved once on the calling thread: ParallelFor pool helpers carry
  // no thread-local scopes, so a per-run KernelBackendScope would be
  // invisible if the table were consulted inside the shard body.
  const tensor::simd::KernelTable* kt = &tensor::simd::ActiveKernels();
  runtime::ParallelFor(n, kElementGrain, [&](int64_t begin, int64_t end) {
    // Scratch is thread-local and reused across calls: a fused node in
    // a While body runs every iteration, and a per-call heap
    // allocation here would rival the saved intermediate-tensor
    // allocations it exists to remove. Safe because the scratch's live
    // range is one shard body (no nested ParallelFor inside) and
    // shards on one thread run sequentially.
    thread_local std::vector<float> regs;
    thread_local std::vector<int64_t> idx;
    thread_local std::vector<int64_t> off;
    thread_local std::vector<const float*> arg;
    regs.resize((static_cast<size_t>(num_inputs) + num_steps) *
                static_cast<size_t>(kFusedBlock));
    const auto row = [&](int64_t reg) {
      return regs.data() + reg * kFusedBlock;
    };
    // Strided inputs walk a shared odometer over the output
    // coordinates, seeded from `begin`; scalars are splatted once per
    // shard; direct inputs are read in place, no copy.
    idx.assign(static_cast<size_t>(r), 0);
    off.assign(ins.size(), 0);
    if (any_strided) {
      int64_t rem = begin;
      for (int d = r - 1; d >= 0; --d) {
        const auto du = static_cast<size_t>(d);
        idx[du] = rem % out_dims[du];
        rem /= out_dims[du];
      }
      for (size_t k = 0; k < ins.size(); ++k) {
        if (ins[k].mode != Mode::kStrided) continue;
        for (int d = 0; d < r; ++d) {
          off[k] += ins[k].strides[static_cast<size_t>(d)] *
                    idx[static_cast<size_t>(d)];
        }
      }
    }
    arg.assign(ins.size(), nullptr);
    for (size_t k = 0; k < ins.size(); ++k) {
      if (ins[k].mode == Mode::kDirect) continue;
      // Scalar and strided operands both live in their register row.
      float* rk = row(static_cast<int64_t>(k));
      arg[k] = rk;
      if (ins[k].mode == Mode::kScalar) {
        std::fill(rk, rk + kFusedBlock, ins[k].p[0]);
      }
    }
    for (int64_t b0 = begin; b0 < end; b0 += kFusedBlock) {
      const int64_t m = std::min<int64_t>(kFusedBlock, end - b0);
      for (size_t k = 0; k < ins.size(); ++k) {
        if (ins[k].mode == Mode::kDirect) arg[k] = ins[k].p + b0;
      }
      if (any_strided) {
        // Run-based gather: the odometer advances in whole runs of the
        // innermost output dimension, so a bias-style broadcast
        // (innermost stride 0 or 1) gathers as a fill/copy per run
        // instead of paying per-element odometer arithmetic.
        const auto rl = static_cast<size_t>(r - 1);
        int64_t j = 0;
        while (j < m) {
          const int64_t run = std::min(m - j, out_dims[rl] - idx[rl]);
          for (size_t k : strided) {
            const int64_t s = ins[k].strides[rl];
            float* dst = row(static_cast<int64_t>(k)) + j;
            const float* src = ins[k].p + off[k];
            if (s == 0) {
              std::fill(dst, dst + run, *src);
            } else if (s == 1) {
              std::copy(src, src + run, dst);
            } else {
              for (int64_t t = 0; t < run; ++t) dst[t] = src[t * s];
            }
            off[k] += s * run;
          }
          j += run;
          idx[rl] += run;
          // Ripple the carry into outer dimensions.
          for (int d = r - 1;
               d >= 0 && idx[static_cast<size_t>(d)] ==
                             out_dims[static_cast<size_t>(d)];
               --d) {
            const auto du = static_cast<size_t>(d);
            idx[du] = 0;
            for (size_t k : strided) {
              off[k] -= ins[k].strides[du] * out_dims[du];
            }
            if (d == 0) break;
            idx[du - 1] += 1;
            for (size_t k : strided) off[k] += ins[k].strides[du - 1];
          }
        }
      }
      for (size_t s = 0; s < num_steps; ++s) {
        const FusedStep& st = steps[s];
        const float* av = st.a < num_inputs
                              ? arg[static_cast<size_t>(st.a)]
                              : row(st.a);
        const float* bv =
            st.b < 0 ? nullptr
                     : (st.b < num_inputs ? arg[static_cast<size_t>(st.b)]
                                          : row(st.b));
        // The last step writes the output range directly. If `out`
        // stole a direct operand's buffer, av/dst are the *same*
        // pointer (never shifted), and each element is read before it
        // is written — the exact-index reuse rule from BinaryOp.
        float* dst = s + 1 == num_steps
                         ? po + b0
                         : row(num_inputs + static_cast<int64_t>(s));
        FusedApplyBlock(st, av, bv, dst, m, kt);
      }
    }
  });
  return reuse != nullptr
             ? TensorAccess::Retag(std::move(out), program.out_dtype)
             : out;
}

}  // namespace ag
