#include "tensor/quant.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "runtime/cancellation.h"
#include "runtime/parallel_for.h"
#include "support/error.h"
#include "tensor/simd/dispatch.h"

namespace ag {
namespace {

using detail::TensorAccess;

constexpr int64_t kElementGrain = 16384;  // matches tensor_ops.cc

inline float ClampQ(float q, float lo) {
  return std::min(127.0f, std::max(lo, q));
}

// Exact int8 x int8 -> int32 reference kernel; the AVX2 qmatmul must
// match it bit-for-bit (integer arithmetic, order-free). Row-sharded
// with the MatMul grain formula; zero-skip mirrors the float kernel.
void ScalarQMatMul(const int8_t* qa, const int8_t* qw, int32_t* acc,
                   int64_t m, int64_t k, int64_t n) {
  runtime::CancelCheck* cancel = runtime::CurrentCancelCheck();
  const int64_t rows_grain =
      std::max<int64_t>(1, kElementGrain / std::max<int64_t>(1, k * n));
  runtime::ParallelFor(m, rows_grain, [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) {
      if (cancel != nullptr) cancel->Poll("QuantizedMatMul row");
      int32_t* orow = acc + i * n;
      std::fill(orow, orow + n, 0);
      const int8_t* arow = qa + i * k;
      for (int64_t kk = 0; kk < k; ++kk) {
        const int32_t av = arow[kk];
        if (av == 0) continue;
        const int8_t* wrow = qw + kk * n;
        for (int64_t j = 0; j < n; ++j) orow[j] += av * wrow[j];
      }
    }
  });
}

}  // namespace

QuantParams ChooseQuantParams(const Tensor& w) {
  const float* p = w.data();
  const int64_t n = w.num_elements();
  float amax = 0.0f;
  for (int64_t i = 0; i < n; ++i) amax = std::max(amax, std::fabs(p[i]));
  QuantParams params;
  params.scale = amax > 0.0f ? amax / 127.0f : 1.0f;
  params.zero_point = 0;
  return params;
}

Tensor Quantize(const Tensor& x, float scale, int32_t zero_point) {
  if (scale <= 0.0f) {
    throw ValueError("Quantize: scale must be positive");
  }
  const int64_t n = x.num_elements();
  const float* px = x.data();
  Tensor out = TensorAccess::Uninitialized(x.shape(), DType::kInt8);
  float* po = TensorAccess::data(out);
  const float inv = 1.0f / scale;
  const float zp = static_cast<float>(zero_point);
  runtime::ParallelFor(n, kElementGrain, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) {
      po[i] = ClampQ(std::nearbyintf(px[i] * inv) + zp, -128.0f);
    }
  });
  return out;
}

Tensor Dequantize(const Tensor& q, float scale, int32_t zero_point) {
  if (q.dtype() != DType::kInt8) {
    throw ValueError("Dequantize: expected an int8 tensor, got " +
                     std::string(DTypeName(q.dtype())));
  }
  const int64_t n = q.num_elements();
  const float* pq = q.data();
  Tensor out = TensorAccess::Uninitialized(q.shape(), DType::kFloat32);
  float* po = TensorAccess::data(out);
  const float zp = static_cast<float>(zero_point);
  runtime::ParallelFor(n, kElementGrain, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) po[i] = (pq[i] - zp) * scale;
  });
  return out;
}

Tensor QuantizedMatMul(const Tensor& x, const Tensor& wq, float w_scale,
                       int32_t w_zero_point) {
  if (x.rank() != 2 || wq.rank() != 2) {
    throw ValueError("QuantizedMatMul requires rank-2 tensors, got " +
                     x.shape().str() + " x " + wq.shape().str());
  }
  if (wq.dtype() != DType::kInt8) {
    throw ValueError("QuantizedMatMul: weights must be int8, got " +
                     std::string(DTypeName(wq.dtype())));
  }
  const int64_t m = x.shape().dim(0);
  const int64_t k = x.shape().dim(1);
  const int64_t n = wq.shape().dim(1);
  if (k != wq.shape().dim(0)) {
    throw ValueError("QuantizedMatMul inner dims mismatch: " +
                     x.shape().str() + " x " + wq.shape().str());
  }
  Tensor out = TensorAccess::Uninitialized(Shape({m, n}), DType::kFloat32);
  float* po = TensorAccess::data(out);

  // Dynamic symmetric activation quantization, computed sequentially in
  // this driver so the quantized path is deterministic and backend
  // independent (the integer kernels below are exact).
  const float* px = x.data();
  // 8 partial maxima so the reduction vectorizes; max is associative
  // and commutative, so the grouping cannot change the result.
  float amax = 0.0f;
  {
    const int64_t total = m * k;
    float part[8] = {0, 0, 0, 0, 0, 0, 0, 0};
    const int64_t vec_end = total - total % 8;
    for (int64_t i = 0; i < vec_end; i += 8) {
      for (int64_t l = 0; l < 8; ++l) {
        part[l] = std::max(part[l], std::fabs(px[i + l]));
      }
    }
    for (int64_t i = vec_end; i < total; ++i) {
      amax = std::max(amax, std::fabs(px[i]));
    }
    for (float p : part) amax = std::max(amax, p);
  }
  if (amax == 0.0f || m == 0 || n == 0) {
    std::fill(po, po + m * n, 0.0f);
    return out;
  }
  const float a_scale = amax / 127.0f;
  const float a_inv = 127.0f / amax;
  std::vector<int8_t> qa(static_cast<size_t>(m * k));
  std::vector<int32_t> rowsum(static_cast<size_t>(m), 0);
  // Round-to-nearest-even via the 1.5*2^23 magic constant: exact for
  // |x| < 2^23 (here |x| <= 127 by construction), bit-identical to
  // nearbyintf under the default rounding mode, and — unlike the
  // libcall — auto-vectorizable, which keeps dynamic activation
  // quantization off the critical path.
  constexpr float kRoundMagic = 12582912.0f;  // 1.5 * 2^23
  for (int64_t i = 0; i < m; ++i) {
    int32_t sum = 0;
    for (int64_t j = 0; j < k; ++j) {
      const float r = (px[i * k + j] * a_inv + kRoundMagic) - kRoundMagic;
      const float q = ClampQ(r, -127.0f);
      qa[static_cast<size_t>(i * k + j)] = static_cast<int8_t>(q);
      sum += static_cast<int32_t>(q);
    }
    rowsum[static_cast<size_t>(i)] = sum;
  }
  std::vector<int8_t> qwv(static_cast<size_t>(k * n));
  const float* pw = wq.data();
  for (int64_t i = 0; i < k * n; ++i) {
    qwv[static_cast<size_t>(i)] = static_cast<int8_t>(
        ClampQ(pw[i], -128.0f));
  }

  std::vector<int32_t> acc(static_cast<size_t>(m * n));
  const tensor::simd::KernelTable& kt = tensor::simd::ActiveKernels();
  (kt.qmatmul != nullptr ? kt.qmatmul : &ScalarQMatMul)(
      qa.data(), qwv.data(), acc.data(), m, k, n);

  // acc[i][j] = sum_k qa * (qw). True product needs (qw - w_zp):
  // subtract w_zp * rowsum(qa_i), then rescale by both scales.
  const float rescale = a_scale * w_scale;
  const float wzp = static_cast<float>(w_zero_point);
  runtime::ParallelFor(m, std::max<int64_t>(1, kElementGrain / std::max<int64_t>(1, n)),
                       [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) {
      const float corr = wzp * static_cast<float>(rowsum[static_cast<size_t>(i)]);
      for (int64_t j = 0; j < n; ++j) {
        po[i * n + j] = rescale *
            (static_cast<float>(acc[static_cast<size_t>(i * n + j)]) - corr);
      }
    }
  });
  return out;
}

}  // namespace ag
