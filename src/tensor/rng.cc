#include "tensor/rng.h"

namespace ag {

Tensor Rng::Uniform(Shape shape, float low, float high) {
  std::uniform_real_distribution<float> dist(low, high);
  std::vector<float> out(static_cast<size_t>(shape.num_elements()));
  for (float& v : out) v = dist(engine_);
  return Tensor::FromVector(std::move(out), std::move(shape));
}

Tensor Rng::Normal(Shape shape, float mean, float stddev) {
  std::normal_distribution<float> dist(mean, stddev);
  std::vector<float> out(static_cast<size_t>(shape.num_elements()));
  for (float& v : out) v = dist(engine_);
  return Tensor::FromVector(std::move(out), std::move(shape));
}

Tensor Rng::UniformInt(Shape shape, int64_t bound) {
  std::uniform_int_distribution<int64_t> dist(0, bound - 1);
  std::vector<float> out(static_cast<size_t>(shape.num_elements()));
  for (float& v : out) v = static_cast<float>(dist(engine_));
  return Tensor::FromVector(std::move(out), std::move(shape), DType::kInt32);
}

int64_t Rng::NextInt(int64_t bound) {
  std::uniform_int_distribution<int64_t> dist(0, bound - 1);
  return dist(engine_);
}

float Rng::NextUniform() {
  std::uniform_real_distribution<float> dist(0.0f, 1.0f);
  return dist(engine_);
}

}  // namespace ag
