#include "tensor/allocator.h"

#include <algorithm>
#include <array>
#include <cstdlib>
#include <deque>
#include <mutex>
#include <string_view>

namespace ag::tensor {

namespace {

// Buckets cover capacities up to 2^40 elements — far beyond anything a
// CPU tensor here reaches; larger requests simply use the last bucket.
constexpr int kNumBuckets = 41;
// Blocks parked per bucket in each thread cache before overflowing to
// the global lists. Small on purpose: steady-state loops ping-pong a
// handful of shapes, and anything colder belongs in the shared pool
// where the LRU cap can see it.
constexpr size_t kThreadCacheDepth = 4;

int64_t DefaultRetainedCap() {
  if (const char* env = std::getenv("AG_BUFFER_POOL_CAP_MB")) {
    const long long mb = std::atoll(env);
    if (mb >= 0) return static_cast<int64_t>(mb) << 20;
  }
  return int64_t{256} << 20;  // 256 MiB
}

bool EnvPoolEnabled() {
  static const bool enabled = [] {
    const char* env = std::getenv("AG_BUFFER_POOL");
    return env == nullptr || (std::string_view(env) != "0" &&
                              std::string_view(env) != "off");
  }();
  return enabled;
}

// floor(log2(c)) for c >= 1.
int FloorLog2(int64_t c) {
  int b = 0;
  while (c > 1) {
    c >>= 1;
    ++b;
  }
  return std::min(b, kNumBuckets - 1);
}

// ceil(log2(n)) for n >= 1: the bucket whose blocks all fit n.
int RequestBucket(int64_t n) {
  if (n <= 1) return 0;
  return std::min(FloorLog2(n - 1) + 1, kNumBuckets - 1);
}

std::atomic<int64_t>& AllocCountA() {
  static std::atomic<int64_t> v{0};
  return v;
}
std::atomic<int64_t>& AllocBytesA() {
  static std::atomic<int64_t> v{0};
  return v;
}
std::atomic<int64_t>& HitCountA() {
  static std::atomic<int64_t> v{0};
  return v;
}
std::atomic<int64_t>& LiveBytesA() {
  static std::atomic<int64_t> v{0};
  return v;
}
std::atomic<int64_t>& PeakLiveBytesA() {
  static std::atomic<int64_t> v{0};
  return v;
}

thread_local int64_t t_thread_alloc_count = 0;
thread_local int t_pool_disable_depth = 0;

int64_t CapacityBytes(const detail::BufferBlock* b) {
  return static_cast<int64_t>(b->storage.capacity()) *
         static_cast<int64_t>(sizeof(float));
}

void CountLive(int64_t capacity_bytes) {
  const int64_t live =
      LiveBytesA().fetch_add(capacity_bytes, std::memory_order_relaxed) +
      capacity_bytes;
  int64_t peak = PeakLiveBytesA().load(std::memory_order_relaxed);
  while (live > peak && !PeakLiveBytesA().compare_exchange_weak(
                            peak, live, std::memory_order_relaxed)) {
  }
}

void CountFreshAlloc(int64_t capacity_bytes) {
  AllocCountA().fetch_add(1, std::memory_order_relaxed);
  AllocBytesA().fetch_add(capacity_bytes, std::memory_order_relaxed);
  ++t_thread_alloc_count;
  CountLive(capacity_bytes);
}

// The global free lists. Leaked singleton: thread caches flush into it
// at thread exit, so it must outlive every thread.
struct PoolState {
  mutable std::mutex mu;
  std::array<std::deque<detail::BufferBlock*>, kNumBuckets> buckets;
  int64_t retained_bytes = 0;
  int64_t retained_cap = DefaultRetainedCap();
  int64_t tick = 0;

  // Frees oldest-released blocks until retained_bytes <= retained_cap.
  // Caller holds mu.
  void TrimLocked() {
    while (retained_bytes > retained_cap) {
      int victim = -1;
      int64_t oldest = 0;
      for (int b = 0; b < kNumBuckets; ++b) {
        auto& list = buckets[static_cast<size_t>(b)];
        if (list.empty()) continue;
        if (victim < 0 || list.front()->tick < oldest) {
          victim = b;
          oldest = list.front()->tick;
        }
      }
      if (victim < 0) return;
      detail::BufferBlock* block =
          buckets[static_cast<size_t>(victim)].front();
      buckets[static_cast<size_t>(victim)].pop_front();
      retained_bytes -= CapacityBytes(block);
      delete block;
    }
  }
};

PoolState& GlobalState() {
  static auto* state = new PoolState();
  return *state;
}

void ReleaseToGlobal(detail::BufferBlock* block) {
  PoolState& state = GlobalState();
  std::lock_guard<std::mutex> lock(state.mu);
  block->tick = ++state.tick;
  state.buckets[static_cast<size_t>(block->bucket)].push_back(block);
  state.retained_bytes += CapacityBytes(block);
  state.TrimLocked();
}

// Thread-local free-list cache; flushed to the global lists on thread
// exit so nothing leaks per short-lived thread.
struct ThreadCache {
  std::array<std::vector<detail::BufferBlock*>, kNumBuckets> buckets;

  ~ThreadCache() {
    for (auto& list : buckets) {
      for (detail::BufferBlock* b : list) ReleaseToGlobal(b);
      list.clear();
    }
  }

  detail::BufferBlock* Pop(int bucket) {
    auto& list = buckets[static_cast<size_t>(bucket)];
    if (list.empty()) return nullptr;
    detail::BufferBlock* b = list.back();
    list.pop_back();
    return b;
  }
  // Returns false when the bucket is full (caller overflows to global).
  bool Push(detail::BufferBlock* block) {
    auto& list = buckets[static_cast<size_t>(block->bucket)];
    if (list.size() >= kThreadCacheDepth) return false;
    list.push_back(block);
    return true;
  }
};

thread_local ThreadCache t_cache;

}  // namespace

BufferPool& BufferPool::Global() {
  static auto* pool = new BufferPool();
  return *pool;
}

PooledBuffer BufferPool::Acquire(int64_t n) {
  if (n < 0) n = 0;
  const int bucket = RequestBucket(std::max<int64_t>(n, 1));
  if (PoolingEnabled()) {
    detail::BufferBlock* block = t_cache.Pop(bucket);
    if (block == nullptr) {
      PoolState& state = GlobalState();
      std::lock_guard<std::mutex> lock(state.mu);
      auto& list = state.buckets[static_cast<size_t>(bucket)];
      if (!list.empty()) {
        block = list.back();  // most recently released: cache-warm
        list.pop_back();
        state.retained_bytes -= CapacityBytes(block);
      }
    }
    if (block != nullptr) {
      HitCountA().fetch_add(1, std::memory_order_relaxed);
      CountLive(CapacityBytes(block));
      block->refs.store(1, std::memory_order_relaxed);
      block->storage.resize(static_cast<size_t>(n));
      return PooledBuffer(block);
    }
  }
  auto* block = new detail::BufferBlock();
  // Round the capacity up to the bucket size so a same-size re-acquire
  // after release lands back in the bucket it is served from.
  block->storage.reserve(static_cast<size_t>(int64_t{1} << bucket));
  block->storage.resize(static_cast<size_t>(n));
  block->bucket = FloorLog2(
      std::max<int64_t>(1, static_cast<int64_t>(block->storage.capacity())));
  CountFreshAlloc(CapacityBytes(block));
  return PooledBuffer(block);
}

PooledBuffer BufferPool::Adopt(std::vector<float> values) {
  auto* block = new detail::BufferBlock();
  block->storage = std::move(values);
  block->bucket = FloorLog2(
      std::max<int64_t>(1, static_cast<int64_t>(block->storage.capacity())));
  CountFreshAlloc(CapacityBytes(block));
  return PooledBuffer(block);
}

PooledBuffer BufferPool::WrapExternal(const float* data, int64_t size,
                                      std::shared_ptr<const void> owner) {
  auto* block = new detail::BufferBlock();
  block->external_data = data;
  block->external_size = std::max<int64_t>(0, size);
  block->external_owner = std::move(owner);
  // Not counted as a fresh allocation: no float storage was allocated —
  // which is exactly what the artifact loader's "~0 fresh weight
  // allocations" property measures.
  return PooledBuffer(block);
}

PoolStats BufferPool::stats() const {
  PoolStats s;
  s.alloc_count = AllocCountA().load(std::memory_order_relaxed);
  s.alloc_bytes = AllocBytesA().load(std::memory_order_relaxed);
  s.pool_hit_count = HitCountA().load(std::memory_order_relaxed);
  s.live_bytes = LiveBytesA().load(std::memory_order_relaxed);
  s.peak_live_bytes = PeakLiveBytesA().load(std::memory_order_relaxed);
  PoolState& state = GlobalState();
  std::lock_guard<std::mutex> lock(state.mu);
  s.retained_bytes = state.retained_bytes;
  return s;
}

void BufferPool::TrimAll() {
  PoolState& state = GlobalState();
  std::lock_guard<std::mutex> lock(state.mu);
  for (auto& list : state.buckets) {
    for (detail::BufferBlock* b : list) {
      state.retained_bytes -= CapacityBytes(b);
      delete b;
    }
    list.clear();
  }
}

void BufferPool::set_retained_cap_bytes(int64_t cap) {
  PoolState& state = GlobalState();
  std::lock_guard<std::mutex> lock(state.mu);
  state.retained_cap = std::max<int64_t>(0, cap);
  state.TrimLocked();
}

int64_t BufferPool::retained_cap_bytes() const {
  PoolState& state = GlobalState();
  std::lock_guard<std::mutex> lock(state.mu);
  return state.retained_cap;
}

namespace detail {

void ReleaseBlock(BufferBlock* block) {
  if (block->refs.fetch_sub(1, std::memory_order_acq_rel) != 1) return;
  if (block->external_data != nullptr) {
    // External blocks borrowed their storage (no live-bytes accounting,
    // never pooled); dropping the block releases the owner's mapping ref.
    delete block;
    return;
  }
  LiveBytesA().fetch_sub(CapacityBytes(block), std::memory_order_relaxed);
  if (!PoolingEnabled()) {
    delete block;
    return;
  }
  if (t_cache.Push(block)) return;
  ReleaseToGlobal(block);
}

}  // namespace detail

bool PoolingEnabled() {
  return EnvPoolEnabled() && t_pool_disable_depth == 0;
}

PoolDisableScope::PoolDisableScope() { ++t_pool_disable_depth; }
PoolDisableScope::~PoolDisableScope() { --t_pool_disable_depth; }

int64_t ThreadAllocCount() { return t_thread_alloc_count; }

}  // namespace ag::tensor
