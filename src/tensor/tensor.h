// Dense CPU tensors — the kernel substrate for both the eager runtime and
// the graph Session, standing in for TensorFlow's CPU kernels.
//
// Storage note: all dtypes share a float buffer. The DType tag drives the
// same type-checking semantics TF enforces (e.g. `tf.cond` predicates must
// be kBool, loop counters kInt32), while keeping kernels compact. Integer
// values used in the benchmarks (indices, vocab ids, counters) are well
// within float32's exact-integer range.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "tensor/shape.h"

namespace ag {

enum class DType : std::uint8_t { kFloat32, kInt32, kBool };

[[nodiscard]] const char* DTypeName(DType dtype);

// An immutable, cheaply copyable dense tensor. The data buffer is shared
// between copies; all ops produce new tensors.
class Tensor {
 public:
  // Default: float32 scalar 0.
  Tensor();

  // Scalar constructors.
  static Tensor Scalar(float value, DType dtype = DType::kFloat32);
  static Tensor ScalarInt(int64_t value);
  static Tensor ScalarBool(bool value);

  // Dense constructors.
  static Tensor FromVector(std::vector<float> values, Shape shape,
                           DType dtype = DType::kFloat32);
  static Tensor Zeros(Shape shape, DType dtype = DType::kFloat32);
  static Tensor Ones(Shape shape, DType dtype = DType::kFloat32);
  static Tensor Full(Shape shape, float value, DType dtype = DType::kFloat32);

  [[nodiscard]] const Shape& shape() const { return *shape_; }
  [[nodiscard]] DType dtype() const { return dtype_; }
  [[nodiscard]] int64_t num_elements() const {
    return shape_->num_elements();
  }
  [[nodiscard]] int rank() const { return shape_->rank(); }

  [[nodiscard]] const float* data() const { return buffer_->data(); }
  [[nodiscard]] const std::vector<float>& vec() const { return *buffer_; }

  // Scalar accessors; throw ValueError unless num_elements() == 1.
  [[nodiscard]] float scalar() const;
  [[nodiscard]] int64_t scalar_int() const;
  [[nodiscard]] bool scalar_bool() const;

  // Element access by flat index (no bounds check in release-critical path).
  [[nodiscard]] float at(int64_t flat_index) const {
    return (*buffer_)[static_cast<size_t>(flat_index)];
  }

  // Returns a tensor with the same buffer and a new compatible shape.
  [[nodiscard]] Tensor Reshaped(Shape new_shape) const;
  // Returns a copy with the dtype tag changed (values reinterpreted
  // semantically: bool<->float via 0/1, int<->float via truncation).
  [[nodiscard]] Tensor Cast(DType new_dtype) const;

  [[nodiscard]] std::string str() const;  // human-readable summary
  [[nodiscard]] std::string DebugString(int max_elements = 16) const;

 private:
  Tensor(Shape shape, DType dtype, std::shared_ptr<std::vector<float>> buffer)
      : shape_(std::make_shared<const Shape>(std::move(shape))),
        dtype_(dtype),
        buffer_(std::move(buffer)) {}

  // The shape is shared between copies (it is immutable), so copying a
  // Tensor costs two refcount bumps and no heap allocation — copies are
  // pervasive in both the eager and graph execution paths.
  std::shared_ptr<const Shape> shape_;
  DType dtype_;
  std::shared_ptr<std::vector<float>> buffer_;
};

}  // namespace ag
