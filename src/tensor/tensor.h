// Dense CPU tensors — the kernel substrate for both the eager runtime and
// the graph Session, standing in for TensorFlow's CPU kernels.
//
// Storage note: all dtypes share a float buffer. The DType tag drives the
// same type-checking semantics TF enforces (e.g. `tf.cond` predicates must
// be kBool, loop counters kInt32), while keeping kernels compact. Integer
// values used in the benchmarks (indices, vocab ids, counters) are well
// within float32's exact-integer range.
//
// Memory note: the buffer is a tensor::PooledBuffer — an intrusive
// refcounted handle whose storage is recycled through the process-wide
// BufferPool (allocator.h) instead of freed. The public API stays
// immutable: mutation is only reachable through detail::TensorAccess,
// which kernels use to write into sole-owned buffers (see the in-place
// safety rules in DESIGN.md §4g).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "tensor/allocator.h"
#include "tensor/shape.h"

namespace ag {

namespace detail {
struct TensorAccess;
}  // namespace detail

// kInt8 is the quantized-inference storage tag (quant.h): values are
// integers in [-128, 127] held, like every dtype, in the float buffer.
// It is appended after kBool so serialized dtype codes are stable.
enum class DType : std::uint8_t { kFloat32, kInt32, kBool, kInt8 };

[[nodiscard]] const char* DTypeName(DType dtype);

// An immutable, cheaply copyable dense tensor. The data buffer is shared
// between copies; all ops produce new tensors. A moved-from Tensor holds
// no buffer and may only be destroyed or assigned to.
class Tensor {
 public:
  // Default: float32 scalar 0 (shares one pinned static buffer).
  Tensor();

  // Scalar constructors.
  static Tensor Scalar(float value, DType dtype = DType::kFloat32);
  static Tensor ScalarInt(int64_t value);
  static Tensor ScalarBool(bool value);

  // Dense constructors. FromVector adopts the vector's heap storage
  // without copying; the storage joins the buffer pool on release.
  static Tensor FromVector(std::vector<float> values, Shape shape,
                           DType dtype = DType::kFloat32);
  // Wraps read-only external storage without copying — the zero-copy
  // path for mmap'd artifact weights (src/artifact). `owner` keeps the
  // backing memory (e.g. the file mapping) alive as long as any handle
  // to this buffer exists. The result can never be written in place:
  // detail::TensorAccess::CanReuse()/SoleOwner() are false for it.
  static Tensor FromExternal(const float* data, Shape shape, DType dtype,
                             std::shared_ptr<const void> owner);
  static Tensor Zeros(Shape shape, DType dtype = DType::kFloat32);
  static Tensor Ones(Shape shape, DType dtype = DType::kFloat32);
  static Tensor Full(Shape shape, float value, DType dtype = DType::kFloat32);

  [[nodiscard]] const Shape& shape() const { return *shape_; }
  [[nodiscard]] DType dtype() const { return dtype_; }
  // False only for a moved-from Tensor (no shape, no buffer); such a
  // value may only be destroyed or assigned to, so callers that might
  // see one (e.g. instrumentation over inputs an in-place kernel stole)
  // must check before touching shape()/data().
  [[nodiscard]] bool defined() const { return shape_ != nullptr; }
  [[nodiscard]] int64_t num_elements() const {
    return shape_->num_elements();
  }
  [[nodiscard]] int rank() const { return shape_->rank(); }

  [[nodiscard]] const float* data() const { return buffer_.data(); }

  // Scalar accessors; throw ValueError unless num_elements() == 1.
  [[nodiscard]] float scalar() const;
  [[nodiscard]] int64_t scalar_int() const;
  [[nodiscard]] bool scalar_bool() const;

  // Element access by flat index (no bounds check in release-critical path).
  [[nodiscard]] float at(int64_t flat_index) const {
    return buffer_.data()[static_cast<size_t>(flat_index)];
  }

  // Returns a tensor with the same buffer and a new compatible shape.
  // The alias bumps the buffer refcount, which is exactly what blocks
  // in-place kernels from ever mutating a reshaped view's storage.
  [[nodiscard]] Tensor Reshaped(Shape new_shape) const;
  // Returns a copy with the dtype tag changed (values reinterpreted
  // semantically: bool<->float via 0/1, int<->float via truncation).
  // The rvalue overload rewrites the buffer in place when sole-owned.
  [[nodiscard]] Tensor Cast(DType new_dtype) const&;
  [[nodiscard]] Tensor Cast(DType new_dtype) &&;

  [[nodiscard]] std::string str() const;  // human-readable summary
  [[nodiscard]] std::string DebugString(int max_elements = 16) const;

 private:
  friend struct detail::TensorAccess;

  Tensor(Shape shape, DType dtype, tensor::PooledBuffer buffer);
  Tensor(std::shared_ptr<const Shape> shape, DType dtype,
         tensor::PooledBuffer buffer)
      : shape_(std::move(shape)), dtype_(dtype), buffer_(std::move(buffer)) {}

  // The shape is shared between copies (it is immutable), so copying a
  // Tensor costs two refcount bumps and no heap allocation — copies are
  // pervasive in both the eager and graph execution paths.
  std::shared_ptr<const Shape> shape_;
  DType dtype_ = DType::kFloat32;
  tensor::PooledBuffer buffer_;
};

namespace detail {

// The only door out of Tensor's immutable API, used by the kernels in
// tensor_ops.cc / exec/kernels.cc and by the aliasing tests. Keeping it
// a named friend (not public methods) makes every mutation site
// greppable and keeps callers honest about the safety rules:
//
//   - Uninitialized() buffers are private until published; writing them
//     is always safe.
//   - In-place writes to an *existing* buffer require CanReuse(): the
//     handle is the sole owner (no alias via copy/Reshaped/memo/feed
//     can observe the write) AND pooling is enabled (the escape hatch
//     must restore the seed copy-always path byte-for-byte).
struct TensorAccess {
  // A tensor over a pool-acquired buffer with unspecified contents; the
  // caller must write all num_elements() floats before publishing it.
  static Tensor Uninitialized(Shape shape, DType dtype) {
    const int64_t n = shape.num_elements();
    return Tensor(std::move(shape), dtype,
                  tensor::BufferPool::Global().Acquire(n));
  }

  static float* data(Tensor& t) { return t.buffer_.mutable_data(); }

  // True when t's buffer may be mutated through t: sole-owned and the
  // pool (and with it, in-place reuse) is enabled on this thread.
  static bool CanReuse(const Tensor& t) {
    return t.buffer_.unique() && tensor::PoolingEnabled();
  }
  // Sole ownership alone (ignores the pooling knob) — for structural
  // reuse that does not change observable allocation behavior.
  static bool SoleOwner(const Tensor& t) { return t.buffer_.unique(); }

  // Same buffer and shape, new dtype tag (comparison kernels produce
  // kBool over a reused float buffer).
  static Tensor Retag(Tensor t, DType dtype) {
    return Tensor(std::move(t.shape_), dtype, std::move(t.buffer_));
  }
  // Same buffer, caller-supplied shape/dtype (shape must cover the
  // buffer's size).
  static Tensor WithShape(Tensor t, Shape shape, DType dtype) {
    return Tensor(std::move(shape), dtype, std::move(t.buffer_));
  }

  // Identity of the underlying storage, for aliasing tests.
  static const float* raw(const Tensor& t) {
    return t.buffer_ ? t.buffer_.data() : nullptr;
  }
};

}  // namespace detail

}  // namespace ag
