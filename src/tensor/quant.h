// Per-tensor affine quantization (DESIGN.md §4j) — the int8 inference
// path. Values quantize as q = clamp(round(x / scale) + zero_point,
// -128, 127); kInt8 tensors hold the integer q in the shared float
// buffer like every other dtype.
//
// QuantizedMatMul keeps the float activations interface: it quantizes
// the activations on the fly (symmetric, per-call scale from max|x|),
// runs an exact int8 x int8 -> int32 kernel, and rescales — so only
// weights need offline calibration (the quantize_weights graph pass).
// All float-sensitive steps (activation scale, quantization, final
// rescale) live in the driver here, and the integer kernels are exact,
// so scalar and AVX2 backends produce bit-identical results for the
// quantized path.
#pragma once

#include <cstdint>

#include "tensor/tensor.h"

namespace ag {

struct QuantParams {
  float scale = 1.0f;
  int32_t zero_point = 0;
};

// Symmetric per-tensor calibration: scale = max|w| / 127, zero_point 0
// (scale 1 for an all-zero tensor).
[[nodiscard]] QuantParams ChooseQuantParams(const Tensor& w);

// x (any float-valued tensor) -> kInt8 with the affine mapping above.
[[nodiscard]] Tensor Quantize(const Tensor& x, float scale,
                              int32_t zero_point);

// kInt8 -> kFloat32: (q - zero_point) * scale.
[[nodiscard]] Tensor Dequantize(const Tensor& q, float scale,
                                int32_t zero_point);

// Float activations x [m,k] times pre-quantized weights wq (kInt8,
// [k,n], calibrated with w_scale/w_zero_point) -> kFloat32 [m,n].
[[nodiscard]] Tensor QuantizedMatMul(const Tensor& x, const Tensor& wq,
                                     float w_scale, int32_t w_zero_point);

}  // namespace ag
