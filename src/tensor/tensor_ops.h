// CPU kernels over Tensor. These are the "op implementations" shared by the
// eager runtime (immediate dispatch) and the graph Session (deferred
// dispatch), mirroring how TF eager and TF graph share kernels.
//
// All binary elementwise ops broadcast NumPy-style. Comparison and logical
// ops produce kBool tensors. Reductions accept an optional axis (negative
// axes allowed) — `axis == kAllAxes` reduces to a scalar.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "tensor/tensor.h"

namespace ag {

inline constexpr int kAllAxes = INT32_MIN;

// ---- Fused elementwise programs ----
// A FusedProgram is a straight-line scalar recipe compiled from the body
// of a FusedElementwise graph node (graph/fusion.h): registers
// [0, num_inputs) hold the external operands, each step applies one
// elementwise functor to earlier registers, and the last step's register
// is the output. FusedEval evaluates the recipe block-wise — registers
// are small fixed-size rows of elements, each step runs op-at-a-time
// over its row in a tight vectorizable loop — so the chain's
// intermediates live in a few KB of scratch instead of materialized
// tensors, eliminating every intermediate allocation.
//
// Bit-identity contract: each FusedOp case in the interpreter is the
// *same expression* as the corresponding unfused functor below, compiled
// in this same translation unit, and every unfused intermediate is a
// float32 buffer (tensor.h stores all dtypes as float32), so a value
// round-tripped through memory equals the register value exactly.

enum class FusedOp : uint8_t {
  // Binary (two register operands).
  kAdd, kSub, kMul, kDiv, kFloorDiv, kMod, kPow, kMaximum, kMinimum,
  kLess, kLessEqual, kGreater, kGreaterEqual, kEqual, kNotEqual,
  kLogicalAnd, kLogicalOr,
  // Unary (one register operand).
  kLogicalNot, kNeg, kExp, kLog, kTanh, kSigmoid, kRelu, kSqrt, kAbs,
  kSign, kSquare, kSin, kCos,
  // Dtype-semantics boundary: applies the CastInPlace value transform
  // for `cast_to` (kBool -> 0/1, kInt32 -> trunc, float -> identity).
  kCast,
};

// Maps a graph op name ("Add", "Tanh", ...) to its FusedOp. Returns
// false for ops with no fused form ("Cast" included — the fusion pass
// lowers it to kCast itself, driven by the node's dtype attr).
[[nodiscard]] bool FusedOpForName(const std::string& name, FusedOp* op,
                                  bool* is_binary);

struct FusedStep {
  FusedOp op = FusedOp::kAdd;
  int a = 0;       // first operand register
  int b = -1;      // second operand register (binary ops only)
  DType cast_to = DType::kFloat32;  // kCast only
};

struct FusedProgram {
  int num_inputs = 0;
  std::vector<FusedStep> steps;  // at least one; last step is the output
  DType out_dtype = DType::kFloat32;
};

// Evaluates `program` over broadcast inputs in one pass. Takes the
// inputs by value so a sole-owned full-shape operand's buffer can be
// reused for the output (same refcount rule as the rvalue ops below).
[[nodiscard]] Tensor FusedEval(const FusedProgram& program,
                               std::vector<Tensor> inputs);

// ---- Elementwise binary (broadcasting) ----
// Each op also has an rvalue overload that writes in place when one of
// the operands is the sole owner of its buffer (and pooling is on) —
// the destination-passing path graph executors use once liveness says
// an edge value is dead after this consumer. Lvalue calls always copy;
// a Reshaped alias or a second live handle blocks reuse via refcount.
[[nodiscard]] Tensor Add(const Tensor& a, const Tensor& b);
[[nodiscard]] Tensor Add(Tensor&& a, Tensor&& b);
[[nodiscard]] Tensor Sub(const Tensor& a, const Tensor& b);
[[nodiscard]] Tensor Sub(Tensor&& a, Tensor&& b);
[[nodiscard]] Tensor Mul(const Tensor& a, const Tensor& b);
[[nodiscard]] Tensor Mul(Tensor&& a, Tensor&& b);
[[nodiscard]] Tensor Div(const Tensor& a, const Tensor& b);
[[nodiscard]] Tensor Div(Tensor&& a, Tensor&& b);
[[nodiscard]] Tensor FloorDiv(const Tensor& a, const Tensor& b);
[[nodiscard]] Tensor FloorDiv(Tensor&& a, Tensor&& b);
[[nodiscard]] Tensor Mod(const Tensor& a, const Tensor& b);
[[nodiscard]] Tensor Mod(Tensor&& a, Tensor&& b);
[[nodiscard]] Tensor Pow(const Tensor& a, const Tensor& b);
[[nodiscard]] Tensor Pow(Tensor&& a, Tensor&& b);
[[nodiscard]] Tensor Maximum(const Tensor& a, const Tensor& b);
[[nodiscard]] Tensor Maximum(Tensor&& a, Tensor&& b);
[[nodiscard]] Tensor Minimum(const Tensor& a, const Tensor& b);
[[nodiscard]] Tensor Minimum(Tensor&& a, Tensor&& b);

// ---- Comparisons (result dtype kBool) ----
[[nodiscard]] Tensor Less(const Tensor& a, const Tensor& b);
[[nodiscard]] Tensor Less(Tensor&& a, Tensor&& b);
[[nodiscard]] Tensor LessEqual(const Tensor& a, const Tensor& b);
[[nodiscard]] Tensor LessEqual(Tensor&& a, Tensor&& b);
[[nodiscard]] Tensor Greater(const Tensor& a, const Tensor& b);
[[nodiscard]] Tensor Greater(Tensor&& a, Tensor&& b);
[[nodiscard]] Tensor GreaterEqual(const Tensor& a, const Tensor& b);
[[nodiscard]] Tensor GreaterEqual(Tensor&& a, Tensor&& b);
[[nodiscard]] Tensor Equal(const Tensor& a, const Tensor& b);
[[nodiscard]] Tensor Equal(Tensor&& a, Tensor&& b);
[[nodiscard]] Tensor NotEqual(const Tensor& a, const Tensor& b);
[[nodiscard]] Tensor NotEqual(Tensor&& a, Tensor&& b);

// ---- Logical (operands interpreted as truthy; result kBool) ----
[[nodiscard]] Tensor LogicalAnd(const Tensor& a, const Tensor& b);
[[nodiscard]] Tensor LogicalAnd(Tensor&& a, Tensor&& b);
[[nodiscard]] Tensor LogicalOr(const Tensor& a, const Tensor& b);
[[nodiscard]] Tensor LogicalOr(Tensor&& a, Tensor&& b);
[[nodiscard]] Tensor LogicalNot(const Tensor& a);
[[nodiscard]] Tensor LogicalNot(Tensor&& a);

// ---- Elementwise unary ----
[[nodiscard]] Tensor Neg(const Tensor& a);
[[nodiscard]] Tensor Neg(Tensor&& a);
[[nodiscard]] Tensor Exp(const Tensor& a);
[[nodiscard]] Tensor Exp(Tensor&& a);
[[nodiscard]] Tensor Log(const Tensor& a);
[[nodiscard]] Tensor Log(Tensor&& a);
[[nodiscard]] Tensor Tanh(const Tensor& a);
[[nodiscard]] Tensor Tanh(Tensor&& a);
[[nodiscard]] Tensor Sigmoid(const Tensor& a);
[[nodiscard]] Tensor Sigmoid(Tensor&& a);
[[nodiscard]] Tensor Relu(const Tensor& a);
[[nodiscard]] Tensor Relu(Tensor&& a);
[[nodiscard]] Tensor Sqrt(const Tensor& a);
[[nodiscard]] Tensor Sqrt(Tensor&& a);
[[nodiscard]] Tensor Abs(const Tensor& a);
[[nodiscard]] Tensor Abs(Tensor&& a);
[[nodiscard]] Tensor Sign(const Tensor& a);
[[nodiscard]] Tensor Sign(Tensor&& a);
[[nodiscard]] Tensor Square(const Tensor& a);
[[nodiscard]] Tensor Square(Tensor&& a);
[[nodiscard]] Tensor Sin(const Tensor& a);
[[nodiscard]] Tensor Sin(Tensor&& a);
[[nodiscard]] Tensor Cos(const Tensor& a);
[[nodiscard]] Tensor Cos(Tensor&& a);

// ---- Linear algebra ----
// 2-D matrix product: [m, k] x [k, n] -> [m, n].
[[nodiscard]] Tensor MatMul(const Tensor& a, const Tensor& b);

// ---- Reductions ----
[[nodiscard]] Tensor ReduceSum(const Tensor& a, int axis = kAllAxes,
                               bool keepdims = false);
[[nodiscard]] Tensor ReduceMean(const Tensor& a, int axis = kAllAxes,
                                bool keepdims = false);
[[nodiscard]] Tensor ReduceMax(const Tensor& a, int axis = kAllAxes,
                               bool keepdims = false);
[[nodiscard]] Tensor ReduceMin(const Tensor& a, int axis = kAllAxes,
                               bool keepdims = false);
// Index of the max along `axis` (kInt32 result).
[[nodiscard]] Tensor ArgMax(const Tensor& a, int axis);

// ---- Shape manipulation ----
[[nodiscard]] Tensor Reshape(const Tensor& a, Shape shape);
// General axis permutation, e.g. Transpose(x, {1, 0, 2}).
[[nodiscard]] Tensor Transpose(const Tensor& a, std::vector<int> perm);
[[nodiscard]] Tensor Concat(const std::vector<Tensor>& parts, int axis);
// Stacks equal-shaped tensors along a new leading axis.
[[nodiscard]] Tensor Stack(const std::vector<Tensor>& parts);
// Splits along axis 0 into shape.dim(0) tensors.
[[nodiscard]] std::vector<Tensor> Unstack(const Tensor& a);

// ---- Indexing ----
// x[index] along axis 0 (one row / sub-tensor).
[[nodiscard]] Tensor IndexAxis0(const Tensor& a, int64_t index);
// Value-semantics update: returns a copy of `a` with a[index] = value.
// The rvalue overload overwrites just the row when `a` is sole-owned
// (turning the staged read-modify-write idiom from O(n) copy to O(row)).
[[nodiscard]] Tensor SetItemAxis0(const Tensor& a, int64_t index,
                                  const Tensor& value);
[[nodiscard]] Tensor SetItemAxis0(Tensor&& a, int64_t index,
                                  const Tensor& value);
// Gathers rows of `params` (axis 0) by integer `indices` (any shape);
// result shape = indices.shape + params.shape[1:].
[[nodiscard]] Tensor Gather(const Tensor& params, const Tensor& indices);

// ---- Selection ----
// Elementwise select with broadcast: cond ? x : y. `cond` may be a scalar
// or match leading dims of x/y (TF's tf.where semantics for our uses).
[[nodiscard]] Tensor Where(const Tensor& cond, const Tensor& x,
                           const Tensor& y);

// ---- Neural-network fused ops ----
[[nodiscard]] Tensor Softmax(const Tensor& logits);      // last axis
[[nodiscard]] Tensor LogSoftmax(const Tensor& logits);   // last axis
// Mean cross entropy over batch; labels are sparse int class ids [batch].
[[nodiscard]] Tensor SoftmaxCrossEntropy(const Tensor& logits,
                                         const Tensor& labels);
// d(mean xent)/d logits — used by both autodiff backends.
[[nodiscard]] Tensor SoftmaxCrossEntropyGrad(const Tensor& logits,
                                             const Tensor& labels);

// ---- Construction ----
[[nodiscard]] Tensor Range(int64_t n);  // kInt32 [0, n)
[[nodiscard]] Tensor OneHot(const Tensor& indices, int64_t depth);

// ---- Top-K (last axis) ----
// Returns {values, indices}, both shaped like `a` with last dim replaced
// by k, values sorted descending.
[[nodiscard]] std::pair<Tensor, Tensor> TopK(const Tensor& a, int64_t k);

// ---- Gradient helper ----
// Reduce-sums `grad` down to `target` so that broadcasted binary ops can
// route gradients back to their (smaller) operand shapes.
[[nodiscard]] Tensor SumToShape(const Tensor& grad, const Shape& target);

// True if every element matches within `atol`.
[[nodiscard]] bool AllClose(const Tensor& a, const Tensor& b,
                            float atol = 1e-5f);

}  // namespace ag
