// Runtime kernel-backend dispatch (DESIGN.md §4j). The tensor kernels
// in tensor_ops.cc / quant.cc are written against a KernelTable of
// optional vectorized entry points; the table for a backend is resolved
// once per kernel invocation on the calling thread (never inside
// ParallelFor shard bodies — pool helpers carry no scopes) and a null
// entry means "use the scalar path", which is the seed code unchanged.
//
// Resolution precedence, mirroring the buffer_pool escape hatch:
//   1. KernelBackendScope on this thread (installed by Session::Run /
//      eager calls from RunOptions::kernel_backend),
//   2. the AG_KERNEL_BACKEND environment variable ("scalar" | "avx2" |
//      "auto"; anything else is ignored),
//   3. CPU detection: AVX2+FMA when the binary was built with AG_SIMD
//      and the processor reports support, else scalar.
// An explicit "avx2" request on a CPU (or build) without AVX2 degrades
// to scalar rather than failing — the contract is that every backend
// name is runnable everywhere, just not equally fast.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "tensor/tensor_ops.h"

namespace ag::tensor::simd {

enum class KernelBackend : std::uint8_t { kScalar = 0, kAvx2 = 1 };

// "scalar" / "avx2" — the value recorded in StepStats and printed by
// agprof / bench_kernels.
[[nodiscard]] const char* KernelBackendName(KernelBackend backend);

// Vectorized kernel entry points for one backend. Null entries fall
// back to the scalar implementation at each call site. All functions
// are deterministic: results depend only on the input values, never on
// thread budget or shard layout (the kernel determinism contract).
struct KernelTable {
  KernelBackend backend = KernelBackend::kScalar;

  // Dense row-major [m,k] x [k,n] -> [m,n]. Packs B, shards rows, and
  // polls cancellation internally; writes every element of c.
  void (*matmul)(const float* a, const float* b, float* c, int64_t m,
                 int64_t k, int64_t n) = nullptr;

  // Elementwise transcendental arrays (polynomial vexpf/vtanhf; ULP
  // bounds documented in DESIGN.md §4j). dst may alias src exactly.
  // Tail elements are computed with a scalar mirror of the vector lane
  // (same operation sequence, fused FMA), so a value's result does not
  // depend on where it lands in the array — this is what keeps fused
  // and unfused evaluation bit-identical within the backend.
  void (*vexp)(const float* src, float* dst, int64_t n) = nullptr;
  void (*vtanh)(const float* src, float* dst, int64_t n) = nullptr;
  void (*vsigmoid)(const float* src, float* dst, int64_t n) = nullptr;

  // One FusedProgram step over a block (tensor_ops.cc FusedApplyBlock).
  // Returns false when this step op has no vector form — the caller
  // then runs the scalar case. Only ops whose vector semantics match
  // the scalar functor exactly (correctly rounded arithmetic, or the
  // shared vexpf/vtanhf cores above) are vectorized, so fused output
  // stays bit-identical to the unfused chain under the same backend.
  bool (*fused_step)(const FusedStep& step, const float* a, const float* b,
                     float* dst, int64_t m) = nullptr;

  // int8 x int8 -> int32 inner product: qa [m,k], qw [k,n], both
  // row-major; acc [m,n] fully written. Integer math is exact, so every
  // backend's qmatmul produces identical accumulators (quant.cc tests
  // hold scalar and AVX2 to bit-equality).
  void (*qmatmul)(const int8_t* qa, const int8_t* qw, int32_t* acc,
                  int64_t m, int64_t k, int64_t n) = nullptr;
};

// True when this binary carries AVX2 kernels and the CPU supports
// AVX2+FMA.
[[nodiscard]] bool Avx2Available();

// True when the binary was compiled with the AVX2 translation unit
// (-DAG_SIMD=ON), regardless of what the CPU supports.
[[nodiscard]] bool Avx2CompiledIn();

// Parses a backend name: "scalar", "avx2", or "auto" (= nullopt, pick
// the best available). Throws ValueError on anything else.
[[nodiscard]] std::optional<KernelBackend> ParseKernelBackend(
    const std::string& name);

// Pure resolution rule (unit-testable): an explicit scalar request wins;
// "auto" and "avx2" both take AVX2 when available and degrade to scalar
// when not.
[[nodiscard]] KernelBackend ResolveBackend(
    std::optional<KernelBackend> requested, bool avx2_available);

// The process-wide default: AG_KERNEL_BACKEND (invalid values ignored)
// resolved against Avx2Available(). Computed once, on first use.
[[nodiscard]] KernelBackend ProcessDefaultBackend();

// The table for `backend` on this machine (scalar table when the
// requested backend is unavailable).
[[nodiscard]] const KernelTable& TableFor(KernelBackend backend);

// This thread's active table: the innermost KernelBackendScope if one
// is installed, else the process default. Kernels call this once at
// entry and capture the result into their shard lambdas.
[[nodiscard]] const KernelTable& ActiveKernels();
[[nodiscard]] KernelBackend ActiveBackend();

// Thread-local backend override for the duration of a run — the same
// shape as tensor::PoolDisableScope, installed by Session::Run (and
// mirrored into its inter-op pool helpers) when
// RunOptions::kernel_backend is set.
class KernelBackendScope {
 public:
  explicit KernelBackendScope(KernelBackend backend);
  ~KernelBackendScope();
  KernelBackendScope(const KernelBackendScope&) = delete;
  KernelBackendScope& operator=(const KernelBackendScope&) = delete;

 private:
  const KernelTable* previous_;
};

}  // namespace ag::tensor::simd
