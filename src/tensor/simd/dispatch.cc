#include "tensor/simd/dispatch.h"

#include <cstdlib>

#include "support/error.h"

namespace ag::tensor::simd {
namespace {

const KernelTable& ScalarKernelTable() {
  // All-null entries: every call site falls through to the seed scalar
  // code, byte-for-byte.
  static const KernelTable table{};
  return table;
}

thread_local const KernelTable* t_override = nullptr;

}  // namespace

#ifdef AG_SIMD_AVX2
// Defined in simd_avx2.cc (compiled with -mavx2 -mfma).
const KernelTable& Avx2KernelTable();
#endif

const char* KernelBackendName(KernelBackend backend) {
  switch (backend) {
    case KernelBackend::kScalar:
      return "scalar";
    case KernelBackend::kAvx2:
      return "avx2";
  }
  return "unknown";
}

bool Avx2CompiledIn() {
#ifdef AG_SIMD_AVX2
  return true;
#else
  return false;
#endif
}

bool Avx2Available() {
#ifdef AG_SIMD_AVX2
  static const bool available =
      __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  return available;
#else
  return false;
#endif
}

std::optional<KernelBackend> ParseKernelBackend(const std::string& name) {
  if (name == "auto") return std::nullopt;
  if (name == "scalar") return KernelBackend::kScalar;
  if (name == "avx2") return KernelBackend::kAvx2;
  throw ValueError("unknown kernel backend '" + name +
                   "' (expected one of: auto, scalar, avx2)");
}

KernelBackend ResolveBackend(std::optional<KernelBackend> requested,
                             bool avx2_available) {
  if (requested == KernelBackend::kScalar) return KernelBackend::kScalar;
  // "auto" and an explicit "avx2" both degrade gracefully when the CPU
  // (or build) lacks AVX2.
  return avx2_available ? KernelBackend::kAvx2 : KernelBackend::kScalar;
}

KernelBackend ProcessDefaultBackend() {
  static const KernelBackend backend = [] {
    std::optional<KernelBackend> requested;
    if (const char* env = std::getenv("AG_KERNEL_BACKEND")) {
      try {
        requested = ParseKernelBackend(env);
      } catch (const Error&) {
        // Invalid env values are ignored (treated as "auto"), matching
        // how AG_* tuning knobs behave elsewhere.
      }
    }
    return ResolveBackend(requested, Avx2Available());
  }();
  return backend;
}

const KernelTable& TableFor(KernelBackend backend) {
#ifdef AG_SIMD_AVX2
  if (backend == KernelBackend::kAvx2 && Avx2Available()) {
    return Avx2KernelTable();
  }
#else
  (void)backend;
#endif
  return ScalarKernelTable();
}

const KernelTable& ActiveKernels() {
  if (t_override != nullptr) return *t_override;
  return TableFor(ProcessDefaultBackend());
}

KernelBackend ActiveBackend() { return ActiveKernels().backend; }

KernelBackendScope::KernelBackendScope(KernelBackend backend)
    : previous_(t_override) {
  t_override = &TableFor(backend);
}

KernelBackendScope::~KernelBackendScope() { t_override = previous_; }

}  // namespace ag::tensor::simd
