// AVX2/FMA kernel backend (DESIGN.md §4j). This is the only translation
// unit compiled with -mavx2 -mfma; dispatch.cc calls Avx2KernelTable()
// strictly behind a __builtin_cpu_supports runtime check, so the binary
// stays runnable on plain SSE2 hardware.
//
// Numerical contract:
//   - Transcendentals use a Cephes-style polynomial exp core. Every
//     vector lane operation has a scalar mirror built from the same
//     operation sequence (std::fmaf == vfmadd lanewise, nearbyintf ==
//     vroundps, correctly rounded +-*/ and sqrt), used for array tails —
//     so a value's result never depends on its position in the array,
//     which keeps fused and unfused evaluation bit-identical within
//     this backend. Measured bounds vs libm (tests/simd_test.cc):
//     exp <= ~4 ulp, tanh/sigmoid <= ~8 ulp over [-20, 20]. Deviations
//     from libm semantics: exp flushes to zero below -87.3365 (no
//     subnormal range), tanh(-0) = +0.
//   - MatMul accumulates each output element over k in ascending order
//     with FMA, independent of row-block and shard boundaries, so
//     parallel == sequential bit-identity holds within the backend
//     (scalar *tails* use std::fmaf in the same k order).
//   - The int8 qmatmul is exact integer arithmetic: bit-identical to
//     the scalar reference in quant.cc. _mm256_maddubs_epi16 is
//     deliberately avoided (it saturates u8*s8 pair sums); the packed
//     layout pairs two consecutive k rows as int16 so _mm256_madd_epi16
//     accumulates exactly.
#include <immintrin.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "runtime/cancellation.h"
#include "runtime/parallel_for.h"
#include "tensor/allocator.h"
#include "tensor/simd/dispatch.h"

namespace ag::tensor::simd {
namespace {

// Matches kElementGrain in tensor_ops.cc (the minimum per-shard element
// count worth shipping to another thread).
constexpr int64_t kElementGrain = 16384;

// ---- exp core ----------------------------------------------------------
// exp(x) = 2^n * exp(r), n = round(x * log2(e)), r = x - n*ln2 (two-part
// ln2 for accuracy), exp(r) ~= 1 + r + r^2 * P(r). Constants are the
// classic Cephes single-precision set.
constexpr float kExpHi = 88.7228394f;    // exp overflows above
constexpr float kExpLo = -87.3365479f;   // exp flushes to zero below
constexpr float kLog2e = 1.44269504088896341f;
constexpr float kLn2Hi = 0.693359375f;
constexpr float kLn2Lo = -2.12194440e-4f;
constexpr float kExpP0 = 1.9875691500e-4f;
constexpr float kExpP1 = 1.3981999507e-3f;
constexpr float kExpP2 = 8.3334519073e-3f;
constexpr float kExpP3 = 4.1665795894e-2f;
constexpr float kExpP4 = 1.6666665459e-1f;
constexpr float kExpP5 = 5.0000001201e-1f;

// Scalar mirrors of _mm256_max_ps / _mm256_min_ps (return the second
// operand when the comparison is false, including on NaN) — std::min /
// std::max have the opposite NaN behavior.
inline float MaxMirror(float a, float b) { return a > b ? a : b; }
inline float MinMirror(float a, float b) { return a < b ? a : b; }

// 2^e for e in [-63, 64], by exponent-bit construction. The caller
// splits n into two such halves so n = 128 (x just below kExpHi) scales
// without an intermediate infinity.
inline float Pow2Scalar(int e) {
  return std::bit_cast<float>(static_cast<uint32_t>(e + 127) << 23);
}

inline float ExpCoreScalar(float x0) {
  if (x0 != x0) return x0;  // NaN in, same NaN out (matches vector blend)
  const float x = MinMirror(MaxMirror(x0, kExpLo), kExpHi);
  const float n = std::nearbyintf(x * kLog2e);
  float r = std::fmaf(n, -kLn2Hi, x);
  r = std::fmaf(n, -kLn2Lo, r);
  const float r2 = r * r;
  float p = kExpP0;
  p = std::fmaf(p, r, kExpP1);
  p = std::fmaf(p, r, kExpP2);
  p = std::fmaf(p, r, kExpP3);
  p = std::fmaf(p, r, kExpP4);
  p = std::fmaf(p, r, kExpP5);
  float y = std::fmaf(p, r2, r);
  y += 1.0f;
  const int ni = static_cast<int>(n);
  const int n1 = ni >> 1;  // arithmetic shift: floor halves, n1+n2 == ni
  const int n2 = ni - n1;
  y = (y * Pow2Scalar(n1)) * Pow2Scalar(n2);
  if (x0 > kExpHi) return std::numeric_limits<float>::infinity();
  if (x0 < kExpLo) return 0.0f;
  return y;
}

inline __m256 ExpCore8(__m256 x0) {
  const __m256 x =
      _mm256_min_ps(_mm256_max_ps(x0, _mm256_set1_ps(kExpLo)),
                    _mm256_set1_ps(kExpHi));
  const __m256 n = _mm256_round_ps(
      _mm256_mul_ps(x, _mm256_set1_ps(kLog2e)),
      _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  __m256 r = _mm256_fmadd_ps(n, _mm256_set1_ps(-kLn2Hi), x);
  r = _mm256_fmadd_ps(n, _mm256_set1_ps(-kLn2Lo), r);
  const __m256 r2 = _mm256_mul_ps(r, r);
  __m256 p = _mm256_set1_ps(kExpP0);
  p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(kExpP1));
  p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(kExpP2));
  p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(kExpP3));
  p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(kExpP4));
  p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(kExpP5));
  __m256 y = _mm256_fmadd_ps(p, r2, r);
  y = _mm256_add_ps(y, _mm256_set1_ps(1.0f));
  const __m256i ni = _mm256_cvtps_epi32(n);
  const __m256i n1 = _mm256_srai_epi32(ni, 1);
  const __m256i n2 = _mm256_sub_epi32(ni, n1);
  const __m256i bias = _mm256_set1_epi32(127);
  const __m256 s1 = _mm256_castsi256_ps(
      _mm256_slli_epi32(_mm256_add_epi32(n1, bias), 23));
  const __m256 s2 = _mm256_castsi256_ps(
      _mm256_slli_epi32(_mm256_add_epi32(n2, bias), 23));
  y = _mm256_mul_ps(_mm256_mul_ps(y, s1), s2);
  // Fix-ups on the *original* input: overflow to +inf, flush to zero,
  // propagate NaN payloads.
  const __m256 inf = _mm256_set1_ps(std::numeric_limits<float>::infinity());
  y = _mm256_blendv_ps(
      y, inf, _mm256_cmp_ps(x0, _mm256_set1_ps(kExpHi), _CMP_GT_OQ));
  y = _mm256_blendv_ps(
      y, _mm256_setzero_ps(),
      _mm256_cmp_ps(x0, _mm256_set1_ps(kExpLo), _CMP_LT_OQ));
  y = _mm256_blendv_ps(y, x0, _mm256_cmp_ps(x0, x0, _CMP_UNORD_Q));
  return y;
}

// ---- tanh / sigmoid ----------------------------------------------------
// Cephes two-branch tanh: a polynomial for |x| < 0.625 (avoids the
// catastrophic cancellation of the exp form near zero) and
// sign(x) * (1 - 2/(exp(2|x|) + 1)) elsewhere. Both branches are
// computed and blended, identically in vector and scalar form.
constexpr float kTanhC0 = -5.70498872745e-3f;
constexpr float kTanhC1 = 2.06390887954e-2f;
constexpr float kTanhC2 = -5.37397155531e-2f;
constexpr float kTanhC3 = 1.33314422036e-1f;
constexpr float kTanhC4 = -3.33332819422e-1f;
constexpr float kTanhSwitch = 0.625f;

inline float TanhCoreScalar(float x) {
  const float z = std::fabs(x);
  // Small branch.
  const float z2 = x * x;
  float p = kTanhC0;
  p = std::fmaf(p, z2, kTanhC1);
  p = std::fmaf(p, z2, kTanhC2);
  p = std::fmaf(p, z2, kTanhC3);
  p = std::fmaf(p, z2, kTanhC4);
  p = p * z2;
  const float small = std::fmaf(p, x, x);
  // Large branch (exp core handles 2z up to +inf via its fix-ups).
  const float e = ExpCoreScalar(z + z);
  const float t = 1.0f - 2.0f / (e + 1.0f);
  const float large = std::bit_cast<float>(
      std::bit_cast<uint32_t>(t) |
      (std::bit_cast<uint32_t>(x) & 0x80000000u));
  return z < kTanhSwitch ? small : large;
}

inline __m256 TanhCore8(__m256 x) {
  const __m256 sign_bit = _mm256_set1_ps(-0.0f);
  const __m256 z = _mm256_andnot_ps(sign_bit, x);
  const __m256 z2 = _mm256_mul_ps(x, x);
  __m256 p = _mm256_set1_ps(kTanhC0);
  p = _mm256_fmadd_ps(p, z2, _mm256_set1_ps(kTanhC1));
  p = _mm256_fmadd_ps(p, z2, _mm256_set1_ps(kTanhC2));
  p = _mm256_fmadd_ps(p, z2, _mm256_set1_ps(kTanhC3));
  p = _mm256_fmadd_ps(p, z2, _mm256_set1_ps(kTanhC4));
  p = _mm256_mul_ps(p, z2);
  const __m256 small = _mm256_fmadd_ps(p, x, x);
  const __m256 e = ExpCore8(_mm256_add_ps(z, z));
  const __m256 t = _mm256_sub_ps(
      _mm256_set1_ps(1.0f),
      _mm256_div_ps(_mm256_set1_ps(2.0f),
                    _mm256_add_ps(e, _mm256_set1_ps(1.0f))));
  const __m256 large = _mm256_or_ps(t, _mm256_and_ps(x, sign_bit));
  return _mm256_blendv_ps(
      large, small,
      _mm256_cmp_ps(z, _mm256_set1_ps(kTanhSwitch), _CMP_LT_OQ));
}

inline float SigmoidCoreScalar(float x) {
  return 1.0f / (1.0f + ExpCoreScalar(-x));
}

inline __m256 SigmoidCore8(__m256 x) {
  const __m256 one = _mm256_set1_ps(1.0f);
  const __m256 e = ExpCore8(_mm256_sub_ps(_mm256_setzero_ps(), x));
  return _mm256_div_ps(one, _mm256_add_ps(one, e));
}

// NaN note for tanh/sigmoid: |NaN| fails the small-branch compare, the
// exp core propagates the payload, and 1 - 2/(NaN+1) stays NaN — scalar
// mirror included. -0.0f negation in SigmoidCoreScalar: 0.0f - x would
// differ from the vector sub at x=+0 (+0 vs -0 feeding exp), but
// exp(+0) == exp(-0) == 1, so `-x` is safe.

// ---- array entry points ------------------------------------------------

void VExp(const float* src, float* dst, int64_t n) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(dst + i, ExpCore8(_mm256_loadu_ps(src + i)));
  }
  for (; i < n; ++i) dst[i] = ExpCoreScalar(src[i]);
}

void VTanh(const float* src, float* dst, int64_t n) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(dst + i, TanhCore8(_mm256_loadu_ps(src + i)));
  }
  for (; i < n; ++i) dst[i] = TanhCoreScalar(src[i]);
}

void VSigmoid(const float* src, float* dst, int64_t n) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(dst + i, SigmoidCore8(_mm256_loadu_ps(src + i)));
  }
  for (; i < n; ++i) dst[i] = SigmoidCoreScalar(src[i]);
}

// ---- float MatMul ------------------------------------------------------
// B is packed once (on the calling thread) into per-16-column tiles laid
// out [k][16] contiguously, then rows are sharded and processed in
// 6-row register blocks: 12 ymm accumulators, full-k accumulation in
// registers (6 broadcasts + 2 tile loads + 12 FMAs per k step). Each
// C[i][j] is an ascending-k FMA chain regardless of block or shard
// boundaries — the determinism contract. Tails: row blocks < 6 use the
// same chain via templated block sizes; the last column tile spills
// through a 16-float staging buffer.

constexpr int64_t kColTile = 16;
constexpr int64_t kRowBlock = 6;

template <int Rows>
inline void MicroKernel(const float* a, int64_t lda, const float* bpack,
                        int64_t k, float* c, int64_t ldc, int64_t cols) {
  __m256 acc0[Rows], acc1[Rows];
  for (int r = 0; r < Rows; ++r) {
    acc0[r] = _mm256_setzero_ps();
    acc1[r] = _mm256_setzero_ps();
  }
  for (int64_t kk = 0; kk < k; ++kk) {
    const __m256 b0 = _mm256_loadu_ps(bpack + kk * kColTile);
    const __m256 b1 = _mm256_loadu_ps(bpack + kk * kColTile + 8);
    for (int r = 0; r < Rows; ++r) {
      const __m256 av = _mm256_set1_ps(a[r * lda + kk]);
      acc0[r] = _mm256_fmadd_ps(av, b0, acc0[r]);
      acc1[r] = _mm256_fmadd_ps(av, b1, acc1[r]);
    }
  }
  if (cols == kColTile) {
    for (int r = 0; r < Rows; ++r) {
      _mm256_storeu_ps(c + r * ldc, acc0[r]);
      _mm256_storeu_ps(c + r * ldc + 8, acc1[r]);
    }
  } else {
    alignas(32) float tmp[kColTile];
    for (int r = 0; r < Rows; ++r) {
      _mm256_store_ps(tmp, acc0[r]);
      _mm256_store_ps(tmp + 8, acc1[r]);
      std::memcpy(c + r * ldc, tmp, sizeof(float) * cols);
    }
  }
}

inline void RunMicroKernel(int rows, const float* a, int64_t lda,
                           const float* bpack, int64_t k, float* c,
                           int64_t ldc, int64_t cols) {
  switch (rows) {
    case 1: MicroKernel<1>(a, lda, bpack, k, c, ldc, cols); break;
    case 2: MicroKernel<2>(a, lda, bpack, k, c, ldc, cols); break;
    case 3: MicroKernel<3>(a, lda, bpack, k, c, ldc, cols); break;
    case 4: MicroKernel<4>(a, lda, bpack, k, c, ldc, cols); break;
    case 5: MicroKernel<5>(a, lda, bpack, k, c, ldc, cols); break;
    default: MicroKernel<6>(a, lda, bpack, k, c, ldc, cols); break;
  }
}

void MatMulAvx2(const float* a, const float* b, float* c, int64_t m,
                int64_t k, int64_t n) {
  const int64_t tiles = (n + kColTile - 1) / kColTile;
  // Packed B comes from the buffer pool so steady-state staged loops
  // reuse the same block run over run.
  PooledBuffer pack_buf = BufferPool::Global().Acquire(tiles * k * kColTile);
  float* pack = pack_buf.mutable_data();
  for (int64_t t = 0; t < tiles; ++t) {
    const int64_t j0 = t * kColTile;
    const int64_t cols = std::min<int64_t>(kColTile, n - j0);
    float* dst = pack + t * k * kColTile;
    for (int64_t kk = 0; kk < k; ++kk) {
      const float* brow = b + kk * n + j0;
      float* drow = dst + kk * kColTile;
      for (int64_t jc = 0; jc < cols; ++jc) drow[jc] = brow[jc];
      for (int64_t jc = cols; jc < kColTile; ++jc) drow[jc] = 0.0f;
    }
  }
  // Captured on the calling thread; pool helpers have no scope installed
  // (same pattern as the scalar MatMul).
  runtime::CancelCheck* cancel = runtime::CurrentCancelCheck();
  const int64_t rows_grain =
      std::max<int64_t>(1, kElementGrain / std::max<int64_t>(1, k * n));
  runtime::ParallelFor(m, rows_grain, [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; i += kRowBlock) {
      if (cancel != nullptr) cancel->Poll("MatMul avx2 block");
      const int rows = static_cast<int>(
          std::min<int64_t>(kRowBlock, i1 - i));
      for (int64_t t = 0; t < tiles; ++t) {
        const int64_t j0 = t * kColTile;
        const int64_t cols = std::min<int64_t>(kColTile, n - j0);
        RunMicroKernel(rows, a + i * k, k, pack + t * k * kColTile, k,
                       c + i * n + j0, n, cols);
      }
    }
  });
}

// ---- fused-program steps -----------------------------------------------
// Only ops whose AVX2 semantics match the scalar functor bit-for-bit are
// handled here (correctly rounded +-*/sqrt, sign-bit ops, max(x,0) which
// equals `x > 0 ? x : 0` including NaN -> +0 and -0 -> +0, and the
// shared transcendental cores above). Everything else — Maximum/Minimum
// (std::max/min NaN and ±0 rules differ from vmaxps/vminps),
// comparisons, Pow/Mod/FloorDiv, Log/Sin/Cos/Sign, Cast — returns false
// and runs the scalar case, preserving fused == unfused bit-identity.

#define AG_SIMD_BIN_LOOP(vexpr, sexpr)                        \
  {                                                           \
    int64_t j = 0;                                            \
    for (; j + 8 <= m; j += 8) {                              \
      const __m256 x = _mm256_loadu_ps(a + j);                \
      const __m256 y = _mm256_loadu_ps(b + j);                \
      _mm256_storeu_ps(dst + j, (vexpr));                     \
    }                                                         \
    for (; j < m; ++j) {                                      \
      const float x = a[j];                                   \
      const float y = b[j];                                   \
      dst[j] = (sexpr);                                       \
    }                                                         \
  }                                                           \
  return true

#define AG_SIMD_UN_LOOP(vexpr, sexpr)                         \
  {                                                           \
    int64_t j = 0;                                            \
    for (; j + 8 <= m; j += 8) {                              \
      const __m256 x = _mm256_loadu_ps(a + j);                \
      _mm256_storeu_ps(dst + j, (vexpr));                     \
    }                                                         \
    for (; j < m; ++j) {                                      \
      const float x = a[j];                                   \
      dst[j] = (sexpr);                                       \
    }                                                         \
  }                                                           \
  return true

bool FusedStepAvx2(const FusedStep& s, const float* a, const float* b,
                   float* dst, int64_t m) {
  const __m256 sign_bit = _mm256_set1_ps(-0.0f);
  switch (s.op) {
    case FusedOp::kAdd:
      AG_SIMD_BIN_LOOP(_mm256_add_ps(x, y), x + y);
    case FusedOp::kSub:
      AG_SIMD_BIN_LOOP(_mm256_sub_ps(x, y), x - y);
    case FusedOp::kMul:
      AG_SIMD_BIN_LOOP(_mm256_mul_ps(x, y), x * y);
    case FusedOp::kDiv:
      AG_SIMD_BIN_LOOP(_mm256_div_ps(x, y), x / y);
    case FusedOp::kNeg:
      AG_SIMD_UN_LOOP(_mm256_xor_ps(x, sign_bit), -x);
    case FusedOp::kAbs:
      AG_SIMD_UN_LOOP(_mm256_andnot_ps(sign_bit, x), std::fabs(x));
    case FusedOp::kSquare:
      AG_SIMD_UN_LOOP(_mm256_mul_ps(x, x), x * x);
    case FusedOp::kRelu:
      AG_SIMD_UN_LOOP(_mm256_max_ps(x, _mm256_setzero_ps()),
                      x > 0.0f ? x : 0.0f);
    case FusedOp::kSqrt:
      AG_SIMD_UN_LOOP(_mm256_sqrt_ps(x), std::sqrt(x));
    case FusedOp::kExp:
      VExp(a, dst, m);
      return true;
    case FusedOp::kTanh:
      VTanh(a, dst, m);
      return true;
    case FusedOp::kSigmoid:
      VSigmoid(a, dst, m);
      return true;
    default:
      return false;
  }
}

#undef AG_SIMD_BIN_LOOP
#undef AG_SIMD_UN_LOOP

// ---- int8 MatMul -------------------------------------------------------
// qa [m,k] x qw [k,n] -> int32 acc [m,n], exact. Weights are packed
// per-16-column tile with two consecutive k rows interleaved as int16
// pairs, so one _mm256_madd_epi16 accumulates both rows' contribution
// for 8 columns without saturation (|q| <= 128 keeps every pair sum
// well inside int32). Odd k is zero-padded on both sides.

template <int Rows>
inline void QMicroKernel(const int32_t* apack, int64_t lda2,
                         const int16_t* wpack, int64_t k2, int32_t* acc,
                         int64_t ldc, int64_t cols) {
  __m256i acc0[Rows], acc1[Rows];
  for (int r = 0; r < Rows; ++r) {
    acc0[r] = _mm256_setzero_si256();
    acc1[r] = _mm256_setzero_si256();
  }
  for (int64_t kk2 = 0; kk2 < k2; ++kk2) {
    const __m256i w0 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(wpack + kk2 * kColTile * 2));
    const __m256i w1 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(wpack + kk2 * kColTile * 2 + 16));
    for (int r = 0; r < Rows; ++r) {
      // One vpbroadcastd from the pre-packed pair — the activation side
      // costs a single load µop per row per k-pair.
      const __m256i av = _mm256_set1_epi32(apack[r * lda2 + kk2]);
      acc0[r] = _mm256_add_epi32(acc0[r], _mm256_madd_epi16(av, w0));
      acc1[r] = _mm256_add_epi32(acc1[r], _mm256_madd_epi16(av, w1));
    }
  }
  if (cols == kColTile) {
    for (int r = 0; r < Rows; ++r) {
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + r * ldc),
                          acc0[r]);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + r * ldc + 8),
                          acc1[r]);
    }
  } else {
    alignas(32) int32_t tmp[kColTile];
    for (int r = 0; r < Rows; ++r) {
      _mm256_store_si256(reinterpret_cast<__m256i*>(tmp), acc0[r]);
      _mm256_store_si256(reinterpret_cast<__m256i*>(tmp + 8), acc1[r]);
      std::memcpy(acc + r * ldc, tmp, sizeof(int32_t) * cols);
    }
  }
}

inline void RunQMicroKernel(int rows, const int32_t* apack, int64_t lda2,
                            const int16_t* wpack, int64_t k2, int32_t* acc,
                            int64_t ldc, int64_t cols) {
  switch (rows) {
    case 1: QMicroKernel<1>(apack, lda2, wpack, k2, acc, ldc, cols); break;
    case 2: QMicroKernel<2>(apack, lda2, wpack, k2, acc, ldc, cols); break;
    case 3: QMicroKernel<3>(apack, lda2, wpack, k2, acc, ldc, cols); break;
    default: QMicroKernel<4>(apack, lda2, wpack, k2, acc, ldc, cols); break;
  }
}

// AVX512-VNNI variant: vpdpbusd computes a 4-way int8 dot product per
// int32 lane (64 MACs per 512-bit instruction vs 16 for the madd+add
// pair above). The u8 x s8 operand asymmetry is absorbed exactly:
// activations are biased by +128 into [1, 255] (qa is clamped to -127,
// so the bias cannot wrap) and the accumulators are *initialized* to
// -128 * colsum(w) per column tile, which cancels the bias with zero
// inner-loop cost. Each 4-product group fits int16 intermediates
// (255 * 128 * 4 < 2^31, products in [-32640, 32385]) and vpdpbusd —
// unlike vpmaddubsw and the saturating vpdpbusds — accumulates the
// group exactly, so this path stays bit-identical to the madd path and
// the scalar reference. It is picked purely by __builtin_cpu_supports
// at kernel entry and does not change the backend name ("avx2" means
// "the best integer kernel this machine runs", mirroring how BLAS
// backends sub-dispatch).
#if defined(__GNUC__) && !defined(__clang__)
#define AG_HAVE_QVNNI 1
#define AG_TARGET_VNNI \
  __attribute__((target("avx512f,avx512bw,avx512vl,avx512vnni")))

template <int Rows>
AG_TARGET_VNNI inline void QMicroKernelVnni(const int32_t* apack,
                                            int64_t lda4,
                                            const int8_t* wpack, int64_t k4,
                                            const int32_t* init, int32_t* acc,
                                            int64_t ldc, int64_t cols) {
  __m512i accv[Rows];
  const __m512i iv = _mm512_loadu_si512(init);
  for (int r = 0; r < Rows; ++r) accv[r] = iv;
  for (int64_t kk4 = 0; kk4 < k4; ++kk4) {
    const __m512i w = _mm512_loadu_si512(wpack + kk4 * kColTile * 4);
    for (int r = 0; r < Rows; ++r) {
      const __m512i av = _mm512_set1_epi32(apack[r * lda4 + kk4]);
      accv[r] = _mm512_dpbusd_epi32(accv[r], av, w);
    }
  }
  if (cols == kColTile) {
    for (int r = 0; r < Rows; ++r) {
      _mm512_storeu_si512(acc + r * ldc, accv[r]);
    }
  } else {
    const __mmask16 mask =
        static_cast<__mmask16>((1u << cols) - 1u);
    for (int r = 0; r < Rows; ++r) {
      _mm512_mask_storeu_epi32(acc + r * ldc, mask, accv[r]);
    }
  }
}

AG_TARGET_VNNI inline void RunQMicroKernelVnni(int rows, const int32_t* apack,
                                               int64_t lda4,
                                               const int8_t* wpack,
                                               int64_t k4, const int32_t* init,
                                               int32_t* acc, int64_t ldc,
                                               int64_t cols) {
  switch (rows) {
    case 1:
      QMicroKernelVnni<1>(apack, lda4, wpack, k4, init, acc, ldc, cols);
      break;
    case 2:
      QMicroKernelVnni<2>(apack, lda4, wpack, k4, init, acc, ldc, cols);
      break;
    case 3:
      QMicroKernelVnni<3>(apack, lda4, wpack, k4, init, acc, ldc, cols);
      break;
    case 4:
      QMicroKernelVnni<4>(apack, lda4, wpack, k4, init, acc, ldc, cols);
      break;
    case 5:
      QMicroKernelVnni<5>(apack, lda4, wpack, k4, init, acc, ldc, cols);
      break;
    case 6:
      QMicroKernelVnni<6>(apack, lda4, wpack, k4, init, acc, ldc, cols);
      break;
    case 7:
      QMicroKernelVnni<7>(apack, lda4, wpack, k4, init, acc, ldc, cols);
      break;
    default:
      QMicroKernelVnni<8>(apack, lda4, wpack, k4, init, acc, ldc, cols);
      break;
  }
}

bool Vnni512Available() {
  static const bool available = __builtin_cpu_supports("avx512f") &&
                                __builtin_cpu_supports("avx512bw") &&
                                __builtin_cpu_supports("avx512vl") &&
                                __builtin_cpu_supports("avx512vnni");
  return available;
}

// One 512-bit accumulator per row, so a deeper row block amortizes the
// weight-tile load over more dot-steps.
constexpr int64_t kQRowBlockVnni = 8;

// vpdpbusd needs its own packed layouts: weight quads (4 consecutive k
// values per int32 lane, 16 columns per 64-byte row) plus the biased
// activation quads, and the -128 * colsum(w) accumulator seeds.
void QMatMulVnni(const int8_t* qa, const int8_t* qw, int32_t* acc,
                 int64_t m, int64_t k, int64_t n, int64_t tiles,
                 int64_t rows_grain) {
  const int64_t k4 = (k + 3) / 4;
  std::vector<int8_t> wpack(tiles * k4 * kColTile * 4);
  std::vector<int32_t> init(tiles * kColTile, 0);
  for (int64_t t = 0; t < tiles; ++t) {
    const int64_t j0 = t * kColTile;
    const int64_t cols = std::min<int64_t>(kColTile, n - j0);
    int8_t* dst = wpack.data() + t * k4 * kColTile * 4;
    int32_t* seed = init.data() + t * kColTile;
    for (int64_t kk4 = 0; kk4 < k4; ++kk4) {
      int8_t* drow = dst + kk4 * kColTile * 4;
      for (int64_t jc = 0; jc < kColTile; ++jc) {
        for (int64_t b = 0; b < 4; ++b) {
          const int64_t kk = kk4 * 4 + b;
          const int8_t w =
              (kk < k && jc < cols) ? qw[kk * n + j0 + jc] : int8_t{0};
          drow[jc * 4 + b] = w;
          seed[jc] -= 128 * static_cast<int32_t>(w);
        }
      }
    }
  }
  // Biased activation quads: byte b of apack[i][kk4] is qa + 128 as u8
  // (pad bytes 0 — they meet zero weight pads, contributing nothing).
  std::vector<int32_t> apack(m * k4, 0);
  for (int64_t i = 0; i < m; ++i) {
    const int8_t* row = qa + i * k;
    auto* dst = reinterpret_cast<uint8_t*>(apack.data() + i * k4);
    for (int64_t kk = 0; kk < k; ++kk) {
      dst[kk] = static_cast<uint8_t>(static_cast<int32_t>(row[kk]) + 128);
    }
  }
  runtime::CancelCheck* cancel = runtime::CurrentCancelCheck();
  runtime::ParallelFor(m, rows_grain, [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; i += kQRowBlockVnni) {
      if (cancel != nullptr) cancel->Poll("QuantizedMatMul avx2 block");
      const int rows = static_cast<int>(
          std::min<int64_t>(kQRowBlockVnni, i1 - i));
      for (int64_t t = 0; t < tiles; ++t) {
        const int64_t j0 = t * kColTile;
        const int64_t cols = std::min<int64_t>(kColTile, n - j0);
        RunQMicroKernelVnni(rows, apack.data() + i * k4, k4,
                            wpack.data() + t * k4 * kColTile * 4, k4,
                            init.data() + t * kColTile,
                            acc + i * n + j0, n, cols);
      }
    }
  });
}
#endif  // AG_HAVE_QVNNI

constexpr int64_t kQRowBlock = 4;

void QMatMulAvx2(const int8_t* qa, const int8_t* qw, int32_t* acc,
                 int64_t m, int64_t k, int64_t n) {
  const int64_t tiles = (n + kColTile - 1) / kColTile;
  const int64_t rows_grain_v =
      std::max<int64_t>(1, kElementGrain / std::max<int64_t>(1, k * n));
#if defined(AG_HAVE_QVNNI)
  if (Vnni512Available()) {
    QMatMulVnni(qa, qw, acc, m, k, n, tiles, rows_grain_v);
    return;
  }
#endif
  const int64_t k2 = (k + 1) / 2;
  std::vector<int16_t> pack(tiles * k2 * kColTile * 2);
  for (int64_t t = 0; t < tiles; ++t) {
    const int64_t j0 = t * kColTile;
    const int64_t cols = std::min<int64_t>(kColTile, n - j0);
    int16_t* dst = pack.data() + t * k2 * kColTile * 2;
    for (int64_t kk2 = 0; kk2 < k2; ++kk2) {
      const int64_t kk = kk2 * 2;
      const int8_t* w0 = qw + kk * n + j0;
      const int8_t* w1 = kk + 1 < k ? qw + (kk + 1) * n + j0 : nullptr;
      int16_t* drow = dst + kk2 * kColTile * 2;
      for (int64_t jc = 0; jc < kColTile; ++jc) {
        drow[jc * 2] = jc < cols ? static_cast<int16_t>(w0[jc]) : 0;
        drow[jc * 2 + 1] =
            (w1 != nullptr && jc < cols) ? static_cast<int16_t>(w1[jc]) : 0;
      }
    }
  }
  // Activations pre-packed the same way: consecutive k pairs fused into
  // one int32 (lo half = even k, hi half = odd k), so the micro-kernel
  // broadcast is a plain vpbroadcastd instead of a scalar
  // load/shift/or rebuilt per column tile.
  std::vector<int32_t> apack(m * k2);
  for (int64_t i = 0; i < m; ++i) {
    const int8_t* row = qa + i * k;
    int32_t* dst = apack.data() + i * k2;
    for (int64_t kk2 = 0; kk2 < k2; ++kk2) {
      const int64_t kk = kk2 * 2;
      const int32_t a0 = row[kk];
      const int32_t a1 = kk + 1 < k ? row[kk + 1] : 0;
      dst[kk2] = (a1 << 16) | (a0 & 0xFFFF);
    }
  }
  runtime::CancelCheck* cancel = runtime::CurrentCancelCheck();
  const int64_t rows_grain = rows_grain_v;
  runtime::ParallelFor(m, rows_grain, [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; i += kQRowBlock) {
      if (cancel != nullptr) cancel->Poll("QuantizedMatMul avx2 block");
      const int rows = static_cast<int>(
          std::min<int64_t>(kQRowBlock, i1 - i));
      for (int64_t t = 0; t < tiles; ++t) {
        const int64_t j0 = t * kColTile;
        const int64_t cols = std::min<int64_t>(kColTile, n - j0);
        RunQMicroKernel(rows, apack.data() + i * k2, k2,
                        pack.data() + t * k2 * kColTile * 2, k2,
                        acc + i * n + j0, n, cols);
      }
    }
  });
}

}  // namespace

const KernelTable& Avx2KernelTable() {
  static const KernelTable table = [] {
    KernelTable t;
    t.backend = KernelBackend::kAvx2;
    t.matmul = &MatMulAvx2;
    t.vexp = &VExp;
    t.vtanh = &VTanh;
    t.vsigmoid = &VSigmoid;
    t.fused_step = &FusedStepAvx2;
    t.qmatmul = &QMatMulAvx2;
    return t;
  }();
  return table;
}

}  // namespace ag::tensor::simd
