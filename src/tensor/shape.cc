#include "tensor/shape.h"

#include <sstream>

#include "support/error.h"

namespace ag {

int64_t Shape::dim(int axis) const {
  return dims_.at(static_cast<size_t>(ResolveAxis(axis)));
}

int64_t Shape::num_elements() const {
  int64_t n = 1;
  for (int64_t d : dims_) n *= d;
  return n;
}

std::vector<int64_t> Shape::strides() const {
  std::vector<int64_t> s(dims_.size(), 1);
  for (int i = static_cast<int>(dims_.size()) - 2; i >= 0; --i) {
    s[static_cast<size_t>(i)] =
        s[static_cast<size_t>(i) + 1] * dims_[static_cast<size_t>(i) + 1];
  }
  return s;
}

int Shape::ResolveAxis(int axis) const {
  int r = rank();
  int resolved = axis < 0 ? axis + r : axis;
  if (resolved < 0 || resolved >= r) {
    throw ValueError("axis " + std::to_string(axis) +
                     " out of range for shape " + str());
  }
  return resolved;
}

std::string Shape::str() const {
  std::ostringstream os;
  os << "(";
  for (size_t i = 0; i < dims_.size(); ++i) {
    if (i > 0) os << ", ";
    os << dims_[i];
  }
  os << ")";
  return os.str();
}

bool Shape::BroadcastCompatible(const Shape& a, const Shape& b) {
  int ra = a.rank();
  int rb = b.rank();
  int r = std::max(ra, rb);
  for (int i = 0; i < r; ++i) {
    int64_t da = i < ra ? a.dims()[static_cast<size_t>(ra - 1 - i)] : 1;
    int64_t db = i < rb ? b.dims()[static_cast<size_t>(rb - 1 - i)] : 1;
    if (da != db && da != 1 && db != 1) return false;
  }
  return true;
}

Shape Shape::Broadcast(const Shape& a, const Shape& b) {
  if (!BroadcastCompatible(a, b)) {
    throw ValueError("shapes " + a.str() + " and " + b.str() +
                     " are not broadcast-compatible");
  }
  int ra = a.rank();
  int rb = b.rank();
  int r = std::max(ra, rb);
  std::vector<int64_t> dims(static_cast<size_t>(r));
  for (int i = 0; i < r; ++i) {
    int64_t da = i < ra ? a.dims()[static_cast<size_t>(ra - 1 - i)] : 1;
    int64_t db = i < rb ? b.dims()[static_cast<size_t>(rb - 1 - i)] : 1;
    dims[static_cast<size_t>(r - 1 - i)] = std::max(da, db);
  }
  return Shape(std::move(dims));
}

}  // namespace ag
