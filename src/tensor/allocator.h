// Pooled buffer allocator — the tensor memory subsystem (DESIGN.md §4g).
//
// Every Tensor owns its storage through a PooledBuffer: an intrusive
// refcounted handle over a heap block (header + std::vector<float>)
// recycled *whole* through a process-wide, size-bucketed BufferPool.
// Steady-state graph loops (the staged While workloads of Tables 1-3)
// therefore stop paying a malloc/free pair per edge per iteration: once
// warm, every kernel output is a pool hit — one atomic pop, zero heap
// traffic — which is what lets the runtime amortize allocator churn the
// same way the graph amortizes per-op dispatch (AutoGraph §1, §6).
//
// Design:
//   - Power-of-two buckets. A block whose vector capacity is c lives in
//     bucket floor(log2(c)); Acquire(n) looks in bucket ceil(log2(n)),
//     whose every block has capacity >= 2^ceil >= n. Fresh allocations
//     reserve the rounded-up bucket capacity so a same-size re-acquire
//     after release always hits.
//   - Per-thread free-list caches (mirroring runtime::IntraOpScope's
//     thread-scoped budget idiom): release pushes into a small
//     thread-local cache, overflowing to the global mutex-protected
//     buckets; acquire checks the local cache first. The hot
//     same-thread reuse path touches no lock.
//   - Bounded retention with LRU trim: global buckets carry a release
//     tick; when retained bytes exceed the cap (AG_BUFFER_POOL_CAP_MB,
//     default 256), the oldest-released blocks are freed first.
//   - Escape hatch: AG_BUFFER_POOL=0 disables pooling process-wide and
//     obs::RunOptions::buffer_pool=false disables it for one Run (a
//     thread-local scope inherited by that run's pool helpers). Disabled
//     means the seed allocation path byte-for-byte: fresh heap vector
//     per output, free on release, and no in-place buffer reuse.
//
// Thread safety: refcounts are atomic; the global buckets are
// mutex-protected; thread caches are, by construction, single-thread.
// Stats counters are relaxed atomics (monotonic, read for reporting).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

namespace ag::tensor {

namespace detail {

// One heap allocation per buffer: refcount header + the vector. The
// block (header *and* vector) is recycled as a unit, so a pool hit
// costs zero mallocs — not even a shared_ptr control block.
//
// External blocks (BufferPool::WrapExternal) are the read-only variant
// backing mmap'd artifact weights: data()/size() come from borrowed
// memory kept alive by `external_owner`, the block never joins the
// pool, and unique() is pinned false so no in-place kernel (CanReuse)
// or structural reuse (SoleOwner) can ever write through the mapping.
struct BufferBlock {
  std::atomic<int64_t> refs{1};
  int bucket = 0;       // floor(log2(storage.capacity()))
  int64_t tick = 0;     // release tick, for LRU trim (global lists only)
  std::vector<float> storage;
  const float* external_data = nullptr;  // non-null: read-only external
  int64_t external_size = 0;
  std::shared_ptr<const void> external_owner;  // keeps the mapping alive
};

// Decrements and recycles/frees on last release (defined in the .cc so
// the pool internals stay private).
void ReleaseBlock(BufferBlock* block);

}  // namespace detail

// Refcounted handle over a BufferBlock — what Tensor stores in place of
// shared_ptr<vector<float>>. Copy bumps the count; destruction of the
// last handle returns the block to the pool (or frees it when pooling
// is disabled).
class PooledBuffer {
 public:
  PooledBuffer() = default;
  explicit PooledBuffer(detail::BufferBlock* block) : block_(block) {}

  PooledBuffer(const PooledBuffer& other) : block_(other.block_) {
    if (block_ != nullptr) {
      block_->refs.fetch_add(1, std::memory_order_relaxed);
    }
  }
  PooledBuffer& operator=(const PooledBuffer& other) {
    if (this == &other) return *this;
    if (other.block_ != nullptr) {
      other.block_->refs.fetch_add(1, std::memory_order_relaxed);
    }
    Reset();
    block_ = other.block_;
    return *this;
  }
  PooledBuffer(PooledBuffer&& other) noexcept : block_(other.block_) {
    other.block_ = nullptr;
  }
  PooledBuffer& operator=(PooledBuffer&& other) noexcept {
    if (this == &other) return *this;
    Reset();
    block_ = other.block_;
    other.block_ = nullptr;
    return *this;
  }
  ~PooledBuffer() { Reset(); }

  [[nodiscard]] explicit operator bool() const { return block_ != nullptr; }
  [[nodiscard]] const float* data() const {
    return block_->external_data != nullptr ? block_->external_data
                                            : block_->storage.data();
  }
  // Callers must never reach this for an external (read-only) block;
  // every mutation path is gated on unique(), which external blocks
  // pin to false.
  [[nodiscard]] float* mutable_data() { return block_->storage.data(); }
  [[nodiscard]] size_t size() const {
    return block_->external_data != nullptr
               ? static_cast<size_t>(block_->external_size)
               : block_->storage.size();
  }

  // True when this handle is the only reference — the precondition for
  // in-place kernel writes (checked together with PoolingEnabled() by
  // detail::TensorAccess; see tensor.h). External (mmap-backed) blocks
  // report false unconditionally: their storage is read-only no matter
  // how many handles exist.
  [[nodiscard]] bool unique() const {
    return block_ != nullptr && block_->external_data == nullptr &&
           block_->refs.load(std::memory_order_acquire) == 1;
  }

 private:
  void Reset() {
    if (block_ != nullptr) {
      detail::ReleaseBlock(block_);
      block_ = nullptr;
    }
  }

  detail::BufferBlock* block_ = nullptr;
};

// Monotonic process-wide allocation counters (relaxed atomics), plus the
// live high-water mark. alloc_count/alloc_bytes count fresh heap buffer
// allocations entering the system (pool misses and adopted vectors);
// pool_hit_count counts acquires served from the free lists — so
// hit / (hit + alloc) is the steady-state reuse ratio bench_memory
// reports and the >= 90% acceptance bar measures.
struct PoolStats {
  int64_t alloc_count = 0;
  int64_t alloc_bytes = 0;
  int64_t pool_hit_count = 0;
  int64_t live_bytes = 0;       // capacity bytes held by live handles
  int64_t peak_live_bytes = 0;  // high-water mark of live_bytes
  int64_t retained_bytes = 0;   // capacity bytes parked in global lists
};

class BufferPool {
 public:
  // The process-wide pool (leaked singleton: thread caches flush into it
  // at thread exit, so it must outlive every thread).
  static BufferPool& Global();

  // A buffer with size() == n; contents unspecified (stale on reuse).
  // Served from the thread cache, then the global bucket, then a fresh
  // heap allocation rounded up to the bucket capacity.
  PooledBuffer Acquire(int64_t n);
  // Wraps an existing vector without copying (Tensor::FromVector's
  // zero-copy path). Adopted blocks join the pool on release.
  PooledBuffer Adopt(std::vector<float> values);
  // Wraps read-only external storage (e.g. an mmap'd artifact section)
  // without copying or counting a fresh allocation. `owner` keeps the
  // backing memory alive for the block's lifetime; the block is freed —
  // never pooled — on last release, and unique() is always false so
  // in-place kernels can never write through it.
  PooledBuffer WrapExternal(const float* data, int64_t size,
                            std::shared_ptr<const void> owner);

  [[nodiscard]] PoolStats stats() const;
  // Frees every retained block (global lists only; tests use this to
  // start from a cold pool). Live handles are unaffected.
  void TrimAll();
  // Retained-bytes cap for the global lists (tests lower it to force
  // LRU eviction).
  void set_retained_cap_bytes(int64_t cap);
  [[nodiscard]] int64_t retained_cap_bytes() const;

 private:
  BufferPool() = default;
};

// Whether pooling (and with it, in-place buffer reuse) is active on this
// thread: the AG_BUFFER_POOL env knob AND no disable scope installed.
[[nodiscard]] bool PoolingEnabled();

// Disables pooling on this thread for the scope's lifetime (nests).
// Session::Run installs one when RunOptions::buffer_pool is false, and
// its parallel helpers mirror it per drain.
class PoolDisableScope {
 public:
  PoolDisableScope();
  ~PoolDisableScope();
  PoolDisableScope(const PoolDisableScope&) = delete;
  PoolDisableScope& operator=(const PoolDisableScope&) = delete;
};

// This thread's count of fresh buffer allocations (pool misses +
// adoptions). The executors snapshot it around each kernel invocation to
// attribute allocations per op in RunMetadata's step stats.
[[nodiscard]] int64_t ThreadAllocCount();

}  // namespace ag::tensor
