// Tensor shapes with NumPy-style broadcasting rules.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace ag {

// A dense tensor shape. Rank 0 is a scalar.
class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<int64_t> dims) : dims_(dims) {}
  explicit Shape(std::vector<int64_t> dims) : dims_(std::move(dims)) {}

  [[nodiscard]] int rank() const { return static_cast<int>(dims_.size()); }
  [[nodiscard]] int64_t dim(int axis) const;
  [[nodiscard]] const std::vector<int64_t>& dims() const { return dims_; }
  [[nodiscard]] int64_t num_elements() const;
  [[nodiscard]] bool is_scalar() const { return dims_.empty(); }

  // Row-major strides (in elements).
  [[nodiscard]] std::vector<int64_t> strides() const;

  // Resolves a possibly-negative axis (Python style). Throws on range error.
  [[nodiscard]] int ResolveAxis(int axis) const;

  [[nodiscard]] std::string str() const;

  friend bool operator==(const Shape& a, const Shape& b) {
    return a.dims_ == b.dims_;
  }
  friend bool operator!=(const Shape& a, const Shape& b) { return !(a == b); }

  // NumPy broadcast of two shapes; throws ValueError if incompatible.
  [[nodiscard]] static Shape Broadcast(const Shape& a, const Shape& b);
  [[nodiscard]] static bool BroadcastCompatible(const Shape& a,
                                                const Shape& b);

 private:
  std::vector<int64_t> dims_;
};

}  // namespace ag
