#include "tensor/tensor.h"

#include <cmath>
#include <sstream>

#include "support/error.h"

namespace ag {

const char* DTypeName(DType dtype) {
  switch (dtype) {
    case DType::kFloat32:
      return "float32";
    case DType::kInt32:
      return "int32";
    case DType::kBool:
      return "bool";
  }
  return "unknown";
}

Tensor::Tensor()
    : shape_(std::make_shared<const Shape>()), dtype_(DType::kFloat32),
      buffer_(std::make_shared<std::vector<float>>(1, 0.0f)) {}

Tensor Tensor::Scalar(float value, DType dtype) {
  return Tensor(Shape(), dtype,
                std::make_shared<std::vector<float>>(1, value));
}

Tensor Tensor::ScalarInt(int64_t value) {
  return Scalar(static_cast<float>(value), DType::kInt32);
}

Tensor Tensor::ScalarBool(bool value) {
  return Scalar(value ? 1.0f : 0.0f, DType::kBool);
}

Tensor Tensor::FromVector(std::vector<float> values, Shape shape,
                          DType dtype) {
  if (static_cast<int64_t>(values.size()) != shape.num_elements()) {
    throw ValueError("FromVector: " + std::to_string(values.size()) +
                     " values do not fill shape " + shape.str());
  }
  return Tensor(std::move(shape), dtype,
                std::make_shared<std::vector<float>>(std::move(values)));
}

Tensor Tensor::Zeros(Shape shape, DType dtype) {
  auto buffer = std::make_shared<std::vector<float>>(
      static_cast<size_t>(shape.num_elements()), 0.0f);
  return Tensor(std::move(shape), dtype, std::move(buffer));
}

Tensor Tensor::Ones(Shape shape, DType dtype) {
  return Full(std::move(shape), 1.0f, dtype);
}

Tensor Tensor::Full(Shape shape, float value, DType dtype) {
  auto buffer = std::make_shared<std::vector<float>>(
      static_cast<size_t>(shape.num_elements()), value);
  return Tensor(std::move(shape), dtype, std::move(buffer));
}

float Tensor::scalar() const {
  if (num_elements() != 1) {
    throw ValueError("scalar() on tensor of shape " + shape_->str());
  }
  return (*buffer_)[0];
}

int64_t Tensor::scalar_int() const {
  return static_cast<int64_t>(std::llround(scalar()));
}

bool Tensor::scalar_bool() const { return scalar() != 0.0f; }

Tensor Tensor::Reshaped(Shape new_shape) const {
  if (new_shape.num_elements() != num_elements()) {
    throw ValueError("cannot reshape " + shape_->str() + " to " +
                     new_shape.str());
  }
  return Tensor(std::move(new_shape), dtype_, buffer_);
}

Tensor Tensor::Cast(DType new_dtype) const {
  auto buffer = std::make_shared<std::vector<float>>(*buffer_);
  if (new_dtype == DType::kBool) {
    for (float& v : *buffer) v = (v != 0.0f) ? 1.0f : 0.0f;
  } else if (new_dtype == DType::kInt32) {
    for (float& v : *buffer) v = std::trunc(v);
  }
  return Tensor(*shape_, new_dtype, std::move(buffer));
}

std::string Tensor::str() const {
  std::ostringstream os;
  os << "Tensor<" << DTypeName(dtype_) << ", " << shape_->str() << ">";
  return os.str();
}

std::string Tensor::DebugString(int max_elements) const {
  std::ostringstream os;
  os << str() << " [";
  int64_t n = std::min<int64_t>(num_elements(), max_elements);
  for (int64_t i = 0; i < n; ++i) {
    if (i > 0) os << ", ";
    os << (*buffer_)[static_cast<size_t>(i)];
  }
  if (n < num_elements()) os << ", ...";
  os << "]";
  return os.str();
}

}  // namespace ag
