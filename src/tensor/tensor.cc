#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "support/error.h"

namespace ag {

namespace {

// Rank-0 is by far the most common shape (loop counters, predicates,
// reduction results); every scalar tensor shares this one instance so
// Scalar() costs only the buffer acquire.
const std::shared_ptr<const Shape>& ScalarShapePtr() {
  static const auto* shape = new std::shared_ptr<const Shape>(
      std::make_shared<const Shape>());
  return *shape;
}

std::shared_ptr<const Shape> MakeShapePtr(Shape shape) {
  if (shape.rank() == 0) return ScalarShapePtr();
  return std::make_shared<const Shape>(std::move(shape));
}

tensor::PooledBuffer FilledBuffer(int64_t n, float value) {
  tensor::PooledBuffer buffer = tensor::BufferPool::Global().Acquire(n);
  float* out = buffer.mutable_data();
  for (int64_t i = 0; i < n; ++i) out[static_cast<size_t>(i)] = value;
  return buffer;
}

// Backs every default-constructed Tensor. The static handle pins the
// refcount above zero forever, so the block is never sole-owned — no
// in-place kernel can ever scribble on the shared zero.
const tensor::PooledBuffer& DefaultScalarBuffer() {
  static const auto* buffer = new tensor::PooledBuffer(
      tensor::BufferPool::Global().Adopt(std::vector<float>(1, 0.0f)));
  return *buffer;
}

}  // namespace

const char* DTypeName(DType dtype) {
  switch (dtype) {
    case DType::kFloat32:
      return "float32";
    case DType::kInt32:
      return "int32";
    case DType::kBool:
      return "bool";
    case DType::kInt8:
      return "int8";
  }
  return "unknown";
}

Tensor::Tensor()
    : shape_(ScalarShapePtr()), dtype_(DType::kFloat32),
      buffer_(DefaultScalarBuffer()) {}

Tensor::Tensor(Shape shape, DType dtype, tensor::PooledBuffer buffer)
    : shape_(MakeShapePtr(std::move(shape))),
      dtype_(dtype),
      buffer_(std::move(buffer)) {}

Tensor Tensor::Scalar(float value, DType dtype) {
  return Tensor(ScalarShapePtr(), dtype, FilledBuffer(1, value));
}

Tensor Tensor::ScalarInt(int64_t value) {
  return Scalar(static_cast<float>(value), DType::kInt32);
}

Tensor Tensor::ScalarBool(bool value) {
  return Scalar(value ? 1.0f : 0.0f, DType::kBool);
}

Tensor Tensor::FromVector(std::vector<float> values, Shape shape,
                          DType dtype) {
  if (static_cast<int64_t>(values.size()) != shape.num_elements()) {
    throw ValueError("FromVector: " + std::to_string(values.size()) +
                     " values do not fill shape " + shape.str());
  }
  return Tensor(std::move(shape), dtype,
                tensor::BufferPool::Global().Adopt(std::move(values)));
}

Tensor Tensor::FromExternal(const float* data, Shape shape, DType dtype,
                            std::shared_ptr<const void> owner) {
  if (data == nullptr && shape.num_elements() > 0) {
    throw ValueError("FromExternal: null data for shape " + shape.str());
  }
  const int64_t n = shape.num_elements();
  return Tensor(std::move(shape), dtype,
                tensor::BufferPool::Global().WrapExternal(data, n,
                                                          std::move(owner)));
}

Tensor Tensor::Zeros(Shape shape, DType dtype) {
  return Full(std::move(shape), 0.0f, dtype);
}

Tensor Tensor::Ones(Shape shape, DType dtype) {
  return Full(std::move(shape), 1.0f, dtype);
}

Tensor Tensor::Full(Shape shape, float value, DType dtype) {
  const int64_t n = shape.num_elements();
  return Tensor(std::move(shape), dtype, FilledBuffer(n, value));
}

float Tensor::scalar() const {
  if (num_elements() != 1) {
    throw ValueError("scalar() on tensor of shape " + shape_->str());
  }
  return buffer_.data()[0];
}

int64_t Tensor::scalar_int() const {
  return static_cast<int64_t>(std::llround(scalar()));
}

bool Tensor::scalar_bool() const { return scalar() != 0.0f; }

Tensor Tensor::Reshaped(Shape new_shape) const {
  if (new_shape.num_elements() != num_elements()) {
    throw ValueError("cannot reshape " + shape_->str() + " to " +
                     new_shape.str());
  }
  return Tensor(std::move(new_shape), dtype_, buffer_);
}

namespace {

void CastInPlace(float* data, int64_t n, DType new_dtype) {
  if (new_dtype == DType::kBool) {
    for (int64_t i = 0; i < n; ++i) {
      data[i] = (data[i] != 0.0f) ? 1.0f : 0.0f;
    }
  } else if (new_dtype == DType::kInt32) {
    for (int64_t i = 0; i < n; ++i) data[i] = std::trunc(data[i]);
  } else if (new_dtype == DType::kInt8) {
    for (int64_t i = 0; i < n; ++i) {
      data[i] = std::min(127.0f, std::max(-128.0f, std::trunc(data[i])));
    }
  }
}

}  // namespace

Tensor Tensor::Cast(DType new_dtype) const& {
  const int64_t n = num_elements();
  tensor::PooledBuffer buffer = tensor::BufferPool::Global().Acquire(n);
  float* out = buffer.mutable_data();
  const float* in = buffer_.data();
  for (int64_t i = 0; i < n; ++i) out[i] = in[i];
  CastInPlace(out, n, new_dtype);
  return Tensor(shape_, new_dtype, std::move(buffer));
}

Tensor Tensor::Cast(DType new_dtype) && {
  if (!(buffer_.unique() && tensor::PoolingEnabled())) {
    return static_cast<const Tensor&>(*this).Cast(new_dtype);
  }
  CastInPlace(buffer_.mutable_data(), num_elements(), new_dtype);
  return Tensor(std::move(shape_), new_dtype, std::move(buffer_));
}

std::string Tensor::str() const {
  std::ostringstream os;
  os << "Tensor<" << DTypeName(dtype_) << ", " << shape_->str() << ">";
  return os.str();
}

std::string Tensor::DebugString(int max_elements) const {
  std::ostringstream os;
  os << str() << " [";
  int64_t n = std::min<int64_t>(num_elements(), max_elements);
  const float* d = buffer_.data();
  for (int64_t i = 0; i < n; ++i) {
    if (i > 0) os << ", ";
    os << d[static_cast<size_t>(i)];
  }
  if (n < num_elements()) os << ", ...";
  os << "]";
  return os.str();
}

}  // namespace ag
