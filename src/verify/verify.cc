#include "verify/verify.h"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <variant>

#include "graph/fusion.h"
#include "graph/ops.h"

namespace ag::verify {
namespace {

using graph::FuncGraph;
using graph::Graph;
using graph::Node;
using graph::Output;

std::string NodeRef(const Node& node) {
  return "node '" + node.name() + "' (" + node.op() + ")";
}

std::string Where(const Node& node, const std::string& path) {
  if (path.empty()) return NodeRef(node);
  return NodeRef(node) + " in " + path;
}

void Add(std::vector<VerifyDiagnostic>* out, std::string code,
         std::string message, std::string where, std::string note = "") {
  out->push_back(VerifyDiagnostic{std::move(code), std::move(message),
                                  std::move(where), std::move(note)});
}

bool GetIntAttr(const Node& node, const std::string& key, int64_t* out) {
  auto it = node.attrs().find(key);
  if (it == node.attrs().end()) return false;
  const int64_t* v = std::get_if<int64_t>(&it->second);
  if (v == nullptr) return false;
  *out = *v;
  return true;
}

std::shared_ptr<Graph> GetSubgraphAttr(const Node& node,
                                       const std::string& key) {
  auto it = node.attrs().find(key);
  if (it == node.attrs().end()) return nullptr;
  const auto* v = std::get_if<std::shared_ptr<Graph>>(&it->second);
  return v != nullptr ? *v : nullptr;
}

// Verification state for one graph: its own node set (pointer identity,
// so dangling references are detected without dereferencing them) plus
// the enclosing graphs' sets for capture validation.
struct GraphScope {
  const Graph* graph;
  std::unordered_set<const Node*> nodes;
};

GraphScope MakeScope(const Graph& g) {
  GraphScope scope{&g, {}};
  scope.nodes.reserve(g.num_nodes());
  for (const auto& n : g.nodes()) scope.nodes.insert(n.get());
  return scope;
}

// True when every input of `node` is a live endpoint of `scope` with a
// valid output index (AGV102 otherwise). Inputs that fail are reported;
// later checks that would dereference them are skipped by the caller.
bool CheckInputs(const Node& node, const GraphScope& scope,
                 const std::string& path,
                 std::vector<VerifyDiagnostic>* out) {
  bool ok = true;
  for (size_t i = 0; i < node.inputs().size(); ++i) {
    const Output& in = node.inputs()[i];
    if (in.node == nullptr) {
      Add(out, "AGV102", "input " + std::to_string(i) + " is null",
          Where(node, path));
      ok = false;
      continue;
    }
    if (scope.nodes.count(in.node) == 0) {
      // Foreign or freed node: do not dereference it.
      Add(out, "AGV102",
          "input " + std::to_string(i) +
              " references a node that is not part of this graph "
              "(dangling or cross-graph edge)",
          Where(node, path),
          "cross-graph values must flow through FuncGraph captures");
      ok = false;
      continue;
    }
    if (in.index < 0 || in.index >= in.node->num_outputs()) {
      Add(out, "AGV102",
          "input " + std::to_string(i) + " references output " +
              std::to_string(in.index) + " of " + NodeRef(*in.node) +
              ", which has " + std::to_string(in.node->num_outputs()) +
              " output(s)",
          Where(node, path));
      ok = false;
    }
  }
  return ok;
}

// Iterative three-color DFS over intra-graph input edges (AGV101).
void CheckAcyclic(const GraphScope& scope, const std::string& path,
                  std::vector<VerifyDiagnostic>* out) {
  enum : uint8_t { kWhite, kGrey, kBlack };
  std::unordered_map<const Node*, uint8_t> color;
  color.reserve(scope.graph->num_nodes());
  for (const auto& n : scope.graph->nodes()) color[n.get()] = kWhite;
  for (const auto& root : scope.graph->nodes()) {
    if (color[root.get()] != kWhite) continue;
    std::vector<std::pair<const Node*, size_t>> stack{{root.get(), 0}};
    color[root.get()] = kGrey;
    while (!stack.empty()) {
      auto& [node, next] = stack.back();
      if (next < node->inputs().size()) {
        const Node* in = node->inputs()[next++].node;
        if (in == nullptr || scope.nodes.count(in) == 0) continue;
        if (color[in] == kGrey) {
          Add(out, "AGV101",
              "graph contains a cycle: " + NodeRef(*node) +
                  " (transitively) depends on itself through " +
                  NodeRef(*in),
              Where(*node, path),
              "topological scheduling requires an acyclic dataflow graph");
          return;  // one cycle report per graph is enough
        }
        if (color[in] == kWhite) {
          color[in] = kGrey;
          stack.emplace_back(in, 0);
        }
        continue;
      }
      color[node] = kBlack;
      stack.pop_back();
    }
  }
}

void VerifyGraphInto(const Graph& g, std::vector<const GraphScope*>* ancestors,
                     const std::string& path,
                     const GraphVerifyOptions& options,
                     std::unordered_set<const Graph*>* visited,
                     std::vector<VerifyDiagnostic>* out);

// Returns the first Arg node of `fg` with attr index == `index` (null
// when absent).
const Node* FindArg(const Graph& fg, int64_t index) {
  for (const auto& n : fg.nodes()) {
    if (n->op() != "Arg") continue;
    int64_t got = -1;
    if (GetIntAttr(*n, "index", &got) && got == index) return n.get();
  }
  return nullptr;
}

// FuncGraph capture structure (AGV103): captures and capture_args in
// lockstep, Arg indices following the trailing-positional convention,
// every captured endpoint alive in some enclosing graph.
void CheckCaptures(const FuncGraph& fg,
                   const std::vector<const GraphScope*>& outer,
                   const std::string& path,
                   std::vector<VerifyDiagnostic>* out) {
  const std::string where = path.empty() ? "subgraph" : path;
  if (fg.captures.size() != fg.capture_args.size()) {
    Add(out, "AGV103",
        "subgraph records " + std::to_string(fg.captures.size()) +
            " capture(s) but " + std::to_string(fg.capture_args.size()) +
            " capture Arg node(s)",
        where,
        "each captured outer endpoint must have exactly one Arg node");
    return;  // elementwise checks below assume the sizes match
  }
  for (size_t i = 0; i < fg.captures.size(); ++i) {
    const Node* arg = fg.capture_args[i];
    if (arg == nullptr || arg->op() != "Arg" ||
        static_cast<const Graph*>(arg->owner()) != &fg) {
      Add(out, "AGV103",
          "capture " + std::to_string(i) +
              " has no matching Arg node in the subgraph",
          where);
      continue;
    }
    int64_t index = -1;
    const int64_t expect = fg.num_explicit_args() + static_cast<int64_t>(i);
    if (!GetIntAttr(*arg, "index", &index) || index != expect) {
      Add(out, "AGV103",
          "capture " + std::to_string(i) + " Arg node '" + arg->name() +
              "' has index " + std::to_string(index) + ", expected " +
              std::to_string(expect),
          where,
          "captures are passed positionally after the explicit args");
    }
    const Output& ext = fg.captures[i];
    if (ext.node == nullptr) {
      Add(out, "AGV103", "capture " + std::to_string(i) + " is null", where);
      continue;
    }
    bool found = false;
    for (const GraphScope* scope : outer) {
      if (scope->nodes.count(ext.node) > 0) {
        found = true;
        break;
      }
    }
    if (!found) {
      // Dangling: the endpoint is not in any enclosing graph, so naming
      // it would dereference freed or foreign memory.
      Add(out, "AGV103",
          "capture " + std::to_string(i) +
              " references a node that is not part of any enclosing graph "
              "(dangling capture)",
          where,
          "a pass rewired or pruned the captured value without updating "
          "the capture list");
      continue;
    }
    if (ext.index < 0 || ext.index >= ext.node->num_outputs()) {
      Add(out, "AGV103",
          "capture " + std::to_string(i) + " references output " +
              std::to_string(ext.index) + " of " + NodeRef(*ext.node) +
              ", which has " + std::to_string(ext.node->num_outputs()) +
              " output(s)",
          where);
    }
  }
}

// Subgraph return endpoints (AGV102): each must be a live endpoint of
// the subgraph itself.
void CheckReturns(const FuncGraph& fg, const GraphScope& scope,
                  const std::string& path,
                  std::vector<VerifyDiagnostic>* out) {
  const std::string where = path.empty() ? "subgraph" : path;
  for (size_t i = 0; i < fg.returns.size(); ++i) {
    const Output& r = fg.returns[i];
    if (r.node == nullptr || scope.nodes.count(r.node) == 0) {
      Add(out, "AGV102",
          "return " + std::to_string(i) +
              " references a node that is not part of the subgraph",
          where);
      continue;
    }
    if (r.index < 0 || r.index >= r.node->num_outputs()) {
      Add(out, "AGV102",
          "return " + std::to_string(i) + " references output " +
              std::to_string(r.index) + " of " + NodeRef(*r.node) +
              ", which has " + std::to_string(r.node->num_outputs()) +
              " output(s)",
          where);
    }
  }
}

DType ReturnDtype(const Output& r) {
  return r.node->output_dtype(r.index);
}

// Cond call-site / branch-signature checks (AGV103/AGV104/AGV105) and
// recursion into the branches.
void CheckCond(const Node& node, const GraphScope& scope,
               std::vector<const GraphScope*>* ancestors, const std::string& path,
               const GraphVerifyOptions& options,
               std::unordered_set<const Graph*>* visited,
               std::vector<VerifyDiagnostic>* out) {
  auto then_g = std::dynamic_pointer_cast<FuncGraph>(
      GetSubgraphAttr(node, "then_branch"));
  auto else_g = std::dynamic_pointer_cast<FuncGraph>(
      GetSubgraphAttr(node, "else_branch"));
  int64_t then_ncaps = -1;
  if (then_g == nullptr || else_g == nullptr ||
      !GetIntAttr(node, "then_ncaps", &then_ncaps)) {
    Add(out, "AGV103",
        "Cond node is missing its then_branch/else_branch subgraphs or "
        "then_ncaps attr",
        Where(node, path));
    return;
  }
  if (then_ncaps != static_cast<int64_t>(then_g->captures.size()) ||
      node.inputs().size() !=
          1 + then_g->captures.size() + else_g->captures.size()) {
    Add(out, "AGV103",
        "Cond call-site arity mismatch: " +
            std::to_string(node.inputs().size()) +
            " input(s) for 1 predicate + " +
            std::to_string(then_g->captures.size()) + " then-capture(s) + " +
            std::to_string(else_g->captures.size()) +
            " else-capture(s) (then_ncaps attr = " +
            std::to_string(then_ncaps) + ")",
        Where(node, path),
        "the executor splits trailing inputs by these counts; a mismatch "
        "feeds branches the wrong values");
  }
  if (options.check_dtypes && !node.inputs().empty() &&
      node.inputs()[0].valid() &&
      scope.nodes.count(node.inputs()[0].node) > 0 &&
      ReturnDtype(node.inputs()[0]) != DType::kBool) {
    Add(out, "AGV104",
        "Cond predicate has dtype " +
            std::string(DTypeName(ReturnDtype(node.inputs()[0]))) +
            ", expected bool",
        Where(node, path));
  }
  const GraphScope then_scope = MakeScope(*then_g);
  const GraphScope else_scope = MakeScope(*else_g);
  const size_t n_then = then_g->returns.size();
  const size_t n_else = else_g->returns.size();
  if (n_then != n_else) {
    Add(out, "AGV105",
        "Cond branches return a different number of values (" +
            std::to_string(n_then) + " vs " + std::to_string(n_else) + ")",
        Where(node, path),
        "both branches must produce the same outputs for the merged "
        "node to have a consistent signature");
  } else if (static_cast<size_t>(node.num_outputs()) !=
             std::max<size_t>(n_then, 1)) {
    Add(out, "AGV105",
        "Cond node has " + std::to_string(node.num_outputs()) +
            " output(s) but its branches return " + std::to_string(n_then),
        Where(node, path));
  } else if (options.check_dtypes) {
    for (size_t i = 0; i < n_then; ++i) {
      const Output& t = then_g->returns[i];
      const Output& e = else_g->returns[i];
      // Only compare returns the structural checks found valid.
      if (t.node == nullptr || then_scope.nodes.count(t.node) == 0 ||
          e.node == nullptr || else_scope.nodes.count(e.node) == 0) {
        continue;
      }
      if (ReturnDtype(t) != ReturnDtype(e)) {
        Add(out, "AGV105",
            "Cond branches disagree on the dtype of return " +
                std::to_string(i) + " (" +
                std::string(DTypeName(ReturnDtype(t))) + " vs " +
                std::string(DTypeName(ReturnDtype(e))) + ")",
            Where(node, path));
      } else if (node.output_dtype(static_cast<int>(i)) != ReturnDtype(t)) {
        Add(out, "AGV105",
            "Cond output " + std::to_string(i) + " records dtype " +
                std::string(
                    DTypeName(node.output_dtype(static_cast<int>(i)))) +
                " but its branches return " +
                std::string(DTypeName(ReturnDtype(t))),
            Where(node, path));
      }
    }
  }
  VerifyGraphInto(*then_g, ancestors,
                  "then_branch of '" + node.name() + "'", options, visited,
                  out);
  VerifyGraphInto(*else_g, ancestors,
                  "else_branch of '" + node.name() + "'", options, visited,
                  out);
}

// While call-site / loop-signature checks (AGV103/AGV105) and recursion
// into cond/body.
void CheckWhile(const Node& node, const GraphScope& scope,
                std::vector<const GraphScope*>* ancestors, const std::string& path,
                const GraphVerifyOptions& options,
                std::unordered_set<const Graph*>* visited,
                std::vector<VerifyDiagnostic>* out) {
  auto cond_g =
      std::dynamic_pointer_cast<FuncGraph>(GetSubgraphAttr(node, "cond"));
  auto body_g =
      std::dynamic_pointer_cast<FuncGraph>(GetSubgraphAttr(node, "body"));
  int64_t n = -1;
  int64_t cond_ncaps = -1;
  if (cond_g == nullptr || body_g == nullptr ||
      !GetIntAttr(node, "num_loop_vars", &n) ||
      !GetIntAttr(node, "cond_ncaps", &cond_ncaps)) {
    Add(out, "AGV103",
        "While node is missing its cond/body subgraphs or "
        "num_loop_vars/cond_ncaps attrs",
        Where(node, path));
    return;
  }
  if (cond_ncaps != static_cast<int64_t>(cond_g->captures.size()) ||
      node.inputs().size() != static_cast<size_t>(n) +
                                  cond_g->captures.size() +
                                  body_g->captures.size()) {
    Add(out, "AGV103",
        "While call-site arity mismatch: " +
            std::to_string(node.inputs().size()) + " input(s) for " +
            std::to_string(n) + " loop var(s) + " +
            std::to_string(cond_g->captures.size()) + " cond-capture(s) + " +
            std::to_string(body_g->captures.size()) +
            " body-capture(s) (cond_ncaps attr = " +
            std::to_string(cond_ncaps) + ")",
        Where(node, path),
        "the executor splits trailing inputs by these counts; a mismatch "
        "feeds the loop the wrong values");
  }
  if (cond_g->num_explicit_args() != n || body_g->num_explicit_args() != n) {
    Add(out, "AGV103",
        "While cond/body record " +
            std::to_string(cond_g->num_explicit_args()) + "/" +
            std::to_string(body_g->num_explicit_args()) +
            " explicit arg(s), expected num_loop_vars = " +
            std::to_string(n),
        Where(node, path));
  }
  const GraphScope cond_scope = MakeScope(*cond_g);
  const GraphScope body_scope = MakeScope(*body_g);
  if (cond_g->returns.size() != 1) {
    Add(out, "AGV105",
        "While condition returns " + std::to_string(cond_g->returns.size()) +
            " value(s), expected a single bool",
        Where(node, path));
  } else if (options.check_dtypes) {
    const Output& test = cond_g->returns[0];
    if (test.node != nullptr && cond_scope.nodes.count(test.node) > 0 &&
        ReturnDtype(test) != DType::kBool) {
      Add(out, "AGV105",
          "While condition returns dtype " +
              std::string(DTypeName(ReturnDtype(test))) + ", expected bool",
          Where(node, path));
    }
  }
  if (body_g->returns.size() != static_cast<size_t>(n)) {
    Add(out, "AGV105",
        "While body returns " + std::to_string(body_g->returns.size()) +
            " value(s) for " + std::to_string(n) + " loop var(s)",
        Where(node, path),
        "each iteration must produce a value for every loop variable");
  } else if (options.check_dtypes) {
    for (int64_t i = 0; i < n; ++i) {
      const Output& next = body_g->returns[static_cast<size_t>(i)];
      if (next.node == nullptr || body_scope.nodes.count(next.node) == 0) {
        continue;
      }
      const Node* arg = FindArg(*body_g, i);
      if (arg != nullptr && arg->output_dtype(0) != ReturnDtype(next)) {
        Add(out, "AGV105",
            "While body changes the dtype of loop var " + std::to_string(i) +
                " (" + std::string(DTypeName(arg->output_dtype(0))) +
                " -> " + std::string(DTypeName(ReturnDtype(next))) + ")",
            Where(node, path),
            "loop-carried values must keep their dtype across iterations");
      }
      if (static_cast<size_t>(i) < node.inputs().size()) {
        const Output& init = node.inputs()[static_cast<size_t>(i)];
        if (init.valid() && scope.nodes.count(init.node) > 0 &&
            node.output_dtype(static_cast<int>(i)) != ReturnDtype(init)) {
          Add(out, "AGV105",
              "While output " + std::to_string(i) + " records dtype " +
                  std::string(
                      DTypeName(node.output_dtype(static_cast<int>(i)))) +
                  " but loop var " + std::to_string(i) +
                  " is initialized with " +
                  std::string(DTypeName(ReturnDtype(init))),
              Where(node, path));
        }
      }
    }
  }
  VerifyGraphInto(*cond_g, ancestors, "cond of '" + node.name() + "'",
                  options, visited, out);
  VerifyGraphInto(*body_g, ancestors, "body of '" + node.name() + "'",
                  options, visited, out);
}

void VerifyGraphInto(const Graph& g, std::vector<const GraphScope*>* ancestors,
                     const std::string& path,
                     const GraphVerifyOptions& options,
                     std::unordered_set<const Graph*>* visited,
                     std::vector<VerifyDiagnostic>* out) {
  if (!visited->insert(&g).second) return;  // shared subgraph: once is enough
  const GraphScope scope = MakeScope(g);
  const auto* fg = dynamic_cast<const FuncGraph*>(&g);

  CheckAcyclic(scope, path, out);
  if (fg != nullptr) {
    CheckCaptures(*fg, *ancestors, path, out);
    CheckReturns(*fg, scope, path, out);
  }

  for (const auto& n : g.nodes()) {
    const Node& node = *n;
    const bool inputs_ok = CheckInputs(node, scope, path, out);

    if (node.op() == "Arg") {
      int64_t index = -1;
      if (fg == nullptr) {
        Add(out, "AGV103",
            "Arg node outside a FuncGraph: the top-level graph takes no "
            "positional arguments",
            Where(node, path));
      } else if (!GetIntAttr(node, "index", &index) || index < 0) {
        Add(out, "AGV103", "Arg node has a missing or negative index attr",
            Where(node, path));
      }
      continue;
    }

    if (options.check_dtypes && node.op() == "Const") {
      auto it = node.attrs().find("value");
      const Tensor* value =
          it != node.attrs().end() ? std::get_if<Tensor>(&it->second)
                                   : nullptr;
      if (value == nullptr) {
        Add(out, "AGV104", "Const node has no Tensor 'value' attr",
            Where(node, path));
      } else if (value->dtype() != node.output_dtype(0)) {
        Add(out, "AGV104",
            "Const records output dtype " +
                std::string(DTypeName(node.output_dtype(0))) +
                " but its value is " +
                std::string(DTypeName(value->dtype())),
            Where(node, path));
      }
    } else if (options.check_dtypes && inputs_ok &&
               graph::InferredDtypeIsAuthoritative(node.op())) {
      const DType expect =
          graph::InferDtype(node.op(), node.inputs(), node.attrs());
      if (node.output_dtype(0) != expect) {
        Add(out, "AGV104",
            NodeRef(node) + " records output dtype " +
                std::string(DTypeName(node.output_dtype(0))) +
                " but op semantics give " + std::string(DTypeName(expect)),
            Where(node, path),
            "kernels and downstream dtype inference trust the recorded "
            "dtype");
      }
    }

    if (node.op() == "FusedElementwise") {
      // AGV106: the body must compile into a scalar recipe — no
      // captures, one return naming the last op, only fusable ops.
      // CompileFusedBody is the executor's own compiler, so passing
      // here means the kernel cannot reject the node at run time.
      auto it = node.attrs().find("body");
      const auto* sub =
          it != node.attrs().end()
              ? std::get_if<std::shared_ptr<Graph>>(&it->second)
              : nullptr;
      const auto* body =
          sub != nullptr ? dynamic_cast<const FuncGraph*>(sub->get())
                         : nullptr;
      if (body == nullptr) {
        Add(out, "AGV106",
            "FusedElementwise node has no FuncGraph 'body' attr",
            Where(node, path));
      } else {
        if (static_cast<int>(node.inputs().size()) !=
            body->num_explicit_args()) {
          Add(out, "AGV106",
              NodeRef(node) + " has " +
                  std::to_string(node.inputs().size()) +
                  " inputs but its body takes " +
                  std::to_string(body->num_explicit_args()) + " args",
              Where(node, path));
        }
        try {
          (void)graph::CompileFusedBody(*body);
        } catch (const Error& e) {
          Add(out, "AGV106",
              NodeRef(node) + " body does not compile: " + e.what(),
              Where(node, path));
        }
      }
    }

    if (node.op() == "Cond") {
      ancestors->push_back(&scope);
      CheckCond(node, scope, ancestors, path, options, visited, out);
      ancestors->pop_back();
    } else if (node.op() == "While") {
      ancestors->push_back(&scope);
      CheckWhile(node, scope, ancestors, path, options, visited, out);
      ancestors->pop_back();
    } else {
      // Any other op carrying subgraph attrs still gets recursed into so
      // future control-flow ops inherit the structural checks.
      for (const auto& [key, value] : node.attrs()) {
        const auto* sub = std::get_if<std::shared_ptr<Graph>>(&value);
        if (sub == nullptr || *sub == nullptr) continue;
        ancestors->push_back(&scope);
        VerifyGraphInto(**sub, ancestors,
                        key + " of '" + node.name() + "'", options, visited,
                        out);
        ancestors->pop_back();
      }
    }
  }
}

}  // namespace

std::string VerifyDiagnostic::str() const {
  std::string s = "error: [" + code + "] " + message;
  if (!where.empty()) s += " (at " + where + ")";
  if (!note.empty()) s += "\n  note: " + note;
  return s;
}

std::vector<VerifyDiagnostic> VerifyGraph(const Graph& graph,
                                          const GraphVerifyOptions& options) {
  std::vector<VerifyDiagnostic> out;
  std::vector<const GraphScope*> ancestors;
  std::unordered_set<const Graph*> visited;
  VerifyGraphInto(graph, &ancestors, "", options, &visited, &out);
  return out;
}

std::vector<VerifyDiagnostic> VerifyGraphAndRoots(
    const Graph& graph, const std::vector<Output>& roots,
    const GraphVerifyOptions& options) {
  std::vector<VerifyDiagnostic> out = VerifyGraph(graph, options);
  std::unordered_set<const Node*> live;
  live.reserve(graph.num_nodes());
  for (const auto& n : graph.nodes()) live.insert(n.get());
  for (size_t i = 0; i < roots.size(); ++i) {
    const Output& r = roots[i];
    if (r.node == nullptr || live.count(r.node) == 0) {
      // Pruned or foreign node: naming it would dereference freed memory.
      Add(&out, "AGV102",
          "fetch root " + std::to_string(i) +
              " references a node that is not part of the graph",
          "fetch list",
          "a pass pruned or replaced the fetched endpoint without "
          "remapping the root");
      continue;
    }
    if (r.index < 0 || r.index >= r.node->num_outputs()) {
      Add(&out, "AGV102",
          "fetch root " + std::to_string(i) + " references output " +
              std::to_string(r.index) + " of " + NodeRef(*r.node) +
              ", which has " + std::to_string(r.node->num_outputs()) +
              " output(s)",
          "fetch list");
    }
  }
  return out;
}

std::string FormatFindings(const std::vector<VerifyDiagnostic>& findings) {
  std::string s;
  for (const VerifyDiagnostic& d : findings) {
    s += d.str();
    s += '\n';
  }
  return s;
}

}  // namespace ag::verify
