#include "verify/plan_verify.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <variant>

namespace ag::verify {
namespace {

using exec::Session;
using graph::Graph;
using graph::Node;
using Plan = Session::Plan;

std::string StepRef(const Plan& plan, int i) {
  const Node* node = plan.steps[static_cast<size_t>(i)].node;
  if (node == nullptr) return "step " + std::to_string(i) + " <null node>";
  return "step " + std::to_string(i) + " '" + node->name() + "' (" +
         node->op() + ")";
}

std::string SlotRef(const Plan& plan, const Plan::InputRef& ref) {
  if (ref.step < 0) return "arg " + std::to_string(ref.output);
  return "output " + std::to_string(ref.output) + " of " +
         StepRef(plan, ref.step);
}

void Add(std::vector<VerifyDiagnostic>* out, std::string code,
         std::string message, std::string where, std::string note = "") {
  out->push_back(VerifyDiagnostic{std::move(code), std::move(message),
                                  std::move(where), std::move(note)});
}

// Forward-edge transitive closure as per-step bitsets, computed once
// per plan in one backward sweep (O(steps * edges / 64)) and queried
// by AGV203 (one query per dataflow input) and AGV214 (one per
// same-variable pair). Edges found to be non-forward (AGV202
// territory) are ignored, so the sweep terminates on corrupted plans
// too — matching what the old per-query DFS skipped.
class Reachability {
 public:
  explicit Reachability(const Plan& plan)
      : num_steps_(static_cast<int>(plan.steps.size())),
        words_(static_cast<size_t>(num_steps_ + 63) / 64),
        bits_(static_cast<size_t>(num_steps_) * words_, 0) {
    for (int s = num_steps_ - 1; s >= 0; --s) {
      uint64_t* row = Row(s);
      for (const int next : plan.steps[static_cast<size_t>(s)].successors) {
        if (next <= s || next >= num_steps_) continue;
        row[static_cast<size_t>(next) / 64] |=
            uint64_t{1} << (static_cast<size_t>(next) % 64);
        const uint64_t* next_row = Row(next);
        for (size_t w = 0; w < words_; ++w) row[w] |= next_row[w];
      }
    }
  }

  // True when a successor path leads from step `from` to step `to`.
  [[nodiscard]] bool Reaches(int from, int to) const {
    if (from >= to || from < 0 || to >= num_steps_) return false;
    return (Row(from)[static_cast<size_t>(to) / 64] >>
            (static_cast<size_t>(to) % 64)) &
           1u;
  }

 private:
  uint64_t* Row(int s) { return bits_.data() + static_cast<size_t>(s) * words_; }
  const uint64_t* Row(int s) const {
    return bits_.data() + static_cast<size_t>(s) * words_;
  }

  int num_steps_;
  size_t words_;
  std::vector<uint64_t> bits_;
};

// Memoized per-subgraph audit facts, shared across all steps of one
// VerifyPlan call: a While step's body graph is walked once, not once
// per stateful-chain / race-audit query. The statefulness walk
// mirrors CompilePlan's chain predicate; the executor keeps its copy
// file-local on purpose (the verifier must not share the code it is
// auditing), so a drift between the two shows up as AGV204 findings
// rather than being silently agreed upon. Values of `stateful` use -1
// for in-progress (cycle guard, treated as false).
struct SubgraphCache {
  std::unordered_map<const Graph*, int> stateful;
  std::unordered_map<const Graph*, std::set<std::string>> vars;
};

bool GraphHasStatefulNodeCached(const Graph& g, SubgraphCache& cache);

bool NodeIsStatefulCached(const Node& node, SubgraphCache& cache) {
  const std::string& op = node.op();
  if (op == "Variable" || op == "Assign" || op == "Print") return true;
  for (const auto& [key, value] : node.attrs()) {
    const auto* sub = std::get_if<std::shared_ptr<Graph>>(&value);
    if (sub != nullptr && *sub != nullptr &&
        GraphHasStatefulNodeCached(**sub, cache)) {
      return true;
    }
  }
  return false;
}

bool GraphHasStatefulNodeCached(const Graph& g, SubgraphCache& cache) {
  auto [it, inserted] = cache.stateful.try_emplace(&g, -1);
  if (!inserted) return it->second == 1;
  bool found = false;
  for (const auto& n : g.nodes()) {
    if (NodeIsStatefulCached(*n, cache)) {
      found = true;
      break;
    }
  }
  cache.stateful[&g] = found ? 1 : 0;
  return found;
}

const std::set<std::string>& GraphVarTouchesCached(const Graph& g,
                                                   SubgraphCache& cache);

void NodeVarTouchesCached(const Node& node, SubgraphCache& cache,
                          std::set<std::string>* vars) {
  if (node.op() == "Variable" || node.op() == "Assign") {
    auto it = node.attrs().find("var_name");
    if (it != node.attrs().end()) {
      if (const std::string* name = std::get_if<std::string>(&it->second)) {
        vars->insert(*name);
      }
    }
  }
  for (const auto& [key, value] : node.attrs()) {
    const auto* sub = std::get_if<std::shared_ptr<Graph>>(&value);
    if (sub == nullptr || *sub == nullptr) continue;
    const std::set<std::string>& sub_vars =
        GraphVarTouchesCached(**sub, cache);
    vars->insert(sub_vars.begin(), sub_vars.end());
  }
}

const std::set<std::string>& GraphVarTouchesCached(const Graph& g,
                                                   SubgraphCache& cache) {
  auto [it, inserted] = cache.vars.try_emplace(&g);
  if (!inserted) return it->second;  // done or in-progress (cycle guard)
  std::set<std::string> vars;
  for (const auto& n : g.nodes()) {
    NodeVarTouchesCached(*n, cache, &vars);
  }
  return cache.vars[&g] = std::move(vars);
}

bool StepIsStateful(const Plan::Step& s) {
  if (s.node == nullptr) return false;
  SubgraphCache cache;
  return NodeIsStatefulCached(*s.node, cache);
}

Plan::Kind ExpectedKind(const std::string& op) {
  if (op == "Cond") return Plan::Kind::kCond;
  if (op == "While") return Plan::Kind::kWhile;
  if (op == "Placeholder") return Plan::Kind::kPlaceholder;
  if (op == "Variable") return Plan::Kind::kVariable;
  if (op == "Assign") return Plan::Kind::kAssign;
  return Plan::Kind::kKernel;
}

}  // namespace

bool PlanStepIsStateful(const Plan::Step& step) {
  return StepIsStateful(step);
}

std::vector<VerifyDiagnostic> VerifyPlan(const Plan& plan,
                                         const PlanVerifyOptions& options) {
  std::vector<VerifyDiagnostic> out;
  const int num_steps = static_cast<int>(plan.steps.size());

  // ---- AGV205/AGV202: per-step structure ------------------------------
  for (int i = 0; i < num_steps; ++i) {
    const Plan::Step& s = plan.steps[static_cast<size_t>(i)];
    if (s.node == nullptr) {
      Add(&out, "AGV205", "step has a null graph node", StepRef(plan, i));
    } else {
      const Plan::Kind expect = ExpectedKind(s.node->op());
      if (s.kind != expect) {
        Add(&out, "AGV205",
            "step kind does not match its node's op", StepRef(plan, i),
            "ExecStep dispatches on the kind; a mismatch executes the "
            "wrong interpreter case");
      } else if (s.kind == Plan::Kind::kKernel && s.kernel == nullptr) {
        Add(&out, "AGV205", "kernel step has no cached kernel pointer",
            StepRef(plan, i));
      }
    }
    if (s.input_move.size() != s.inputs.size()) {
      Add(&out, "AGV205",
          "input_move has " + std::to_string(s.input_move.size()) +
              " entries for " + std::to_string(s.inputs.size()) +
              " input(s)",
          StepRef(plan, i));
    }
    for (size_t j = 0; j < s.input_move.size(); ++j) {
      if (s.input_move[j] > Plan::kMoveAlways) {
        Add(&out, "AGV205",
            "input " + std::to_string(j) + " carries unknown move flag " +
                std::to_string(static_cast<int>(s.input_move[j])),
            StepRef(plan, i));
      }
    }
    for (size_t j = 0; j < s.inputs.size(); ++j) {
      const Plan::InputRef& ref = s.inputs[j];
      if (ref.step < -1 || ref.step >= i) {
        Add(&out, "AGV205",
            "input " + std::to_string(j) + " references step " +
                std::to_string(ref.step) +
                ", which is not an earlier step of the plan",
            StepRef(plan, i),
            "steps are scheduled in topological order; inputs must come "
            "from strictly earlier steps");
        continue;
      }
      if (ref.step == -1) {
        if (!options.allow_args) {
          Add(&out, "AGV205",
              "input " + std::to_string(j) +
                  " references a function argument in a top-level plan",
              StepRef(plan, i));
        } else if (ref.output < 0) {
          Add(&out, "AGV205",
              "input " + std::to_string(j) + " references argument " +
                  std::to_string(ref.output),
              StepRef(plan, i));
        }
        continue;
      }
      const Node* producer = plan.steps[static_cast<size_t>(ref.step)].node;
      if (producer != nullptr &&
          (ref.output < 0 || ref.output >= producer->num_outputs())) {
        Add(&out, "AGV205",
            "input " + std::to_string(j) + " references output " +
                std::to_string(ref.output) + " of " +
                StepRef(plan, ref.step) + ", which has " +
                std::to_string(producer->num_outputs()) + " output(s)",
            StepRef(plan, i));
      }
    }
    // Successor lists are short (deduped by CompilePlan), so the
    // duplicate check is a linear rescan of the prefix — no per-step
    // allocation.
    for (size_t si = 0; si < s.successors.size(); ++si) {
      const int succ = s.successors[si];
      if (succ <= i || succ >= num_steps) {
        Add(&out, "AGV202",
            "successor " + std::to_string(succ) +
                " is not a later step of the plan",
            StepRef(plan, i),
            "a non-forward edge makes the ready-queue cyclic");
      } else if (std::find(s.successors.begin(),
                           s.successors.begin() + static_cast<long>(si),
                           succ) !=
                 s.successors.begin() + static_cast<long>(si)) {
        Add(&out, "AGV202",
            "duplicate successor edge to step " + std::to_string(succ),
            StepRef(plan, i),
            "a duplicate edge decrements the consumer's pending count "
            "twice, launching it before its inputs exist");
      }
    }
  }

  // ---- AGV201: pending counts == distinct in-degree -------------------
  std::vector<int> indegree(static_cast<size_t>(num_steps), 0);
  for (int p = 0; p < num_steps; ++p) {
    const std::vector<int>& succs =
        plan.steps[static_cast<size_t>(p)].successors;
    for (size_t si = 0; si < succs.size(); ++si) {
      const int succ = succs[si];
      if (succ > p && succ < num_steps &&
          std::find(succs.begin(), succs.begin() + static_cast<long>(si),
                    succ) == succs.begin() + static_cast<long>(si)) {
        ++indegree[static_cast<size_t>(succ)];
      }
    }
  }
  for (int i = 0; i < num_steps; ++i) {
    const int expect = indegree[static_cast<size_t>(i)];
    const int got = plan.steps[static_cast<size_t>(i)].pending_init;
    if (got != expect) {
      Add(&out, "AGV201",
          "pending_init is " + std::to_string(got) + " but " +
              std::to_string(expect) +
              " distinct predecessor step(s) have an edge to this step",
          StepRef(plan, i),
          got < expect
              ? "the step would launch before all predecessors finished"
              : "the step's count never reaches zero: scheduler deadlock");
    }
  }

  // ---- AGV203: every dataflow input is path-ordered -------------------
  // A direct producer edge is not required: CompilePlan's transitive
  // reduction drops edges a longer path implies, and the drain's
  // acq_rel pending-count decrements form a release sequence along any
  // path, so path reachability is the sound requirement.
  const Reachability reach(plan);
  for (int i = 0; i < num_steps; ++i) {
    const Plan::Step& s = plan.steps[static_cast<size_t>(i)];
    for (size_t j = 0; j < s.inputs.size(); ++j) {
      const int p = s.inputs[j].step;
      if (p < 0 || p >= i) continue;  // args / AGV205 territory
      if (!reach.Reaches(p, i)) {
        Add(&out, "AGV203",
            "reads " + SlotRef(plan, s.inputs[j]) +
                " but no successor path orders this step after the "
                "producer",
            StepRef(plan, i),
            "without a path the parallel drain may run the consumer "
            "before the producer's slot is written");
      }
    }
  }

  // ---- AGV204: stateful chain is a direct total order -----------------
  SubgraphCache subgraph_cache;
  int prev_stateful = -1;
  for (int i = 0; i < num_steps; ++i) {
    const Plan::Step& s = plan.steps[static_cast<size_t>(i)];
    if (s.node == nullptr || !NodeIsStatefulCached(*s.node, subgraph_cache)) {
      continue;
    }
    if (prev_stateful >= 0) {
      const std::vector<int>& succ =
          plan.steps[static_cast<size_t>(prev_stateful)].successors;
      if (std::find(succ.begin(), succ.end(), i) == succ.end()) {
        Add(&out, "AGV204",
            "stateful " + StepRef(plan, i) +
                " is not chained to the previous stateful " +
                StepRef(plan, prev_stateful),
            StepRef(plan, i),
            "side effects must execute in sequential plan order; an "
            "unchained pair lets the parallel engine reorder them");
      }
    }
    prev_stateful = i;
  }

  // ---- AGV206: returns shape ------------------------------------------
  if (plan.returns_move.size() != plan.returns.size()) {
    Add(&out, "AGV206",
        "returns_move has " + std::to_string(plan.returns_move.size()) +
            " entries for " + std::to_string(plan.returns.size()) +
            " return(s)",
        "plan returns");
  }
  std::set<std::pair<int, int>> fetched;
  for (size_t i = 0; i < plan.returns.size(); ++i) {
    const Plan::InputRef& r = plan.returns[i];
    bool ok = true;
    if (r.step < -1 || r.step >= num_steps) {
      ok = false;
    } else if (r.step == -1) {
      ok = options.allow_args && r.output >= 0;
    } else {
      const Node* producer = plan.steps[static_cast<size_t>(r.step)].node;
      ok = producer == nullptr ||
           (r.output >= 0 && r.output < producer->num_outputs());
    }
    if (!ok) {
      Add(&out, "AGV206",
          "return " + std::to_string(i) + " references " +
              (r.step >= 0 && r.step < num_steps
                   ? SlotRef(plan, r)
                   : "step " + std::to_string(r.step) + " output " +
                         std::to_string(r.output)) +
              ", which does not exist in this plan",
          "plan returns");
      continue;
    }
    fetched.insert({r.step, r.output});
  }

  // ---- AGV210/AGV211/AGV212: move soundness ---------------------------
  // All references to each slot, in plan order; (step, input index).
  std::map<std::pair<int, int>, std::vector<std::pair<int, int>>> refs;
  for (int i = 0; i < num_steps; ++i) {
    const Plan::Step& s = plan.steps[static_cast<size_t>(i)];
    for (size_t j = 0; j < s.inputs.size(); ++j) {
      if (s.inputs[j].step < -1 || s.inputs[j].step >= i) continue;
      refs[{s.inputs[j].step, s.inputs[j].output}].emplace_back(
          i, static_cast<int>(j));
    }
  }
  for (int i = 0; i < num_steps; ++i) {
    const Plan::Step& s = plan.steps[static_cast<size_t>(i)];
    const size_t nmove = std::min(s.input_move.size(), s.inputs.size());
    for (size_t j = 0; j < nmove; ++j) {
      if (s.input_move[j] == Plan::kKeep) continue;
      if (s.inputs[j].step < -1 || s.inputs[j].step >= i) continue;
      const std::pair<int, int> slot{s.inputs[j].step, s.inputs[j].output};
      const char* flag =
          s.input_move[j] == Plan::kMoveAlways ? "kMoveAlways" : "kMoveSeq";
      if (fetched.count(slot) > 0) {
        Add(&out, "AGV212",
            "input " + std::to_string(j) + " moves fetched " +
                SlotRef(plan, s.inputs[j]) + " (" + flag + ")",
            StepRef(plan, i),
            "returns read slots after all steps ran; a consumer move "
            "hands the fetch a moved-from value");
        continue;
      }
      const std::vector<std::pair<int, int>>& all = refs[slot];
      for (const auto& [k, l] : all) {
        if (k > i || (k == i && l > static_cast<int>(j))) {
          Add(&out, "AGV210",
              "input " + std::to_string(j) + " moves " +
                  SlotRef(plan, s.inputs[j]) + " (" + flag +
                  ") but step " + std::to_string(k) + " input " +
                  std::to_string(l) + " reads the slot later",
              StepRef(plan, i),
              "only a value's final reference in plan order may move it");
          break;
        }
      }
      if (s.input_move[j] == Plan::kMoveAlways) {
        if (slot.first < 0) {
          Add(&out, "AGV211",
              "input " + std::to_string(j) + " marks caller-owned " +
                  SlotRef(plan, s.inputs[j]) + " kMoveAlways",
              StepRef(plan, i),
              "the parallel drain reads args from the caller's vector "
              "without per-arg ordering; only kMoveSeq is sound there");
        } else if (all.size() != 1) {
          Add(&out, "AGV211",
              "input " + std::to_string(j) + " marks " +
                  SlotRef(plan, s.inputs[j]) + " kMoveAlways but the slot "
                  "has " + std::to_string(all.size()) + " reference(s)",
              StepRef(plan, i),
              "kMoveAlways lets the parallel drain move with no ordering "
              "against other readers, so the reference must be the "
              "slot's only one");
        }
      }
    }
  }

  // ---- AGV213: returns_move exactly at each slot's final fetch --------
  if (plan.returns_move.size() == plan.returns.size()) {
    std::map<std::pair<int, int>, size_t> last_fetch;
    for (size_t i = 0; i < plan.returns.size(); ++i) {
      last_fetch[{plan.returns[i].step, plan.returns[i].output}] = i;
    }
    for (size_t i = 0; i < plan.returns.size(); ++i) {
      const bool is_last =
          last_fetch[{plan.returns[i].step, plan.returns[i].output}] == i;
      const bool moves = plan.returns_move[i] != 0;
      if (moves && !is_last) {
        Add(&out, "AGV213",
            "return " + std::to_string(i) + " moves " +
                SlotRef(plan, plan.returns[i]) +
                " although a later fetch reads the same slot",
            "plan returns");
      } else if (!moves && is_last) {
        Add(&out, "AGV213",
            "return " + std::to_string(i) + " is the final fetch of " +
                SlotRef(plan, plan.returns[i]) +
                " but does not release the slot",
            "plan returns",
            "the final fetch must move the value so loop-carried slots "
            "re-enter the next iteration sole-owned");
      }
    }
  }

  // ---- AGV214: same-variable steps are totally ordered ----------------
  if (options.race_audit) {
    std::map<std::string, std::vector<int>> var_steps;
    for (int i = 0; i < num_steps; ++i) {
      const Plan::Step& s = plan.steps[static_cast<size_t>(i)];
      if (s.node == nullptr) continue;
      std::set<std::string> vars;
      NodeVarTouchesCached(*s.node, subgraph_cache, &vars);
      for (const std::string& v : vars) var_steps[v].push_back(i);
    }
    for (const auto& [var, steps] : var_steps) {
      for (size_t k = 1; k < steps.size(); ++k) {
        // Step lists are in plan order; pairwise-consecutive
        // reachability gives a total order by transitivity.
        if (!reach.Reaches(steps[k - 1], steps[k])) {
          Add(&out, "AGV214",
              StepRef(plan, steps[k - 1]) + " and " +
                  StepRef(plan, steps[k]) + " both touch variable '" +
                  var + "' but no successor path orders them",
              StepRef(plan, steps[k]),
              "the parallel scheduler may interleave unordered "
              "same-variable steps: a schedule race");
        }
      }
    }
  }

  return out;
}

}  // namespace ag::verify
