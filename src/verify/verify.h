// agverify: static verification of the back half of the staging
// pipeline — the dataflow graph after construction and after every
// optimization pass.
//
// aglint (analysis/lint.h) checks the imperative *source* before
// conversion; this layer checks the *artifacts* conversion and
// optimization produce. Every invariant here is one the executors
// assume without checking on their hot paths, so a violation means a
// pass (or a hand-built graph) silently produced something the
// sequential/parallel engines may execute incorrectly.
//
// Graph invariant catalog (AGV1xx) — one line of "why" per code:
//
//   AGV101  graph cycle: both engines schedule nodes topologically; a
//           cycle deadlocks the parallel drain and overflows the
//           sequential evaluator's recursion.
//   AGV102  dangling endpoint: an input or subgraph return references a
//           null node, a node owned by a different graph, or an output
//           index the producer does not have — the executor would read
//           another node's memo slot or out of bounds.
//   AGV103  subgraph capture structure: Cond/While call-site inputs,
//           FuncGraph captures, and capture Arg indices must stay in
//           lockstep (captures are passed positionally as trailing
//           args); a pass that rewires one side but not the other makes
//           the branch/body read the wrong outer value.
//   AGV104  dtype mismatch: a node's recorded output dtype disagrees
//           with what graph::InferDtype derives for its op (checked
//           only where inference is authoritative, e.g. comparisons are
//           bool, Cast is its attr) or a Const disagrees with its
//           value; kernels and downstream inference trust the recorded
//           dtype.
//   AGV105  control-flow signature: Cond branches must agree on return
//           count and dtypes, a While cond must return a single bool,
//           and a While body must preserve loop-variable dtypes — the
//           graph-level analog of aglint's AG002/AG003, enforced after
//           passes rewrite subgraphs.
//   AGV106  fused-body compilability: a FusedElementwise body must
//           compile into the executor's scalar recipe (no captures, one
//           return naming the last op, only fusable elementwise/cast
//           ops, input count matching the body's args) — checked with
//           the kernel's own compiler (graph::CompileFusedBody), so a
//           pass that emits a malformed fusion fails verification here
//           instead of at dispatch.
//
// Plan invariants (AGV2xx) live in verify/plan_verify.h. The agverify
// CLI (tools/agverify.cc) stages a .pym and runs every checker at every
// stage; graph::OptimizeOptions::verify_each_pass runs VerifyGraph
// after each optimization pass and attributes the first violation to
// the pass that introduced it.
#pragma once

#include <string>
#include <vector>

#include "graph/graph.h"

namespace ag::verify {

// One structured verifier finding — the graph/plan-level analog of
// analysis::Diagnostic. Artifacts have no source location; `where`
// names the node / step / subgraph path instead.
struct VerifyDiagnostic {
  std::string code;     // "AGV101" ... "AGV2xx"
  std::string message;  // one line, names the offending node or step
  std::string where;    // e.g. "node 'while/body' (While) in body of 'w'"
  std::string note;     // optional rationale / remediation ("" if absent)

  // "error: [AGV101] message (at where)" (+ "\n  note: ..." if set).
  [[nodiscard]] std::string str() const;
};

struct GraphVerifyOptions {
  // AGV104/AGV105 dtype checks (on by default; off lets structural
  // checks run on graphs with deliberately unset dtypes).
  bool check_dtypes = true;
};

// Verifies one graph (recursing into Cond/While subgraphs): AGV101-106.
// Results are ordered by node id within each graph, outer graph first.
[[nodiscard]] std::vector<VerifyDiagnostic> VerifyGraph(
    const graph::Graph& graph, const GraphVerifyOptions& options = {});

// Same, plus validates that each fetch root is a live endpoint of
// `graph` (a pass that remaps roots to a pruned node breaks every Run).
[[nodiscard]] std::vector<VerifyDiagnostic> VerifyGraphAndRoots(
    const graph::Graph& graph, const std::vector<graph::Output>& roots,
    const GraphVerifyOptions& options = {});

// All findings, one per line (empty string when clean).
[[nodiscard]] std::string FormatFindings(
    const std::vector<VerifyDiagnostic>& findings);

}  // namespace ag::verify
