// Plan-level static verification (AGV2xx): audits the artifact
// exec::Session::CompilePlan produces before the parallel drain trusts
// it. The plan engine does nothing at run time but atomic pending-count
// decrements and (for flagged inputs) value moves — every soundness
// argument lives in the compiled successor lists, pending counts,
// stateful chain, and move flags. These checks prove those properties
// instead of assuming them.
//
// Plan invariant catalog — one line of "why" per code:
//
//   AGV201  pending count mismatch: a step's pending_init must equal its
//           distinct predecessor count over the successor edges; too low
//           launches the step before its inputs exist, too high
//           deadlocks the drain.
//   AGV202  malformed successor list: duplicate or non-forward edges
//           double-decrement or cyclically deadlock the ready-queue.
//   AGV203  missing dataflow ordering: a consumer reading a producer's
//           slot without a successor *path* from the producer races the
//           write in the parallel engine. A direct edge is not required
//           — CompilePlan's transitive reduction drops edges implied by
//           longer paths, and ordering is transitive along them.
//   AGV204  stateful chain broken: consecutive stateful steps (Variable/
//           Assign/Print, plus Cond/While whose subgraphs transitively
//           contain one) must be linked by a direct edge so side effects
//           keep their sequential order — the invariant whose violation
//           caused PR 3's Cond/While effect-reordering bug.
//   AGV205  malformed step: null node, non-topological or out-of-range
//           input ref, op/kind disagreement, missing kernel, or a move
//           flag vector that does not match the inputs — each makes
//           ExecStep read garbage.
//   AGV206  malformed returns: a fetch referencing a nonexistent step or
//           output, or a returns_move vector of the wrong arity.
//   AGV210  value read after move: an input flagged kMoveSeq/kMoveAlways
//           with a later reference to the same slot — the later reader
//           would see a moved-from (empty) value.
//   AGV211  kMoveAlways on a non-sole-consumer or argument slot: the
//           parallel drain moves without ordering against other readers,
//           so only a slot with exactly one reference anywhere (and
//           never a caller-owned arg) may carry it.
//   AGV212  fetched value moved by a consumer: returns read slots after
//           all steps complete, so consumer moves of fetched slots
//           return empty results.
//   AGV213  returns_move not at the final fetch: moving a slot at a
//           non-final fetch hands the earlier fetch the value and the
//           later ones nothing; missing the final move leaks the slot's
//           buffer back into the plan scratch.
//   AGV214  unordered variable access (schedule race): two steps that
//           (transitively, through Cond/While subgraphs) read or write
//           the same variable must be ordered by a successor path, or
//           the parallel scheduler is free to interleave them — the
//           static race detector for the schedule.
#pragma once

#include <vector>

#include "exec/session.h"
#include "verify/verify.h"

namespace ag::verify {

struct PlanVerifyOptions {
  // Whether arg references (InputRef.step == -1) are legal — true for
  // FuncGraph sub-plans, false for top-level plans.
  bool allow_args = true;
  // AGV214: audit that same-variable steps are totally ordered.
  bool race_audit = true;
};

// Verifies one compiled plan: AGV201-AGV214. Findings are ordered by
// step index. Does not recurse into Cond/While sub-plans — those are
// compiled (and verified) separately per FuncGraph.
[[nodiscard]] std::vector<VerifyDiagnostic> VerifyPlan(
    const exec::Session::Plan& plan, const PlanVerifyOptions& options = {});

// Transitive statefulness of one plan step (Variable/Assign/Print, or a
// Cond/While whose subgraphs contain one) — the predicate AGV204/AGV214
// audit against, exported so fault injection (tools/agverify --inject,
// tests/verify_test.cc) can locate chain edges to corrupt.
[[nodiscard]] bool PlanStepIsStateful(const exec::Session::Plan::Step& step);

}  // namespace ag::verify
