#include "autodiff/graph_grad.h"

#include <functional>
#include <map>
#include <set>
#include <unordered_map>

#include "support/error.h"

namespace ag::autodiff {

using graph::GraphContext;
using graph::Node;
using graph::Op;
using graph::Output;

namespace {

// Maps (ctx, node, output grads) -> input grads (invalid Output = none).
using GradFn = std::function<std::vector<Output>(
    GraphContext&, Node*, const std::vector<Output>&)>;

Output SumTo(GraphContext& ctx, Output grad, Output like) {
  return Op(ctx, "SumToShapeOf", {grad, like});
}

const std::unordered_map<std::string, GradFn>& GradRegistry() {
  static const auto* kRegistry = [] {
    auto* r = new std::unordered_map<std::string, GradFn>();
    auto& reg = *r;

    reg["Identity"] = [](GraphContext&, Node*,
                         const std::vector<Output>& g) {
      return std::vector<Output>{g[0]};
    };
    reg["Add"] = [](GraphContext& ctx, Node* n,
                    const std::vector<Output>& g) {
      return std::vector<Output>{SumTo(ctx, g[0], n->inputs()[0]),
                                 SumTo(ctx, g[0], n->inputs()[1])};
    };
    reg["Sub"] = [](GraphContext& ctx, Node* n,
                    const std::vector<Output>& g) {
      return std::vector<Output>{
          SumTo(ctx, g[0], n->inputs()[0]),
          SumTo(ctx, Op(ctx, "Neg", {g[0]}), n->inputs()[1])};
    };
    reg["Mul"] = [](GraphContext& ctx, Node* n,
                    const std::vector<Output>& g) {
      Output a = n->inputs()[0];
      Output b = n->inputs()[1];
      return std::vector<Output>{SumTo(ctx, Op(ctx, "Mul", {g[0], b}), a),
                                 SumTo(ctx, Op(ctx, "Mul", {g[0], a}), b)};
    };
    reg["Div"] = [](GraphContext& ctx, Node* n,
                    const std::vector<Output>& g) {
      Output a = n->inputs()[0];
      Output b = n->inputs()[1];
      Output ga = SumTo(ctx, Op(ctx, "Div", {g[0], b}), a);
      Output num = Op(ctx, "Mul", {g[0], a});
      Output den = Op(ctx, "Mul", {b, b});
      Output gb =
          SumTo(ctx, Op(ctx, "Neg", {Op(ctx, "Div", {num, den})}), b);
      return std::vector<Output>{ga, gb};
    };
    reg["Pow"] = [](GraphContext& ctx, Node* n,
                    const std::vector<Output>& g) {
      Output a = n->inputs()[0];
      Output b = n->inputs()[1];
      Output one = graph::Const(ctx, Tensor::Scalar(1.0f));
      Output bm1 = Op(ctx, "Sub", {b, one});
      Output da = Op(ctx, "Mul", {b, Op(ctx, "Pow", {a, bm1})});
      Output ga = SumTo(ctx, Op(ctx, "Mul", {g[0], da}), a);
      Output db = Op(ctx, "Mul", {n->out(0), Op(ctx, "Log", {a})});
      Output gb = SumTo(ctx, Op(ctx, "Mul", {g[0], db}), b);
      return std::vector<Output>{ga, gb};
    };
    reg["Maximum"] = [](GraphContext& ctx, Node* n,
                        const std::vector<Output>& g) {
      Output a = n->inputs()[0];
      Output b = n->inputs()[1];
      Output mask = Op(ctx, "GreaterEqual", {a, b});
      Output ga = SumTo(ctx, Op(ctx, "Mul", {g[0], mask}), a);
      Output gb = SumTo(
          ctx, Op(ctx, "Mul", {g[0], Op(ctx, "LogicalNot", {mask})}), b);
      return std::vector<Output>{ga, gb};
    };
    reg["Minimum"] = [](GraphContext& ctx, Node* n,
                        const std::vector<Output>& g) {
      Output a = n->inputs()[0];
      Output b = n->inputs()[1];
      Output mask = Op(ctx, "LessEqual", {a, b});
      Output ga = SumTo(ctx, Op(ctx, "Mul", {g[0], mask}), a);
      Output gb = SumTo(
          ctx, Op(ctx, "Mul", {g[0], Op(ctx, "LogicalNot", {mask})}), b);
      return std::vector<Output>{ga, gb};
    };

    reg["Neg"] = [](GraphContext& ctx, Node*, const std::vector<Output>& g) {
      return std::vector<Output>{Op(ctx, "Neg", {g[0]})};
    };
    reg["Exp"] = [](GraphContext& ctx, Node* n,
                    const std::vector<Output>& g) {
      return std::vector<Output>{Op(ctx, "Mul", {g[0], n->out(0)})};
    };
    reg["Log"] = [](GraphContext& ctx, Node* n,
                    const std::vector<Output>& g) {
      return std::vector<Output>{Op(ctx, "Div", {g[0], n->inputs()[0]})};
    };
    reg["Tanh"] = [](GraphContext& ctx, Node* n,
                     const std::vector<Output>& g) {
      Output y = n->out(0);
      Output one = graph::Const(ctx, Tensor::Scalar(1.0f));
      Output d = Op(ctx, "Sub", {one, Op(ctx, "Mul", {y, y})});
      return std::vector<Output>{Op(ctx, "Mul", {g[0], d})};
    };
    reg["Sigmoid"] = [](GraphContext& ctx, Node* n,
                        const std::vector<Output>& g) {
      Output y = n->out(0);
      Output one = graph::Const(ctx, Tensor::Scalar(1.0f));
      Output d = Op(ctx, "Mul", {y, Op(ctx, "Sub", {one, y})});
      return std::vector<Output>{Op(ctx, "Mul", {g[0], d})};
    };
    reg["Relu"] = [](GraphContext& ctx, Node* n,
                     const std::vector<Output>& g) {
      Output zero = graph::Const(ctx, Tensor::Scalar(0.0f));
      Output mask = Op(ctx, "Greater", {n->inputs()[0], zero});
      return std::vector<Output>{Op(ctx, "Mul", {g[0], mask})};
    };
    reg["Sqrt"] = [](GraphContext& ctx, Node* n,
                     const std::vector<Output>& g) {
      Output half = graph::Const(ctx, Tensor::Scalar(0.5f));
      Output d = Op(ctx, "Div", {half, n->out(0)});
      return std::vector<Output>{Op(ctx, "Mul", {g[0], d})};
    };
    reg["Square"] = [](GraphContext& ctx, Node* n,
                       const std::vector<Output>& g) {
      Output two = graph::Const(ctx, Tensor::Scalar(2.0f));
      Output d = Op(ctx, "Mul", {two, n->inputs()[0]});
      return std::vector<Output>{Op(ctx, "Mul", {g[0], d})};
    };
    reg["Sin"] = [](GraphContext& ctx, Node* n,
                    const std::vector<Output>& g) {
      return std::vector<Output>{
          Op(ctx, "Mul", {g[0], Op(ctx, "Cos", {n->inputs()[0]})})};
    };
    reg["Cos"] = [](GraphContext& ctx, Node* n,
                    const std::vector<Output>& g) {
      Output s = Op(ctx, "Sin", {n->inputs()[0]});
      return std::vector<Output>{Op(ctx, "Neg", {Op(ctx, "Mul", {g[0], s})})};
    };
    reg["Cast"] = [](GraphContext&, Node*, const std::vector<Output>& g) {
      return std::vector<Output>{g[0]};
    };

    reg["MatMul"] = [](GraphContext& ctx, Node* n,
                       const std::vector<Output>& g) {
      Output a = n->inputs()[0];
      Output b = n->inputs()[1];
      std::vector<int> swap{1, 0};
      Output bt = Op(ctx, "Transpose", {b}, {{"perm", swap}});
      Output at = Op(ctx, "Transpose", {a}, {{"perm", swap}});
      return std::vector<Output>{Op(ctx, "MatMul", {g[0], bt}),
                                 Op(ctx, "MatMul", {at, g[0]})};
    };
    reg["Transpose"] = [](GraphContext& ctx, Node* n,
                          const std::vector<Output>& g) {
      const std::vector<int>& perm = n->attr<std::vector<int>>("perm");
      std::vector<int> inverse(perm.size());
      for (size_t i = 0; i < perm.size(); ++i) {
        inverse[static_cast<size_t>(perm[i])] = static_cast<int>(i);
      }
      return std::vector<Output>{
          Op(ctx, "Transpose", {g[0]}, {{"perm", inverse}})};
    };
    reg["Reshape"] = [](GraphContext& ctx, Node* n,
                        const std::vector<Output>& g) {
      return std::vector<Output>{
          Op(ctx, "ReshapeLike", {g[0], n->inputs()[0]})};
    };
    reg["ExpandDims"] = [](GraphContext& ctx, Node* n,
                           const std::vector<Output>& g) {
      return std::vector<Output>{
          Op(ctx, "ReshapeLike", {g[0], n->inputs()[0]})};
    };

    reg["ReduceSum"] = [](GraphContext& ctx, Node* n,
                          const std::vector<Output>& g) {
      Output x = n->inputs()[0];
      Output ones = Op(ctx, "OnesLike", {x});
      Output grad = g[0];
      const bool keepdims =
          n->HasAttr("keepdims") && n->attr<int64_t>("keepdims") != 0;
      if (n->HasAttr("axis") && !keepdims) {
        grad = Op(ctx, "ExpandDims", {grad}, {{"axis", n->attr<int64_t>("axis")}});
      }
      return std::vector<Output>{Op(ctx, "Mul", {ones, grad})};
    };
    reg["ReduceMean"] = [](GraphContext& ctx, Node* n,
                           const std::vector<Output>& g) {
      Output x = n->inputs()[0];
      Output ones = Op(ctx, "OnesLike", {x});
      Output grad = g[0];
      const bool keepdims =
          n->HasAttr("keepdims") && n->attr<int64_t>("keepdims") != 0;
      if (n->HasAttr("axis") && !keepdims) {
        grad = Op(ctx, "ExpandDims", {grad},
                  {{"axis", n->attr<int64_t>("axis")}});
      }
      Output spread = Op(ctx, "Mul", {ones, grad});
      // Divide by the reduction factor |x| / |y|.
      Output nx = Op(ctx, "Cast", {Op(ctx, "Size", {x})},
                     {{"dtype", DType::kFloat32}});
      Output ny = Op(ctx, "Cast", {Op(ctx, "Size", {n->out(0)})},
                     {{"dtype", DType::kFloat32}});
      Output factor = Op(ctx, "Div", {nx, ny});
      return std::vector<Output>{Op(ctx, "Div", {spread, factor})};
    };

    reg["SoftmaxCrossEntropy"] = [](GraphContext& ctx, Node* n,
                                    const std::vector<Output>& g) {
      Output logits = n->inputs()[0];
      Output labels = n->inputs()[1];
      Output d = Op(ctx, "SoftmaxCrossEntropyGrad", {logits, labels});
      return std::vector<Output>{Op(ctx, "Mul", {d, g[0]}), Output{}};
    };

    reg["Where"] = [](GraphContext& ctx, Node* n,
                      const std::vector<Output>& g) {
      Output cond = n->inputs()[0];
      Output zeros = Op(ctx, "ZerosLike", {g[0]});
      return std::vector<Output>{Output{},
                                 Op(ctx, "Where", {cond, g[0], zeros}),
                                 Op(ctx, "Where", {cond, zeros, g[0]})};
    };

    // Grads of ops that appear in gradient subgraphs themselves — needed
    // to differentiate *through* tf.gradients (second-order, e.g. MAML).
    reg["OnesLike"] = [](GraphContext& ctx, Node* n,
                         const std::vector<Output>&) {
      return std::vector<Output>{Op(ctx, "ZerosLike", {n->inputs()[0]})};
    };
    reg["ZerosLike"] = [](GraphContext& ctx, Node* n,
                          const std::vector<Output>&) {
      return std::vector<Output>{Op(ctx, "ZerosLike", {n->inputs()[0]})};
    };
    reg["SumToShapeOf"] = [](GraphContext& ctx, Node* n,
                             const std::vector<Output>& g) {
      // d/dx sum_to_shape(x, ref): broadcast the upstream grad back.
      Output ones = Op(ctx, "OnesLike", {n->inputs()[0]});
      return std::vector<Output>{Op(ctx, "Mul", {ones, g[0]}), Output{}};
    };
    reg["ReshapeLike"] = [](GraphContext& ctx, Node* n,
                            const std::vector<Output>& g) {
      return std::vector<Output>{
          Op(ctx, "ReshapeLike", {g[0], n->inputs()[0]}), Output{}};
    };
    // Shape metadata ops are constants w.r.t. values: stop gradients.
    const auto no_input_grads = [](GraphContext&, Node* n,
                                   const std::vector<Output>&) {
      return std::vector<Output>(n->inputs().size());
    };
    reg["Size"] = no_input_grads;
    reg["Shape"] = no_input_grads;
    reg["Dim0"] = no_input_grads;
    reg["IndexAxis0"] = [](GraphContext& ctx, Node* n,
                           const std::vector<Output>& g) {
      Output zeros = Op(ctx, "ZerosLike", {n->inputs()[0]});
      return std::vector<Output>{
          Op(ctx, "SetItemAxis0", {zeros, n->inputs()[1], g[0]}), Output{}};
    };

    return r;
  }();
  return *kRegistry;
}

}  // namespace

bool HasGradient(const std::string& op) {
  return GradRegistry().count(op) > 0;
}

std::vector<Output> Gradients(GraphContext& ctx, Output y,
                              const std::vector<Output>& xs) {
  graph::Graph* g = ctx.current();
  if (y.node->owner() != g) {
    throw StagingError("Gradients: y is not in the current graph");
  }

  // Topological order of y's ancestors (post-order DFS).
  std::vector<Node*> topo;
  std::set<Node*> visited;
  std::function<void(Node*)> dfs = [&](Node* n) {
    if (!visited.insert(n).second) return;
    for (const Output& in : n->inputs()) dfs(in.node);
    topo.push_back(n);
  };
  dfs(y.node);

  // Path pruning (as in tf.gradients): only nodes that lie between y and
  // some x need their gradient function; everything else is skipped even
  // if an (unused) gradient happens to flow into it.
  std::set<Node*> depends_on_x;
  for (const Output& x : xs) depends_on_x.insert(x.node);
  for (Node* n : topo) {  // topo is input-before-user
    if (depends_on_x.count(n) > 0) continue;
    for (const Output& in : n->inputs()) {
      if (depends_on_x.count(in.node) > 0) {
        depends_on_x.insert(n);
        break;
      }
    }
  }

  // Accumulated gradient per endpoint.
  std::map<std::pair<Node*, int>, Output> grads;
  grads[{y.node, y.index}] = Op(ctx, "OnesLike", {y});

  auto accumulate = [&](Node* node, int index, Output grad) {
    if (!grad.valid()) return;
    auto key = std::make_pair(node, index);
    auto it = grads.find(key);
    if (it == grads.end()) {
      grads[key] = grad;
    } else {
      it->second = Op(ctx, "Add", {it->second, grad});
    }
  };

  const bool is_leaf_checked = true;
  (void)is_leaf_checked;

  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    Node* node = *it;
    const std::string& op = node->op();
    // Leaves and stateless sources terminate propagation, as do nodes
    // that no x depends on.
    if (op == "Const" || op == "Placeholder" || op == "Variable" ||
        op == "Arg" || node->inputs().empty() ||
        depends_on_x.count(node) == 0) {
      continue;
    }
    // Gather this node's output grads; skip if none flowed here.
    std::vector<Output> out_grads(
        static_cast<size_t>(node->num_outputs()));
    bool any = false;
    for (int i = 0; i < node->num_outputs(); ++i) {
      auto git = grads.find({node, i});
      if (git != grads.end()) {
        out_grads[static_cast<size_t>(i)] = git->second;
        any = true;
      }
    }
    if (!any) continue;
    // Fill missing output grads with zeros.
    for (int i = 0; i < node->num_outputs(); ++i) {
      if (!out_grads[static_cast<size_t>(i)].valid()) {
        out_grads[static_cast<size_t>(i)] =
            Op(ctx, "ZerosLike", {node->out(i)});
      }
    }

    auto rit = GradRegistry().find(op);
    if (rit == GradRegistry().end()) {
      throw StagingError("no gradient registered for op '" + op +
                         "' (node '" + node->name() + "')");
    }
    std::vector<Output> in_grads = rit->second(ctx, node, out_grads);
    if (in_grads.size() != node->inputs().size()) {
      throw InternalError("gradient for '" + op +
                          "' returned wrong number of input grads");
    }
    for (size_t i = 0; i < in_grads.size(); ++i) {
      accumulate(node->inputs()[i].node, node->inputs()[i].index,
                 in_grads[i]);
    }
  }

  std::vector<Output> result;
  result.reserve(xs.size());
  for (const Output& x : xs) {
    auto git = grads.find({x.node, x.index});
    if (git != grads.end()) {
      result.push_back(git->second);
    } else {
      result.push_back(Op(ctx, "ZerosLike", {x}));
    }
  }
  return result;
}

}  // namespace ag::autodiff
