// Symbolic reverse-mode differentiation over the graph IR — this repo's
// tf.gradients. Gradient subgraphs are appended to the same graph, so a
// single Session::Run computes forward and backward together (needed for
// the in-graph training loop of Table 2 and for MAML / L-BFGS).
//
// Broadcasting note: shapes are unknown at graph-build time, so gradient
// routing through broadcasting ops emits `SumToShapeOf(grad, operand)`
// nodes, which reduce the gradient to the operand's runtime shape.
#pragma once

#include <vector>

#include "graph/ops.h"

namespace ag::autodiff {

// Returns d y / d xs[i] for each i, as new endpoints in ctx's current
// graph. `y` must be effectively scalar (the usual loss case; the seed
// gradient is OnesLike(y)). Throws Error(kStaging) if some op on the path
// has no registered gradient. An x with no path from y yields
// ZerosLike(x).
[[nodiscard]] std::vector<graph::Output> Gradients(
    graph::GraphContext& ctx, graph::Output y,
    const std::vector<graph::Output>& xs);

// True if a gradient function is registered for `op`.
[[nodiscard]] bool HasGradient(const std::string& op);

}  // namespace ag::autodiff
