// Hardware CRC32C path. This TU is the only one compiled with
// -msse4.2; it is reached strictly behind a __builtin_cpu_supports
// runtime check in crc32c.cc, so the binary still runs on CPUs
// without the instruction. The crc32 instruction implements exactly
// the reflected Castagnoli polynomial this format specifies, so the
// result is bit-identical to the table path.
//
// The instruction is latency-bound (3 cycles, 8 bytes) on a single
// dependency chain, which caps one stream near ~8 GB/s. Large buffers
// are therefore processed as three independent streams whose partial
// CRCs are merged with a precomputed zero-extension operator (the
// classic three-way scheme from Intel's CRC note / Adler's crc32c.c),
// tripling throughput on the weight payloads that dominate .agc files.
#include <cstddef>
#include <cstdint>

#ifdef AG_ARTIFACT_SSE42
#include <nmmintrin.h>

namespace ag::artifact {
namespace {

constexpr uint32_t kPoly = 0x82F63B78u;  // reflected Castagnoli
constexpr size_t kBlock = 2048;          // bytes per stream per round

// Applies "append k zero bytes" to a CRC state, one byte at a time —
// only used at table-build time.
uint32_t AdvanceZeroBytes(uint32_t crc, size_t k) {
  for (size_t i = 0; i < k; ++i) {
    for (int b = 0; b < 8; ++b) {
      crc = (crc >> 1) ^ ((crc & 1u) != 0 ? kPoly : 0u);
    }
  }
  return crc;
}

// Byte-sliced table of the linear operator "advance the CRC state past
// kBlock zero bytes": Shift(crc) folds a stream's CRC over the bytes
// that two later streams consumed.
struct ShiftTables {
  uint32_t t[4][256];

  ShiftTables() {
    uint32_t basis[32];
    for (int j = 0; j < 32; ++j) {
      basis[j] = AdvanceZeroBytes(uint32_t{1} << j, kBlock);
    }
    for (int i = 0; i < 4; ++i) {
      for (uint32_t b = 0; b < 256; ++b) {
        uint32_t v = 0;
        for (int bit = 0; bit < 8; ++bit) {
          if ((b >> bit) & 1u) v ^= basis[i * 8 + bit];
        }
        t[i][b] = v;
      }
    }
  }

  [[nodiscard]] uint32_t Shift(uint32_t crc) const {
    return t[0][crc & 0xFFu] ^ t[1][(crc >> 8) & 0xFFu] ^
           t[2][(crc >> 16) & 0xFFu] ^ t[3][crc >> 24];
  }
};

const ShiftTables& GetShiftTables() {
  static const ShiftTables tables;
  return tables;
}

}  // namespace

uint32_t Crc32cSse42(const void* data, size_t n, uint32_t crc) {
  const auto* p = static_cast<const uint8_t*>(data);
  if (n >= 3 * kBlock) {
    const ShiftTables& shift = GetShiftTables();
    do {
      const auto* q0 = reinterpret_cast<const uint8_t*>(p);
      const auto* q1 = q0 + kBlock;
      const auto* q2 = q1 + kBlock;
      uint32_t c0 = crc;
      uint32_t c1 = 0;
      uint32_t c2 = 0;
      for (size_t i = 0; i < kBlock; i += 8) {
        uint64_t v0, v1, v2;
        __builtin_memcpy(&v0, q0 + i, 8);
        __builtin_memcpy(&v1, q1 + i, 8);
        __builtin_memcpy(&v2, q2 + i, 8);
        c0 = static_cast<uint32_t>(_mm_crc32_u64(c0, v0));
        c1 = static_cast<uint32_t>(_mm_crc32_u64(c1, v1));
        c2 = static_cast<uint32_t>(_mm_crc32_u64(c2, v2));
      }
      crc = shift.Shift(shift.Shift(c0) ^ c1) ^ c2;
      p += 3 * kBlock;
      n -= 3 * kBlock;
    } while (n >= 3 * kBlock);
  }
  while (n >= 8) {
    uint64_t v;
    __builtin_memcpy(&v, p, 8);
    crc = static_cast<uint32_t>(_mm_crc32_u64(crc, v));
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    crc = _mm_crc32_u8(crc, *p++);
  }
  return crc;
}

}  // namespace ag::artifact
#endif  // AG_ARTIFACT_SSE42
