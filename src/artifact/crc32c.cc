#include "artifact/crc32c.h"

#include <array>

namespace ag::artifact {
namespace {

constexpr uint32_t kPoly = 0x82F63B78u;  // reflected Castagnoli

struct Tables {
  std::array<std::array<uint32_t, 256>, 4> t;

  Tables() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int k = 0; k < 8; ++k) {
        crc = (crc >> 1) ^ ((crc & 1u) != 0 ? kPoly : 0u);
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      t[1][i] = (t[0][i] >> 8) ^ t[0][t[0][i] & 0xFFu];
      t[2][i] = (t[1][i] >> 8) ^ t[0][t[1][i] & 0xFFu];
      t[3][i] = (t[2][i] >> 8) ^ t[0][t[2][i] & 0xFFu];
    }
  }
};

const Tables& GetTables() {
  static const Tables tables;
  return tables;
}

}  // namespace

#ifdef AG_ARTIFACT_SSE42
// Defined in crc32c_sse42.cc (compiled with -msse4.2). Takes and
// returns the internal (pre-inversion) crc state.
uint32_t Crc32cSse42(const void* data, size_t n, uint32_t crc);

namespace {
bool Sse42Available() {
  static const bool available = __builtin_cpu_supports("sse4.2");
  return available;
}
}  // namespace
#endif

uint32_t Crc32c(const void* data, size_t n, uint32_t seed) {
#ifdef AG_ARTIFACT_SSE42
  // The crc32 instruction computes the same Castagnoli polynomial;
  // the table path below is the portable fallback and the reference
  // the hardware path is tested bit-identical against.
  if (Sse42Available()) {
    return ~Crc32cSse42(data, n, ~seed);
  }
#endif
  const Tables& tb = GetTables();
  const auto* p = static_cast<const uint8_t*>(data);
  uint32_t crc = ~seed;
  // Slicing-by-4 over aligned quads; the scalar loop handles the tail.
  while (n >= 4) {
    crc ^= static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
           (static_cast<uint32_t>(p[2]) << 16) |
           (static_cast<uint32_t>(p[3]) << 24);
    crc = tb.t[3][crc & 0xFFu] ^ tb.t[2][(crc >> 8) & 0xFFu] ^
          tb.t[1][(crc >> 16) & 0xFFu] ^ tb.t[0][crc >> 24];
    p += 4;
    n -= 4;
  }
  while (n-- > 0) {
    crc = (crc >> 8) ^ tb.t[0][(crc ^ *p++) & 0xFFu];
  }
  return ~crc;
}

}  // namespace ag::artifact
