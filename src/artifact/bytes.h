// Internal byte codecs for the .agc container: explicit little-endian
// primitives with hard bounds checks on the read side. Every reader
// failure throws Error(kValue) with a message naming the artifact
// context — malformed bytes must fail structured, never walk off the
// end of a mapping.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>

#include "support/error.h"

namespace ag::artifact {

class ByteWriter {
 public:
  void U8(uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void U32(uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      out_.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
    }
  }
  void U64(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      out_.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
    }
  }
  void I32(int32_t v) { U32(static_cast<uint32_t>(v)); }
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  void F64(double v) {
    uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    U64(bits);
  }
  void Str(const std::string& s) {
    U32(static_cast<uint32_t>(s.size()));
    out_.append(s);
  }
  void Bytes(const void* data, size_t n) {
    out_.append(static_cast<const char*>(data), n);
  }
  void PadTo(size_t alignment) {
    while (out_.size() % alignment != 0) out_.push_back('\0');
  }

  [[nodiscard]] size_t size() const { return out_.size(); }
  [[nodiscard]] const std::string& str() const { return out_; }
  [[nodiscard]] std::string Take() { return std::move(out_); }

 private:
  std::string out_;
};

class ByteReader {
 public:
  // `what` names the enclosing context ("meta section", ...) so every
  // failure message says which part of the file is malformed.
  ByteReader(const uint8_t* data, size_t size, std::string what)
      : p_(data), end_(data + size), what_(std::move(what)) {}

  [[nodiscard]] size_t remaining() const {
    return static_cast<size_t>(end_ - p_);
  }
  [[nodiscard]] bool AtEnd() const { return p_ == end_; }

  uint8_t U8() {
    Need(1);
    return *p_++;
  }
  uint32_t U32() {
    Need(4);
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(p_[i]) << (8 * i);
    p_ += 4;
    return v;
  }
  uint64_t U64() {
    Need(8);
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p_[i]) << (8 * i);
    p_ += 8;
    return v;
  }
  int32_t I32() { return static_cast<int32_t>(U32()); }
  int64_t I64() { return static_cast<int64_t>(U64()); }
  double F64() {
    const uint64_t bits = U64();
    double v = 0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  std::string Str() {
    const uint32_t n = U32();
    Need(n);
    std::string s(reinterpret_cast<const char*>(p_), n);
    p_ += n;
    return s;
  }
  // A count that will be used to size a loop or reserve a container:
  // bounded by the bytes actually remaining (each element costs at
  // least `min_elem_bytes`), so a corrupted length can never drive an
  // allocation beyond the file's own size.
  uint32_t Count(size_t min_elem_bytes) {
    const uint32_t n = U32();
    if (min_elem_bytes > 0 &&
        static_cast<uint64_t>(n) * min_elem_bytes > remaining()) {
      Fail("element count " + std::to_string(n) +
           " exceeds the section's remaining bytes");
    }
    return n;
  }

  [[noreturn]] void Fail(const std::string& message) const {
    throw ValueError("artifact: malformed " + what_ + ": " + message);
  }

 private:
  void Need(size_t n) const {
    if (remaining() < n) {
      Fail("unexpected end of data (need " + std::to_string(n) + " bytes, " +
           std::to_string(remaining()) + " left)");
    }
  }

  const uint8_t* p_;
  const uint8_t* end_;
  std::string what_;
};

}  // namespace ag::artifact
