// .agc compiled artifacts — AutoGraph's AOT deployment format.
//
// The paper's economics ("pay for conversion once, run the graph many
// times") amortize staging cost across Run() calls within one process;
// this layer amortizes it across *processes*: `agc compile` serializes
// everything the staged pipeline produced — the optimized graph, every
// compiled exec::Plan, the variable snapshot, and the raw tensor
// payloads — into one self-describing binary container, and a loader
// reconstructs ready-to-run staged functions with zero parse / convert /
// trace / optimize / CompilePlan work.
//
// Container layout (all integers little-endian):
//
//   [header, 32 B]  magic "AGC1" | format_version | flags |
//                   section_count | file_size u64 | table_crc | pad
//   [section table] section_count x 24 B:
//                   id | crc32c | offset u64 | size u64
//   [sections]      meta, graphs, plans, variables, ...
//   [tensor data]   written LAST, every payload 64-byte aligned, so a
//                   loader can mmap the file and serve weights zero-copy
//                   (Tensor::FromExternal over the mapping; in-place
//                   kernels see CanReuse()==false for mapped buffers).
//
// Every section carries a CRC32C checksum verified at load; graph and
// plan structures are additionally audited by the AGV1xx/AGV2xx static
// verifiers (src/verify) before a Session ever executes them — a
// corrupted or hand-edited artifact fails with a structured
// Error(kValue), never a segfault. Unknown format versions are refused
// with a clear error.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "exec/session.h"
#include "graph/graph.h"
#include "tensor/tensor.h"

namespace ag::artifact {

// ---- Format constants ----------------------------------------------

inline constexpr uint32_t kMagic = 0x31434741u;  // "AGC1" on disk
inline constexpr uint32_t kFormatVersion = 1;
inline constexpr size_t kHeaderBytes = 32;
inline constexpr size_t kSectionEntryBytes = 24;
inline constexpr size_t kTensorAlignment = 64;

enum class SectionId : uint32_t {
  kMeta = 1,       // producer, source path, pass pipeline, fn names
  kGraphs = 2,     // per function: graph table (nodes, attrs, subgraphs)
  kPlans = 3,      // per function: top plan + one plan per While/Cond body
  kVariables = 4,  // per function: variable store snapshot
  kTensorData = 5, // raw float payloads, 64-byte aligned, file tail
};

// "meta" / "graphs" / ... ("section <id>" for unknown ids).
[[nodiscard]] const char* SectionName(uint32_t id);

// ---- In-memory module ----------------------------------------------

// One staged function, as serialized: everything StagedFunction needs
// minus the Session (which the load glue in core/ reconstructs).
struct ArtifactFunction {
  std::string name;
  std::vector<std::string> feed_names;
  bool fetch_was_tuple = false;
  std::shared_ptr<graph::Graph> graph;
  std::vector<graph::Output> fetches;
  // Top-level plan compiled for `fetches` (allow_args=false).
  exec::Session::Plan top_plan;
  // One plan per While/Cond FuncGraph (allow_args=true), keyed by the
  // subgraph it was compiled from — exactly what Session::PlanFor would
  // have compiled lazily on first execution.
  std::vector<std::pair<const graph::Graph*, exec::Session::Plan>> sub_plans;
  // Variable store snapshot (Session::SnapshotVariables at save time).
  std::map<std::string, Tensor> variables;
};

struct ArtifactModule {
  std::string producer;     // e.g. "agc (autograph-cpp)"
  std::string source_path;  // original .pym path ("" when unknown)
  std::string pipeline;     // optimization pass pipeline spec
  std::vector<ArtifactFunction> functions;
};

// ---- Write ----------------------------------------------------------

// Serializes `module` to `path`. Tensor payloads referenced from graph
// Const attributes and variable snapshots are deduplicated by buffer
// identity. Throws Error(kValue) on IO failure, Error(kInternal) on a
// module that cannot be encoded (e.g. a plan referencing a node outside
// its function's graphs).
void WriteArtifact(const std::string& path, const ArtifactModule& module);

// ---- Read -----------------------------------------------------------

struct ReadOptions {
  // CRC32C-verify every section against the table (truncation and byte
  // flips anywhere in a section fail structured).
  bool verify_checksums = true;
  // Run the AGV1xx graph checkers and AGV2xx plan checkers over every
  // loaded graph and plan — the guard against CRC-valid but
  // semantically corrupt (hand-edited) artifacts.
  bool verify = true;
  // Serve tensor payloads zero-copy from the file mapping
  // (Tensor::FromExternal). false copies every payload onto the heap
  // (the mapping is released when ReadArtifact returns).
  bool map_tensors = true;
};

// Per-section inspection record (agc inspect).
struct SectionInfo {
  uint32_t id = 0;
  std::string name;
  uint64_t offset = 0;
  uint64_t size = 0;
  uint32_t crc = 0;
  bool crc_ok = false;
};

struct FunctionInfo {
  std::string name;
  size_t feeds = 0;
  size_t graphs = 0;      // 1 + subgraph count
  size_t nodes = 0;       // across all graphs
  size_t top_plan_steps = 0;
  size_t sub_plans = 0;
  size_t sub_plan_steps = 0;
  size_t variables = 0;
};

struct InspectInfo {
  uint32_t format_version = 0;
  uint64_t file_size = 0;
  std::string producer;
  std::string source_path;
  std::string pipeline;
  std::vector<SectionInfo> sections;
  std::vector<FunctionInfo> functions;
  uint64_t tensor_bytes = 0;

  [[nodiscard]] std::string DebugString() const;
};

// Loads `path`, mmap'ing the file when possible (falling back to a heap
// read). With options.map_tensors, every Tensor in the result borrows
// the mapping read-only; the mapping lives until the last such Tensor
// is released. Throws Error(kValue) with a structured message on any
// malformed input: bad magic, unsupported format version, truncation,
// checksum mismatch, out-of-bounds reference, or an AGV finding.
// `info`, when non-null, receives the inspection record.
[[nodiscard]] ArtifactModule ReadArtifact(const std::string& path,
                                          const ReadOptions& options = {},
                                          InspectInfo* info = nullptr);

}  // namespace ag::artifact
