// .agc reader — mmap-first loader for compiled artifacts.
//
// Validation ladder (every rung throws a structured Error(kValue); a
// corrupted or hand-edited artifact must never segfault):
//   1. size / magic / format version / declared-file-size checks;
//   2. section table bounds + table CRC32C;
//   3. per-section CRC32C (catches truncation and byte flips anywhere);
//   4. bounds-checked structural decode — every index (node, graph,
//      step, payload offset) is range-checked against what has already
//      been decoded, and element counts are bounded by the bytes
//      actually present (ByteReader::Count);
//   5. plan/return cross-checks (a plan must have been compiled for the
//      exact return endpoints it is installed against);
//   6. the AGV1xx graph checkers and AGV2xx plan checkers — the same
//      static verifiers `agverify` runs — over everything loaded.
//
// Tensors: with ReadOptions::map_tensors the payload section is served
// zero-copy — each Tensor borrows the file mapping via
// Tensor::FromExternal, and the mapping lives until the last such
// Tensor dies. Mapped buffers report CanReuse()==false, so in-place
// kernels copy instead of mutating the (read-only) file pages.
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <map>
#include <memory>
#include <sstream>
#include <utility>
#include <vector>

#include "artifact/artifact.h"
#include "artifact/bytes.h"
#include "artifact/crc32c.h"
#include "exec/kernels.h"
#include "support/error.h"
#include "verify/plan_verify.h"
#include "verify/verify.h"

namespace ag::artifact {
namespace {

using exec::Session;
using graph::FuncGraph;
using graph::Graph;
using graph::Node;
using graph::Output;

// The bytes of one artifact file: an mmap'd region when the kernel
// allows it, a heap copy otherwise. shared_ptr-owned — with
// map_tensors, every loaded Tensor holds a reference, so the mapping
// outlives the ArtifactModule for exactly as long as any weight does.
struct MappedFile {
  const uint8_t* data = nullptr;
  size_t size = 0;
  void* map_base = nullptr;  // non-null: munmap on destruction
  std::vector<uint8_t> heap;

  MappedFile() = default;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile() {
    if (map_base != nullptr) ::munmap(map_base, size);
  }
};

std::shared_ptr<MappedFile> OpenArtifactFile(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    throw ValueError("artifact: cannot open '" + path +
                     "': " + std::strerror(errno));
  }
  struct stat st {};
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    throw ValueError("artifact: cannot stat '" + path + "': " + err);
  }
  auto file = std::make_shared<MappedFile>();
  file->size = static_cast<size_t>(st.st_size);
  if (file->size > 0) {
    // MAP_POPULATE prefaults the mapping in one syscall: the checksum
    // pass touches every page anyway, and batching the page-table work
    // beats taking a soft fault per 4 KiB of weights.
#ifdef MAP_POPULATE
    constexpr int kMapFlags = MAP_PRIVATE | MAP_POPULATE;
#else
    constexpr int kMapFlags = MAP_PRIVATE;
#endif
    void* base = ::mmap(nullptr, file->size, PROT_READ, kMapFlags, fd, 0);
    if (base != MAP_FAILED) {
      file->map_base = base;
      file->data = static_cast<const uint8_t*>(base);
    } else {
      // Heap fallback: same bytes, same ownership story — external
      // tensors then borrow the heap copy instead of file pages.
      file->heap.resize(file->size);
      size_t done = 0;
      while (done < file->size) {
        const ssize_t n = ::read(fd, file->heap.data() + done,
                                 file->size - done);
        if (n <= 0) {
          ::close(fd);
          throw ValueError("artifact: short read from '" + path + "'");
        }
        done += static_cast<size_t>(n);
      }
      file->data = file->heap.data();
    }
  }
  ::close(fd);
  return file;
}

// Context for resolving tensor payload references.
struct TensorSource {
  const uint8_t* base = nullptr;
  size_t size = 0;
  // Non-null: serve payloads zero-copy, owned by this holder.
  std::shared_ptr<const void> owner;
};

Tensor ReadTensorRef(ByteReader& r, const TensorSource& src) {
  const uint8_t dtype_code = r.U8();
  if (dtype_code > static_cast<uint8_t>(DType::kInt8)) {
    r.Fail("unknown dtype code " + std::to_string(dtype_code));
  }
  const uint32_t rank = r.U32();
  if (rank > 64) r.Fail("implausible tensor rank " + std::to_string(rank));
  std::vector<int64_t> dims(rank);
  int64_t product = 1;
  for (uint32_t i = 0; i < rank; ++i) {
    dims[i] = r.I64();
    if (dims[i] < 0 || (dims[i] > 0 && product > (int64_t{1} << 40) / dims[i])) {
      r.Fail("implausible tensor dimension " + std::to_string(dims[i]));
    }
    product *= dims[i];
  }
  const int64_t elems = r.I64();
  if (elems != product) {
    r.Fail("tensor element count " + std::to_string(elems) +
           " does not match its shape (" + std::to_string(product) + ")");
  }
  const uint64_t offset = r.U64();
  const uint64_t bytes = static_cast<uint64_t>(elems) * sizeof(float);
  if (offset % alignof(float) != 0 || offset > src.size ||
      bytes > src.size - offset) {
    r.Fail("tensor payload [" + std::to_string(offset) + ", +" +
           std::to_string(bytes) + ") escapes the tensor-data section (" +
           std::to_string(src.size) + " bytes)");
  }
  const auto* payload = reinterpret_cast<const float*>(src.base + offset);
  Shape shape{std::move(dims)};
  const auto dtype = static_cast<DType>(dtype_code);
  if (src.owner != nullptr) {
    return Tensor::FromExternal(payload, std::move(shape), dtype, src.owner);
  }
  std::vector<float> values(static_cast<size_t>(elems));
  std::memcpy(values.data(), payload, static_cast<size_t>(bytes));
  return Tensor::FromVector(std::move(values), std::move(shape), dtype);
}

// One function's decoded graph table: graph 0 is the top-level graph,
// the rest are While/Cond (and fused) subgraphs in pre-order — the same
// numbering the writer used, so (graph, node) indices in the plans
// section resolve against it directly.
struct GraphTable {
  std::vector<std::shared_ptr<Graph>> graphs;

  [[nodiscard]] Node* NodeAt(ByteReader& r, uint32_t gi, uint32_t ni) const {
    if (gi >= graphs.size()) {
      r.Fail("graph index " + std::to_string(gi) + " out of range");
    }
    const auto& nodes = graphs[gi]->nodes();
    if (ni >= nodes.size()) {
      r.Fail("node index " + std::to_string(ni) + " out of range for graph " +
             std::to_string(gi));
    }
    return nodes[ni].get();
  }

  [[nodiscard]] Output OutputAt(ByteReader& r, uint32_t gi,
                                uint32_t ni) const {
    Node* node = NodeAt(r, gi, ni);
    const int32_t index = r.I32();
    if (index < 0 || index >= node->num_outputs()) {
      r.Fail("output index " + std::to_string(index) +
             " out of range for node '" + node->name() + "'");
    }
    return Output{node, index};
  }
};

void ReadGraphTable(ByteReader& r, ArtifactFunction& fn, GraphTable& table,
                    const TensorSource& tensors) {
  const uint32_t num_feeds = r.Count(4);
  fn.feed_names.reserve(num_feeds);
  for (uint32_t i = 0; i < num_feeds; ++i) fn.feed_names.push_back(r.Str());
  const uint8_t tuple = r.U8();
  if (tuple > 1) r.Fail("fetch_was_tuple flag out of range");
  fn.fetch_was_tuple = tuple != 0;

  const uint32_t num_graphs = r.Count(2);
  if (num_graphs == 0) r.Fail("function has no graphs");
  // Subgraph attrs reference graphs that decode later (pre-order puts
  // children after parents), so they are recorded here and patched once
  // every graph of the function exists. The strictly-forward constraint
  // checked below doubles as a cycle guard: graph-attr references form
  // a DAG by construction.
  struct SubgraphPatch {
    Node* node;
    std::string key;
    uint32_t graph_index;
  };
  std::vector<SubgraphPatch> patches;

  for (uint32_t gi = 0; gi < num_graphs; ++gi) {
    const uint8_t is_func = r.U8();
    if (is_func > 1) r.Fail("graph kind flag out of range");
    std::shared_ptr<Graph> g;
    FuncGraph* fg = nullptr;
    int32_t num_explicit_args = 0;
    if (is_func != 0) {
      num_explicit_args = r.I32();
      if (num_explicit_args < 0) r.Fail("negative num_explicit_args");
      auto owned = std::make_shared<FuncGraph>();
      fg = owned.get();
      g = std::move(owned);
    } else {
      g = std::make_shared<Graph>();
    }
    table.graphs.push_back(g);

    const uint32_t num_nodes = r.Count(8);
    // Optimization passes rewire inputs after nodes are created, so
    // creation order is NOT topological: a node may reference a
    // later-created node. Decode in two passes — create every node
    // first (empty inputs), then patch the recorded input references.
    // Cycles this representation could encode are caught by the AGV101
    // checker that runs over every loaded graph.
    struct PendingInputs {
      Node* node;
      std::vector<std::pair<uint32_t, int32_t>> refs;  // (node, output)
    };
    std::vector<PendingInputs> pending;
    pending.reserve(num_nodes);
    for (uint32_t ni = 0; ni < num_nodes; ++ni) {
      const std::string name = r.Str();
      const std::string op = r.Str();
      const uint32_t num_outputs = r.U32();
      if (num_outputs > (uint32_t{1} << 20)) {
        r.Fail("implausible output count for node '" + name + "'");
      }
      const uint32_t num_inputs = r.Count(8);
      std::vector<std::pair<uint32_t, int32_t>> input_refs;
      input_refs.reserve(num_inputs);
      for (uint32_t i = 0; i < num_inputs; ++i) {
        const uint32_t in_ni = r.U32();
        if (in_ni >= num_nodes) {
          r.Fail("node '" + name + "' input references node " +
                 std::to_string(in_ni) + " out of range");
        }
        input_refs.emplace_back(in_ni, r.I32());
      }
      std::vector<std::pair<int, std::pair<uint8_t, bool>>> out_types;
      out_types.reserve(num_outputs);
      for (uint32_t i = 0; i < num_outputs; ++i) {
        const uint8_t dt = r.U8();
        if (dt > static_cast<uint8_t>(DType::kInt8)) {
          r.Fail("unknown dtype code in node '" + name + "'");
        }
        const uint8_t is_list = r.U8();
        if (is_list > 1) r.Fail("output is_list flag out of range");
        out_types.emplace_back(static_cast<int>(i),
                               std::make_pair(dt, is_list != 0));
      }
      graph::AttrMap attrs;
      std::vector<std::pair<std::string, uint32_t>> node_patches;
      const uint32_t num_attrs = r.Count(5);
      // The writer iterates the node's std::map, so keys arrive sorted:
      // hinting every insert at end() makes each one O(1). A file with
      // unsorted keys (hand-built or corrupted past the CRC) still
      // decodes correctly — a wrong hint only costs the normal lookup.
      for (uint32_t i = 0; i < num_attrs; ++i) {
        std::string key = r.Str();
        const uint8_t tag = r.U8();
        switch (tag) {
          case 0:
            attrs.emplace_hint(attrs.end(), std::move(key), r.I64());
            break;
          case 1:
            attrs.emplace_hint(attrs.end(), std::move(key), r.F64());
            break;
          case 2:
            attrs.emplace_hint(attrs.end(), std::move(key), r.Str());
            break;
          case 3:
            attrs.emplace_hint(attrs.end(), std::move(key),
                               ReadTensorRef(r, tensors));
            break;
          case 4: {
            const uint8_t dt = r.U8();
            if (dt > static_cast<uint8_t>(DType::kInt8)) {
              r.Fail("unknown dtype code in attr '" + key + "'");
            }
            attrs.emplace_hint(attrs.end(), std::move(key),
                               static_cast<DType>(dt));
            break;
          }
          case 5: {
            const uint32_t sub = r.U32();
            if (sub <= gi || sub >= num_graphs) {
              r.Fail("subgraph attr '" + key + "' references graph " +
                     std::to_string(sub) +
                     " (must be a strictly later graph of this function)");
            }
            node_patches.emplace_back(std::move(key), sub);
            break;
          }
          case 6: {
            const uint32_t n = r.Count(4);
            std::vector<int> ints(n);
            for (uint32_t k = 0; k < n; ++k) ints[k] = r.I32();
            attrs.emplace_hint(attrs.end(), std::move(key),
                               std::move(ints));
            break;
          }
          default:
            r.Fail("unknown attr tag " + std::to_string(tag) +
                   " for attr '" + key + "'");
        }
      }
      Node* node = g->AddNamedNode(name, op, /*inputs=*/{},
                                   std::move(attrs),
                                   static_cast<int>(num_outputs));
      for (const auto& [idx, type] : out_types) {
        node->set_output_dtype(idx, static_cast<DType>(type.first));
        node->set_output_is_list(idx, type.second);
      }
      for (auto& [key, sub] : node_patches) {
        patches.push_back(SubgraphPatch{node, std::move(key), sub});
      }
      pending.push_back(PendingInputs{node, std::move(input_refs)});
    }
    for (PendingInputs& p : pending) {
      std::vector<Output> inputs;
      inputs.reserve(p.refs.size());
      for (const auto& [in_ni, out_idx] : p.refs) {
        Node* producer = g->nodes()[in_ni].get();
        if (out_idx < 0 || out_idx >= producer->num_outputs()) {
          r.Fail("node '" + p.node->name() +
                 "' input output-index out of range");
        }
        inputs.push_back(Output{producer, out_idx});
      }
      *p.node->mutable_inputs() = std::move(inputs);
    }

    if (fg != nullptr) {
      fg->set_num_explicit_args(num_explicit_args);
      const uint32_t num_captures = r.Count(12);
      for (uint32_t i = 0; i < num_captures; ++i) {
        const uint32_t cg = r.U32();
        if (cg >= gi) {
          r.Fail("capture references graph " + std::to_string(cg) +
                 " which is not an enclosing graph");
        }
        fg->captures.push_back(table.OutputAt(r, cg, r.U32()));
      }
      const uint32_t num_capture_args = r.Count(4);
      if (num_capture_args != num_captures) {
        r.Fail("capture_args/captures size mismatch");
      }
      for (uint32_t i = 0; i < num_capture_args; ++i) {
        Node* arg = table.NodeAt(r, gi, r.U32());
        if (arg->op() != "Arg") {
          r.Fail("capture arg '" + arg->name() + "' is not an Arg node");
        }
        fg->capture_args.push_back(arg);
      }
      const uint32_t num_returns = r.Count(12);
      for (uint32_t i = 0; i < num_returns; ++i) {
        const uint32_t rg = r.U32();
        if (rg != gi) r.Fail("subgraph return endpoint outside the subgraph");
        fg->returns.push_back(table.OutputAt(r, rg, r.U32()));
      }
    }
  }

  for (const SubgraphPatch& p : patches) {
    p.node->SetAttr(p.key, table.graphs[p.graph_index]);
  }

  const uint32_t num_fetches = r.Count(12);
  fn.fetches.reserve(num_fetches);
  for (uint32_t i = 0; i < num_fetches; ++i) {
    const uint32_t fg_idx = r.U32();
    if (fg_idx != 0) r.Fail("fetch endpoint outside the top-level graph");
    fn.fetches.push_back(table.OutputAt(r, fg_idx, r.U32()));
  }
  fn.graph = table.graphs.front();
}

// Expected step kind for an op — the same dispatch CompilePlan uses, so
// a plan whose kind byte disagrees with its node's op is rejected
// before it can misexecute.
Session::Plan::Kind KindForOp(const std::string& op) {
  using Kind = Session::Plan::Kind;
  if (op == "Cond") return Kind::kCond;
  if (op == "While") return Kind::kWhile;
  if (op == "Placeholder") return Kind::kPlaceholder;
  if (op == "Variable") return Kind::kVariable;
  if (op == "Assign") return Kind::kAssign;
  if (op == "Arg") return Kind::kArg;
  return Kind::kKernel;
}

Session::Plan ReadPlan(ByteReader& r, const GraphTable& table) {
  Session::Plan plan;
  const uint32_t num_steps = r.Count(18);
  const int steps_total = static_cast<int>(num_steps);
  plan.steps.reserve(num_steps);
  for (uint32_t si = 0; si < num_steps; ++si) {
    Session::Plan::Step step;
    const uint32_t gi = r.U32();
    const uint32_t ni = r.U32();
    step.node = table.NodeAt(r, gi, ni);
    const uint8_t kind = r.U8();
    if (kind > static_cast<uint8_t>(Session::Plan::Kind::kAssign)) {
      r.Fail("unknown plan step kind " + std::to_string(kind));
    }
    step.kind = static_cast<Session::Plan::Kind>(kind);
    if (step.kind != KindForOp(step.node->op())) {
      r.Fail("plan step kind disagrees with op '" + step.node->op() +
             "' of node '" + step.node->name() + "'");
    }
    if (step.kind == Session::Plan::Kind::kKernel) {
      // Kernel pointers are process-local: re-resolved here, never
      // serialized.
      if (!exec::HasKernel(step.node->op())) {
        r.Fail("plan step for op '" + step.node->op() +
               "' which has no registered kernel");
      }
      step.kernel = &exec::FindKernel(step.node->op());
    }
    const uint32_t num_inputs = r.Count(9);
    step.inputs.reserve(num_inputs);
    for (uint32_t i = 0; i < num_inputs; ++i) {
      Session::Plan::InputRef in{r.I32(), r.I32()};
      if (in.step < -1 || in.step >= static_cast<int>(si)) {
        // Plan order is topological: inputs reference earlier steps
        // only (or -1 for function args).
        r.Fail("plan step input references step " +
               std::to_string(in.step) + " out of order");
      }
      if (in.output < 0) r.Fail("negative plan input output index");
      if (in.step >= 0 &&
          in.output >= plan.steps[static_cast<size_t>(in.step)]
                           .node->num_outputs()) {
        r.Fail("plan input output index out of range");
      }
      step.inputs.push_back(in);
    }
    step.input_move.reserve(num_inputs);
    for (uint32_t i = 0; i < num_inputs; ++i) {
      const uint8_t m = r.U8();
      if (m > Session::Plan::kMoveAlways) {
        r.Fail("unknown input move flag " + std::to_string(m));
      }
      step.input_move.push_back(m);
    }
    const uint32_t num_succ = r.Count(4);
    step.successors.reserve(num_succ);
    for (uint32_t i = 0; i < num_succ; ++i) {
      const int32_t s = r.I32();
      if (s < 0 || s >= steps_total) {
        r.Fail("plan successor index out of range");
      }
      step.successors.push_back(s);
    }
    step.pending_init = r.I32();
    if (step.pending_init < 0 || step.pending_init > steps_total) {
      r.Fail("plan pending count out of range");
    }
    plan.steps.push_back(std::move(step));
  }
  const uint32_t num_returns = r.Count(8);
  plan.returns.reserve(num_returns);
  for (uint32_t i = 0; i < num_returns; ++i) {
    Session::Plan::InputRef ret{r.I32(), r.I32()};
    if (ret.step < -1 || ret.step >= steps_total) {
      r.Fail("plan return references step out of range");
    }
    if (ret.output < 0) r.Fail("negative plan return output index");
    if (ret.step >= 0 &&
        ret.output >=
            plan.steps[static_cast<size_t>(ret.step)].node->num_outputs()) {
      r.Fail("plan return output index out of range");
    }
    plan.returns.push_back(ret);
  }
  plan.returns_move.reserve(num_returns);
  for (uint32_t i = 0; i < num_returns; ++i) {
    const uint8_t m = r.U8();
    if (m > 1) r.Fail("unknown return move flag");
    plan.returns_move.push_back(m);
  }
  const uint32_t args_used = r.Count(1);
  plan.args_used.reserve(args_used);
  for (uint32_t i = 0; i < args_used; ++i) {
    plan.args_used.push_back(static_cast<char>(r.U8() != 0 ? 1 : 0));
  }
  return plan;
}

// A deserialized plan is only installed against return endpoints it was
// actually compiled for: each plan return must resolve to the same
// (node, output index) the graph-side return list names. This closes
// the CRC-valid-but-reshuffled hole (e.g. a hand-edited artifact
// pairing a plan with the wrong subgraph) that the per-plan AGV
// checkers — which never see the graph-side returns — cannot.
void CheckPlanMatchesReturns(ByteReader& r, const Session::Plan& plan,
                             const std::vector<Output>& returns,
                             const std::string& what) {
  if (plan.returns.size() != returns.size()) {
    r.Fail(what + ": plan returns " + std::to_string(plan.returns.size()) +
           " values, graph expects " + std::to_string(returns.size()));
  }
  for (size_t i = 0; i < returns.size(); ++i) {
    const auto& ret = plan.returns[i];
    const Output& expect = returns[i];
    if (ret.step < 0) {
      // Pass-through of a function argument: legal only when the
      // graph-side return is the matching Arg endpoint.
      if (expect.node->op() != "Arg" ||
          expect.node->attr<int64_t>("index") != ret.output) {
        r.Fail(what + ": plan return " + std::to_string(i) +
               " passes through an argument the graph does not return");
      }
      continue;
    }
    const auto& step = plan.steps[static_cast<size_t>(ret.step)];
    if (step.node != expect.node || ret.output != expect.index) {
      r.Fail(what + ": plan return " + std::to_string(i) +
             " resolves to '" + step.node->name() +
             "' but the graph returns '" + expect.node->name() + "'");
    }
  }
}

struct SectionView {
  const uint8_t* data = nullptr;
  uint64_t size = 0;
};

std::string HumanBytes(uint64_t n) {
  std::ostringstream os;
  if (n >= (uint64_t{1} << 20)) {
    os << (n >> 20) << "." << ((n & ((uint64_t{1} << 20) - 1)) * 10 >> 20)
       << " MiB";
  } else if (n >= 1024) {
    os << (n >> 10) << "." << ((n & 1023) * 10 >> 10) << " KiB";
  } else {
    os << n << " B";
  }
  return os.str();
}

}  // namespace

std::string InspectInfo::DebugString() const {
  std::ostringstream os;
  os << "agc artifact: format v" << format_version << ", " << file_size
     << " bytes\n";
  os << "  producer: " << producer << "\n";
  os << "  source:   " << (source_path.empty() ? "<unknown>" : source_path)
     << "\n";
  os << "  pipeline: " << (pipeline.empty() ? "<default>" : pipeline)
     << "\n";
  os << "sections:\n";
  for (const SectionInfo& s : sections) {
    os << "  " << s.name;
    for (size_t pad = s.name.size(); pad < 10; ++pad) os << ' ';
    os << " offset=" << s.offset << " size=" << s.size << " ("
       << HumanBytes(s.size) << ") crc=0x" << std::hex << s.crc << std::dec
       << (s.crc_ok ? " ok" : " MISMATCH") << "\n";
  }
  os << "functions (" << functions.size() << "):\n";
  for (const FunctionInfo& f : functions) {
    os << "  " << f.name << ": feeds=" << f.feeds << " graphs=" << f.graphs
       << " nodes=" << f.nodes << " top_plan_steps=" << f.top_plan_steps
       << " sub_plans=" << f.sub_plans << " (steps=" << f.sub_plan_steps
       << ") variables=" << f.variables << "\n";
  }
  os << "tensor data: " << HumanBytes(tensor_bytes) << "\n";
  return os.str();
}

ArtifactModule ReadArtifact(const std::string& path,
                            const ReadOptions& options, InspectInfo* info) {
  std::shared_ptr<MappedFile> file = OpenArtifactFile(path);
  InspectInfo local_info;
  InspectInfo& out_info = info != nullptr ? *info : local_info;
  out_info = InspectInfo{};
  out_info.file_size = file->size;

  if (file->size < kHeaderBytes) {
    throw ValueError("artifact: '" + path + "' is too small to be an "
                     "artifact (" + std::to_string(file->size) + " bytes)");
  }
  ByteReader header(file->data, kHeaderBytes, "header of '" + path + "'");
  const uint32_t magic = header.U32();
  if (magic != kMagic) {
    throw ValueError("artifact: '" + path +
                     "' is not an AutoGraph artifact (bad magic)");
  }
  const uint32_t version = header.U32();
  out_info.format_version = version;
  if (version != kFormatVersion) {
    throw ValueError(
        "artifact: '" + path + "' uses format version " +
        std::to_string(version) + ", but this build only reads version " +
        std::to_string(kFormatVersion) +
        " — recompile the artifact with this build's agc");
  }
  header.U32();  // flags (reserved)
  const uint32_t section_count = header.U32();
  const uint64_t declared_size = header.U64();
  const uint32_t table_crc = header.U32();
  if (declared_size != file->size) {
    throw ValueError("artifact: '" + path + "' is truncated: header "
                     "declares " + std::to_string(declared_size) +
                     " bytes, file has " + std::to_string(file->size));
  }
  if (section_count == 0 || section_count > 4096) {
    throw ValueError("artifact: '" + path + "' has an implausible section "
                     "count (" + std::to_string(section_count) + ")");
  }
  const uint64_t table_bytes =
      static_cast<uint64_t>(section_count) * kSectionEntryBytes;
  if (kHeaderBytes + table_bytes > file->size) {
    throw ValueError("artifact: '" + path +
                     "' section table extends past end of file");
  }
  if (options.verify_checksums &&
      Crc32c(file->data + kHeaderBytes, table_bytes) != table_crc) {
    throw ValueError("artifact: '" + path +
                     "' section table checksum mismatch (corrupted file)");
  }

  ByteReader table(file->data + kHeaderBytes, table_bytes,
                   "section table of '" + path + "'");
  std::map<uint32_t, SectionView> views;
  for (uint32_t i = 0; i < section_count; ++i) {
    SectionInfo s;
    s.id = table.U32();
    s.crc = table.U32();
    s.offset = table.U64();
    s.size = table.U64();
    s.name = SectionName(s.id);
    if (s.offset < kHeaderBytes + table_bytes || s.offset > file->size ||
        s.size > file->size - s.offset) {
      throw ValueError("artifact: '" + path + "' section '" + s.name +
                       "' extends past end of file");
    }
    s.crc_ok = !options.verify_checksums ||
               Crc32c(file->data + s.offset, s.size) == s.crc;
    out_info.sections.push_back(s);
    if (!s.crc_ok) {
      throw ValueError("artifact: '" + path + "' section '" + s.name +
                       "' checksum mismatch (corrupted file)");
    }
    if (!views.emplace(s.id, SectionView{file->data + s.offset, s.size})
             .second) {
      throw ValueError("artifact: '" + path + "' has a duplicate '" +
                       s.name + "' section");
    }
  }
  for (const SectionId required :
       {SectionId::kMeta, SectionId::kGraphs, SectionId::kPlans,
        SectionId::kVariables, SectionId::kTensorData}) {
    if (views.count(static_cast<uint32_t>(required)) == 0) {
      throw ValueError("artifact: '" + path + "' is missing the '" +
                       SectionName(static_cast<uint32_t>(required)) +
                       "' section");
    }
  }

  const SectionView meta_view = views.at(static_cast<uint32_t>(SectionId::kMeta));
  const SectionView graphs_view =
      views.at(static_cast<uint32_t>(SectionId::kGraphs));
  const SectionView plans_view =
      views.at(static_cast<uint32_t>(SectionId::kPlans));
  const SectionView vars_view =
      views.at(static_cast<uint32_t>(SectionId::kVariables));
  const SectionView tensor_view =
      views.at(static_cast<uint32_t>(SectionId::kTensorData));
  out_info.tensor_bytes = tensor_view.size;

  TensorSource tensors;
  tensors.base = tensor_view.data;
  tensors.size = tensor_view.size;
  if (options.map_tensors) tensors.owner = file;

  ArtifactModule module;

  ByteReader meta(meta_view.data, meta_view.size, "meta section");
  module.producer = meta.Str();
  module.source_path = meta.Str();
  module.pipeline = meta.Str();
  out_info.producer = module.producer;
  out_info.source_path = module.source_path;
  out_info.pipeline = module.pipeline;
  const uint32_t num_functions = meta.Count(4);
  std::vector<std::string> meta_names;
  meta_names.reserve(num_functions);
  for (uint32_t i = 0; i < num_functions; ++i) {
    meta_names.push_back(meta.Str());
  }

  ByteReader graphs(graphs_view.data, graphs_view.size, "graphs section");
  if (graphs.Count(4) != num_functions) {
    graphs.Fail("function count disagrees with the meta section");
  }
  std::vector<GraphTable> tables(num_functions);
  for (uint32_t i = 0; i < num_functions; ++i) {
    ArtifactFunction fn;
    fn.name = graphs.Str();
    if (fn.name != meta_names[i]) {
      graphs.Fail("function name '" + fn.name +
                  "' disagrees with the meta section ('" + meta_names[i] +
                  "')");
    }
    ReadGraphTable(graphs, fn, tables[i], tensors);
    module.functions.push_back(std::move(fn));
  }

  ByteReader plans(plans_view.data, plans_view.size, "plans section");
  if (plans.Count(4) != num_functions) {
    plans.Fail("function count disagrees with the meta section");
  }
  for (uint32_t i = 0; i < num_functions; ++i) {
    ArtifactFunction& fn = module.functions[i];
    fn.top_plan = ReadPlan(plans, tables[i]);
    CheckPlanMatchesReturns(plans, fn.top_plan, fn.fetches,
                            "function '" + fn.name + "' top plan");
    for (const auto& ret : fn.top_plan.returns) {
      if (ret.step < 0) {
        plans.Fail("function '" + fn.name +
                   "' top plan returns a function argument");
      }
    }
    const uint32_t num_sub = plans.Count(8);
    for (uint32_t s = 0; s < num_sub; ++s) {
      const uint32_t gi = plans.U32();
      if (gi >= tables[i].graphs.size()) {
        plans.Fail("sub-plan graph index out of range");
      }
      auto* fg = dynamic_cast<FuncGraph*>(tables[i].graphs[gi].get());
      if (fg == nullptr) {
        plans.Fail("sub-plan attached to a non-function graph");
      }
      for (const auto& [existing, plan] : fn.sub_plans) {
        if (existing == fg) plans.Fail("duplicate sub-plan for one graph");
      }
      Session::Plan plan = ReadPlan(plans, tables[i]);
      CheckPlanMatchesReturns(plans, plan, fg->returns,
                              "function '" + fn.name + "' sub-plan " +
                                  std::to_string(s));
      fn.sub_plans.emplace_back(fg, std::move(plan));
    }
  }

  ByteReader vars(vars_view.data, vars_view.size, "variables section");
  if (vars.Count(4) != num_functions) {
    vars.Fail("function count disagrees with the meta section");
  }
  for (uint32_t i = 0; i < num_functions; ++i) {
    const uint32_t num_vars = vars.Count(8);
    for (uint32_t v = 0; v < num_vars; ++v) {
      std::string name = vars.Str();
      Tensor value = ReadTensorRef(vars, tensors);
      module.functions[i].variables.emplace(std::move(name),
                                            std::move(value));
    }
  }

  // Inspection record before the (optional) semantic verification so
  // `agc inspect` can describe even artifacts that fail AGV checks.
  for (uint32_t i = 0; i < num_functions; ++i) {
    const ArtifactFunction& fn = module.functions[i];
    FunctionInfo fi;
    fi.name = fn.name;
    fi.feeds = fn.feed_names.size();
    fi.graphs = tables[i].graphs.size();
    for (const auto& g : tables[i].graphs) fi.nodes += g->num_nodes();
    fi.top_plan_steps = fn.top_plan.steps.size();
    fi.sub_plans = fn.sub_plans.size();
    for (const auto& [g, p] : fn.sub_plans) {
      fi.sub_plan_steps += p.steps.size();
    }
    fi.variables = fn.variables.size();
    out_info.functions.push_back(fi);
  }

  if (options.verify) {
    for (const ArtifactFunction& fn : module.functions) {
      const auto graph_findings =
          verify::VerifyGraphAndRoots(*fn.graph, fn.fetches);
      if (!graph_findings.empty()) {
        throw ValueError("artifact: loaded graph for function '" + fn.name +
                         "' failed verification (" +
                         std::to_string(graph_findings.size()) +
                         " finding(s)):\n" +
                         verify::FormatFindings(graph_findings));
      }
      verify::PlanVerifyOptions top_opts;
      top_opts.allow_args = false;
      const auto top_findings = verify::VerifyPlan(fn.top_plan, top_opts);
      if (!top_findings.empty()) {
        throw ValueError("artifact: loaded top plan for function '" +
                         fn.name + "' failed verification (" +
                         std::to_string(top_findings.size()) +
                         " finding(s)):\n" +
                         verify::FormatFindings(top_findings));
      }
      for (size_t s = 0; s < fn.sub_plans.size(); ++s) {
        verify::PlanVerifyOptions sub_opts;
        sub_opts.allow_args = true;
        const auto findings =
            verify::VerifyPlan(fn.sub_plans[s].second, sub_opts);
        if (!findings.empty()) {
          throw ValueError("artifact: loaded sub-plan " + std::to_string(s) +
                           " for function '" + fn.name +
                           "' failed verification (" +
                           std::to_string(findings.size()) +
                           " finding(s)):\n" +
                           verify::FormatFindings(findings));
        }
      }
    }
  }

  return module;
}

}  // namespace ag::artifact
