// .agc writer — serializes an ArtifactModule into the container format
// described in artifact.h. Layout decisions that matter:
//   - Graphs are written in pre-order (outer before subgraphs), nodes in
//     creation order: input references are always backward, so the
//     reader can rebuild each graph in one pass and reject forward
//     references outright.
//   - Tensor payloads are interned by buffer identity (aliased weights
//     serialize once) into one section written LAST with every payload
//     64-byte aligned — the precondition for the reader's zero-copy
//     mmap path.
//   - Plans serialize the compiled Step structure verbatim (kind, input
//     refs, move flags, deduped successors, pending counts, args_used)
//     so the loader installs them without re-running CompilePlan; only
//     kernel pointers are re-resolved at load (they are process-local).
#include <fstream>
#include <map>
#include <unordered_map>
#include <utility>
#include <vector>

#include "artifact/artifact.h"
#include "artifact/bytes.h"
#include "artifact/crc32c.h"
#include "support/error.h"

namespace ag::artifact {

const char* SectionName(uint32_t id) {
  switch (static_cast<SectionId>(id)) {
    case SectionId::kMeta:
      return "meta";
    case SectionId::kGraphs:
      return "graphs";
    case SectionId::kPlans:
      return "plans";
    case SectionId::kVariables:
      return "variables";
    case SectionId::kTensorData:
      return "tensors";
  }
  return "unknown";
}

namespace {

// Pre-order registry of one function's graphs and their nodes. Both the
// graphs section and the plans section encode (graph index, node index)
// pairs against this numbering, so writer and reader agree by
// construction.
struct GraphIndexer {
  std::vector<const graph::Graph*> graphs;
  std::unordered_map<const graph::Graph*, uint32_t> graph_index;
  // node -> (graph index, node index within that graph)
  std::unordered_map<const graph::Node*, std::pair<uint32_t, uint32_t>> nodes;

  void Add(const graph::Graph* g) {
    if (!graph_index.emplace(g, static_cast<uint32_t>(graphs.size()))
             .second) {
      return;
    }
    graphs.push_back(g);
    const uint32_t gi = graph_index.at(g);
    const auto& owned = g->nodes();
    for (uint32_t ni = 0; ni < owned.size(); ++ni) {
      nodes.emplace(owned[ni].get(), std::make_pair(gi, ni));
    }
    for (const auto& node : owned) {
      for (const auto& [key, attr] : node->attrs()) {
        if (const auto* sub =
                std::get_if<std::shared_ptr<graph::Graph>>(&attr)) {
          Add(sub->get());
        }
      }
    }
  }

  [[nodiscard]] std::pair<uint32_t, uint32_t> IndexOf(
      const graph::Node* node) const {
    auto it = nodes.find(node);
    if (it == nodes.end()) {
      throw InternalError(
          "artifact: node '" + node->name() +
          "' is not owned by any graph of the function being serialized");
    }
    return it->second;
  }
};

// Interns tensor payloads into the (future) tensor-data section,
// deduplicating by buffer identity so aliased tensors serialize once.
struct PayloadPool {
  ByteWriter blob;
  std::map<std::pair<const float*, int64_t>, uint64_t> offsets;

  uint64_t Intern(const Tensor& t) {
    const std::pair<const float*, int64_t> key{t.data(), t.num_elements()};
    auto it = offsets.find(key);
    if (it != offsets.end()) return it->second;
    blob.PadTo(kTensorAlignment);
    const uint64_t offset = blob.size();
    blob.Bytes(t.data(),
               static_cast<size_t>(t.num_elements()) * sizeof(float));
    offsets.emplace(key, offset);
    return offset;
  }
};

void WriteTensorRef(ByteWriter& w, const Tensor& t, PayloadPool& pool) {
  w.U8(static_cast<uint8_t>(t.dtype()));
  const auto& dims = t.shape().dims();
  w.U32(static_cast<uint32_t>(dims.size()));
  for (int64_t d : dims) w.I64(d);
  w.I64(t.num_elements());
  w.U64(pool.Intern(t));
}

void WriteOutputRef(ByteWriter& w, const graph::Output& out,
                    const GraphIndexer& ix) {
  const auto [gi, ni] = ix.IndexOf(out.node);
  w.U32(gi);
  w.U32(ni);
  w.I32(out.index);
}

void WriteNode(ByteWriter& w, const graph::Node& node,
               const GraphIndexer& ix, uint32_t graph_index,
               PayloadPool& pool) {
  w.Str(node.name());
  w.Str(node.op());
  w.U32(static_cast<uint32_t>(node.num_outputs()));
  w.U32(static_cast<uint32_t>(node.inputs().size()));
  for (const graph::Output& in : node.inputs()) {
    const auto [gi, ni] = ix.IndexOf(in.node);
    if (gi != graph_index) {
      throw InternalError("artifact: node '" + node.name() +
                          "' has a cross-graph input (graph invariant "
                          "AGV102 violated before save)");
    }
    w.U32(ni);
    w.I32(in.index);
  }
  for (int i = 0; i < node.num_outputs(); ++i) {
    w.U8(static_cast<uint8_t>(node.output_dtype(i)));
    w.U8(node.output_is_list(i) ? 1 : 0);
  }
  w.U32(static_cast<uint32_t>(node.attrs().size()));
  for (const auto& [key, attr] : node.attrs()) {
    w.Str(key);
    if (const auto* v = std::get_if<int64_t>(&attr)) {
      w.U8(0);
      w.I64(*v);
    } else if (const auto* d = std::get_if<double>(&attr)) {
      w.U8(1);
      w.F64(*d);
    } else if (const auto* s = std::get_if<std::string>(&attr)) {
      w.U8(2);
      w.Str(*s);
    } else if (const auto* t = std::get_if<Tensor>(&attr)) {
      w.U8(3);
      WriteTensorRef(w, *t, pool);
    } else if (const auto* dt = std::get_if<DType>(&attr)) {
      w.U8(4);
      w.U8(static_cast<uint8_t>(*dt));
    } else if (const auto* sub =
                   std::get_if<std::shared_ptr<graph::Graph>>(&attr)) {
      w.U8(5);
      w.U32(ix.graph_index.at(sub->get()));
    } else if (const auto* ints = std::get_if<std::vector<int>>(&attr)) {
      w.U8(6);
      w.U32(static_cast<uint32_t>(ints->size()));
      for (int v : *ints) w.I32(v);
    } else {
      throw InternalError("artifact: attr '" + key + "' of node '" +
                          node.name() + "' has an unserializable type");
    }
  }
}

void WriteGraphTable(ByteWriter& w, const ArtifactFunction& fn,
                     const GraphIndexer& ix, PayloadPool& pool) {
  w.Str(fn.name);
  w.U32(static_cast<uint32_t>(fn.feed_names.size()));
  for (const std::string& name : fn.feed_names) w.Str(name);
  w.U8(fn.fetch_was_tuple ? 1 : 0);
  w.U32(static_cast<uint32_t>(ix.graphs.size()));
  for (uint32_t gi = 0; gi < ix.graphs.size(); ++gi) {
    const graph::Graph* g = ix.graphs[gi];
    const auto* fg = dynamic_cast<const graph::FuncGraph*>(g);
    w.U8(fg != nullptr ? 1 : 0);
    if (fg != nullptr) w.I32(fg->num_explicit_args());
    w.U32(static_cast<uint32_t>(g->nodes().size()));
    for (const auto& node : g->nodes()) {
      WriteNode(w, *node, ix, gi, pool);
    }
    if (fg != nullptr) {
      w.U32(static_cast<uint32_t>(fg->captures.size()));
      for (const graph::Output& c : fg->captures) WriteOutputRef(w, c, ix);
      w.U32(static_cast<uint32_t>(fg->capture_args.size()));
      for (const graph::Node* arg : fg->capture_args) {
        const auto [agi, ani] = ix.IndexOf(arg);
        if (agi != gi) {
          throw InternalError(
              "artifact: capture Arg outside its own subgraph");
        }
        w.U32(ani);
      }
      w.U32(static_cast<uint32_t>(fg->returns.size()));
      for (const graph::Output& r : fg->returns) WriteOutputRef(w, r, ix);
    }
  }
  w.U32(static_cast<uint32_t>(fn.fetches.size()));
  for (const graph::Output& f : fn.fetches) WriteOutputRef(w, f, ix);
}

void WritePlan(ByteWriter& w, const exec::Session::Plan& plan,
               const GraphIndexer& ix) {
  w.U32(static_cast<uint32_t>(plan.steps.size()));
  for (const auto& step : plan.steps) {
    const auto [gi, ni] = ix.IndexOf(step.node);
    w.U32(gi);
    w.U32(ni);
    w.U8(static_cast<uint8_t>(step.kind));
    w.U32(static_cast<uint32_t>(step.inputs.size()));
    for (const auto& in : step.inputs) {
      w.I32(in.step);
      w.I32(in.output);
    }
    if (step.input_move.size() != step.inputs.size()) {
      throw InternalError("artifact: plan step move flags out of sync");
    }
    for (uint8_t m : step.input_move) w.U8(m);
    w.U32(static_cast<uint32_t>(step.successors.size()));
    for (int s : step.successors) w.I32(s);
    w.I32(step.pending_init);
  }
  w.U32(static_cast<uint32_t>(plan.returns.size()));
  for (const auto& r : plan.returns) {
    w.I32(r.step);
    w.I32(r.output);
  }
  if (plan.returns_move.size() != plan.returns.size()) {
    throw InternalError("artifact: plan returns_move out of sync");
  }
  for (uint8_t m : plan.returns_move) w.U8(m);
  w.U32(static_cast<uint32_t>(plan.args_used.size()));
  for (char b : plan.args_used) w.U8(static_cast<uint8_t>(b));
}

}  // namespace

void WriteArtifact(const std::string& path, const ArtifactModule& module) {
  // Per-function graph numbering, shared by the graphs/plans/variables
  // encoders.
  std::vector<GraphIndexer> indexers(module.functions.size());
  for (size_t i = 0; i < module.functions.size(); ++i) {
    if (module.functions[i].graph == nullptr) {
      throw InternalError("artifact: function '" + module.functions[i].name +
                          "' has no graph");
    }
    indexers[i].Add(module.functions[i].graph.get());
  }

  PayloadPool pool;

  ByteWriter meta;
  meta.Str(module.producer);
  meta.Str(module.source_path);
  meta.Str(module.pipeline);
  meta.U32(static_cast<uint32_t>(module.functions.size()));
  for (const ArtifactFunction& fn : module.functions) meta.Str(fn.name);

  ByteWriter graphs;
  graphs.U32(static_cast<uint32_t>(module.functions.size()));
  for (size_t i = 0; i < module.functions.size(); ++i) {
    WriteGraphTable(graphs, module.functions[i], indexers[i], pool);
  }

  ByteWriter plans;
  plans.U32(static_cast<uint32_t>(module.functions.size()));
  for (size_t i = 0; i < module.functions.size(); ++i) {
    const ArtifactFunction& fn = module.functions[i];
    WritePlan(plans, fn.top_plan, indexers[i]);
    plans.U32(static_cast<uint32_t>(fn.sub_plans.size()));
    for (const auto& [sub_graph, plan] : fn.sub_plans) {
      auto it = indexers[i].graph_index.find(sub_graph);
      if (it == indexers[i].graph_index.end()) {
        throw InternalError("artifact: sub-plan for a graph outside "
                            "function '" + fn.name + "'");
      }
      plans.U32(it->second);
      WritePlan(plans, plan, indexers[i]);
    }
  }

  ByteWriter variables;
  variables.U32(static_cast<uint32_t>(module.functions.size()));
  for (const ArtifactFunction& fn : module.functions) {
    variables.U32(static_cast<uint32_t>(fn.variables.size()));
    for (const auto& [name, value] : fn.variables) {
      variables.Str(name);
      WriteTensorRef(variables, value, pool);
    }
  }

  // Assemble: header + table + sections, tensor data last and 64-byte
  // aligned so the reader can hand out zero-copy views into a mapping.
  struct Pending {
    uint32_t id;
    std::string bytes;
    size_t alignment;
  };
  std::vector<Pending> sections;
  sections.push_back({static_cast<uint32_t>(SectionId::kMeta), meta.Take(),
                      8});
  sections.push_back({static_cast<uint32_t>(SectionId::kGraphs),
                      graphs.Take(), 8});
  sections.push_back({static_cast<uint32_t>(SectionId::kPlans), plans.Take(),
                      8});
  sections.push_back({static_cast<uint32_t>(SectionId::kVariables),
                      variables.Take(), 8});
  sections.push_back({static_cast<uint32_t>(SectionId::kTensorData),
                      pool.blob.Take(), kTensorAlignment});

  const size_t table_offset = kHeaderBytes;
  size_t offset = table_offset + sections.size() * kSectionEntryBytes;
  ByteWriter table;
  ByteWriter body;
  for (const Pending& s : sections) {
    while (offset % s.alignment != 0) {
      body.U8(0);
      ++offset;
    }
    table.U32(s.id);
    table.U32(Crc32c(s.bytes.data(), s.bytes.size()));
    table.U64(offset);
    table.U64(s.bytes.size());
    body.Bytes(s.bytes.data(), s.bytes.size());
    offset += s.bytes.size();
  }

  ByteWriter header;
  header.U32(kMagic);
  header.U32(kFormatVersion);
  header.U32(0);  // flags
  header.U32(static_cast<uint32_t>(sections.size()));
  header.U64(offset);  // total file size
  header.U32(Crc32c(table.str().data(), table.str().size()));
  header.U32(0);  // pad to 32 bytes

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw ValueError("artifact: cannot open '" + path + "' for writing");
  }
  out.write(header.str().data(),
            static_cast<std::streamsize>(header.size()));
  out.write(table.str().data(), static_cast<std::streamsize>(table.size()));
  out.write(body.str().data(), static_cast<std::streamsize>(body.size()));
  out.flush();
  if (!out) {
    throw ValueError("artifact: short write to '" + path + "'");
  }
}

}  // namespace ag::artifact
