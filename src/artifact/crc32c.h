// CRC32C (Castagnoli) — the section checksum of the .agc artifact
// container. Software slicing-by-4 table implementation: fast enough
// that verifying every section (including multi-megabyte weight
// payloads) stays far below the staging cost the artifact amortizes.
#pragma once

#include <cstddef>
#include <cstdint>

namespace ag::artifact {

// CRC32C of `n` bytes. `seed` chains partial computations:
// Crc32c(b, n) == Crc32c(b + k, n - k, Crc32c(b, k)).
[[nodiscard]] uint32_t Crc32c(const void* data, size_t n, uint32_t seed = 0);

}  // namespace ag::artifact
