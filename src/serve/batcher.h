// Cross-request dynamic batching — stack, run once, scatter.
//
// Requests for the same staged function whose feeds agree on dtype and
// trailing dims are coalesced: each feed position is stacked along dim
// 0 (a request's rows become a contiguous block), the function runs
// ONCE on the stacked feeds, and each output is scattered back by row
// ranges.
//
// Bit-identity contract: this is only valid for row-wise functions —
// matmul, elementwise chains, anything where output row i depends only
// on input row i. For those, the stacked kernels perform the exact
// same float operations in the exact same order per row, so scattered
// results are bit-identical to unbatched runs (enforced in
// serve_test). Functions that reduce across dim 0 would silently mix
// requests; batching is therefore opt-in per server (--batch) and the
// scatter step cross-checks that output dim 0 equals the total batched
// rows, falling back to individual runs on mismatch.
#pragma once

#include <cstdint>
#include <vector>

#include "serve/admission.h"
#include "tensor/tensor.h"

namespace ag::serve {

// True when `b` may join a batch led by `a`: same function, same feed
// count, and every feed pair has the same dtype, rank >= 1, and equal
// trailing dims (dim 0 — the batch dim — may differ).
[[nodiscard]] bool BatchCompatible(const Request& a, const Request& b);

// Stacks feed position `feed_index` of all requests along dim 0.
[[nodiscard]] Tensor StackFeeds(const std::vector<Ticket>& group,
                                size_t feed_index);

// Row extents of each request's block in the stacked batch:
// request r owns rows [offsets[r], offsets[r] + rows[r]).
struct BatchLayout {
  std::vector<int64_t> offsets;
  std::vector<int64_t> rows;
  int64_t total_rows = 0;
};

[[nodiscard]] BatchLayout ComputeLayout(const std::vector<Ticket>& group);

// Slices rows [offset, offset + rows) of a stacked output back out.
// Throws Error(kValue) when the output's dim 0 is not the batch total
// (the function was not row-wise) — the caller falls back to
// per-request runs.
[[nodiscard]] Tensor SliceRows(const Tensor& stacked, int64_t offset,
                               int64_t rows, int64_t total_rows);

}  // namespace ag::serve
