// agserve wire protocol — length-prefixed binary frames over TCP.
//
// Every message is one frame: a little-endian u32 payload length
// followed by the payload (tensors are sent as their raw float storage;
// the protocol is host-endian and intended for same-architecture
// client/server pairs, like Triton's shared-memory fast path).
//
//   Request payload:
//     u8  kind            (1 = run, 2 = ping, 3 = shutdown)
//     u32 request_id      (echoed in the response; correlates pipelined
//                          requests on one connection)
//     u16 fn_len, bytes   (kRun only: staged function name)
//     i64 deadline_ms     (kRun only: relative client budget; the server
//                          stamps it into an absolute deadline at frame
//                          *read* time, so queue wait counts. 0 = none)
//     u32 num_feeds       (kRun only), then per feed:
//       u16 name_len, bytes  (may be empty: positional binding)
//       u8  dtype            (DType code)
//       u8  rank, i64 dims[rank]
//       f32 data[num_elements]
//
//   Response payload:
//     u8  status          (0 = ok, else ErrorKind + 1)
//     u32 request_id
//     ok:    u32 num_outputs, then tensors (feed encoding, empty names)
//     error: u16 msg_len, bytes
//
// Encode/Decode work on std::string buffers so they are unit-testable
// without sockets; ReadFrame/WriteFrame do the blocking fd I/O.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/error.h"
#include "tensor/tensor.h"

namespace ag::serve {

enum class MessageKind : uint8_t { kRun = 1, kPing = 2, kShutdown = 3 };

struct WireFeed {
  std::string name;  // empty = positional
  Tensor tensor;
};

struct WireRequest {
  MessageKind kind = MessageKind::kRun;
  uint32_t request_id = 0;
  std::string fn;
  int64_t deadline_ms = 0;
  std::vector<WireFeed> feeds;
};

struct WireResponse {
  uint32_t request_id = 0;
  bool ok = false;
  ErrorKind error_kind = ErrorKind::kInternal;
  std::string error_message;
  std::vector<Tensor> outputs;
};

[[nodiscard]] std::string EncodeRequest(const WireRequest& request);
[[nodiscard]] std::string EncodeResponse(const WireResponse& response);

// Throw Error(kValue) on malformed payloads (truncated, bad dtype code,
// oversized counts) — the server must survive garbage bytes.
[[nodiscard]] WireRequest DecodeRequest(const std::string& payload);
[[nodiscard]] WireResponse DecodeResponse(const std::string& payload);

// Blocking frame I/O over a connected socket. WriteFrame writes the
// length prefix + payload; ReadFrame reads one whole frame into
// `payload`, returning false on clean EOF before any byte of a frame.
// Both throw Error(kRuntime) on I/O errors or a frame longer than
// kMaxFrameBytes (a corrupt prefix must not trigger a giant allocation).
inline constexpr uint32_t kMaxFrameBytes = 256u * 1024u * 1024u;
bool ReadFrame(int fd, std::string* payload);
void WriteFrame(int fd, const std::string& payload);

}  // namespace ag::serve
