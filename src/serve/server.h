// agserve server — stage once, serve many.
//
// ServerCore is the transport-free heart: it stages every function of a
// PyMini module ONCE at startup (each staged function owns one
// exec::Session, safe for concurrent Run()) and then serves requests
// through an AdmissionQueue drained by a small pool of dispatch
// threads. This is the paper's economics applied to serving: all
// conversion/trace/optimize cost is paid at startup, each request pays
// only graph execution.
//
// Per request the dispatcher:
//   1. charges queue wait against the request's *absolute* deadline
//      (an expired request is rejected at pop, before any kernel);
//   2. optionally coalesces compatible queued requests into one
//      stacked batch (serve/batcher.h) and runs the function once;
//   3. runs under a RunPolicy so transient kDeadlineExceeded /
//      kCancelled interruptions retry against the same wall budget;
//   4. completes the ticket with outputs or a structured error, and
//      folds queue-wait/batch columns into the cumulative RunMetadata.
//
// TcpServer is the transport: an accept loop, one thread per
// connection, pipelined request_ids, and a per-connection
// CancellationSource whose token parents every request's source — a
// dropped connection cancels all of that connection's in-flight and
// queued work at the next poll.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/api.h"
#include "obs/run_metadata.h"
#include "serve/admission.h"
#include "serve/run_policy.h"

namespace ag::serve {

struct ServerOptions {
  int workers = 2;             // dispatch threads draining the queue
  size_t queue_depth = 256;    // admission bound; beyond it, shed load
  // Dynamic batching: coalesce up to max_batch compatible requests,
  // lingering up to batch_linger_us for stragglers. 1 = off.
  int max_batch = 1;
  int64_t batch_linger_us = 200;
  // Engine knobs applied to every served Run.
  int inter_op_threads = 0;
  int intra_op_threads = 0;
  // Retry policy for transient interruptions (default: no retry).
  RunPolicy policy;
};

struct ServeStats {
  int64_t submitted = 0;
  int64_t succeeded = 0;
  int64_t failed = 0;          // engine/validation errors incl. timeouts
  int64_t expired_in_queue = 0;
  int64_t cancelled_in_queue = 0;
  int64_t rejected_full = 0;
  int64_t batched_runs = 0;    // coalesced executions
  int64_t batch_requests = 0;  // requests served by those executions
  int64_t batch_size_max = 0;

  [[nodiscard]] std::string DebugString() const;
};

class ServerCore {
 public:
  explicit ServerCore(ServerOptions options);
  ~ServerCore();  // implies Stop()

  ServerCore(const ServerCore&) = delete;
  ServerCore& operator=(const ServerCore&) = delete;

  // Stages every top-level function of the module with one placeholder
  // per parameter. Functions are staged concurrently (they are
  // independent — each staging worker traces in its own AutoGraph), and
  // both registration and error reporting keep the deterministic
  // source order. Functions that fail to stage are skipped and
  // reported in `staging_errors()` — the server still serves the rest.
  // Must be called before Start().
  void LoadSource(const std::string& source, const std::string& path);

  // Loads pre-staged functions from an .agc compiled artifact
  // (core::StageFromArtifact): no parse/convert/trace/optimize/
  // CompilePlan work at startup, weights served zero-copy from the
  // file mapping. Throws Error(kValue) on a malformed artifact. Must be
  // called before Start().
  void LoadArtifact(const std::string& path);

  [[nodiscard]] std::vector<std::string> functions() const;
  [[nodiscard]] const std::vector<std::string>& staging_errors() const {
    return staging_errors_;
  }

  void Start();
  void Stop();

  // Asynchronous entry: always eventually invokes `done`, possibly
  // inline (rejection) or from a dispatch thread.
  void Submit(Request request, Completion done);

  // Synchronous convenience (tests, CLI --call): Submit + wait.
  Reply Call(Request request);

  [[nodiscard]] ServeStats stats() const;
  // Copy of the cumulative serving metadata (queue-wait/batch columns
  // plus every served run's counters merged in).
  [[nodiscard]] obs::RunMetadata metadata() const;

 private:
  void WorkerLoop();
  void ServeGroup(std::vector<Ticket> group);
  // Serves one ticket individually. `queue_wait_ns` was measured at
  // dispatch; `options` already carries the request's deadline/token.
  void ServeOne(Ticket ticket, int64_t dispatch_ns);
  [[nodiscard]] obs::RunOptions OptionsFor(const Request& request) const;
  void RecordOutcome(const Reply& reply, obs::RunMetadata run_meta);

  const ServerOptions options_;
  core::AutoGraph agc_;
  std::map<std::string, core::StagedFunction> fns_;
  std::vector<std::string> staging_errors_;

  AdmissionQueue queue_;
  std::vector<std::thread> workers_;
  bool started_ = false;

  mutable std::mutex stats_mu_;
  ServeStats stats_;
  obs::RunMetadata meta_;
};

// Length-prefixed TCP transport over a ServerCore (protocol.h framing).
class TcpServer {
 public:
  // port 0 = ephemeral; the bound port is available from port() after
  // Start(). Listens on 127.0.0.1 only.
  TcpServer(ServerCore* core, uint16_t port);
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  void Start();
  void Stop();
  // Blocks until a client sends kShutdown (or Stop() is called).
  void WaitForShutdown();

  [[nodiscard]] uint16_t port() const { return port_; }

 private:
  struct Conn;  // shared write-side state, defined in server.cc

  void AcceptLoop();
  void ServeConnection(std::shared_ptr<Conn> conn);

  ServerCore* const core_;
  uint16_t port_;
  int listen_fd_ = -1;
  std::thread accept_thread_;
  std::mutex conn_mu_;
  std::vector<std::thread> conn_threads_;
  std::vector<std::weak_ptr<Conn>> conns_;
  std::atomic<bool> stopping_{false};
  std::mutex shutdown_mu_;
  std::condition_variable shutdown_cv_;
  bool shutdown_requested_ = false;
};

}  // namespace ag::serve
