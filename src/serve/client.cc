#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <utility>

#include "support/error.h"

namespace ag::serve {

Client::Client(uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw RuntimeError(std::string("agserve client: socket failed: ") +
                       std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const std::string why = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    throw RuntimeError("agserve client: cannot connect to 127.0.0.1:" +
                       std::to_string(port) + ": " + why);
  }
  // Requests are single small frames; don't let Nagle hold them back.
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Client::Client(Client&& other) noexcept
    : fd_(other.fd_), next_id_(other.next_id_) {
  other.fd_ = -1;
}

WireResponse Client::Call(const std::string& fn, std::vector<Tensor> feeds,
                          int64_t deadline_ms) {
  WireRequest request;
  request.kind = MessageKind::kRun;
  request.request_id = next_id_++;
  request.fn = fn;
  request.deadline_ms = deadline_ms;
  request.feeds.reserve(feeds.size());
  for (Tensor& t : feeds) {
    request.feeds.push_back(WireFeed{"", std::move(t)});
  }
  WriteFrame(fd_, EncodeRequest(request));
  std::string payload;
  if (!ReadFrame(fd_, &payload)) {
    throw RuntimeError("agserve client: server closed the connection");
  }
  return DecodeResponse(payload);
}

bool Client::Ping() {
  WireRequest request;
  request.kind = MessageKind::kPing;
  request.request_id = next_id_++;
  WriteFrame(fd_, EncodeRequest(request));
  std::string payload;
  if (!ReadFrame(fd_, &payload)) return false;
  return DecodeResponse(payload).ok;
}

bool Client::RequestShutdown() {
  WireRequest request;
  request.kind = MessageKind::kShutdown;
  request.request_id = next_id_++;
  WriteFrame(fd_, EncodeRequest(request));
  std::string payload;
  if (!ReadFrame(fd_, &payload)) return false;
  return DecodeResponse(payload).ok;
}

void Client::Drop() {
  // shutdown() only: it poisons the socket and wakes any thread blocked
  // in Call()'s read. close() must wait for the destructor — closing
  // here would free the fd number for reuse while that reader is still
  // blocked on it.
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

}  // namespace ag::serve
