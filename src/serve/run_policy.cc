#include "serve/run_policy.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "obs/trace.h"
#include "runtime/cancellation.h"

namespace ag::serve {

namespace {

bool Retryable(const Error& e) {
  return e.kind() == ErrorKind::kDeadlineExceeded ||
         e.kind() == ErrorKind::kCancelled;
}

}  // namespace

void RunWithPolicy(const RunPolicy& policy, const obs::RunOptions& base,
                   const std::function<void(const obs::RunOptions&)>& attempt,
                   PolicyOutcome* outcome) {
  // Convert the budget to an absolute instant ONCE — this is the whole
  // point. deadline_ms would re-arm per attempt; deadline_ns cannot.
  obs::RunOptions options = base;
  options.deadline_ms = 0;
  int64_t budget_deadline_ns = options.deadline_ns;
  if (policy.total_budget_ms > 0) {
    const int64_t from_budget =
        obs::NowNs() + policy.total_budget_ms * 1000000;
    if (budget_deadline_ns == 0 || from_budget < budget_deadline_ns) {
      budget_deadline_ns = from_budget;
    }
  }
  if (base.deadline_ms > 0) {
    const int64_t from_relative = obs::NowNs() + base.deadline_ms * 1000000;
    if (budget_deadline_ns == 0 || from_relative < budget_deadline_ns) {
      budget_deadline_ns = from_relative;
    }
  }
  options.deadline_ns = budget_deadline_ns;
  if (outcome != nullptr) outcome->budget_deadline_ns = budget_deadline_ns;

  const int max_attempts = std::max(1, policy.max_attempts);
  int64_t backoff_ms = std::max<int64_t>(1, policy.initial_backoff_ms);
  for (int i = 1;; ++i) {
    if (outcome != nullptr) outcome->attempts = i;
    try {
      attempt(options);
      return;
    } catch (const Error& e) {
      if (!Retryable(e) || i >= max_attempts) throw;
      // A cancelled token means the caller is gone — retrying would
      // run work nobody can receive.
      if (options.cancel_token != nullptr &&
          options.cancel_token->IsCancelled()) {
        throw;
      }
      if (budget_deadline_ns > 0) {
        const int64_t left_ns = budget_deadline_ns - obs::NowNs();
        if (left_ns <= 0) throw;  // budget gone: the failure stands
        // Clamp the sleep so backoff never outlives the budget. The
        // clamp is in nanoseconds: truncating to whole milliseconds
        // turns a sub-millisecond remainder into a zero-length sleep,
        // and the loop would busy-spin attempts through the budget's
        // final fraction of a millisecond instead of expiring.
        const int64_t sleep_ns = std::min(backoff_ms * 1000000, left_ns);
        std::this_thread::sleep_for(std::chrono::nanoseconds(sleep_ns));
      } else {
        std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
      }
      backoff_ms = static_cast<int64_t>(
          static_cast<double>(backoff_ms) *
          std::max(1.0, policy.backoff_multiplier));
    }
  }
}

}  // namespace ag::serve
