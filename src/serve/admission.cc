#include "serve/admission.h"

#include <chrono>
#include <utility>

#include "obs/trace.h"

namespace ag::serve {

namespace {

Reply Interrupted(ErrorKind kind, std::string message, int64_t wait_ns) {
  Reply reply;
  reply.ok = false;
  reply.error_kind = kind;
  reply.error_message = std::move(message);
  reply.queue_wait_ns = wait_ns;
  return reply;
}

}  // namespace

bool AdmissionQueue::Push(Ticket ticket) {
  ticket.request.enqueue_ns = obs::NowNs();
  const char* reject_reason = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!shutdown_ && queue_.size() < max_depth_) {
      queue_.push_back(std::move(ticket));
      cv_.notify_one();
      return true;
    }
    reject_reason = shutdown_ ? "server shutting down"
                              : "admission queue full";
    ++rejected_full_;
  }
  // Reject outside the lock: completions may do socket writes.
  ticket.done(Interrupted(ErrorKind::kRuntime, reject_reason, 0));
  return false;
}

bool AdmissionQueue::CompleteIfDead(Ticket* ticket, int64_t now_ns) {
  const Request& req = ticket->request;
  const int64_t wait_ns = now_ns - req.enqueue_ns;
  if (req.cancel.IsCancelled()) {
    ++cancelled_;
    ticket->done(Interrupted(
        ErrorKind::kCancelled,
        "run cancelled before dispatch: " + req.cancel.reason(), wait_ns));
    return true;
  }
  if (req.deadline_ns > 0 && now_ns >= req.deadline_ns) {
    ++expired_;
    ticket->done(Interrupted(
        ErrorKind::kDeadlineExceeded,
        "deadline expired in admission queue (" +
            std::to_string((now_ns - req.deadline_ns) / 1000000) +
            " ms past it, waited " + std::to_string(wait_ns / 1000000) +
            " ms)",
        wait_ns));
    return true;
  }
  return false;
}

bool AdmissionQueue::Pop(Ticket* out) {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    cv_.wait(lock, [&] { return shutdown_ || !queue_.empty(); });
    while (!queue_.empty()) {
      Ticket ticket = std::move(queue_.front());
      queue_.pop_front();
      // Dead-on-arrival filtering happens outside the lock — the
      // completion callback may block on a socket write.
      lock.unlock();
      if (!CompleteIfDead(&ticket, obs::NowNs())) {
        *out = std::move(ticket);
        return true;
      }
      lock.lock();
    }
    if (shutdown_) return false;
  }
}

bool AdmissionQueue::PopGroup(
    std::vector<Ticket>* out, int max_batch, int64_t linger_us,
    const std::function<bool(const Request&, const Request&)>& compatible) {
  out->clear();
  Ticket leader;
  if (!Pop(&leader)) return false;
  out->push_back(std::move(leader));
  if (max_batch <= 1) return true;

  const int64_t linger_until_ns = obs::NowNs() + linger_us * 1000;
  std::unique_lock<std::mutex> lock(mu_);
  while (static_cast<int>(out->size()) < max_batch) {
    // Claim the first compatible queued ticket; incompatible ones keep
    // their position for the next group. Dead tickets are completed
    // outside the lock and the scan restarts from the (new) front.
    bool progressed = false;
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (!compatible(out->front().request, it->request)) continue;
      Ticket ticket = std::move(*it);
      queue_.erase(it);
      lock.unlock();
      const bool dead = CompleteIfDead(&ticket, obs::NowNs());
      if (!dead) out->push_back(std::move(ticket));
      lock.lock();
      progressed = true;  // erase invalidated `it` — always rescan
      break;
    }
    if (progressed) continue;
    // Nothing compatible queued right now — linger for arrivals.
    const int64_t now_ns = obs::NowNs();
    if (shutdown_ || linger_us <= 0 || now_ns >= linger_until_ns) break;
    cv_.wait_for(lock,
                 std::chrono::nanoseconds(linger_until_ns - now_ns));
  }
  return true;
}

void AdmissionQueue::Shutdown() {
  std::deque<Ticket> drained;
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
    drained.swap(queue_);
    cv_.notify_all();
  }
  for (Ticket& ticket : drained) {
    ticket.done(Interrupted(ErrorKind::kRuntime, "server shutting down",
                            obs::NowNs() - ticket.request.enqueue_ns));
  }
}

size_t AdmissionQueue::depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

}  // namespace ag::serve
