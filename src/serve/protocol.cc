#include "serve/protocol.h"

#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace ag::serve {

namespace {

// Append/read little-endian scalars through memcpy (alignment-safe; the
// container targets little-endian hosts, see the header contract).
template <typename T>
void Put(std::string* out, T value) {
  char bytes[sizeof(T)];
  std::memcpy(bytes, &value, sizeof(T));
  out->append(bytes, sizeof(T));
}

// Bounds-checked cursor over a decode buffer.
struct Reader {
  const std::string& buf;
  size_t pos = 0;

  template <typename T>
  T Get() {
    if (buf.size() - pos < sizeof(T)) {
      throw ValueError("agserve protocol: truncated frame (need " +
                       std::to_string(sizeof(T)) + " bytes at offset " +
                       std::to_string(pos) + " of " +
                       std::to_string(buf.size()) + ")");
    }
    T value;
    std::memcpy(&value, buf.data() + pos, sizeof(T));
    pos += sizeof(T);
    return value;
  }

  std::string GetString(size_t len) {
    if (buf.size() - pos < len) {
      throw ValueError("agserve protocol: truncated string of length " +
                       std::to_string(len) + " at offset " +
                       std::to_string(pos));
    }
    std::string s = buf.substr(pos, len);
    pos += len;
    return s;
  }
};

void PutTensor(std::string* out, const Tensor& t) {
  Put<uint8_t>(out, static_cast<uint8_t>(t.dtype()));
  Put<uint8_t>(out, static_cast<uint8_t>(t.rank()));
  for (int64_t dim : t.shape().dims()) Put<int64_t>(out, dim);
  out->append(reinterpret_cast<const char*>(t.data()),
              static_cast<size_t>(t.num_elements()) * sizeof(float));
}

Tensor GetTensor(Reader* r) {
  const auto dtype_code = r->Get<uint8_t>();
  if (dtype_code > static_cast<uint8_t>(DType::kInt8)) {
    throw ValueError("agserve protocol: unknown dtype code " +
                     std::to_string(dtype_code));
  }
  const auto rank = r->Get<uint8_t>();
  std::vector<int64_t> dims;
  dims.reserve(rank);
  const int64_t max_elements =
      static_cast<int64_t>(kMaxFrameBytes / sizeof(float));
  int64_t elements = 1;
  for (int i = 0; i < rank; ++i) {
    const auto dim = r->Get<int64_t>();
    if (dim < 0 || dim > max_elements ||
        (dim > 0 && elements > max_elements / dim)) {
      throw ValueError("agserve protocol: implausible tensor dimension " +
                       std::to_string(dim));
    }
    elements *= dim;
    dims.push_back(dim);
  }
  std::vector<float> values(static_cast<size_t>(elements));
  const std::string raw =
      r->GetString(static_cast<size_t>(elements) * sizeof(float));
  std::memcpy(values.data(), raw.data(), raw.size());
  return Tensor::FromVector(std::move(values), Shape(std::move(dims)),
                            static_cast<DType>(dtype_code));
}

}  // namespace

std::string EncodeRequest(const WireRequest& request) {
  std::string out;
  Put<uint8_t>(&out, static_cast<uint8_t>(request.kind));
  Put<uint32_t>(&out, request.request_id);
  if (request.kind != MessageKind::kRun) return out;
  Put<uint16_t>(&out, static_cast<uint16_t>(request.fn.size()));
  out += request.fn;
  Put<int64_t>(&out, request.deadline_ms);
  Put<uint32_t>(&out, static_cast<uint32_t>(request.feeds.size()));
  for (const WireFeed& feed : request.feeds) {
    Put<uint16_t>(&out, static_cast<uint16_t>(feed.name.size()));
    out += feed.name;
    PutTensor(&out, feed.tensor);
  }
  return out;
}

std::string EncodeResponse(const WireResponse& response) {
  std::string out;
  Put<uint8_t>(&out, response.ok
                         ? uint8_t{0}
                         : static_cast<uint8_t>(response.error_kind) + 1);
  Put<uint32_t>(&out, response.request_id);
  if (response.ok) {
    Put<uint32_t>(&out, static_cast<uint32_t>(response.outputs.size()));
    for (const Tensor& t : response.outputs) PutTensor(&out, t);
  } else {
    Put<uint16_t>(&out,
                  static_cast<uint16_t>(response.error_message.size()));
    out += response.error_message;
  }
  return out;
}

WireRequest DecodeRequest(const std::string& payload) {
  Reader r{payload};
  WireRequest request;
  const auto kind = r.Get<uint8_t>();
  if (kind < 1 || kind > 3) {
    throw ValueError("agserve protocol: unknown request kind " +
                     std::to_string(kind));
  }
  request.kind = static_cast<MessageKind>(kind);
  request.request_id = r.Get<uint32_t>();
  if (request.kind != MessageKind::kRun) return request;
  request.fn = r.GetString(r.Get<uint16_t>());
  request.deadline_ms = r.Get<int64_t>();
  const auto num_feeds = r.Get<uint32_t>();
  if (num_feeds > 4096) {
    throw ValueError("agserve protocol: implausible feed count " +
                     std::to_string(num_feeds));
  }
  request.feeds.reserve(num_feeds);
  for (uint32_t i = 0; i < num_feeds; ++i) {
    WireFeed feed;
    feed.name = r.GetString(r.Get<uint16_t>());
    feed.tensor = GetTensor(&r);
    request.feeds.push_back(std::move(feed));
  }
  return request;
}

WireResponse DecodeResponse(const std::string& payload) {
  Reader r{payload};
  WireResponse response;
  const auto status = r.Get<uint8_t>();
  response.request_id = r.Get<uint32_t>();
  if (status == 0) {
    response.ok = true;
    const auto num_outputs = r.Get<uint32_t>();
    if (num_outputs > 4096) {
      throw ValueError("agserve protocol: implausible output count " +
                       std::to_string(num_outputs));
    }
    response.outputs.reserve(num_outputs);
    for (uint32_t i = 0; i < num_outputs; ++i) {
      response.outputs.push_back(GetTensor(&r));
    }
  } else {
    if (status - 1 > static_cast<uint8_t>(ErrorKind::kDeadlineExceeded)) {
      throw ValueError("agserve protocol: unknown status code " +
                       std::to_string(status));
    }
    response.ok = false;
    response.error_kind = static_cast<ErrorKind>(status - 1);
    response.error_message = r.GetString(r.Get<uint16_t>());
  }
  return response;
}

namespace {

bool ReadExactly(int fd, char* out, size_t n, bool* clean_eof) {
  size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, out + got, n - got);
    if (r == 0) {
      if (clean_eof != nullptr && got == 0) {
        *clean_eof = true;
        return false;
      }
      throw RuntimeError("agserve protocol: connection closed mid-frame");
    }
    if (r < 0) {
      if (errno == EINTR) continue;
      throw RuntimeError(std::string("agserve protocol: read failed: ") +
                         std::strerror(errno));
    }
    got += static_cast<size_t>(r);
  }
  return true;
}

}  // namespace

bool ReadFrame(int fd, std::string* payload) {
  uint32_t len = 0;
  bool clean_eof = false;
  if (!ReadExactly(fd, reinterpret_cast<char*>(&len), sizeof(len),
                   &clean_eof)) {
    return false;  // peer closed between frames
  }
  if (len > kMaxFrameBytes) {
    throw RuntimeError("agserve protocol: frame of " + std::to_string(len) +
                       " bytes exceeds the " +
                       std::to_string(kMaxFrameBytes) + " byte limit");
  }
  payload->resize(len);
  if (len > 0) ReadExactly(fd, payload->data(), len, nullptr);
  return true;
}

void WriteFrame(int fd, const std::string& payload) {
  const auto len = static_cast<uint32_t>(payload.size());
  std::string framed;
  framed.reserve(sizeof(len) + payload.size());
  framed.append(reinterpret_cast<const char*>(&len), sizeof(len));
  framed += payload;
  size_t sent = 0;
  while (sent < framed.size()) {
    const ssize_t w = ::write(fd, framed.data() + sent, framed.size() - sent);
    if (w < 0) {
      if (errno == EINTR) continue;
      throw RuntimeError(std::string("agserve protocol: write failed: ") +
                         std::strerror(errno));
    }
    sent += static_cast<size_t>(w);
  }
}

}  // namespace ag::serve
