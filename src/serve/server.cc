#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <optional>
#include <sstream>
#include <utility>

#include "core/artifact_io.h"
#include "lang/parser.h"
#include "obs/trace.h"
#include "serve/batcher.h"
#include "serve/protocol.h"

namespace ag::serve {

std::string ServeStats::DebugString() const {
  std::ostringstream os;
  os << "serve stats: submitted=" << submitted << " ok=" << succeeded
     << " failed=" << failed << " expired_in_queue=" << expired_in_queue
     << " cancelled_in_queue=" << cancelled_in_queue
     << " rejected_full=" << rejected_full;
  if (batched_runs > 0) {
    os << " batched_runs=" << batched_runs
       << " batch_requests=" << batch_requests
       << " batch_size_max=" << batch_size_max;
  }
  return os.str();
}

ServerCore::ServerCore(ServerOptions options)
    : options_(std::move(options)), queue_(options_.queue_depth) {}

ServerCore::~ServerCore() { Stop(); }

void ServerCore::LoadSource(const std::string& source,
                            const std::string& path) {
  agc_.LoadSource(source, path);
  const lang::ModulePtr module = lang::ParseStr(source, path);
  std::vector<std::string> names;
  for (const lang::StmtPtr& stmt : module->body) {
    if (stmt->kind != lang::StmtKind::kFunctionDef) continue;
    names.push_back(lang::Cast<lang::FunctionDefStmt>(stmt)->name);
  }

  // Top-level functions are independent, so they stage concurrently.
  // Tracing mutates interpreter state (the active GraphContext), so
  // each worker interprets in its own AutoGraph over the same source;
  // results land in per-function slots, and both fns_ registration and
  // staging_errors_ keep the deterministic source order.
  struct Slot {
    std::optional<core::StagedFunction> staged;
    std::string error;
  };
  std::vector<Slot> slots(names.size());
  std::atomic<size_t> next{0};
  auto stage_worker = [&] {
    core::AutoGraph local;
    local.LoadSource(source, path);
    for (size_t i = next.fetch_add(1); i < names.size();
         i = next.fetch_add(1)) {
      const std::string& name = names[i];
      try {
        const size_t num_params =
            local.GetGlobal(name).AsFunction()->params.size();
        std::vector<core::StageArg> stage_args;
        stage_args.reserve(num_params);
        for (size_t p = 0; p < num_params; ++p) {
          stage_args.push_back(
              core::StageArg::Placeholder("arg" + std::to_string(p)));
        }
        slots[i].staged = local.Stage(name, stage_args);
      } catch (const Error& e) {
        slots[i].error = name + ": " + e.what();
      }
    }
  };
  const size_t hw = std::max<size_t>(1, std::thread::hardware_concurrency());
  const size_t num_workers = std::max<size_t>(1, std::min(hw, names.size()));
  if (num_workers <= 1) {
    stage_worker();
  } else {
    std::vector<std::thread> stagers;
    stagers.reserve(num_workers);
    for (size_t w = 0; w < num_workers; ++w) {
      stagers.emplace_back(stage_worker);
    }
    for (std::thread& t : stagers) t.join();
  }
  for (size_t i = 0; i < names.size(); ++i) {
    if (slots[i].staged.has_value()) {
      fns_.emplace(names[i], std::move(*slots[i].staged));
    } else {
      staging_errors_.push_back(slots[i].error);
    }
  }
}

void ServerCore::LoadArtifact(const std::string& path) {
  for (auto& [name, staged] : core::StageFromArtifact(path)) {
    fns_.emplace(name, std::move(staged));
  }
}

std::vector<std::string> ServerCore::functions() const {
  std::vector<std::string> names;
  names.reserve(fns_.size());
  for (const auto& [name, fn] : fns_) names.push_back(name);
  return names;
}

void ServerCore::Start() {
  if (started_) return;
  started_ = true;
  const int workers = std::max(1, options_.workers);
  workers_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

void ServerCore::Stop() {
  if (!started_) return;
  queue_.Shutdown();
  for (std::thread& t : workers_) t.join();
  workers_.clear();
  started_ = false;
}

void ServerCore::Submit(Request request, Completion done) {
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.submitted;
  }
  queue_.Push(Ticket{std::move(request), std::move(done)});
}

Reply ServerCore::Call(Request request) {
  std::mutex mu;
  std::condition_variable cv;
  bool ready = false;
  Reply result;
  Submit(std::move(request), [&](Reply reply) {
    std::lock_guard<std::mutex> lock(mu);
    result = std::move(reply);
    ready = true;
    cv.notify_one();
  });
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return ready; });
  return result;
}

obs::RunOptions ServerCore::OptionsFor(const Request& request) const {
  obs::RunOptions options;
  options.trace = false;
  options.step_stats = false;
  options.inter_op_threads = options_.inter_op_threads;
  options.intra_op_threads = options_.intra_op_threads;
  options.deadline_ns = request.deadline_ns;
  options.cancel_token = &request.cancel;
  return options;
}

void ServerCore::RecordOutcome(const Reply& reply,
                               obs::RunMetadata run_meta) {
  run_meta.queue_wait_ns = reply.queue_wait_ns;
  std::lock_guard<std::mutex> lock(stats_mu_);
  if (reply.ok) {
    ++stats_.succeeded;
  } else {
    ++stats_.failed;
  }
  meta_.Merge(run_meta);
}

void ServerCore::WorkerLoop() {
  const bool batching = options_.max_batch > 1;
  while (true) {
    std::vector<Ticket> group;
    if (batching) {
      if (!queue_.PopGroup(&group, options_.max_batch,
                           options_.batch_linger_us, BatchCompatible)) {
        break;
      }
    } else {
      Ticket one;
      if (!queue_.Pop(&one)) break;
      group.push_back(std::move(one));
    }
    ServeGroup(std::move(group));
  }
}

void ServerCore::ServeOne(Ticket ticket, int64_t dispatch_ns) {
  Reply reply;
  reply.queue_wait_ns = dispatch_ns - ticket.request.enqueue_ns;
  obs::RunMetadata run_meta;
  auto it = fns_.find(ticket.request.fn);
  if (it == fns_.end()) {
    reply.error_kind = ErrorKind::kValue;
    reply.error_message = "unknown function '" + ticket.request.fn + "'";
    RecordOutcome(reply, std::move(run_meta));
    ticket.done(std::move(reply));
    return;
  }
  core::StagedFunction& fn = it->second;
  if (ticket.request.feeds.size() != fn.feed_names.size()) {
    reply.error_kind = ErrorKind::kValue;
    reply.error_message =
        "'" + ticket.request.fn + "' takes " +
        std::to_string(fn.feed_names.size()) + " feed(s), got " +
        std::to_string(ticket.request.feeds.size());
    RecordOutcome(reply, std::move(run_meta));
    ticket.done(std::move(reply));
    return;
  }
  try {
    std::vector<exec::RuntimeValue> feeds(ticket.request.feeds.begin(),
                                          ticket.request.feeds.end());
    std::vector<exec::RuntimeValue> outputs;
    RunWithPolicy(options_.policy, OptionsFor(ticket.request),
                  [&](const obs::RunOptions& run_options) {
                    outputs = fn.Run(feeds, &run_options, &run_meta);
                  });
    reply.ok = true;
    reply.outputs.reserve(outputs.size());
    for (exec::RuntimeValue& value : outputs) {
      const Tensor* t = std::get_if<Tensor>(&value);
      if (t == nullptr) {
        throw ValueError("'" + ticket.request.fn +
                         "' returned a tensor list; agserve serves "
                         "tensor-valued functions only");
      }
      reply.outputs.push_back(*t);
    }
  } catch (const Error& e) {
    reply.ok = false;
    reply.outputs.clear();
    reply.error_kind = e.kind();
    reply.error_message = e.what();
  }
  RecordOutcome(reply, std::move(run_meta));
  ticket.done(std::move(reply));
}

void ServerCore::ServeGroup(std::vector<Ticket> group) {
  const int64_t dispatch_ns = obs::NowNs();
  if (group.size() == 1) {
    ServeOne(std::move(group.front()), dispatch_ns);
    return;
  }

  // Batched path. The stacked run uses the group's *earliest* deadline
  // so the batch never outlives any member's budget, and no per-request
  // cancel token (one member's disconnect must not kill its
  // co-batched neighbours). If the stacked run is interrupted or the
  // function turns out not to be row-wise, fall back to individual
  // serves — each with its own deadline and token — so only the
  // genuinely-over-budget members fail.
  auto it = fns_.find(group.front().request.fn);
  const bool feed_count_ok =
      it != fns_.end() &&
      group.front().request.feeds.size() == it->second.feed_names.size();
  if (feed_count_ok) {
    try {
      const BatchLayout layout = ComputeLayout(group);
      std::vector<exec::RuntimeValue> feeds;
      feeds.reserve(group.front().request.feeds.size());
      for (size_t f = 0; f < group.front().request.feeds.size(); ++f) {
        feeds.emplace_back(StackFeeds(group, f));
      }
      int64_t earliest_deadline = 0;
      for (const Ticket& ticket : group) {
        const int64_t d = ticket.request.deadline_ns;
        if (d > 0 && (earliest_deadline == 0 || d < earliest_deadline)) {
          earliest_deadline = d;
        }
      }
      obs::RunOptions options;
      options.trace = false;
      options.step_stats = false;
      options.inter_op_threads = options_.inter_op_threads;
      options.intra_op_threads = options_.intra_op_threads;
      options.deadline_ns = earliest_deadline;

      obs::RunMetadata run_meta;
      std::vector<exec::RuntimeValue> outputs;
      RunWithPolicy(options_.policy, options,
                    [&](const obs::RunOptions& run_options) {
                      outputs = it->second.Run(feeds, &run_options,
                                               &run_meta);
                    });

      // Scatter: every output must be row-wise over the stacked batch.
      std::vector<Reply> replies(group.size());
      for (size_t r = 0; r < group.size(); ++r) {
        replies[r].ok = true;
        replies[r].queue_wait_ns =
            dispatch_ns - group[r].request.enqueue_ns;
        replies[r].batch_size = static_cast<int32_t>(group.size());
      }
      for (exec::RuntimeValue& value : outputs) {
        const Tensor* t = std::get_if<Tensor>(&value);
        if (t == nullptr) {
          throw ValueError("batched function returned a tensor list");
        }
        for (size_t r = 0; r < group.size(); ++r) {
          replies[r].outputs.push_back(SliceRows(
              *t, layout.offsets[r], layout.rows[r], layout.total_rows));
        }
      }
      run_meta.batched_runs = 1;
      run_meta.batch_requests = static_cast<int64_t>(group.size());
      run_meta.batch_size_max = static_cast<int64_t>(group.size());
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.batched_runs;
        stats_.batch_requests += static_cast<int64_t>(group.size());
        stats_.batch_size_max = std::max(
            stats_.batch_size_max, static_cast<int64_t>(group.size()));
      }
      for (size_t r = 0; r < group.size(); ++r) {
        run_meta.queue_wait_ns += replies[r].queue_wait_ns;
        group[r].done(std::move(replies[r]));
      }
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        stats_.succeeded += static_cast<int64_t>(group.size());
        meta_.Merge(run_meta);
      }
      return;
    } catch (const Error&) {
      // Fall through to individual serves below.
    }
  }
  for (Ticket& ticket : group) {
    ServeOne(std::move(ticket), dispatch_ns);
  }
}

ServeStats ServerCore::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  ServeStats s = stats_;
  s.expired_in_queue = queue_.expired_in_queue();
  s.cancelled_in_queue = queue_.cancelled_in_queue();
  s.rejected_full = queue_.rejected_full();
  return s;
}

obs::RunMetadata ServerCore::metadata() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return meta_;
}

// ---------------------------------------------------------------------
// TcpServer

// Shared write-side state of one connection. Responses may be written
// by dispatch threads (completions) while the reader thread is still
// alive or already gone — all writes go through `mu`, and `closed`
// makes completion-after-disconnect a silent no-op instead of a write
// to a dead fd.
struct TcpServer::Conn {
  int fd = -1;
  std::mutex mu;
  bool closed = false;
  runtime::CancellationSource source;  // cancelled on disconnect

  // The fd is ::close()d only here, once the reader thread and every
  // in-flight completion have dropped their shared_ptr — Shutdown()
  // below merely wakes/poisons it, so no thread can race a reused fd.
  ~Conn() {
    if (fd >= 0) ::close(fd);
  }

  void SendResponse(const WireResponse& response) {
    std::lock_guard<std::mutex> lock(mu);
    if (closed) return;
    try {
      WriteFrame(fd, EncodeResponse(response));
    } catch (const Error&) {
      closed = true;  // peer went away mid-write; reader will notice
    }
  }

  // Poisons the socket (wakes a reader blocked in read()) and stops
  // further writes. Idempotent.
  void Shutdown() {
    std::lock_guard<std::mutex> lock(mu);
    if (!closed) {
      closed = true;
      ::shutdown(fd, SHUT_RDWR);
    }
  }
};

TcpServer::TcpServer(ServerCore* core, uint16_t port)
    : core_(core), port_(port) {}

TcpServer::~TcpServer() { Stop(); }

void TcpServer::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw RuntimeError(std::string("agserve: socket failed: ") +
                       std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port_);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) < 0 ||
      ::listen(listen_fd_, 64) < 0) {
    const std::string why = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw RuntimeError("agserve: cannot listen on port " +
                       std::to_string(port_) + ": " + why);
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
}

void TcpServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listen fd closed by Stop()
    }
    auto conn = std::make_shared<Conn>();
    conn->fd = fd;
    std::lock_guard<std::mutex> lock(conn_mu_);
    conns_.push_back(conn);
    conn_threads_.emplace_back(
        [this, conn] { ServeConnection(conn); });
  }
}

void TcpServer::ServeConnection(std::shared_ptr<Conn> conn) {
  try {
    std::string payload;
    while (ReadFrame(conn->fd, &payload)) {
      WireRequest request;
      try {
        request = DecodeRequest(payload);
      } catch (const Error& e) {
        WireResponse bad;
        bad.ok = false;
        bad.error_kind = e.kind();
        bad.error_message = e.what();
        conn->SendResponse(bad);
        break;  // framing is untrustworthy after a bad payload
      }
      if (request.kind == MessageKind::kPing) {
        WireResponse pong;
        pong.ok = true;
        pong.request_id = request.request_id;
        conn->SendResponse(pong);
        continue;
      }
      if (request.kind == MessageKind::kShutdown) {
        WireResponse ack;
        ack.ok = true;
        ack.request_id = request.request_id;
        conn->SendResponse(ack);
        {
          std::lock_guard<std::mutex> lock(shutdown_mu_);
          shutdown_requested_ = true;
        }
        shutdown_cv_.notify_all();
        break;
      }

      // kRun: stamp the absolute deadline NOW — at frame read, before
      // the admission queue — so queue wait is charged against it.
      Request run;
      run.fn = request.fn;
      run.id = request.request_id;
      if (request.deadline_ms > 0) {
        run.deadline_ns = obs::NowNs() + request.deadline_ms * 1000000;
      }
      run.feeds.reserve(request.feeds.size());
      for (WireFeed& feed : request.feeds) {
        run.feeds.push_back(std::move(feed.tensor));
      }
      // Per-request child source: the connection token is its parent,
      // so a disconnect fans out to every request of this connection
      // (and through RunOptions::cancel_token into every nested run).
      auto request_source = std::make_shared<runtime::CancellationSource>(
          conn->source.token());
      run.cancel = request_source->token();
      const uint32_t id = request.request_id;
      core_->Submit(std::move(run),
                    [conn, request_source, id](Reply reply) {
                      WireResponse response;
                      response.request_id = id;
                      response.ok = reply.ok;
                      response.error_kind = reply.error_kind;
                      response.error_message =
                          std::move(reply.error_message);
                      response.outputs = std::move(reply.outputs);
                      conn->SendResponse(response);
                    });
    }
  } catch (const Error&) {
    // I/O error mid-frame: treat like a disconnect.
  }
  // Reader gone: cancel everything this connection started, then
  // poison the socket (the fd closes when the last completion drops
  // its reference).
  conn->source.Cancel("client disconnected");
  conn->Shutdown();
}

void TcpServer::Stop() {
  if (stopping_.exchange(true)) return;
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  listen_fd_ = -1;
  std::vector<std::thread> threads;
  std::vector<std::weak_ptr<Conn>> conns;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    threads.swap(conn_threads_);
    conns.swap(conns_);
  }
  // Wake readers blocked in ReadFrame so their threads can exit.
  for (const std::weak_ptr<Conn>& weak : conns) {
    if (auto conn = weak.lock()) conn->Shutdown();
  }
  for (std::thread& t : threads) t.join();
  {
    std::lock_guard<std::mutex> lock(shutdown_mu_);
    shutdown_requested_ = true;
  }
  shutdown_cv_.notify_all();
}

void TcpServer::WaitForShutdown() {
  std::unique_lock<std::mutex> lock(shutdown_mu_);
  shutdown_cv_.wait(lock, [&] { return shutdown_requested_; });
}

}  // namespace ag::serve
