#include "serve/batcher.h"

#include <cstring>

#include "support/error.h"

namespace ag::serve {

namespace {

// Elements per row (product of trailing dims) — rows are contiguous in
// the dense row-major layout, so stack/slice are pure memcpy.
int64_t RowElements(const Tensor& t) {
  return t.shape().dims()[0] > 0 ? t.num_elements() / t.shape().dims()[0]
                                 : 0;
}

}  // namespace

bool BatchCompatible(const Request& a, const Request& b) {
  if (a.fn != b.fn || a.feeds.size() != b.feeds.size()) return false;
  for (size_t i = 0; i < a.feeds.size(); ++i) {
    const Tensor& ta = a.feeds[i];
    const Tensor& tb = b.feeds[i];
    if (ta.dtype() != tb.dtype()) return false;
    if (ta.rank() < 1 || ta.rank() != tb.rank()) return false;
    const auto& da = ta.shape().dims();
    const auto& db = tb.shape().dims();
    // Empty rows stack into nothing recoverable; keep them unbatched.
    if (da[0] <= 0 || db[0] <= 0) return false;
    for (size_t d = 1; d < da.size(); ++d) {
      if (da[d] != db[d]) return false;
    }
  }
  return true;
}

BatchLayout ComputeLayout(const std::vector<Ticket>& group) {
  BatchLayout layout;
  layout.offsets.reserve(group.size());
  layout.rows.reserve(group.size());
  for (const Ticket& ticket : group) {
    const int64_t rows = ticket.request.feeds[0].shape().dims()[0];
    layout.offsets.push_back(layout.total_rows);
    layout.rows.push_back(rows);
    layout.total_rows += rows;
  }
  return layout;
}

Tensor StackFeeds(const std::vector<Ticket>& group, size_t feed_index) {
  const Tensor& first = group.front().request.feeds[feed_index];
  const int64_t row_elements = RowElements(first);
  int64_t total_rows = 0;
  for (const Ticket& ticket : group) {
    total_rows += ticket.request.feeds[feed_index].shape().dims()[0];
  }
  std::vector<float> stacked(
      static_cast<size_t>(total_rows * row_elements));
  size_t cursor = 0;
  for (const Ticket& ticket : group) {
    const Tensor& t = ticket.request.feeds[feed_index];
    const auto n = static_cast<size_t>(t.num_elements());
    std::memcpy(stacked.data() + cursor, t.data(), n * sizeof(float));
    cursor += n;
  }
  std::vector<int64_t> dims = first.shape().dims();
  dims[0] = total_rows;
  return Tensor::FromVector(std::move(stacked), Shape(std::move(dims)),
                            first.dtype());
}

Tensor SliceRows(const Tensor& stacked, int64_t offset, int64_t rows,
                 int64_t total_rows) {
  if (stacked.rank() < 1 || stacked.shape().dims()[0] != total_rows) {
    throw ValueError(
        "batched output is not row-wise: expected dim 0 of " +
        std::to_string(total_rows) + ", got " +
        (stacked.rank() < 1 ? std::string("a scalar")
                            : std::to_string(stacked.shape().dims()[0])) +
        " — function is not batchable");
  }
  const int64_t row_elements = RowElements(stacked);
  std::vector<float> values(static_cast<size_t>(rows * row_elements));
  std::memcpy(values.data(), stacked.data() + offset * row_elements,
              values.size() * sizeof(float));
  std::vector<int64_t> dims = stacked.shape().dims();
  dims[0] = rows;
  return Tensor::FromVector(std::move(values), Shape(std::move(dims)),
                            stacked.dtype());
}

}  // namespace ag::serve
