// Blocking agserve client — one connection, sequential request/response.
//
// Used by agserve --call/--probe/--shutdown, serve_test, and
// bench_serving's closed-loop workers. Not thread-safe: one Client per
// thread (the protocol supports pipelining; this client doesn't need
// it).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "serve/protocol.h"
#include "tensor/tensor.h"

namespace ag::serve {

class Client {
 public:
  // Connects to 127.0.0.1:port; throws Error(kRuntime) on failure.
  explicit Client(uint16_t port);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;

  // Runs `fn` on the server with positional feeds. deadline_ms > 0 is
  // the client's total budget: the server stamps it absolute at frame
  // read, so queue wait and execution share it. Returns the decoded
  // response (ok or structured error) — only transport failures throw.
  WireResponse Call(const std::string& fn, std::vector<Tensor> feeds,
                    int64_t deadline_ms = 0);

  // Liveness probe; true when the server answered the ping.
  bool Ping();

  // Asks the server to exit its serve loop (acknowledged).
  bool RequestShutdown();

  // Half-closes without a goodbye — from the server's side this is a
  // mid-conversation disconnect, which must cancel the connection's
  // in-flight work (tested in serve_test).
  void Drop();

 private:
  int fd_ = -1;
  uint32_t next_id_ = 1;
};

}  // namespace ag::serve
