// RunPolicy — bounded retry with backoff over interruptible runs.
//
// The policy exists because of the deadline_ms footgun this PR fixes:
// a *relative* deadline re-arms on every attempt, so a retry loop
// passing `deadline_ms` grants each attempt a fresh budget and a
// 3-attempt policy can burn 3x the client's wall clock. RunWithPolicy
// instead converts the total budget to an *absolute* deadline_ns
// exactly once, before attempt 1, and threads that one instant through
// every attempt's RunOptions — all attempts, and the backoff sleeps
// between them, are charged against a single wall budget.
//
// Only kDeadlineExceeded and kCancelled are retried: these are
// interruptions of a healthy session (another request's storm, a
// transient overload), not evidence the computation itself is broken.
// A cancelled *token* is never retried — the client is gone.
#pragma once

#include <cstdint>
#include <functional>

#include "obs/run_metadata.h"
#include "support/error.h"

namespace ag::serve {

struct RunPolicy {
  int max_attempts = 1;          // 1 = no retry
  int64_t total_budget_ms = 0;   // absolute wall budget, 0 = none
  int64_t initial_backoff_ms = 1;
  double backoff_multiplier = 2.0;
};

struct PolicyOutcome {
  int attempts = 0;              // attempts actually made
  int64_t budget_deadline_ns = 0;  // the single absolute deadline used
};

// Invokes `attempt` with RunOptions pre-stamped with the policy's
// absolute deadline (merged with any deadline already present in
// `base`: the earlier instant wins). Retries kDeadlineExceeded /
// kCancelled failures, sleeping the (budget-clamped) backoff between
// attempts, until an attempt succeeds, a non-retryable error is
// thrown, attempts are exhausted, or the shared budget has expired —
// whichever is first. The last error is rethrown unchanged.
//
// `attempt` receives the options to pass to Run/CallEager verbatim.
void RunWithPolicy(const RunPolicy& policy, const obs::RunOptions& base,
                   const std::function<void(const obs::RunOptions&)>& attempt,
                   PolicyOutcome* outcome = nullptr);

}  // namespace ag::serve
