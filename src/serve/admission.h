// Admission queue — the front door between transports and the shared
// execution Session.
//
// Requests enter stamped with an *absolute* deadline
// (obs::RunOptions::deadline_ns semantics: monotonic obs::NowNs()
// clock, stamped when the transport read the request, before any
// queueing). The queue enforces the serving half of the deadline
// contract: an entry whose deadline passed while it sat queued — or
// whose cancellation token tripped (client disconnected) — is
// completed with kDeadlineExceeded / kCancelled at pop time and never
// reaches the engine, so a backlog of dead requests costs pops, not
// kernel time.
//
// PopGroup is the dynamic-batching hook: it claims one request, then
// greedily collects already-queued compatible requests (the batcher's
// predicate decides compatibility) and optionally lingers up to a small
// window for more — Triton's dynamic_batching {} semantics.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "runtime/cancellation.h"
#include "support/error.h"
#include "tensor/tensor.h"

namespace ag::serve {

// One serving request, transport-independent.
struct Request {
  std::string fn;                    // staged function to run
  std::vector<Tensor> feeds;         // positional feeds
  int64_t deadline_ns = 0;           // absolute obs::NowNs(); 0 = none
  runtime::CancellationToken cancel; // per-request token (child of the
                                     // connection's source); default =
                                     // never cancelled
  uint32_t id = 0;                   // transport correlation tag
  int64_t enqueue_ns = 0;            // stamped by AdmissionQueue::Push
};

// Outcome delivered to the transport's completion callback.
struct Reply {
  bool ok = false;
  ErrorKind error_kind = ErrorKind::kInternal;
  std::string error_message;
  std::vector<Tensor> outputs;
  int64_t queue_wait_ns = 0;  // admission-queue residency
  int32_t batch_size = 1;     // > 1: served from a coalesced batch
};

using Completion = std::function<void(Reply)>;

struct Ticket {
  Request request;
  Completion done;
};

class AdmissionQueue {
 public:
  // max_depth bounds queue residency: a Push beyond it is rejected
  // immediately (completed with kRuntime "admission queue full") so an
  // overloaded server sheds load instead of growing an unbounded
  // backlog of requests it will only time out later.
  explicit AdmissionQueue(size_t max_depth) : max_depth_(max_depth) {}

  // Enqueues (or rejects) the ticket; always takes ownership and always
  // eventually completes it. Returns false when rejected.
  bool Push(Ticket ticket);

  // Blocks for one live ticket; expired/cancelled entries encountered
  // along the way are completed and skipped. Returns false only after
  // Shutdown() with the queue fully drained.
  bool Pop(Ticket* out);

  // Batching pop: like Pop, then claims up to max_batch-1 additional
  // queued tickets accepted by `compatible` (judged against the first
  // claimed ticket). When fewer are queued and linger_us > 0, waits up
  // to that long for compatible arrivals to fill the batch. Expired
  // entries are completed and skipped, never batched.
  bool PopGroup(std::vector<Ticket>* out, int max_batch, int64_t linger_us,
                const std::function<bool(const Request&, const Request&)>&
                    compatible);

  // Wakes all poppers; queued tickets are completed with kRuntime
  // "server shutting down". Push after Shutdown rejects.
  void Shutdown();

  [[nodiscard]] size_t depth() const;

  // Counters (monotonic, for ServeStats).
  [[nodiscard]] int64_t expired_in_queue() const { return expired_; }
  [[nodiscard]] int64_t cancelled_in_queue() const { return cancelled_; }
  [[nodiscard]] int64_t rejected_full() const { return rejected_full_; }

 private:
  // Completes `ticket` with an interruption outcome if it is expired or
  // cancelled (true = it was dead and has been completed).
  bool CompleteIfDead(Ticket* ticket, int64_t now_ns);

  const size_t max_depth_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Ticket> queue_;
  bool shutdown_ = false;
  // Atomic: bumped by CompleteIfDead outside mu_ (completions run
  // unlocked because they may block on socket writes).
  std::atomic<int64_t> expired_{0};
  std::atomic<int64_t> cancelled_{0};
  std::atomic<int64_t> rejected_full_{0};
};

}  // namespace ag::serve
