#include "lantern/ir.h"

#include <sstream>

#include "support/error.h"

namespace ag::lantern {

const char* LOpName(LOp op) {
  switch (op) {
    case LOp::kConst: return "const";
    case LOp::kParam: return "param";
    case LOp::kGlobal: return "global";
    case LOp::kAdd: return "add";
    case LOp::kSub: return "sub";
    case LOp::kMul: return "mul";
    case LOp::kDiv: return "div";
    case LOp::kNeg: return "neg";
    case LOp::kTanh: return "tanh";
    case LOp::kSigmoid: return "sigmoid";
    case LOp::kRelu: return "relu";
    case LOp::kExp: return "exp";
    case LOp::kLog: return "log";
    case LOp::kSquare: return "square";
    case LOp::kMatMul: return "matmul";
    case LOp::kConcat0: return "concat0";
    case LOp::kSlice0: return "slice0";
    case LOp::kReshape: return "reshape";
    case LOp::kReduceSum: return "reduce-sum";
    case LOp::kGather: return "gather";
    case LOp::kGreater: return "gt";
    case LOp::kLess: return "lt";
    case LOp::kEq: return "eq";
    case LOp::kNot: return "not";
    case LOp::kTreeIsEmpty: return "tree-empty?";
    case LOp::kTreeLeft: return "tree-left";
    case LOp::kTreeRight: return "tree-right";
    case LOp::kTreeValue: return "tree-value";
    case LOp::kTreeLabel: return "tree-label";
    case LOp::kIf: return "if";
    case LOp::kCall: return "call";
  }
  return "?";
}

const LFunction& LProgram::function(const std::string& name) const {
  auto it = functions.find(name);
  if (it == functions.end()) {
    throw RuntimeError("lantern: undefined function '" + name + "'");
  }
  return it->second;
}

LTreePtr LTree::Leaf(Tensor value_in) {
  auto t = std::make_shared<LTree>();
  t->is_empty = false;
  t->left = Empty();
  t->right = Empty();
  t->value = std::move(value_in);
  return t;
}

LTreePtr LTree::Node(LTreePtr l, LTreePtr r, Tensor value_in) {
  auto t = std::make_shared<LTree>();
  t->is_empty = false;
  t->left = std::move(l);
  t->right = std::move(r);
  t->value = std::move(value_in);
  return t;
}

namespace {

void BlockToSExpr(const Block& block, int indent, std::ostringstream& os) {
  auto pad = [&os](int n) {
    for (int i = 0; i < n; ++i) os << "  ";
  };
  for (const Binding& b : block.bindings) {
    pad(indent);
    os << "(let x" << b.id << " (";
    if (b.op == LOp::kConst) {
      os << "const " << b.const_value.str();
    } else if (b.op == LOp::kParam) {
      os << "param " << b.param_index;
    } else if (b.op == LOp::kGlobal) {
      os << "global " << b.param_index;
    } else if (b.op == LOp::kCall) {
      os << "call " << b.callee;
      for (int in : b.inputs) os << " x" << in;
    } else if (b.op == LOp::kIf) {
      os << "if x" << b.inputs[0] << "\n";
      auto emit_branch = [&](const Block& branch) {
        BlockToSExpr(branch, indent + 1, os);
        pad(indent + 1);
        os << "(result";
        if (branch.results.empty()) {
          os << " x" << branch.result;
        } else {
          for (int r : branch.results) os << " x" << r;
        }
        os << ")\n";
      };
      emit_branch(*b.then_block);
      emit_branch(*b.else_block);
      pad(indent);
    } else {
      os << LOpName(b.op);
      for (int in : b.inputs) os << " x" << in;
    }
    os << "))\n";
  }
}

}  // namespace

std::string ToSExpr(const LProgram& program) {
  std::ostringstream os;
  for (const auto& [name, fn] : program.functions) {
    os << "(def " << name << " (";
    for (int i = 0; i < fn.num_params; ++i) {
      if (i > 0) os << " ";
      os << (fn.param_is_tree[static_cast<size_t>(i)] ? "tree" : "tensor");
    }
    os << ")\n";
    BlockToSExpr(fn.body, 1, os);
    os << "  (result x" << fn.body.result << "))\n";
  }
  os << "(entry " << program.entry << ")\n";
  return os.str();
}

}  // namespace ag::lantern
