#include "lantern/executor.h"

#include <algorithm>
#include <functional>
#include <optional>

#include "runtime/cancellation.h"
#include "runtime/parallel_for.h"
#include "support/error.h"
#include "tensor/tensor_ops.h"

namespace ag::lantern {

const Tensor& AsTensorL(const LValue& v) {
  const Tensor* t = std::get_if<Tensor>(&v);
  if (t == nullptr) throw RuntimeError("lantern: expected a tensor value");
  return *t;
}

const LTreePtr& AsTreeL(const LValue& v) {
  const LTreePtr* t = std::get_if<LTreePtr>(&v);
  if (t == nullptr) throw RuntimeError("lantern: expected a tree value");
  return *t;
}

namespace {

// Scatter-add for the Gather gradient: out[row(index)] += grad.
Tensor ScatterAddRow(const Tensor& acc, int64_t row, const Tensor& grad) {
  const int64_t inner = acc.num_elements() / acc.shape().dim(0);
  std::vector<float> out(acc.data(), acc.data() + acc.num_elements());
  for (int64_t i = 0; i < inner; ++i) {
    out[static_cast<size_t>(row * inner + i)] += grad.at(i);
  }
  return Tensor::FromVector(std::move(out), acc.shape(), acc.dtype());
}

}  // namespace

namespace {

Block CloneBlock(const Block& src) {
  Block out;
  out.result = src.result;
  out.results = src.results;
  out.bindings.reserve(src.bindings.size());
  for (const Binding& b : src.bindings) {
    Binding c;
    c.id = b.id;
    c.op = b.op;
    c.inputs = b.inputs;
    c.const_value = b.const_value;
    c.param_index = b.param_index;
    c.slice_start = b.slice_start;
    c.slice_len = b.slice_len;
    c.reshape_dims = b.reshape_dims;
    c.callee = b.callee;
    c.out_ids = b.out_ids;
    if (b.then_block) {
      c.then_block = std::make_unique<Block>(CloneBlock(*b.then_block));
    }
    if (b.else_block) {
      c.else_block = std::make_unique<Block>(CloneBlock(*b.else_block));
    }
    out.bindings.push_back(std::move(c));
  }
  return out;
}

}  // namespace

Executor::Executor(const LProgram& program) : program_(&compiled_) {
  Compile(program);
}

void Executor::RenumberBlock(Block* block, std::map<int, int>* remap,
                             int* next, std::vector<int>* global_of) {
  for (Binding& b : block->bindings) {
    for (int& in : b.inputs) in = remap->at(in);
    if (b.op == LOp::kIf) {
      RenumberBlock(b.then_block.get(), remap, next, global_of);
      RenumberBlock(b.else_block.get(), remap, next, global_of);
      for (Block* branch : {b.then_block.get(), b.else_block.get()}) {
        if (branch->result >= 0) branch->result = remap->at(branch->result);
        for (int& r : branch->results) r = remap->at(r);
      }
    }
    const int dense = (*next)++;
    (*remap)[b.id] = dense;
    b.id = dense;
    global_of->push_back(b.op == LOp::kGlobal ? b.param_index : -1);
    // Extra If outputs get their own dense slots.
    for (int& out_id : b.out_ids) {
      if (out_id == dense) continue;  // placeholder; fixed below
      auto it = remap->find(out_id);
      if (it != remap->end()) {
        out_id = it->second;
        continue;
      }
      const int extra = (*next)++;
      (*remap)[out_id] = extra;
      out_id = extra;
      global_of->push_back(-1);
    }
    if (!b.out_ids.empty()) b.out_ids[0] = dense;
  }
}

void Executor::Compile(const LProgram& source) {
  // Clone, then renumber each function's bindings into a dense
  // function-local slot space — the "closure compilation" step that lets
  // frames be small flat arrays.
  compiled_.entry = source.entry;
  compiled_.num_globals = source.num_globals;
  for (const auto& [name, fn] : source.functions) {
    LFunction out;
    out.name = fn.name;
    out.num_params = fn.num_params;
    out.param_is_tree = fn.param_is_tree;
    out.body = CloneBlock(fn.body);
    std::map<int, int> remap;
    int next = 0;
    std::vector<int> global_of;
    RenumberBlock(&out.body, &remap, &next, &global_of);
    out.body.result = remap.at(out.body.result);
    for (int& r : out.body.results) r = remap.at(r);
    out.num_slots = next;
    compiled_.num_ids = std::max(compiled_.num_ids, next);
    global_of_[name] = std::move(global_of);
    compiled_.functions.emplace(name, std::move(out));
  }
}

LValue Executor::Run(const std::vector<LValue>& params,
                     const std::vector<Tensor>& globals,
                     const obs::RunOptions* options,
                     obs::RunMetadata* metadata) {
  const bool instrument = options != nullptr && options->enabled();
  std::optional<obs::RunRecorder> recorder;
  const int64_t t0 = instrument ? obs::NowNs() : 0;
  if (instrument) {
    recorder.emplace(*options);
    rec_ = &*recorder;
  }
  // Honour the intra-op sharding budget for the heavy tensor kernels.
  std::optional<runtime::IntraOpScope> intra;
  if (options != nullptr && options->intra_op_threads > 0) {
    intra.emplace(options->intra_op_threads);
  }
  // Interruption: own check when the options ask for one, otherwise
  // inherit an enclosing run's check (e.g. a lantern call made from an
  // engine already running under a deadline).
  std::optional<runtime::CancelCheck> cancel;
  std::optional<runtime::CancelCheckScope> cancel_scope;
  if (options != nullptr && options->cancellable()) {
    cancel.emplace(options->cancel_token, options->deadline_ms,
                   options->inject_cancel_after_kernels,
                   /*max_while_iterations=*/0, options->deadline_ns);
    cancel_scope.emplace(&*cancel);
    // Admission poll: an already-expired absolute deadline (or an
    // already-cancelled token) fails before any op executes.
    cancel->Poll("Executor::Run entry");
  }
  cancel_ = runtime::CurrentCancelCheck();
  max_call_depth_ =
      options != nullptr
          ? std::min<int64_t>(options->max_while_iterations, kMaxCallDepth)
          : kMaxCallDepth;
  call_depth_ = 0;
  globals_ = &globals;
  const LFunction& entry = program_->function(program_->entry);
  std::unique_ptr<Frame> frame;
  try {
    frame = ForwardFunction(entry, params);
  } catch (...) {
    globals_ = nullptr;
    rec_ = nullptr;
    cancel_ = nullptr;
    throw;
  }
  globals_ = nullptr;
  cancel_ = nullptr;
  if (instrument) {
    rec_ = nullptr;
    const int64_t wall = obs::NowNs() - t0;
    recorder->RecordPhase("forward", wall);
    if (obs::Tracer* tracer = recorder->tracer()) {
      tracer->AddComplete("Executor::Run", "session", t0, t0 + wall);
    }
    recorder->Finish(metadata);
    if (metadata != nullptr) {
      metadata->runs += 1;
      metadata->run_wall_ns += wall;
    }
  }
  return frame->slots[static_cast<size_t>(entry.body.result)];
}

std::pair<Tensor, std::vector<Tensor>> Executor::RunWithGradients(
    const std::vector<LValue>& params) {
  std::vector<Tensor> unused;
  return RunWithGradients(params, {}, &unused);
}

std::pair<Tensor, std::vector<Tensor>> Executor::RunWithGradients(
    const std::vector<LValue>& params, const std::vector<Tensor>& globals,
    std::vector<Tensor>* global_grads, const obs::RunOptions* options,
    obs::RunMetadata* metadata) {
  const bool instrument = options != nullptr && options->enabled();
  std::optional<obs::RunRecorder> recorder;
  const int64_t t0 = instrument ? obs::NowNs() : 0;
  if (instrument) {
    recorder.emplace(*options);
    rec_ = &*recorder;
  }
  // Honour the intra-op sharding budget for forward and backward passes.
  std::optional<runtime::IntraOpScope> intra;
  if (options != nullptr && options->intra_op_threads > 0) {
    intra.emplace(options->intra_op_threads);
  }
  std::optional<runtime::CancelCheck> cancel;
  std::optional<runtime::CancelCheckScope> cancel_scope;
  if (options != nullptr && options->cancellable()) {
    cancel.emplace(options->cancel_token, options->deadline_ms,
                   options->inject_cancel_after_kernels,
                   /*max_while_iterations=*/0, options->deadline_ns);
    cancel_scope.emplace(&*cancel);
    cancel->Poll("Executor::RunWithGradients entry");
  }
  cancel_ = runtime::CurrentCancelCheck();
  max_call_depth_ =
      options != nullptr
          ? std::min<int64_t>(options->max_while_iterations, kMaxCallDepth)
          : kMaxCallDepth;
  call_depth_ = 0;
  globals_ = &globals;
  global_accums_.assign(globals.size(), {});
  for (size_t i = 0; i < globals.size(); ++i) {
    global_accums_[i].assign(
        static_cast<size_t>(globals[i].num_elements()), 0.0f);
  }

  const LFunction& entry = program_->function(program_->entry);
  std::unique_ptr<Frame> frame;
  Tensor result;
  try {
    frame = ForwardFunction(entry, params);
    const int64_t fwd_end = instrument ? obs::NowNs() : 0;
    if (instrument) recorder->RecordPhase("forward", fwd_end - t0);
    result = AsTensorL(frame->slots[static_cast<size_t>(entry.body.result)]);
    if (result.num_elements() != 1) {
      throw RuntimeError(
          "lantern: gradients require a scalar result, got shape " +
          result.shape().str());
    }
    Accumulate(*frame, entry.body.result, Tensor::Ones(result.shape()));
    BackwardFunction(*frame);
    if (instrument) {
      recorder->RecordPhase("backward", obs::NowNs() - fwd_end);
    }
  } catch (...) {
    // Leave the executor reusable after an interrupted/failed run: the
    // per-run pointers must never dangle into a dead frame.
    globals_ = nullptr;
    rec_ = nullptr;
    cancel_ = nullptr;
    throw;
  }
  cancel_ = nullptr;

  // Collect parameter gradients in declaration order.
  std::vector<Tensor> grads(params.size());
  for (const Binding& b : entry.body.bindings) {
    if (b.op != LOp::kParam) continue;
    const auto i = static_cast<size_t>(b.param_index);
    if (entry.param_is_tree[i]) continue;
    if (frame->has_grad[static_cast<size_t>(b.id)]) {
      grads[i] = frame->grads[static_cast<size_t>(b.id)];
    } else {
      grads[i] = Tensor::Zeros(AsTensorL(params[i]).shape());
    }
  }
  // Materialize the in-place global accumulators.
  global_grads->clear();
  global_grads->reserve(globals.size());
  for (size_t i = 0; i < globals.size(); ++i) {
    global_grads->push_back(Tensor::FromVector(std::move(global_accums_[i]),
                                               globals[i].shape()));
  }
  global_accums_.clear();
  globals_ = nullptr;
  if (instrument) {
    rec_ = nullptr;
    const int64_t wall = obs::NowNs() - t0;
    if (obs::Tracer* tracer = recorder->tracer()) {
      tracer->AddComplete("Executor::RunWithGradients", "session", t0,
                          t0 + wall);
    }
    recorder->Finish(metadata);
    if (metadata != nullptr) {
      metadata->runs += 1;
      metadata->run_wall_ns += wall;
    }
  }
  return {result, std::move(grads)};
}

std::unique_ptr<Executor::Frame> Executor::ForwardFunction(
    const LFunction& fn, std::vector<LValue> args) {
  if (static_cast<int>(args.size()) != fn.num_params) {
    throw RuntimeError("lantern: function '" + fn.name + "' expects " +
                       std::to_string(fn.num_params) + " args");
  }
  // Staged loops are recursive calls here, so the call depth is the
  // iteration count of a runaway loop; raise a structured error well
  // before the native stack would overflow. No RAII needed: depth is
  // reset at every Run entry, and on unwind the whole run dies anyway.
  if (call_depth_ >= max_call_depth_) {
    throw RuntimeError(
        "lantern: call depth exceeded max_while_iterations bound (" +
        std::to_string(max_call_depth_) + ") in function '" + fn.name +
        "'; runaway staged loop/recursion?");
  }
  ++call_depth_;  // balanced by the decrement before the return below
  auto frame = std::make_unique<Frame>();
  frame->fn = &fn;
  frame->global_of = &global_of_.at(fn.name);
  frame->args = std::move(args);
  frame->slots.resize(static_cast<size_t>(fn.num_slots));
  // grads/has_grad stay empty until the backward pass touches the frame.
  ForwardBlock(fn.body, *frame);
  --call_depth_;  // on unwind the whole run dies, so no RAII needed
  return frame;
}

void Executor::ForwardBlock(const Block& block, Frame& frame) {
  for (const Binding& b : block.bindings) {
    // Per-op poll point: one branch when not cancellable.
    if (cancel_ != nullptr) {
      cancel_->Poll("lantern op in function", frame.fn->name);
    }
    ++bindings_executed_;
    const auto id = static_cast<size_t>(b.id);
    auto in = [&frame, &b](size_t i) -> const LValue& {
      return frame.slots[static_cast<size_t>(b.inputs[i])];
    };
    auto t = [&in](size_t i) -> const Tensor& { return AsTensorL(in(i)); };

    // kIf / kCall recurse through this function, so their inclusive
    // times are excluded from step stats (leaf ops only: sums stay
    // within the run wall time). They still show as nesting events in
    // the trace, added below.
    const int64_t op_start = rec_ != nullptr ? obs::NowNs() : 0;

    switch (b.op) {
      case LOp::kConst:
        frame.slots[id] = b.const_value;
        break;
      case LOp::kParam:
        frame.slots[id] = frame.args[static_cast<size_t>(b.param_index)];
        break;
      case LOp::kGlobal:
        if (globals_ == nullptr ||
            static_cast<size_t>(b.param_index) >= globals_->size()) {
          throw RuntimeError("lantern: global " +
                             std::to_string(b.param_index) + " not bound");
        }
        frame.slots[id] = (*globals_)[static_cast<size_t>(b.param_index)];
        break;
      case LOp::kAdd: frame.slots[id] = Add(t(0), t(1)); break;
      case LOp::kSub: frame.slots[id] = Sub(t(0), t(1)); break;
      case LOp::kMul: frame.slots[id] = Mul(t(0), t(1)); break;
      case LOp::kDiv: frame.slots[id] = Div(t(0), t(1)); break;
      case LOp::kNeg: frame.slots[id] = Neg(t(0)); break;
      case LOp::kTanh: frame.slots[id] = Tanh(t(0)); break;
      case LOp::kSigmoid: frame.slots[id] = Sigmoid(t(0)); break;
      case LOp::kRelu: frame.slots[id] = Relu(t(0)); break;
      case LOp::kExp: frame.slots[id] = Exp(t(0)); break;
      case LOp::kLog: frame.slots[id] = Log(t(0)); break;
      case LOp::kSquare: frame.slots[id] = Square(t(0)); break;
      case LOp::kMatMul: frame.slots[id] = MatMul(t(0), t(1)); break;
      case LOp::kConcat0:
        frame.slots[id] = Concat({t(0), t(1)}, 0);
        break;
      case LOp::kSlice0: {
        const Tensor& x = t(0);
        const int64_t inner = x.num_elements() / x.shape().dim(0);
        std::vector<float> out(
            x.data() + b.slice_start * inner,
            x.data() + (b.slice_start + b.slice_len) * inner);
        std::vector<int64_t> dims = x.shape().dims();
        dims[0] = b.slice_len;
        frame.slots[id] =
            Tensor::FromVector(std::move(out), Shape(std::move(dims)));
        break;
      }
      case LOp::kReduceSum: frame.slots[id] = ReduceSum(t(0)); break;
      case LOp::kReshape: {
        std::vector<int64_t> dims(b.reshape_dims.begin(),
                                  b.reshape_dims.end());
        frame.slots[id] = t(0).Reshaped(Shape(std::move(dims)));
        break;
      }
      case LOp::kGather:
        frame.slots[id] = Gather(t(0), t(1));
        break;
      case LOp::kGreater: frame.slots[id] = Greater(t(0), t(1)); break;
      case LOp::kLess: frame.slots[id] = Less(t(0), t(1)); break;
      case LOp::kEq: frame.slots[id] = Equal(t(0), t(1)); break;
      case LOp::kNot: frame.slots[id] = LogicalNot(t(0)); break;
      case LOp::kTreeIsEmpty:
        frame.slots[id] = Tensor::ScalarBool(AsTreeL(in(0))->is_empty);
        break;
      case LOp::kTreeLeft:
        frame.slots[id] = AsTreeL(in(0))->left;
        break;
      case LOp::kTreeRight:
        frame.slots[id] = AsTreeL(in(0))->right;
        break;
      case LOp::kTreeValue:
        frame.slots[id] = AsTreeL(in(0))->value;
        break;
      case LOp::kTreeLabel:
        frame.slots[id] = AsTreeL(in(0))->label;
        break;
      case LOp::kIf: {
        const bool taken = t(0).scalar_bool();
        frame.taken.emplace_back(b.id, taken);
        const Block& branch = taken ? *b.then_block : *b.else_block;
        ForwardBlock(branch, frame);
        if (branch.results.empty()) {
          frame.slots[id] = frame.slots[static_cast<size_t>(branch.result)];
        } else {
          for (size_t j = 0; j < branch.results.size(); ++j) {
            frame.slots[static_cast<size_t>(b.out_ids[j])] =
                frame.slots[static_cast<size_t>(branch.results[j])];
          }
        }
        break;
      }
      case LOp::kCall: {
        const LFunction& callee = program_->function(b.callee);
        std::vector<LValue> call_args;
        call_args.reserve(b.inputs.size());
        for (size_t i = 0; i < b.inputs.size(); ++i) {
          call_args.push_back(in(i));
        }
        std::unique_ptr<Frame> child =
            ForwardFunction(callee, std::move(call_args));
        if (callee.body.results.empty()) {
          frame.slots[id] =
              child->slots[static_cast<size_t>(callee.body.result)];
        } else {
          for (size_t j = 0; j < callee.body.results.size(); ++j) {
            frame.slots[static_cast<size_t>(b.out_ids[j])] =
                child->slots[static_cast<size_t>(callee.body.results[j])];
          }
        }
        frame.calls.emplace_back(b.id, std::move(child));
        break;
      }
    }

    if (rec_ != nullptr) {
      if (b.op == LOp::kIf || b.op == LOp::kCall) {
        if (obs::Tracer* tracer = rec_->tracer()) {
          std::string name = LOpName(b.op);
          if (b.op == LOp::kCall) name += " " + b.callee;
          tracer->AddComplete(name, "control", op_start, obs::NowNs());
        }
      } else {
        const Tensor* out = std::get_if<Tensor>(&frame.slots[id]);
        const int64_t bytes =
            out != nullptr
                ? out->num_elements() * (out->dtype() == DType::kBool ? 1 : 4)
                : 0;
        rec_->RecordNode(LOpName(b.op), "lantern", op_start, obs::NowNs(),
                         bytes);
      }
    }
  }
}

void Executor::Accumulate(Frame& frame, int id, const Tensor& grad) {
  const auto i = static_cast<size_t>(id);
  // Gradients flowing into a kGlobal read go straight into the shared
  // in-place accumulator (the `grad +=` cells of the generated code).
  const int g = (*frame.global_of)[i];
  if (g >= 0) {
    AccumulateGlobal(g, grad);
    return;
  }
  if (frame.grads.empty()) {
    frame.grads.resize(frame.slots.size());
    frame.has_grad.assign(frame.slots.size(), false);
  }
  if (frame.has_grad[i]) {
    frame.grads[i] = Add(frame.grads[i], grad);
  } else {
    frame.grads[i] = grad;
    frame.has_grad[i] = true;
  }
}

void Executor::AccumulateGlobal(int global_index, const Tensor& grad) {
  std::vector<float>& acc = global_accums_[static_cast<size_t>(global_index)];
  if (static_cast<int64_t>(acc.size()) != grad.num_elements()) {
    throw RuntimeError("lantern: global gradient shape mismatch");
  }
  const float* g = grad.data();
  for (size_t i = 0; i < acc.size(); ++i) acc[i] += g[i];
}

void Executor::BackwardFunction(Frame& frame) {
  if (frame.grads.empty()) {
    frame.grads.resize(frame.slots.size());
    frame.has_grad.assign(frame.slots.size(), false);
  }
  BackwardBlock(frame.fn->body, frame);
}

void Executor::BackwardBlock(const Block& block, Frame& frame) {
  for (auto it = block.bindings.rbegin(); it != block.bindings.rend();
       ++it) {
    if (cancel_ != nullptr) {
      cancel_->Poll("lantern backward op in function", frame.fn->name);
    }
    const Binding& b = *it;
    const auto id = static_cast<size_t>(b.id);
    if (b.op == LOp::kIf) {
      // Multi-output conditionals: route every output grad into the taken
      // branch's corresponding result, then run the branch backward once.
      bool any = false;
      const bool taken = frame.Taken(b.id);
      const Block& branch = taken ? *b.then_block : *b.else_block;
      if (!branch.results.empty()) {
        for (size_t j = 0; j < b.out_ids.size(); ++j) {
          const auto oj = static_cast<size_t>(b.out_ids[j]);
          if (frame.has_grad.empty() || !frame.has_grad[oj]) continue;
          Accumulate(frame, branch.results[j], frame.grads[oj]);
          any = true;
        }
        if (any) BackwardBlock(branch, frame);
        continue;
      }
    }
    if (b.op == LOp::kCall) {
      const LFunction& callee = program_->function(b.callee);
      if (!callee.body.results.empty()) {
        // Multi-output call: seed each child result grad, run the child
        // backward once, route param grads to the call arguments.
        Frame& child = *frame.CallFrame(b.id);
        bool any = false;
        for (size_t j = 0; j < b.out_ids.size(); ++j) {
          const auto oj = static_cast<size_t>(b.out_ids[j]);
          if (frame.has_grad.empty() || !frame.has_grad[oj]) continue;
          Accumulate(child, callee.body.results[j], frame.grads[oj]);
          any = true;
        }
        if (!any) continue;
        BackwardFunction(child);
        for (const Binding& pb : callee.body.bindings) {
          if (pb.op != LOp::kParam) continue;
          const auto pi = static_cast<size_t>(pb.param_index);
          if (callee.param_is_tree[pi]) continue;
          if (child.has_grad.empty()) continue;
          if (child.has_grad[static_cast<size_t>(pb.id)]) {
            Accumulate(frame, b.inputs[pi],
                       child.grads[static_cast<size_t>(pb.id)]);
          }
        }
        continue;
      }
    }
    if (frame.has_grad.empty() || !frame.has_grad[id]) continue;
    const Tensor g = frame.grads[id];
    auto in = [&frame, &b](size_t i) -> const LValue& {
      return frame.slots[static_cast<size_t>(b.inputs[i])];
    };
    auto t = [&in](size_t i) -> const Tensor& { return AsTensorL(in(i)); };
    auto acc = [this, &frame, &b](size_t i, const Tensor& grad) {
      Accumulate(frame, b.inputs[i], grad);
    };

    switch (b.op) {
      case LOp::kAdd:
        acc(0, SumToShape(g, t(0).shape()));
        acc(1, SumToShape(g, t(1).shape()));
        break;
      case LOp::kSub:
        acc(0, SumToShape(g, t(0).shape()));
        acc(1, SumToShape(Neg(g), t(1).shape()));
        break;
      case LOp::kMul:
        acc(0, SumToShape(Mul(g, t(1)), t(0).shape()));
        acc(1, SumToShape(Mul(g, t(0)), t(1).shape()));
        break;
      case LOp::kDiv:
        acc(0, SumToShape(Div(g, t(1)), t(0).shape()));
        acc(1, SumToShape(Neg(Div(Mul(g, t(0)), Mul(t(1), t(1)))),
                          t(1).shape()));
        break;
      case LOp::kNeg:
        acc(0, Neg(g));
        break;
      case LOp::kTanh: {
        const Tensor& y = AsTensorL(frame.slots[id]);
        acc(0, Mul(g, Sub(Tensor::Scalar(1.0f), Mul(y, y))));
        break;
      }
      case LOp::kSigmoid: {
        const Tensor& y = AsTensorL(frame.slots[id]);
        acc(0, Mul(g, Mul(y, Sub(Tensor::Scalar(1.0f), y))));
        break;
      }
      case LOp::kRelu:
        acc(0, Mul(g, Greater(t(0), Tensor::Scalar(0.0f))));
        break;
      case LOp::kExp:
        acc(0, Mul(g, AsTensorL(frame.slots[id])));
        break;
      case LOp::kLog:
        acc(0, Div(g, t(0)));
        break;
      case LOp::kSquare:
        acc(0, Mul(g, Mul(Tensor::Scalar(2.0f), t(0))));
        break;
      case LOp::kMatMul:
        acc(0, MatMul(g, Transpose(t(1), {1, 0})));
        acc(1, MatMul(Transpose(t(0), {1, 0}), g));
        break;
      case LOp::kConcat0: {
        const int64_t n0 = t(0).shape().dim(0);
        const int64_t n1 = t(1).shape().dim(0);
        const int64_t inner = t(0).num_elements() / n0;
        std::vector<float> g0(g.data(), g.data() + n0 * inner);
        std::vector<float> g1(g.data() + n0 * inner,
                              g.data() + (n0 + n1) * inner);
        acc(0, Tensor::FromVector(std::move(g0), t(0).shape()));
        acc(1, Tensor::FromVector(std::move(g1), t(1).shape()));
        break;
      }
      case LOp::kSlice0: {
        const Tensor& x = t(0);
        const int64_t inner = x.num_elements() / x.shape().dim(0);
        std::vector<float> out(static_cast<size_t>(x.num_elements()), 0.0f);
        std::copy(g.data(), g.data() + b.slice_len * inner,
                  out.data() + b.slice_start * inner);
        acc(0, Tensor::FromVector(std::move(out), x.shape()));
        break;
      }
      case LOp::kReduceSum:
        acc(0, Mul(Tensor::Ones(t(0).shape()), g));
        break;
      case LOp::kReshape:
        acc(0, g.Reshaped(t(0).shape()));
        break;
      case LOp::kGather: {
        const Tensor& indices = t(1);
        const int64_t inner = t(0).num_elements() / t(0).shape().dim(0);
        const int table_global =
            (*frame.global_of)[static_cast<size_t>(b.inputs[0])];
        if (table_global >= 0) {
          // Sparse in-place scatter into the shared accumulator: O(rows
          // touched), not O(table) — this is what the generated code's
          // mutable gradient cells buy.
          std::vector<float>& acc =
              global_accums_[static_cast<size_t>(table_global)];
          for (int64_t i = 0; i < indices.num_elements(); ++i) {
            const auto row = static_cast<int64_t>(indices.at(i));
            for (int64_t k = 0; k < inner; ++k) {
              acc[static_cast<size_t>(row * inner + k)] +=
                  g.at(i * inner + k);
            }
          }
          break;
        }
        // Dense scatter-add into a zeros-like of the gathered table.
        Tensor table_grad = frame.has_grad[static_cast<size_t>(b.inputs[0])]
                                ? frame.grads[static_cast<size_t>(b.inputs[0])]
                                : Tensor::Zeros(t(0).shape());
        for (int64_t i = 0; i < indices.num_elements(); ++i) {
          const auto row = static_cast<int64_t>(indices.at(i));
          std::vector<float> sub(g.data() + i * inner,
                                 g.data() + (i + 1) * inner);
          table_grad = ScatterAddRow(
              table_grad, row,
              Tensor::FromVector(std::move(sub), Shape({inner})));
        }
        frame.grads[static_cast<size_t>(b.inputs[0])] = table_grad;
        frame.has_grad[static_cast<size_t>(b.inputs[0])] = true;
        break;
      }
      case LOp::kIf: {
        const bool taken = frame.Taken(b.id);
        const Block& branch = taken ? *b.then_block : *b.else_block;
        Accumulate(frame, branch.result, g);
        BackwardBlock(branch, frame);
        break;
      }
      case LOp::kCall: {
        Frame& child = *frame.CallFrame(b.id);
        const LFunction& callee = *child.fn;
        Accumulate(child, callee.body.result, g);
        BackwardFunction(child);
        // Route parameter grads back into the call arguments.
        for (const Binding& pb : callee.body.bindings) {
          if (pb.op != LOp::kParam) continue;
          const auto pi = static_cast<size_t>(pb.param_index);
          if (callee.param_is_tree[pi]) continue;
          if (child.has_grad[static_cast<size_t>(pb.id)]) {
            acc(pi, child.grads[static_cast<size_t>(pb.id)]);
          }
        }
        break;
      }
      case LOp::kConst:
      case LOp::kParam:
      case LOp::kGlobal:
      case LOp::kGreater:
      case LOp::kLess:
      case LOp::kEq:
      case LOp::kNot:
      case LOp::kTreeIsEmpty:
      case LOp::kTreeLeft:
      case LOp::kTreeRight:
      case LOp::kTreeValue:
      case LOp::kTreeLabel:
        break;  // leaves / non-differentiable
    }
  }
}

}  // namespace ag::lantern
