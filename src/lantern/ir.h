// The Lantern IR (paper §8): a functional, let-normal-form IR that —
// unlike the TensorFlow-style graph — supports *function definitions,
// re-entrant calls, and recursion*, which is what makes recursive models
// (TreeLSTM) expressible.
//
// A program is a set of named functions. Each function body is a block: a
// sequence of let-bindings evaluated in order, ending in a result id.
// Data-dependent branching is the If binding, whose two sub-blocks may
// reference outer bindings. Recursion is the Call binding referencing any
// program function, including the one being defined.
//
// The textual form is S-expressions (see ToSExpr / codegen.h), matching
// the paper's Python -> S-Expr -> C++ pipeline.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace ag::lantern {

enum class LOp : std::uint8_t {
  kConst,    // value in `const_value`
  kParam,    // function parameter `param_index`
  kGlobal,   // by-reference capture: executor global `param_index`
  // Elementwise arithmetic (tensor or scalar operands).
  kAdd, kSub, kMul, kDiv, kNeg,
  // Unary math.
  kTanh, kSigmoid, kRelu, kExp, kLog, kSquare,
  // Linear algebra / shaping.
  kMatMul, kConcat0,       // concat along axis 0
  kSlice0,                 // rows [slice_start, slice_start+slice_len)
  kReshape,                // to `reshape_dims` (same element count)
  kReduceSum,              // to scalar
  kGather,                 // inputs: (params, index); grad scatters
  // Comparisons / logic (produce bool scalars; no gradient).
  kGreater, kLess, kEq, kNot,
  // Tree accessors (tree-typed operand).
  kTreeIsEmpty, kTreeLeft, kTreeRight, kTreeValue, kTreeLabel,
  // Control / calls.
  kIf,    // inputs: (cond); then_block / else_block
  kCall,  // `callee` + inputs
};

[[nodiscard]] const char* LOpName(LOp op);

struct Block;

// One let-binding: `let %id = op(inputs...)`.
struct Binding {
  int id = -1;
  LOp op = LOp::kConst;
  std::vector<int> inputs;        // binding ids
  Tensor const_value;             // kConst
  int param_index = -1;           // kParam
  int slice_start = 0;            // kSlice0
  int slice_len = 0;              // kSlice0
  std::vector<int> reshape_dims;  // kReshape
  std::string callee;             // kCall
  std::unique_ptr<Block> then_block;  // kIf
  std::unique_ptr<Block> else_block;  // kIf
  // kIf: all output ids (out_ids[0] == id). Size > 1 for multi-value
  // conditionals (tuple-state branches).
  std::vector<int> out_ids;
};

struct Block {
  std::vector<Binding> bindings;
  int result = -1;  // id of the block's value
  // Multi-value form (used by multi-output If branches); when non-empty
  // it supersedes `result`.
  std::vector<int> results;
};

struct LFunction {
  std::string name;
  int num_params = 0;
  std::vector<bool> param_is_tree;  // per parameter
  Block body;
  // Dense per-function slot count (set by the executor's compilation
  // pass; 0 until compiled).
  int num_slots = 0;
};

struct LProgram {
  std::map<std::string, LFunction> functions;
  std::string entry;
  int num_ids = 0;     // binding-id space size (ids are program-unique)
  int num_globals = 0; // by-reference captured tensors

  [[nodiscard]] const LFunction& function(const std::string& name) const;
};

// Runtime tree value (the staged substitute for Python tree objects).
struct LTree {
  bool is_empty = true;
  std::shared_ptr<LTree> left;
  std::shared_ptr<LTree> right;
  Tensor value;   // leaf payload (e.g. word id or embedding)
  Tensor label;   // optional per-node label

  static std::shared_ptr<LTree> Empty() { return std::make_shared<LTree>(); }
  static std::shared_ptr<LTree> Leaf(Tensor value_in);
  static std::shared_ptr<LTree> Node(std::shared_ptr<LTree> l,
                                     std::shared_ptr<LTree> r,
                                     Tensor value_in);
};
using LTreePtr = std::shared_ptr<LTree>;

// Renders the program as S-expressions (the Lantern input format shown
// in the paper).
[[nodiscard]] std::string ToSExpr(const LProgram& program);

}  // namespace ag::lantern
