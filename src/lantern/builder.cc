#include "lantern/builder.h"

#include "support/error.h"

namespace ag::lantern {

Block* ProgramBuilder::current_block() {
  if (defining_.empty() || defining_.back()->blocks.empty()) {
    throw StagingError("lantern: op emitted outside a function trace");
  }
  return defining_.back()->blocks.back();
}

SymPtr ProgramBuilder::NewSym(bool is_tree, bool is_bool) {
  auto s = std::make_shared<Sym>();
  s->id = next_id_++;
  s->is_tree = is_tree;
  s->is_bool = is_bool;
  s->owner = defining_.empty() ? nullptr : defining_.back().get();
  return s;
}

SymPtr ProgramBuilder::MakeGlobal(int index) {
  auto s = std::make_shared<Sym>();
  s->global_index = index;
  if (index + 1 > num_globals_) num_globals_ = index + 1;
  return s;
}

int ProgramBuilder::ResolveInput(const SymPtr& sym) {
  if (sym->global_index >= 0) {
    FuncCtx& ctx = *defining_.back();
    const Block* block = ctx.blocks.back();
    auto key = std::make_pair(block, sym->global_index);
    auto it = ctx.global_ids.find(key);
    if (it != ctx.global_ids.end()) return it->second;
    const int id = next_id_++;
    Binding& b = Append(LOp::kGlobal, id);
    b.param_index = sym->global_index;
    ctx.global_ids.emplace(key, id);
    return id;
  }
  if (sym->owner != nullptr && sym->owner != defining_.back().get()) {
    throw StagingError(
        "lantern: a value from an enclosing staged function cannot be "
        "captured; pass it as an argument or stage it as a global");
  }
  return sym->id;
}

Binding& ProgramBuilder::Append(LOp op, int id) {
  Block* block = current_block();
  Binding b;
  b.id = id;
  b.op = op;
  block->bindings.push_back(std::move(b));
  return block->bindings.back();
}

std::vector<SymPtr> ProgramBuilder::BeginFunction(
    const std::string& name, const std::vector<bool>& param_is_tree) {
  if (IsDefined(name) || IsDefining(name)) {
    throw StagingError("lantern: function '" + name +
                       "' is already defined");
  }
  auto ctx = std::make_unique<FuncCtx>();
  ctx->fn.name = name;
  ctx->fn.num_params = static_cast<int>(param_is_tree.size());
  ctx->fn.param_is_tree = param_is_tree;
  defining_.push_back(std::move(ctx));
  defining_.back()->blocks.push_back(&defining_.back()->fn.body);

  std::vector<SymPtr> params;
  for (size_t i = 0; i < param_is_tree.size(); ++i) {
    SymPtr s = NewSym(param_is_tree[i], /*is_bool=*/false);
    Binding& b = Append(LOp::kParam, s->id);
    b.param_index = static_cast<int>(i);
    params.push_back(std::move(s));
  }
  return params;
}

void ProgramBuilder::EndFunction(const SymPtr& result) {
  if (defining_.empty()) {
    throw StagingError("lantern: EndFunction without BeginFunction");
  }
  const int result_id = ResolveInput(result);
  FuncCtx& ctx = *defining_.back();
  if (ctx.blocks.size() != 1) {
    throw InternalError("lantern: unbalanced blocks at EndFunction");
  }
  ctx.fn.body.result = result_id;
  program_.functions.emplace(ctx.fn.name, std::move(ctx.fn));
  defining_.pop_back();
}

void ProgramBuilder::EndFunctionMulti(const std::vector<SymPtr>& results) {
  if (defining_.empty()) {
    throw StagingError("lantern: EndFunctionMulti without BeginFunction");
  }
  std::vector<int> result_ids;
  result_ids.reserve(results.size());
  for (const SymPtr& r : results) result_ids.push_back(ResolveInput(r));
  FuncCtx& ctx = *defining_.back();
  if (ctx.blocks.size() != 1) {
    throw InternalError("lantern: unbalanced blocks at EndFunctionMulti");
  }
  ctx.fn.body.results = std::move(result_ids);
  if (!ctx.fn.body.results.empty()) {
    ctx.fn.body.result = ctx.fn.body.results[0];
  }
  program_.functions.emplace(ctx.fn.name, std::move(ctx.fn));
  defining_.pop_back();
}

std::vector<SymPtr> ProgramBuilder::EmitCallMulti(const std::string& callee,
                                                  const std::vector<SymPtr>&
                                                      args,
                                                  size_t num_results) {
  if (!IsDefined(callee) && !IsDefining(callee)) {
    throw StagingError("lantern: call to undefined function '" + callee +
                       "'");
  }
  std::vector<int> input_ids;
  input_ids.reserve(args.size());
  for (const SymPtr& a : args) input_ids.push_back(ResolveInput(a));
  std::vector<SymPtr> outs;
  std::vector<int> out_ids;
  for (size_t i = 0; i < num_results; ++i) {
    SymPtr s = NewSym(/*is_tree=*/false, /*is_bool=*/false);
    out_ids.push_back(s->id);
    outs.push_back(std::move(s));
  }
  Binding& b = Append(LOp::kCall, out_ids[0]);
  b.callee = callee;
  b.inputs = std::move(input_ids);
  b.out_ids = std::move(out_ids);
  return outs;
}

bool ProgramBuilder::IsDefining(const std::string& name) const {
  for (const auto& ctx : defining_) {
    if (ctx->fn.name == name) return true;
  }
  return false;
}

SymPtr ProgramBuilder::Emit(LOp op, const std::vector<SymPtr>& inputs) {
  const bool is_tree = op == LOp::kTreeLeft || op == LOp::kTreeRight;
  const bool is_bool = op == LOp::kGreater || op == LOp::kLess ||
                       op == LOp::kEq || op == LOp::kNot ||
                       op == LOp::kTreeIsEmpty;
  std::vector<int> input_ids;
  input_ids.reserve(inputs.size());
  for (const SymPtr& in : inputs) input_ids.push_back(ResolveInput(in));
  SymPtr s = NewSym(is_tree, is_bool);
  Binding& b = Append(op, s->id);
  b.inputs = std::move(input_ids);
  return s;
}

SymPtr ProgramBuilder::EmitConst(Tensor value) {
  SymPtr s = NewSym(/*is_tree=*/false, /*is_bool=*/false);
  Binding& b = Append(LOp::kConst, s->id);
  b.const_value = std::move(value);
  return s;
}

SymPtr ProgramBuilder::EmitSlice0(const SymPtr& input, int start, int len) {
  const int input_id = ResolveInput(input);
  SymPtr s = NewSym(/*is_tree=*/false, /*is_bool=*/false);
  Binding& b = Append(LOp::kSlice0, s->id);
  b.inputs.push_back(input_id);
  b.slice_start = start;
  b.slice_len = len;
  return s;
}

SymPtr ProgramBuilder::EmitReshape(const SymPtr& input,
                                   std::vector<int> dims) {
  const int input_id = ResolveInput(input);
  SymPtr s = NewSym(/*is_tree=*/false, /*is_bool=*/false);
  Binding& b = Append(LOp::kReshape, s->id);
  b.inputs.push_back(input_id);
  b.reshape_dims = std::move(dims);
  return s;
}

SymPtr ProgramBuilder::EmitCall(const std::string& callee,
                                const std::vector<SymPtr>& args) {
  if (!IsDefined(callee) && !IsDefining(callee)) {
    throw StagingError("lantern: call to undefined function '" + callee +
                       "'");
  }
  std::vector<int> input_ids;
  input_ids.reserve(args.size());
  for (const SymPtr& a : args) input_ids.push_back(ResolveInput(a));
  SymPtr s = NewSym(/*is_tree=*/false, /*is_bool=*/false);
  Binding& b = Append(LOp::kCall, s->id);
  b.callee = callee;
  b.inputs = std::move(input_ids);
  return s;
}

void ProgramBuilder::BeginBlock() {
  if (defining_.empty()) {
    throw StagingError("lantern: block opened outside a function trace");
  }
  // Temporary holder; moved into the If binding by EmitIf.
  auto* block = new Block();
  defining_.back()->blocks.push_back(block);
}

Block ProgramBuilder::TakeBlock(const SymPtr& result) {
  FuncCtx& ctx = *defining_.back();
  if (ctx.blocks.size() < 2) {
    throw InternalError("lantern: TakeBlock without BeginBlock");
  }
  const int result_id = ResolveInput(result);
  Block* block = ctx.blocks.back();
  ctx.blocks.pop_back();
  block->result = result_id;
  Block out = std::move(*block);
  delete block;
  return out;
}

Block ProgramBuilder::TakeBlockMulti(const std::vector<SymPtr>& results) {
  FuncCtx& ctx = *defining_.back();
  if (ctx.blocks.size() < 2) {
    throw InternalError("lantern: TakeBlockMulti without BeginBlock");
  }
  std::vector<int> result_ids;
  result_ids.reserve(results.size());
  for (const SymPtr& r : results) result_ids.push_back(ResolveInput(r));
  Block* block = ctx.blocks.back();
  ctx.blocks.pop_back();
  block->results = std::move(result_ids);
  if (!block->results.empty()) block->result = block->results[0];
  Block out = std::move(*block);
  delete block;
  return out;
}

std::vector<SymPtr> ProgramBuilder::EmitIfMulti(
    const SymPtr& cond, Block then_block, Block else_block,
    const std::vector<bool>& result_is_tree) {
  const int cond_id = ResolveInput(cond);
  std::vector<SymPtr> outs;
  outs.reserve(result_is_tree.size());
  std::vector<int> out_ids;
  for (bool is_tree : result_is_tree) {
    SymPtr s = NewSym(is_tree, /*is_bool=*/false);
    out_ids.push_back(s->id);
    outs.push_back(std::move(s));
  }
  Binding& b = Append(LOp::kIf, out_ids.empty() ? next_id_++ : out_ids[0]);
  b.inputs.push_back(cond_id);
  b.then_block = std::make_unique<Block>(std::move(then_block));
  b.else_block = std::make_unique<Block>(std::move(else_block));
  b.out_ids = std::move(out_ids);
  return outs;
}

SymPtr ProgramBuilder::EmitIf(const SymPtr& cond, Block then_block,
                              Block else_block, bool result_is_tree,
                              bool result_is_bool) {
  const int cond_id = ResolveInput(cond);
  SymPtr s = NewSym(result_is_tree, result_is_bool);
  Binding& b = Append(LOp::kIf, s->id);
  b.inputs.push_back(cond_id);
  b.then_block = std::make_unique<Block>(std::move(then_block));
  b.else_block = std::make_unique<Block>(std::move(else_block));
  b.out_ids = {s->id};
  return s;
}

LProgram ProgramBuilder::Finish(const std::string& entry) {
  if (!defining_.empty()) {
    throw InternalError("lantern: Finish with open function traces");
  }
  program_.entry = entry;
  program_.num_ids = next_id_;
  program_.num_globals = num_globals_;
  return std::move(program_);
}

}  // namespace ag::lantern
