// Lantern runtime: forward evaluation and continuation-style reverse-mode
// AD over the IR.
//
// The backward implementation mirrors the CPS backpropagation of
// Wang & Rompf (the `cont` callbacks in the paper's generated C++): each
// Call executed during the forward pass keeps its callee frame alive —
// exactly what the continuation closure captures in the generated code —
// and the backward pass re-enters those frames in reverse order,
// recursing through data-dependent call trees.
#pragma once

#include <map>
#include <memory>
#include <unordered_map>
#include <utility>
#include <variant>
#include <vector>

#include "lantern/ir.h"
#include "obs/run_metadata.h"
#include "runtime/cancellation.h"

namespace ag::lantern {

using LValue = std::variant<std::monostate, Tensor, LTreePtr>;

[[nodiscard]] const Tensor& AsTensorL(const LValue& v);
[[nodiscard]] const LTreePtr& AsTreeL(const LValue& v);

class Executor {
 public:
  explicit Executor(const LProgram& program);

  // Forward-only evaluation of the entry function. `params` bind the
  // entry function's parameters; `globals` bind the by-reference
  // captured tensors (index = global index). The trailing
  // RunOptions/RunMetadata pair is the unified observability surface:
  // when given, per-binding LOp timings land in metadata->step_stats
  // (category "lantern") and forward wall time in phase_ns["forward"].
  [[nodiscard]] LValue Run(const std::vector<LValue>& params,
                           const std::vector<Tensor>& globals = {},
                           const obs::RunOptions* options = nullptr,
                           obs::RunMetadata* metadata = nullptr);

  // Forward + backward. The result must be a scalar tensor; returns
  // (value, d result / d params[i]) plus, via `global_grads`, the
  // accumulated gradient for each global (built in place, as the CPS
  // `grad +=` cells in Lantern's generated code are). Instrumented runs
  // record "forward" and "backward" phases separately.
  [[nodiscard]] std::pair<Tensor, std::vector<Tensor>> RunWithGradients(
      const std::vector<LValue>& params, const std::vector<Tensor>& globals,
      std::vector<Tensor>* global_grads,
      const obs::RunOptions* options = nullptr,
      obs::RunMetadata* metadata = nullptr);
  // Entry-params-only convenience (no globals).
  [[nodiscard]] std::pair<Tensor, std::vector<Tensor>> RunWithGradients(
      const std::vector<LValue>& params);

  // Bindings executed during the last run (work metric for benches).
  [[nodiscard]] int64_t bindings_executed() const {
    return bindings_executed_;
  }

 private:
  struct Frame {
    const LFunction* fn = nullptr;
    const std::vector<int>* global_of = nullptr;  // per-slot global index
    std::vector<LValue> args;
    // Slot storage indexed by function-local dense id.
    std::vector<LValue> slots;
    // Gradient storage, allocated lazily on first backward touch.
    std::vector<Tensor> grads;
    std::vector<bool> has_grad;
    // Call frames kept alive for the backward pass (the "continuations"),
    // and which branch each If took; keyed by slot id. Small vectors: a
    // typical function has at most a handful of calls/ifs.
    std::vector<std::pair<int, std::unique_ptr<Frame>>> calls;
    std::vector<std::pair<int, bool>> taken;

    [[nodiscard]] Frame* CallFrame(int id) const {
      for (const auto& [slot, frame] : calls) {
        if (slot == id) return frame.get();
      }
      return nullptr;
    }
    [[nodiscard]] bool Taken(int id) const {
      for (const auto& [slot, taken_branch] : taken) {
        if (slot == id) return taken_branch;
      }
      return false;
    }
  };

  // Compilation pass: clones the program with per-function dense slot
  // ids (frames shrink from program-wide to function-local size) and
  // records per-slot global indices.
  void Compile(const LProgram& source);
  void RenumberBlock(Block* block, std::map<int, int>* remap, int* next,
                     std::vector<int>* global_of);

  std::unique_ptr<Frame> ForwardFunction(const LFunction& fn,
                                         std::vector<LValue> args);
  void ForwardBlock(const Block& block, Frame& frame);
  void BackwardFunction(Frame& frame);
  void BackwardBlock(const Block& block, Frame& frame);
  void Accumulate(Frame& frame, int id, const Tensor& grad);
  void AccumulateGlobal(int global_index, const Tensor& grad);

  // The compiled (dense-renumbered) program; `program_` points at it.
  LProgram compiled_;
  const LProgram* program_;
  // Per-function, per-slot global index (-1 if the slot is not a kGlobal
  // read), keyed by function name.
  std::map<std::string, std::vector<int>> global_of_;
  // Live only during a Run / RunWithGradients:
  const std::vector<Tensor>* globals_ = nullptr;
  // In-place gradient accumulators, one buffer per global.
  std::vector<std::vector<float>> global_accums_;
  int64_t bindings_executed_ = 0;
  // Live only during an instrumented Run / RunWithGradients.
  obs::RunRecorder* rec_ = nullptr;
  // Live only during a Run / RunWithGradients with interruption knobs
  // set (RunOptions::deadline_ms / cancel_token): polled once per
  // binding in the forward and backward op loops.
  runtime::CancelCheck* cancel_ = nullptr;
  // Runaway-loop guard. Lantern stages data-dependent loops as CPS
  // recursion, so the While-iteration bound of the graph engines maps
  // to a recursive call-depth bound here: RunOptions::
  // max_while_iterations, clamped to kMaxCallDepth — the native stack
  // is the hard resource, and a structured error beats a segfault.
  // kMaxCallDepth applies even with no RunOptions at all: ForwardFunction
  // frames cost ~1-2 KB of native stack each, so 4000 frames stays
  // within a default 8 MB stack with headroom, while anything deeper
  // previously died as a stack-overflow segfault. Documented as part of
  // the public contract in DESIGN.md §4f and the README.
  static constexpr int64_t kMaxCallDepth = 4000;
  int64_t max_call_depth_ = kMaxCallDepth;
  int64_t call_depth_ = 0;
};

}  // namespace ag::lantern
