// Tracing builder for the Lantern IR.
//
// The interpreter drives this while executing converted PyMini code in
// Lantern staging mode: every tensor op appends a let-binding, `if` on a
// symbolic condition opens two blocks, and converted_call on a user
// function emits `__def_staged` / `__call_staged` semantics — the callee
// is traced once (even while *its own* trace is still open, which is what
// makes recursion work), and every call site becomes a Call binding.
#pragma once

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "lantern/ir.h"
#include "lantern/sym.h"

namespace ag::lantern {

class ProgramBuilder {
 public:
  // ---- function definition scopes ----
  // Opens a definition for `name` and returns its parameter symbols.
  std::vector<SymPtr> BeginFunction(const std::string& name,
                                    const std::vector<bool>& param_is_tree);
  void EndFunction(const SymPtr& result);
  // Multi-value function return (tuple-returning staged functions).
  void EndFunctionMulti(const std::vector<SymPtr>& results);

  [[nodiscard]] bool IsDefined(const std::string& name) const {
    return program_.functions.count(name) > 0;
  }
  // True while `name`'s trace is still open (a recursive call site).
  [[nodiscard]] bool IsDefining(const std::string& name) const;
  [[nodiscard]] bool InFunction() const { return !defining_.empty(); }

  // ---- globals (by-reference captures, usable from any function) ----
  SymPtr MakeGlobal(int index);

  // ---- bindings ----
  SymPtr Emit(LOp op, const std::vector<SymPtr>& inputs);
  SymPtr EmitConst(Tensor value);
  SymPtr EmitSlice0(const SymPtr& input, int start, int len);
  SymPtr EmitReshape(const SymPtr& input, std::vector<int> dims);
  SymPtr EmitCall(const std::string& callee,
                  const std::vector<SymPtr>& args);
  std::vector<SymPtr> EmitCallMulti(const std::string& callee,
                                    const std::vector<SymPtr>& args,
                                    size_t num_results);

  // ---- if blocks ----
  // Usage: BeginBlock(); ...trace...; Block b = TakeBlock(result);
  void BeginBlock();
  [[nodiscard]] Block TakeBlock(const SymPtr& result);
  [[nodiscard]] Block TakeBlockMulti(const std::vector<SymPtr>& results);
  SymPtr EmitIf(const SymPtr& cond, Block then_block, Block else_block,
                bool result_is_tree, bool result_is_bool);
  // Multi-value conditional: both blocks must carry `results` of size n.
  std::vector<SymPtr> EmitIfMulti(const SymPtr& cond, Block then_block,
                                  Block else_block,
                                  const std::vector<bool>& result_is_tree);

  // Finalizes the program with `entry` as its entry point.
  [[nodiscard]] LProgram Finish(const std::string& entry);

 private:
  struct FuncCtx {
    LFunction fn;
    // Stack of open blocks: fn.body plus nested If branches.
    std::vector<Block*> blocks;
    // Per-block cache of kGlobal bindings: (block, global index) -> id.
    std::map<std::pair<const Block*, int>, int> global_ids;
  };

  [[nodiscard]] Block* current_block();
  SymPtr NewSym(bool is_tree, bool is_bool);
  Binding& Append(LOp op, int id);
  // Maps a sym to a binding id valid in the current block, materializing
  // kGlobal bindings for global syms; rejects foreign (cross-function)
  // non-global syms.
  int ResolveInput(const SymPtr& sym);

  LProgram program_;
  // unique_ptr storage: FuncCtx addresses (and the Block* pointers into
  // their fn.body) must stay stable while nested definitions open.
  std::vector<std::unique_ptr<FuncCtx>> defining_;
  int next_id_ = 0;
  int num_globals_ = 0;
};

}  // namespace ag::lantern
