// Symbolic handle for values traced into the Lantern IR. Kept minimal so
// core/value.h can hold one without depending on the full IR headers.
#pragma once

#include <memory>

namespace ag::lantern {

// A reference to a let-binding (or parameter) in the function currently
// being traced. `is_tree` marks tree-structured (non-tensor) values;
// `is_bool` marks boolean scalars (branch conditions).
//
// A sym with `global_index >= 0` is a *global*: a tensor captured by
// reference by every staged function (the paper's generated C++ captures
// enclosing state with `[&]` lambdas). Globals are not threaded through
// calls; their gradients accumulate in-place in a single executor-level
// buffer.
struct Sym {
  int id = -1;
  bool is_tree = false;
  bool is_bool = false;
  int global_index = -1;
  // Identity of the function trace that owns this binding (builder
  // internal; null for globals).
  const void* owner = nullptr;
};

using SymPtr = std::shared_ptr<Sym>;

}  // namespace ag::lantern
