// C++ source emission from the Lantern IR, in the CPS style of the
// paper's §8 snippet: each staged function becomes a recursive C++ lambda
// taking an explicit continuation `cont`, and backpropagation is encoded
// as nested continuation closures (`cont_l`, `cont_r`, ...).
//
// This emitter produces the artifact the paper's pipeline feeds to a C++
// toolchain. In this repository the emitted source is a build artifact
// for inspection (examples write it to disk); execution goes through
// lantern::Executor, which interprets the same IR with the same CPS
// gradient-flow structure, since invoking a compiler at runtime is out of
// scope for the reproduction.
#pragma once

#include <string>

#include "lantern/ir.h"

namespace ag::lantern {

[[nodiscard]] std::string EmitCpp(const LProgram& program);

}  // namespace ag::lantern
