#include "core/artifact_io.h"

#include <memory>
#include <unordered_set>

#include "obs/run_metadata.h"
#include "support/error.h"

namespace ag::core {
namespace {

// Collects every While/Cond FuncGraph reachable from `g` (including
// nested control flow) in pre-order — the set of subgraphs Session
// would lazily plan-compile via PlanFor. FusedElementwise bodies are
// serialized as graphs (they ride along as subgraph attrs) but get no
// plan: the fused kernel interprets them directly.
void CollectPlannedSubgraphs(const graph::Graph* g,
                             std::unordered_set<const graph::Graph*>* seen,
                             std::vector<const graph::FuncGraph*>* out) {
  if (!seen->insert(g).second) return;
  for (const auto& node : g->nodes()) {
    const bool planned = node->op() == "While" || node->op() == "Cond";
    for (const auto& [key, attr] : node->attrs()) {
      const auto* sub = std::get_if<std::shared_ptr<graph::Graph>>(&attr);
      if (sub == nullptr) continue;
      if (planned) {
        if (const auto* fg =
                dynamic_cast<const graph::FuncGraph*>(sub->get())) {
          if (seen->count(fg) == 0) out->push_back(fg);
        }
      }
      CollectPlannedSubgraphs(sub->get(), seen, out);
    }
  }
}

}  // namespace

void SaveArtifact(
    const std::string& path,
    const std::vector<std::pair<std::string, const StagedFunction*>>&
        functions,
    const SaveArtifactOptions& options) {
  artifact::ArtifactModule module;
  module.producer = "agc (autograph-cpp)";
  module.source_path = options.source_path;
  module.pipeline = options.pipeline;
  module.functions.reserve(functions.size());
  for (const auto& [name, sf] : functions) {
    if (sf == nullptr || sf->graph == nullptr || sf->session == nullptr) {
      throw ValueError("SaveArtifact: function '" + name +
                       "' is not a staged function");
    }
    artifact::ArtifactFunction af;
    af.name = name;
    af.feed_names = sf->feed_names;
    af.fetch_was_tuple = sf->fetch_was_tuple;
    af.graph = sf->graph;
    af.fetches = sf->fetches;
    // CompilePlan is pure; compiling here (rather than exporting the
    // session's lazy caches) guarantees the artifact carries a plan for
    // every control-flow body even if it never executed.
    af.top_plan = sf->session->CompilePlan(sf->fetches, /*allow_args=*/false);
    std::unordered_set<const graph::Graph*> seen;
    std::vector<const graph::FuncGraph*> subgraphs;
    CollectPlannedSubgraphs(sf->graph.get(), &seen, &subgraphs);
    af.sub_plans.reserve(subgraphs.size());
    for (const graph::FuncGraph* fg : subgraphs) {
      af.sub_plans.emplace_back(
          fg, sf->session->CompilePlan(fg->returns, /*allow_args=*/true));
    }
    af.variables = sf->session->SnapshotVariables();
    module.functions.push_back(std::move(af));
  }
  artifact::WriteArtifact(path, module);
}

std::map<std::string, StagedFunction> StageFromArtifact(
    const std::string& path, const artifact::ReadOptions& options,
    artifact::InspectInfo* info) {
  const int64_t t0 = obs::NowNs();
  artifact::ArtifactModule module = artifact::ReadArtifact(path, options, info);
  std::map<std::string, StagedFunction> out;
  for (artifact::ArtifactFunction& af : module.functions) {
    StagedFunction sf;
    sf.graph = af.graph;
    sf.fetches = af.fetches;
    sf.fetch_was_tuple = af.fetch_was_tuple;
    sf.feed_names = af.feed_names;
    sf.session = std::make_unique<exec::Session>(sf.graph.get());
    // Pre-populate both plan caches: TopPlanFor and PlanFor hit on
    // first Run, so the session never calls CompilePlan.
    sf.session->InstallTopPlan(af.fetches, std::move(af.top_plan));
    for (auto& [sub_graph, plan] : af.sub_plans) {
      sf.session->InstallPlan(sub_graph, std::move(plan));
    }
    for (auto& [name, value] : af.variables) {
      sf.session->SetVariable(name, std::move(value));
    }
    sf.metadata.phase_ns["artifact_load"] = obs::NowNs() - t0;
    if (!out.emplace(af.name, std::move(sf)).second) {
      throw ValueError("artifact: '" + path + "' defines function '" +
                       af.name + "' twice");
    }
  }
  return out;
}

}  // namespace ag::core
