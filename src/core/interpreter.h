// The PyMini interpreter.
//
// Runs in two modes distinguished only by the values flowing through it:
//   - Eager: tensors are concrete; every op executes immediately (this is
//     the "Eager" baseline of the paper's evaluation).
//   - Staging: the interpreter holds a GraphContext; tf ops and the
//     ag__ dynamic-dispatch operators emit graph nodes instead of
//     computing. Running the graph afterwards amortizes all interpreter
//     overhead — the core claim of the paper.
//
// The interpreter also implements the runtime half of conversion:
// converted_call converts user functions on first call (recursive
// conversion, with a cache), and errors are rewritten with frames that
// point to the user's original source lines (paper Appendix B).
#pragma once

#include <map>
#include <memory>

#include "core/value.h"
#include "graph/ops.h"
#include "lantern/builder.h"
#include "transforms/passes.h"

namespace ag::core {

// State for tracing into the Lantern backend (paper §8). Owns the IR
// builder plus the call-site specialization cache: staged functions are
// specialized per argument-kind signature, as the paper's
// __def_staged/__call_staged machinery does.
struct LanternContext {
  lantern::ProgramBuilder builder;
  // (definition node, signature) -> staged function name.
  std::map<std::pair<const void*, std::string>, std::string> staged_names;
  // staged function name -> number of returned values (1 for single).
  std::map<std::string, int> staged_arity;
  std::map<std::string, int> name_counts;

  std::string UniqueName(const std::string& base) {
    const int n = name_counts[base]++;
    return n == 0 ? base : base + "_" + std::to_string(n);
  }
};

class Interpreter {
 public:
  struct Options {
    transforms::ConversionOptions conversion;
    // Maximum call depth before raising (guards runaway recursion).
    int max_call_depth = 2000;
  };

  explicit Interpreter(EnvPtr globals)
      : globals_(std::move(globals)), options_() {}
  Interpreter(EnvPtr globals, Options options)
      : globals_(std::move(globals)), options_(std::move(options)) {}

  // ---- staging mode ----
  [[nodiscard]] graph::GraphContext* graph_ctx() const { return graph_ctx_; }
  void set_graph_ctx(graph::GraphContext* ctx) { graph_ctx_ = ctx; }
  [[nodiscard]] bool staging() const { return graph_ctx_ != nullptr; }

  [[nodiscard]] LanternContext* lantern_ctx() const { return lantern_ctx_; }
  void set_lantern_ctx(LanternContext* ctx) { lantern_ctx_ = ctx; }
  [[nodiscard]] bool lantern_staging() const {
    return lantern_ctx_ != nullptr;
  }

  // ---- execution ----
  // Calls any callable value (function, native, callable object).
  Value CallCallable(const Value& fn, std::vector<Value> args,
                     Kwargs kwargs = {});
  Value CallFunctionValue(const FunctionPtr& fn, std::vector<Value> args,
                          Kwargs kwargs = {});
  // Evaluates an expression in an environment.
  Value EvalExpr(const lang::ExprPtr& expr, const EnvPtr& env);
  // Executes top-level statements (e.g. a Module body) in `env`.
  void ExecTopLevel(const lang::StmtList& body, const EnvPtr& env);

  // ---- conversion (runtime half) ----
  // Converts a user function value (cached per definition node).
  FunctionPtr ConvertFunctionValue(const FunctionPtr& fn);

  [[nodiscard]] const EnvPtr& globals() const { return globals_; }
  [[nodiscard]] const Options& options() const { return options_; }

  // Statements executed (rough interpreter-work metric for the dispatch
  // overhead ablation bench).
  [[nodiscard]] int64_t statements_executed() const {
    return statements_executed_;
  }

 private:
  enum class Flow { kNormal, kBreak, kContinue, kReturn };

  Flow ExecBody(const lang::StmtList& body, const EnvPtr& env, Value* ret);
  Flow ExecStmt(const lang::StmtPtr& stmt, const EnvPtr& env, Value* ret);
  void AssignTarget(const lang::ExprPtr& target, Value value,
                    const EnvPtr& env);
  Value EvalCall(const std::shared_ptr<lang::CallExpr>& call,
                 const EnvPtr& env);

  EnvPtr globals_;
  Options options_;
  graph::GraphContext* graph_ctx_ = nullptr;
  LanternContext* lantern_ctx_ = nullptr;
  int call_depth_ = 0;
  bool in_converted_code_ = false;
  // Statement currently executing (for error-frame construction).
  const lang::Stmt* cur_stmt_ = nullptr;
  int64_t statements_executed_ = 0;
  std::map<const lang::FunctionDefStmt*,
           std::shared_ptr<lang::FunctionDefStmt>>
      conversion_cache_;
};

}  // namespace ag::core
