#include "core/interpreter.h"

#include "core/operators.h"
#include "obs/trace.h"
#include "runtime/cancellation.h"
#include "tensor/tensor_ops.h"

namespace ag::core {

using lang::Cast;
using lang::ExprKind;
using lang::ExprPtr;
using lang::StmtKind;
using lang::StmtList;
using lang::StmtPtr;

namespace {

// RAII guard for call depth / converted-code flag / name scopes.
class CallGuard {
 public:
  CallGuard(int* depth, int max_depth) : depth_(depth) {
    if (++*depth_ > max_depth) {
      --*depth_;
      depth_ = nullptr;
      throw RuntimeError("maximum recursion depth exceeded");
    }
  }
  ~CallGuard() {
    if (depth_ != nullptr) --*depth_;
  }
  CallGuard(const CallGuard&) = delete;
  CallGuard& operator=(const CallGuard&) = delete;

 private:
  int* depth_;
};

// Frame-exit collector for def-created closure cycles. A `def` inside a
// function binds a FunctionValue whose closure is the defining frame's
// Env, while the Env holds the function Value: a shared_ptr cycle no
// refcount can free (the LeakSanitizer leak on every AutoGraph staging
// path before this existed). On frame exit, if every such cyclic
// function is referenced only by its own binding and the Env is
// referenced only by `env` here plus those closure back-edges, nothing
// outside the cycle can reach the frame any more — drop the bindings.
// A closure that was returned or stored elsewhere raises one of the
// use_counts and the frame is (correctly) kept alive.
void ReleaseFrameCycles(const EnvPtr& env) {
  long cyclic = 0;
  for (const auto& [name, value] : env->bindings()) {
    if (!value.IsFunction()) continue;
    const FunctionPtr& fn = value.AsFunction();
    if (fn->closure == env) {
      if (fn.use_count() != 1) return;  // aliased or escaped: keep
      ++cyclic;
    }
  }
  if (cyclic == 0) return;  // no cycle, plain refcounting suffices
  if (env.use_count() != 1 + cyclic) return;  // frame escaped: keep
  env->ClearBindings();
}

// RAII so the collector runs on the exception path too.
class FrameCycleGuard {
 public:
  explicit FrameCycleGuard(const EnvPtr& env) : env_(env) {}
  ~FrameCycleGuard() { ReleaseFrameCycles(env_); }
  FrameCycleGuard(const FrameCycleGuard&) = delete;
  FrameCycleGuard& operator=(const FrameCycleGuard&) = delete;

 private:
  const EnvPtr& env_;
};

}  // namespace

Value Interpreter::CallCallable(const Value& fn, std::vector<Value> args,
                                Kwargs kwargs) {
  if (fn.IsFunction()) {
    return CallFunctionValue(fn.AsFunction(), std::move(args),
                             std::move(kwargs));
  }
  if (fn.IsNative()) {
    obs::TraceScope scope(obs::CurrentTracer(), fn.AsNative()->name,
                          staging() ? "stage" : "eager");
    return fn.AsNative()->fn(*this, args, kwargs);
  }
  if (fn.IsObject()) {
    const ObjectPtr& obj = fn.AsObject();
    if (obj->HasAttr("__call__")) {
      return CallCallable(obj->GetAttr("__call__"), std::move(args),
                          std::move(kwargs));
    }
  }
  throw ValueError(std::string(fn.TypeName()) + " object is not callable: " +
                   fn.Repr());
}

Value Interpreter::CallFunctionValue(const FunctionPtr& fn,
                                     std::vector<Value> args,
                                     Kwargs kwargs) {
  CallGuard guard(&call_depth_, options_.max_call_depth);

  auto env = std::make_shared<Env>(fn->closure);
  // Declared after `env` so it runs before env's destructor, on normal
  // return and unwind alike.
  FrameCycleGuard cycle_guard(env);
  if (args.size() > fn->params.size()) {
    throw ValueError(fn->name + "() takes " +
                     std::to_string(fn->params.size()) + " arguments but " +
                     std::to_string(args.size()) + " were given");
  }
  std::vector<bool> bound(fn->params.size(), false);
  for (size_t i = 0; i < args.size(); ++i) {
    env->Set(fn->params[i], std::move(args[i]));
    bound[i] = true;
  }
  for (auto& [name, value] : kwargs) {
    bool found = false;
    for (size_t i = 0; i < fn->params.size(); ++i) {
      if (fn->params[i] == name) {
        if (bound[i]) {
          throw ValueError(fn->name + "() got multiple values for '" + name +
                           "'");
        }
        env->Set(name, std::move(value));
        bound[i] = true;
        found = true;
        break;
      }
    }
    if (!found) {
      throw ValueError(fn->name + "() got an unexpected keyword argument '" +
                       name + "'");
    }
  }
  const size_t first_default = fn->params.size() - fn->defaults.size();
  for (size_t i = 0; i < fn->params.size(); ++i) {
    if (bound[i]) continue;
    if (i >= first_default) {
      env->Set(fn->params[i], fn->defaults[i - first_default]);
    } else {
      throw ValueError(fn->name + "() missing required argument '" +
                       fn->params[i] + "'");
    }
  }

  const bool prev_converted = in_converted_code_;
  in_converted_code_ = fn->converted;
  const bool scoped = staging() && fn->converted && !fn->name.empty();
  if (scoped) graph_ctx_->current()->PushNameScope(fn->name);
  const lang::Stmt* saved_stmt = cur_stmt_;

  Value ret;
  try {
    if (fn->expr) {
      ret = EvalExpr(fn->expr, env);
    } else {
      ExecBody(fn->body, env, &ret);
    }
  } catch (const Error& e) {
    if (scoped) graph_ctx_->current()->PopNameScope();
    in_converted_code_ = prev_converted;
    // Error rewriting (paper Appendix B): attach a frame pointing to the
    // user's ORIGINAL source line via the node's origin location.
    SourceFrame frame;
    frame.function_name = fn->name.empty() ? "<lambda>" : fn->name;
    if (cur_stmt_ != nullptr && cur_stmt_->origin.valid()) {
      frame.location = cur_stmt_->origin;
    } else {
      frame.generated = true;
    }
    cur_stmt_ = saved_stmt;
    throw e.WithFrame(std::move(frame));
  }
  if (scoped) graph_ctx_->current()->PopNameScope();
  in_converted_code_ = prev_converted;
  cur_stmt_ = saved_stmt;
  return ret;
}

void Interpreter::ExecTopLevel(const StmtList& body, const EnvPtr& env) {
  Value ret;
  ExecBody(body, env, &ret);
}

Interpreter::Flow Interpreter::ExecBody(const StmtList& body,
                                        const EnvPtr& env, Value* ret) {
  for (const StmtPtr& s : body) {
    Flow flow = ExecStmt(s, env, ret);
    if (flow != Flow::kNormal) return flow;
  }
  return Flow::kNormal;
}

Interpreter::Flow Interpreter::ExecStmt(const StmtPtr& stmt,
                                        const EnvPtr& env, Value* ret) {
  ++statements_executed_;
  cur_stmt_ = stmt.get();
  switch (stmt->kind) {
    case StmtKind::kFunctionDef: {
      auto f = Cast<lang::FunctionDefStmt>(stmt);
      auto fn = std::make_shared<FunctionValue>();
      fn->name = f->name;
      fn->params = f->params;
      fn->body = f->body;
      fn->closure = env;
      fn->converted = in_converted_code_;
      fn->def_node = f;
      for (const ExprPtr& d : f->defaults) {
        fn->defaults.push_back(EvalExpr(d, env));
      }
      env->Set(f->name, Value(std::move(fn)));
      return Flow::kNormal;
    }
    case StmtKind::kReturn: {
      auto r = Cast<lang::ReturnStmt>(stmt);
      *ret = r->value ? EvalExpr(r->value, env) : Value::None();
      return Flow::kReturn;
    }
    case StmtKind::kAssign: {
      auto a = Cast<lang::AssignStmt>(stmt);
      AssignTarget(a->target, EvalExpr(a->value, env), env);
      return Flow::kNormal;
    }
    case StmtKind::kAugAssign: {
      auto a = Cast<lang::AugAssignStmt>(stmt);
      Value current = EvalExpr(a->target, env);
      Value next = ops::Binary(*this, a->op, current, EvalExpr(a->value, env));
      AssignTarget(a->target, std::move(next), env);
      return Flow::kNormal;
    }
    case StmtKind::kExprStmt:
      (void)EvalExpr(Cast<lang::ExprStmt>(stmt)->value, env);
      return Flow::kNormal;
    case StmtKind::kIf: {
      auto i = Cast<lang::IfStmt>(stmt);
      if (Truthy(EvalExpr(i->test, env))) {
        return ExecBody(i->body, env, ret);
      }
      return ExecBody(i->orelse, env, ret);
    }
    case StmtKind::kWhile: {
      auto w = Cast<lang::WhileStmt>(stmt);
      // Cooperative interruption for imperative loops: CallEager with
      // deadline/cancel/max_while_iterations options installs the
      // thread's CancelCheck. Both checks sit after the condition came
      // up true, so a loop that terminates cleanly within the bound
      // never trips it.
      runtime::CancelCheck* cancel = runtime::CurrentCancelCheck();
      for (int64_t iter = 0; Truthy(EvalExpr(w->test, env)); ++iter) {
        if (cancel != nullptr) {
          cancel->Poll("eager while loop", iter);
          cancel->CheckLoopBound("eager while loop", iter);
        }
        Flow flow = ExecBody(w->body, env, ret);
        if (flow == Flow::kBreak) break;
        if (flow == Flow::kReturn) return flow;
        // kContinue and kNormal both loop.
      }
      return Flow::kNormal;
    }
    case StmtKind::kFor: {
      auto f = Cast<lang::ForStmt>(stmt);
      Value iter = EvalExpr(f->iter, env);
      std::vector<Value> items;
      if (iter.IsList()) {
        items = *iter.AsList();
      } else if (iter.IsTuple()) {
        items = iter.AsTuple()->elts;
      } else if (iter.IsTensor()) {
        for (Tensor& row : Unstack(iter.AsTensor())) {
          items.emplace_back(std::move(row));
        }
      } else if (iter.IsGraphTensor()) {
        throw StagingError(
            "iterating a symbolic tensor requires AutoGraph conversion");
      } else {
        throw ValueError(std::string(iter.TypeName()) +
                         " object is not iterable");
      }
      for (const Value& item : items) {
        AssignTarget(f->target, item, env);
        Flow flow = ExecBody(f->body, env, ret);
        if (flow == Flow::kBreak) break;
        if (flow == Flow::kReturn) return flow;
      }
      return Flow::kNormal;
    }
    case StmtKind::kBreak:
      return Flow::kBreak;
    case StmtKind::kContinue:
      return Flow::kContinue;
    case StmtKind::kPass:
      return Flow::kNormal;
    case StmtKind::kAssert: {
      auto a = Cast<lang::AssertStmt>(stmt);
      Value test = EvalExpr(a->test, env);
      if (!Truthy(test)) {
        std::string msg = "assertion failed";
        if (a->msg) msg += ": " + EvalExpr(a->msg, env).Repr();
        throw RuntimeError(msg);
      }
      return Flow::kNormal;
    }
  }
  throw InternalError("ExecStmt: unknown statement kind");
}

void Interpreter::AssignTarget(const ExprPtr& target, Value value,
                               const EnvPtr& env) {
  switch (target->kind) {
    case ExprKind::kName:
      env->Set(Cast<lang::NameExpr>(target)->id, std::move(value));
      return;
    case ExprKind::kTuple:
    case ExprKind::kList: {
      const auto& elts = target->kind == ExprKind::kTuple
                             ? Cast<lang::TupleExpr>(target)->elts
                             : Cast<lang::ListExpr>(target)->elts;
      const std::vector<Value>* values = nullptr;
      std::vector<Value> tensor_rows;
      if (value.IsTuple()) {
        values = &value.AsTuple()->elts;
      } else if (value.IsList()) {
        values = value.AsList().get();
      } else if (value.IsTensor()) {
        for (Tensor& row : Unstack(value.AsTensor())) {
          tensor_rows.emplace_back(std::move(row));
        }
        values = &tensor_rows;
      } else {
        throw ValueError("cannot unpack " + std::string(value.TypeName()) +
                         " into " + std::to_string(elts.size()) + " targets");
      }
      if (values->size() != elts.size()) {
        throw ValueError("cannot unpack " + std::to_string(values->size()) +
                         " values into " + std::to_string(elts.size()) +
                         " targets");
      }
      for (size_t i = 0; i < elts.size(); ++i) {
        AssignTarget(elts[i], (*values)[i], env);
      }
      return;
    }
    case ExprKind::kAttribute: {
      auto a = Cast<lang::AttributeExpr>(target);
      Value obj = EvalExpr(a->value, env);
      if (!obj.IsObject()) {
        throw ValueError(std::string("cannot set attribute on ") +
                         obj.TypeName());
      }
      obj.AsObject()->attrs[a->attr] = std::move(value);
      return;
    }
    case ExprKind::kSubscript: {
      auto s = Cast<lang::SubscriptExpr>(target);
      Value obj = EvalExpr(s->value, env);
      Value index = EvalExpr(s->index, env);
      Value updated = ops::SetItem(*this, obj, index, value);
      // Value-semantics containers (tensors) need the rebind; Python
      // lists were updated in place and rebinding is a no-op.
      if (s->value->kind == ExprKind::kName) {
        env->Set(Cast<lang::NameExpr>(s->value)->id, std::move(updated));
      }
      return;
    }
    default:
      throw ValueError("invalid assignment target");
  }
}

Value Interpreter::EvalCall(const std::shared_ptr<lang::CallExpr>& call,
                            const EnvPtr& env) {
  Value fn = EvalExpr(call->func, env);
  std::vector<Value> args;
  args.reserve(call->args.size());
  for (const ExprPtr& a : call->args) args.push_back(EvalExpr(a, env));
  Kwargs kwargs;
  kwargs.reserve(call->keywords.size());
  for (const lang::Keyword& kw : call->keywords) {
    kwargs.emplace_back(kw.name, EvalExpr(kw.value, env));
  }
  return CallCallable(fn, std::move(args), std::move(kwargs));
}

Value Interpreter::EvalExpr(const ExprPtr& expr, const EnvPtr& env) {
  switch (expr->kind) {
    case ExprKind::kName:
      return env->Lookup(Cast<lang::NameExpr>(expr)->id);
    case ExprKind::kNumber: {
      auto n = Cast<lang::NumberExpr>(expr);
      if (n->is_int) return Value(static_cast<int64_t>(n->value));
      return Value(n->value);
    }
    case ExprKind::kString:
      return Value(Cast<lang::StringExpr>(expr)->value);
    case ExprKind::kBool:
      return Value(Cast<lang::BoolExpr>(expr)->value);
    case ExprKind::kNone:
      return Value::None();
    case ExprKind::kTuple: {
      std::vector<Value> elts;
      for (const ExprPtr& e : Cast<lang::TupleExpr>(expr)->elts) {
        elts.push_back(EvalExpr(e, env));
      }
      return MakeTuple(std::move(elts));
    }
    case ExprKind::kList: {
      std::vector<Value> elts;
      for (const ExprPtr& e : Cast<lang::ListExpr>(expr)->elts) {
        elts.push_back(EvalExpr(e, env));
      }
      return MakeList(std::move(elts));
    }
    case ExprKind::kAttribute: {
      auto a = Cast<lang::AttributeExpr>(expr);
      Value obj = EvalExpr(a->value, env);
      if (obj.IsObject()) return obj.AsObject()->GetAttr(a->attr);
      if (obj.IsLantern()) return ops::LanternTreeAttr(*this, obj, a->attr);
      if (obj.IsList()) {
        // Bound list methods for unconverted (eager) execution; converted
        // code goes through ag__.list_append / ag__.list_pop instead.
        if (a->attr == "append") {
          return MakeNative(
              "list.append",
              [obj](Interpreter&, std::vector<Value>& args, Kwargs&) {
                if (args.size() != 1) {
                  throw ValueError("append() takes exactly one argument");
                }
                obj.AsList()->push_back(args[0]);
                return Value::None();
              });
        }
        if (a->attr == "pop") {
          return MakeNative(
              "list.pop",
              [obj](Interpreter&, std::vector<Value>& args, Kwargs&) {
                if (!args.empty()) {
                  throw ValueError("pop() with an index is not supported");
                }
                auto& elts = *obj.AsList();
                if (elts.empty()) throw RuntimeError("pop from empty list");
                Value last = elts.back();
                elts.pop_back();
                return last;
              });
        }
      }
      throw ValueError(std::string(obj.TypeName()) +
                       " object has no attribute '" + a->attr + "'");
    }
    case ExprKind::kSubscript: {
      auto s = Cast<lang::SubscriptExpr>(expr);
      Value obj = EvalExpr(s->value, env);
      Value index = EvalExpr(s->index, env);
      return ops::GetItem(*this, obj, index);
    }
    case ExprKind::kCall:
      return EvalCall(Cast<lang::CallExpr>(expr), env);
    case ExprKind::kUnary: {
      auto u = Cast<lang::UnaryExpr>(expr);
      Value operand = EvalExpr(u->operand, env);
      switch (u->op) {
        case lang::UnaryOp::kNot:
          return ops::Not(*this, operand);
        case lang::UnaryOp::kNeg:
          return ops::Negate(*this, operand);
        case lang::UnaryOp::kPos:
          return operand;
      }
      throw InternalError("bad unary op");
    }
    case ExprKind::kBinary: {
      auto b = Cast<lang::BinaryExpr>(expr);
      return ops::Binary(*this, b->op, EvalExpr(b->left, env),
                         EvalExpr(b->right, env));
    }
    case ExprKind::kCompare: {
      auto c = Cast<lang::CompareExpr>(expr);
      return ops::Compare(*this, c->op, EvalExpr(c->left, env),
                          EvalExpr(c->right, env));
    }
    case ExprKind::kBoolOp: {
      // Unconverted short-circuit semantics.
      auto b = Cast<lang::BoolOpExpr>(expr);
      Value left = EvalExpr(b->left, env);
      if (b->op == lang::BoolOp::kAnd) {
        return Truthy(left) ? EvalExpr(b->right, env) : left;
      }
      return Truthy(left) ? left : EvalExpr(b->right, env);
    }
    case ExprKind::kIfExp: {
      auto i = Cast<lang::IfExpExpr>(expr);
      return Truthy(EvalExpr(i->test, env)) ? EvalExpr(i->body, env)
                                            : EvalExpr(i->orelse, env);
    }
    case ExprKind::kLambda: {
      auto l = Cast<lang::LambdaExpr>(expr);
      auto fn = std::make_shared<FunctionValue>();
      fn->name = "";
      fn->params = l->params;
      fn->expr = l->body;
      fn->closure = env;
      fn->converted = in_converted_code_;
      return Value(std::move(fn));
    }
  }
  throw InternalError("EvalExpr: unknown expression kind");
}

FunctionPtr Interpreter::ConvertFunctionValue(const FunctionPtr& fn) {
  if (fn->converted) return fn;
  auto out = std::make_shared<FunctionValue>(*fn);
  out->converted = true;
  if (fn->expr) {
    // Lambdas: only the expression-level passes apply.
    lang::StmtList body{std::make_shared<lang::ReturnStmt>(
        lang::CloneExpr(fn->expr))};
    body = transforms::CallTreesPass(body, options_.conversion);
    body = transforms::TernaryPass(body);
    body = transforms::LogicalPass(body);
    out->expr = lang::Cast<lang::ReturnStmt>(body[0])->value;
    return out;
  }
  if (!fn->def_node) {
    return out;  // nothing to convert (synthetic function)
  }
  auto it = conversion_cache_.find(fn->def_node.get());
  std::shared_ptr<lang::FunctionDefStmt> converted;
  if (it != conversion_cache_.end()) {
    converted = it->second;
  } else {
    converted =
        transforms::ConvertFunctionAst(fn->def_node, options_.conversion);
    conversion_cache_[fn->def_node.get()] = converted;
  }
  out->params = converted->params;
  out->body = converted->body;
  out->def_node = converted;
  return out;
}

}  // namespace ag::core
