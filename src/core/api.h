// Public AutoGraph-C++ API (the `@ag.convert()` / tf.function analog).
//
// Typical use:
//
//   ag::core::AutoGraph agc;
//   agc.LoadSource(R"(
//     def f(x):
//       if x > 0:
//         x = x * x
//       return x
//   )");
//
//   // Eager execution (imperative semantics, per-op dispatch):
//   Value y = agc.CallEager("f", {Value(Tensor::Scalar(3.f))});
//
//   // Staged execution (conversion + graph build + Session):
//   StagedFunction sf = agc.Stage("f", {StageArg::Placeholder("x")});
//   Tensor out = sf.Run1({Tensor::Scalar(3.f)});
//
// The staged path amortizes all conversion and interpretation cost: Run()
// only executes graph kernels.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "analysis/lint.h"
#include "core/interpreter.h"
#include "core/modules.h"
#include "exec/session.h"
#include "graph/optimize.h"
#include "lang/parser.h"
#include "lang/unparser.h"

namespace ag::core {

// How one function parameter is bound when staging.
struct StageArg {
  // A graph Placeholder fed at Run() time.
  static StageArg Placeholder(std::string name,
                              DType dtype = DType::kFloat32) {
    StageArg a;
    a.is_placeholder = true;
    a.name = std::move(name);
    a.dtype = dtype;
    return a;
  }
  // A fixed value baked into the trace (hyperparameters, functions,
  // objects, eager tensors -> constants).
  static StageArg Constant(Value v) {
    StageArg a;
    a.value = std::move(v);
    return a;
  }

  bool is_placeholder = false;
  std::string name;
  DType dtype = DType::kFloat32;
  Value value;
};

// A converted, staged, ready-to-run function: graph + session.
struct StagedFunction {
  std::shared_ptr<graph::Graph> graph;
  std::vector<graph::Output> fetches;
  bool fetch_was_tuple = false;
  std::vector<std::string> feed_names;  // placeholder order for Run()
  std::unique_ptr<exec::Session> session;
  graph::OptimizeStats optimize_stats;

  // One graph execution (one "Session.run call" in the paper's terms).
  std::vector<exec::RuntimeValue> Run(
      const std::vector<exec::RuntimeValue>& feeds);
  // Single-fetch convenience.
  Tensor Run1(const std::vector<exec::RuntimeValue>& feeds);
};

// The tf.function analog: a polymorphic staged callable that retraces
// per argument *signature* (dtype of each tensor argument) and caches one
// StagedFunction per signature — calling with a new dtype combination
// triggers one conversion+trace; subsequent calls reuse the graph.
class AutoGraph;
class PolymorphicFunction {
 public:
  PolymorphicFunction(AutoGraph* owner, std::string fn_name)
      : owner_(owner), fn_name_(std::move(fn_name)) {}

  // Executes with concrete values, tracing on a signature miss.
  std::vector<exec::RuntimeValue> operator()(
      const std::vector<exec::RuntimeValue>& args);

  [[nodiscard]] size_t num_traces() const { return traces_.size(); }

 private:
  AutoGraph* owner_;
  std::string fn_name_;
  std::map<std::string, StagedFunction> traces_;
};

// Facade bundling globals + interpreter + source management.
class AutoGraph {
 public:
  explicit AutoGraph(Interpreter::Options options = {});

  // Parses PyMini source and binds its top-level functions (unconverted)
  // and assignments in the globals.
  void LoadSource(const std::string& source,
                  const std::string& filename = "<string>");

  [[nodiscard]] Value GetGlobal(const std::string& name) const;
  void SetGlobal(const std::string& name, Value value);

  // Eager (imperative) call of a loaded function.
  Value CallEager(const std::string& fn_name, std::vector<Value> args);

  // Converts a function and returns the converted PyMini source (the
  // paper's "generated code can be inspected" property).
  [[nodiscard]] std::string ConvertedSource(const std::string& fn_name,
                                            lang::SourceMap* map = nullptr);

  // Runs the aglint staging-safety diagnostics over a loaded function
  // without converting it (see analysis/lint.h for the codes).
  [[nodiscard]] std::vector<analysis::Diagnostic> Lint(
      const std::string& fn_name,
      const analysis::LintOptions& options = {}) const;

  // Converts + traces + optimizes + builds a Session.
  [[nodiscard]] StagedFunction Stage(const std::string& fn_name,
                                     const std::vector<StageArg>& args,
                                     bool optimize = true);
  [[nodiscard]] StagedFunction Stage(const Value& fn,
                                     const std::vector<StageArg>& args,
                                     bool optimize = true);

  // tf.function analog over all-tensor arguments (see
  // PolymorphicFunction).
  [[nodiscard]] PolymorphicFunction Function(const std::string& fn_name) {
    return PolymorphicFunction(this, fn_name);
  }

  [[nodiscard]] Interpreter& interpreter() { return interpreter_; }
  [[nodiscard]] const EnvPtr& globals() const { return globals_; }

 private:
  EnvPtr globals_;
  Interpreter interpreter_;
};

}  // namespace ag::core
