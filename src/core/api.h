// Public AutoGraph-C++ API (the `@ag.convert()` / tf.function analog).
//
// Typical use:
//
//   ag::core::AutoGraph agc;
//   agc.LoadSource(R"(
//     def f(x):
//       if x > 0:
//         x = x * x
//       return x
//   )");
//
//   // Eager execution (imperative semantics, per-op dispatch):
//   Value y = agc.CallEager("f", {Value(Tensor::Scalar(3.f))});
//
//   // Staged execution (conversion + graph build + Session):
//   StagedFunction sf = agc.Stage("f", {StageArg::Placeholder("x")});
//   Tensor out = sf.Run1({Tensor::Scalar(3.f)});
//
// The staged path amortizes all conversion and interpretation cost: Run()
// only executes graph kernels.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "analysis/lint.h"
#include "core/interpreter.h"
#include "core/modules.h"
#include "exec/session.h"
#include "graph/optimize.h"
#include "lang/parser.h"
#include "lang/unparser.h"
#include "obs/run_metadata.h"

namespace ag::core {

// How one function parameter is bound when staging.
struct StageArg {
  // A graph Placeholder fed at Run() time.
  static StageArg Placeholder(std::string name,
                              DType dtype = DType::kFloat32) {
    StageArg a;
    a.is_placeholder = true;
    a.name = std::move(name);
    a.dtype = dtype;
    return a;
  }
  // A fixed value baked into the trace (hyperparameters, functions,
  // objects, eager tensors -> constants).
  static StageArg Constant(Value v) {
    StageArg a;
    a.value = std::move(v);
    return a;
  }

  bool is_placeholder = false;
  std::string name;
  DType dtype = DType::kFloat32;
  Value value;
};

// Options for AutoGraph::Stage() — the structured replacement for the
// legacy trailing `bool optimize` (kept as a forwarding overload).
struct StageOptions {
  // When false, the traced graph is executed as-is (no graph passes).
  bool optimize = true;
  // Forwarded to graph::Optimize: pass-pipeline spec (e.g.
  // PipelineSpec::Parse("licm,cse,-dce")), per-pass verification, and
  // the deprecated per-pass booleans.
  graph::OptimizeOptions optimize_options;
};

// A converted, staged, ready-to-run function: graph + session.
//
// Run() accepts feeds either positionally (in feed_names order) or
// name-keyed — the unified Run surface shared with exec::Session — and
// takes optional trailing RunOptions/RunMetadata for per-op profiling.
struct StagedFunction {
  std::shared_ptr<graph::Graph> graph;
  std::vector<graph::Output> fetches;
  bool fetch_was_tuple = false;
  std::vector<std::string> feed_names;  // placeholder order for Run()
  std::unique_ptr<exec::Session> session;
  graph::OptimizeStats optimize_stats;
  // Cumulative observability record: staging phase timings (convert /
  // trace / optimize) plus every instrumented Run() merged in.
  obs::RunMetadata metadata;

  // One graph execution (one "Session.run call" in the paper's terms).
  // Feeds are positional, bound in feed_names order.
  std::vector<exec::RuntimeValue> Run(
      const std::vector<exec::RuntimeValue>& feeds,
      const obs::RunOptions* options = nullptr,
      obs::RunMetadata* run_metadata = nullptr);
  // Name-keyed overload (any order; names must match feed_names).
  std::vector<exec::RuntimeValue> Run(
      const std::map<std::string, exec::RuntimeValue>& feeds,
      const obs::RunOptions* options = nullptr,
      obs::RunMetadata* run_metadata = nullptr);
  // Single-fetch convenience.
  Tensor Run1(const std::vector<exec::RuntimeValue>& feeds,
              const obs::RunOptions* options = nullptr,
              obs::RunMetadata* run_metadata = nullptr);

  // Staging + optimization + cumulative run profile, human-readable.
  [[nodiscard]] std::string DebugString() const;
};

// The tf.function analog: a polymorphic staged callable that retraces
// per argument *signature* (dtype of each tensor argument) and caches one
// StagedFunction per signature — calling with a new dtype combination
// triggers one conversion+trace; subsequent calls reuse the graph.
class AutoGraph;

// Trace-cache statistics for a PolymorphicFunction.
struct CacheStats {
  int64_t hits = 0;    // calls served by a cached trace
  int64_t misses = 0;  // calls that triggered a conversion+trace
  size_t traces = 0;   // live cached signatures

  [[nodiscard]] std::string DebugString() const;
};

class PolymorphicFunction {
 public:
  PolymorphicFunction(AutoGraph* owner, std::string fn_name)
      : owner_(owner), fn_name_(std::move(fn_name)) {}

  // Executes with concrete values, tracing on a signature miss.
  std::vector<exec::RuntimeValue> operator()(
      const std::vector<exec::RuntimeValue>& args,
      const obs::RunOptions* options = nullptr,
      obs::RunMetadata* run_metadata = nullptr);

  [[nodiscard]] CacheStats cache_stats() const {
    CacheStats s = cache_stats_;
    s.traces = traces_.size();
    return s;
  }
  [[nodiscard]] std::string DebugString() const {
    return cache_stats().DebugString();
  }

  // Deprecated: use cache_stats().traces.
  [[nodiscard]] size_t num_traces() const { return traces_.size(); }

 private:
  AutoGraph* owner_;
  std::string fn_name_;
  std::map<std::string, StagedFunction> traces_;
  CacheStats cache_stats_;
};

// Facade bundling globals + interpreter + source management.
class AutoGraph {
 public:
  explicit AutoGraph(Interpreter::Options options = {});
  // Top-level `def`s bind functions whose closure is the globals Env
  // itself — a shared_ptr cycle refcounting cannot free. Breaking it
  // here keeps every AutoGraph usage LeakSanitizer-clean.
  ~AutoGraph() { globals_->ClearBindings(); }
  AutoGraph(const AutoGraph&) = delete;
  AutoGraph& operator=(const AutoGraph&) = delete;

  // Parses PyMini source and binds its top-level functions (unconverted)
  // and assignments in the globals.
  void LoadSource(const std::string& source,
                  const std::string& filename = "<string>");

  [[nodiscard]] Value GetGlobal(const std::string& name) const;
  void SetGlobal(const std::string& name, Value value);

  // Eager (imperative) call of a loaded function. With RunOptions that
  // enable tracing, per-op dispatch events from the eager interpreter
  // (native tf.* calls, overloaded operators) are collected into
  // `run_metadata` — making the paper's eager-vs-staged overhead
  // directly visible in one trace format.
  Value CallEager(const std::string& fn_name, std::vector<Value> args,
                  const obs::RunOptions* options = nullptr,
                  obs::RunMetadata* run_metadata = nullptr);

  // Converts a function and returns the converted PyMini source (the
  // paper's "generated code can be inspected" property).
  [[nodiscard]] std::string ConvertedSource(const std::string& fn_name,
                                            lang::SourceMap* map = nullptr);

  // Runs the aglint staging-safety diagnostics over a loaded function
  // without converting it (see analysis/lint.h for the codes).
  [[nodiscard]] std::vector<analysis::Diagnostic> Lint(
      const std::string& fn_name,
      const analysis::LintOptions& options = {}) const;

  // Converts + traces + optimizes + builds a Session.
  [[nodiscard]] StagedFunction Stage(const std::string& fn_name,
                                     const std::vector<StageArg>& args,
                                     const StageOptions& options);
  [[nodiscard]] StagedFunction Stage(const Value& fn,
                                     const std::vector<StageArg>& args,
                                     const StageOptions& options);
  // Legacy surface: `optimize` forwards into StageOptions::optimize.
  [[nodiscard]] StagedFunction Stage(const std::string& fn_name,
                                     const std::vector<StageArg>& args,
                                     bool optimize = true);
  [[nodiscard]] StagedFunction Stage(const Value& fn,
                                     const std::vector<StageArg>& args,
                                     bool optimize = true);

  // tf.function analog over all-tensor arguments (see
  // PolymorphicFunction).
  [[nodiscard]] PolymorphicFunction Function(const std::string& fn_name) {
    return PolymorphicFunction(this, fn_name);
  }

  [[nodiscard]] Interpreter& interpreter() { return interpreter_; }
  [[nodiscard]] const EnvPtr& globals() const { return globals_; }

 private:
  EnvPtr globals_;
  Interpreter interpreter_;
};

}  // namespace ag::core
