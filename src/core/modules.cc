#include "core/modules.h"

#include <cmath>
#include <cstdlib>
#include <string>

#include "autodiff/graph_grad.h"
#include "core/operators.h"
#include "tensor/tensor_ops.h"

namespace ag::core {

using graph::GraphContext;
using graph::Op;
using graph::OpN;
using graph::Output;

namespace {

void RequireArgs(const std::vector<Value>& args, size_t n,
                 const char* name) {
  if (args.size() != n) {
    throw ValueError(std::string(name) + "() expects " + std::to_string(n) +
                     " arguments, got " + std::to_string(args.size()));
  }
}

const Value* FindKwarg(const Kwargs& kwargs, const std::string& name) {
  for (const auto& [k, v] : kwargs) {
    if (k == name) return &v;
  }
  return nullptr;
}

// Converts a (possibly nested) PyMini list/number literal to a Tensor.
Tensor ValueToTensor(const Value& v, DType dtype) {
  if (v.IsTensor()) {
    return dtype == v.AsTensor().dtype() ? v.AsTensor()
                                         : v.AsTensor().Cast(dtype);
  }
  if (v.IsNumber() || v.IsBool()) {
    if (dtype == DType::kInt32 || (v.IsInt() && dtype != DType::kBool)) {
      // Preserve integer-ness unless an explicit float dtype was given.
    }
    return Tensor::Scalar(static_cast<float>(v.AsFloat()), dtype);
  }
  if (v.IsList() || v.IsTuple()) {
    const std::vector<Value>& elts =
        v.IsList() ? *v.AsList() : v.AsTuple()->elts;
    if (elts.empty()) return Tensor::Zeros(Shape({0}), dtype);
    // Nested lists -> stack recursively.
    if (elts[0].IsList() || elts[0].IsTuple()) {
      std::vector<Tensor> rows;
      rows.reserve(elts.size());
      for (const Value& e : elts) rows.push_back(ValueToTensor(e, dtype));
      return Stack(rows);
    }
    std::vector<float> data;
    data.reserve(elts.size());
    for (const Value& e : elts) {
      data.push_back(static_cast<float>(e.AsFloat()));
    }
    return Tensor::FromVector(std::move(data),
                              Shape({static_cast<int64_t>(elts.size())}),
                              dtype);
  }
  throw ValueError(std::string("cannot convert ") + v.TypeName() +
                   " to a tensor");
}

// Extracts a shape from a list/tuple of ints.
Shape ValueToShape(const Value& v) {
  const std::vector<Value>* elts = nullptr;
  if (v.IsList()) elts = v.AsList().get();
  if (v.IsTuple()) elts = &v.AsTuple()->elts;
  if (elts == nullptr) {
    if (v.IsInt()) return Shape({v.AsInt()});
    throw ValueError("shape must be a list/tuple of ints");
  }
  std::vector<int64_t> dims;
  dims.reserve(elts->size());
  for (const Value& e : *elts) dims.push_back(e.AsInt());
  return Shape(std::move(dims));
}

std::vector<int> ValueToPerm(const Value& v) {
  const std::vector<Value>* elts = nullptr;
  if (v.IsList()) elts = v.AsList().get();
  if (v.IsTuple()) elts = &v.AsTuple()->elts;
  if (elts == nullptr) throw ValueError("perm must be a list/tuple of ints");
  std::vector<int> perm;
  perm.reserve(elts->size());
  for (const Value& e : *elts) perm.push_back(static_cast<int>(e.AsInt()));
  return perm;
}

// ---- generic eager/staged dispatch helpers for tf.* functions ----

bool ShouldStage(Interpreter& in, const std::vector<Value>& args) {
  if (in.staging()) return true;
  for (const Value& a : args) {
    if (a.IsGraphTensor()) return true;
  }
  return false;
}

bool ShouldStageLantern(Interpreter& in, const std::vector<Value>& args) {
  if (!in.lantern_staging()) return false;
  for (const Value& a : args) {
    if (a.IsLantern()) return true;
  }
  // During Lantern tracing, all tensor math is staged (constants fold
  // into Const bindings).
  return in.lantern_staging();
}

Value LanternDispatch(Interpreter& in, const char* op,
                      const std::vector<Value>& args) {
  const lantern::LOp* lop = ops::LanternOpFor(op);
  if (lop == nullptr) {
    throw UnsupportedError(std::string("op '") + op +
                           "' is not supported by the Lantern backend");
  }
  std::vector<lantern::SymPtr> ins;
  ins.reserve(args.size());
  for (const Value& a : args) ins.push_back(ops::ToLanternSym(in, a));
  return Value(in.lantern_ctx()->builder.Emit(*lop, ins));
}

Value Dispatch1(Interpreter& in, const char* op, const Value& a,
                Tensor (*eager)(const Tensor&)) {
  if (ShouldStageLantern(in, {a})) return LanternDispatch(in, op, {a});
  if (ShouldStage(in, {a})) {
    return Value(Op(*in.graph_ctx(), op, {ops::ToGraphOutput(in, a)}));
  }
  return Value(eager(ops::ToEager(a)));
}

Value Dispatch2(Interpreter& in, const char* op, const Value& a,
                const Value& b, Tensor (*eager)(const Tensor&,
                                                const Tensor&)) {
  if (ShouldStageLantern(in, {a, b})) return LanternDispatch(in, op, {a, b});
  if (ShouldStage(in, {a, b})) {
    return Value(Op(*in.graph_ctx(), op,
                    {ops::ToGraphOutput(in, a), ops::ToGraphOutput(in, b)}));
  }
  return Value(eager(ops::ToEager(a), ops::ToEager(b)));
}

// Reduction with optional `axis` / `keepdims` kwargs.
Value DispatchReduce(Interpreter& in, const char* op,
                     const std::vector<Value>& args, const Kwargs& kwargs,
                     Tensor (*eager)(const Tensor&, int, bool)) {
  const Value& x = args[0];
  if (ShouldStageLantern(in, {x})) {
    if (std::string(op) == "ReduceSum" && args.size() == 1 &&
        kwargs.empty()) {
      return LanternDispatch(in, "ReduceSum", {x});
    }
    throw UnsupportedError(std::string("op '") + op +
                           "' with axis arguments is not supported by the "
                           "Lantern backend");
  }
  int axis = kAllAxes;
  bool keepdims = false;
  if (args.size() > 1 && !args[1].IsNone()) {
    axis = static_cast<int>(args[1].AsInt());
  }
  if (const Value* v = FindKwarg(kwargs, "axis"); v != nullptr) {
    axis = static_cast<int>(v->AsInt());
  }
  if (const Value* v = FindKwarg(kwargs, "keepdims"); v != nullptr) {
    keepdims = Truthy(*v);
  }
  if (ShouldStage(in, {x})) {
    graph::AttrMap attrs{{"keepdims", static_cast<int64_t>(keepdims)}};
    if (axis != kAllAxes) attrs["axis"] = static_cast<int64_t>(axis);
    return Value(Op(*in.graph_ctx(), op, {ops::ToGraphOutput(in, x)},
                    std::move(attrs)));
  }
  return Value(eager(ops::ToEager(x), axis, keepdims));
}

Value NativeV(const std::string& name,
              std::function<Value(Interpreter&, std::vector<Value>&,
                                  Kwargs&)> fn) {
  return MakeNative(name, std::move(fn));
}

// ---------------------------------------------------------------------
// The `tf` module
// ---------------------------------------------------------------------

Value BuildTfModule() {
  auto tf = std::make_shared<ObjectValue>();
  tf->type_name = "module 'tf'";
  auto& m = tf->attrs;

  m["float32"] = Value(DType::kFloat32);
  m["int32"] = Value(DType::kInt32);
  m["bool"] = Value(DType::kBool);

  m["constant"] = NativeV("tf.constant", [](Interpreter& in,
                                            std::vector<Value>& args,
                                            Kwargs& kwargs) {
    if (args.empty()) throw ValueError("tf.constant needs a value");
    DType dtype = DType::kFloat32;
    if (args.size() > 1 && args[1].IsDType()) dtype = args[1].AsDType();
    if (const Value* v = FindKwarg(kwargs, "dtype"); v != nullptr) {
      dtype = v->AsDType();
    } else if (args.size() == 1 && args[0].IsInt()) {
      dtype = DType::kInt32;
    } else if (args.size() == 1 && args[0].IsBool()) {
      dtype = DType::kBool;
    }
    Tensor t = ValueToTensor(args[0], dtype);
    if (in.staging()) return Value(graph::Const(*in.graph_ctx(), t));
    return Value(std::move(t));
  });

  m["zeros"] = NativeV("tf.zeros", [](Interpreter& in,
                                      std::vector<Value>& args, Kwargs&) {
    RequireArgs(args, 1, "tf.zeros");
    Tensor t = Tensor::Zeros(ValueToShape(args[0]));
    if (in.staging()) return Value(graph::Const(*in.graph_ctx(), t));
    return Value(std::move(t));
  });
  m["ones"] = NativeV("tf.ones", [](Interpreter& in,
                                    std::vector<Value>& args, Kwargs&) {
    RequireArgs(args, 1, "tf.ones");
    Tensor t = Tensor::Ones(ValueToShape(args[0]));
    if (in.staging()) return Value(graph::Const(*in.graph_ctx(), t));
    return Value(std::move(t));
  });

  m["matmul"] = NativeV("tf.matmul", [](Interpreter& in,
                                        std::vector<Value>& args, Kwargs&) {
    RequireArgs(args, 2, "tf.matmul");
    return Dispatch2(in, "MatMul", args[0], args[1], &MatMul);
  });
  m["add"] = NativeV("tf.add", [](Interpreter& in, std::vector<Value>& args,
                                  Kwargs&) {
    RequireArgs(args, 2, "tf.add");
    return Dispatch2(in, "Add", args[0], args[1], &Add);
  });
  m["subtract"] = NativeV("tf.subtract", [](Interpreter& in,
                                            std::vector<Value>& args,
                                            Kwargs&) {
    RequireArgs(args, 2, "tf.subtract");
    return Dispatch2(in, "Sub", args[0], args[1], &Sub);
  });
  m["multiply"] = NativeV("tf.multiply", [](Interpreter& in,
                                            std::vector<Value>& args,
                                            Kwargs&) {
    RequireArgs(args, 2, "tf.multiply");
    return Dispatch2(in, "Mul", args[0], args[1], &Mul);
  });
  m["divide"] = NativeV("tf.divide", [](Interpreter& in,
                                        std::vector<Value>& args, Kwargs&) {
    RequireArgs(args, 2, "tf.divide");
    return Dispatch2(in, "Div", args[0], args[1], &Div);
  });
  m["maximum"] = NativeV("tf.maximum", [](Interpreter& in,
                                          std::vector<Value>& args,
                                          Kwargs&) {
    RequireArgs(args, 2, "tf.maximum");
    return Dispatch2(in, "Maximum", args[0], args[1], &Maximum);
  });
  m["minimum"] = NativeV("tf.minimum", [](Interpreter& in,
                                          std::vector<Value>& args,
                                          Kwargs&) {
    RequireArgs(args, 2, "tf.minimum");
    return Dispatch2(in, "Minimum", args[0], args[1], &Minimum);
  });
  m["pow"] = NativeV("tf.pow", [](Interpreter& in, std::vector<Value>& args,
                                  Kwargs&) {
    RequireArgs(args, 2, "tf.pow");
    return Dispatch2(in, "Pow", args[0], args[1], &Pow);
  });

  m["tanh"] = NativeV("tf.tanh", [](Interpreter& in,
                                    std::vector<Value>& args, Kwargs&) {
    RequireArgs(args, 1, "tf.tanh");
    return Dispatch1(in, "Tanh", args[0], &Tanh);
  });
  m["sigmoid"] = NativeV("tf.sigmoid", [](Interpreter& in,
                                          std::vector<Value>& args,
                                          Kwargs&) {
    RequireArgs(args, 1, "tf.sigmoid");
    return Dispatch1(in, "Sigmoid", args[0], &Sigmoid);
  });
  m["exp"] = NativeV("tf.exp", [](Interpreter& in, std::vector<Value>& args,
                                  Kwargs&) {
    RequireArgs(args, 1, "tf.exp");
    return Dispatch1(in, "Exp", args[0], &Exp);
  });
  m["log"] = NativeV("tf.log", [](Interpreter& in, std::vector<Value>& args,
                                  Kwargs&) {
    RequireArgs(args, 1, "tf.log");
    return Dispatch1(in, "Log", args[0], &Log);
  });
  m["sqrt"] = NativeV("tf.sqrt", [](Interpreter& in,
                                    std::vector<Value>& args, Kwargs&) {
    RequireArgs(args, 1, "tf.sqrt");
    return Dispatch1(in, "Sqrt", args[0], &Sqrt);
  });
  m["square"] = NativeV("tf.square", [](Interpreter& in,
                                        std::vector<Value>& args, Kwargs&) {
    RequireArgs(args, 1, "tf.square");
    return Dispatch1(in, "Square", args[0], &Square);
  });
  m["abs"] = NativeV("tf.abs", [](Interpreter& in, std::vector<Value>& args,
                                  Kwargs&) {
    RequireArgs(args, 1, "tf.abs");
    return Dispatch1(in, "Abs", args[0], &Abs);
  });
  m["sin"] = NativeV("tf.sin", [](Interpreter& in, std::vector<Value>& args,
                                  Kwargs&) {
    RequireArgs(args, 1, "tf.sin");
    return Dispatch1(in, "Sin", args[0], &Sin);
  });
  m["cos"] = NativeV("tf.cos", [](Interpreter& in, std::vector<Value>& args,
                                  Kwargs&) {
    RequireArgs(args, 1, "tf.cos");
    return Dispatch1(in, "Cos", args[0], &Cos);
  });

  m["reduce_sum"] = NativeV("tf.reduce_sum", [](Interpreter& in,
                                                std::vector<Value>& args,
                                                Kwargs& kwargs) {
    return DispatchReduce(in, "ReduceSum", args, kwargs, &ReduceSum);
  });
  m["reduce_mean"] = NativeV("tf.reduce_mean", [](Interpreter& in,
                                                  std::vector<Value>& args,
                                                  Kwargs& kwargs) {
    return DispatchReduce(in, "ReduceMean", args, kwargs, &ReduceMean);
  });
  m["reduce_max"] = NativeV("tf.reduce_max", [](Interpreter& in,
                                                std::vector<Value>& args,
                                                Kwargs& kwargs) {
    return DispatchReduce(in, "ReduceMax", args, kwargs, &ReduceMax);
  });
  m["reduce_min"] = NativeV("tf.reduce_min", [](Interpreter& in,
                                                std::vector<Value>& args,
                                                Kwargs& kwargs) {
    return DispatchReduce(in, "ReduceMin", args, kwargs, &ReduceMin);
  });

  m["argmax"] = NativeV("tf.argmax", [](Interpreter& in,
                                        std::vector<Value>& args, Kwargs&) {
    RequireArgs(args, 2, "tf.argmax");
    const auto axis = static_cast<int64_t>(args[1].AsInt());
    if (ShouldStage(in, {args[0]})) {
      return Value(Op(*in.graph_ctx(), "ArgMax",
                      {ops::ToGraphOutput(in, args[0])}, {{"axis", axis}}));
    }
    return Value(ArgMax(ops::ToEager(args[0]), static_cast<int>(axis)));
  });

  m["transpose"] = NativeV("tf.transpose", [](Interpreter& in,
                                              std::vector<Value>& args,
                                              Kwargs&) {
    RequireArgs(args, 2, "tf.transpose");
    std::vector<int> perm = ValueToPerm(args[1]);
    if (ShouldStage(in, {args[0]})) {
      return Value(Op(*in.graph_ctx(), "Transpose",
                      {ops::ToGraphOutput(in, args[0])}, {{"perm", perm}}));
    }
    return Value(Transpose(ops::ToEager(args[0]), perm));
  });

  m["reshape"] = NativeV("tf.reshape", [](Interpreter& in,
                                          std::vector<Value>& args,
                                          Kwargs&) {
    RequireArgs(args, 2, "tf.reshape");
    Shape shape = ValueToShape(args[1]);
    if (in.lantern_staging()) {
      std::vector<int> dims;
      for (int64_t d : shape.dims()) dims.push_back(static_cast<int>(d));
      return Value(in.lantern_ctx()->builder.EmitReshape(
          ops::ToLanternSym(in, args[0]), std::move(dims)));
    }
    if (ShouldStage(in, {args[0]})) {
      std::vector<int> dims;
      for (int64_t d : shape.dims()) dims.push_back(static_cast<int>(d));
      return Value(Op(*in.graph_ctx(), "Reshape",
                      {ops::ToGraphOutput(in, args[0])}, {{"dims", dims}}));
    }
    return Value(Reshape(ops::ToEager(args[0]), shape));
  });

  m["expand_dims"] = NativeV("tf.expand_dims", [](Interpreter& in,
                                                  std::vector<Value>& args,
                                                  Kwargs&) {
    RequireArgs(args, 2, "tf.expand_dims");
    const auto axis = static_cast<int64_t>(args[1].AsInt());
    if (ShouldStage(in, {args[0]})) {
      return Value(Op(*in.graph_ctx(), "ExpandDims",
                      {ops::ToGraphOutput(in, args[0])}, {{"axis", axis}}));
    }
    Tensor t = ops::ToEager(args[0]);
    std::vector<int64_t> dims = t.shape().dims();
    int ax = static_cast<int>(axis);
    if (ax < 0) ax += t.rank() + 1;
    dims.insert(dims.begin() + ax, 1);
    return Value(t.Reshaped(Shape(std::move(dims))));
  });

  m["shape"] = NativeV("tf.shape", [](Interpreter& in,
                                      std::vector<Value>& args, Kwargs&) {
    RequireArgs(args, 1, "tf.shape");
    if (ShouldStage(in, {args[0]})) {
      return Value(Op(*in.graph_ctx(), "Shape",
                      {ops::ToGraphOutput(in, args[0])}));
    }
    const Shape& s = ops::ToEager(args[0]).shape();
    std::vector<float> dims;
    for (int64_t d : s.dims()) dims.push_back(static_cast<float>(d));
    return Value(Tensor::FromVector(std::move(dims), Shape({s.rank()}),
                                    DType::kInt32));
  });

  m["range"] = NativeV("tf.range", [](Interpreter& in,
                                      std::vector<Value>& args, Kwargs&) {
    RequireArgs(args, 1, "tf.range");
    if (ShouldStage(in, {args[0]})) {
      return Value(Op(*in.graph_ctx(), "Range",
                      {ops::ToGraphOutput(in, args[0], DType::kInt32)}));
    }
    return Value(Range(args[0].IsTensor() ? args[0].AsTensor().scalar_int()
                                          : args[0].AsInt()));
  });

  m["where"] = NativeV("tf.where", [](Interpreter& in,
                                      std::vector<Value>& args, Kwargs&) {
    RequireArgs(args, 3, "tf.where");
    if (ShouldStage(in, {args[0], args[1], args[2]})) {
      return Value(Op(*in.graph_ctx(), "Where",
                      {ops::ToGraphOutput(in, args[0]),
                       ops::ToGraphOutput(in, args[1]),
                       ops::ToGraphOutput(in, args[2])}));
    }
    return Value(Where(ops::ToEager(args[0]), ops::ToEager(args[1]),
                       ops::ToEager(args[2])));
  });

  m["concat"] = NativeV("tf.concat", [](Interpreter& in,
                                        std::vector<Value>& args, Kwargs&) {
    RequireArgs(args, 2, "tf.concat");
    const std::vector<Value>& elts = args[0].IsList()
                                         ? *args[0].AsList()
                                         : args[0].AsTuple()->elts;
    const auto axis = static_cast<int64_t>(args[1].AsInt());
    if (ShouldStageLantern(in, elts)) {
      if (elts.size() != 2 || axis != 0) {
        throw UnsupportedError(
            "the Lantern backend supports tf.concat of exactly two values "
            "along axis 0");
      }
      return LanternDispatch(in, "Concat0", {elts[0], elts[1]});
    }
    bool staged = in.staging();
    for (const Value& e : elts) staged = staged || e.IsGraphTensor();
    if (staged) {
      std::vector<Output> ins;
      for (const Value& e : elts) ins.push_back(ops::ToGraphOutput(in, e));
      return Value(Op(*in.graph_ctx(), "Concat", std::move(ins),
                      {{"axis", axis}}));
    }
    std::vector<Tensor> parts;
    for (const Value& e : elts) parts.push_back(ops::ToEager(e));
    return Value(Concat(parts, static_cast<int>(axis)));
  });

  m["stack"] = NativeV("tf.stack", [](Interpreter& in,
                                      std::vector<Value>& args, Kwargs&) {
    RequireArgs(args, 1, "tf.stack");
    return ops::StackList(in, args[0]);
  });

  m["cast"] = NativeV("tf.cast", [](Interpreter& in,
                                    std::vector<Value>& args, Kwargs&) {
    RequireArgs(args, 2, "tf.cast");
    DType dtype = args[1].AsDType();
    if (ShouldStage(in, {args[0]})) {
      return Value(Op(*in.graph_ctx(), "Cast",
                      {ops::ToGraphOutput(in, args[0])},
                      {{"dtype", dtype}}));
    }
    return Value(ops::ToEager(args[0]).Cast(dtype));
  });

  m["one_hot"] = NativeV("tf.one_hot", [](Interpreter& in,
                                          std::vector<Value>& args,
                                          Kwargs&) {
    RequireArgs(args, 2, "tf.one_hot");
    const int64_t depth = args[1].AsInt();
    if (ShouldStage(in, {args[0]})) {
      return Value(Op(*in.graph_ctx(), "OneHot",
                      {ops::ToGraphOutput(in, args[0])},
                      {{"depth", depth}}));
    }
    return Value(OneHot(ops::ToEager(args[0]), depth));
  });

  // Contiguous row slice: tf.slice_rows(x, start, len). Supported on all
  // three backends (eager kernel, graph SliceRows node, Lantern kSlice0).
  m["slice_rows"] = NativeV("tf.slice_rows", [](Interpreter& in,
                                                std::vector<Value>& args,
                                                Kwargs&) {
    RequireArgs(args, 3, "tf.slice_rows");
    const auto start = static_cast<int>(args[1].AsInt());
    const auto len = static_cast<int>(args[2].AsInt());
    if (in.lantern_staging()) {
      return Value(in.lantern_ctx()->builder.EmitSlice0(
          ops::ToLanternSym(in, args[0]), start, len));
    }
    if (ShouldStage(in, {args[0]})) {
      return Value(Op(*in.graph_ctx(), "SliceRows",
                      {ops::ToGraphOutput(in, args[0])},
                      {{"start", static_cast<int64_t>(start)},
                       {"len", static_cast<int64_t>(len)}}));
    }
    const Tensor& x = ops::ToEager(args[0]);
    const int64_t inner = x.num_elements() / x.shape().dim(0);
    std::vector<float> out(x.data() + start * inner,
                           x.data() + (start + len) * inner);
    std::vector<int64_t> dims = x.shape().dims();
    dims[0] = len;
    return Value(Tensor::FromVector(std::move(out), Shape(std::move(dims)),
                                    x.dtype()));
  });

  m["gather"] = NativeV("tf.gather", [](Interpreter& in,
                                        std::vector<Value>& args, Kwargs&) {
    RequireArgs(args, 2, "tf.gather");
    return Dispatch2(in, "Gather", args[0], args[1], &Gather);
  });

  m["equal"] = NativeV("tf.equal", [](Interpreter& in,
                                      std::vector<Value>& args, Kwargs&) {
    RequireArgs(args, 2, "tf.equal");
    return Dispatch2(in, "Equal", args[0], args[1], &Equal);
  });
  m["less"] = NativeV("tf.less", [](Interpreter& in,
                                    std::vector<Value>& args, Kwargs&) {
    RequireArgs(args, 2, "tf.less");
    return Dispatch2(in, "Less", args[0], args[1], &Less);
  });
  m["greater"] = NativeV("tf.greater", [](Interpreter& in,
                                          std::vector<Value>& args,
                                          Kwargs&) {
    RequireArgs(args, 2, "tf.greater");
    return Dispatch2(in, "Greater", args[0], args[1], &Greater);
  });
  m["logical_and"] = NativeV("tf.logical_and", [](Interpreter& in,
                                                  std::vector<Value>& args,
                                                  Kwargs&) {
    RequireArgs(args, 2, "tf.logical_and");
    return Dispatch2(in, "LogicalAnd", args[0], args[1], &LogicalAnd);
  });
  m["logical_or"] = NativeV("tf.logical_or", [](Interpreter& in,
                                                std::vector<Value>& args,
                                                Kwargs&) {
    RequireArgs(args, 2, "tf.logical_or");
    return Dispatch2(in, "LogicalOr", args[0], args[1], &LogicalOr);
  });
  m["logical_not"] = NativeV("tf.logical_not", [](Interpreter& in,
                                                  std::vector<Value>& args,
                                                  Kwargs&) {
    RequireArgs(args, 1, "tf.logical_not");
    return Dispatch1(in, "LogicalNot", args[0], &LogicalNot);
  });

  m["print"] = NativeV("tf.print", [](Interpreter& in,
                                      std::vector<Value>& args, Kwargs&) {
    return ops::Print(in, args);
  });

  m["gradients"] = NativeV("tf.gradients", [](Interpreter& in,
                                              std::vector<Value>& args,
                                              Kwargs&) {
    RequireArgs(args, 2, "tf.gradients");
    if (!in.staging()) {
      throw StagingError(
          "tf.gradients is only available during graph construction; use "
          "the eager GradientTape for define-by-run differentiation");
    }
    Output y = ops::ToGraphOutput(in, args[0]);
    const std::vector<Value>& xs_v = args[1].IsList()
                                         ? *args[1].AsList()
                                         : args[1].AsTuple()->elts;
    std::vector<Output> xs;
    for (const Value& x : xs_v) xs.push_back(ops::ToGraphOutput(in, x));
    std::vector<Output> grads = autodiff::Gradients(*in.graph_ctx(), y, xs);
    std::vector<Value> out;
    for (const Output& g : grads) out.emplace_back(g);
    return MakeList(std::move(out));
  });

  // tf.nn submodule.
  auto nn = std::make_shared<ObjectValue>();
  nn->type_name = "module 'tf.nn'";
  nn->attrs["relu"] = NativeV("tf.nn.relu", [](Interpreter& in,
                                               std::vector<Value>& args,
                                               Kwargs&) {
    RequireArgs(args, 1, "tf.nn.relu");
    return Dispatch1(in, "Relu", args[0], &Relu);
  });
  nn->attrs["tanh"] = m["tanh"];
  nn->attrs["sigmoid"] = m["sigmoid"];
  nn->attrs["softmax"] = NativeV("tf.nn.softmax", [](Interpreter& in,
                                                     std::vector<Value>& args,
                                                     Kwargs&) {
    RequireArgs(args, 1, "tf.nn.softmax");
    return Dispatch1(in, "Softmax", args[0], &Softmax);
  });
  nn->attrs["log_softmax"] = NativeV(
      "tf.nn.log_softmax",
      [](Interpreter& in, std::vector<Value>& args, Kwargs&) {
        RequireArgs(args, 1, "tf.nn.log_softmax");
        return Dispatch1(in, "LogSoftmax", args[0], &LogSoftmax);
      });
  nn->attrs["softmax_cross_entropy"] = NativeV(
      "tf.nn.softmax_cross_entropy",
      [](Interpreter& in, std::vector<Value>& args, Kwargs&) {
        RequireArgs(args, 2, "tf.nn.softmax_cross_entropy");
        return Dispatch2(in, "SoftmaxCrossEntropy", args[0], args[1],
                         &SoftmaxCrossEntropy);
      });
  m["nn"] = Value(std::move(nn));

  // tf.math submodule.
  auto math = std::make_shared<ObjectValue>();
  math->type_name = "module 'tf.math'";
  math->attrs["top_k"] = NativeV("tf.math.top_k", [](Interpreter& in,
                                                     std::vector<Value>& args,
                                                     Kwargs&) {
    RequireArgs(args, 2, "tf.math.top_k");
    const int64_t k = args[1].AsInt();
    if (ShouldStage(in, {args[0]})) {
      std::vector<Output> outs =
          OpN(*in.graph_ctx(), "TopK", {ops::ToGraphOutput(in, args[0])},
              {{"k", k}}, 2);
      return MakeTuple({Value(outs[0]), Value(outs[1])});
    }
    auto [values, indices] = TopK(ops::ToEager(args[0]), k);
    return MakeTuple({Value(values), Value(indices)});
  });
  m["math"] = Value(std::move(math));

  return Value(std::move(tf));
}

// ---------------------------------------------------------------------
// The `ag` module (user-facing) and `ag__` intrinsics
// ---------------------------------------------------------------------

Value BuildAgModule() {
  auto ag_mod = std::make_shared<ObjectValue>();
  ag_mod->type_name = "module 'ag'";
  ag_mod->attrs["stack"] = NativeV("ag.stack", [](Interpreter& in,
                                                  std::vector<Value>& args,
                                                  Kwargs&) {
    RequireArgs(args, 1, "ag.stack");
    return ops::StackList(in, args[0]);
  });
  // In eager (unconverted) execution these directives are advisory no-ops;
  // the Directives pass rewires them when code is converted.
  ag_mod->attrs["set_element_type"] = NativeV(
      "ag.set_element_type",
      [](Interpreter&, std::vector<Value>&, Kwargs&) {
        return Value::None();
      });
  ag_mod->attrs["set_loop_options"] = NativeV(
      "ag.set_loop_options",
      [](Interpreter&, std::vector<Value>&, Kwargs&) {
        return Value::None();
      });
  return Value(std::move(ag_mod));
}

Value BuildIntrinsics() {
  auto intr = std::make_shared<ObjectValue>();
  intr->type_name = "module 'ag__'";
  auto& m = intr->attrs;

  m["if_stmt"] = NativeV("ag__.if_stmt", [](Interpreter& in,
                                            std::vector<Value>& args,
                                            Kwargs&) {
    RequireArgs(args, 3, "ag__.if_stmt");
    return ops::IfStmt(in, args[0], args[1], args[2]);
  });
  m["while_stmt"] = NativeV("ag__.while_stmt", [](Interpreter& in,
                                                  std::vector<Value>& args,
                                                  Kwargs&) {
    RequireArgs(args, 3, "ag__.while_stmt");
    return ops::WhileStmt(in, args[0], args[1], args[2]);
  });
  m["for_stmt"] = NativeV("ag__.for_stmt", [](Interpreter& in,
                                              std::vector<Value>& args,
                                              Kwargs&) {
    RequireArgs(args, 3, "ag__.for_stmt");
    return ops::ForStmt(in, args[0], args[1], args[2]);
  });
  m["and_"] = NativeV("ag__.and_", [](Interpreter& in,
                                      std::vector<Value>& args, Kwargs&) {
    RequireArgs(args, 2, "ag__.and_");
    return ops::And(in, args[0], args[1]);
  });
  m["or_"] = NativeV("ag__.or_", [](Interpreter& in,
                                    std::vector<Value>& args, Kwargs&) {
    RequireArgs(args, 2, "ag__.or_");
    return ops::Or(in, args[0], args[1]);
  });
  m["not_"] = NativeV("ag__.not_", [](Interpreter& in,
                                      std::vector<Value>& args, Kwargs&) {
    RequireArgs(args, 1, "ag__.not_");
    return ops::Not(in, args[0]);
  });
  m["eq"] = NativeV("ag__.eq", [](Interpreter& in, std::vector<Value>& args,
                                  Kwargs&) {
    RequireArgs(args, 2, "ag__.eq");
    return ops::Eq(in, args[0], args[1]);
  });
  m["not_eq"] = NativeV("ag__.not_eq", [](Interpreter& in,
                                          std::vector<Value>& args,
                                          Kwargs&) {
    RequireArgs(args, 2, "ag__.not_eq");
    return ops::NotEq(in, args[0], args[1]);
  });
  m["if_exp"] = NativeV("ag__.if_exp", [](Interpreter& in,
                                          std::vector<Value>& args,
                                          Kwargs&) {
    RequireArgs(args, 3, "ag__.if_exp");
    return ops::IfExp(in, args[0], args[1], args[2]);
  });
  m["converted_call"] = NativeV("ag__.converted_call",
                                [](Interpreter& in, std::vector<Value>& args,
                                   Kwargs& kwargs) {
                                  if (args.empty()) {
                                    throw ValueError(
                                        "converted_call needs a callee");
                                  }
                                  Value fn = args[0];
                                  std::vector<Value> rest(args.begin() + 1,
                                                          args.end());
                                  return ops::ConvertedCall(
                                      in, fn, std::move(rest), kwargs);
                                });
  m["list_append"] = NativeV("ag__.list_append", [](Interpreter& in,
                                                    std::vector<Value>& args,
                                                    Kwargs&) {
    RequireArgs(args, 2, "ag__.list_append");
    return ops::ListAppend(in, args[0], args[1]);
  });
  m["list_pop"] = NativeV("ag__.list_pop", [](Interpreter& in,
                                              std::vector<Value>& args,
                                              Kwargs&) {
    RequireArgs(args, 1, "ag__.list_pop");
    return ops::ListPop(in, args[0]);
  });
  m["set_element_type"] = NativeV(
      "ag__.set_element_type",
      [](Interpreter& in, std::vector<Value>& args, Kwargs&) {
        RequireArgs(args, 2, "ag__.set_element_type");
        return ops::SetElementType(in, args[0], args[1]);
      });
  m["stack"] = NativeV("ag__.stack", [](Interpreter& in,
                                        std::vector<Value>& args, Kwargs&) {
    RequireArgs(args, 1, "ag__.stack");
    return ops::StackList(in, args[0]);
  });
  m["set_item"] = NativeV("ag__.set_item", [](Interpreter& in,
                                              std::vector<Value>& args,
                                              Kwargs&) {
    RequireArgs(args, 3, "ag__.set_item");
    return ops::SetItem(in, args[0], args[1], args[2]);
  });
  m["assert_stmt"] = NativeV("ag__.assert_stmt", [](Interpreter& in,
                                                    std::vector<Value>& args,
                                                    Kwargs&) {
    RequireArgs(args, 2, "ag__.assert_stmt");
    return ops::AssertStmt(in, args[0], args[1]);
  });
  m["Undefined"] = NativeV("ag__.Undefined", [](Interpreter&,
                                                std::vector<Value>& args,
                                                Kwargs&) {
    RequireArgs(args, 1, "ag__.Undefined");
    return MakeUndefined(args[0].AsStr());
  });
  return Value(std::move(intr));
}

}  // namespace

Value MakeObject(const std::string& type_name) {
  auto obj = std::make_shared<ObjectValue>();
  obj->type_name = type_name;
  return Value(std::move(obj));
}

EnvPtr BuildGlobals() {
  auto env = std::make_shared<Env>();

  // Builtins.
  env->Set("print", NativeV("print", [](Interpreter& in,
                                        std::vector<Value>& args, Kwargs&) {
    return ops::Print(in, args);
  }));
  env->Set("len", NativeV("len", [](Interpreter& in,
                                    std::vector<Value>& args, Kwargs&) {
    RequireArgs(args, 1, "len");
    return ops::Len(in, args[0]);
  }));
  env->Set("range", NativeV("range", [](Interpreter& in,
                                        std::vector<Value>& args, Kwargs&) {
    return ops::Range(in, args);
  }));
  env->Set("int", NativeV("int", [](Interpreter& in,
                                    std::vector<Value>& args, Kwargs&) {
    RequireArgs(args, 1, "int");
    const Value& v = args[0];
    if (v.IsGraphTensor()) {
      return Value(Op(*in.graph_ctx(), "Cast",
                      {ops::ToGraphOutput(in, v)},
                      {{"dtype", DType::kInt32}}));
    }
    if (v.IsTensor()) return Value(v.AsTensor().Cast(DType::kInt32));
    if (v.IsStr()) return Value(static_cast<int64_t>(std::stoll(v.AsStr())));
    return Value(static_cast<int64_t>(v.AsFloat()));
  }));
  env->Set("float", NativeV("float", [](Interpreter& in,
                                        std::vector<Value>& args, Kwargs&) {
    RequireArgs(args, 1, "float");
    const Value& v = args[0];
    if (v.IsGraphTensor()) {
      return Value(Op(*in.graph_ctx(), "Cast",
                      {ops::ToGraphOutput(in, v)},
                      {{"dtype", DType::kFloat32}}));
    }
    if (v.IsTensor()) return Value(v.AsTensor().Cast(DType::kFloat32));
    if (v.IsStr()) return Value(std::stod(v.AsStr()));
    return Value(v.AsFloat());
  }));
  env->Set("bool", NativeV("bool", [](Interpreter&, std::vector<Value>& args,
                                      Kwargs&) {
    RequireArgs(args, 1, "bool");
    return Value(Truthy(args[0]));
  }));
  env->Set("abs", NativeV("abs", [](Interpreter& in,
                                    std::vector<Value>& args, Kwargs&) {
    RequireArgs(args, 1, "abs");
    const Value& v = args[0];
    if (v.IsGraphTensor()) {
      return Value(Op(*in.graph_ctx(), "Abs", {ops::ToGraphOutput(in, v)}));
    }
    if (v.IsTensor()) return Value(Abs(v.AsTensor()));
    if (v.IsInt()) return Value(std::abs(v.AsInt()));
    return Value(std::fabs(v.AsFloat()));
  }));
  env->Set("min", NativeV("min", [](Interpreter&, std::vector<Value>& args,
                                    Kwargs&) {
    RequireArgs(args, 2, "min");
    return args[0].AsFloat() <= args[1].AsFloat() ? args[0] : args[1];
  }));
  env->Set("max", NativeV("max", [](Interpreter&, std::vector<Value>& args,
                                    Kwargs&) {
    RequireArgs(args, 2, "max");
    return args[0].AsFloat() >= args[1].AsFloat() ? args[0] : args[1];
  }));

  env->Set("tf", BuildTfModule());
  env->Set("ag", BuildAgModule());
  env->Set("ag__", BuildIntrinsics());
  return env;
}

}  // namespace ag::core
